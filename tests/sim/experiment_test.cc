#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.h"
#include "sim/report.h"

namespace tlsim {
namespace sim {
namespace {

ExperimentConfig
smallCfg()
{
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    cfg.scale.items = 1500;
    cfg.scale.customersPerDistrict = 90;
    cfg.scale.ordersPerDistrict = 90;
    cfg.scale.firstNewOrder = 46;
    cfg.txns = 6;
    cfg.warmupTxns = 1;
    return cfg;
}

struct Figure5Fixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        row = new Figure5Row(
            runFigure5(tpcc::TxnType::NewOrder, smallCfg()));
    }

    static void
    TearDownTestSuite()
    {
        delete row;
        row = nullptr;
    }

    static Figure5Row *row;
};

Figure5Row *Figure5Fixture::row = nullptr;

TEST_F(Figure5Fixture, AllBarsPresent)
{
    EXPECT_EQ(row->bars.size(), allBars().size());
    for (Bar b : allBars())
        EXPECT_GT(row->result(b).makespan, 0u);
}

TEST_F(Figure5Fixture, AccountingInvariantHoldsForEveryBar)
{
    for (const auto &[bar, run] : row->bars) {
        EXPECT_EQ(run.total.total(), run.makespan * 4)
            << barName(bar);
    }
}

TEST_F(Figure5Fixture, SequentialMostlyIdles)
{
    const RunResult &seq = row->result(Bar::Sequential);
    // Three of four CPUs idle the entire time.
    EXPECT_GE(static_cast<double>(seq.total[Cat::Idle]) /
                  seq.total.total(),
              0.74);
    EXPECT_EQ(seq.primaryViolations, 0u);
}

TEST_F(Figure5Fixture, TlsSeqOverheadIsModest)
{
    // Paper: software overhead lands between 0.93x and 1.05x.
    double s = row->speedup(Bar::TlsSeq);
    EXPECT_GT(s, 0.80);
    EXPECT_LT(s, 1.25);
}

TEST_F(Figure5Fixture, SubthreadsBeatAllOrNothing)
{
    EXPECT_GT(row->speedup(Bar::Baseline),
              row->speedup(Bar::NoSubthread));
    EXPECT_GT(row->speedup(Bar::Baseline), 1.3);
}

TEST_F(Figure5Fixture, NoSpeculationIsTheUpperBound)
{
    double best = row->speedup(Bar::NoSpeculation);
    EXPECT_GE(best * 1.02, row->speedup(Bar::Baseline));
    EXPECT_EQ(row->result(Bar::NoSpeculation).primaryViolations, 0u);
    EXPECT_EQ(row->result(Bar::NoSpeculation).total[Cat::Failed], 0u);
}

TEST_F(Figure5Fixture, BaselineSuffersLessFailureThanNoSubthread)
{
    const RunResult &base = row->result(Bar::Baseline);
    const RunResult &nosub = row->result(Bar::NoSubthread);
    EXPECT_LT(base.total[Cat::Failed], nosub.total[Cat::Failed]);
    EXPECT_GT(base.subthreadsStarted, 0u);
    EXPECT_EQ(nosub.subthreadsStarted, 0u);
}

TEST_F(Figure5Fixture, ReportRendersAllBars)
{
    std::ostringstream os;
    printFigure5Row(os, *row);
    std::string text = os.str();
    for (Bar b : allBars())
        EXPECT_NE(text.find(barName(b)), std::string::npos);
    EXPECT_NE(text.find("Figure 5: NEW ORDER"), std::string::npos);
}

TEST(Table2, RowLooksLikeTheWorkload)
{
    ExperimentConfig cfg = smallCfg();
    Table2Row row = table2Row(tpcc::TxnType::NewOrder, cfg);
    EXPECT_GT(row.execMcycles, 0.0);
    EXPECT_GT(row.coverage, 0.4);
    EXPECT_LT(row.coverage, 1.0);
    EXPECT_GT(row.threadSizeInsts, 5000);
    EXPECT_GT(row.threadSizeInsts, row.specInstsPerThread);
    EXPECT_GE(row.threadsPerTxn, 4.0);
    EXPECT_LE(row.threadsPerTxn, 15.0);

    std::ostringstream os;
    printTable2(os, {row});
    EXPECT_NE(os.str().find("NEW ORDER"), std::string::npos);
}

TEST(Figure6, SweepRunsAllPoints)
{
    ExperimentConfig cfg = smallCfg();
    cfg.txns = 4;
    auto points = runFigure6(tpcc::TxnType::NewOrder, cfg, {2, 8},
                             {1000, 5000});
    ASSERT_EQ(points.size(), 4u);
    for (const auto &p : points) {
        EXPECT_GT(p.run.makespan, 0u);
        EXPECT_EQ(p.run.total.total(), p.run.makespan * 4);
    }

    std::ostringstream os;
    printFigure6(os, "NEW ORDER", points, points[0].run.makespan * 3);
    EXPECT_NE(os.str().find("Figure 6"), std::string::npos);
}

TEST(Figure6, MoreSubthreadsNeverMuchWorse)
{
    // Paper Section 5.1: adding sub-threads does not hurt.
    ExperimentConfig cfg = smallCfg();
    cfg.txns = 4;
    auto points = runFigure6(tpcc::TxnType::NewOrder, cfg, {2, 8},
                             {2000});
    ASSERT_EQ(points.size(), 2u);
    double t2 = static_cast<double>(points[0].run.makespan);
    double t8 = static_cast<double>(points[1].run.makespan);
    EXPECT_LT(t8, t2 * 1.10);
}

TEST(Bars, NamesAreStable)
{
    EXPECT_STREQ(barName(Bar::Sequential), "SEQUENTIAL");
    EXPECT_STREQ(barName(Bar::NoSubthread), "NO SUB-THREAD");
    EXPECT_STREQ(barName(Bar::Baseline), "BASELINE");
}

} // namespace
} // namespace sim
} // namespace tlsim
