#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"

namespace tlsim {
namespace sim {
namespace {

RunResult
fakeRun(Cycle makespan, double busy_frac)
{
    RunResult r;
    r.makespan = makespan;
    Cycle busy = static_cast<Cycle>(makespan * 4 * busy_frac);
    r.total[Cat::Busy] = busy;
    r.total[Cat::Idle] = makespan * 4 - busy;
    r.txns = 10;
    return r;
}

Figure5Row
fakeRow()
{
    Figure5Row row;
    row.type = tpcc::TxnType::NewOrder;
    row.bars.emplace_back(Bar::Sequential, fakeRun(1000, 0.25));
    row.bars.emplace_back(Bar::TlsSeq, fakeRun(980, 0.25));
    row.bars.emplace_back(Bar::NoSubthread, fakeRun(700, 0.30));
    row.bars.emplace_back(Bar::Baseline, fakeRun(500, 0.40));
    row.bars.emplace_back(Bar::NoSpeculation, fakeRun(450, 0.45));
    return row;
}

TEST(Report, SpeedupHelpers)
{
    Figure5Row row = fakeRow();
    EXPECT_DOUBLE_EQ(row.speedup(Bar::Sequential), 1.0);
    EXPECT_DOUBLE_EQ(row.speedup(Bar::Baseline), 2.0);
    EXPECT_NEAR(row.speedup(Bar::NoSpeculation), 1000.0 / 450, 1e-9);
}

TEST(ReportDeathTest, MissingBarPanics)
{
    Figure5Row row;
    row.type = tpcc::TxnType::Payment;
    EXPECT_DEATH(row.result(Bar::Baseline), "missing");
}

TEST(Report, Figure5RowNormalizesToSequential)
{
    Figure5Row row = fakeRow();
    std::ostringstream os;
    printFigure5Row(os, row);
    std::string s = os.str();
    // The SEQUENTIAL bar is exactly 1.000 and 75% idle.
    EXPECT_NE(s.find("SEQUENTIAL         1.000"), std::string::npos);
    EXPECT_NE(s.find("0.750"), std::string::npos);
    // Every bar name appears.
    for (Bar b : allBars())
        EXPECT_NE(s.find(barName(b)), std::string::npos) << barName(b);
}

TEST(Report, SpeedupSummaryListsBenchmarks)
{
    std::ostringstream os;
    printSpeedupSummary(os, {fakeRow()});
    std::string s = os.str();
    EXPECT_NE(s.find("NEW ORDER"), std::string::npos);
    EXPECT_NE(s.find("2.00"), std::string::npos); // baseline speedup
}

TEST(Report, Figure6GridIsComplete)
{
    std::vector<SweepPoint> points;
    for (unsigned k : {2u, 8u})
        for (std::uint64_t s : {1000ull, 5000ull}) {
            SweepPoint p{k, s, RunResult{}};
            p.run.makespan = 100 * k + s / 100;
            points.push_back(p);
        }
    std::ostringstream os;
    printFigure6(os, "TESTBENCH", points, 1000);
    std::string s = os.str();
    EXPECT_NE(s.find("TESTBENCH"), std::string::npos);
    EXPECT_NE(s.find("1000"), std::string::npos);
    EXPECT_NE(s.find("5000"), std::string::npos);
    EXPECT_NE(s.find("2 sub-thr"), std::string::npos);
    EXPECT_NE(s.find("8 sub-thr"), std::string::npos);
    // Normalized value for k=2, spacing=1000: 210/1000.
    EXPECT_NE(s.find("0.210"), std::string::npos);
}

TEST(Report, Table2FormatsPercentages)
{
    Table2Row r{};
    r.type = tpcc::TxnType::StockLevel;
    r.execMcycles = 12.34;
    r.coverage = 0.876;
    r.threadSizeInsts = 18000;
    r.specInstsPerThread = 15000;
    r.threadsPerTxn = 196.7;
    std::ostringstream os;
    printTable2(os, {r});
    std::string s = os.str();
    EXPECT_NE(s.find("STOCK LEVEL"), std::string::npos);
    EXPECT_NE(s.find("88%"), std::string::npos);
    EXPECT_NE(s.find("196.7"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace tlsim
