/**
 * @file
 * Tests for the zigzag-varint codec (sim/varint.h): the batch decoder
 * must agree byte-for-byte with the one-value reference decoder on
 * every input — random streams chopped at arbitrary block boundaries,
 * maximum-length encodings, and malformed or truncated tails.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "sim/varint.h"

namespace tlsim {
namespace sim {
namespace {

using varint::Status;

std::vector<std::uint8_t>
encodeAll(const std::vector<std::uint64_t> &vals)
{
    std::vector<std::uint8_t> bytes;
    std::array<std::uint8_t, varint::kMaxBytes> tmp;
    for (std::uint64_t v : vals) {
        std::size_t n = varint::encode(tmp.data(), v);
        bytes.insert(bytes.end(), tmp.begin(), tmp.begin() + n);
    }
    return bytes;
}

/** Decode the whole stream with the reference decoder. */
std::vector<std::uint64_t>
decodeAllRef(const std::vector<std::uint8_t> &bytes, std::size_t count)
{
    std::vector<std::uint64_t> vals;
    std::size_t pos = 0;
    while (vals.size() < count) {
        std::uint64_t v = 0;
        std::size_t used = 0;
        EXPECT_EQ(varint::decodeOne(bytes.data() + pos,
                                    bytes.size() - pos, &v, &used),
                  Status::Ok);
        vals.push_back(v);
        pos += used;
    }
    EXPECT_EQ(pos, bytes.size());
    return vals;
}

TEST(Varint, ZigzagRoundTrip)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{1} << 40, -(std::int64_t{1} << 40),
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(varint::unzigzag(varint::zigzag(v)), v);
    }
}

TEST(Varint, EncodeDecodeOneRoundTrip)
{
    std::array<std::uint8_t, varint::kMaxBytes> buf;
    Rng rng(7);
    for (int iter = 0; iter < 10000; ++iter) {
        // Bias toward small values (realistic deltas) but cover the
        // full width: pick a random bit length first.
        unsigned bits = static_cast<unsigned>(rng.next() % 65);
        std::uint64_t v =
            bits == 0 ? 0
                      : rng.next() >> (64 - bits);
        std::size_t n = varint::encode(buf.data(), v);
        ASSERT_LE(n, varint::kMaxBytes);
        std::uint64_t back = ~v;
        std::size_t used = 0;
        ASSERT_EQ(varint::decodeOne(buf.data(), n, &back, &used),
                  Status::Ok);
        EXPECT_EQ(back, v);
        EXPECT_EQ(used, n);
    }
}

TEST(Varint, MaxLengthEncodings)
{
    std::array<std::uint8_t, varint::kMaxBytes> buf;
    // Values with bit 63 set need all ten bytes.
    for (std::uint64_t v :
         {~std::uint64_t{0}, std::uint64_t{1} << 63,
          (std::uint64_t{1} << 63) | 1}) {
        std::size_t n = varint::encode(buf.data(), v);
        EXPECT_EQ(n, varint::kMaxBytes);
        std::uint64_t back = 0;
        std::size_t used = 0;
        EXPECT_EQ(varint::decodeOne(buf.data(), n, &back, &used),
                  Status::Ok);
        EXPECT_EQ(back, v);
        std::uint64_t blk = 0;
        std::size_t decoded = 0, consumed = 0;
        EXPECT_EQ(varint::decodeBlock(buf.data(), n, 1, &blk, &decoded,
                                      &consumed),
                  Status::Ok);
        EXPECT_EQ(decoded, 1u);
        EXPECT_EQ(consumed, n);
        EXPECT_EQ(blk, v);
    }
}

TEST(Varint, RejectsOverflowingTenthByte)
{
    // Ten continuation-chained bytes whose last byte carries more
    // than the single remaining bit 63.
    std::array<std::uint8_t, varint::kMaxBytes> buf;
    buf.fill(0x80);
    buf[9] = 0x02; // payload bit past bit 63, no continuation
    std::uint64_t v = 0;
    std::size_t used = 0;
    EXPECT_EQ(varint::decodeOne(buf.data(), buf.size(), &v, &used),
              Status::Overflow);
    std::size_t decoded = 0, consumed = 0;
    EXPECT_EQ(varint::decodeBlock(buf.data(), buf.size(), 1, &v,
                                  &decoded, &consumed),
              Status::Overflow);
    EXPECT_EQ(decoded, 0u);
    EXPECT_EQ(consumed, 0u);
}

TEST(Varint, RejectsEndlessContinuation)
{
    std::array<std::uint8_t, 16> buf;
    buf.fill(0x80); // no terminator within kMaxBytes
    std::uint64_t v = 0;
    std::size_t used = 0;
    EXPECT_EQ(varint::decodeOne(buf.data(), buf.size(), &v, &used),
              Status::TooLong);
    std::size_t decoded = 0, consumed = 0;
    EXPECT_EQ(varint::decodeBlock(buf.data(), buf.size(), 1, &v,
                                  &decoded, &consumed),
              Status::TooLong);
}

TEST(Varint, TruncatedTailReportsNeedMore)
{
    // A varint cut mid-continuation must not decode.
    std::array<std::uint8_t, 3> buf = {0x80, 0x80, 0x80};
    std::uint64_t v = 0;
    std::size_t used = 0;
    EXPECT_EQ(varint::decodeOne(buf.data(), buf.size(), &v, &used),
              Status::NeedMore);
    std::size_t decoded = 0, consumed = 0;
    EXPECT_EQ(varint::decodeBlock(buf.data(), buf.size(), 1, &v,
                                  &decoded, &consumed),
              Status::NeedMore);
    EXPECT_EQ(decoded, 0u);
    EXPECT_EQ(consumed, 0u);
    EXPECT_EQ(varint::decodeBlock(buf.data(), 0, 1, &v, &decoded,
                                  &consumed),
              Status::NeedMore);
}

TEST(Varint, BlockDecodeMatchesReferenceOnRandomStreams)
{
    Rng rng(0xD1FFu);
    for (int iter = 0; iter < 200; ++iter) {
        std::size_t count = 1 + rng.next() % 300;
        std::vector<std::uint64_t> vals(count);
        for (auto &v : vals) {
            unsigned bits = static_cast<unsigned>(rng.next() % 65);
            v = bits == 0 ? 0 : rng.next() >> (64 - bits);
        }
        auto bytes = encodeAll(vals);
        ASSERT_EQ(decodeAllRef(bytes, count), vals);

        std::vector<std::uint64_t> got(count);
        std::size_t decoded = 0, consumed = 0;
        ASSERT_EQ(varint::decodeBlock(bytes.data(), bytes.size(),
                                      count, got.data(), &decoded,
                                      &consumed),
                  Status::Ok);
        EXPECT_EQ(decoded, count);
        EXPECT_EQ(consumed, bytes.size());
        EXPECT_EQ(got, vals);
    }
}

TEST(Varint, BlockDecodeResumesAcrossArbitraryBufferSplits)
{
    // Feed the encoded stream in chunks of every awkward size; the
    // decoder must report NeedMore at the split, preserve progress,
    // and produce identical output after the "refill".
    Rng rng(0xBEEFu);
    std::size_t count = 257; // crosses several kBlock boundaries
    std::vector<std::uint64_t> vals(count);
    for (auto &v : vals) {
        unsigned bits = static_cast<unsigned>(rng.next() % 65);
        v = bits == 0 ? 0 : rng.next() >> (64 - bits);
    }
    auto bytes = encodeAll(vals);
    for (std::size_t chunk : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{9},
                              std::size_t{63}, std::size_t{64},
                              std::size_t{65}}) {
        std::vector<std::uint64_t> got;
        std::vector<std::uint8_t> buf;
        std::size_t fed = 0;
        while (got.size() < count) {
            std::size_t want = std::min<std::size_t>(
                varint::kBlock, count - got.size());
            std::array<std::uint64_t, varint::kBlock> out;
            std::size_t decoded = 0, used = 0;
            auto st = varint::decodeBlock(buf.data(), buf.size(), want,
                                          out.data(), &decoded, &used);
            got.insert(got.end(), out.begin(), out.begin() + decoded);
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(used));
            if (st == Status::Ok)
                continue;
            ASSERT_EQ(st, Status::NeedMore);
            ASSERT_LT(fed, bytes.size()) << "decoder starved";
            std::size_t take =
                std::min(chunk, bytes.size() - fed);
            buf.insert(buf.end(), bytes.begin() + fed,
                       bytes.begin() + fed + take);
            fed += take;
        }
        EXPECT_EQ(got, vals) << "chunk=" << chunk;
    }
}

} // namespace
} // namespace sim
} // namespace tlsim
