/**
 * @file
 * Golden equivalence of the conflict-oracle fast path: replaying a
 * captured benchmark with cfg.tls.useConflictOracle on and off must
 * produce bit-identical RunResults -- every bar of Figure 5 and every
 * ablation knob. The oracle may only elide work whose outcome is
 * statically known, never change timing-visible state.
 */

#include <gtest/gtest.h>

#include "cpu/breakdown.h"
#include "sim/experiment.h"

namespace tlsim {
namespace sim {
namespace {

void
expectSameResult(const RunResult &on, const RunResult &off,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(on.makespan, off.makespan);
    for (unsigned c = 0; c < kNumCats; ++c)
        EXPECT_EQ(on.total.cycles[c], off.total.cycles[c])
            << "breakdown category " << catName(static_cast<Cat>(c));
    EXPECT_EQ(on.txns, off.txns);
    EXPECT_EQ(on.epochs, off.epochs);
    EXPECT_EQ(on.totalInsts, off.totalInsts);
    EXPECT_EQ(on.primaryViolations, off.primaryViolations);
    EXPECT_EQ(on.secondaryViolations, off.secondaryViolations);
    EXPECT_EQ(on.squashes, off.squashes);
    EXPECT_EQ(on.rewoundInsts, off.rewoundInsts);
    EXPECT_EQ(on.subthreadsStarted, off.subthreadsStarted);
    EXPECT_EQ(on.overflowEvents, off.overflowEvents);
    EXPECT_EQ(on.latchWaits, off.latchWaits);
    EXPECT_EQ(on.escapeSkips, off.escapeSkips);
    EXPECT_EQ(on.predictorStalls, off.predictorStalls);
    EXPECT_EQ(on.recordsReplayed, off.recordsReplayed);
    EXPECT_EQ(on.l1Hits, off.l1Hits);
    EXPECT_EQ(on.l1Misses, off.l1Misses);
    EXPECT_EQ(on.l2Hits, off.l2Hits);
    EXPECT_EQ(on.l2Misses, off.l2Misses);
    EXPECT_EQ(on.victimHits, off.victimHits);
    EXPECT_EQ(on.branches, off.branches);
    EXPECT_EQ(on.mispredicts, off.mispredicts);
}

/** One capture per benchmark, shared by every comparison below. */
class GoldenEquivTest : public ::testing::Test
{
  protected:
    static const BenchmarkTraces &traces(tpcc::TxnType type)
    {
        static BenchmarkTraces new_order =
            captureTraces(tpcc::TxnType::NewOrder,
                          ExperimentConfig::testPreset());
        static BenchmarkTraces stock_level =
            captureTraces(tpcc::TxnType::StockLevel,
                          ExperimentConfig::testPreset());
        return type == tpcc::TxnType::NewOrder ? new_order
                                               : stock_level;
    }

    static RunResult
    runWithOracle(Bar bar, const BenchmarkTraces &t,
                  ExperimentConfig cfg, bool oracle)
    {
        cfg.machine.tls.useConflictOracle = oracle;
        return runBar(bar, t, cfg);
    }
};

TEST_F(GoldenEquivTest, AllFigure5BarsAreOracleInvariant)
{
    for (tpcc::TxnType type :
         {tpcc::TxnType::NewOrder, tpcc::TxnType::StockLevel}) {
        const BenchmarkTraces &t = traces(type);
        for (Bar bar : allBars()) {
            ExperimentConfig cfg = ExperimentConfig::testPreset();
            expectSameResult(
                runWithOracle(bar, t, cfg, true),
                runWithOracle(bar, t, cfg, false),
                std::string(tpcc::txnTypeName(type)) + "/" +
                    barName(bar));
        }
    }
}

TEST_F(GoldenEquivTest, AblationKnobsAreOracleInvariant)
{
    struct Variant
    {
        const char *name;
        void (*apply)(TlsConfig &);
    };
    const Variant variants[] = {
        {"lazy-updates",
         [](TlsConfig &t) { t.aggressiveUpdates = false; }},
        {"no-start-table",
         [](TlsConfig &t) { t.useStartTable = false; }},
        {"adaptive-spacing",
         [](TlsConfig &t) { t.adaptiveSpacing = true; }},
        {"dependence-predictor",
         [](TlsConfig &t) { t.useDependencePredictor = true; }},
        {"l1-subthread-aware",
         [](TlsConfig &t) { t.l1SubthreadAware = true; }},
        {"no-victim-cache",
         [](TlsConfig &t) { t.useVictimCache = false; }},
    };
    const BenchmarkTraces &t = traces(tpcc::TxnType::NewOrder);
    for (const Variant &v : variants) {
        ExperimentConfig cfg = ExperimentConfig::testPreset();
        v.apply(cfg.machine.tls);
        expectSameResult(runWithOracle(Bar::Baseline, t, cfg, true),
                         runWithOracle(Bar::Baseline, t, cfg, false),
                         v.name);
    }
}

TEST_F(GoldenEquivTest, SmallSubthreadBudgetIsOracleInvariant)
{
    // Coarse checkpoints stress the rewind path: more records replay
    // twice, so covered/conflict bits must hold across re-execution.
    const BenchmarkTraces &t = traces(tpcc::TxnType::NewOrder);
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    cfg.machine.tls.subthreadsPerThread = 2;
    cfg.machine.tls.subthreadSpacing = 500;
    expectSameResult(runWithOracle(Bar::Baseline, t, cfg, true),
                     runWithOracle(Bar::Baseline, t, cfg, false),
                     "k2-spacing500");
}

} // namespace
} // namespace sim
} // namespace tlsim
