/**
 * @file
 * Golden equivalence of the conflict-oracle fast path: replaying a
 * captured benchmark with cfg.tls.useConflictOracle on and off must
 * produce bit-identical RunResults -- every bar of Figure 5 and every
 * ablation knob. The oracle may only elide work whose outcome is
 * statically known, never change timing-visible state.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/simd.h"
#include "cpu/breakdown.h"
#include "sim/executor.h"
#include "sim/experiment.h"

namespace tlsim {
namespace sim {
namespace {

void
expectSameResult(const RunResult &on, const RunResult &off,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(on.makespan, off.makespan);
    for (unsigned c = 0; c < kNumCats; ++c)
        EXPECT_EQ(on.total.cycles[c], off.total.cycles[c])
            << "breakdown category " << catName(static_cast<Cat>(c));
    EXPECT_EQ(on.txns, off.txns);
    EXPECT_EQ(on.epochs, off.epochs);
    EXPECT_EQ(on.totalInsts, off.totalInsts);
    EXPECT_EQ(on.primaryViolations, off.primaryViolations);
    EXPECT_EQ(on.secondaryViolations, off.secondaryViolations);
    EXPECT_EQ(on.squashes, off.squashes);
    EXPECT_EQ(on.rewoundInsts, off.rewoundInsts);
    EXPECT_EQ(on.subthreadsStarted, off.subthreadsStarted);
    EXPECT_EQ(on.overflowEvents, off.overflowEvents);
    EXPECT_EQ(on.latchWaits, off.latchWaits);
    EXPECT_EQ(on.escapeSkips, off.escapeSkips);
    EXPECT_EQ(on.predictorStalls, off.predictorStalls);
    EXPECT_EQ(on.recordsReplayed, off.recordsReplayed);
    EXPECT_EQ(on.l1Hits, off.l1Hits);
    EXPECT_EQ(on.l1Misses, off.l1Misses);
    EXPECT_EQ(on.l2Hits, off.l2Hits);
    EXPECT_EQ(on.l2Misses, off.l2Misses);
    EXPECT_EQ(on.victimHits, off.victimHits);
    EXPECT_EQ(on.branches, off.branches);
    EXPECT_EQ(on.mispredicts, off.mispredicts);
}

/** One capture per benchmark, shared by every comparison below. */
class GoldenEquivTest : public ::testing::Test
{
  protected:
    static const BenchmarkTraces &traces(tpcc::TxnType type)
    {
        static BenchmarkTraces new_order =
            captureTraces(tpcc::TxnType::NewOrder,
                          ExperimentConfig::testPreset());
        static BenchmarkTraces stock_level =
            captureTraces(tpcc::TxnType::StockLevel,
                          ExperimentConfig::testPreset());
        return type == tpcc::TxnType::NewOrder ? new_order
                                               : stock_level;
    }

    static RunResult
    runWithOracle(Bar bar, const BenchmarkTraces &t,
                  ExperimentConfig cfg, bool oracle)
    {
        cfg.machine.tls.useConflictOracle = oracle;
        return runBar(bar, t, cfg);
    }
};

TEST_F(GoldenEquivTest, AllFigure5BarsAreOracleInvariant)
{
    for (tpcc::TxnType type :
         {tpcc::TxnType::NewOrder, tpcc::TxnType::StockLevel}) {
        const BenchmarkTraces &t = traces(type);
        for (Bar bar : allBars()) {
            ExperimentConfig cfg = ExperimentConfig::testPreset();
            expectSameResult(
                runWithOracle(bar, t, cfg, true),
                runWithOracle(bar, t, cfg, false),
                std::string(tpcc::txnTypeName(type)) + "/" +
                    barName(bar));
        }
    }
}

TEST_F(GoldenEquivTest, AblationKnobsAreOracleInvariant)
{
    struct Variant
    {
        const char *name;
        void (*apply)(TlsConfig &);
    };
    const Variant variants[] = {
        {"lazy-updates",
         [](TlsConfig &t) { t.aggressiveUpdates = false; }},
        {"no-start-table",
         [](TlsConfig &t) { t.useStartTable = false; }},
        {"adaptive-spacing",
         [](TlsConfig &t) { t.adaptiveSpacing = true; }},
        {"dependence-predictor",
         [](TlsConfig &t) { t.useDependencePredictor = true; }},
        {"l1-subthread-aware",
         [](TlsConfig &t) { t.l1SubthreadAware = true; }},
        {"no-victim-cache",
         [](TlsConfig &t) { t.useVictimCache = false; }},
    };
    const BenchmarkTraces &t = traces(tpcc::TxnType::NewOrder);
    for (const Variant &v : variants) {
        ExperimentConfig cfg = ExperimentConfig::testPreset();
        v.apply(cfg.machine.tls);
        expectSameResult(runWithOracle(Bar::Baseline, t, cfg, true),
                         runWithOracle(Bar::Baseline, t, cfg, false),
                         v.name);
    }
}

/**
 * SIMD golden equivalence: every Figure 5 bar replayed with the
 * dispatched kernels (AVX2 where the host has it) and with the scalar
 * reference must produce bit-identical RunResults. The vector kernels
 * may only change how bitmap scans are computed, never what they
 * compute.
 */
class SimdGoldenTest : public GoldenEquivTest
{
  protected:
    void TearDown() override { simd::setForceScalar(false); }

    static RunResult
    runScalar(Bar bar, const BenchmarkTraces &t,
              const ExperimentConfig &cfg, bool scalar)
    {
        simd::setForceScalar(scalar);
        RunResult r = runBar(bar, t, cfg);
        simd::setForceScalar(false);
        return r;
    }
};

TEST_F(SimdGoldenTest, AllFigure5BarsAreSimdInvariant)
{
    for (tpcc::TxnType type :
         {tpcc::TxnType::NewOrder, tpcc::TxnType::StockLevel}) {
        const BenchmarkTraces &t = traces(type);
        for (Bar bar : allBars()) {
            ExperimentConfig cfg = ExperimentConfig::testPreset();
            expectSameResult(
                runScalar(bar, t, cfg, false),
                runScalar(bar, t, cfg, true),
                std::string("simd/") + tpcc::txnTypeName(type) + "/" +
                    barName(bar));
        }
    }
}

TEST_F(SimdGoldenTest, VictimAndSubthreadStressIsSimdInvariant)
{
    // Small victim cache + tight checkpoints: maximises traffic through
    // matchMask64 (victim probes) and maskedUnion64 (SM merges on
    // squash), the two dispatched kernels.
    const BenchmarkTraces &t = traces(tpcc::TxnType::NewOrder);
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    cfg.machine.tls.subthreadsPerThread = 2;
    cfg.machine.tls.subthreadSpacing = 500;
    expectSameResult(runScalar(Bar::Baseline, t, cfg, false),
                     runScalar(Bar::Baseline, t, cfg, true),
                     "simd/k2-spacing500");
}

/**
 * Pipeline golden equivalence: running the decode-ahead pipeline
 * (produce overlapping consume on a second thread) must yield the
 * same RunResults as the serial produce-then-consume loop that a
 * one-job executor runs inline.
 */
TEST_F(GoldenEquivTest, PipelinedReplayMatchesSerial)
{
    const BenchmarkTraces &shared = traces(tpcc::TxnType::NewOrder);
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    const std::vector<Bar> &bars = allBars();

    auto sweep = [&](sim::SimExecutor &ex) {
        // Mirrors the bench shape: produce materialises the traces
        // (deep copy, the decode stand-in), consume replays them.
        std::vector<std::unique_ptr<BenchmarkTraces>> t(bars.size());
        std::vector<RunResult> out(bars.size());
        ex.pipeline(
            bars.size(),
            [&](std::size_t i) {
                t[i] = std::make_unique<BenchmarkTraces>(shared);
            },
            [&](std::size_t i) {
                out[i] = runBar(bars[i], *t[i], cfg);
                t[i].reset();
            });
        return out;
    };

    sim::SimExecutor serial_ex(1);
    sim::SimExecutor pipe_ex(2);
    std::vector<RunResult> serial = sweep(serial_ex);
    std::vector<RunResult> piped = sweep(pipe_ex);
    ASSERT_EQ(serial.size(), piped.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(piped[i], serial[i],
                         std::string("pipeline/") + barName(bars[i]));
}

TEST_F(GoldenEquivTest, SmallSubthreadBudgetIsOracleInvariant)
{
    // Coarse checkpoints stress the rewind path: more records replay
    // twice, so covered/conflict bits must hold across re-execution.
    const BenchmarkTraces &t = traces(tpcc::TxnType::NewOrder);
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    cfg.machine.tls.subthreadsPerThread = 2;
    cfg.machine.tls.subthreadSpacing = 500;
    expectSameResult(runWithOracle(Bar::Baseline, t, cfg, true),
                     runWithOracle(Bar::Baseline, t, cfg, false),
                     "k2-spacing500");
}

} // namespace
} // namespace sim
} // namespace tlsim
