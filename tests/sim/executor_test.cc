/**
 * @file
 * SimExecutor unit tests plus the parallel-determinism regression: a
 * runFigure6 sweep with --jobs=8 must produce bit-identical RunResults
 * (makespan and the full cycle breakdown) to the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/executor.h"
#include "sim/experiment.h"

namespace tlsim {
namespace sim {
namespace {

TEST(SimExecutor, RunsEveryIndexExactlyOnce)
{
    SimExecutor ex(4);
    EXPECT_EQ(ex.jobs(), 4u);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ex.parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SimExecutor, ReusableAcrossBatches)
{
    SimExecutor ex(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> sum{0};
        ex.parallelFor(round * 7 + 1,
                       [&](std::size_t) { sum++; });
        EXPECT_EQ(sum.load(), round * 7 + 1);
    }
}

TEST(SimExecutor, UnevenTasksAllComplete)
{
    // Mix one long task among many short ones: the long task pins a
    // worker while the rest get stolen and finished by the others.
    SimExecutor ex(4);
    constexpr std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    ex.parallelFor(n, [&](std::size_t i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        hits[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(SimExecutor, ExceptionPropagatesToCaller)
{
    SimExecutor ex(4);
    EXPECT_THROW(ex.parallelFor(100,
                                [&](std::size_t i) {
                                    if (i == 37)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    // The executor must stay usable after a failed batch.
    std::atomic<int> sum{0};
    ex.parallelFor(10, [&](std::size_t) { sum++; });
    EXPECT_EQ(sum.load(), 10);
}

TEST(SimExecutor, SingleJobRunsInlineOnCallerThread)
{
    SimExecutor ex(1);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    ex.parallelFor(8, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(SimExecutor, MapFillsByIndex)
{
    SimExecutor ex(4);
    std::vector<int> sq =
        ex.map<int>(50, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
    ASSERT_EQ(sq.size(), 50u);
    for (std::size_t i = 0; i < sq.size(); ++i)
        EXPECT_EQ(sq[i], static_cast<int>(i * i));
}

TEST(SimExecutor, AutoJobsIsAtLeastOne)
{
    SimExecutor ex(0);
    EXPECT_GE(ex.jobs(), 1u);
}

TEST(SimExecutor, ManySmallBatchesStress)
{
    // Hammer the open/seed/drain/close cycle: with 4 workers and
    // batches as small as a single task, any window where the batch
    // state is published before it is fully initialized (or recycled
    // before the last worker is out) shows up as a lost or double
    // execution — and as a TSan report in the instrumented build.
    SimExecutor ex(4);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 1 + round % 7;
        std::atomic<std::size_t> sum{0};
        ex.parallelFor(n, [&](std::size_t) { sum++; });
        ASSERT_EQ(sum.load(), n) << "round " << round;
    }
}

TEST(SimExecutorDeathTest, ConcurrentSubmissionPanics)
{
    // The executor is single-submitter by contract; a second
    // parallelFor while a batch is open must panic, not corrupt the
    // shared batch state. The first submitter's task blocks until the
    // overlapping submission has been made, so the overlap is
    // deterministic, not a lucky interleaving.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            SimExecutor ex(2);
            std::atomic<bool> inside{false};
            std::atomic<bool> release{false};
            std::thread submitter([&] {
                ex.parallelFor(1, [&](std::size_t) {
                    inside = true;
                    while (!release)
                        std::this_thread::yield();
                });
            });
            while (!inside)
                std::this_thread::yield();
            // Batch still open (its only task is spinning): the
            // overlapping submission must die here.
            ex.parallelFor(1, [](std::size_t) {});
            release = true;
            submitter.join();
        },
        "not reentrant");
}

// ---------------------------------------------------------------------
// Two-stage pipeline.
// ---------------------------------------------------------------------

TEST(SimExecutorPipeline, BothStagesRunEveryIndexInOrder)
{
    SimExecutor ex(4);
    constexpr std::size_t n = 200;
    std::vector<std::size_t> produced, consumed;
    std::mutex mtx; // produce runs on the producer thread
    ex.pipeline(
        n,
        [&](std::size_t i) {
            std::lock_guard<std::mutex> lk(mtx);
            produced.push_back(i);
        },
        [&](std::size_t i) {
            std::lock_guard<std::mutex> lk(mtx);
            consumed.push_back(i);
        });
    ASSERT_EQ(produced.size(), n);
    ASSERT_EQ(consumed.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(produced[i], i);
        EXPECT_EQ(consumed[i], i);
    }
}

TEST(SimExecutorPipeline, ProducerStaysWithinWindow)
{
    SimExecutor ex(4);
    constexpr std::size_t n = 100;
    constexpr std::size_t window = 3;
    std::atomic<std::size_t> consumed{0};
    std::atomic<bool> overshoot{false};
    ex.pipeline(
        n,
        [&](std::size_t i) {
            // produce(i) may start only once consume(i - window) is
            // done, i.e. i < consumed + window.
            if (i >= consumed.load() + window)
                overshoot = true;
        },
        [&](std::size_t i) { consumed = i + 1; }, window);
    EXPECT_FALSE(overshoot.load());
    EXPECT_EQ(consumed.load(), n);
}

TEST(SimExecutorPipeline, ConsumeSeesProducedData)
{
    // The hand-off is the point: data written by produce(i) on the
    // producer thread must be visible to consume(i) on the caller.
    SimExecutor ex(2);
    constexpr std::size_t n = 500;
    std::vector<std::size_t> slot(n, 0);
    std::size_t sum = 0;
    ex.pipeline(
        n, [&](std::size_t i) { slot[i] = i * i; },
        [&](std::size_t i) { sum += slot[i]; });
    std::size_t want = 0;
    for (std::size_t i = 0; i < n; ++i)
        want += i * i;
    EXPECT_EQ(sum, want);
}

TEST(SimExecutorPipeline, SingleJobRunsSerialInline)
{
    SimExecutor ex(1);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<int> order;
    ex.pipeline(
        3,
        [&](std::size_t i) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(static_cast<int>(i) * 2);
        },
        [&](std::size_t i) {
            order.push_back(static_cast<int>(i) * 2 + 1);
        });
    // Exactly the serial reference: p0 c0 p1 c1 p2 c2.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SimExecutorPipeline, ProduceExceptionPropagates)
{
    SimExecutor ex(4);
    std::atomic<std::size_t> consumed{0};
    EXPECT_THROW(ex.pipeline(
                     100,
                     [&](std::size_t i) {
                         if (i == 7)
                             throw std::runtime_error("produce boom");
                     },
                     [&](std::size_t) { consumed++; }),
                 std::runtime_error);
    // Items beyond the failure point must not have been consumed.
    EXPECT_LE(consumed.load(), 7u);
    // The executor must stay usable afterwards.
    std::atomic<int> sum{0};
    ex.parallelFor(10, [&](std::size_t) { sum++; });
    EXPECT_EQ(sum.load(), 10);
}

TEST(SimExecutorPipeline, ConsumeExceptionPropagates)
{
    SimExecutor ex(4);
    EXPECT_THROW(ex.pipeline(
                     100, [](std::size_t) {},
                     [](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("consume boom");
                     }),
                 std::runtime_error);
    std::atomic<std::size_t> done{0};
    ex.pipeline(
        5, [](std::size_t) {}, [&](std::size_t) { done++; });
    EXPECT_EQ(done.load(), 5u);
}

TEST(SimExecutorPipeline, EmptyAndSingleItemDegenerate)
{
    SimExecutor ex(4);
    int produced = 0, consumed = 0;
    ex.pipeline(
        0, [&](std::size_t) { produced++; },
        [&](std::size_t) { consumed++; });
    EXPECT_EQ(produced, 0);
    EXPECT_EQ(consumed, 0);
    ex.pipeline(
        1, [&](std::size_t) { produced++; },
        [&](std::size_t) { consumed++; });
    EXPECT_EQ(produced, 1);
    EXPECT_EQ(consumed, 1);
}

TEST(SimExecutorPipeline, ZeroWindowIsClampedToOne)
{
    SimExecutor ex(2);
    constexpr std::size_t n = 20;
    std::atomic<std::size_t> consumed{0};
    std::atomic<bool> overshoot{false};
    ex.pipeline(
        n,
        [&](std::size_t i) {
            if (i >= consumed.load() + 1)
                overshoot = true;
        },
        [&](std::size_t i) { consumed = i + 1; }, 0);
    EXPECT_FALSE(overshoot.load());
    EXPECT_EQ(consumed.load(), n);
}

// ---------------------------------------------------------------------
// Determinism regression: parallel == serial, bit for bit.
// ---------------------------------------------------------------------

void
expectRunEq(const RunResult &a, const RunResult &b, const char *what)
{
    EXPECT_EQ(a.makespan, b.makespan) << what;
    for (unsigned c = 0; c < kNumCats; ++c)
        EXPECT_EQ(a.total.cycles[c], b.total.cycles[c])
            << what << " cat " << catName(static_cast<Cat>(c));
    EXPECT_EQ(a.txns, b.txns) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
    EXPECT_EQ(a.totalInsts, b.totalInsts) << what;
    EXPECT_EQ(a.primaryViolations, b.primaryViolations) << what;
    EXPECT_EQ(a.secondaryViolations, b.secondaryViolations) << what;
    EXPECT_EQ(a.squashes, b.squashes) << what;
    EXPECT_EQ(a.rewoundInsts, b.rewoundInsts) << what;
    EXPECT_EQ(a.subthreadsStarted, b.subthreadsStarted) << what;
    EXPECT_EQ(a.overflowEvents, b.overflowEvents) << what;
    EXPECT_EQ(a.latchWaits, b.latchWaits) << what;
    EXPECT_EQ(a.escapeSkips, b.escapeSkips) << what;
    EXPECT_EQ(a.predictorStalls, b.predictorStalls) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.victimHits, b.victimHits) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<tpcc::TxnType>
{
};

// A fresh capture records raw heap addresses, which differ between
// captures even within one process, so the serial reference must run
// over the SAME captured traces as the parallel sweep — exactly the
// contract the benches rely on (capture once, fan the replays out).

TEST_P(ParallelDeterminism, Figure6ParallelMatchesSerial)
{
    tpcc::TxnType type = GetParam();
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    const std::vector<unsigned> counts = {2, 8};
    const std::vector<std::uint64_t> spacings = {1000, 5000, 25000};

    BenchmarkTraces traces = captureTraces(type, cfg);

    // jobs == 1 runs the sweep inline in index order: the serial path.
    SimExecutor serial_ex(1);
    std::vector<SweepPoint> serial =
        runFigure6(type, cfg, counts, spacings, traces, serial_ex);

    SimExecutor ex(8);
    std::vector<SweepPoint> parallel =
        runFigure6(type, cfg, counts, spacings, traces, ex);

    ASSERT_EQ(serial.size(), counts.size() * spacings.size());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].subthreads, parallel[i].subthreads);
        EXPECT_EQ(serial[i].spacing, parallel[i].spacing);
        expectRunEq(serial[i].run, parallel[i].run,
                    tpcc::txnTypeName(type));
    }
}

TEST_P(ParallelDeterminism, Figure5ParallelMatchesSerial)
{
    tpcc::TxnType type = GetParam();
    ExperimentConfig cfg = ExperimentConfig::testPreset();

    BenchmarkTraces traces = captureTraces(type, cfg);

    // Serial reference: the plain bar-by-bar loop, no executor at all.
    std::vector<std::pair<Bar, RunResult>> serial;
    for (Bar bar : allBars())
        serial.emplace_back(bar, runBar(bar, traces, cfg));

    SimExecutor ex(8);
    Figure5Row parallel = runFigure5(type, cfg, traces, ex);

    ASSERT_EQ(serial.size(), parallel.bars.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].first, parallel.bars[i].first);
        expectRunEq(serial[i].second, parallel.bars[i].second,
                    barName(serial[i].first));
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ParallelDeterminism,
                         ::testing::Values(tpcc::TxnType::NewOrder,
                                           tpcc::TxnType::StockLevel));

} // namespace
} // namespace sim
} // namespace tlsim
