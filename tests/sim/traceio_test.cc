#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "sim/traceio.h"

namespace tlsim {
namespace sim {
namespace {

WorkloadTrace
sampleWorkload(std::vector<std::uint64_t> &mem)
{
    Pc pc = SiteRegistry::instance().intern("traceio.test.site");
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.compute(pc, 500);
    t.loopBegin();
    for (int e = 0; e < 3; ++e) {
        t.iterBegin();
        t.compute(pc, 1000);
        t.load(pc, &mem[e], 8, e == 1);
        t.escapeBegin(pc);
        t.latchAcquire(pc, 5);
        t.compute(pc, 100);
        t.latchRelease(pc, 5);
        t.escapeEnd(pc);
        t.store(pc, &mem[100 + e], 8);
        t.branch(pc, true);
    }
    t.loopEnd();
    t.txnEnd();
    return t.takeWorkload();
}

bool
tracesEqual(const WorkloadTrace &a, const WorkloadTrace &b)
{
    if (a.txns.size() != b.txns.size())
        return false;
    for (std::size_t t = 0; t < a.txns.size(); ++t) {
        const auto &ta = a.txns[t], &tb = b.txns[t];
        if (ta.sections.size() != tb.sections.size())
            return false;
        for (std::size_t s = 0; s < ta.sections.size(); ++s) {
            const auto &sa = ta.sections[s], &sb = tb.sections[s];
            if (sa.parallel != sb.parallel ||
                sa.epochs.size() != sb.epochs.size())
                return false;
            for (std::size_t e = 0; e < sa.epochs.size(); ++e) {
                const auto &ea = sa.epochs[e], &eb = sb.epochs[e];
                if (ea.instCount != eb.instCount ||
                    ea.specInstCount != eb.specInstCount ||
                    ea.escapeSpans != eb.escapeSpans ||
                    ea.records.size() != eb.records.size())
                    return false;
                for (std::size_t r = 0; r < ea.records.size(); ++r) {
                    const auto &ra = ea.records[r];
                    const auto &rb = eb.records[r];
                    if (std::memcmp(&ra, &rb, sizeof(ra)) != 0)
                        return false;
                }
            }
        }
    }
    return true;
}

TEST(TraceIo, RoundTripIsLossless)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    std::stringstream ss;
    saveTrace(ss, w);
    WorkloadTrace back;
    ASSERT_TRUE(loadTrace(ss, &back));
    EXPECT_TRUE(tracesEqual(w, back));
}

TEST(TraceIo, ReplayOfReloadedTraceMatches)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    std::stringstream ss;
    saveTrace(ss, w);
    WorkloadTrace back;
    ASSERT_TRUE(loadTrace(ss, &back));

    MachineConfig cfg;
    TlsMachine m(cfg);
    RunResult a = m.run(w, ExecMode::Tls);
    RunResult b = m.run(back, ExecMode::Tls);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.primaryViolations, b.primaryViolations);
    EXPECT_EQ(a.totalInsts, b.totalInsts);
}

TEST(TraceIo, RejectsForeignFiles)
{
    std::stringstream ss;
    ss << "this is not a trace file at all";
    WorkloadTrace out;
    EXPECT_FALSE(loadTrace(ss, &out));
}

TEST(TraceIo, RejectsWrongVersion)
{
    std::stringstream ss;
    std::uint32_t magic = kTraceMagic, version = kTraceVersion + 1;
    ss.write(reinterpret_cast<char *>(&magic), 4);
    ss.write(reinterpret_cast<char *>(&version), 4);
    WorkloadTrace out;
    EXPECT_FALSE(loadTrace(ss, &out));
}

TEST(TraceIoDeathTest, TruncatedFilePanics)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    std::stringstream ss;
    saveTrace(ss, w);
    std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    WorkloadTrace out;
    EXPECT_DEATH(loadTrace(cut, &out), "truncated");
}

TEST(TraceIo, FileRoundTrip)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    std::string path = ::testing::TempDir() + "/tlsim_test.trace";
    saveTraceFile(path, w);
    WorkloadTrace back;
    ASSERT_TRUE(loadTraceFile(path, &back));
    EXPECT_TRUE(tracesEqual(w, back));
    std::remove(path.c_str());
}

TEST(TraceIo, SiteNamesSurviveSerialization)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    std::stringstream ss;
    saveTrace(ss, w);
    WorkloadTrace back;
    ASSERT_TRUE(loadTrace(ss, &back));
    // Same process: the remap is the identity, and the PC still
    // resolves to the interned name.
    Pc pc = back.txns[0].sections[0].epochs[0].records[0].pc;
    EXPECT_EQ(SiteRegistry::instance().name(pc), "traceio.test.site");
}

// --- Loader hardening: structurally malformed files are rejected with
// a clear error, not loaded (and not a crash). The writer serializes
// in-memory structs verbatim, so corrupting the struct before saveTrace
// produces a byte-stream with exactly the targeted defect. ------------

/** Save `w` and expect the loader to reject it. */
void
expectRejected(WorkloadTrace &w)
{
    std::stringstream ss;
    saveTrace(ss, w);
    WorkloadTrace out;
    EXPECT_FALSE(loadTrace(ss, &out));
}

EpochTrace &
firstParallelEpoch(WorkloadTrace &w)
{
    return w.txns.at(0).sections.at(1).epochs.at(0);
}

TEST(TraceIo, RejectsUnknownOpcode)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    firstParallelEpoch(w).records[0].op = static_cast<TraceOp>(200);
    expectRejected(w);
}

TEST(TraceIo, RejectsMemoryRecordSizeOutOfRange)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    for (auto &r : firstParallelEpoch(w).records) {
        if (r.op == TraceOp::Load) {
            r.size = 0; // memory ops must touch 1..128 bytes
            break;
        }
    }
    expectRejected(w);

    WorkloadTrace w2 = sampleWorkload(mem);
    for (auto &r : firstParallelEpoch(w2).records) {
        if (r.op == TraceOp::Store) {
            r.size = 200;
            break;
        }
    }
    expectRejected(w2);
}

TEST(TraceIo, RejectsOutOfBoundsEscapeSpan)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    EpochTrace &e = firstParallelEpoch(w);
    ASSERT_FALSE(e.escapeSpans.empty());
    e.escapeSpans[0].second =
        static_cast<std::uint32_t>(e.records.size()); // one past end
    expectRejected(w);
}

TEST(TraceIo, RejectsInvertedEscapeSpan)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    EpochTrace &e = firstParallelEpoch(w);
    ASSERT_FALSE(e.escapeSpans.empty());
    std::swap(e.escapeSpans[0].first, e.escapeSpans[0].second);
    expectRejected(w);
}

TEST(TraceIo, RejectsOverlappingEscapeSpans)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    EpochTrace &e = firstParallelEpoch(w);
    ASSERT_FALSE(e.escapeSpans.empty());
    // Duplicate the first span: the second copy starts at (not after)
    // the previous end, violating the strict ordering invariant.
    e.escapeSpans.push_back(e.escapeSpans[0]);
    expectRejected(w);
}

TEST(TraceIo, RejectsUnanchoredEscapeSpan)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    EpochTrace &e = firstParallelEpoch(w);
    ASSERT_FALSE(e.escapeSpans.empty());
    // Shift the span off its EscapeBegin/EscapeEnd records.
    ASSERT_GT(e.escapeSpans[0].first, 0u);
    --e.escapeSpans[0].first;
    --e.escapeSpans[0].second;
    expectRejected(w);
}

TEST(TraceIo, RejectsMoreSpansThanRecords)
{
    std::vector<std::uint64_t> mem(256);
    WorkloadTrace w = sampleWorkload(mem);
    EpochTrace &e = firstParallelEpoch(w);
    e.escapeSpans.assign(e.records.size() + 1, {0, 0});
    expectRejected(w);
}

TEST(TraceIo, EmptyWorkloadRoundTrips)
{
    WorkloadTrace w;
    std::stringstream ss;
    saveTrace(ss, w);
    WorkloadTrace back;
    ASSERT_TRUE(loadTrace(ss, &back));
    EXPECT_TRUE(back.txns.empty());
}

} // namespace
} // namespace sim
} // namespace tlsim
