/**
 * @file
 * Whole-pipeline smoke across every benchmark at test scale: capture,
 * all five Figure-5 bars, and the cross-benchmark claims the paper
 * makes (which transactions benefit and which cannot).
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace tlsim {
namespace sim {
namespace {

ExperimentConfig
cfg()
{
    ExperimentConfig c = ExperimentConfig::testPreset();
    c.scale.items = 1200;
    c.scale.customersPerDistrict = 80;
    c.scale.ordersPerDistrict = 80;
    c.scale.firstNewOrder = 41;
    c.txns = 5;
    c.warmupTxns = 1;
    return c;
}

class AllBenchmarks
    : public ::testing::TestWithParam<tpcc::TxnType>
{
};

TEST_P(AllBenchmarks, Figure5InvariantsHold)
{
    Figure5Row row = runFigure5(GetParam(), cfg());

    const RunResult &seq = row.result(Bar::Sequential);
    EXPECT_EQ(seq.primaryViolations, 0u);
    EXPECT_NEAR(static_cast<double>(seq.total[Cat::Idle]) /
                    static_cast<double>(seq.total.total()),
                0.75, 0.01);

    for (const auto &[bar, run] : row.bars) {
        EXPECT_EQ(run.total.total(), run.makespan * 4) << barName(bar);
        EXPECT_GT(run.makespan, 0u) << barName(bar);
    }

    // TLS-SEQ overhead band (paper: 0.93x-1.05x; we allow slack for
    // the reduced scale).
    EXPECT_GT(row.speedup(Bar::TlsSeq), 0.75);
    EXPECT_LT(row.speedup(Bar::TlsSeq), 1.30);

    // Nothing beats ignoring dependences by more than noise.
    EXPECT_LE(row.speedup(Bar::Baseline),
              row.speedup(Bar::NoSpeculation) * 1.06);

    // Sub-threads never lose to all-or-nothing by more than noise.
    EXPECT_GE(row.speedup(Bar::Baseline),
              row.speedup(Bar::NoSubthread) * 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, AllBenchmarks,
    ::testing::ValuesIn(tpcc::allBenchmarks()),
    [](const ::testing::TestParamInfo<tpcc::TxnType> &info) {
        std::string n = tpcc::txnTypeName(info.param);
        for (char &c : n)
            if (c == ' ')
                c = '_';
        return n;
    });

TEST(CrossBenchmark, CoverageBoundTransactionsStayFlat)
{
    // PAYMENT's coverage is ~1-3%: Amdahl forbids speedup.
    Figure5Row payment = runFigure5(tpcc::TxnType::Payment, cfg());
    EXPECT_LT(payment.speedup(Bar::Baseline), 1.15);
    EXPECT_LT(payment.speedup(Bar::NoSpeculation), 1.15);
}

TEST(CrossBenchmark, NewOrderBenefitsSubstantially)
{
    Figure5Row row = runFigure5(tpcc::TxnType::NewOrder, cfg());
    EXPECT_GT(row.speedup(Bar::Baseline), 1.5);
}

} // namespace
} // namespace sim
} // namespace tlsim
