/**
 * @file
 * Trace-cache tests: key stability/distinctness and the on-disk
 * roundtrip (the second captureTracesShared() loads from disk and must
 * replay identically to the first).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "base/stats.h"
#include "sim/executor.h"
#include "sim/tracecache.h"
#include "sim/traceio.h"

namespace tlsim {
namespace sim {
namespace {

ExperimentConfig
tinyConfig()
{
    ExperimentConfig cfg = ExperimentConfig::testPreset();
    cfg.txns = 4;
    cfg.warmupTxns = 1;
    return cfg;
}

std::string
freshCacheDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "/tlsim_tc_" + tag + "_" +
                      std::to_string(::getpid());
    return dir;
}

TEST(TraceCacheKey, StableForIdenticalConfigs)
{
    ExperimentConfig a = tinyConfig();
    ExperimentConfig b = tinyConfig();
    EXPECT_EQ(traceCacheKey(tpcc::TxnType::NewOrder, a),
              traceCacheKey(tpcc::TxnType::NewOrder, b));
}

TEST(TraceCacheKey, DistinguishesCaptureParameters)
{
    ExperimentConfig base = tinyConfig();
    std::string k0 = traceCacheKey(tpcc::TxnType::NewOrder, base);

    EXPECT_NE(k0, traceCacheKey(tpcc::TxnType::Payment, base));

    ExperimentConfig more_txns = base;
    more_txns.txns += 1;
    EXPECT_NE(k0, traceCacheKey(tpcc::TxnType::NewOrder, more_txns));

    ExperimentConfig other_seed = base;
    other_seed.inputSeed += 1;
    EXPECT_NE(k0, traceCacheKey(tpcc::TxnType::NewOrder, other_seed));

    ExperimentConfig other_load = base;
    other_load.loadSeed += 1;
    EXPECT_NE(k0, traceCacheKey(tpcc::TxnType::NewOrder, other_load));
}

TEST(TraceCacheKey, IgnoresReplayOnlyKnobs)
{
    ExperimentConfig base = tinyConfig();
    ExperimentConfig replay = base;
    replay.warmupTxns += 1;
    replay.machine.tls.subthreadsPerThread += 2;
    EXPECT_EQ(traceCacheKey(tpcc::TxnType::NewOrder, base),
              traceCacheKey(tpcc::TxnType::NewOrder, replay));
}

TEST(TraceCache, EmptyDirBypassesDisk)
{
    ExperimentConfig cfg = tinyConfig();
    SharedTraces t =
        captureTracesShared(tpcc::TxnType::StockLevel, cfg, "");
    ASSERT_NE(t, nullptr);
    EXPECT_FALSE(t->tls.txns.empty());
}

TEST(TraceCache, SecondLoadReplaysIdentically)
{
    ExperimentConfig cfg = tinyConfig();
    std::string dir = freshCacheDir("roundtrip");

    // First call captures and writes the cache files.
    SharedTraces first =
        captureTracesShared(tpcc::TxnType::NewOrder, cfg, dir);
    ASSERT_NE(first, nullptr);

    std::string key = traceCacheKey(tpcc::TxnType::NewOrder, cfg);
    std::string base = dir + "/NEW_ORDER-" + key;
    EXPECT_TRUE(std::ifstream(base + ".orig.trace").good());
    EXPECT_TRUE(std::ifstream(base + ".tls.trace").good());

    // Second call must come from disk and replay identically.
    SharedTraces second =
        captureTracesShared(tpcc::TxnType::NewOrder, cfg, dir);
    ASSERT_NE(second, nullptr);

    for (Bar bar : allBars()) {
        RunResult a = runBar(bar, *first, cfg);
        RunResult b = runBar(bar, *second, cfg);
        EXPECT_EQ(a.makespan, b.makespan) << barName(bar);
        EXPECT_EQ(a.totalInsts, b.totalInsts) << barName(bar);
        EXPECT_EQ(a.primaryViolations, b.primaryViolations)
            << barName(bar);
        EXPECT_EQ(a.epochs, b.epochs) << barName(bar);
    }
}

TEST(TraceCache, ParallelSameKeySingleCapture)
{
    // Concurrent executor tasks asking for the same (benchmark,
    // config) must be serialized single-flight: exactly one capture
    // writes the cache files, everyone else loads them. Before the
    // per-stem lock, two concurrent captures could interleave their
    // writes to the same paths and leave a torn trace on disk.
    ExperimentConfig cfg = tinyConfig();
    std::string dir = freshCacheDir("parallel");
    auto &gc = stats::GlobalCounters::instance();
    gc.reset();

    constexpr std::size_t kCallers = 8;
    std::vector<SharedTraces> got(kCallers);
    SimExecutor ex(kCallers);
    ex.parallelFor(kCallers, [&](std::size_t i) {
        got[i] = captureTracesShared(tpcc::TxnType::Delivery, cfg, dir);
    });

    for (std::size_t i = 0; i < kCallers; ++i)
        ASSERT_NE(got[i], nullptr) << "caller " << i;
    EXPECT_EQ(gc.value("tracecache.capture"), 1u);
    EXPECT_EQ(gc.value("tracecache.hit"), kCallers - 1);

    // The files the racers left behind are complete and loadable.
    std::string key = traceCacheKey(tpcc::TxnType::Delivery, cfg);
    std::string base = dir + "/DELIVERY-" + key;
    WorkloadTrace orig, tls;
    EXPECT_TRUE(loadTraceFile(base + ".orig.trace", &orig));
    EXPECT_TRUE(loadTraceFile(base + ".tls.trace", &tls));

    // Every caller sees the same shape (they share one capture).
    for (std::size_t i = 1; i < kCallers; ++i)
        EXPECT_EQ(got[i]->tls.txns.size(), got[0]->tls.txns.size());
    gc.reset();
}

TEST(TraceCache, CorruptCacheFileFallsBackToCapture)
{
    ExperimentConfig cfg = tinyConfig();
    std::string dir = freshCacheDir("corrupt");

    SharedTraces first =
        captureTracesShared(tpcc::TxnType::OrderStatus, cfg, dir);
    ASSERT_NE(first, nullptr);

    std::string key = traceCacheKey(tpcc::TxnType::OrderStatus, cfg);
    std::string path = dir + "/ORDER_STATUS-" + key + ".tls.trace";
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "junk that is not a trace";
    }

    // Wrong magic is treated as a miss, not a panic. The re-capture
    // records fresh heap addresses, so compare address-independent
    // structure rather than timing.
    SharedTraces again =
        captureTracesShared(tpcc::TxnType::OrderStatus, cfg, dir);
    ASSERT_NE(again, nullptr);
    ASSERT_EQ(again->tls.txns.size(), first->tls.txns.size());
    for (std::size_t t = 0; t < first->tls.txns.size(); ++t)
        EXPECT_EQ(again->tls.txns[t].sections.size(),
                  first->tls.txns[t].sections.size());

    // The corrupt file was replaced by a valid one.
    WorkloadTrace reloaded;
    EXPECT_TRUE(loadTraceFile(path, &reloaded));
}

} // namespace
} // namespace sim
} // namespace tlsim
