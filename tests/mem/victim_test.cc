#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "base/config.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "mem/victim.h"
#include "verify/auditor.h"

namespace tlsim {
namespace {

TEST(VictimCache, InsertLookupRemove)
{
    VictimCache v(4);
    EXPECT_FALSE(v.presentLine(10));
    v.insert(10, 0);
    EXPECT_TRUE(v.presentLine(10));
    EXPECT_TRUE(v.present(10, 0));
    EXPECT_FALSE(v.present(10, 1));
    EXPECT_TRUE(v.remove(10, 0));
    EXPECT_FALSE(v.presentLine(10));
    EXPECT_FALSE(v.remove(10, 0));
}

TEST(VictimCache, OccupancyAndFull)
{
    VictimCache v(2);
    EXPECT_EQ(v.occupancy(), 0u);
    v.insert(1, 0);
    v.insert(2, 1);
    EXPECT_TRUE(v.full());
    EXPECT_EQ(v.occupancy(), 2u);
}

TEST(VictimCacheDeathTest, InsertWhenFullPanics)
{
    VictimCache v(1);
    v.insert(1, 0);
    EXPECT_DEATH(v.insert(2, 0), "no free slot");
}

TEST(VictimCache, AccessLineCountsHits)
{
    VictimCache v(4);
    v.insert(5, 2);
    EXPECT_TRUE(v.accessLine(5));
    EXPECT_FALSE(v.accessLine(6));
    EXPECT_EQ(v.hits(), 1u);
}

TEST(VictimCache, MultipleVersionsOfSameLine)
{
    VictimCache v(4);
    v.insert(7, 0);
    v.insert(7, 1);
    EXPECT_TRUE(v.present(7, 0));
    EXPECT_TRUE(v.present(7, 1));
    v.remove(7, 0);
    EXPECT_TRUE(v.presentLine(7));
}

TEST(VictimCache, DropOneCommittedPrefersLruAndSkipsSpec)
{
    VictimCache v(3);
    v.insert(1, kCommittedVersion);
    v.insert(2, kCommittedVersion);
    v.insert(3, 0); // speculative version
    v.accessLine(1); // make line 1 MRU
    bool dropped = v.dropOneCommitted([](Addr l) { return l == 2; });
    // Line 2 carries spec metadata, line 1 is MRU, so... line 2 is
    // skipped and line 1 is the only committed candidate left.
    EXPECT_TRUE(dropped);
    EXPECT_FALSE(v.presentLine(1));
    EXPECT_TRUE(v.presentLine(2));
    EXPECT_TRUE(v.presentLine(3));
}

TEST(VictimCache, DropOneCommittedFailsWhenAllSpec)
{
    VictimCache v(2);
    v.insert(1, 0);
    v.insert(2, kCommittedVersion);
    bool dropped = v.dropOneCommitted([](Addr) { return true; });
    EXPECT_FALSE(dropped);
}

TEST(VictimCache, TakeAllOfVersion)
{
    VictimCache v(4);
    v.insert(1, 0);
    v.insert(2, 0);
    v.insert(3, 1);
    auto lines = v.takeAllOfVersion(0);
    EXPECT_EQ(lines.size(), 2u);
    EXPECT_FALSE(v.presentLine(1));
    EXPECT_FALSE(v.presentLine(2));
    EXPECT_TRUE(v.presentLine(3));
}

TEST(VictimCache, RenameToCommitted)
{
    VictimCache v(4);
    v.insert(9, 2);
    EXPECT_TRUE(v.renameToCommitted(9, 2));
    EXPECT_TRUE(v.present(9, kCommittedVersion));
    EXPECT_FALSE(v.renameToCommitted(9, 2));
}

TEST(VictimCache, ZeroCapacityIsAlwaysFull)
{
    VictimCache v(0);
    EXPECT_TRUE(v.full());
    EXPECT_FALSE(v.accessLine(1));
}

// ---------------------------------------------------------------------
// Overflow behaviour at the paper's Table 1 capacity (64 entries) and
// on the full machine path, where running out of victim-cache space
// must surface as a speculation failure, never silent state loss.
// ---------------------------------------------------------------------

TEST(VictimCacheOverflow, Table1CapacityBoundary)
{
    ASSERT_EQ(MemConfig{}.victimEntries, 64u) << "paper Table 1";
    VictimCache v(MemConfig{}.victimEntries);
    for (Addr line = 0; line < 63; ++line)
        v.insert(line, 0);
    EXPECT_FALSE(v.full());
    EXPECT_EQ(v.occupancy(), 63u);
    v.insert(63, 0); // the 64th entry is the last legal insert
    EXPECT_TRUE(v.full());
    EXPECT_EQ(v.occupancy(), 64u);
    for (Addr line = 0; line < 64; ++line)
        EXPECT_TRUE(v.present(line, 0));
}

TEST(VictimCacheOverflow, CommittedEntriesYieldBeforeSpeculative)
{
    // At capacity, committed lines are sacrificed one by one; only
    // when every entry is speculative is the cache truly stuck.
    VictimCache v(4);
    v.insert(1, kCommittedVersion);
    v.insert(2, 0);
    v.insert(3, 1);
    v.insert(4, kCommittedVersion);
    ASSERT_TRUE(v.full());
    EXPECT_TRUE(v.dropOneCommitted([](Addr) { return false; }));
    EXPECT_TRUE(v.dropOneCommitted([](Addr) { return false; }));
    EXPECT_FALSE(v.dropOneCommitted([](Addr) { return false; }));
    EXPECT_EQ(v.occupancy(), 2u);
}

/** Synthetic-workload builder (same shape as the machine tests). */
class TraceBuilder
{
  public:
    TraceBuilder()
        : mem_(16384, 0)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        tracer_ = std::make_unique<Tracer>(o);
        pc_ = SiteRegistry::instance().intern("test.victim.site");
    }

    void *addr(std::size_t word) { return &mem_.at(word); }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        tracer_->txnBegin();
        tracer_->compute(pc_, 100);
        tracer_->loopBegin();
        for (const auto &body : bodies) {
            tracer_->iterBegin();
            body(*tracer_);
        }
        tracer_->loopEnd();
        tracer_->compute(pc_, 100);
        tracer_->txnEnd();
        return tracer_->takeWorkload();
    }

    Pc pc() const { return pc_; }

  private:
    std::vector<std::uint64_t> mem_;
    std::unique_ptr<Tracer> tracer_;
    Pc pc_;
};

/** Four epochs each storing to 64 lines that land in 4 L2 sets. */
WorkloadTrace
overflowWorkload(TraceBuilder &b)
{
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int e = 0; e < 4; ++e) {
        bodies.push_back([&b, e](Tracer &t) {
            for (int i = 0; i < 64; ++i) {
                t.store(b.pc(), b.addr(1024 * e + i * 16), 8);
                t.compute(b.pc(), 50);
            }
        });
    }
    return b.loopTxn(bodies);
}

MachineConfig
tinyCacheConfig()
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = 2;
    cfg.tls.subthreadSpacing = 2000;
    cfg.mem.l2Bytes = 4 * 4 * 32; // 4 sets x 4 ways
    cfg.mem.victimEntries = 4;
    return cfg;
}

TEST(VictimCacheOverflow, MachinePathOverflowIsSpeculationFailure)
{
    TraceBuilder b;
    WorkloadTrace w = overflowWorkload(b);
    TlsMachine m(tinyCacheConfig());
    RunResult r = m.run(w, ExecMode::Tls);
    // Overflow must be visible as failed speculation (stall/squash
    // events), with every epoch still retired exactly once.
    EXPECT_GT(r.overflowEvents, 0u);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_EQ(r.commitOrder.size(), 4u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(VictimCacheOverflow, OverflowPathSurvivesFullAudit)
{
    // The overflow/recovery path must uphold every protocol invariant:
    // an access denied for lack of victim space performs no partial
    // metadata update, so the auditor sees a consistent machine both
    // before the stall and after the recovery squash.
    TraceBuilder b;
    WorkloadTrace w = overflowWorkload(b);

    TlsMachine plain(tinyCacheConfig());
    RunResult r0 = plain.run(w, ExecMode::Tls);

    MachineConfig cfg = tinyCacheConfig();
    cfg.tls.auditLevel = AuditLevel::Full;
    TlsMachine audited(cfg);
    RunResult r1 = verify::runWithAudit(audited, w, ExecMode::Tls);

    EXPECT_GT(r1.overflowEvents, 0u);
    EXPECT_GT(r1.auditChecks, 0u);
    EXPECT_EQ(r0.makespan, r1.makespan);
    EXPECT_EQ(r0.overflowEvents, r1.overflowEvents);
    EXPECT_EQ(r0.commitOrder, r1.commitOrder);
}

} // namespace
} // namespace tlsim
