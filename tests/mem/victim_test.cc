#include <gtest/gtest.h>

#include "mem/victim.h"

namespace tlsim {
namespace {

TEST(VictimCache, InsertLookupRemove)
{
    VictimCache v(4);
    EXPECT_FALSE(v.presentLine(10));
    v.insert(10, 0);
    EXPECT_TRUE(v.presentLine(10));
    EXPECT_TRUE(v.present(10, 0));
    EXPECT_FALSE(v.present(10, 1));
    EXPECT_TRUE(v.remove(10, 0));
    EXPECT_FALSE(v.presentLine(10));
    EXPECT_FALSE(v.remove(10, 0));
}

TEST(VictimCache, OccupancyAndFull)
{
    VictimCache v(2);
    EXPECT_EQ(v.occupancy(), 0u);
    v.insert(1, 0);
    v.insert(2, 1);
    EXPECT_TRUE(v.full());
    EXPECT_EQ(v.occupancy(), 2u);
}

TEST(VictimCacheDeathTest, InsertWhenFullPanics)
{
    VictimCache v(1);
    v.insert(1, 0);
    EXPECT_DEATH(v.insert(2, 0), "no free slot");
}

TEST(VictimCache, AccessLineCountsHits)
{
    VictimCache v(4);
    v.insert(5, 2);
    EXPECT_TRUE(v.accessLine(5));
    EXPECT_FALSE(v.accessLine(6));
    EXPECT_EQ(v.hits(), 1u);
}

TEST(VictimCache, MultipleVersionsOfSameLine)
{
    VictimCache v(4);
    v.insert(7, 0);
    v.insert(7, 1);
    EXPECT_TRUE(v.present(7, 0));
    EXPECT_TRUE(v.present(7, 1));
    v.remove(7, 0);
    EXPECT_TRUE(v.presentLine(7));
}

TEST(VictimCache, DropOneCommittedPrefersLruAndSkipsSpec)
{
    VictimCache v(3);
    v.insert(1, kCommittedVersion);
    v.insert(2, kCommittedVersion);
    v.insert(3, 0); // speculative version
    v.accessLine(1); // make line 1 MRU
    bool dropped = v.dropOneCommitted([](Addr l) { return l == 2; });
    // Line 2 carries spec metadata, line 1 is MRU, so... line 2 is
    // skipped and line 1 is the only committed candidate left.
    EXPECT_TRUE(dropped);
    EXPECT_FALSE(v.presentLine(1));
    EXPECT_TRUE(v.presentLine(2));
    EXPECT_TRUE(v.presentLine(3));
}

TEST(VictimCache, DropOneCommittedFailsWhenAllSpec)
{
    VictimCache v(2);
    v.insert(1, 0);
    v.insert(2, kCommittedVersion);
    bool dropped = v.dropOneCommitted([](Addr) { return true; });
    EXPECT_FALSE(dropped);
}

TEST(VictimCache, TakeAllOfVersion)
{
    VictimCache v(4);
    v.insert(1, 0);
    v.insert(2, 0);
    v.insert(3, 1);
    auto lines = v.takeAllOfVersion(0);
    EXPECT_EQ(lines.size(), 2u);
    EXPECT_FALSE(v.presentLine(1));
    EXPECT_FALSE(v.presentLine(2));
    EXPECT_TRUE(v.presentLine(3));
}

TEST(VictimCache, RenameToCommitted)
{
    VictimCache v(4);
    v.insert(9, 2);
    EXPECT_TRUE(v.renameToCommitted(9, 2));
    EXPECT_TRUE(v.present(9, kCommittedVersion));
    EXPECT_FALSE(v.renameToCommitted(9, 2));
}

TEST(VictimCache, ZeroCapacityIsAlwaysFull)
{
    VictimCache v(0);
    EXPECT_TRUE(v.full());
    EXPECT_FALSE(v.accessLine(1));
}

} // namespace
} // namespace tlsim
