#include <gtest/gtest.h>

#include "mem/l1cache.h"

namespace tlsim {
namespace {

// 4 sets x 2 ways x 32B lines = 256B cache for easy conflict tests.
L1Cache
tiny()
{
    return L1Cache(256, 2, 32);
}

TEST(L1Cache, MissThenHit)
{
    L1Cache c = tiny();
    EXPECT_FALSE(c.access(10));
    c.insert(10);
    EXPECT_TRUE(c.access(10));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(L1Cache, LruEvictionWithinSet)
{
    L1Cache c = tiny();
    // Lines 0, 4, 8 all map to set 0 (4 sets).
    c.insert(0);
    c.insert(4);
    EXPECT_TRUE(c.access(0)); // 4 becomes LRU
    c.insert(8);              // evicts 4
    EXPECT_TRUE(c.present(0));
    EXPECT_FALSE(c.present(4));
    EXPECT_TRUE(c.present(8));
}

TEST(L1Cache, InsertIsIdempotent)
{
    L1Cache c = tiny();
    c.insert(3);
    c.insert(3);
    c.insert(7); // same set as 3; both must fit in 2 ways
    EXPECT_TRUE(c.present(3));
    EXPECT_TRUE(c.present(7));
}

TEST(L1Cache, InvalidateDropsLine)
{
    L1Cache c = tiny();
    c.insert(5);
    c.invalidate(5);
    EXPECT_FALSE(c.present(5));
    // Invalidating an absent line is a no-op.
    c.invalidate(99);
}

TEST(L1Cache, SquashInvalidatesOnlySpecWrittenLines)
{
    L1Cache c = tiny();
    c.insert(1);
    c.insert(2);
    c.insert(3);
    c.markSpecWritten(1);
    c.markSpecRead(2);
    EXPECT_EQ(c.squashSpecWrites(), 1u);
    EXPECT_FALSE(c.present(1)); // modified: dropped
    EXPECT_TRUE(c.present(2));  // only read: survives
    EXPECT_TRUE(c.present(3));  // untouched
}

TEST(L1Cache, EpochBoundaryClearsFlagsAndAppliesStales)
{
    L1Cache c = tiny();
    c.insert(1);
    c.insert(2);
    c.markSpecWritten(1);
    c.markStale(2);
    c.epochBoundary();
    // Spec flags cleared: a squash now invalidates nothing.
    EXPECT_EQ(c.squashSpecWrites(), 0u);
    EXPECT_TRUE(c.present(1));
    // Stale copy dropped at the boundary.
    EXPECT_FALSE(c.present(2));
}

TEST(L1Cache, StaleLineStillUsableBeforeBoundary)
{
    L1Cache c = tiny();
    c.insert(2);
    c.markStale(2);
    EXPECT_TRUE(c.access(2)); // older epoch may keep reading its copy
}

TEST(L1Cache, ResetDropsEverything)
{
    L1Cache c = tiny();
    c.insert(1);
    c.access(1);
    c.reset();
    EXPECT_FALSE(c.present(1));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(L1Cache, PaperSizedConfigurationWorks)
{
    L1Cache c(32 * 1024, 4, 32); // 256 sets x 4 ways
    for (Addr l = 0; l < 1024; ++l)
        c.insert(l);
    unsigned present = 0;
    for (Addr l = 0; l < 1024; ++l)
        present += c.present(l);
    EXPECT_EQ(present, 1024u); // exactly fills the cache
    c.insert(1024);            // one conflict eviction
    EXPECT_TRUE(c.present(1024));
}

} // namespace
} // namespace tlsim
