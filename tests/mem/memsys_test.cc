#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/memsys.h"

namespace tlsim {
namespace {

/** Programmable epoch ordering for propagation tests. */
class FakeHooks : public TlsHooks
{
  public:
    std::uint64_t
    epochSeq(CpuId cpu) const override
    {
        return cpu < seqs.size() ? seqs[cpu] : kNoEpoch;
    }

    bool
    lineHasSpecState(Addr line) const override
    {
        return specLines.count(line) > 0;
    }

    std::vector<std::uint64_t> seqs;
    std::set<Addr> specLines;
};

struct MemSysFixture : public ::testing::Test
{
    MemSysFixture() : mem(baselineConfig())
    {
        hooks.seqs = {kNoEpoch, kNoEpoch, kNoEpoch, kNoEpoch};
        mem.setHooks(&hooks);
    }

    FakeHooks hooks;
    MemSystem mem;
};

TEST_F(MemSysFixture, ColdLoadGoesToMemory)
{
    MemAccess a = mem.load(0, 0x10000, 100, false);
    EXPECT_FALSE(a.l1Hit);
    EXPECT_TRUE(a.memFetch);
    // >= crossbar + L2 lookup + memory latency
    EXPECT_GE(a.readyAt, 100u + 10 + 75);
}

TEST_F(MemSysFixture, SecondLoadHitsL1)
{
    mem.load(0, 0x10000, 100, false);
    MemAccess a = mem.load(0, 0x10000, 300, false);
    EXPECT_TRUE(a.l1Hit);
    EXPECT_EQ(a.readyAt, 301u);
}

TEST_F(MemSysFixture, OtherCpuHitsL2AfterFill)
{
    mem.load(0, 0x10000, 100, false);
    MemAccess a = mem.load(1, 0x10000, 500, false);
    EXPECT_FALSE(a.l1Hit);
    EXPECT_TRUE(a.l2Hit);
    EXPECT_FALSE(a.memFetch);
    EXPECT_LT(a.readyAt, 500u + 30);
}

TEST_F(MemSysFixture, MemoryBandwidthSerializesFetches)
{
    MemAccess a = mem.load(0, 0x10000, 100, false);
    MemAccess b = mem.load(1, 0x20000, 100, false);
    // Both go to memory; the second is delayed by the 1-per-20-cycle
    // bandwidth limit.
    EXPECT_TRUE(a.memFetch);
    EXPECT_TRUE(b.memFetch);
    EXPECT_GE(b.readyAt, a.readyAt + 10);
}

TEST_F(MemSysFixture, StoreDoesNotBlockTheCore)
{
    MemAccess a = mem.store(0, 0x30000, 100, false);
    EXPECT_EQ(a.readyAt, 101u);
}

TEST_F(MemSysFixture, SpeculativeStoreCreatesThreadVersion)
{
    hooks.seqs = {5, 6, kNoEpoch, kNoEpoch};
    mem.store(0, 0x30000, 100, true);
    Addr line = mem.geom().lineNum(0x30000);
    EXPECT_TRUE(mem.l2().hasEntry(line, 0));
    EXPECT_EQ(mem.threadVersionLines(0).count(line), 1u);
}

TEST_F(MemSysFixture, StoreInvalidatesYoungerCpusCopy)
{
    hooks.seqs = {5, 6, kNoEpoch, kNoEpoch};
    // CPU1 (younger epoch) caches the line; CPU0 (older) stores.
    mem.load(1, 0x40000, 100, true);
    ASSERT_TRUE(mem.dcache(1).present(mem.geom().lineNum(0x40000)));
    mem.store(0, 0x40000, 200, true);
    EXPECT_FALSE(mem.dcache(1).present(mem.geom().lineNum(0x40000)));
}

TEST_F(MemSysFixture, StoreMarksOlderCpusCopyStaleOnly)
{
    hooks.seqs = {5, 6, kNoEpoch, kNoEpoch};
    // CPU0 (older epoch) caches the line; CPU1 (younger) stores.
    mem.load(0, 0x40000, 100, true);
    Addr line = mem.geom().lineNum(0x40000);
    mem.store(1, 0x40000, 200, true);
    EXPECT_TRUE(mem.dcache(0).present(line)); // still usable
    mem.epochBoundary(0);                     // next epoch starts
    EXPECT_FALSE(mem.dcache(0).present(line)); // stale copy dropped
}

TEST_F(MemSysFixture, CommitRenamesVersionsToCommitted)
{
    hooks.seqs = {5, kNoEpoch, kNoEpoch, kNoEpoch};
    mem.store(0, 0x50000, 100, true);
    Addr line = mem.geom().lineNum(0x50000);
    mem.commitThreadVersions(0);
    EXPECT_TRUE(mem.l2().hasEntry(line, kCommittedVersion));
    EXPECT_FALSE(mem.l2().hasEntry(line, 0));
    EXPECT_TRUE(mem.threadVersionLines(0).empty());
}

TEST_F(MemSysFixture, DropThreadVersionRemovesEntry)
{
    hooks.seqs = {5, kNoEpoch, kNoEpoch, kNoEpoch};
    mem.store(0, 0x50000, 100, true);
    Addr line = mem.geom().lineNum(0x50000);
    mem.dropThreadVersion(0, line);
    EXPECT_FALSE(mem.l2().hasEntry(line, 0));
    EXPECT_TRUE(mem.threadVersionLines(0).empty());
}

TEST_F(MemSysFixture, DropAllThreadVersions)
{
    hooks.seqs = {5, kNoEpoch, kNoEpoch, kNoEpoch};
    mem.store(0, 0x50000, 100, true);
    mem.store(0, 0x51000, 110, true);
    mem.dropAllThreadVersions(0);
    EXPECT_TRUE(mem.threadVersionLines(0).empty());
}

TEST_F(MemSysFixture, SquashL1DropsSpecWrites)
{
    hooks.seqs = {5, kNoEpoch, kNoEpoch, kNoEpoch};
    mem.load(0, 0x60000, 100, true);  // fills + spec-read
    mem.store(0, 0x60000, 200, true); // spec-written (present in L1)
    EXPECT_EQ(mem.squashL1(0), 1u);
    EXPECT_FALSE(mem.dcache(0).present(mem.geom().lineNum(0x60000)));
}

TEST_F(MemSysFixture, IfetchCachesInstructionLines)
{
    Cycle r1 = mem.ifetch(0, 0x400000, 100);
    EXPECT_GT(r1, 100u); // cold miss
    Cycle r2 = mem.ifetch(0, 0x400000, r1 + 1);
    EXPECT_EQ(r2, r1 + 1); // hit: no stall
}

TEST_F(MemSysFixture, VictimCatchesSpeculativeConflictEvictions)
{
    hooks.seqs = {5, kNoEpoch, kNoEpoch, kNoEpoch};
    // Fill one L2 set (16Ki sets) with speculative versions: lines
    // mapping to set 0 are multiples of 16384.
    const Addr stride = (2 * 1024 * 1024) / (4 * 32) / 4 * 4; // sets
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 5; ++i)
        lines.push_back(static_cast<Addr>(i) * 16384 * 32);
    for (Addr a : lines) {
        mem.store(0, a, 100, true);
        hooks.specLines.insert(mem.geom().lineNum(a));
    }
    (void)stride;
    EXPECT_GE(mem.victim().occupancy(), 1u);
}

TEST_F(MemSysFixture, ResetClearsContention)
{
    mem.load(0, 0x10000, 100, false);
    mem.reset();
    MemAccess a = mem.load(0, 0x10000, 0, false);
    EXPECT_TRUE(a.memFetch); // caches empty again
}

} // namespace
} // namespace tlsim
