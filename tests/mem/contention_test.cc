/**
 * @file
 * Timing-contention properties of the memory system: L2 bank
 * serialization, per-CPU crossbar ports, the main-memory bandwidth
 * limit (1 access / 20 cycles), and L1 bank conflicts — the Table 1
 * parameters that shape the Figure 5 cache-miss components.
 */

#include <gtest/gtest.h>

#include "mem/memsys.h"

namespace tlsim {
namespace {

struct ContentionFixture : public ::testing::Test
{
    ContentionFixture() : mem(baselineConfig())
    {
        mem.setHooks(&hooks);
    }

    /** Warm a line into the L2 (but not the requesting CPU's L1). */
    void
    warmL2(Addr addr)
    {
        mem.load(3, addr, 0, false);
        mem.dcache(3).invalidate(mem.geom().lineNum(addr));
        // Reset timing state but keep cache contents.
        // (Contention counters persist; use late enough start times.)
    }

    NullTlsHooks hooks;
    MemSystem mem;
};

TEST_F(ContentionFixture, SameL2BankSerializesConcurrentMisses)
{
    // Two different lines in the same L2 bank (bank = lineNum % 4).
    Addr a = 0x100000;              // bank 0
    Addr b = a + 4 * 32 * 16;       // still bank 0, different set
    warmL2(a);
    warmL2(b);

    Cycle t0 = 10000;
    MemAccess ra = mem.load(0, a, t0, false);
    MemAccess rb = mem.load(1, b, t0, false);
    ASSERT_TRUE(ra.l2Hit);
    ASSERT_TRUE(rb.l2Hit);
    // The shared bank imposes the 4-cycle line-transfer occupancy.
    EXPECT_GE(rb.readyAt, ra.readyAt + 4);
}

TEST_F(ContentionFixture, DifferentBanksProceedInParallel)
{
    Addr a = 0x100000;      // bank 0
    Addr b = a + 32;        // bank 1
    warmL2(a);
    warmL2(b);

    Cycle t0 = 10000;
    MemAccess ra = mem.load(0, a, t0, false);
    MemAccess rb = mem.load(1, b, t0, false);
    EXPECT_EQ(ra.readyAt, rb.readyAt); // symmetric, no bank conflict
}

TEST_F(ContentionFixture, CrossbarPortSerializesOneCpusMisses)
{
    Addr a = 0x100000; // bank 0
    Addr b = a + 32;   // bank 1 (no bank conflict)
    warmL2(a);
    warmL2(b);

    Cycle t0 = 10000;
    MemAccess ra = mem.load(0, a, t0, false);
    mem.dcache(0).invalidate(mem.geom().lineNum(b));
    MemAccess rb = mem.load(0, b, t0, false);
    // Same CPU: its crossbar port is busy transferring line a.
    EXPECT_GE(rb.readyAt, ra.readyAt + 3);
}

TEST_F(ContentionFixture, MemoryBandwidthLimitsFetchRate)
{
    // Eight cold fetches spread across the four CPUs.
    Cycle t0 = 10000;
    Cycle last = 0, first = kCycleMax;
    for (unsigned i = 0; i < 8; ++i) {
        MemAccess r =
            mem.load(i % 4, 0x900000 + i * 0x10000, t0, false);
        ASSERT_TRUE(r.memFetch);
        first = std::min(first, r.readyAt);
        last = std::max(last, r.readyAt);
    }
    // One access per 20 cycles: the eighth fetch trails the first by
    // at least 7 * 20 cycles.
    EXPECT_GE(last, first + 7 * 20);
}

TEST_F(ContentionFixture, L1BankConflictAddsACycle)
{
    // Same L1 bank (bank = lineNum % 2), both L1-resident.
    Addr a = 0x200000;
    Addr b = a + 2 * 32;
    mem.load(0, a, 0, false);
    mem.load(0, b, 0, false);

    Cycle t0 = 20000;
    MemAccess ra = mem.load(0, a, t0, false);
    MemAccess rb = mem.load(0, b, t0, false);
    ASSERT_TRUE(ra.l1Hit);
    ASSERT_TRUE(rb.l1Hit);
    EXPECT_EQ(ra.readyAt, t0 + 1);
    EXPECT_EQ(rb.readyAt, t0 + 2); // bank busy for one cycle
}

TEST_F(ContentionFixture, DifferentL1BanksDoNotConflict)
{
    Addr a = 0x200000;
    Addr b = a + 32; // other bank
    mem.load(0, a, 0, false);
    mem.load(0, b, 0, false);

    Cycle t0 = 20000;
    MemAccess ra = mem.load(0, a, t0, false);
    MemAccess rb = mem.load(0, b, t0, false);
    EXPECT_EQ(ra.readyAt, t0 + 1);
    EXPECT_EQ(rb.readyAt, t0 + 1);
}

TEST_F(ContentionFixture, MissLatenciesMatchTable1Minimums)
{
    // L2 hit: >= 10 cycles beyond issue.
    Addr a = 0x300000;
    warmL2(a);
    MemAccess l2 = mem.load(0, a, 30000, false);
    ASSERT_TRUE(l2.l2Hit);
    EXPECT_GE(l2.readyAt - 30000, 10u);
    EXPECT_LE(l2.readyAt - 30000, 16u);

    // Memory: >= 75 cycles beyond the L2 lookup.
    MemAccess mm = mem.load(0, 0xA00000, 40000, false);
    ASSERT_TRUE(mm.memFetch);
    EXPECT_GE(mm.readyAt - 40000, 75u + 10u);
}

} // namespace
} // namespace tlsim
