#include <gtest/gtest.h>

#include <unordered_set>

#include "base/dethash.h"
#include "mem/l2cache.h"

namespace tlsim {
namespace {

/** Hooks where the test dictates which lines carry speculative state. */
class FakeHooks : public TlsHooks
{
  public:
    std::uint64_t epochSeq(CpuId) const override { return kNoEpoch; }
    bool
    lineHasSpecState(Addr line) const override
    {
        return specLines.count(line) > 0;
    }

    std::unordered_set<Addr> specLines;
};

struct L2Fixture : public ::testing::Test
{
    L2Fixture() : victim(2), l2(makeCfg(), victim)
    {
        l2.setHooks(&hooks);
    }

    static MemConfig
    makeCfg()
    {
        MemConfig m;
        m.l2Bytes = 2 * 32 * 4; // 2 sets x 4 ways x 32B
        m.l2Assoc = 4;
        m.lineBytes = 32;
        m.l2Banks = 2;
        return m;
    }

    FakeHooks hooks;
    VictimCache victim;
    L2Cache l2;
};

TEST_F(L2Fixture, MissThenHit)
{
    EXPECT_FALSE(l2.accessLine(10));
    EXPECT_TRUE(l2.insert(10, kCommittedVersion));
    EXPECT_TRUE(l2.accessLine(10));
    EXPECT_EQ(l2.hits(), 1u);
    EXPECT_EQ(l2.misses(), 1u);
}

TEST_F(L2Fixture, MultipleVersionsShareASet)
{
    ASSERT_TRUE(l2.insert(10, kCommittedVersion));
    ASSERT_TRUE(l2.insert(10, 0));
    ASSERT_TRUE(l2.insert(10, 1));
    EXPECT_TRUE(l2.hasEntry(10, kCommittedVersion));
    EXPECT_TRUE(l2.hasEntry(10, 0));
    EXPECT_TRUE(l2.hasEntry(10, 1));
    EXPECT_TRUE(l2.accessLine(10));
}

TEST_F(L2Fixture, InsertTouchesExistingEntry)
{
    ASSERT_TRUE(l2.insert(10, 0));
    ASSERT_TRUE(l2.insert(10, 0)); // same entry; no duplicate ways
    // Fill the rest of set 0 (lines 10, 12, 14 even => set 0).
    ASSERT_TRUE(l2.insert(12, kCommittedVersion));
    ASSERT_TRUE(l2.insert(14, kCommittedVersion));
    ASSERT_TRUE(l2.insert(16, kCommittedVersion));
    EXPECT_TRUE(l2.hasEntry(10, 0));
}

TEST_F(L2Fixture, EvictionPrefersCommittedWithoutSpecState)
{
    // Set 0 holds lines with even line numbers (2 sets).
    ASSERT_TRUE(l2.insert(0, 0));  // speculative version
    ASSERT_TRUE(l2.insert(2, kCommittedVersion));
    ASSERT_TRUE(l2.insert(4, kCommittedVersion));
    ASSERT_TRUE(l2.insert(6, kCommittedVersion));
    hooks.specLines.insert(2); // committed line pinned by SL bits
    l2.accessLine(4);          // line 6 is now LRU among {4, 6}

    ASSERT_TRUE(l2.insert(8, kCommittedVersion));
    EXPECT_TRUE(l2.hasEntry(0, 0));                  // spec survives
    EXPECT_TRUE(l2.hasEntry(2, kCommittedVersion));  // pinned survives
    EXPECT_FALSE(l2.hasEntry(6, kCommittedVersion)); // LRU clean gone
    EXPECT_EQ(victim.occupancy(), 0u); // clean drop, no spill
}

TEST_F(L2Fixture, SpeculativeEvictionSpillsToVictim)
{
    for (Addr l : {0, 2, 4, 6})
        ASSERT_TRUE(l2.insert(l, 0));
    for (Addr l : {0, 2, 4, 6})
        hooks.specLines.insert(l);
    ASSERT_TRUE(l2.insert(8, 1)); // set full of spec lines
    EXPECT_EQ(victim.occupancy(), 1u);
    EXPECT_TRUE(victim.present(0, 0)); // LRU way spilled
    EXPECT_EQ(l2.specEvictions(), 1u);
}

TEST_F(L2Fixture, OverflowWhenVictimFullToo)
{
    for (Addr l : {0, 2, 4, 6})
        ASSERT_TRUE(l2.insert(l, 0));
    for (Addr l : {0, 2, 4, 6, 8, 10})
        hooks.specLines.insert(l);
    ASSERT_TRUE(l2.insert(8, 1));  // spills 0
    ASSERT_TRUE(l2.insert(10, 1)); // spills 2; victim now full

    EXPECT_FALSE(l2.insert(12, 2));
    EXPECT_EQ(l2.overflowSet().size(), 4u);
    EXPECT_EQ(l2.overflows(), 1u);
}

TEST_F(L2Fixture, OverflowReclaimsCommittedVictimEntriesFirst)
{
    // Victim holds a committed line with no spec state: reclaimable.
    victim.insert(100, kCommittedVersion);
    victim.insert(102, kCommittedVersion);
    for (Addr l : {0, 2, 4, 6})
        ASSERT_TRUE(l2.insert(l, 0));
    for (Addr l : {0, 2, 4, 6})
        hooks.specLines.insert(l);
    EXPECT_TRUE(l2.insert(8, 1)); // drops a victim entry, spills
    EXPECT_TRUE(victim.presentLine(0));
}

TEST_F(L2Fixture, RemoveDropsOnlyThatVersion)
{
    ASSERT_TRUE(l2.insert(10, kCommittedVersion));
    ASSERT_TRUE(l2.insert(10, 3));
    l2.remove(10, 3);
    EXPECT_FALSE(l2.hasEntry(10, 3));
    EXPECT_TRUE(l2.hasEntry(10, kCommittedVersion));
}

TEST_F(L2Fixture, RenameToCommittedMergesOverOldCopy)
{
    ASSERT_TRUE(l2.insert(10, kCommittedVersion));
    ASSERT_TRUE(l2.insert(10, 1));
    EXPECT_TRUE(l2.renameToCommitted(10, 1));
    EXPECT_TRUE(l2.hasEntry(10, kCommittedVersion));
    EXPECT_FALSE(l2.hasEntry(10, 1));
    // Exactly one entry remains; the set has three free ways again.
    ASSERT_TRUE(l2.insert(12, kCommittedVersion));
    ASSERT_TRUE(l2.insert(14, kCommittedVersion));
    ASSERT_TRUE(l2.insert(16, kCommittedVersion));
    EXPECT_TRUE(l2.hasEntry(10, kCommittedVersion));
}

TEST_F(L2Fixture, RenameMissingVersionFails)
{
    EXPECT_FALSE(l2.renameToCommitted(10, 1));
}

TEST_F(L2Fixture, BankMapping)
{
    EXPECT_EQ(l2.bankOf(0), 0u);
    EXPECT_EQ(l2.bankOf(1), 1u);
    EXPECT_EQ(l2.bankOf(2), 0u);
}

TEST_F(L2Fixture, ResetClearsEverything)
{
    ASSERT_TRUE(l2.insert(10, 0));
    l2.reset();
    EXPECT_FALSE(l2.presentLine(10));
    EXPECT_EQ(l2.hits(), 0u);
}

TEST_F(L2Fixture, ResetClearsOverflowSet)
{
    // Fill set 0 plus the victim cache so the next insert overflows.
    for (Addr a = 0; a < 4; ++a) {
        ASSERT_TRUE(l2.insert(a * 2, 0));
        hooks.specLines.insert(a * 2);
    }
    for (Addr a = 4; a < 6; ++a) {
        ASSERT_TRUE(l2.insert(a * 2, 0));
        hooks.specLines.insert(a * 2);
    }
    ASSERT_FALSE(l2.insert(100, 0));
    ASSERT_FALSE(l2.overflowSet().empty());

    // The overflow report is per-run scratch; a reset between
    // experiment runs must not leak the old victims into the next
    // run's squash decisions.
    l2.reset();
    EXPECT_TRUE(l2.overflowSet().empty());
}

/** Canonical digest of the cache's live (line, version) entries. */
std::uint64_t
digestOf(const L2Cache &l2)
{
    det::Hash h;
    l2.forEachEntry([&h](Addr line, std::uint8_t version) {
        h.u64(line);
        h.u64(version);
    });
    return h.value();
}

TEST_F(L2Fixture, ResetWrapsWithoutResurrectingStaleEntries)
{
    l2.debugSetGeneration(~std::uint32_t{0}); // next reset() wraps
    for (Addr a = 0; a < 8; ++a)
        ASSERT_TRUE(l2.insert(a, kCommittedVersion));

    l2.reset(); // ++gen_ overflows to 0: the wrap path must run
    for (Addr a = 0; a < 8; ++a) {
        EXPECT_FALSE(l2.presentLine(a))
            << "stale line " << a << " resurfaced after the wrap";
        EXPECT_FALSE(l2.hasEntry(a, kCommittedVersion));
    }

    // The restarted generation must behave like a fresh cache.
    EXPECT_TRUE(l2.insert(5, kCommittedVersion));
    EXPECT_TRUE(l2.presentLine(5));
    EXPECT_TRUE(l2.accessLine(5));
}

TEST_F(L2Fixture, WrapSurvivesRepeatedResets)
{
    l2.debugSetGeneration(~std::uint32_t{0} - 3);
    // Straddle the wrap with several insert/reset rounds; each round
    // must see an empty cache and clean inserts.
    for (int round = 0; round < 8; ++round) {
        for (Addr a = 0; a < 8; ++a) {
            EXPECT_FALSE(l2.presentLine(a)) << "round " << round;
            EXPECT_TRUE(l2.insert(a, kCommittedVersion))
                << "round " << round;
        }
        l2.reset();
    }
}

TEST_F(L2Fixture, DigestInvariantAcrossWrap)
{
    // The canonical digest of identical insertion sequences must not
    // depend on which side of the generation wrap the cache is on.
    for (Addr a = 0; a < 8; ++a)
        ASSERT_TRUE(l2.insert(a, a % 2 ? 0 : kCommittedVersion));
    const std::uint64_t expected = digestOf(l2);

    VictimCache victim2(2);
    L2Cache wrapped(makeCfg(), victim2);
    wrapped.setHooks(&hooks);
    wrapped.debugSetGeneration(~std::uint32_t{0});
    wrapped.insert(42, 0); // dirty the pre-wrap generation
    wrapped.reset();       // wrap
    for (Addr a = 0; a < 8; ++a)
        ASSERT_TRUE(wrapped.insert(a, a % 2 ? 0 : kCommittedVersion));
    EXPECT_EQ(expected, digestOf(wrapped));
}

} // namespace
} // namespace tlsim
