// P3 fixture (seeded use-after-release): a borrowed handle is read
// after the declared release call returned the object to the pool.

namespace t {

class Widget
{
  public:
    void reset() { value_ = 0; }
    int value() const { return value_; }

  private:
    int value_ = 0;
};

class Pool
{
  public:
    Widget *acquireWidget();
    void releaseWidget(Widget *w);

    int
    drain()
    {
        Widget *w = acquireWidget();
        int v = w->value(); // fine: still checked out
        releaseWidget(w);
        return v + w->value(); // already back in the pool
    }
};

} // namespace t
