// P1 fixture (seeded wrap hazards): a bare `++gen_` on a uint32
// counter with no wrap handling, and an ordering comparison between
// generation stamps. The guarded clear() next to them must stay
// silent.

#include <cstdint>
#include <vector>

namespace t {

class Table
{
  public:
    void
    reset()
    {
        ++gen_; // resurrects every pre-wrap entry after 2^32 resets
    }

    void
    clear()
    {
        if (++gen_ == 0) {
            slots_.assign(slots_.size(), Slot{});
            gen_ = 1;
        }
    }

    bool
    newer(unsigned i) const
    {
        return slots_[i].gen < gen_; // mis-orders across the wrap
    }

  private:
    struct Slot
    {
        std::uint32_t gen = 0;
    };

    std::vector<Slot> slots_;
    std::uint32_t gen_ = 1;
};

} // namespace t
