// P4 fixture (seeded reference invalidation): a reference bound into
// a growable container is used after an append that may reallocate
// it. The re-taken reference and the reserve-vouched append must
// stay silent.

#include <vector>

namespace t {

class Log
{
  public:
    void
    add(int v)
    {
        int &slot = buf_[0];
        buf_.push_back(v); // may reallocate buf_
        slot = v;          // dangling reference
    }

    void
    addRetaken(int v)
    {
        buf_.push_back(v);
        int &slot = buf_[0]; // re-taken after the growth: fine
        slot = v;
    }

  private:
    std::vector<int> buf_;
};

} // namespace t
