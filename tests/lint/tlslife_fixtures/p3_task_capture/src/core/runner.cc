// P3 fixture (seeded task capture): a queued executor task captures
// a borrowed pooled handle; the task may run after the object is
// recycled. The index-passing variant must stay silent.

namespace t {

class Widget
{
  public:
    void reset() { seq_ = 0; }
    void touch() { ++seq_; }

  private:
    int seq_ = 0;
};

class Executor
{
  public:
    void submit(int job);
};

class Runner
{
  public:
    void
    schedule(Widget *w)
    {
        exec_.submit([w] { w->touch(); }); // pooled borrow in a task
    }

    void
    scheduleByIndex(int slot)
    {
        exec_.submit([slot] { run(slot); }); // copies: fine
    }

    static void run(int slot);

  private:
    Executor exec_;
};

} // namespace t
