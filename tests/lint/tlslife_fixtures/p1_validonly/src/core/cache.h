// P1 fixture (seeded valid-only read): a generation-stamped cache
// probes `.valid` without comparing the stamp, so a stale entry
// reads as live after the first reset. The blessed live() spelling
// next to it must stay silent.

#include <cstdint>
#include <vector>

namespace t {

class Cache
{
  public:
    bool
    has(unsigned i) const
    {
        return slots_[i].valid; // stale across resets
    }

    bool
    live(unsigned i) const
    {
        const Slot &s = slots_[i];
        return s.valid && s.gen == gen_;
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint32_t gen = 0;
    };

    std::vector<Slot> slots_;
    std::uint32_t gen_ = 1;
};

} // namespace t
