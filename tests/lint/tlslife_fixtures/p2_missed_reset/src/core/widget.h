// P2 fixture (seeded missed reset): both counters advance during a
// checkout, but reset() restores only one — the other leaks into
// the next checkout.

#include <cstdint>

namespace t {

class Widget
{
  public:
    void
    bump(std::uint64_t v)
    {
        a_ += v;
        b_ += v;
    }

    void
    reset()
    {
        a_ = 0;
    }

  private:
    std::uint64_t a_ = 0;
    std::uint64_t b_ = 0;
};

} // namespace t
