// P2 manifest fixture: the source is clean; every diagnostic comes
// from the malformed manifest next door.

#include <cstdint>

namespace t {

class Widget
{
  public:
    void
    reset()
    {
        a_ = 0;
    }

  private:
    std::uint64_t a_ = 0;
};

} // namespace t
