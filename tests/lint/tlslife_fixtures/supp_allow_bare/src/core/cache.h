// Suppression fixture (bare allow): an allow with no reason is a
// hard error, and the violation it tried to hide still fires.

#include <cstdint>
#include <vector>

namespace t {

class Cache
{
  public:
    bool
    has(unsigned i) const
    {
        // tlslife:allow(P1)
        return slots_[i].valid;
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint32_t gen = 0;
    };

    std::vector<Slot> slots_;
    std::uint32_t gen_ = 1;
};

} // namespace t
