// Suppression fixture (reasoned allow): the P1 valid-only read is
// acknowledged with a reason, so the tool is quiet and the census
// counts one reasoned suppression.

#include <cstdint>
#include <vector>

namespace t {

class Cache
{
  public:
    bool
    has(unsigned i) const
    {
        // tlslife:allow(P1): probe runs before the first reset by construction
        return slots_[i].valid;
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint32_t gen = 0;
    };

    std::vector<Slot> slots_;
    std::uint32_t gen_ = 1;
};

} // namespace t
