// P3 fixture (seeded member escape): a borrowed pooled handle is
// parked in a member, outliving the checkout; the value copy out of
// the same handle must stay silent.

namespace t {

class Widget
{
  public:
    void reset() { seq_ = 0; }
    int seq() const { return seq_; }

  private:
    int seq_ = 0;
};

class Manager
{
  public:
    void
    adopt(Widget *w)
    {
        lastSeq_ = w->seq(); // value copy: escapes nothing
        cur_ = w;            // the handle itself escapes
    }

  private:
    Widget *cur_ = nullptr;
    int lastSeq_ = 0;
};

} // namespace t
