#!/usr/bin/env python3
"""Fixture tests for tools/tlslife.py.

Each fixture under tlslife_fixtures/ is a miniature repository root,
carrying its own tools/poolreset.txt where the scenario needs pooled
declarations (P1/P4 run manifest-free). The corpus seeds one instance
of every lifetime-discipline class the analyzer claims to catch —
valid-only generation reads, wrap-unsafe counters, missed reset
fields, manifest grammar abuse, pooled-handle escapes (member store,
use-after-release, task capture), and reference invalidation across
container growth — and every known-bad case must produce its exact
expected diagnostics (path, check id, line). The analyzer passes on
the real tree vacuously if its checks stop firing; this driver is
what keeps them honest.

Runs the lex engine explicitly so results are identical with and
without the libclang bindings; a second pass exercises whatever
`--engine=auto` resolves to and requires identical diagnostics from
both engines on every fixture.

Usage: tlslife_test.py [--tlslife PATH] [--fixtures DIR]
Exit: 0 all expectations met, 1 otherwise.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): "
                     r"\[(?P<check>[\w-]+)\] ")

# fixture dir -> (expected [(path, check, line), ...], exit code,
#                 expected suppression count)
EXPECTATIONS = {
    # Seeded valid-only read: `.valid` probed with no generation
    # comparison; the blessed live() spelling next door is silent.
    "p1_validonly": ([("src/core/cache.h", "P1", 17)], 1, 0),
    # Seeded wrap hazards: bare ++gen_ on a uint32 counter, and an
    # ordering comparison between stamps; the guarded clear() is
    # silent.
    "p1_wrap": ([("src/core/table.h", "P1", 17),
                 ("src/core/table.h", "P1", 32)], 1, 0),
    # Seeded missed reset: two fields advance during checkout,
    # reset() restores one; the leak reports at the field's
    # declaration.
    "p2_missed_reset": ([("src/core/widget.h", "P2", 27)], 1, 0),
    # Manifest grammar abuse: a pooled line with no reset=, an
    # unknown pooled type, a persist with no reason.
    "p2_manifest": ([("tools/poolreset.txt", "P2", 1),
                     ("tools/poolreset.txt", "P2", 2),
                     ("tools/poolreset.txt", "P2", 3)], 1, 0),
    # Seeded member escape: a borrowed handle parked in an undeclared
    # member; the value copy out of the handle is silent.
    "p3_escape_member": ([("src/core/manager.cc", "P3", 24)], 1, 0),
    # Seeded use-after-release: the handle is read after the declared
    # release call; the pre-release read is silent.
    "p3_use_after_release": ([("src/core/pool.cc", "P3", 28)], 1, 0),
    # Seeded task capture: a pooled borrow rides into a queued
    # executor task; the index-passing variant is silent.
    "p3_task_capture": ([("src/core/runner.cc", "P3", 29)], 1, 0),
    # Seeded reference invalidation: a reference into a growable
    # container used across push_back; the re-taken reference is
    # silent.
    "p4_ref_growth": ([("src/core/log.cc", "P4", 18)], 1, 0),
    # Reasoned allow: quiet, counted in the census.
    "supp_allow_ok": ([], 0, 1),
    # Bare allow: hard error AND the violation still fires.
    "supp_allow_bare": ([("src/core/cache.h", "allow-syntax", 15),
                         ("src/core/cache.h", "P1", 16)], 1, 0),
}

# Fixtures run WITHOUT --require-manifests (each declares exactly the
# manifests its scenario needs). The valid-only case carries no
# poolreset.txt, so the flag must add the missing-manifest error.
REQUIRE_MANIFESTS_CASE = "p1_validonly"
REQUIRE_MANIFESTS_EXTRA = [("tools/poolreset.txt", "P2", 0)]


def run_tlslife(tlslife, root, engine, extra=(), json_path=None):
    cmd = [sys.executable, tlslife, f"--root={root}",
           f"--engine={engine}", *extra]
    if json_path:
        cmd += ["--json", json_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("path"), m.group("check"),
                          int(m.group("line"))))
    return proc, diags


def count_sources(root):
    n = 0
    for d in ("src", "bench", "tools"):
        for _, _, files in os.walk(os.path.join(root, d)):
            n += sum(f.endswith((".h", ".cc", ".cpp")) for f in files)
    return n


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    ap = argparse.ArgumentParser()
    ap.add_argument("--tlslife",
                    default=os.path.join(root, "tools", "tlslife.py"))
    ap.add_argument("--fixtures",
                    default=os.path.join(here, "tlslife_fixtures"))
    args = ap.parse_args()

    failures = []

    def check(cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            failures.append(what)

    for name, (want, want_rc, want_supp) in sorted(
            EXPECTATIONS.items()):
        fixdir = os.path.join(args.fixtures, name)
        print(f"fixture {name}:")
        if not os.path.isdir(fixdir):
            check(False, f"{name}: fixture directory exists")
            continue

        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tf:
            json_path = tf.name
        try:
            proc, diags = run_tlslife(args.tlslife, fixdir, "lex",
                                      json_path=json_path)
            check(sorted(diags) == sorted(want),
                  f"{name}: diagnostics {sorted(diags)} == "
                  f"{sorted(want)}")
            check(proc.returncode == want_rc,
                  f"{name}: exit {proc.returncode} == {want_rc}")
            with open(json_path, encoding="utf-8") as f:
                doc = json.load(f)
            lt = doc.get("lifetime", {})
            check(doc.get("schema") == "tlsim-bench-v1",
                  f"{name}: json schema tag")
            check(lt.get("violations") == len(want),
                  f"{name}: json violations {lt.get('violations')} "
                  f"== {len(want)}")
            check(lt.get("suppressions") == want_supp,
                  f"{name}: json suppressions "
                  f"{lt.get('suppressions')} == {want_supp}")
            census = lt.get("suppressions_by_check")
            check(isinstance(census, dict) and
                  sum(census.values()) == lt.get("suppressions"),
                  f"{name}: json suppression census {census} sums to "
                  "the suppression count")
            check(lt.get("checks_run") == 4 and
                  lt.get("files_scanned") == count_sources(fixdir),
                  f"{name}: json files/checks counts")
            check(all(isinstance(lt.get(k), int) for k in
                      ("pooled_types", "persistent_fields", "views")),
                  f"{name}: json manifest census fields are ints")
        finally:
            os.unlink(json_path)

        # Engine parity: auto (libclang when importable, else lex
        # again) must agree exactly.
        proc_auto, diags_auto = run_tlslife(args.tlslife, fixdir,
                                            "auto")
        check(sorted(diags_auto) == sorted(want),
              f"{name}: auto-engine diagnostics match lex")

    # --require-manifests turns a missing manifest into an error: the
    # valid-only fixture has no poolreset.txt, so P2 complains.
    fixdir = os.path.join(args.fixtures, REQUIRE_MANIFESTS_CASE)
    print(f"fixture {REQUIRE_MANIFESTS_CASE} (--require-manifests):")
    want = sorted(EXPECTATIONS[REQUIRE_MANIFESTS_CASE][0] +
                  REQUIRE_MANIFESTS_EXTRA)
    proc, diags = run_tlslife(args.tlslife, fixdir, "lex",
                              extra=["--require-manifests"])
    check(sorted(diags) == want,
          f"require-manifests: diagnostics {sorted(diags)} == {want}")
    check(proc.returncode == 1, "require-manifests: exit 1")

    if failures:
        print(f"\n{len(failures)} expectation(s) FAILED")
        return 1
    print(f"\nall fixture expectations met "
          f"({len(EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
