#!/usr/bin/env python3
"""Fixture tests for tools/tlsa.py.

Each fixture under tlsa_fixtures/ is a miniature repository root (its
own src/, plus tools/lockorder.txt or tools/auditseam.txt where the
case needs a manifest). Every known-bad case must produce its exact
expected diagnostics — path, check id, and line — and the suppression
cases must show that a reasoned tlsa:allow silences a check while a
bare allow is itself an error. The analyzer passes on the real tree
vacuously if its checks stop firing; this driver is what keeps them
honest.

Runs the lex engine explicitly so results are identical with and
without the libclang bindings; a second pass exercises whatever
`--engine=auto` resolves to and requires identical diagnostics from
both engines on every fixture.

Usage: tlsa_test.py [--tlsa PATH] [--fixtures DIR]
Exit: 0 all expectations met, 1 otherwise.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): "
                     r"\[(?P<check>[\w-]+)\] ")

# fixture dir -> (expected [(path, check, line), ...], exit code,
#                 expected suppression count)
EXPECTATIONS = {
    # Seeded lock-order inversion: the manifest declares
    # `Pool::mtx_ < Registry::mtx_`, the code nests the other way.
    "a1_inversion": ([("src/core/pools.cc", "A1", 9)], 1, 0),
    # Two functions nesting the same pair in opposite orders: a
    # wait-for cycle, reported once per closing edge.
    "a1_cycle": ([("src/core/cycle.cc", "A1", 8),
                  ("src/core/cycle.cc", "A1", 16)], 1, 0),
    # Seeded unaudited mutator: speculative state written from a file
    # the AuditSink seam does not cover.
    "a2_unaudited": ([("src/sim/rogue.cc", "A2", 7)], 1, 0),
    # External call reaching the mutators through an entry point the
    # manifest never declared.
    "a2_undeclared_entry": ([("src/sim/driver.cc", "A2", 6)], 1, 0),
    # Declared (hook-requiring) entry whose body never fires a hook.
    "a2_unhooked_entry": ([("src/core/machine.cc", "A2", 4)], 1, 0),
    # Hot root grows a never-reserved vector; its callee `new`s.
    "a3_alloc": ([("src/core/hot.cc", "A3", 7),
                  ("src/core/hot.cc", "A3", 14)], 1, 0),
    # Node-based container local declared and mutated under TLSIM_HOT.
    "a3_node": ([("src/core/table.cc", "A3", 7),
                 ("src/core/table.cc", "A3", 8)], 1, 0),
    # Hot root calls through a member whose name shares no substring
    # with its class, and flush() is multiply defined: only the
    # declared-member type map resolves the allocating edge.
    "a3_member": ([("src/core/member.cc", "A3", 39)], 1, 0),
    # Hot root in a derived class calls through a member its base
    # declares: the base-chain member lookup must type the receiver
    # past the decoy flush().
    "a3_member_inherit": ([("src/core/inherit.cc", "A3", 43)], 1, 0),
    # Decoded varint indexes a table with no narrowing in between.
    "a4_index": ([("src/sim/traceio.cc", "A4", 10)], 1, 0),
    # Decoded varint used as a shift amount.
    "a4_shift": ([("src/sim/traceio.cc", "A4", 10)], 1, 0),
    # Reasoned allow: quiet, counted in the census.
    "supp_allow_ok": ([], 0, 1),
    # Bare allow: hard error AND the violation still fires.
    "supp_allow_bare": ([("src/core/hot.cc", "A3", 7),
                         ("src/core/hot.cc", "allow-syntax", 7)],
                        1, 0),
}

# Fixtures run WITHOUT --require-manifests (each declares exactly the
# manifests its scenario needs). One case below separately proves the
# flag turns a missing manifest into an error.
REQUIRE_MANIFESTS_CASE = "a1_cycle"
REQUIRE_MANIFESTS_EXTRA = [("tools/auditseam.txt", "A2", 0),
                           ("tools/lockorder.txt", "A1", 0)]


def run_tlsa(tlsa, root, engine, extra=(), json_path=None):
    cmd = [sys.executable, tlsa, f"--root={root}",
           f"--engine={engine}", *extra]
    if json_path:
        cmd += ["--json", json_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("path"), m.group("check"),
                          int(m.group("line"))))
    return proc, diags


def count_sources(root):
    n = 0
    for d in ("src", "bench", "tools"):
        for _, _, files in os.walk(os.path.join(root, d)):
            n += sum(f.endswith((".h", ".cc", ".cpp")) for f in files)
    return n


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    ap = argparse.ArgumentParser()
    ap.add_argument("--tlsa",
                    default=os.path.join(root, "tools", "tlsa.py"))
    ap.add_argument("--fixtures",
                    default=os.path.join(here, "tlsa_fixtures"))
    args = ap.parse_args()

    failures = []

    def check(cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            failures.append(what)

    for name, (want, want_rc, want_supp) in sorted(
            EXPECTATIONS.items()):
        fixdir = os.path.join(args.fixtures, name)
        print(f"fixture {name}:")
        if not os.path.isdir(fixdir):
            check(False, f"{name}: fixture directory exists")
            continue

        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tf:
            json_path = tf.name
        try:
            proc, diags = run_tlsa(args.tlsa, fixdir, "lex",
                                   json_path=json_path)
            check(sorted(diags) == sorted(want),
                  f"{name}: diagnostics {sorted(diags)} == "
                  f"{sorted(want)}")
            check(proc.returncode == want_rc,
                  f"{name}: exit {proc.returncode} == {want_rc}")
            with open(json_path, encoding="utf-8") as f:
                doc = json.load(f)
            sa = doc.get("staticanalysis", {})
            check(doc.get("schema") == "tlsim-bench-v1",
                  f"{name}: json schema tag")
            check(sa.get("violations") == len(want),
                  f"{name}: json violations {sa.get('violations')} "
                  f"== {len(want)}")
            check(sa.get("suppressions") == want_supp,
                  f"{name}: json suppressions "
                  f"{sa.get('suppressions')} == {want_supp}")
            census = sa.get("suppressions_by_check")
            check(isinstance(census, dict) and
                  sum(census.values()) == sa.get("suppressions"),
                  f"{name}: json suppression census {census} sums to "
                  "the suppression count")
            check(sa.get("checks_run") == 4 and
                  sa.get("files_scanned") == count_sources(fixdir),
                  f"{name}: json files/checks counts")
        finally:
            os.unlink(json_path)

        # Engine parity: auto (libclang when importable, else lex
        # again) must agree exactly.
        proc_auto, diags_auto = run_tlsa(args.tlsa, fixdir, "auto")
        check(sorted(diags_auto) == sorted(want),
              f"{name}: auto-engine diagnostics match lex")

    # --require-manifests turns missing manifests into errors: the
    # cycle fixture carries neither manifest, so both passes complain.
    fixdir = os.path.join(args.fixtures, REQUIRE_MANIFESTS_CASE)
    print(f"fixture {REQUIRE_MANIFESTS_CASE} (--require-manifests):")
    want = sorted(EXPECTATIONS[REQUIRE_MANIFESTS_CASE][0] +
                  REQUIRE_MANIFESTS_EXTRA)
    proc, diags = run_tlsa(args.tlsa, fixdir, "lex",
                           extra=["--require-manifests"])
    check(sorted(diags) == want,
          f"require-manifests: diagnostics {sorted(diags)} == {want}")
    check(proc.returncode == 1, "require-manifests: exit 1")

    if failures:
        print(f"\n{len(failures)} expectation(s) FAILED")
        return 1
    print(f"\nall fixture expectations met "
          f"({len(EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
