#!/usr/bin/env python3
"""Fixture tests for tools/tlslint.py.

Each known-bad translation unit in fixtures/ must produce its exact
expected diagnostics — count, check id, and line — and the suppression
fixtures must show that a reasoned allow silences a check while a bare
allow is itself an error. A lint whose checks stop firing passes on
the real tree vacuously; this driver is what keeps the checks honest.

Runs the lex engine explicitly so results are identical with and
without the libclang bindings; a second pass exercises whatever
`--engine=auto` resolves to and requires the same counts from both
engines on every fixture.

Usage: tlslint_test.py [--tlslint PATH] [--fixtures DIR]
Exit: 0 all expectations met, 1 otherwise.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): "
                     r"\[(?P<check>[\w-]+)\] ")

# fixture -> (treat-as path, expected [(check, line), ...], exit code,
#             expected suppression count)
EXPECTATIONS = {
    "t1_bad.cc": ("src/sim/rogue.cc",
                  [("T1", 12), ("T1", 14)], 1, 0),
    "t2_bad.cc": ("src/mem/rogue.cc",
                  [("T2", 10), ("T2", 12)], 1, 0),
    "t3_bad.cc": ("src/sim/traceio.cc",
                  [("T3", 10), ("T3", 12)], 1, 0),
    "t3_critpath_bad.cc": ("src/core/critpath/graph.cc",
                           [("T3", 12), ("T3", 15)], 1, 0),
    "t4_bad.cc": ("bench/bench_rogue.cc",
                  [("T4", 8)], 1, 0),
    "suppressed_ok.cc": ("src/sim/traceio.cc",
                         [], 0, 1),
    "suppressed_noreason.cc": ("src/sim/traceio.cc",
                               [("T3", 12), ("allow-syntax", 12)], 1, 0),
    # Lexer regressions (PR 8): encoding-prefixed raw strings and
    # digit separators must tokenize as single literals — the quoted
    # mutators stay invisible, the real ones keep their line numbers.
    "lexer_rawstr.cc": ("src/sim/rogue.cc",
                        [("T1", 14)], 1, 0),
    "lexer_digitsep.cc": ("src/sim/rogue.cc",
                          [("T1", 7)], 1, 0),
}


def run_lint(tlslint, fixture, treat_as, engine, json_path=None):
    cmd = [sys.executable, tlslint, f"--engine={engine}",
           f"--treat-as={treat_as}", fixture]
    if json_path:
        cmd += ["--json", json_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("check"), int(m.group("line"))))
    return proc, diags


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    ap = argparse.ArgumentParser()
    ap.add_argument("--tlslint",
                    default=os.path.join(root, "tools", "tlslint.py"))
    ap.add_argument("--fixtures",
                    default=os.path.join(here, "fixtures"))
    args = ap.parse_args()

    failures = []

    def check(cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            failures.append(what)

    for name, (treat_as, want, want_rc, want_supp) in sorted(
            EXPECTATIONS.items()):
        fixture = os.path.join(args.fixtures, name)
        print(f"fixture {name} (as {treat_as}):")
        if not os.path.exists(fixture):
            check(False, f"{name}: fixture file exists")
            continue

        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tf:
            json_path = tf.name
        try:
            proc, diags = run_lint(args.tlslint, fixture, treat_as,
                                   "lex", json_path)
            check(sorted(diags) == sorted(want),
                  f"{name}: diagnostics {sorted(diags)} == "
                  f"{sorted(want)}")
            check(proc.returncode == want_rc,
                  f"{name}: exit {proc.returncode} == {want_rc}")
            with open(json_path, encoding="utf-8") as f:
                doc = json.load(f)
            sa = doc.get("staticanalysis", {})
            check(doc.get("schema") == "tlsim-bench-v1",
                  f"{name}: json schema tag")
            check(sa.get("violations") == len(want),
                  f"{name}: json violations {sa.get('violations')} == "
                  f"{len(want)}")
            check(sa.get("suppressions") == want_supp,
                  f"{name}: json suppressions "
                  f"{sa.get('suppressions')} == {want_supp}")
            census = sa.get("suppressions_by_check")
            check(isinstance(census, dict) and
                  sum(census.values()) == sa.get("suppressions"),
                  f"{name}: json suppression census {census} sums to "
                  "the suppression count")
            check(sa.get("files_scanned") == 1 and
                  sa.get("checks_run") == 4,
                  f"{name}: json files/checks counts")
        finally:
            os.unlink(json_path)

        # Engine-parity: auto (libclang when importable, else lex
        # again) must agree exactly.
        proc_auto, diags_auto = run_lint(args.tlslint, fixture,
                                         treat_as, "auto")
        check(sorted(diags_auto) == sorted(want),
              f"{name}: auto-engine diagnostics match lex")

    if failures:
        print(f"\n{len(failures)} expectation(s) FAILED")
        return 1
    print(f"\nall fixture expectations met "
          f"({len(EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
