// A3 fixture: a per-element-allocating container local inside a
// TLSIM_HOT function, plus a mutation of it.

TLSIM_HOT void
Table::record(int key)
{
    std::map<int, int> hist;
    hist.insert({key, 1});
    ++records_;
}
