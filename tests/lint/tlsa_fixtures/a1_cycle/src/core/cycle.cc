// A1 fixture: first() nests A -> B, second() nests B -> A. Neither
// order alone is wrong, but together they form a wait-for cycle.

void
Engine::first()
{
    MutexLock a(amtx_);
    MutexLock b(bmtx_);
    ++steps_;
}

void
Engine::second()
{
    MutexLock b(bmtx_);
    MutexLock a(amtx_);
    ++steps_;
}
