// Suppression fixture: a reasoned allow on the offending line keeps
// the tool quiet and shows up in the census instead.

TLSIM_HOT void
Engine::step()
{
    // tlsa:allow(A3): fixture: growth happens once at warmup only
    buf_.push_back(nextRecord());
}
