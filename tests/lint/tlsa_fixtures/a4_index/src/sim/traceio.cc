// A4 fixture: the decoded output of decodeOne() indexes a table with
// no checkedNarrow/bounds check in between.

void
Reader::load(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t v = 0;
    std::size_t used = 0;
    decodeOne(p, avail, &v, &used);
    table_[v] = 1;
}

void
Reader::loadChecked(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t v = 0;
    std::size_t used = 0;
    decodeOne(p, avail, &v, &used);
    auto idx = checkedNarrow<std::uint16_t>(v);
    table_[idx] = 1; // sanitized: no diagnostic
}
