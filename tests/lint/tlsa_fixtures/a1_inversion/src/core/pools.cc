// A1 fixture: the declared order says Pool::mtx_ may be held while
// acquiring Registry::mtx_; refresh() nests them the other way round
// (through a call made under the lock), which is an inversion.

void
Registry::refresh()
{
    MutexLock reg(mtx_);
    pool_.grab(); // inversion witnessed here
}

void
Pool::grab()
{
    MutexLock guard(mtx_);
    ++grabs_;
}
