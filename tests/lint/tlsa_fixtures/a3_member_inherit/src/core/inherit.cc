// A3 base-class member-inheritance fixture: the hot root lives in a
// derived class and calls through a member its *base* declares
// (`sink_.flush()`); only the base-chain member lookup can type the
// receiver and attribute the edge into the allocating callee. The
// decoy Wal::flush() must not absorb the call.

class Journal
{
  public:
    void flush();

  private:
    Entry *pending_ = nullptr;
};

class Wal
{
  public:
    void flush() {}
};

class EngineBase
{
  protected:
    Journal sink_;
};

class Engine : public EngineBase
{
  public:
    TLSIM_HOT void step();
};

TLSIM_HOT void
Engine::step()
{
    sink_.flush();
}

void
Journal::flush()
{
    pending_ = new Entry[kBatch];
}
