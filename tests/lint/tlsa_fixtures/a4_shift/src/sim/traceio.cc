// A4 fixture: the decoded output of decodeOne() becomes a shift
// amount; >= width shifts are undefined behavior on untrusted input.

void
Reader::mask(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t v = 0;
    std::size_t used = 0;
    decodeOne(p, avail, &v, &used);
    maskBits_ = kOne << v;
}

void
Reader::maskBounded(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t v = 0;
    std::size_t used = 0;
    decodeOne(p, avail, &v, &used);
    if (v >= 64)
        return;
    maskBits_ = kOne << v; // bounds-checked above: no diagnostic
}
