// External caller: reaches the mutators through an undeclared entry.

void
Driver::go()
{
    machine_.step();
}
