// Audited module: step() legitimately mutates speculative state.

void
TlsMachine::step()
{
    spec_.recordStore(line_);
}
