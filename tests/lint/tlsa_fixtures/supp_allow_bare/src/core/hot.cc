// Suppression fixture: an allow with no reason must hard-error and
// must NOT silence the underlying diagnostic.

TLSIM_HOT void
Engine::step()
{
    buf_.push_back(nextRecord()); // tlsa:allow(A3)
}
