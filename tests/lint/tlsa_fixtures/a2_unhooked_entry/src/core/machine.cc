// Audited module: the declared entry forgets to fire any hook.

void
TlsMachine::step()
{
    spec_.recordStore(line_);
}
