void
Driver::go()
{
    machine_.step();
}
