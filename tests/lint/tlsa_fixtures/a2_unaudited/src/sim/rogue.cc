// A2 fixture: a file outside the audited modules calls a
// speculative-state mutator directly; no AuditSink hook can see it.

void
Rogue::poke()
{
    spec_.recordStore(kLine);
}

void
Rogue::harmless()
{
    log_.append(kLine); // not a mutator: no diagnostic
}
