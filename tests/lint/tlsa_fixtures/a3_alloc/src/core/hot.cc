// A3 fixture: the hot root grows a never-reserved vector, and its
// callee allocates with `new`.

TLSIM_HOT void
Engine::step()
{
    buf_.push_back(nextRecord());
    refill();
}

void
Engine::refill()
{
    scratch_ = new Record[kBatch];
}

void
Engine::coldSetup()
{
    setup_.push_back(0); // not reachable from a hot root: no diagnostic
}
