// A3 member-resolution fixture: the hot root calls through a member
// (`sink_.flush()`) whose spelling shares no substring with its class
// name, and two classes define flush() — only the declared-member
// type map can attribute the edge into the allocating callee.

class Journal
{
  public:
    void flush();

  private:
    Entry *pending_ = nullptr;
};

class Wal
{
  public:
    void flush() {}
};

class Engine
{
  public:
    TLSIM_HOT void step();

  private:
    Journal sink_;
};

TLSIM_HOT void
Engine::step()
{
    sink_.flush();
}

void
Journal::flush()
{
    pending_ = new Entry[kBatch];
}
