#!/usr/bin/env python3
"""Fixture tests for tools/tlsdet.py.

Each fixture under tlsdet_fixtures/ is a miniature repository root
carrying its own manifests (tools/detsinks.txt for the D1-D3 sink
closure, tools/detmergers.txt for the D4 subjects, and a tests/det/
stand-in where a case needs the permutation-test corpus). The corpus
seeds one instance of every nondeterminism class the analyzer claims
to catch — iteration order, wall clock, float reduction order,
non-commutative shard merge — and every known-bad case must produce
its exact expected diagnostics (path, check id, line). The analyzer
passes on the real tree vacuously if its checks stop firing; this
driver is what keeps them honest.

Runs the lex engine explicitly so results are identical with and
without the libclang bindings; a second pass exercises whatever
`--engine=auto` resolves to and requires identical diagnostics from
both engines on every fixture.

Usage: tlsdet_test.py [--tlsdet PATH] [--fixtures DIR]
Exit: 0 all expectations met, 1 otherwise.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): "
                     r"\[(?P<check>[\w-]+)\] ")

# fixture dir -> (expected [(path, check, line), ...], exit code,
#                 expected suppression count)
EXPECTATIONS = {
    # Seeded iteration-order nondeterminism: a sink range-fors an
    # unordered_map and grabs .begin(); the off-path copy is silent.
    "d1_iteration": ([("src/core/report.cc", "D1", 9),
                      ("src/core/report.cc", "D1", 11)], 1, 0),
    # Pointer-keyed map declared in a file owning a sink-path
    # function; the pointer-valued map next to it is fine.
    "d1_ptrkey": ([("src/core/report.cc", "D1", 5)], 1, 0),
    # Raw std::sort with a hand-written comparator; the two-argument
    # total-order sort is fine.
    "d1_sort": ([("src/core/report.cc", "D1", 7)], 1, 0),
    # Seeded clock nondeterminism: steady_clock::now() on the sink
    # path; the same read off the path is silent.
    "d2_clock": ([("src/core/report.cc", "D2", 7)], 1, 0),
    # Seeded float-order nondeterminism: double accumulated inside a
    # parallelFor task; declared-commutative integer, per-index slot
    # and task-local accumulator are all silent.
    "d3_float": ([("src/core/report.cc", "D3", 12)], 1, 0),
    # Seeded non-commutative merge: a declared merger appends,
    # -=-folds and float-accumulates (its permutation-test stand-in
    # keeps d4-untested out of the way).
    "d4_merge": ([("src/core/merge.cc", "D4", 10),
                  ("src/core/merge.cc", "D4", 11),
                  ("src/core/merge.cc", "D4", 12)], 1, 0),
    # Structurally clean merger with no permutation property test:
    # the claim is unproven.
    "d4_untested": ([("src/core/merge.cc", "D4", 6)], 1, 0),
    # Reasoned allow: quiet, counted in the census.
    "supp_allow_ok": ([], 0, 1),
    # Bare allow: hard error AND the violation still fires.
    "supp_allow_bare": ([("src/core/report.cc", "allow-syntax", 7),
                         ("src/core/report.cc", "D2", 8)], 1, 0),
}

# Fixtures run WITHOUT --require-manifests (each declares exactly the
# manifests its scenario needs). The untested-merger case carries only
# detmergers.txt, so the flag must add the missing-detsinks error.
REQUIRE_MANIFESTS_CASE = "d4_untested"
REQUIRE_MANIFESTS_EXTRA = [("tools/detsinks.txt", "D1", 0)]


def run_tlsdet(tlsdet, root, engine, extra=(), json_path=None):
    cmd = [sys.executable, tlsdet, f"--root={root}",
           f"--engine={engine}", *extra]
    if json_path:
        cmd += ["--json", json_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("path"), m.group("check"),
                          int(m.group("line"))))
    return proc, diags


def count_sources(root):
    n = 0
    for d in ("src", "bench", "tools"):
        for _, _, files in os.walk(os.path.join(root, d)):
            n += sum(f.endswith((".h", ".cc", ".cpp")) for f in files)
    return n


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    ap = argparse.ArgumentParser()
    ap.add_argument("--tlsdet",
                    default=os.path.join(root, "tools", "tlsdet.py"))
    ap.add_argument("--fixtures",
                    default=os.path.join(here, "tlsdet_fixtures"))
    args = ap.parse_args()

    failures = []

    def check(cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            failures.append(what)

    for name, (want, want_rc, want_supp) in sorted(
            EXPECTATIONS.items()):
        fixdir = os.path.join(args.fixtures, name)
        print(f"fixture {name}:")
        if not os.path.isdir(fixdir):
            check(False, f"{name}: fixture directory exists")
            continue

        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tf:
            json_path = tf.name
        try:
            proc, diags = run_tlsdet(args.tlsdet, fixdir, "lex",
                                     json_path=json_path)
            check(sorted(diags) == sorted(want),
                  f"{name}: diagnostics {sorted(diags)} == "
                  f"{sorted(want)}")
            check(proc.returncode == want_rc,
                  f"{name}: exit {proc.returncode} == {want_rc}")
            with open(json_path, encoding="utf-8") as f:
                doc = json.load(f)
            sa = doc.get("staticanalysis", {})
            check(doc.get("schema") == "tlsim-bench-v1",
                  f"{name}: json schema tag")
            check(sa.get("violations") == len(want),
                  f"{name}: json violations {sa.get('violations')} "
                  f"== {len(want)}")
            check(sa.get("suppressions") == want_supp,
                  f"{name}: json suppressions "
                  f"{sa.get('suppressions')} == {want_supp}")
            census = sa.get("suppressions_by_check")
            check(isinstance(census, dict) and
                  sum(census.values()) == sa.get("suppressions"),
                  f"{name}: json suppression census {census} sums to "
                  "the suppression count")
            check(sa.get("checks_run") == 4 and
                  sa.get("files_scanned") == count_sources(fixdir),
                  f"{name}: json files/checks counts")
        finally:
            os.unlink(json_path)

        # Engine parity: auto (libclang when importable, else lex
        # again) must agree exactly.
        proc_auto, diags_auto = run_tlsdet(args.tlsdet, fixdir, "auto")
        check(sorted(diags_auto) == sorted(want),
              f"{name}: auto-engine diagnostics match lex")

    # --require-manifests turns a missing manifest into an error: the
    # untested-merger fixture has no detsinks.txt, so D1 complains.
    fixdir = os.path.join(args.fixtures, REQUIRE_MANIFESTS_CASE)
    print(f"fixture {REQUIRE_MANIFESTS_CASE} (--require-manifests):")
    want = sorted(EXPECTATIONS[REQUIRE_MANIFESTS_CASE][0] +
                  REQUIRE_MANIFESTS_EXTRA)
    proc, diags = run_tlsdet(args.tlsdet, fixdir, "lex",
                             extra=["--require-manifests"])
    check(sorted(diags) == want,
          f"require-manifests: diagnostics {sorted(diags)} == {want}")
    check(proc.returncode == 1, "require-manifests: exit 1")

    if failures:
        print(f"\n{len(failures)} expectation(s) FAILED")
        return 1
    print(f"\nall fixture expectations met "
          f"({len(EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
