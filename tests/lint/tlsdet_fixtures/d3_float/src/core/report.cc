// D3 fixture (seeded float-order nondeterminism): a double
// accumulated inside an executor task sums in completion order, and
// float addition does not associate.

double total = 0.0;

void
Report::write()
{
    // tlsdet:commutative(hits): fixture: integer add is commutative
    parallelFor(0, n, [&](int i) {
        total += slice(i);
        hits += 1;
        slots[i] += slice(i); // per-index slot: no diagnostic
        std::uint64_t h = 0;
        h += slice(i); // task-local accumulator: no diagnostic
    });
    emit(total);
}
