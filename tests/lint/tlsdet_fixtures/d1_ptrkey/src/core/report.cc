// D1 fixture (pointer keys): an ordered map keyed by Node* in a file
// that owns a sink-path function — iteration order is address order,
// which varies run to run.

std::map<Node *, int> byNode;
std::map<int, Node *> byId; // pointer *value* is fine: never ordered

void
Report::write()
{
    for (const auto &kv : byId)
        emit(kv);
}
