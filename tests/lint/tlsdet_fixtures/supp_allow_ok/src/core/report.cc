// Suppression fixture: a reasoned tlsdet:allow on the offending line
// keeps the tool quiet and shows up in the census instead.

void
Report::write()
{
    // tlsdet:allow(D2): fixture: timestamp feeds the banner only
    auto t = std::chrono::steady_clock::now();
    emit(stamp(t));
}
