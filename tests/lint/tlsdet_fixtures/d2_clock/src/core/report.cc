// D2 fixture (seeded clock nondeterminism): a wall-clock read feeds a
// result path; a re-run cannot reproduce the value.

void
Report::write()
{
    auto t = std::chrono::steady_clock::now();
    emit(stamp(t));
}

void
Report::cold()
{
    auto t = std::chrono::steady_clock::now(); // off the sink path
    log(t);
}
