// D4 fixture (seeded non-commutative merge): the manifest declares
// Merger::fold order-insensitive, but its body appends to a vector,
// folds with -=, and accumulates a double.

double sum_ = 0.0;

void
Merger::fold(const Shard &s)
{
    items_.push_back(s.item);
    total_ -= s.delta;
    sum_ += s.weight;
    count_ += s.count; // commutative integer add: no diagnostic
}
