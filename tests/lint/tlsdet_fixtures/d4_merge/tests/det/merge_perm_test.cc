// Fixture stand-in for the permutation property test: naming
// Merger::fold here satisfies the d4-untested requirement so the
// fixture isolates the structural D4 diagnostics.
