// D4 fixture (untested merger): the body is structurally commutative,
// but no permutation property test in tests/det/ exercises it, so the
// claim is unproven.

void
Merger::fold(const Shard &s)
{
    count_ += s.count;
    lines_ |= s.lines;
}
