// D1 fixture (hand-written comparator): raw std::sort leaves equal
// elements in unspecified order on a result path.

void
Report::write()
{
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.cost < b.cost; });
    std::sort(keys.begin(), keys.end()); // total order: no diagnostic
    emit(rows);
}
