// Suppression fixture: a bare allow (no reason) is itself an error,
// and the violation it meant to silence still fires.

void
Report::write()
{
    // tlsdet:allow(D2)
    auto t = std::chrono::steady_clock::now();
    emit(stamp(t));
}
