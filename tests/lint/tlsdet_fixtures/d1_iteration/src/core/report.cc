// D1 fixture (seeded iteration-order nondeterminism): a result sink
// iterates a std::unordered_map both by range-for and via .begin();
// bucket order differs across libstdc++ versions and insert history.

void
Report::write()
{
    std::unordered_map<int, int> counts;
    for (const auto &kv : counts)
        emit(kv);
    auto it = counts.begin();
    emit(*it);
    if (counts.find(7) != counts.end())
        emit(7); // lookup, not iteration: no diagnostic
}

void
Report::cold()
{
    std::unordered_map<int, int> offside;
    for (const auto &kv : offside)
        emit(kv); // not on a sink path: no diagnostic
}
