// Lexer regression: an encoding-prefixed multiline raw string is ONE
// literal. A lexer that stops at the identifier `LR` feeds the string
// body to the rule matchers as if it were code — firing a false T1 on
// the quoted mutator below — and its stray quotes then mis-pair with
// later literals, corrupting line attribution for the real call.
#include "core/specstate.h"

static const wchar_t *kDoc = LR"doc(
    spec.recordStore(hidden);
    victim.insert(line);
)doc";

void poke(tlsim::SpecState &spec, unsigned line) {
    spec.recordStore(line);
}
