// tlslint fixture: a bare tlslint:allow (no reason string) is itself
// a hard error and suppresses nothing. Linted as-if at
// src/sim/traceio.cc.
// Expected: exactly 2 diagnostics on line 12 — one [allow-syntax] for
// the bare allow, and the [T3] it failed to suppress.

#include <cstdint>

std::uint8_t
decodeUnexplained(std::uint64_t raw)
{
    return static_cast<std::uint8_t>(raw & 0xff); // tlslint:allow(T3)
}
