// tlslint fixture: T2 must flag direct thread creation outside
// sim/executor. Linted as-if at src/mem/rogue.cc.
// Expected: exactly 2 [T2] diagnostics (lines 10 and 12).

#include <thread>

void
rogueThreads()
{
    std::thread worker([] {});

    worker.detach();

    // Reads of thread facilities are fine: NOT flagged.
    unsigned hw = std::thread::hardware_concurrency();
    (void)hw;
}
