// tlslint fixture: T1 must flag speculative-state mutation outside
// the audited mutator modules. Linted as-if at src/sim/rogue.cc.
// Expected: exactly 2 [T1] diagnostics (lines 12 and 14).

#include <cstdint>

struct FakeState;

void
rogueMutations(FakeState &spec_state, FakeState &other, int line)
{
    spec_state.recordStore(0x1000, 8, 0); // distinct mutator name

    victim_cache.insert(line); // generic name + victim receiver

    other.insert(line); // generic name, neutral receiver: NOT flagged
    spec_state.query(line); // non-mutator method: NOT flagged
}
