// Lexer regression: digit separators lex as part of the number. If
// the apostrophes were treated as char-literal quotes, the pair on
// the mutator line below would swallow the call between them and
// hide the T1; if the number pattern over-consumed past a separator,
// the hex literal would eat the punctuation after it.
void poke(Spec &spec) {
    unsigned a = 1'000; spec.recordStore(a); unsigned b = 2'000;
    configure(0xFF'FF, 'x', b);
}
