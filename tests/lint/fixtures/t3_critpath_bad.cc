// tlslint fixture: T3 scope covers the critical-path oracle's decode
// and analysis paths, not just the primary trace readers. Linted
// as-if at src/core/critpath/graph.cc.
// Expected: exactly 2 [T3] diagnostics (lines 12 and 15).

#include <cstdint>

unsigned
scoreRecord(std::uint64_t packed)
{
    // Record id narrowed straight off packed trace bytes: flagged.
    auto rec = static_cast<std::uint32_t>(packed);

    // Line address low half: flagged.
    auto line = static_cast<uint16_t>(packed >> 32);

    // Edge-class indexing casts to unsigned are same-or-widening on
    // this target and carry no untrusted bytes: NOT flagged.
    auto cls = static_cast<unsigned>(packed >> 48);

    return rec + line + cls;
}
