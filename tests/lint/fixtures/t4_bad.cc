// tlslint fixture: T4 must flag a bench main() that bypasses
// BenchSession. Linted as-if at bench/bench_rogue.cc.
// Expected: exactly 1 [T4] diagnostic (line 8).

#include <cstdio>

int
main(int argc, char **argv)
{
    // Hand-rolled argument parsing instead of the shared prologue.
    std::printf("%d\n", argc);
    (void)argv;
    return 0;
}
