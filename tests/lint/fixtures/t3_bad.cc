// tlslint fixture: T3 must flag raw narrowing static_casts in the
// trace decode paths. Linted as-if at src/sim/traceio.cc.
// Expected: exactly 2 [T3] diagnostics (lines 10 and 12).

#include <cstdint>

std::uint8_t
decodeByte(std::uint64_t raw)
{
    auto op = static_cast<std::uint8_t>(raw & 0xff);

    auto aux = static_cast<uint16_t>(raw >> 8);

    // Widening and same-width casts are NOT narrowing: NOT flagged.
    auto wide = static_cast<std::uint64_t>(op);
    // Brace-init rejects narrowing at the language level: NOT flagged.
    std::uint32_t lit{0x7f};

    (void)aux;
    (void)wide;
    (void)lit;
    return op;
}
