// tlslint fixture: a reasoned tlslint:allow silences the diagnostic
// and is counted as a suppression. Linted as-if at src/sim/traceio.cc.
// Expected: 0 diagnostics, 1 reasoned suppression.

#include <cstdint>

std::uint8_t
decodeChecked(std::uint64_t raw)
{
    // tlslint:allow(T3): raw is masked to 8 bits on the previous line
    return static_cast<std::uint8_t>(raw & 0xff);
}
