/**
 * Unit tests for the critical-path prediction oracle on hand-built
 * mini traces with known structure: a program-order-only workload
 * (no RAW edges, perfect parallelism), a single planted cross-epoch
 * RAW (one violation, one rewind edge), and the rewind-depth contrast
 * between checkpoint-rich and checkpoint-free configurations. Plus
 * the predicted-risk placement policy in isolation.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "core/critpath/analyzer.h"
#include "core/critpath/graph.h"
#include "core/critpath/placement.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "core/traceindex.h"

namespace tlsim {
namespace {

using critpath::Analyzer;
using critpath::AnalyzerConfig;
using critpath::DepGraph;
using critpath::EdgeClass;
using critpath::Placement;
using critpath::Prediction;

class TraceBuilder
{
  public:
    TraceBuilder() : mem_(16384, 0)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        tracer_ = std::make_unique<Tracer>(o);
        pc_ = SiteRegistry::instance().intern("test.critpath.site");
    }

    void *addr(std::size_t word) { return &mem_.at(word); }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        tracer_->txnBegin();
        tracer_->compute(pc_, 100);
        tracer_->loopBegin();
        for (const auto &body : bodies) {
            tracer_->iterBegin();
            body(*tracer_);
        }
        tracer_->loopEnd();
        tracer_->compute(pc_, 100);
        tracer_->txnEnd();
        return tracer_->takeWorkload();
    }

    Pc pc() const { return pc_; }

  private:
    std::vector<std::uint64_t> mem_;
    std::unique_ptr<Tracer> tracer_;
    Pc pc_;
};

std::function<void(Tracer &)>
privateWork(TraceBuilder &b, std::size_t base, unsigned insts)
{
    return [&b, base, insts](Tracer &t) {
        Pc pc = b.pc();
        for (unsigned k = 0; k < insts / 100; ++k) {
            t.compute(pc, 80);
            t.load(pc, b.addr(base + (k % 64)), 8);
            t.store(pc, b.addr(base + 64 + (k % 64)), 8);
        }
    };
}

Cycle
edgeSum(const Prediction &p)
{
    return std::accumulate(p.edgeCycles.begin(), p.edgeCycles.end(),
                           Cycle{0});
}

TEST(CritpathGraph, ProgramOrderOnlyWorkloadHasNoRawEdges)
{
    TraceBuilder b;
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int i = 0; i < 4; ++i)
        bodies.push_back(privateWork(b, 512 * i, 20000));
    auto w = b.loopTxn(bodies);

    MachineConfig cfg;
    TraceIndex index(w, cfg.mem.lineBytes);
    DepGraph g(w, index, cfg);

    // 1 txn = serial prologue + 4-epoch parallel loop + serial
    // epilogue sections.
    ASSERT_EQ(g.sections().size(), 3u);
    EXPECT_FALSE(g.sections()[0].parallel);
    EXPECT_TRUE(g.sections()[1].parallel);
    EXPECT_EQ(g.sections()[1].epochCount, 4u);
    EXPECT_EQ(g.rawEdges(), 0u);

    for (const critpath::EpochNode &node : g.epochs()) {
        ASSERT_EQ(node.prefixCycles.size(), node.view->size() + 1);
        EXPECT_EQ(node.baseCycles, node.prefixCycles.back());
        EXPECT_TRUE(std::is_sorted(node.prefixCycles.begin(),
                                   node.prefixCycles.end()));
        EXPECT_TRUE(std::is_sorted(node.prefixSpec.begin(),
                                   node.prefixSpec.end()));
        EXPECT_LE(node.busyCycles, node.baseCycles);
        EXPECT_TRUE(node.exposedLoads.empty());
    }

    Analyzer an(g);
    Prediction p = an.predict(AnalyzerConfig{});
    EXPECT_EQ(p.violations, 0u);
    EXPECT_EQ(p.edge(EdgeClass::Raw), 0u);
    EXPECT_EQ(edgeSum(p), p.makespan);

    // Four equal epochs on four lanes: the parallel section costs
    // about one epoch, so the whole prediction must be well under the
    // serial sum of all epoch bodies.
    Cycle serial_sum = 0;
    for (const critpath::EpochNode &node : g.epochs())
        serial_sum += node.baseCycles;
    EXPECT_LT(p.makespan, serial_sum * 2 / 3);
}

TEST(CritpathGraph, PlantedRawDependenceBecomesRewindEdge)
{
    TraceBuilder b;
    // Epoch 0 stores word 8000 late; epoch 1 loads it early - the
    // classic read-too-early violation.
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 200);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    auto w = b.loopTxn({writer, reader});

    MachineConfig cfg;
    TraceIndex index(w, cfg.mem.lineBytes);
    DepGraph g(w, index, cfg);

    ASSERT_EQ(g.rawEdges(), 1u);
    const critpath::SectionNode &sec = g.sections()[1];
    const critpath::EpochNode &wr = g.epochs()[sec.firstEpoch];
    const critpath::EpochNode &rd = g.epochs()[sec.firstEpoch + 1];
    ASSERT_EQ(wr.stores.size(), 1u);
    ASSERT_EQ(rd.exposedLoads.size(), 1u);
    EXPECT_EQ(wr.stores[0].line, rd.exposedLoads[0].line);

    Analyzer an(g);
    AnalyzerConfig ac;
    ac.spacing = 1000;
    Prediction p = an.predict(ac);
    EXPECT_EQ(p.violations, 1u);
    EXPECT_GT(p.edge(EdgeClass::Raw), 0u);
    EXPECT_EQ(edgeSum(p), p.makespan);

    // The reader restarts after the writer's store: the predicted
    // span must exceed the writer body alone, and carry the reader's
    // post-violation tail.
    EXPECT_GT(p.makespan, wr.baseCycles);

    // And the machine agrees a violation happens here.
    TlsMachine m(cfg);
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_GE(r.primaryViolations, 1u);
}

TEST(CritpathAnalyzer, CheckpointDensityBoundsRewindCost)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 6000); // rewindable prefix before the load
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    auto w = b.loopTxn({writer, reader});

    MachineConfig cfg;
    TraceIndex index(w, cfg.mem.lineBytes);
    DepGraph g(w, index, cfg);
    Analyzer an(g);

    // k=1: no checkpoints, a violation rewinds to the epoch start and
    // repays the whole 6000-instruction prefix.
    AnalyzerConfig coarse;
    coarse.subthreads = 1;
    Prediction pc_ = an.predict(coarse);

    // k=8 x 1000: a checkpoint sits within 1000 instructions of the
    // load, so only a sliver re-executes.
    AnalyzerConfig fine;
    fine.subthreads = 8;
    fine.spacing = 1000;
    Prediction pf = an.predict(fine);

    EXPECT_GE(pc_.violations, 1u);
    EXPECT_GE(pf.violations, 1u);
    EXPECT_GT(pc_.edge(EdgeClass::Raw), pf.edge(EdgeClass::Raw));
    EXPECT_GT(pc_.makespan, pf.makespan);
}

TEST(CritpathPlacement, FallsBackToFixedGridWithoutRiskPoints)
{
    std::vector<std::uint64_t> out;
    critpath::selectRiskSpawnPoints({}, 10000, 4, 3000, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{3000, 6000, 9000}));

    // Thresholds at or past the body never fire.
    critpath::selectRiskSpawnPoints({}, 6001, 4, 3000, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{3000, 6000}));

    // A single context cannot spawn sub-threads at all.
    critpath::selectRiskSpawnPoints({}, 10000, 1, 3000, out);
    EXPECT_TRUE(out.empty());
}

TEST(CritpathPlacement, ThinsClustersAndKeepsEarliestOfEach)
{
    // 1000/1050/1100 cluster inside kMinRiskGap; 5000 stands alone.
    std::vector<std::uint32_t> risk = {1000, 1050, 1100, 5000};
    std::vector<std::uint64_t> out;
    critpath::selectRiskSpawnPoints(risk, 10000, 8, 2000, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{1000, 5000}));

    // Offsets past the epoch body are discarded; 0 is the implicit
    // epoch-start checkpoint.
    risk = {0, 4000, 9999};
    critpath::selectRiskSpawnPoints(risk, 5000, 8, 2000, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{4000}));
}

TEST(CritpathPlacement, DownselectsEvenlyWhenOverCommitted)
{
    std::vector<std::uint32_t> risk;
    for (std::uint32_t v = 500; v <= 16000; v += 500)
        risk.push_back(v); // 32 candidates, all gaps >= kMinRiskGap
    std::vector<std::uint64_t> out;
    critpath::selectRiskSpawnPoints(risk, 20000, 4, 5000, out);
    ASSERT_EQ(out.size(), 3u); // k-1 slots
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    // Strided selection spans the range instead of clustering early.
    EXPECT_LT(out.front(), 2000u);
    EXPECT_GT(out.back(), 8000u);
}

TEST(CritpathPlacement, RiskOffsetsMarkExposedConflictLoads)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 200);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    auto w = b.loopTxn({writer, reader});

    MachineConfig cfg;
    TraceIndex index(w, cfg.mem.lineBytes);

    const TraceSection &sec = w.txns[0].sections[1];
    ASSERT_TRUE(sec.parallel);
    const EpochView *wv = index.viewOf(&sec.epochs[0]);
    const EpochView *rv = index.viewOf(&sec.epochs[1]);

    // The writer has no exposed conflict loads; the reader has exactly
    // the planted one, early in its body.
    EXPECT_TRUE(wv->riskOffsets.empty());
    ASSERT_EQ(rv->riskOffsets.size(), 1u);
    EXPECT_GT(rv->riskOffsets[0], 0u);
    EXPECT_LT(rv->riskOffsets[0], 1000u);

    // Machine cross-check: risk placement drops a checkpoint right
    // before the risky load, so the violation rewinds far less work
    // than a checkpoint-free run of the same trace.
    MachineConfig none = cfg;
    none.tls.subthreadsPerThread = 1;
    TlsMachine m_none(none);
    RunResult r_none = m_none.run(w, ExecMode::Tls);

    MachineConfig risk = cfg;
    risk.tls.riskPlacement = true;
    TlsMachine m_risk(risk);
    RunResult r_risk = m_risk.run(w, ExecMode::Tls);

    EXPECT_GE(r_none.primaryViolations, 1u);
    EXPECT_GE(r_risk.primaryViolations, 1u);
    EXPECT_LT(r_risk.rewoundInsts, r_none.rewoundInsts);
    EXPECT_LE(r_risk.makespan, r_none.makespan);
}

TEST(CritpathAnalyzer, WarmupTransactionsAreExcluded)
{
    TraceBuilder b;
    // Two identical transactions in one workload.
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    Pc pc = SiteRegistry::instance().intern("test.critpath.warm");
    for (int txn = 0; txn < 2; ++txn) {
        t.txnBegin();
        t.loopBegin();
        for (int i = 0; i < 2; ++i) {
            t.iterBegin();
            t.compute(pc, 5000);
        }
        t.loopEnd();
        t.txnEnd();
    }
    WorkloadTrace w = t.takeWorkload();
    ASSERT_EQ(w.txns.size(), 2u);

    MachineConfig cfg;
    TraceIndex index(w, cfg.mem.lineBytes);
    DepGraph g(w, index, cfg);
    Analyzer an(g);

    AnalyzerConfig all;
    Prediction p_all = an.predict(all);
    AnalyzerConfig warm;
    warm.warmupTxns = 1;
    Prediction p_warm = an.predict(warm);

    EXPECT_GT(p_all.makespan, p_warm.makespan);
    EXPECT_EQ(edgeSum(p_warm), p_warm.makespan);
}

} // namespace
} // namespace tlsim
