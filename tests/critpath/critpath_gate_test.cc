/**
 * The critpath accuracy gate (`ctest -L critpath`): on the five
 * TPC-C transactions of the Figure-6 sweep, the analytical makespan —
 * after single-point calibration on the BASELINE configuration — must
 * stay within the stated band of the timing simulation at probe
 * points spanning the sweep grid's corners.
 *
 * This is the contract bench_figure6_sweep's --prune=oracle mode
 * relies on: the oracle ranks grid points analytically and only the
 * predicted frontier is simulated, so a silently degrading predictor
 * would silently degrade the published figure. The band (and the
 * methodology) is documented in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/critpath/analyzer.h"
#include "core/critpath/graph.h"
#include "sim/experiment.h"

namespace tlsim {
namespace {

using critpath::Analyzer;
using critpath::AnalyzerConfig;
using critpath::DepGraph;
using critpath::Prediction;

/**
 * Maximum relative error |calibrated prediction - simulation| /
 * simulation tolerated at any probe point. The calibration on
 * BASELINE removes the global scale error; this band bounds what
 * remains across configurations, including the checkpoint-starved
 * grid corners probed below. Mid-grid points and contention-light
 * workloads predict within ~10%; the band is set by the corners
 * (2 sub-threads x 1000, 8 x 50000), where whether a violation
 * chain quenches after two links or storms across a B-tree page run
 * is decided by few-hundred-cycle races between a restarted epoch's
 * re-executed stores and its successor's loads. Those races hinge
 * on cross-epoch latch serialization during replay, which the
 * per-epoch analytic timeline abstracts away, so the model can
 * over-predict a storm the machine quenches (or vice versa) at
 * those corners. Methodology and per-benchmark residuals are in
 * EXPERIMENTS.md "Critical-path oracle validation".
 */
constexpr double kBand = 0.60;

sim::ExperimentConfig
gateCfg()
{
    sim::ExperimentConfig c = sim::ExperimentConfig::testPreset();
    c.scale.items = 1200;
    c.scale.customersPerDistrict = 80;
    c.scale.ordersPerDistrict = 80;
    c.scale.firstNewOrder = 41;
    c.txns = 5;
    c.warmupTxns = 1;
    return c;
}

class CritpathGate : public ::testing::TestWithParam<tpcc::TxnType>
{
};

TEST_P(CritpathGate, CalibratedPredictionWithinBand)
{
    sim::ExperimentConfig c = gateCfg();
    sim::BenchmarkTraces traces =
        sim::captureTraces(GetParam(), c);
    traces.buildIndexes(c.machine.mem.lineBytes);

    DepGraph g(traces.tls, *traces.tlsIndex, c.machine);
    Analyzer an(g);

    auto simulate = [&](unsigned k, std::uint64_t s) {
        MachineConfig mc = c.machine;
        mc.tls.subthreadsPerThread = k;
        mc.tls.subthreadSpacing = s;
        TlsMachine m(mc);
        return m.run(traces.tls, ExecMode::Tls, c.warmupTxns,
                     traces.tlsIndex.get());
    };
    auto predict = [&](unsigned k, std::uint64_t s) {
        AnalyzerConfig ac;
        ac.subthreads = k;
        ac.spacing = s;
        ac.warmupTxns = c.warmupTxns;
        return an.predict(ac);
    };

    // Calibrate once on the BASELINE point (8 sub-threads x 5000).
    RunResult base_sim = simulate(8, 5000);
    Prediction base_pred = predict(8, 5000);
    ASSERT_GT(base_sim.makespan, 0u);
    ASSERT_GT(base_pred.makespan, 0u);
    const double calib = static_cast<double>(base_sim.makespan) /
                         static_cast<double>(base_pred.makespan);

    // Probes at the sweep grid's corners: few coarse sub-threads,
    // mid-grid, and the large-spacing edge where checkpoints are
    // nearly absent.
    const struct
    {
        unsigned k;
        std::uint64_t s;
    } probes[] = {{2, 1000}, {4, 10000}, {8, 50000}};

    for (const auto &pr : probes) {
        RunResult s = simulate(pr.k, pr.s);
        Prediction p = predict(pr.k, pr.s);
        const double est = calib * static_cast<double>(p.makespan);
        const double err =
            std::abs(est - static_cast<double>(s.makespan)) /
            static_cast<double>(s.makespan);
        std::fprintf(stderr,
                     "critpath gate %s k=%u s=%llu: simulated %llu "
                     "(viol %llu) predicted %.0f (viol %llu, calib "
                     "%.3f) err %.1f%%\n",
                     tpcc::txnTypeName(GetParam()), pr.k,
                     static_cast<unsigned long long>(pr.s),
                     static_cast<unsigned long long>(s.makespan),
                     static_cast<unsigned long long>(
                         s.primaryViolations),
                     est,
                     static_cast<unsigned long long>(p.violations),
                     calib, err * 100.0);
        EXPECT_LE(err, kBand)
            << tpcc::txnTypeName(GetParam()) << " k=" << pr.k
            << " s=" << pr.s << ": predicted " << est
            << " vs simulated " << s.makespan;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SweepBenchmarks, CritpathGate,
    ::testing::Values(tpcc::TxnType::NewOrder,
                      tpcc::TxnType::NewOrder150,
                      tpcc::TxnType::Delivery,
                      tpcc::TxnType::DeliveryOuter,
                      tpcc::TxnType::StockLevel),
    [](const ::testing::TestParamInfo<tpcc::TxnType> &info) {
        std::string n = tpcc::txnTypeName(info.param);
        for (char &c : n)
            if (c == ' ')
                c = '_';
        return n;
    });

} // namespace
} // namespace tlsim
