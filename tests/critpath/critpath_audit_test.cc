/**
 * Audit-label band test: the quick NEW ORDER prediction stays inside
 * the critpath band while the runtime invariant auditor runs at its
 * strictest level. The auditor changes nothing about the simulated
 * timing (it only observes), so the same band must hold — a cheap
 * cross-check that neither the auditor nor the analyzer perturbs the
 * machine it reasons about.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/critpath/analyzer.h"
#include "core/critpath/graph.h"
#include "sim/experiment.h"
#include "verify/auditor.h"

namespace tlsim {
namespace {

using critpath::Analyzer;
using critpath::AnalyzerConfig;
using critpath::DepGraph;
using critpath::Prediction;

/** Mid-grid probe band; tighter than the corner-inclusive gate band
 *  (tests/critpath/critpath_gate_test.cc) because the (4, 2500)
 *  probe sits away from the checkpoint-starved corners that widen
 *  the gate's band. */
constexpr double kBand = 0.30;

TEST(CritpathAuditBand, NewOrderPredictionHoldsUnderFullAudit)
{
    sim::ExperimentConfig c = sim::ExperimentConfig::testPreset();
    c.txns = 5;
    c.warmupTxns = 1;
    c.machine.tls.auditLevel = AuditLevel::Full;

    sim::BenchmarkTraces traces =
        sim::captureTraces(tpcc::TxnType::NewOrder, c);
    traces.buildIndexes(c.machine.mem.lineBytes);

    DepGraph g(traces.tls, *traces.tlsIndex, c.machine);
    Analyzer an(g);

    auto simulate = [&](unsigned k, std::uint64_t s) {
        MachineConfig mc = c.machine;
        mc.tls.subthreadsPerThread = k;
        mc.tls.subthreadSpacing = s;
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.tls, ExecMode::Tls,
                                    c.warmupTxns,
                                    traces.tlsIndex.get());
    };
    auto predict = [&](unsigned k, std::uint64_t s) {
        AnalyzerConfig ac;
        ac.subthreads = k;
        ac.spacing = s;
        ac.warmupTxns = c.warmupTxns;
        return an.predict(ac);
    };

    RunResult base_sim = simulate(8, 5000);
    ASSERT_GT(base_sim.auditChecks, 0u); // the auditor really ran
    Prediction base_pred = predict(8, 5000);
    ASSERT_GT(base_pred.makespan, 0u);
    const double calib = static_cast<double>(base_sim.makespan) /
                         static_cast<double>(base_pred.makespan);

    RunResult probe_sim = simulate(4, 2500);
    Prediction probe_pred = predict(4, 2500);
    const double est =
        calib * static_cast<double>(probe_pred.makespan);
    const double err =
        std::abs(est - static_cast<double>(probe_sim.makespan)) /
        static_cast<double>(probe_sim.makespan);
    EXPECT_LE(err, kBand)
        << "predicted " << est << " vs simulated "
        << probe_sim.makespan;
}

} // namespace
} // namespace tlsim
