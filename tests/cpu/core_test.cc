#include <gtest/gtest.h>

#include "cpu/core.h"

namespace tlsim {
namespace {

CpuConfig
cfg()
{
    return CpuConfig{};
}

TEST(Core, ComputeDispatchesAtIssueWidth)
{
    Core c(cfg(), 0);
    c.doCompute(400, ComputeClass::Int);
    EXPECT_EQ(c.now(), 100u); // 400 insts / 4-wide
    EXPECT_EQ(c.breakdown()[Cat::Busy], 100u);
    EXPECT_EQ(c.instSeq(), 400u);
}

TEST(Core, FractionalDispatchSlotsCarryOver)
{
    Core c(cfg(), 0);
    c.doCompute(2, ComputeClass::Int);
    EXPECT_EQ(c.now(), 0u); // still inside the first cycle
    c.doCompute(2, ComputeClass::Int);
    EXPECT_EQ(c.now(), 1u);
}

TEST(Core, DivideSerializes)
{
    Core c(cfg(), 0);
    c.doCompute(2, ComputeClass::IntDiv);
    EXPECT_EQ(c.now(), 2u * 76);
}

TEST(Core, FpLatencies)
{
    Core c(cfg(), 0);
    c.doCompute(1, ComputeClass::FpDiv);
    c.doCompute(1, ComputeClass::FpSqrt);
    EXPECT_EQ(c.now(), 15u + 20u);
}

TEST(Core, LoadsOverlapWithinTheWindow)
{
    Core c(cfg(), 0);
    Cycle i1 = c.prepareLoad(false);
    c.finishLoad(i1 + 100);
    Cycle i2 = c.prepareLoad(false);
    c.finishLoad(i2 + 100);
    // Second load issues immediately after the first: full overlap.
    EXPECT_LE(i2, i1 + 1);
    c.drainLoads();
    EXPECT_LE(c.now(), i1 + 101);
    EXPECT_GT(c.breakdown()[Cat::CacheMiss], 0u);
}

TEST(Core, DependentLoadSerializesOnPreviousLoad)
{
    Core c(cfg(), 0);
    Cycle i1 = c.prepareLoad(false);
    c.finishLoad(i1 + 100);
    Cycle i2 = c.prepareLoad(true); // pointer chase
    EXPECT_GE(i2, i1 + 100);
}

TEST(Core, RobWindowLimitsRunahead)
{
    Core c(cfg(), 0);
    Cycle i1 = c.prepareLoad(false);
    c.finishLoad(i1 + 1000);
    // 128-entry ROB: at most ~128 instructions can dispatch behind an
    // incomplete load; then dispatch stalls on it.
    c.doCompute(500, ComputeClass::Int);
    EXPECT_GE(c.now(), i1 + 1000);
    EXPECT_GT(c.breakdown()[Cat::CacheMiss], 800u);
}

TEST(Core, MaxOutstandingLoadsEnforced)
{
    CpuConfig cc;
    cc.maxOutstandingLoads = 2;
    Core c(cc, 0);
    Cycle i1 = c.prepareLoad(false);
    c.finishLoad(i1 + 500);
    Cycle i2 = c.prepareLoad(false);
    c.finishLoad(i2 + 500);
    Cycle i3 = c.prepareLoad(false); // must wait for the oldest
    EXPECT_GE(i3, i1 + 500);
}

TEST(Core, BranchMispredictPaysPenalty)
{
    Core c(cfg(), 0);
    // Train taken until both the history register and the steady-state
    // counter saturate.
    for (int i = 0; i < 20; ++i)
        c.doBranch(0x100, true);
    Cycle before = c.now();
    c.doBranch(0x100, false); // mispredict
    EXPECT_GE(c.now(), before + cfg().branchPenalty);
}

TEST(Core, StoresAreBuffered)
{
    Core c(cfg(), 0);
    Cycle before = c.now();
    for (int i = 0; i < 8; ++i)
        c.doStore(c.now() + 1);
    EXPECT_LE(c.now(), before + 8);
}

TEST(Core, BreakdownSumTracksWallClock)
{
    Core c(cfg(), 0);
    c.doCompute(1000, ComputeClass::Int);
    Cycle i = c.prepareLoad(false);
    c.finishLoad(i + 300);
    c.doCompute(1000, ComputeClass::Int);
    c.drainLoads();
    c.doBranch(0x1, true);
    EXPECT_EQ(c.breakdown().total(), c.now());
}

TEST(Core, RewindReattributesToFailed)
{
    Core c(cfg(), 0);
    c.doCompute(400, ComputeClass::Int);
    CoreCheckpoint cp = c.checkpoint();
    c.doCompute(800, ComputeClass::Int); // 200 busy cycles, doomed
    Cycle squash_time = c.now();
    c.rewindTo(cp, squash_time + 10);

    EXPECT_EQ(c.now(), squash_time + 10);
    EXPECT_EQ(c.instSeq(), 400u);
    EXPECT_EQ(c.breakdown()[Cat::Busy], 100u); // only pre-checkpoint
    EXPECT_EQ(c.breakdown()[Cat::Failed], 210u);
    EXPECT_EQ(c.breakdown().total(), c.now());
}

TEST(Core, RewindDiscardsOutstandingLoads)
{
    Core c(cfg(), 0);
    CoreCheckpoint cp = c.checkpoint();
    Cycle i = c.prepareLoad(false);
    c.finishLoad(i + 10000);
    c.rewindTo(cp, c.now() + 5);
    Cycle before = c.now();
    c.drainLoads(); // nothing outstanding anymore
    EXPECT_EQ(c.now(), before);
}

TEST(Core, NestedCheckpointsRewindToTheRightOne)
{
    Core c(cfg(), 0);
    c.doCompute(40, ComputeClass::Int);
    CoreCheckpoint cp1 = c.checkpoint();
    c.doCompute(40, ComputeClass::Int);
    CoreCheckpoint cp2 = c.checkpoint();
    c.doCompute(40, ComputeClass::Int);
    c.rewindTo(cp2, c.now());
    EXPECT_EQ(c.instSeq(), 80u);
    c.rewindTo(cp1, c.now());
    EXPECT_EQ(c.instSeq(), 40u);
    EXPECT_EQ(c.breakdown().total(), c.now());
}

TEST(Core, AdvanceToAttributesCategory)
{
    Core c(cfg(), 0);
    c.advanceTo(50, Cat::Idle);
    c.advanceTo(70, Cat::Sync);
    c.advanceTo(60, Cat::Idle); // no-op: time never goes backwards
    EXPECT_EQ(c.now(), 70u);
    EXPECT_EQ(c.breakdown()[Cat::Idle], 50u);
    EXPECT_EQ(c.breakdown()[Cat::Sync], 20u);
}

TEST(Core, ResetZeroesEverything)
{
    Core c(cfg(), 0);
    c.doCompute(100, ComputeClass::Int);
    c.doBranch(1, true);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
    EXPECT_EQ(c.instSeq(), 0u);
    EXPECT_EQ(c.breakdown().total(), 0u);
    EXPECT_EQ(c.gshare().branches(), 0u);
}

} // namespace
} // namespace tlsim
