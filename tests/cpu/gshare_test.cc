#include <gtest/gtest.h>

#include "cpu/gshare.h"

namespace tlsim {
namespace {

TEST(GShare, LearnsAlwaysTakenBranch)
{
    GShare g(16 * 1024, 8);
    // Warm up past the 2-bit hysteresis AND the 8-bit history register
    // (the index keeps changing until the history saturates).
    for (int i = 0; i < 16; ++i)
        g.predictAndUpdate(0x1000, true);
    std::uint64_t before = g.mispredicts();
    for (int i = 0; i < 100; ++i)
        g.predictAndUpdate(0x1000, true);
    EXPECT_EQ(g.mispredicts(), before);
    EXPECT_EQ(g.branches(), 116u);
}

TEST(GShare, LearnsAlternatingPatternViaHistory)
{
    GShare g(16 * 1024, 8);
    bool taken = false;
    for (int i = 0; i < 64; ++i) {
        g.predictAndUpdate(0x2000, taken);
        taken = !taken;
    }
    std::uint64_t before = g.mispredicts();
    for (int i = 0; i < 200; ++i) {
        g.predictAndUpdate(0x2000, taken);
        taken = !taken;
    }
    // With 8 history bits the strict alternation becomes perfectly
    // predictable after warm-up.
    EXPECT_EQ(g.mispredicts(), before);
}

TEST(GShare, RandomBranchMispredictsOften)
{
    GShare g(16 * 1024, 8);
    std::uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        g.predictAndUpdate(0x3000, (x & 1) != 0);
    }
    // Roughly half the outcomes are unpredictable.
    EXPECT_GT(g.mispredicts(), 600u);
}

TEST(GShare, ResetClearsState)
{
    GShare g(1024, 4);
    for (int i = 0; i < 10; ++i)
        g.predictAndUpdate(0x4000, true);
    g.reset();
    EXPECT_EQ(g.branches(), 0u);
    EXPECT_EQ(g.mispredicts(), 0u);
}

TEST(GShare, DistinctPcsTrainIndependently)
{
    GShare g(16 * 1024, 0); // no history: pure bimodal
    for (int i = 0; i < 8; ++i) {
        g.predictAndUpdate(0x1000, true);
        g.predictAndUpdate(0x2000, false);
    }
    std::uint64_t before = g.mispredicts();
    g.predictAndUpdate(0x1000, true);
    g.predictAndUpdate(0x2000, false);
    EXPECT_EQ(g.mispredicts(), before);
}

} // namespace
} // namespace tlsim
