#include <gtest/gtest.h>

#include "cpu/breakdown.h"

namespace tlsim {
namespace {

TEST(Breakdown, TotalSumsAllCategories)
{
    Breakdown b;
    b[Cat::Busy] = 10;
    b[Cat::CacheMiss] = 5;
    b[Cat::Idle] = 3;
    EXPECT_EQ(b.total(), 18u);
}

TEST(Breakdown, PlusEqualsMergesPerCategory)
{
    Breakdown a, b;
    a[Cat::Busy] = 10;
    a[Cat::Sync] = 2;
    b[Cat::Busy] = 1;
    b[Cat::Failed] = 7;
    a += b;
    EXPECT_EQ(a[Cat::Busy], 11u);
    EXPECT_EQ(a[Cat::Sync], 2u);
    EXPECT_EQ(a[Cat::Failed], 7u);
    EXPECT_EQ(a.total(), 20u);
}

TEST(Breakdown, FailSincePreservesWallClockSpan)
{
    Breakdown b;
    b[Cat::Busy] = 100;
    b[Cat::CacheMiss] = 40;
    Breakdown snap = b;
    b[Cat::Busy] += 30;
    b[Cat::CacheMiss] += 20;
    b[Cat::LatchStall] += 10;

    std::uint64_t before = b.total();
    b.failSince(snap);
    EXPECT_EQ(b.total(), before); // span preserved
    EXPECT_EQ(b[Cat::Busy], 100u);
    EXPECT_EQ(b[Cat::CacheMiss], 40u);
    EXPECT_EQ(b[Cat::LatchStall], 0u);
    EXPECT_EQ(b[Cat::Failed], 60u);
}

TEST(Breakdown, FailSinceAccumulatesAcrossRewinds)
{
    Breakdown b;
    Breakdown snap = b;
    b[Cat::Busy] = 50;
    b.failSince(snap);
    // The snapshot's failed count was zero, so a second doomed stretch
    // adds on top of the first.
    Breakdown snap2 = b;
    b[Cat::Busy] += 25;
    b.failSince(snap2);
    EXPECT_EQ(b[Cat::Failed], 75u);
    EXPECT_EQ(b[Cat::Busy], 0u);
}

TEST(Breakdown, CatNamesAreStable)
{
    EXPECT_STREQ(catName(Cat::Busy), "busy");
    EXPECT_STREQ(catName(Cat::CacheMiss), "cache_miss");
    EXPECT_STREQ(catName(Cat::LatchStall), "latch_stall");
    EXPECT_STREQ(catName(Cat::Sync), "sync");
    EXPECT_STREQ(catName(Cat::Idle), "idle");
    EXPECT_STREQ(catName(Cat::Failed), "failed");
}

} // namespace
} // namespace tlsim
