/**
 * @file
 * Differential tests for the base/simd.h kernels: the AVX2 variants
 * must be bit-identical to the scalar reference implementations on
 * random and adversarial inputs, and the runtime dispatch must honour
 * setForceScalar. On hardware without AVX2 (or with TLSIM_SIMD=OFF)
 * the differential cases degenerate to scalar-vs-scalar and still
 * exercise the dispatch plumbing.
 */

#include <array>
#include <cstdint>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd.h"

namespace tlsim {
namespace {

class SimdTest : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setForceScalar(false); }
};

TEST_F(SimdTest, DispatchHonoursForceScalar)
{
    simd::setForceScalar(true);
    EXPECT_STREQ(simd::activeName(), "scalar");
    simd::setForceScalar(false);
    if (simd::available())
        EXPECT_STREQ(simd::activeName(), "avx2");
    else
        EXPECT_STREQ(simd::activeName(), "scalar");
}

TEST_F(SimdTest, MatchMask64MatchesScalarOnRandomInputs)
{
    Rng rng(0x51D0u);
    std::array<std::uint64_t, 64> keys{};
    for (int iter = 0; iter < 2000; ++iter) {
        // Small key universe so duplicates and multi-matches are
        // common; vary the scan length across the vector/tail split.
        unsigned n = 1 + static_cast<unsigned>(rng.next() % 64);
        for (unsigned i = 0; i < n; ++i)
            keys[i] = rng.next() % 16;
        std::uint64_t needle = rng.next() % 16;
        std::uint64_t ref =
            simd::matchMask64Scalar(keys.data(), n, needle);
        EXPECT_EQ(simd::matchMask64(keys.data(), n, needle), ref)
            << "n=" << n << " needle=" << needle;
    }
}

TEST_F(SimdTest, MatchMask64FindsEveryPosition)
{
    std::array<std::uint64_t, 64> keys{};
    for (unsigned i = 0; i < 64; ++i)
        keys[i] = 1000 + i;
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(simd::matchMask64(keys.data(), 64, 1000 + i),
                  std::uint64_t{1} << i);
    }
    EXPECT_EQ(simd::matchMask64(keys.data(), 64, 42), 0u);
}

TEST_F(SimdTest, MaskedUnion64MatchesScalarOnRandomInputs)
{
    Rng rng(0xC0FFEEu);
    std::array<std::uint32_t, 64> vals{};
    for (int iter = 0; iter < 2000; ++iter) {
        for (auto &v : vals)
            v = static_cast<std::uint32_t>(rng.next());
        // Mix sparse and dense owner masks: the dispatcher only uses
        // the vector path above a popcount threshold, so both must be
        // exercised and agree.
        std::uint64_t owners = rng.next();
        if (iter % 3 == 0)
            owners &= rng.next() & rng.next(); // sparse
        std::uint64_t ref =
            simd::maskedUnion64Scalar(vals.data(), owners);
        EXPECT_EQ(simd::maskedUnion64(vals.data(), owners), ref)
            << "owners=" << owners;
    }
}

TEST_F(SimdTest, MaskedUnion64EdgeMasks)
{
    std::array<std::uint32_t, 64> vals{};
    for (unsigned i = 0; i < 64; ++i)
        vals[i] = 1u << (i % 32);
    EXPECT_EQ(simd::maskedUnion64(vals.data(), 0), 0u);
    EXPECT_EQ(simd::maskedUnion64(vals.data(), ~std::uint64_t{0}),
              0xFFFFFFFFu);
    EXPECT_EQ(simd::maskedUnion64(vals.data(), std::uint64_t{1} << 63),
              vals[63]);
}

#if TLSIM_SIMD_X86
TEST_F(SimdTest, Avx2VariantsAgreeWithScalarDirectly)
{
    if (!simd::available())
        GTEST_SKIP() << "no AVX2 on this host";
    Rng rng(0xABCDu);
    std::array<std::uint64_t, 64> keys{};
    std::array<std::uint32_t, 64> vals{};
    for (int iter = 0; iter < 500; ++iter) {
        for (auto &k : keys)
            k = rng.next() % 8;
        for (auto &v : vals)
            v = static_cast<std::uint32_t>(rng.next());
        std::uint64_t needle = rng.next() % 8;
        std::uint64_t owners = rng.next();
        EXPECT_EQ(simd::matchMask64Avx2(keys.data(), 64, needle),
                  simd::matchMask64Scalar(keys.data(), 64, needle));
        EXPECT_EQ(simd::maskedUnion64Avx2(vals.data(), owners),
                  simd::maskedUnion64Scalar(vals.data(), owners));
    }
}
#endif

} // namespace
} // namespace tlsim
