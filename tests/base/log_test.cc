#include <gtest/gtest.h>

#include "base/log.h"

namespace tlsim {
namespace {

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strfmt("%04x", 0x2a), "002a");
}

TEST(Log, StrfmtEmpty)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Log, StrfmtLongString)
{
    std::string big(10000, 'q');
    EXPECT_EQ(strfmt("%s!", big.c_str()).size(), big.size() + 1);
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

} // namespace
} // namespace tlsim
