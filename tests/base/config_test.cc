#include <gtest/gtest.h>

#include <sstream>

#include "base/config.h"

namespace tlsim {
namespace {

TEST(Config, DefaultsMatchPaperTable1)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.cpu.issueWidth, 4u);
    EXPECT_EQ(cfg.cpu.robSize, 128u);
    EXPECT_EQ(cfg.cpu.intDivLatency, 76u);
    EXPECT_EQ(cfg.cpu.fpDivLatency, 15u);
    EXPECT_EQ(cfg.cpu.fpSqrtLatency, 20u);
    EXPECT_EQ(cfg.cpu.gshareBytes, 16u * 1024);
    EXPECT_EQ(cfg.cpu.gshareHistoryBits, 8u);

    EXPECT_EQ(cfg.mem.lineBytes, 32u);
    EXPECT_EQ(cfg.mem.l1Bytes, 32u * 1024);
    EXPECT_EQ(cfg.mem.l1Assoc, 4u);
    EXPECT_EQ(cfg.mem.l2Bytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.mem.l2Assoc, 4u);
    EXPECT_EQ(cfg.mem.l2Banks, 4u);
    EXPECT_EQ(cfg.mem.victimEntries, 64u);
    EXPECT_EQ(cfg.mem.l2HitLatency, 10u);
    EXPECT_EQ(cfg.mem.memLatency, 75u);
    EXPECT_EQ(cfg.mem.memCyclesPerAccess, 20u);
    EXPECT_EQ(cfg.mem.crossbarBytesPerCycle, 8u);
    EXPECT_EQ(cfg.mem.dataMshrs, 128u);
    EXPECT_EQ(cfg.mem.instMshrs, 2u);

    EXPECT_EQ(cfg.tls.numCpus, 4u);
    EXPECT_EQ(cfg.tls.subthreadsPerThread, 8u);
    EXPECT_EQ(cfg.tls.subthreadSpacing, 5000u);
    EXPECT_TRUE(cfg.tls.useStartTable);
}

TEST(Config, BaselineValidates)
{
    EXPECT_NO_FATAL_FAILURE(baselineConfig().validate());
}

TEST(Config, NoSubthreadVariant)
{
    MachineConfig cfg = noSubthreadConfig();
    EXPECT_EQ(cfg.tls.subthreadsPerThread, 1u);
    cfg.validate();
}

TEST(Config, PrintMentionsKeyParameters)
{
    std::ostringstream os;
    baselineConfig().print(os);
    std::string t = os.str();
    EXPECT_NE(t.find("Issue Width              4"), std::string::npos);
    EXPECT_NE(t.find("GShare (16KB, 8 history bits)"),
              std::string::npos);
    EXPECT_NE(t.find("2MB, 4-way set-assoc, 4 banks"),
              std::string::npos);
    EXPECT_NE(t.find("64 entry"), std::string::npos);
}

TEST(ConfigDeathTest, RejectsBadLineSize)
{
    MachineConfig cfg;
    cfg.mem.lineBytes = 48;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "line size");
}

TEST(ConfigDeathTest, RejectsZeroSubthreads)
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "sub-thread");
}

TEST(ConfigDeathTest, RejectsZeroSpacing)
{
    MachineConfig cfg;
    cfg.tls.subthreadSpacing = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "spacing");
}

} // namespace
} // namespace tlsim
