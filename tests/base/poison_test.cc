/**
 * @file
 * Poison token lifecycle tests (base/poison.h): the runtime half of
 * the object-lifetime discipline that tools/tlslife.py proves
 * statically. The Token compiles in every build flavor, so these run
 * unconditionally; the pooled-object hooks it guards (EpochRun,
 * LineSet, L2Cache) are exercised by the whole suite under the
 * -DTLSIM_POISON=ON tree (tools/run_sanitizers.sh poison).
 */

#include <gtest/gtest.h>

#include "base/poison.h"

namespace tlsim {
namespace {

TEST(PoisonToken, FreshTokenIsNeitherLiveNorReleased)
{
    poison::Token t;
    EXPECT_FALSE(t.live());
    EXPECT_FALSE(t.released());
    t.assertLive("widget"); // Fresh objects may be used before pooling
}

TEST(PoisonToken, AcquireReleaseRoundTrip)
{
    poison::Token t;
    t.markAcquired("widget");
    EXPECT_TRUE(t.live());
    t.assertLive("widget");
    t.markReleased("widget");
    EXPECT_TRUE(t.released());
    t.markAcquired("widget"); // pool hands it out again
    EXPECT_TRUE(t.live());
}

TEST(PoisonToken, FreshObjectMayBeReleasedDirectly)
{
    // First trip into the pool: the object was default-constructed by
    // the allocator path, never acquired from the free list.
    poison::Token t;
    t.markReleased("widget");
    EXPECT_TRUE(t.released());
}

TEST(PoisonTokenDeathTest, DoubleReleasePanics)
{
    poison::Token t;
    t.markAcquired("widget");
    t.markReleased("widget");
    EXPECT_DEATH(t.markReleased("widget"), "double release of widget");
}

TEST(PoisonTokenDeathTest, DoubleCheckoutPanics)
{
    poison::Token t;
    t.markAcquired("widget");
    EXPECT_DEATH(t.markAcquired("widget"), "double checkout");
}

TEST(PoisonTokenDeathTest, UseAfterReleasePanics)
{
    poison::Token t;
    t.markAcquired("widget");
    t.markReleased("widget");
    EXPECT_DEATH(t.assertLive("widget"), "use of released widget");
}

TEST(PoisonCanaries, PatternsAreDistinctAndNonZero)
{
    // The canaries must never collide with each other or with the
    // all-zero reset baseline assertRecycled() checks against.
    EXPECT_NE(poison::kU64, 0u);
    EXPECT_NE(poison::kU32, 0u);
    EXPECT_NE(poison::kLine, 0u);
    EXPECT_NE(poison::kU64, poison::kLine);
    EXPECT_EQ(poison::kU32, static_cast<std::uint32_t>(poison::kU64));
}

} // namespace
} // namespace tlsim
