#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "base/stats.h"

namespace tlsim {
namespace stats {
namespace {

TEST(Scalar, AccumulatesAndResets)
{
    StatGroup g("g");
    Scalar s(&g, "count", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Scalar, AssignmentOverwrites)
{
    Scalar s(nullptr, "x", "");
    s += 5;
    s = 2;
    EXPECT_DOUBLE_EQ(s.value(), 2);
}

TEST(Distribution, SummaryStatistics)
{
    Distribution d(nullptr, "lat", "latency");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20);
    EXPECT_DOUBLE_EQ(d.min(), 10);
    EXPECT_DOUBLE_EQ(d.max(), 30);
    EXPECT_NEAR(d.stdev(), 10.0, 1e-9);
}

TEST(Distribution, WeightedSamples)
{
    Distribution d(nullptr, "w", "");
    d.sample(5, 10);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 5);
    EXPECT_DOUBLE_EQ(d.stdev(), 0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d(nullptr, "e", "");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0);
    EXPECT_DOUBLE_EQ(d.min(), 0);
    EXPECT_DOUBLE_EQ(d.max(), 0);
}

TEST(Vector, BucketsAndTotal)
{
    Vector v(nullptr, "cat", "categories", {"a", "b", "c"});
    v[0] = 1;
    v[1] = 2;
    v[2] = 3;
    EXPECT_DOUBLE_EQ(v.total(), 6);
    EXPECT_DOUBLE_EQ(v.at(1), 2);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0);
}

TEST(StatGroup, DumpPrefixesEveryLine)
{
    StatGroup g("cpu0");
    Scalar s(&g, "cycles", "total cycles");
    Vector v(&g, "cat", "breakdown", {"busy", "idle"});
    s += 7;
    v[0] = 3;
    std::ostringstream os;
    g.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("cpu0.cycles 7"), std::string::npos);
    EXPECT_NE(text.find("cpu0.cat.busy 3"), std::string::npos);
    EXPECT_NE(text.find("cpu0.cat.idle 0"), std::string::npos);
}

TEST(StatGroup, ResetAllResetsMembers)
{
    StatGroup g("g");
    Scalar a(&g, "a", ""), b(&g, "b", "");
    a += 1;
    b += 2;
    g.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0);
    EXPECT_DOUBLE_EQ(b.value(), 0);
}

TEST(GlobalCounters, AddValueSnapshotReset)
{
    auto &gc = GlobalCounters::instance();
    gc.reset();
    EXPECT_EQ(gc.value("gc_test.never"), 0u);

    gc.add("gc_test.a");
    gc.add("gc_test.a", 4);
    gc.add("gc_test.b", 2);
    EXPECT_EQ(gc.value("gc_test.a"), 5u);
    EXPECT_EQ(gc.value("gc_test.b"), 2u);

    auto snap = gc.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "gc_test.a");
    EXPECT_EQ(snap[0].second, 5u);
    EXPECT_EQ(snap[1].first, "gc_test.b");
    EXPECT_EQ(snap[1].second, 2u);

    gc.reset();
    EXPECT_EQ(gc.value("gc_test.a"), 0u);
    EXPECT_TRUE(gc.snapshot().empty());
}

TEST(GlobalCounters, ConcurrentAddsAllLand)
{
    auto &gc = GlobalCounters::instance();
    gc.reset();
    constexpr int kThreads = 8;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i)
                gc.add("gc_test.concurrent");
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(gc.value("gc_test.concurrent"),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    gc.reset();
}

// TSan-focused stress (run_sanitizers.sh tsan selects *Shared*
// suites): increments racing value/snapshot reads and
// snapshot-then-reset flushes on the singleton. A flush that resets
// between its snapshot and another thread's add drops that add by
// design — each operation is atomic under mtx_, the flush pair is
// not — so the flushed total is bounded, not exact. What must hold
// under TSan is that no operation races on counters_ itself.
TEST(GlobalCountersSharedStress, IncrementsRacingFlushes)
{
    auto &gc = GlobalCounters::instance();
    gc.reset();
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 2000;
    std::atomic<bool> stop{false};

    std::uint64_t flushed = 0;
    std::thread flusher([&] {
        while (!stop.load(std::memory_order_acquire)) {
            for (const auto &kv : gc.snapshot())
                flushed += kv.second;
            gc.reset();
            std::this_thread::yield();
        }
    });
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            (void)gc.value("gc_stress.racy");
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t)
        writers.emplace_back([&] {
            for (int i = 0; i < kPerWriter; ++i)
                gc.add("gc_stress.racy");
        });
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    flusher.join();
    reader.join();

    flushed += gc.value("gc_stress.racy");
    EXPECT_GT(flushed, 0u);
    EXPECT_LE(flushed,
              static_cast<std::uint64_t>(kWriters * kPerWriter));
    gc.reset();
}

} // namespace
} // namespace stats
} // namespace tlsim
