#include <gtest/gtest.h>

#include "base/addr.h"

namespace tlsim {
namespace {

TEST(AddrMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(32));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(33));
}

TEST(AddrMath, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(32), 5u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(LineGeom, LineAddressing)
{
    LineGeom g(32);
    EXPECT_EQ(g.lineBytes(), 32u);
    EXPECT_EQ(g.lineAddr(0x1234), 0x1220u);
    EXPECT_EQ(g.lineNum(0x1234), 0x1234u >> 5);
    EXPECT_EQ(g.offset(0x1234), 0x14u);
}

TEST(LineGeom, WordMaskSingleWord)
{
    LineGeom g(32);
    EXPECT_EQ(g.wordMask(0, 4), 0x1u);
    EXPECT_EQ(g.wordMask(4, 4), 0x2u);
    EXPECT_EQ(g.wordMask(28, 4), 0x80u);
}

TEST(LineGeom, WordMaskSpansWords)
{
    LineGeom g(32);
    // 8 bytes at offset 0 covers words 0 and 1.
    EXPECT_EQ(g.wordMask(0, 8), 0x3u);
    // Unaligned 4 bytes at offset 2 covers words 0 and 1.
    EXPECT_EQ(g.wordMask(2, 4), 0x3u);
    // Whole line.
    EXPECT_EQ(g.wordMask(0, 32), 0xFFu);
}

TEST(LineGeom, WordMaskZeroSizeTouchesOneWord)
{
    LineGeom g(32);
    EXPECT_EQ(g.wordMask(12, 0), 0x8u);
}

TEST(LineGeom, WordMaskClampsAtLineEnd)
{
    LineGeom g(32);
    // The tracer splits accesses at line boundaries, but the mask must
    // stay in range even for a nominally overlong access.
    EXPECT_EQ(g.wordMask(28, 16), 0x80u);
}

TEST(LineGeom, LineSpan)
{
    LineGeom g(32);
    EXPECT_EQ(g.lineSpan(0, 32), 1u);
    EXPECT_EQ(g.lineSpan(0, 33), 2u);
    EXPECT_EQ(g.lineSpan(31, 2), 2u);
    EXPECT_EQ(g.lineSpan(100, 0), 1u);
}

} // namespace
} // namespace tlsim
