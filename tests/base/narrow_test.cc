/**
 * @file
 * checkedNarrow/truncateNarrow tests: in-range values pass through
 * exactly, out-of-range checked casts panic, and the truncating form
 * wraps modulo 2^N like the static_casts it replaces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "base/narrow.h"

namespace tlsim {
namespace {

TEST(CheckedNarrow, InRangePassesThrough)
{
    EXPECT_EQ(checkedNarrow<std::uint8_t>(std::uint64_t{0}), 0u);
    EXPECT_EQ(checkedNarrow<std::uint8_t>(std::uint64_t{255}), 255u);
    EXPECT_EQ(checkedNarrow<std::uint16_t>(65535u), 65535u);
    EXPECT_EQ(checkedNarrow<std::int8_t>(-128), -128);
    EXPECT_EQ(checkedNarrow<std::int8_t>(127), 127);
    EXPECT_EQ(checkedNarrow<std::uint32_t>(
                  std::uint64_t{0xFFFFFFFFull}),
              0xFFFFFFFFu);
}

TEST(CheckedNarrow, SignednessChangesAreChecked)
{
    // Negative to unsigned must die, not wrap.
    EXPECT_EQ(checkedNarrow<std::uint32_t>(std::int64_t{7}), 7u);
    EXPECT_DEATH(checkedNarrow<std::uint32_t>(std::int64_t{-1}),
                 "checkedNarrow");
    // Large unsigned to signed must die, not go negative.
    EXPECT_DEATH(checkedNarrow<std::int8_t>(200u), "checkedNarrow");
}

TEST(CheckedNarrowDeathTest, OutOfRangePanics)
{
    EXPECT_DEATH(checkedNarrow<std::uint8_t>(std::uint64_t{256}),
                 "checkedNarrow");
    EXPECT_DEATH(
        checkedNarrow<std::uint32_t>(
            std::numeric_limits<std::uint64_t>::max()),
        "checkedNarrow");
}

TEST(TruncateNarrow, WrapsModulo)
{
    EXPECT_EQ(truncateNarrow<std::uint8_t>(std::uint64_t{0x1FF}),
              0xFFu);
    EXPECT_EQ(truncateNarrow<std::uint8_t>(std::uint64_t{0x100}), 0u);
    EXPECT_EQ(truncateNarrow<std::uint16_t>(std::uint64_t{0x12345}),
              0x2345u);
}

TEST(CheckedNarrow, WideningIsAlwaysFine)
{
    EXPECT_EQ(checkedNarrow<std::uint64_t>(std::uint8_t{200}), 200u);
    EXPECT_EQ(checkedNarrow<std::int64_t>(-5), -5);
}

} // namespace
} // namespace tlsim
