/**
 * @file
 * LineSet generation-stamp tests, centered on the uint32 wraparound
 * path in clear(): a set cleared 2^32 times must not resurrect stale
 * entries whose slot stamps alias the restarted generation counter.
 * The debugSetGeneration() seam makes the wrap reachable without four
 * billion real clears.
 */

#include <vector>

#include <gtest/gtest.h>

#include "base/dethash.h"
#include "base/lineset.h"

namespace tlsim {
namespace {

/** Canonical digest of the set's iterated contents. */
std::uint64_t
digestOf(const LineSet &s)
{
    det::Hash h;
    h.u64(s.size());
    for (Addr line : s)
        h.u64(line);
    return h.value();
}

TEST(LineSetGeneration, ClearWrapsWithoutResurrectingStaleEntries)
{
    LineSet s;
    s.debugSetGeneration(~std::uint32_t{0}); // next clear() wraps
    for (Addr a = 100; a < 140; ++a)
        EXPECT_TRUE(s.insert(a));
    EXPECT_EQ(s.size(), 40u);

    s.clear(); // ++gen_ overflows to 0: the wrap path must run
    EXPECT_TRUE(s.empty());
    for (Addr a = 100; a < 140; ++a) {
        EXPECT_FALSE(s.contains(a)) << "stale line " << a
                                    << " resurfaced after the wrap";
        EXPECT_EQ(s.count(a), 0u);
    }

    // The restarted generation must behave like a fresh set.
    EXPECT_TRUE(s.insert(105));
    EXPECT_FALSE(s.insert(105));
    EXPECT_TRUE(s.contains(105));
    EXPECT_EQ(s.size(), 1u);
}

TEST(LineSetGeneration, WrapSurvivesRepeatedClears)
{
    LineSet s;
    s.debugSetGeneration(~std::uint32_t{0} - 3);
    // Straddle the wrap with several insert/clear rounds; each round
    // must see an empty set and clean inserts.
    for (int round = 0; round < 8; ++round) {
        EXPECT_TRUE(s.empty()) << "round " << round;
        for (Addr a = 0; a < 20; ++a)
            EXPECT_TRUE(s.insert(a * 7 + round)) << "round " << round;
        EXPECT_EQ(s.size(), 20u);
        s.clear();
    }
}

TEST(LineSetGeneration, DigestInvariantAcrossWrap)
{
    // The canonical digest of identical insertion sequences must not
    // depend on which side of the generation wrap the set is on —
    // iteration order is insertion order, never table order.
    std::vector<Addr> lines;
    for (Addr a = 0; a < 100; ++a)
        lines.push_back(a * 131 + 7);

    LineSet fresh;
    for (Addr a : lines)
        fresh.insert(a);
    const std::uint64_t expected = digestOf(fresh);

    LineSet wrapped;
    wrapped.debugSetGeneration(~std::uint32_t{0});
    wrapped.insert(42); // dirty the pre-wrap generation
    wrapped.clear();    // wrap
    for (Addr a : lines)
        wrapped.insert(a);
    EXPECT_EQ(expected, digestOf(wrapped));

    // Erase reorders only the tail it touches; digest must still be a
    // pure function of the live contents' order on both sides.
    fresh.erase(lines[10]);
    wrapped.erase(lines[10]);
    EXPECT_EQ(digestOf(fresh), digestOf(wrapped));
}

TEST(LineSetGeneration, GrowAcrossWrappedGenerationRehashes)
{
    LineSet s;
    s.debugSetGeneration(~std::uint32_t{0});
    s.clear(); // wrap first, then force growth past kMinCapacity
    for (Addr a = 0; a < 500; ++a)
        EXPECT_TRUE(s.insert(a));
    EXPECT_EQ(s.size(), 500u);
    for (Addr a = 0; a < 500; ++a)
        EXPECT_TRUE(s.contains(a));
    EXPECT_FALSE(s.contains(500));
}

} // namespace
} // namespace tlsim
