#include <gtest/gtest.h>

#include <map>

#include "base/rng.h"

namespace tlsim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(42);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(42);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformStaysInClosedRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniform(5, 15);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 15);
    }
}

TEST(Rng, UniformSingletonRange)
{
    Rng r(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniform(9, 9), 9);
}

TEST(Rng, UniformNegativeRange)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniform(-10, -1);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -1);
    }
}

TEST(Rng, UniformHitsAllValuesOfSmallRange)
{
    Rng r(3);
    std::map<std::int64_t, int> seen;
    for (int i = 0; i < 1000; ++i)
        seen[r.uniform(0, 3)]++;
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

} // namespace
} // namespace tlsim
