/**
 * @file
 * Generated-by-manifest permutation property tests for the mergers
 * declared in tools/detmergers.txt (tlsdet pass D4).
 *
 * Every function the manifest declares order-insensitive must have a
 * registered property here that feeds it the same multiset of inputs
 * in several shard orders and demands an identical merged result; a
 * manifest entry with no registered property fails the suite (and
 * tlsdet independently flags it as d4-untested, since this file is
 * the corpus its structural check greps).
 */

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/dethash.h"
#include "base/stats.h"

#ifndef TLSIM_DETMERGERS
#error "build must define TLSIM_DETMERGERS (path to tools/detmergers.txt)"
#endif

namespace {

using tlsim::det::combineUnordered;

std::vector<std::string>
loadManifest(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << "cannot open merger manifest " << path;
    std::vector<std::string> quals;
    std::string line;
    while (std::getline(is, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() && std::isspace(
                   static_cast<unsigned char>(line.back())))
            line.pop_back();
        std::size_t b = 0;
        while (b < line.size() && std::isspace(
                   static_cast<unsigned char>(line[b])))
            ++b;
        line.erase(0, b);
        if (!line.empty())
            quals.push_back(line);
    }
    return quals;
}

/** Fold `items` with combineUnordered in the given order. */
std::uint64_t
foldDigests(const std::vector<std::uint64_t> &items)
{
    std::uint64_t acc = 0;
    for (std::uint64_t h : items)
        acc = combineUnordered(acc, h);
    return acc;
}

void
propertyCombineUnordered()
{
    std::mt19937_64 rng(0x5eedu);
    std::vector<std::uint64_t> items(257);
    for (std::uint64_t &h : items)
        h = rng();
    // Adversarial multiset: duplicates must not cancel (the trivial
    // XOR-fold failure mode the splitmix64 mixer exists to prevent).
    items.push_back(items[0]);
    items.push_back(items[0]);

    const std::uint64_t canonical = foldDigests(items);
    std::vector<std::uint64_t> perm = items;
    std::reverse(perm.begin(), perm.end());
    EXPECT_EQ(canonical, foldDigests(perm)) << "reverse order";
    for (int round = 0; round < 8; ++round) {
        std::shuffle(perm.begin(), perm.end(), rng);
        EXPECT_EQ(canonical, foldDigests(perm))
            << "shuffle round " << round;
    }

    // Shard associativity: merging per-shard partial folds must equal
    // the flat fold, whatever the split point — exactly the
    // work-stealing completion-order scenario.
    for (std::size_t split : {std::size_t{1}, items.size() / 3,
                              items.size() / 2, items.size() - 1}) {
        std::vector<std::uint64_t> a(items.begin(),
                                     items.begin() + split);
        std::vector<std::uint64_t> b(items.begin() + split,
                                     items.end());
        EXPECT_EQ(canonical, foldDigests(a) + foldDigests(b))
            << "shard split at " << split;
    }

    // Duplicates must change the digest (x + x != 0 under the mixer).
    std::vector<std::uint64_t> doubled = items;
    doubled.push_back(items[1]);
    EXPECT_NE(canonical, foldDigests(doubled));
}

void
propertyGlobalCountersAdd()
{
    auto &gc = tlsim::stats::GlobalCounters::instance();
    std::mt19937_64 rng(0xc0ffeeu);
    // A multiset of (name, delta) increments, as several shards would
    // emit them concurrently.
    std::vector<std::pair<std::string, std::uint64_t>> ops;
    const char *names[] = {"det.a", "det.b", "det.c", "det.d"};
    for (int i = 0; i < 200; ++i)
        ops.emplace_back(names[rng() % 4], rng() % 1000);

    auto run = [&](const std::vector<std::pair<std::string,
                                               std::uint64_t>> &seq) {
        gc.reset();
        for (const auto &[name, delta] : seq)
            gc.add(name, delta);
        return gc.snapshot();
    };

    const auto canonical = run(ops);
    auto perm = ops;
    std::reverse(perm.begin(), perm.end());
    EXPECT_EQ(canonical, run(perm)) << "reverse order";
    for (int round = 0; round < 4; ++round) {
        std::shuffle(perm.begin(), perm.end(), rng);
        EXPECT_EQ(canonical, run(perm)) << "shuffle round " << round;
    }
    gc.reset();
}

const std::map<std::string, std::function<void()>> &
registry()
{
    static const std::map<std::string, std::function<void()>> reg = {
        {"combineUnordered", propertyCombineUnordered},
        {"GlobalCounters::add", propertyGlobalCountersAdd},
    };
    return reg;
}

TEST(MergePermutation, EveryManifestEntryHasAProperty)
{
    const auto quals = loadManifest(TLSIM_DETMERGERS);
    ASSERT_FALSE(quals.empty());
    for (const std::string &qual : quals)
        EXPECT_TRUE(registry().count(qual))
            << "tools/detmergers.txt declares `" << qual
            << "` commutative but no permutation property is "
               "registered here";
}

TEST(MergePermutation, ManifestPropertiesHold)
{
    for (const std::string &qual : loadManifest(TLSIM_DETMERGERS)) {
        auto it = registry().find(qual);
        if (it == registry().end())
            continue; // reported by EveryManifestEntryHasAProperty
        SCOPED_TRACE(qual);
        it->second();
    }
}

} // namespace
