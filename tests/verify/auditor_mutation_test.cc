/**
 * @file
 * Mutation harness for the protocol invariant auditor and the offline
 * checker: seed known corruption classes into otherwise-consistent
 * speculative state (or into the simulator's self-reported results)
 * and require that each one is caught. A verifier that never fires is
 * indistinguishable from one that is wired up wrong, so every negative
 * test here is paired with a positive control on the uncorrupted
 * state.
 *
 * Corruption classes:
 *   1. dropped SM bit        — buffered L2 version with no modifier
 *                              metadata (and the converse);
 *   2. stale victim entry    — duplicated or dead-thread victim-cache
 *                              versions;
 *   3. skipped violation     — simulator results whose violation
 *                              bookkeeping disagrees with the offline
 *                              checker's happens-before ground truth;
 * plus structural protocol corruptions (dead-context metadata,
 * non-monotone spawns, out-of-order commits) seeded through the same
 * AuditView seam the machine uses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "core/machine.h"
#include "core/site.h"
#include "core/specstate.h"
#include "core/traceindex.h"
#include "core/tracer.h"
#include "mem/memsys.h"
#include "verify/auditor.h"
#include "verify/checker.h"

namespace tlsim {
namespace {

MachineConfig
testConfig(unsigned subthreads = 8, std::uint64_t spacing = 1000)
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = subthreads;
    cfg.tls.subthreadSpacing = spacing;
    return cfg;
}

/**
 * Hand-built machine state behind an AuditView: a SpecState, a real
 * MemSystem, and per-CPU epoch slots the tests can activate and
 * corrupt directly — the same seam TlsMachine::refreshAuditView()
 * fills, minus the machine.
 */
class SyntheticState
{
  public:
    SyntheticState()
        : cfg_(testConfig()),
          numCpus_(cfg_.tls.numCpus),
          k_(cfg_.tls.subthreadsPerThread),
          spec_(numCpus_ * k_),
          mem_(cfg_),
          tables_(numCpus_,
                  std::vector<std::pair<std::uint64_t, unsigned>>(
                      numCpus_ * k_))
    {
        cpus_.resize(numCpus_);
        for (unsigned c = 0; c < numCpus_; ++c)
            cpus_[c].startTable = &tables_[c];
    }

    void
    activate(CpuId cpu, std::uint64_t seq, unsigned cur_sub = 0)
    {
        cpus_[cpu].active = true;
        cpus_[cpu].seq = seq;
        cpus_[cpu].curSub = cur_sub;
    }

    /** A consistent speculative store: SM bits plus the L2 version. */
    void
    consistentStore(CpuId cpu, unsigned sub, Addr line)
    {
        spec_.recordStore(cpu * k_ + sub, line, 0xF);
        ASSERT_TRUE(
            mem_.l2().insert(line, static_cast<std::uint8_t>(cpu)));
    }

    AuditView
    view()
    {
        AuditView v;
        v.spec = &spec_;
        v.mem = &mem_;
        v.numCpus = numCpus_;
        v.k = k_;
        v.cpus = cpus_;
        return v;
    }

    unsigned k() const { return k_; }
    SpecState &spec() { return spec_; }
    MemSystem &mem() { return mem_; }

  private:
    MachineConfig cfg_;
    unsigned numCpus_;
    unsigned k_;
    SpecState spec_;
    MemSystem mem_;
    std::vector<std::vector<std::pair<std::uint64_t, unsigned>>> tables_;
    std::vector<AuditCpuState> cpus_;
};

/** The invariant name a corrupted state must be rejected under. */
void
expectViolation(const std::function<void(verify::Auditor &)> &probe,
                const char *invariant)
{
    verify::Auditor a(AuditLevel::Full);
    try {
        probe(a);
        FAIL() << "corruption not caught (expected " << invariant
               << ")";
    } catch (const verify::AuditViolation &v) {
        EXPECT_EQ(v.invariant(), invariant) << v.what();
    }
}

TEST(AuditorMutation, ConsistentStatePassesAllHooks)
{
    SyntheticState s;
    s.activate(0, 5);
    s.consistentStore(0, 0, 100);

    verify::Auditor a(AuditLevel::Full);
    AuditView v = s.view();
    EXPECT_NO_THROW(a.onRunStart(v));
    EXPECT_NO_THROW(a.onAccess(v, 0, 100));
    EXPECT_GT(a.checks(), 0u);
}

// Class 1a: dropped SM bit — the thread's metadata vanished while its
// buffered L2 version survived (e.g. a clearContext that forgot to
// drop the version).
TEST(AuditorMutation, DroppedSmBitLeavesOrphanedVersion)
{
    SyntheticState s;
    s.activate(0, 5);
    s.consistentStore(0, 0, 100);
    s.spec().clearContext(0, std::uint64_t{1} << 0); // SM gone, L2 stays

    AuditView v = s.view();
    expectViolation([&](verify::Auditor &a) { a.onRunStart(v); },
                    "I2.version-iff-sm");
    expectViolation([&](verify::Auditor &a) { a.onAccess(v, 0, 100); },
                    "I2.version-iff-sm");
}

// Class 1b: the converse — SM bits recorded but the version was never
// allocated (or was silently evicted without victim backup).
TEST(AuditorMutation, SmBitsWithoutBufferedVersion)
{
    SyntheticState s;
    s.activate(0, 5);
    s.spec().recordStore(0, 200, 0xF); // no L2 insert

    AuditView v = s.view();
    expectViolation([&](verify::Auditor &a) { a.onRunStart(v); },
                    "I2.version-iff-sm");
}

// Class 2a: stale victim entry duplicating a live L2 version.
TEST(AuditorMutation, StaleVictimEntryDuplicatesL2Version)
{
    SyntheticState s;
    s.activate(0, 5);
    s.consistentStore(0, 0, 100);
    s.mem().victim().insert(100, 0); // stale duplicate

    AuditView v = s.view();
    expectViolation([&](verify::Auditor &a) { a.onAccess(v, 0, 100); },
                    "I3.single-buffer");
    expectViolation([&](verify::Auditor &a) { a.onRunStart(v); },
                    "I3.single-buffer");
}

// Class 2b: a victim entry of a thread that no longer exists.
TEST(AuditorMutation, DeadThreadVictimEntry)
{
    SyntheticState s;
    s.activate(0, 5);
    s.mem().victim().insert(300, 2); // cpu 2 has no live epoch

    AuditView v = s.view();
    expectViolation([&](verify::Auditor &a) { a.onRunStart(v); },
                    "I2.version-iff-sm");
}

// Structural: metadata owned by a context outside any live epoch.
TEST(AuditorMutation, DeadContextMetadata)
{
    SyntheticState s;
    s.activate(0, 5);
    // cpu 1 inactive, yet its context 0 holds an SL bit.
    s.spec().recordLoadExposed(1 * s.k() + 0, 400);

    AuditView v = s.view();
    expectViolation([&](verify::Auditor &a) { a.onRunStart(v); },
                    "I1.holders-live");
}

// Structural: a spawn that skips a sub-thread index.
TEST(AuditorMutation, NonMonotoneSpawn)
{
    SyntheticState s;
    s.activate(0, 5, /*cur_sub=*/2);

    AuditView v = s.view();
    expectViolation(
        [&](verify::Auditor &a) {
            a.onRunStart(v);
            a.onSpawn(v, 0, 2); // sub 1 never spawned
        },
        "I4.spawn-monotone");
}

// Structural: homefree token passed out of program order.
TEST(AuditorMutation, OutOfOrderCommit)
{
    SyntheticState s;
    AuditView v = s.view();
    expectViolation(
        [&](verify::Auditor &a) {
            a.onRunStart(v);
            a.onCommit(v, 0, 5);
            a.onCommit(v, 1, 3); // older epoch after younger
        },
        "I6.commit-order");
}

// ---------------------------------------------------------------------
// Class 3: skipped / fabricated violations, caught by diffing the
// simulator's results against the offline checker's ground truth.
// ---------------------------------------------------------------------

/** Same synthetic-workload builder as the machine tests. */
class TraceBuilder
{
  public:
    TraceBuilder()
        : mem_(16384, 0)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        tracer_ = std::make_unique<Tracer>(o);
        pc_ = SiteRegistry::instance().intern("test.verify.site");
    }

    void *addr(std::size_t word) { return &mem_.at(word); }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        tracer_->txnBegin();
        tracer_->compute(pc_, 100);
        tracer_->loopBegin();
        for (const auto &body : bodies) {
            tracer_->iterBegin();
            body(*tracer_);
        }
        tracer_->loopEnd();
        tracer_->compute(pc_, 100);
        tracer_->txnEnd();
        return tracer_->takeWorkload();
    }

    Pc pc() const { return pc_; }

  private:
    std::vector<std::uint64_t> mem_;
    std::unique_ptr<Tracer> tracer_;
    Pc pc_;
};

/** A workload with one guaranteed RAW dependence. */
WorkloadTrace
rawWorkload(TraceBuilder &b)
{
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 200);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    return b.loopTxn({writer, reader});
}

TEST(CheckerMutation, HonestRunPassesAndDoctoredRunsFail)
{
    TraceBuilder b;
    WorkloadTrace w = rawWorkload(b);

    MachineConfig cfg = testConfig();
    cfg.tls.auditLevel = AuditLevel::Full;
    TlsMachine m(cfg);
    RunResult r = verify::runWithAudit(m, w, ExecMode::Tls);
    ASSERT_GE(r.primaryViolations, 1u);
    EXPECT_GT(r.auditChecks, 0u);

    verify::CheckResult chk =
        verify::checkTrace(w, cfg.mem.lineBytes);
    ASSERT_FALSE(chk.rawLines.empty());

    // Positive control: the honest run diffs clean.
    EXPECT_TRUE(verify::diffAgainstRun(chk, r).empty());

    // Skipped violation: a violated line was dropped from the log, so
    // the count no longer matches.
    {
        RunResult doctored = r;
        doctored.violatedLines.pop_back();
        EXPECT_FALSE(verify::diffAgainstRun(chk, doctored).empty());
    }

    // Fabricated violation: a line the happens-before analysis proves
    // can never carry a RAW dependence.
    {
        RunResult doctored = r;
        Addr bogus = 0;
        while (chk.rawLines.count(bogus))
            ++bogus;
        doctored.violatedLines.push_back(bogus);
        ++doctored.primaryViolations;
        EXPECT_FALSE(verify::diffAgainstRun(chk, doctored).empty());
    }

    // Serializability: a non-monotone commit order.
    {
        RunResult doctored = r;
        ASSERT_GE(doctored.commitOrder.size(), 2u);
        std::swap(doctored.commitOrder.front(),
                  doctored.commitOrder.back());
        EXPECT_FALSE(verify::diffAgainstRun(chk, doctored).empty());
    }
}

TEST(CheckerMutation, IndexBitDisagreementIsCaught)
{
    TraceBuilder b;
    WorkloadTrace w = rawWorkload(b);
    unsigned line_bytes = MemConfig{}.lineBytes;

    TraceIndex idx(w, line_bytes);
    verify::CheckResult chk = verify::checkTrace(w, line_bytes);

    // Positive control: checker and oracle agree bit-for-bit.
    ASSERT_TRUE(verify::diffAgainstIndex(chk, idx, w).empty());

    // Flip one classification bit (as a corrupted .idx would) — the
    // diff must flag it; a skipped conflict bit means the simulator
    // would never scan that line for violations.
    bool flipped = false;
    for (auto &flags : chk.epochFlags) {
        for (auto &f : flags) {
            if (f & 1) {
                f = static_cast<std::uint8_t>(f & ~1u);
                flipped = true;
                break;
            }
        }
        if (flipped)
            break;
    }
    ASSERT_TRUE(flipped) << "RAW workload produced no conflict bits";
    EXPECT_FALSE(verify::diffAgainstIndex(chk, idx, w).empty());
}

TEST(CheckerMutation, CheckerFindsTheSeededRawLine)
{
    TraceBuilder b;
    WorkloadTrace w = rawWorkload(b);
    verify::CheckResult chk =
        verify::checkTrace(w, MemConfig{}.lineBytes);
    EXPECT_EQ(chk.parallelEpochs, 2u);
    EXPECT_EQ(chk.rawLines.size(), 1u);
    EXPECT_GE(chk.exposedLoads, 1u);
}

// End-to-end: the auditor must be invisible — an audited run produces
// exactly the same simulation as an unaudited one, just with checks.
TEST(AuditorMutation, AuditedRunMatchesPlainRun)
{
    TraceBuilder b;
    WorkloadTrace w = rawWorkload(b);

    TlsMachine plain(testConfig());
    RunResult r0 = plain.run(w, ExecMode::Tls);

    MachineConfig cfg = testConfig();
    cfg.tls.auditLevel = AuditLevel::Full;
    TlsMachine audited(cfg);
    RunResult r1 = verify::runWithAudit(audited, w, ExecMode::Tls);

    EXPECT_EQ(r0.makespan, r1.makespan);
    EXPECT_EQ(r0.primaryViolations, r1.primaryViolations);
    EXPECT_EQ(r0.squashes, r1.squashes);
    EXPECT_EQ(r0.epochs, r1.epochs);
    EXPECT_EQ(r0.commitOrder, r1.commitOrder);
    EXPECT_EQ(r0.auditChecks, 0u);
    EXPECT_GT(r1.auditChecks, 0u);
}

} // namespace
} // namespace tlsim
