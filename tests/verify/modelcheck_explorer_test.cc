/**
 * @file
 * Soundness and effectiveness of the DPOR exploration: on bounded
 * tuples the reduced exploration must reach exactly the terminal
 * outcomes the naive full-tree exploration reaches (soundness), while
 * visiting a small fraction of its transitions (effectiveness), and
 * the unmutated protocol must explore violation-free.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"
#include "verify/modelcheck/programs.h"

namespace tlsim {
namespace {

using verify::mc::ExploreConfig;
using verify::mc::ExploreResult;
using verify::mc::ModelConfig;
using verify::mc::Program;

ModelConfig
boundsConfig(unsigned epochs)
{
    ModelConfig cfg;
    cfg.epochs = epochs;
    cfg.k = 2;
    cfg.lines = 2;
    cfg.spacing = 1;
    return cfg;
}

ExploreResult
run(const ModelConfig &cfg, const std::vector<Program> &programs,
    bool dpor)
{
    ExploreConfig xcfg;
    xcfg.dpor = dpor;
    xcfg.collectOutcomes = true;
    return verify::mc::explore(cfg, programs, xcfg);
}

TEST(ModelcheckExplorer, DporReachesNaiveOutcomes)
{
    // Every canonical interacting 2-epoch tuple of 2-op programs:
    // naive and DPOR explorations must agree on the outcome set.
    ModelConfig cfg = boundsConfig(2);
    auto families = verify::mc::programFamilies(
        cfg.epochs, /*len=*/2, cfg.lines, /*interacting_only=*/true);
    ASSERT_FALSE(families.empty());
    for (const auto &programs : families) {
        ExploreResult naive = run(cfg, programs, /*dpor=*/false);
        ExploreResult dpor = run(cfg, programs, /*dpor=*/true);
        ASSERT_TRUE(naive.ok()) << naive.violations[0].toString();
        ASSERT_TRUE(dpor.ok()) << dpor.violations[0].toString();
        EXPECT_EQ(naive.outcomes, dpor.outcomes);
        EXPECT_LE(dpor.stats.schedulesCompleted,
                  naive.stats.schedulesCompleted);
    }
}

TEST(ModelcheckExplorer, DporPrunesAtLeastFiveFold)
{
    // Reduction is measured on three-epoch tuples with a spread of
    // conflict density (where interleavings of independent steps
    // dominate, the naive tree explodes and DPOR shines; all-conflict
    // tuples are inherently near-naive). The same instances back the
    // bench JSON's reduction figure.
    using verify::mc::Op;
    using verify::mc::OpKind;
    Op T{OpKind::Tick, 0}, L0{OpKind::Load, 0}, S0{OpKind::Store, 0},
        L1{OpKind::Load, 1}, S1{OpKind::Store, 1};
    std::vector<std::vector<Program>> instances = {
        {{S0, T}, {L0}, {L1}},
        {{S0}, {L0}, {L1, S1}},
        {{S0}, {T, L0}, {L1, T}},
    };
    ModelConfig cfg = boundsConfig(3);
    std::uint64_t naive_total = 0, dpor_total = 0;
    for (const auto &programs : instances) {
        ExploreResult naive = run(cfg, programs, /*dpor=*/false);
        ExploreResult dpor = run(cfg, programs, /*dpor=*/true);
        ASSERT_TRUE(naive.ok()) << naive.violations[0].toString();
        ASSERT_TRUE(dpor.ok()) << dpor.violations[0].toString();
        EXPECT_EQ(naive.outcomes, dpor.outcomes);
        naive_total += naive.stats.schedulesCompleted;
        dpor_total += dpor.stats.schedulesCompleted;
    }
    EXPECT_GE(naive_total, 5 * dpor_total)
        << "naive " << naive_total << " vs dpor " << dpor_total;
}

TEST(ModelcheckExplorer, ThreeEpochBoundIsViolationFree)
{
    // The full 3-epoch x k=2 x 2-line bound at program length 1 —
    // every interleaving of every canonical tuple, exhaustively.
    ModelConfig cfg = boundsConfig(3);
    auto families = verify::mc::programFamilies(
        cfg.epochs, /*len=*/1, cfg.lines, /*interacting_only=*/true);
    ASSERT_FALSE(families.empty());
    std::uint64_t schedules = 0;
    for (const auto &programs : families) {
        ExploreResult res = run(cfg, programs, /*dpor=*/true);
        ASSERT_TRUE(res.ok()) << res.violations[0].toString();
        schedules += res.stats.schedulesCompleted;
    }
    EXPECT_GT(schedules, 0u);
}

TEST(ModelcheckExplorer, WholeThreadProtocolAlsoVerifies)
{
    // Figure 4(a) mode (no start table) is a valid protocol too — the
    // checker must not bake in 4(b)'s restart points.
    ModelConfig cfg = boundsConfig(2);
    cfg.useStartTable = false;
    for (const auto &programs : verify::mc::programFamilies(
             cfg.epochs, /*len=*/2, cfg.lines,
             /*interacting_only=*/true)) {
        ExploreResult res = run(cfg, programs, /*dpor=*/true);
        ASSERT_TRUE(res.ok()) << res.violations[0].toString();
    }
}

TEST(ModelcheckExplorer, VersionBoundOverflowsAreExplored)
{
    // With an abstract 1-version buffer, stores race for the slot and
    // overflow squashes fire; bounded exploration must stay clean.
    ModelConfig cfg = boundsConfig(2);
    cfg.versionBound = 1;
    ExploreConfig xcfg;
    xcfg.dpor = true;
    xcfg.maxSteps = 48; // squash/retry cycles need a depth bound
    using verify::mc::Op;
    using verify::mc::OpKind;
    std::vector<Program> programs = {
        {{OpKind::Store, 0}, {OpKind::Store, 1}},
        {{OpKind::Store, 1}, {OpKind::Store, 0}},
    };
    ExploreResult res = verify::mc::explore(cfg, programs, xcfg);
    ASSERT_TRUE(res.ok()) << res.violations[0].toString();
    EXPECT_GT(res.stats.transitions, 0u);
}

TEST(ModelcheckExplorer, ScheduleBudgetStopsExploration)
{
    ModelConfig cfg = boundsConfig(3);
    std::vector<Program> programs(3);
    for (auto &p : programs)
        p = {{verify::mc::OpKind::Store, 0},
             {verify::mc::OpKind::Load, 0}};
    ExploreConfig xcfg;
    xcfg.dpor = false;
    xcfg.maxSchedules = 10;
    ExploreResult res = verify::mc::explore(cfg, programs, xcfg);
    EXPECT_TRUE(res.budgetExhausted);
    EXPECT_EQ(res.stats.schedulesCompleted, 10u);
}

} // namespace
} // namespace tlsim
