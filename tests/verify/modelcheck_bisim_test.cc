/**
 * @file
 * Model <-> machine bisimulation: sampled maximal schedules of the
 * abstract protocol model replay bit-identically through the real
 * TlsMachine via the ScheduleOracle seam — same runnable sets at
 * every scheduler step, same protocol event sequence, same counters,
 * same commit order. (The nightly tools/run_modelcheck.sh drives the
 * thousand-sample version of this; the bounds here keep the fast tier
 * fast while still crossing spawns, violations and rewinds.)
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "verify/modelcheck/bisim.h"
#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"
#include "verify/modelcheck/programs.h"

namespace tlsim {
namespace {

using verify::mc::BisimOutcome;
using verify::mc::BisimSweep;
using verify::mc::ModelConfig;
using verify::mc::Op;
using verify::mc::OpKind;
using verify::mc::Program;

ModelConfig
boundsConfig(unsigned epochs, unsigned k)
{
    ModelConfig cfg;
    cfg.epochs = epochs;
    cfg.k = k;
    cfg.lines = 2;
    cfg.spacing = 1;
    return cfg;
}

TEST(ModelcheckBisim, SampledSchedulesReplayBitIdentically)
{
    BisimSweep sweep = verify::mc::sampleBisim(
        boundsConfig(3, 2), /*samples=*/200, /*seed=*/0x5eed,
        /*program_len=*/3);
    EXPECT_EQ(sweep.samples, 200u);
    EXPECT_EQ(sweep.failures, 0u) << sweep.firstFailure;
    EXPECT_GT(sweep.modelSteps, 0u);
    // The machine side ran under the full Auditor: every sample was
    // also an I1-I6 machine check.
    EXPECT_GT(sweep.auditChecks, 0u);
}

TEST(ModelcheckBisim, DeeperContextsReplayToo)
{
    // k=3 sub-thread contexts and longer programs: multiple spawns
    // per epoch, secondary violations across three live epochs.
    BisimSweep sweep = verify::mc::sampleBisim(
        boundsConfig(3, 3), /*samples=*/100, /*seed=*/7,
        /*program_len=*/4);
    EXPECT_EQ(sweep.failures, 0u) << sweep.firstFailure;
}

TEST(ModelcheckBisim, DirectedViolationScheduleReplays)
{
    // The Figure 4(b) scenario as an explicit maximal schedule:
    // exercises primary + secondary violation, selective restart and
    // the post-squash re-execution on both sides.
    ModelConfig cfg = boundsConfig(3, 2);
    Op tick{OpKind::Tick, 0};
    std::vector<Program> programs = {
        {{OpKind::Store, 0}},
        {tick, {OpKind::Load, 0}},
        {tick, {OpKind::Load, 1}},
    };
    // Greedily extend the directed prefix to a maximal schedule.
    std::vector<unsigned> schedule = {2, 2, 1, 1, 1, 0, 2};
    verify::mc::ModelState st =
        verify::mc::runSchedule(cfg, programs, schedule);
    while (!st.terminal()) {
        unsigned e = st.enabledEpochs().front();
        st.step(e);
        schedule.push_back(e);
    }
    BisimOutcome out =
        verify::mc::replaySchedule(cfg, programs, schedule);
    EXPECT_TRUE(out.ok) << out.detail;
    EXPECT_EQ(out.modelSteps, schedule.size());
}

TEST(ModelcheckBisim, NonInteractingProgramsReplay)
{
    // No cross-epoch conflicts: still a useful bisim (spawn/commit
    // bookkeeping with zero violations).
    ModelConfig cfg = boundsConfig(2, 2);
    std::vector<Program> programs = {
        {{OpKind::Load, 0}, {OpKind::Store, 0}},
        {{OpKind::Load, 1}, {OpKind::Store, 1}},
    };
    Rng rng(42);
    auto schedule = verify::mc::randomSchedule(cfg, programs, rng);
    BisimOutcome out =
        verify::mc::replaySchedule(cfg, programs, schedule);
    EXPECT_TRUE(out.ok) << out.detail;
}

} // namespace
} // namespace tlsim
