/**
 * @file
 * Mutation regression corpus for the protocol model checker: each
 * seeded protocol bug (model.h Mutation) must be caught by bounded
 * exhaustive exploration at a small bound, and each is paired with a
 * positive control — the same bound on the unmutated protocol is
 * violation-free — so a checker that fires on everything (or nothing)
 * fails too.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"
#include "verify/modelcheck/programs.h"

namespace tlsim {
namespace {

using verify::mc::CheckOptions;
using verify::mc::ExploreConfig;
using verify::mc::ExploreResult;
using verify::mc::ModelConfig;
using verify::mc::ModelViolation;
using verify::mc::Mutation;
using verify::mc::Program;

ModelConfig
boundsConfig(unsigned epochs, unsigned len_hint)
{
    ModelConfig cfg;
    cfg.epochs = epochs;
    cfg.k = 2;
    cfg.lines = 2;
    cfg.spacing = 1;
    (void)len_hint;
    return cfg;
}

/**
 * Sweep every canonical interacting tuple at the bound until a
 * violation shows up. Returns the first violation's family, or ""
 * if the whole bound is clean.
 */
std::string
firstViolation(const ModelConfig &cfg, unsigned len,
               const CheckOptions &check)
{
    ExploreConfig xcfg;
    xcfg.dpor = true;
    xcfg.check = check;
    for (const auto &programs : verify::mc::programFamilies(
             cfg.epochs, len, cfg.lines, /*interacting_only=*/true)) {
        ExploreResult res = verify::mc::explore(cfg, programs, xcfg);
        if (!res.ok())
            return res.violations[0].family;
    }
    return "";
}

TEST(ModelcheckMutations, WrongStartTableCaught)
{
    // A start-table entry recording too late a sub means a secondary
    // violation restarts too little; the spawn-time spec check sees
    // the wrong entry immediately.
    ModelConfig cfg = boundsConfig(2, 2);
    cfg.mutation = Mutation::WrongStartTable;
    std::string family = firstViolation(cfg, /*len=*/2, {});
    EXPECT_FALSE(family.empty());
    EXPECT_EQ(family.substr(0, 2), "I4") << family;
}

TEST(ModelcheckMutations, WrongStartTableMaskedBySelfCorrection)
{
    // A deliberately documented non-catch: with the structural checks
    // off, a too-late start-table sub does NOT break serializability
    // in this model. A secondary victim that restarts too late keeps
    // a stale forwarded value — but the primary's re-execution always
    // re-stores the same line (programs are straight-line), which
    // re-violates the surviving exposed read through the ordinary
    // line-granular violation path and restarts the victim correctly
    // (own-sub lowering). The abstract model therefore self-corrects;
    // the mutation's semantic danger on the real machine comes from
    // re-executions that take a *different* path and never re-store —
    // which is exactly why the I4.start-table structural check (and
    // the machine auditor's equivalent) exists and must stay on.
    ModelConfig cfg = boundsConfig(3, 3);
    cfg.mutation = Mutation::WrongStartTable;
    using verify::mc::Op;
    using verify::mc::OpKind;
    std::vector<Program> programs = {
        {{OpKind::Store, 0}},
        {{OpKind::Tick, 0}, {OpKind::Load, 0}, {OpKind::Store, 1}},
        {{OpKind::Load, 1}, {OpKind::Tick, 0}},
    };
    ExploreConfig xcfg;
    xcfg.dpor = true;
    xcfg.check.invariants = false;
    ExploreResult res = verify::mc::explore(cfg, programs, xcfg);
    EXPECT_TRUE(res.ok()) << res.violations[0].toString();

    // The structural check catches it on the very same tuple.
    xcfg.check.invariants = true;
    ExploreResult structural = verify::mc::explore(cfg, programs, xcfg);
    ASSERT_FALSE(structural.ok());
    EXPECT_EQ(structural.violations[0].family.substr(0, 2), "I4")
        << structural.violations[0].toString();
}

TEST(ModelcheckMutations, MissedSecondaryCaught)
{
    // Needs three epochs: the secondary victim is an epoch younger
    // than the violated one.
    ModelConfig cfg = boundsConfig(3, 1);
    cfg.mutation = Mutation::MissedSecondary;
    std::string family = firstViolation(cfg, /*len=*/1, {});
    EXPECT_EQ(family, "I4.secondary-missing");
}

TEST(ModelcheckMutations, MissedSecondaryCaughtBySemanticsAlone)
{
    ModelConfig cfg = boundsConfig(3, 1);
    cfg.mutation = Mutation::MissedSecondary;
    CheckOptions check;
    check.invariants = false;
    std::string family = firstViolation(cfg, /*len=*/1, check);
    EXPECT_EQ(family.substr(0, 15), "serializability") << family;
}

TEST(ModelcheckMutations, PrematureRecycleCaught)
{
    // Recycling the still-live context sub-1 on a rewind to sub s
    // drops exposed-load bits for work that is not re-run: a later
    // store misses the violation and a stale value survives.
    ModelConfig cfg = boundsConfig(2, 2);
    cfg.mutation = Mutation::PrematureRecycle;
    std::string family = firstViolation(cfg, /*len=*/2, {});
    EXPECT_FALSE(family.empty());
}

TEST(ModelcheckMutations, PrematureRecycleCaughtBySemanticsAlone)
{
    ModelConfig cfg = boundsConfig(2, 2);
    cfg.mutation = Mutation::PrematureRecycle;
    CheckOptions check;
    check.invariants = false;
    std::string family = firstViolation(cfg, /*len=*/2, check);
    EXPECT_EQ(family.substr(0, 15), "serializability") << family;
}

TEST(ModelcheckMutations, PositiveControls)
{
    // The same bounds on the unmutated protocol are clean — both with
    // the full checker and with semantics alone.
    for (unsigned epochs : {2u, 3u}) {
        unsigned len = epochs == 2 ? 2 : 1;
        ModelConfig cfg = boundsConfig(epochs, len);
        EXPECT_EQ(firstViolation(cfg, len, {}), "") << epochs;
        CheckOptions semantics_only;
        semantics_only.invariants = false;
        EXPECT_EQ(firstViolation(cfg, len, semantics_only), "")
            << epochs;
    }
}

} // namespace
} // namespace tlsim
