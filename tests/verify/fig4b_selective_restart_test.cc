/**
 * @file
 * Directed tests for Figure 4(b) selective sub-thread restart: a
 * secondary violation rewinds the receiving thread to the sub-thread
 * its start table recorded for the violated context — not to sub 0,
 * which is the Figure 4(a) whole-thread behaviour the start table
 * exists to avoid.
 *
 * The scenario is pinned on both implementations of the protocol:
 * the abstract model (verify/modelcheck) via an explicit schedule,
 * and the real TlsMachine via the ScheduleOracle seam with the same
 * interleaving. In both, epoch 2 spawns sub-thread 1 *before* epoch 1
 * does, so epoch 2's start-table entry for epoch 1's sub 1 records
 * sub 1 — the point secondary restart must rewind to.
 *
 * Interleaving (epoch = cpu):
 *   e2: Tick, Spawn(sub 1)         — e2 now runs in sub 1
 *   e1: Tick, Spawn(sub 1)         — e2 records start[e1.sub1] = 1
 *   e1: Load line0                 — exposed in e1's sub 1
 *   e0: Store line0                — primary violation of e1 @ sub 1,
 *                                    secondary violation of e2
 *   e2: Rewind                     — to sub 1 (4b) or sub 0 (4a)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/audithooks.h"
#include "core/machine.h"
#include "core/schedulehooks.h"
#include "core/site.h"
#include "core/tracer.h"
#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/model.h"

namespace tlsim {
namespace {

using verify::mc::ModelConfig;
using verify::mc::ModelState;
using verify::mc::Op;
using verify::mc::OpKind;
using verify::mc::Program;
using verify::mc::StepKind;
using verify::mc::StepRecord;

ModelConfig
scenarioConfig(bool use_start_table)
{
    ModelConfig cfg;
    cfg.epochs = 3;
    cfg.k = 2;
    cfg.lines = 2;
    cfg.spacing = 1;
    cfg.useStartTable = use_start_table;
    return cfg;
}

std::vector<Program>
scenarioPrograms()
{
    Op tick{OpKind::Tick, 0};
    Op load0{OpKind::Load, 0};
    Op load1{OpKind::Load, 1};
    Op store0{OpKind::Store, 0};
    return {{store0}, {tick, load0}, {tick, load1}};
}

/** Steps of the directed interleaving, by epoch id. */
const std::vector<unsigned> kPrefix = {2, 2, 1, 1, 1, 0, 2};

// ---------------------------------------------------------------------
// Model path
// ---------------------------------------------------------------------

TEST(Fig4bSelectiveRestartModel, SecondaryRewindsToStartTableSub)
{
    std::vector<StepRecord> steps;
    ModelState st = verify::mc::runSchedule(
        scenarioConfig(/*use_start_table=*/true), scenarioPrograms(),
        kPrefix, &steps);

    // The store was the violating step; the final step applied epoch
    // 2's secondary squash.
    ASSERT_EQ(steps.size(), kPrefix.size());
    EXPECT_TRUE(steps[5].violating);
    EXPECT_EQ(steps[6].kind, StepKind::Rewind);
    EXPECT_EQ(st.primaryViolations(), 1u);
    EXPECT_EQ(st.secondaryViolations(), 1u);

    // Figure 4(b): epoch 2 resumed in sub-thread 1, the sub its start
    // table recorded when epoch 1 spawned — its sub-0 work survives.
    EXPECT_EQ(st.curSub(2), 1u);
}

TEST(Fig4bSelectiveRestartModel, WholeThreadModeRewindsToSubZero)
{
    ModelState st = verify::mc::runSchedule(
        scenarioConfig(/*use_start_table=*/false), scenarioPrograms(),
        kPrefix);

    EXPECT_EQ(st.primaryViolations(), 1u);
    EXPECT_EQ(st.secondaryViolations(), 1u);
    // Figure 4(a): without the start table the secondary violation
    // restarts the whole thread.
    EXPECT_EQ(st.curSub(2), 0u);
}

TEST(Fig4bSelectiveRestartModel, PrimaryRewindsToExposedLoadSub)
{
    // The violated thread itself always rewinds only to the sub-thread
    // containing the exposed load, in both modes (Section 3).
    for (bool use_start_table : {true, false}) {
        // Extend the prefix by epoch 1's rewind.
        std::vector<unsigned> schedule = kPrefix;
        schedule.push_back(1);
        std::vector<StepRecord> steps;
        ModelState st = verify::mc::runSchedule(
            scenarioConfig(use_start_table), scenarioPrograms(),
            schedule, &steps);
        EXPECT_EQ(steps.back().kind, StepKind::Rewind);
        EXPECT_EQ(st.curSub(1), 1u) << "start table "
                                    << use_start_table;
    }
}

// ---------------------------------------------------------------------
// Machine path
// ---------------------------------------------------------------------

/** Records squash (cpu, sub) pairs; everything else ignored. */
class SquashLog : public AuditSink
{
  public:
    void onRunStart(const AuditView &) override {}
    void onEpochStart(const AuditView &, CpuId, std::uint64_t) override
    {
    }
    void onSpawn(const AuditView &, CpuId, unsigned) override {}
    void onAccess(const AuditView &, CpuId, Addr) override {}
    void onCommit(const AuditView &, CpuId, std::uint64_t) override {}
    void
    onSquash(const AuditView &, CpuId cpu, unsigned sub) override
    {
        squashes_.push_back({cpu, sub});
    }
    std::uint64_t checks() const override { return 0; }

    const std::vector<std::pair<CpuId, unsigned>> &
    squashes() const
    {
        return squashes_;
    }

  private:
    std::vector<std::pair<CpuId, unsigned>> squashes_;
};

/** Plays a fixed cpu-id sequence, then falls back to the machine's
 *  own policy to drain the run. */
class PrefixOracle : public ScheduleOracle
{
  public:
    explicit PrefixOracle(std::vector<unsigned> cpus)
        : cpus_(std::move(cpus))
    {
    }

    std::size_t
    pick(const std::vector<ScheduleChoice> &choices) override
    {
        if (next_ >= cpus_.size())
            return kDefaultPick;
        for (std::size_t i = 0; i < choices.size(); ++i)
            if (choices[i].cpu == cpus_[next_]) {
                ++next_;
                return i;
            }
        ADD_FAILURE() << "cpu " << cpus_[next_]
                      << " not runnable at prefix step " << next_;
        return kDefaultPick;
    }

    bool done() const { return next_ == cpus_.size(); }

  private:
    std::vector<unsigned> cpus_;
    std::size_t next_ = 0;
};

/** The model scenario lowered to a captured trace: one loop iteration
 *  per epoch, 4-byte accesses at distinct lines. */
WorkloadTrace
scenarioTrace(std::vector<std::uint64_t> &buf)
{
    Tracer::Options topts;
    topts.parallelMode = true;
    topts.spawnOverheadInsts = 0;
    Tracer tracer(topts);
    Pc pc = SiteRegistry::instance().intern("verify.fig4b.test");
    tracer.txnBegin();
    tracer.loopBegin();
    // e0: Store line0
    tracer.iterBegin();
    tracer.store(pc, &buf[0], 4);
    // e1: Tick, Load line0
    tracer.iterBegin();
    tracer.compute(pc, 100);
    tracer.load(pc, &buf[0], 4);
    // e2: Tick, Load line1
    tracer.iterBegin();
    tracer.compute(pc, 100);
    tracer.load(pc, &buf[8], 4);
    tracer.loopEnd();
    tracer.txnEnd();
    return tracer.takeWorkload();
}

void
runMachineScenario(bool use_start_table, SquashLog &log)
{
    std::vector<std::uint64_t> buf(16, 0);
    WorkloadTrace workload = scenarioTrace(buf);

    MachineConfig cfg;
    cfg.tls.numCpus = 3;
    cfg.tls.subthreadsPerThread = 2;
    cfg.tls.subthreadSpacing = 1;
    cfg.tls.adaptiveSpacing = false;
    cfg.tls.useStartTable = use_start_table;
    cfg.tls.useConflictOracle = false;
    cfg.tls.useDependencePredictor = false;
    cfg.tls.auditLevel = AuditLevel::Full;

    TlsMachine machine(cfg);
    machine.setAuditSink(&log);
    PrefixOracle oracle(kPrefix);
    machine.setScheduleOracle(&oracle);
    RunResult res = machine.run(workload, ExecMode::Tls);
    EXPECT_TRUE(oracle.done());
    EXPECT_EQ(res.primaryViolations, 1u);
    EXPECT_EQ(res.secondaryViolations, 1u);
}

TEST(Fig4bSelectiveRestartMachine, SecondaryRewindsToStartTableSub)
{
    SquashLog log;
    runMachineScenario(/*use_start_table=*/true, log);

    // Two squashes total: the primary on cpu 1 (to its exposed-load
    // sub 1) and the secondary on cpu 2 — to sub 1, the start-table
    // entry recorded when epoch 1 spawned.
    ASSERT_EQ(log.squashes().size(), 2u);
    EXPECT_EQ(log.squashes()[0], (std::pair<CpuId, unsigned>{2, 1}));
    EXPECT_EQ(log.squashes()[1], (std::pair<CpuId, unsigned>{1, 1}));
}

TEST(Fig4bSelectiveRestartMachine, WholeThreadModeRewindsToSubZero)
{
    SquashLog log;
    runMachineScenario(/*use_start_table=*/false, log);

    ASSERT_EQ(log.squashes().size(), 2u);
    // Figure 4(a): the secondary on cpu 2 loses all sub-thread work.
    EXPECT_EQ(log.squashes()[0], (std::pair<CpuId, unsigned>{2, 0}));
    // The primary still rewinds only to the exposed load's sub.
    EXPECT_EQ(log.squashes()[1], (std::pair<CpuId, unsigned>{1, 1}));
}

} // namespace
} // namespace tlsim
