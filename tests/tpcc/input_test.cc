#include <gtest/gtest.h>

#include <set>

#include "tpcc/input.h"

namespace tlsim {
namespace tpcc {
namespace {

TEST(NuRand, StaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        auto v = nuRand(rng, 8191, kColIId, 1, 100000);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 100000u);
    }
}

TEST(NuRand, IsNonUniform)
{
    // NURand concentrates mass; the most popular decile should get
    // noticeably more than 10% of draws.
    Rng rng(5);
    std::vector<unsigned> decile(10, 0);
    for (int i = 0; i < 20000; ++i) {
        auto v = nuRand(rng, 1023, kCId, 1, 3000);
        ++decile[(v - 1) * 10 / 3000];
    }
    unsigned max_d = *std::max_element(decile.begin(), decile.end());
    EXPECT_GT(max_d, 20000u / 10 * 13 / 10);
}

TEST(LastName, MatchesSyllableTable)
{
    EXPECT_EQ(lastName(0), "BARBARBAR");
    EXPECT_EQ(lastName(1), "BARBAROUGHT");
    EXPECT_EQ(lastName(371), "PRICALLYOUGHT");
    EXPECT_EQ(lastName(999), "EINGEINGEING");
}

TEST(InputGen, DeterministicForSameSeed)
{
    TpccConfig cfg;
    InputGen a(cfg, 99), b(cfg, 99);
    for (int i = 0; i < 20; ++i) {
        NewOrderInput x = a.newOrder(false);
        NewOrderInput y = b.newOrder(false);
        ASSERT_EQ(x.d_id, y.d_id);
        ASSERT_EQ(x.c_id, y.c_id);
        ASSERT_EQ(x.lines.size(), y.lines.size());
        for (std::size_t j = 0; j < x.lines.size(); ++j)
            ASSERT_EQ(x.lines[j].i_id, y.lines[j].i_id);
    }
}

TEST(InputGen, NewOrderLineCounts)
{
    TpccConfig cfg;
    InputGen g(cfg, 1);
    for (int i = 0; i < 200; ++i) {
        auto in = g.newOrder(false);
        EXPECT_GE(in.lines.size(), 5u);
        EXPECT_LE(in.lines.size(), 15u);
        EXPECT_GE(in.d_id, 1u);
        EXPECT_LE(in.d_id, cfg.districts);
        for (const auto &l : in.lines) {
            EXPECT_GE(l.quantity, 1u);
            EXPECT_LE(l.quantity, 10u);
            EXPECT_LE(l.i_id, cfg.items);
        }
    }
}

TEST(InputGen, NewOrder150HasLargeOrders)
{
    TpccConfig cfg;
    InputGen g(cfg, 1);
    for (int i = 0; i < 50; ++i) {
        auto in = g.newOrder(true);
        EXPECT_GE(in.lines.size(), 50u);
        EXPECT_LE(in.lines.size(), 150u);
    }
}

TEST(InputGen, RollbackRateRoughlyOnePercent)
{
    TpccConfig cfg;
    InputGen g(cfg, 123);
    int rollbacks = 0;
    for (int i = 0; i < 5000; ++i)
        rollbacks += g.newOrder(false).rollback;
    EXPECT_GT(rollbacks, 10);
    EXPECT_LT(rollbacks, 120);
}

TEST(InputGen, PaymentByNameShare)
{
    TpccConfig cfg;
    InputGen g(cfg, 77);
    int by_name = 0;
    for (int i = 0; i < 2000; ++i)
        by_name += g.payment().byName;
    EXPECT_NEAR(by_name / 2000.0, 0.60, 0.05);
}

TEST(InputGen, StockLevelThresholdRange)
{
    TpccConfig cfg;
    InputGen g(cfg, 3);
    for (int i = 0; i < 100; ++i) {
        auto in = g.stockLevel(4);
        EXPECT_EQ(in.d_id, 4u);
        EXPECT_GE(in.threshold, 10u);
        EXPECT_LE(in.threshold, 20u);
    }
}

TEST(InputGen, SmallScaleLastNamesAreFindable)
{
    TpccConfig cfg = TpccConfig::tiny();
    Rng rng(1);
    std::set<std::string> names;
    for (unsigned c = 1; c <= std::min(cfg.customersPerDistrict, 1000u);
         ++c)
        names.insert(lastName(c - 1));
    for (int i = 0; i < 500; ++i)
        EXPECT_TRUE(names.count(
            randomLastName(rng, cfg.customersPerDistrict)));
}

} // namespace
} // namespace tpcc
} // namespace tlsim
