#include <gtest/gtest.h>

#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {
namespace {

struct TxnFixture : public ::testing::Test
{
    TxnFixture()
        : cfg(TpccConfig::tiny()), tdb(cfg, db::DbConfig{}, tracer),
          gen(cfg, 42)
    {
        tdb.load(7);
    }

    TpccConfig cfg;
    Tracer tracer;
    TpccDb tdb;
    InputGen gen;
};

TEST_F(TxnFixture, NewOrderAdvancesDistrictAndInsertsRows)
{
    std::uint64_t orders_before = tdb.orderCount();
    std::uint64_t new_orders_before = tdb.newOrderCount();

    // Draw inputs until we get a non-rollback transaction.
    NewOrderInput in = gen.newOrder(false);
    while (in.rollback)
        in = gen.newOrder(false);
    std::uint32_t next_before = tdb.districtNextOrderId(in.d_id);

    InputGen replay(cfg, 42);
    // Re-create the same stream state: easier to call the public
    // dispatch with a fresh generator whose next draw equals `in`.
    (void)replay;
    // Run directly through the dispatcher using a generator primed to
    // produce `in` is impractical; instead run one transaction and
    // check global effects.
    Tracer tr2;
    TpccDb fresh(cfg, db::DbConfig{}, tr2);
    fresh.load(7);
    InputGen g2(cfg, 1234);
    std::uint64_t before = fresh.orderCount();
    fresh.runTransaction(TxnType::NewOrder, g2);
    // Either committed (one more order) or rolled back (unchanged).
    std::uint64_t after = fresh.orderCount();
    EXPECT_TRUE(after == before + 1 ||
                (after == before && fresh.rollbacks() == 1));
    fresh.checkConsistency();

    (void)orders_before;
    (void)new_orders_before;
    (void)next_before;
}

TEST_F(TxnFixture, NewOrderCommitEffects)
{
    // Find a seed whose first NEW ORDER does not roll back.
    std::uint64_t seed = 1;
    for (;; ++seed) {
        InputGen probe(cfg, seed);
        if (!probe.newOrder(false).rollback)
            break;
    }
    InputGen g(cfg, seed);
    InputGen peek(cfg, seed);
    NewOrderInput in = peek.newOrder(false);

    std::uint32_t next_before = tdb.districtNextOrderId(in.d_id);
    tdb.runTransaction(TxnType::NewOrder, g);
    EXPECT_EQ(tdb.districtNextOrderId(in.d_id), next_before + 1);

    // The order and its lines exist.
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.order).get(
        TpccDb::kOrder(in.d_id, next_before), &buf));
    auto o = fromBytes<OrderRow>(buf);
    EXPECT_EQ(o.ol_cnt, in.lines.size());
    for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol)
        EXPECT_TRUE(db.table(t.orderLine)
                        .get(TpccDb::kOrderLine(in.d_id, next_before,
                                                ol),
                             &buf));
    tdb.checkConsistency();
}

TEST_F(TxnFixture, NewOrderRollbackLeavesNoTrace)
{
    // Find a seed whose first NEW ORDER rolls back.
    std::uint64_t seed = 1;
    for (;; ++seed) {
        InputGen probe(cfg, seed);
        if (probe.newOrder(false).rollback)
            break;
    }
    InputGen peek(cfg, seed);
    NewOrderInput in = peek.newOrder(false);

    std::uint64_t orders = tdb.orderCount();
    std::uint64_t new_orders = tdb.newOrderCount();
    std::uint32_t next = tdb.districtNextOrderId(in.d_id);

    InputGen g(cfg, seed);
    tdb.runTransaction(TxnType::NewOrder, g);

    EXPECT_EQ(tdb.rollbacks(), 1u);
    EXPECT_EQ(tdb.orderCount(), orders);
    EXPECT_EQ(tdb.newOrderCount(), new_orders);
    EXPECT_EQ(tdb.districtNextOrderId(in.d_id), next);
    tdb.checkConsistency();
}

TEST_F(TxnFixture, PaymentUpdatesBalances)
{
    InputGen peek(cfg, 42);
    PaymentInput in = peek.payment();

    tdb.runTransaction(TxnType::Payment, gen);

    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.warehouse).get(TpccDb::kWarehouse(), &buf));
    auto w = fromBytes<WarehouseRow>(buf);
    EXPECT_NEAR(w.ytd, 300000.0 + in.amount, 1e-6);

    ASSERT_TRUE(
        db.table(t.district).get(TpccDb::kDistrict(in.d_id), &buf));
    auto d = fromBytes<DistrictRow>(buf);
    EXPECT_NEAR(d.ytd, 30000.0 + in.amount, 1e-6);

    // One history row appended.
    EXPECT_EQ(db.table(t.history).size(),
              cfg.districts * cfg.customersPerDistrict + 1);
}

TEST_F(TxnFixture, DeliveryConsumesNewOrdersAndCreditsCustomers)
{
    std::uint64_t pending = tdb.newOrderCount();
    ASSERT_GE(pending, cfg.districts);
    tdb.runTransaction(TxnType::Delivery, gen);
    EXPECT_EQ(tdb.newOrderCount(), pending - cfg.districts);
    tdb.checkConsistency();

    // Delivered orders got a carrier.
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.order).get(
        TpccDb::kOrder(1, cfg.firstNewOrder), &buf));
    auto o = fromBytes<OrderRow>(buf);
    EXPECT_GE(o.carrier_id, 1u);

    // The customer of that order was credited with the line sum.
    double sum = 0;
    for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol) {
        ASSERT_TRUE(db.table(t.orderLine)
                        .get(TpccDb::kOrderLine(1, cfg.firstNewOrder,
                                                ol),
                             &buf));
        auto lr = fromBytes<OrderLineRow>(buf);
        sum += lr.amount;
        EXPECT_NE(lr.delivery_d, 0u); // stamped as delivered
    }
    EXPECT_NEAR(tdb.customerBalance(1, o.c_id), -10.0 + sum, 1e-6);
}

TEST_F(TxnFixture, DeliveryOuterVariantHasSameEffects)
{
    Tracer tr2;
    TpccDb a(cfg, db::DbConfig{}, tr2);
    a.load(7);
    Tracer tr3;
    TpccDb b(cfg, db::DbConfig{}, tr3);
    b.load(7);

    InputGen ga(cfg, 42), gb(cfg, 42);
    a.runTransaction(TxnType::Delivery, ga);
    b.runTransaction(TxnType::DeliveryOuter, gb);

    EXPECT_EQ(a.newOrderCount(), b.newOrderCount());
    for (std::uint32_t d = 1; d <= cfg.districts; ++d)
        EXPECT_EQ(a.districtNextOrderId(d), b.districtNextOrderId(d));
    // Spot-check a credited customer matches across variants.
    db::Bytes buf;
    ASSERT_TRUE(a.database().table(a.tables().order).get(
        TpccDb::kOrder(1, cfg.firstNewOrder), &buf));
    auto o = fromBytes<OrderRow>(buf);
    EXPECT_DOUBLE_EQ(a.customerBalance(1, o.c_id),
                     b.customerBalance(1, o.c_id));
}

TEST_F(TxnFixture, StockLevelCountsLowStockItems)
{
    tdb.runTransaction(TxnType::StockLevel, gen, 1);
    std::uint32_t count = tdb.lastStockLevelResult();
    // Initial stock is 10..100 and thresholds are 10..20: typically a
    // small but possibly zero count. Just bound it sanely.
    EXPECT_LE(count, 200u * 15u);
    tdb.checkConsistency(); // read-only transaction
}

TEST_F(TxnFixture, OrderStatusIsReadOnly)
{
    std::uint64_t orders = tdb.orderCount();
    std::uint64_t new_orders = tdb.newOrderCount();
    tdb.runTransaction(TxnType::OrderStatus, gen);
    EXPECT_EQ(tdb.orderCount(), orders);
    EXPECT_EQ(tdb.newOrderCount(), new_orders);
    tdb.checkConsistency();
}

TEST_F(TxnFixture, MixedStreamKeepsConsistency)
{
    for (int i = 0; i < 12; ++i) {
        for (TxnType t : allBenchmarks())
            tdb.runTransaction(t, gen, (i % cfg.districts) + 1);
    }
    tdb.checkConsistency();
    auto &db = tdb.database();
    for (std::size_t t = 0; t < db.tableCount(); ++t)
        db.table(static_cast<db::TableId>(t)).checkInvariants();
}

} // namespace
} // namespace tpcc
} // namespace tlsim
