/**
 * @file
 * Value-level semantics of the TPC-C transaction implementations:
 * the spec's arithmetic rules (stock decrement wrap, amount formula,
 * payment credit handling) and edge-case behaviour (delivery of an
 * empty district, repeated deliveries draining the queue).
 */

#include <gtest/gtest.h>

#include <set>

#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {
namespace {

struct SemanticsFixture : public ::testing::Test
{
    SemanticsFixture()
        : cfg(TpccConfig::tiny()), tdb(cfg, db::DbConfig{}, tracer)
    {
        tdb.load(7);
    }

    StockRow
    stock(std::uint32_t i)
    {
        db::Bytes buf;
        if (!tdb.database().table(tdb.tables().stock).get(
                TpccDb::kStock(i), &buf))
            panic("stock %u missing", i);
        return fromBytes<StockRow>(buf);
    }

    /** Run NEW ORDER with a generator seeded to avoid rollback. */
    NewOrderInput
    runNonRollbackNewOrder(std::uint64_t base_seed)
    {
        for (std::uint64_t seed = base_seed;; ++seed) {
            InputGen probe(cfg, seed);
            NewOrderInput in = probe.newOrder(false);
            if (in.rollback)
                continue;
            InputGen gen(cfg, seed);
            tdb.runTransaction(TxnType::NewOrder, gen);
            return in;
        }
    }

    TpccConfig cfg;
    Tracer tracer;
    TpccDb tdb;
};

TEST_F(SemanticsFixture, StockDecrementFollowsTheSpecRule)
{
    NewOrderInput in = runNonRollbackNewOrder(500);

    // Recompute the expected quantities from the pre-load state: the
    // same seed reproduces the initial stock via a parallel database.
    Tracer tr2;
    TpccDb fresh(cfg, db::DbConfig{}, tr2);
    fresh.load(7);

    for (const auto &line : in.lines) {
        db::Bytes buf;
        ASSERT_TRUE(fresh.database().table(fresh.tables().stock).get(
            TpccDb::kStock(line.i_id), &buf));
        auto before = fromBytes<StockRow>(buf);
        // Apply the clause 2.4.2.2 rule (accumulate duplicates).
        // (Walk every line with this item in order.)
        std::int32_t q = before.quantity;
        for (const auto &l2 : in.lines) {
            if (l2.i_id != line.i_id)
                continue;
            if (q >= static_cast<std::int32_t>(l2.quantity) + 10)
                q -= static_cast<std::int32_t>(l2.quantity);
            else
                q += 91 - static_cast<std::int32_t>(l2.quantity);
        }
        EXPECT_EQ(stock(line.i_id).quantity, q) << "item " << line.i_id;
        EXPECT_GE(stock(line.i_id).quantity, 10);
    }
}

TEST_F(SemanticsFixture, OrderLineAmountUsesTaxesAndDiscount)
{
    NewOrderInput in = runNonRollbackNewOrder(500);

    db::Bytes buf;
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    ASSERT_TRUE(db.table(t.warehouse).get(TpccDb::kWarehouse(), &buf));
    auto w = fromBytes<WarehouseRow>(buf);
    ASSERT_TRUE(
        db.table(t.district).get(TpccDb::kDistrict(in.d_id), &buf));
    auto d = fromBytes<DistrictRow>(buf);
    ASSERT_TRUE(db.table(t.customer).get(
        TpccDb::kCustomer(in.d_id, in.c_id), &buf));
    auto c = fromBytes<CustomerRow>(buf);

    std::uint32_t o_id = tdb.districtNextOrderId(in.d_id) - 1;
    for (std::size_t ol = 0; ol < in.lines.size(); ++ol) {
        ASSERT_TRUE(db.table(t.orderLine).get(
            TpccDb::kOrderLine(in.d_id, o_id,
                               static_cast<std::uint32_t>(ol + 1)),
            &buf));
        auto lr = fromBytes<OrderLineRow>(buf);
        ASSERT_TRUE(
            db.table(t.item).get(TpccDb::kItem(lr.i_id), &buf));
        auto item = fromBytes<ItemRow>(buf);
        double expected = in.lines[ol].quantity * item.price *
                          (1.0 + w.tax + d.tax) * (1.0 - c.discount);
        EXPECT_NEAR(lr.amount, expected, 1e-9);
        EXPECT_EQ(lr.quantity, in.lines[ol].quantity);
        EXPECT_EQ(lr.delivery_d, 0u);
    }
}

TEST_F(SemanticsFixture, PaymentBadCreditCustomersGetDataUpdate)
{
    // Find a bad-credit customer and pay them by id.
    std::uint32_t bad_c = 0;
    db::Bytes buf;
    for (std::uint32_t c = 1;
         c <= cfg.customersPerDistrict && !bad_c; ++c) {
        tdb.database().table(tdb.tables().customer)
            .get(TpccDb::kCustomer(1, c), &buf);
        if (fromBytes<CustomerRow>(buf).credit[0] == 'B')
            bad_c = c;
    }
    ASSERT_NE(bad_c, 0u) << "tiny scale should have ~10% BC customers";

    // Drive the transaction body directly through the dispatcher by
    // searching for an input that hits this customer by id.
    for (std::uint64_t seed = 900; seed < 900 + 500000; ++seed) {
        InputGen probe(cfg, seed);
        PaymentInput in = probe.payment();
        if (in.byName || in.d_id != 1 || in.c_id != bad_c)
            continue;
        double balance_before = tdb.customerBalance(1, bad_c);
        InputGen gen(cfg, seed);
        tdb.runTransaction(TxnType::Payment, gen);
        EXPECT_NEAR(tdb.customerBalance(1, bad_c),
                    balance_before - in.amount, 1e-6);
        tdb.database().table(tdb.tables().customer)
            .get(TpccDb::kCustomer(1, bad_c), &buf);
        auto c = fromBytes<CustomerRow>(buf);
        // The C_DATA prefix was rewritten with the payment info.
        EXPECT_NE(std::string(c.data, 40).find('|'),
                  std::string::npos);
        break;
    }
}

TEST_F(SemanticsFixture, RepeatedDeliveriesDrainTheNewOrderQueue)
{
    InputGen gen(cfg, 42);
    std::uint64_t pending = tdb.newOrderCount();
    unsigned rounds = 0;
    while (tdb.newOrderCount() > 0 && rounds < 200) {
        tdb.runTransaction(TxnType::Delivery, gen);
        ++rounds;
    }
    EXPECT_EQ(tdb.newOrderCount(), 0u);
    EXPECT_EQ(rounds,
              (pending + cfg.districts - 1) / cfg.districts);

    // Delivering with nothing pending is a no-op (clause 2.7.4.2).
    tdb.runTransaction(TxnType::Delivery, gen);
    EXPECT_EQ(tdb.newOrderCount(), 0u);
    tdb.checkConsistency();
}

TEST_F(SemanticsFixture, NewOrderRefillsWhatDeliveryDrains)
{
    InputGen gen(cfg, 42);
    while (tdb.newOrderCount() > 0)
        tdb.runTransaction(TxnType::Delivery, gen);
    unsigned added = 0;
    for (int i = 0; i < 30; ++i) {
        std::uint64_t before = tdb.newOrderCount();
        tdb.runTransaction(TxnType::NewOrder, gen);
        added += tdb.newOrderCount() > before;
    }
    EXPECT_GE(added, 25u); // all but the ~1% rollbacks
    tdb.runTransaction(TxnType::Delivery, gen);
    tdb.checkConsistency();
}

TEST_F(SemanticsFixture, StockLevelMatchesBruteForceCount)
{
    InputGen gen(cfg, 42);
    std::uint32_t d_id = 2;
    InputGen peek(cfg, 42);
    StockLevelInput in = peek.stockLevel(d_id);

    // Brute-force reference over the same 20 orders.
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    std::uint32_t next = tdb.districtNextOrderId(d_id);
    std::uint32_t lo = next > 20 ? next - 20 : 1;
    std::set<std::uint32_t> low;
    for (std::uint32_t o = lo; o < next; ++o) {
        if (!db.table(t.order).get(TpccDb::kOrder(d_id, o), &buf))
            continue;
        auto orow = fromBytes<OrderRow>(buf);
        for (std::uint32_t ol = 1; ol <= orow.ol_cnt; ++ol) {
            ASSERT_TRUE(db.table(t.orderLine).get(
                TpccDb::kOrderLine(d_id, o, ol), &buf));
            auto lr = fromBytes<OrderLineRow>(buf);
            ASSERT_TRUE(
                db.table(t.stock).get(TpccDb::kStock(lr.i_id), &buf));
            if (fromBytes<StockRow>(buf).quantity <
                static_cast<std::int32_t>(in.threshold))
                low.insert(lr.i_id);
        }
    }

    tdb.runTransaction(TxnType::StockLevel, gen, d_id);
    EXPECT_EQ(tdb.lastStockLevelResult(), low.size());
}

TEST_F(SemanticsFixture, OrderStatusFindsTheLatestOrder)
{
    // Create a fresh order for a known customer, then ORDER STATUS by
    // id must see it as the latest.
    NewOrderInput in = runNonRollbackNewOrder(500);
    std::uint32_t latest = tdb.districtNextOrderId(in.d_id) - 1;

    // Verify via the descending index directly.
    auto cur = tdb.database().cursor(tdb.tables().orderCust);
    db::Bytes lo = TpccDb::kOrderCust(in.d_id, in.c_id,
                                      ~std::uint32_t{0});
    ASSERT_TRUE(cur.seek(lo));
    std::uint32_t found;
    std::memcpy(&found, cur.value().data(), 4);
    EXPECT_EQ(found, latest);
}

} // namespace
} // namespace tpcc
} // namespace tlsim
