#include <gtest/gtest.h>

#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {
namespace {

CaptureOptions
tinyOpts(bool tls)
{
    CaptureOptions o;
    o.scale = TpccConfig::tiny();
    o.txns = 4;
    o.tlsBuild = tls;
    o.parallelMode = tls;
    return o;
}

TEST(Capture, SequentialCaptureHasNoParallelSections)
{
    WorkloadTrace w =
        captureBenchmark(TxnType::NewOrder, tinyOpts(false));
    ASSERT_EQ(w.txns.size(), 4u);
    for (const auto &txn : w.txns) {
        EXPECT_EQ(txn.epochCount(), 0u);
        EXPECT_EQ(txn.coverage(), 0.0);
        EXPECT_GT(txn.totalInsts(), 1000u);
    }
}

TEST(Capture, TlsCaptureSplitsTheOrderLineLoop)
{
    WorkloadTrace w =
        captureBenchmark(TxnType::NewOrder, tinyOpts(true));
    ASSERT_EQ(w.txns.size(), 4u);
    unsigned with_loop = 0;
    for (const auto &txn : w.txns) {
        if (txn.epochCount() == 0)
            continue; // a rollback transaction may abort early
        ++with_loop;
        EXPECT_GE(txn.epochsPerLoop(), 4.0); // 5-15 lines
        EXPECT_LE(txn.epochsPerLoop(), 15.0);
        EXPECT_GT(txn.coverage(), 0.4);
        EXPECT_GT(txn.meanEpochInsts(), 5000u);
    }
    EXPECT_GE(with_loop, 3u);
}

TEST(Capture, NewOrder150HasTenTimesTheEpochs)
{
    WorkloadTrace small =
        captureBenchmark(TxnType::NewOrder, tinyOpts(true));
    WorkloadTrace large =
        captureBenchmark(TxnType::NewOrder150, tinyOpts(true));
    double small_epochs = 0, large_epochs = 0;
    for (const auto &t : small.txns)
        small_epochs += t.epochCount();
    for (const auto &t : large.txns)
        large_epochs += t.epochCount();
    EXPECT_GT(large_epochs, small_epochs * 5);
}

TEST(Capture, DeliveryVariantsDifferInThreadSize)
{
    WorkloadTrace inner =
        captureBenchmark(TxnType::Delivery, tinyOpts(true));
    WorkloadTrace outer =
        captureBenchmark(TxnType::DeliveryOuter, tinyOpts(true));

    double inner_size = 0, outer_size = 0;
    unsigned n_inner = 0, n_outer = 0;
    for (const auto &t : inner.txns) {
        if (t.epochCount()) {
            inner_size += t.meanEpochInsts();
            ++n_inner;
        }
    }
    for (const auto &t : outer.txns) {
        if (t.epochCount()) {
            outer_size += t.meanEpochInsts();
            ++n_outer;
        }
    }
    ASSERT_GT(n_inner, 0u);
    ASSERT_GT(n_outer, 0u);
    // The outer decomposition's threads are roughly an order of
    // magnitude larger (a whole district vs one order line).
    EXPECT_GT(outer_size / n_outer, 5 * inner_size / n_inner);

    // And its coverage is much higher (paper: 63% vs 99%).
    EXPECT_GT(outer.txns[0].coverage(), 0.9);
}

TEST(Capture, PaymentCoverageIsTiny)
{
    WorkloadTrace w =
        captureBenchmark(TxnType::Payment, tinyOpts(true));
    double cov = 0;
    for (const auto &t : w.txns)
        cov = std::max(cov, t.coverage());
    EXPECT_LT(cov, 0.30);
}

TEST(Capture, StockLevelEpochsAreSmallAndMany)
{
    WorkloadTrace w =
        captureBenchmark(TxnType::StockLevel, tinyOpts(true));
    for (const auto &t : w.txns) {
        // One epoch per order line of the last 20 orders.
        ASSERT_GT(t.epochCount(), 20u);
        EXPECT_LE(t.epochsPerLoop(), 20.0 * 15.0);
        // The paper's smallest threads (~7.5k dynamic instructions).
        EXPECT_LT(t.meanEpochInsts(), 40000);
    }
}

TEST(Capture, IdenticalSeedsGiveIdenticalWorkloads)
{
    WorkloadTrace a =
        captureBenchmark(TxnType::NewOrder, tinyOpts(true));
    WorkloadTrace b =
        captureBenchmark(TxnType::NewOrder, tinyOpts(true));
    ASSERT_EQ(a.txns.size(), b.txns.size());
    for (std::size_t i = 0; i < a.txns.size(); ++i) {
        EXPECT_EQ(a.txns[i].totalInsts(), b.txns[i].totalInsts());
        EXPECT_EQ(a.txns[i].epochCount(), b.txns[i].epochCount());
    }
}

TEST(Capture, EscapedWorkOnlyInTlsBuild)
{
    WorkloadTrace seq =
        captureBenchmark(TxnType::NewOrder, tinyOpts(false));
    bool seq_has_latches = false;
    for (const auto &txn : seq.txns)
        for (const auto &sec : txn.sections)
            for (const auto &e : sec.epochs)
                for (const auto &r : e.records)
                    seq_has_latches |=
                        r.op == TraceOp::LatchAcquire;
    // The original build uses spin latches (plain loads/stores), so no
    // escaped latch records appear.
    EXPECT_FALSE(seq_has_latches);

    WorkloadTrace tls =
        captureBenchmark(TxnType::NewOrder, tinyOpts(true));
    bool tls_has_latches = false;
    for (const auto &txn : tls.txns)
        for (const auto &sec : txn.sections)
            for (const auto &e : sec.epochs)
                for (const auto &r : e.records)
                    tls_has_latches |=
                        r.op == TraceOp::LatchAcquire;
    EXPECT_TRUE(tls_has_latches);
}

} // namespace
} // namespace tpcc
} // namespace tlsim
