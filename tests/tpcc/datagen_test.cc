#include <gtest/gtest.h>

#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {
namespace {

struct DatagenFixture : public ::testing::Test
{
    DatagenFixture()
        : cfg(TpccConfig::tiny()), tdb(cfg, db::DbConfig{}, tracer)
    {
        tdb.load(7);
    }

    TpccConfig cfg;
    Tracer tracer;
    TpccDb tdb;
};

TEST_F(DatagenFixture, TableCardinalities)
{
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    EXPECT_EQ(db.table(t.item).size(), cfg.items);
    EXPECT_EQ(db.table(t.stock).size(), cfg.items);
    EXPECT_EQ(db.table(t.warehouse).size(), 1u);
    EXPECT_EQ(db.table(t.district).size(), cfg.districts);
    EXPECT_EQ(db.table(t.customer).size(),
              cfg.districts * cfg.customersPerDistrict);
    EXPECT_EQ(db.table(t.customerName).size(),
              cfg.districts * cfg.customersPerDistrict);
    EXPECT_EQ(db.table(t.order).size(),
              cfg.districts * cfg.ordersPerDistrict);
    EXPECT_EQ(db.table(t.newOrder).size(),
              cfg.districts *
                  (cfg.ordersPerDistrict - cfg.firstNewOrder + 1));
}

TEST_F(DatagenFixture, DistrictNextOrderIds)
{
    for (std::uint32_t d = 1; d <= cfg.districts; ++d)
        EXPECT_EQ(tdb.districtNextOrderId(d),
                  cfg.ordersPerDistrict + 1);
}

TEST_F(DatagenFixture, ConsistencyConditionsHold)
{
    EXPECT_NO_FATAL_FAILURE(tdb.checkConsistency());
}

TEST_F(DatagenFixture, RowsDeserializeSensibly)
{
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.item).get(TpccDb::kItem(1), &buf));
    auto item = fromBytes<ItemRow>(buf);
    EXPECT_EQ(item.i_id, 1u);
    EXPECT_GE(item.price, 1.0);
    EXPECT_LE(item.price, 100.0);

    ASSERT_TRUE(db.table(t.stock).get(TpccDb::kStock(1), &buf));
    auto st = fromBytes<StockRow>(buf);
    EXPECT_GE(st.quantity, 10);
    EXPECT_LE(st.quantity, 100);

    ASSERT_TRUE(
        db.table(t.customer).get(TpccDb::kCustomer(1, 1), &buf));
    auto c = fromBytes<CustomerRow>(buf);
    EXPECT_EQ(c.c_id, 1u);
    EXPECT_DOUBLE_EQ(c.balance, -10.0);
    EXPECT_EQ(std::string(c.last, 9), "BARBARBAR");
}

TEST_F(DatagenFixture, UndeliveredOrdersHaveNoCarrier)
{
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.order).get(
        TpccDb::kOrder(1, cfg.ordersPerDistrict), &buf));
    auto o = fromBytes<OrderRow>(buf);
    EXPECT_EQ(o.carrier_id, 0u);
    ASSERT_TRUE(db.table(t.order).get(TpccDb::kOrder(1, 1), &buf));
    auto first = fromBytes<OrderRow>(buf);
    EXPECT_GE(first.carrier_id, 1u);
}

TEST_F(DatagenFixture, OrderLinesMatchOrderCounts)
{
    auto &db = tdb.database();
    const auto &t = tdb.tables();
    db::Bytes buf;
    ASSERT_TRUE(db.table(t.order).get(TpccDb::kOrder(2, 5), &buf));
    auto o = fromBytes<OrderRow>(buf);
    for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol)
        EXPECT_TRUE(db.table(t.orderLine)
                        .get(TpccDb::kOrderLine(2, 5, ol), &buf));
    EXPECT_FALSE(db.table(t.orderLine)
                     .get(TpccDb::kOrderLine(2, 5, o.ol_cnt + 1),
                          &buf));
}

TEST_F(DatagenFixture, LoadIsDeterministic)
{
    Tracer tr2;
    TpccDb other(cfg, db::DbConfig{}, tr2);
    other.load(7);
    EXPECT_EQ(other.orderCount(), tdb.orderCount());
    EXPECT_EQ(other.newOrderCount(), tdb.newOrderCount());
    EXPECT_DOUBLE_EQ(other.customerBalance(1, 5),
                     tdb.customerBalance(1, 5));
}

TEST_F(DatagenFixture, BTreeInvariantsAfterLoad)
{
    auto &db = tdb.database();
    for (std::size_t t = 0; t < db.tableCount(); ++t)
        EXPECT_NO_FATAL_FAILURE(
            db.table(static_cast<db::TableId>(t)).checkInvariants());
}

} // namespace
} // namespace tpcc
} // namespace tlsim
