/**
 * @file
 * Parameterized B-tree sweeps: the reference-map property test across
 * value-size regimes (small keys to near-page-limit blobs), insertion
 * orders, and churn ratios. Catches split/compaction bugs that only
 * appear at particular fill shapes.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/rng.h"
#include "db/btree.h"

namespace tlsim {
namespace db {
namespace {

struct Shape
{
    unsigned minVal;
    unsigned maxVal;
    unsigned keySpace;
    int eraseWeight; ///< of 10
    const char *name;
};

class BTreeShapes : public ::testing::TestWithParam<Shape>
{
};

TEST_P(BTreeShapes, MatchesReferenceMapUnderChurn)
{
    const Shape p = GetParam();
    DbConfig cfg;
    Tracer tracer;
    BufferPool pool(cfg, tracer);
    BTree tree(pool, tracer, cfg, p.name);

    std::map<std::string, std::string> ref;
    Rng rng(0xB0B0 + p.keySpace + p.maxVal);

    for (int step = 0; step < 6000; ++step) {
        std::string key = strfmt(
            "key%05lld",
            (long long)rng.uniform(0, static_cast<std::int64_t>(
                                          p.keySpace - 1)));
        if (rng.uniform(0, 9) < p.eraseWeight) {
            EXPECT_EQ(tree.erase(key), ref.erase(key) > 0);
        } else {
            std::string val(
                static_cast<std::size_t>(
                    rng.uniform(p.minVal, p.maxVal)),
                static_cast<char>('a' + rng.uniform(0, 25)));
            tree.put(key, val);
            ref[key] = val;
        }
        if (step % 1500 == 1499)
            tree.checkInvariants();
    }

    ASSERT_EQ(tree.size(), ref.size());
    tree.checkInvariants();
    auto cur = tree.cursor();
    auto it = ref.begin();
    if (cur.seek("")) {
        do {
            ASSERT_NE(it, ref.end());
            EXPECT_EQ(cur.key(), it->first);
            EXPECT_EQ(cur.value(), it->second);
            ++it;
        } while (cur.next());
    }
    EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeShapes,
    ::testing::Values(
        Shape{1, 16, 4000, 2, "tiny-values"},
        Shape{64, 256, 1500, 3, "row-sized"},
        Shape{600, 900, 400, 3, "fat-rows"},
        Shape{1500, 1800, 120, 4, "near-limit-blobs"},
        Shape{1, 1800, 800, 5, "mixed-high-churn"},
        Shape{32, 64, 40, 5, "hot-keys"}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(BTreeOrdering, SequentialAscendingAndDescendingLoadsAgree)
{
    DbConfig cfg;
    Tracer tracer;
    BufferPool pool_a(cfg, tracer), pool_b(cfg, tracer);
    BTree asc(pool_a, tracer, cfg, "asc");
    BTree desc(pool_b, tracer, cfg, "desc");
    std::string val(120, 'v');
    for (int i = 0; i < 3000; ++i)
        asc.put(strfmt("k%05d", i), val, false);
    for (int i = 3000; i-- > 0;)
        desc.put(strfmt("k%05d", i), val, false);
    EXPECT_EQ(asc.size(), desc.size());
    asc.checkInvariants();
    desc.checkInvariants();

    auto ca = asc.cursor();
    auto cb = desc.cursor();
    bool oa = ca.seek(""), ob = cb.seek("");
    while (oa && ob) {
        ASSERT_EQ(ca.key(), cb.key());
        oa = ca.next();
        ob = cb.next();
    }
    EXPECT_EQ(oa, ob);
}

TEST(BTreeOrdering, InterleavedKeysRouteCorrectlyAfterManySplits)
{
    DbConfig cfg;
    Tracer tracer;
    BufferPool pool(cfg, tracer);
    BTree tree(pool, tracer, cfg, "interleave");
    // Insert even keys, then odd keys between them.
    std::string val(200, 'x');
    for (int i = 0; i < 4000; i += 2)
        tree.put(strfmt("k%05d", i), val, false);
    for (int i = 1; i < 4000; i += 2)
        tree.put(strfmt("k%05d", i), val, false);
    EXPECT_EQ(tree.size(), 4000u);
    EXPECT_GE(tree.height(), 3u);
    tree.checkInvariants();
    Bytes v;
    for (int i = 0; i < 4000; i += 777)
        EXPECT_TRUE(tree.get(strfmt("k%05d", i), &v));
}

} // namespace
} // namespace db
} // namespace tlsim
