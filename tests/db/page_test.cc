#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "db/page.h"

namespace tlsim {
namespace db {
namespace {

struct Frame
{
    alignas(64) std::uint8_t bytes[kPageSize];
};

TEST(Page, InitProducesEmptyLeaf)
{
    Frame f;
    Page::init(f.bytes, 7, 0);
    Page p(f.bytes);
    EXPECT_EQ(p.hdr().id, 7u);
    EXPECT_TRUE(p.leaf());
    EXPECT_EQ(p.slotCount(), 0u);
    EXPECT_GT(p.freeSpace(), kPageSize - 64u);
}

TEST(Page, InsertAndReadBack)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    p.insert(0, "bbb", "value-b");
    p.insert(0, "aaa", "value-a");
    p.insert(2, "ccc", "value-c");
    ASSERT_EQ(p.slotCount(), 3u);
    EXPECT_EQ(p.key(0), "aaa");
    EXPECT_EQ(p.value(0), "value-a");
    EXPECT_EQ(p.key(1), "bbb");
    EXPECT_EQ(p.key(2), "ccc");
}

TEST(Page, LowerBound)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    p.insert(0, "b", "1");
    p.insert(1, "d", "2");
    p.insert(2, "f", "3");

    EXPECT_EQ(p.lowerBound("a"), (std::pair<unsigned, bool>{0, false}));
    EXPECT_EQ(p.lowerBound("b"), (std::pair<unsigned, bool>{0, true}));
    EXPECT_EQ(p.lowerBound("c"), (std::pair<unsigned, bool>{1, false}));
    EXPECT_EQ(p.lowerBound("f"), (std::pair<unsigned, bool>{2, true}));
    EXPECT_EQ(p.lowerBound("g"), (std::pair<unsigned, bool>{3, false}));
}

TEST(Page, RemoveKeepsOrderAndFreesSpace)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    p.insert(0, "a", "1");
    p.insert(1, "b", "2");
    p.insert(2, "c", "3");
    unsigned before = p.freeSpace();
    p.remove(1);
    ASSERT_EQ(p.slotCount(), 2u);
    EXPECT_EQ(p.key(0), "a");
    EXPECT_EQ(p.key(1), "c");
    EXPECT_GT(p.freeSpace(), before);
}

TEST(Page, UpdateValueSameSizeInPlace)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    p.insert(0, "k", "aaaa");
    EXPECT_TRUE(p.updateValue(0, "bbbb"));
    EXPECT_EQ(p.value(0), "bbbb");
    EXPECT_EQ(p.slotCount(), 1u);
}

TEST(Page, UpdateValueGrowsViaReinsert)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    p.insert(0, "k", "short");
    EXPECT_TRUE(p.updateValue(0, std::string(200, 'x')));
    EXPECT_EQ(p.value(0).size(), 200u);
    EXPECT_EQ(p.key(0), "k");
}

TEST(Page, UpdateValueFailsWhenFullAndKeepsRecord)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    // Fill the page almost completely.
    std::string big(900, 'y');
    unsigned i = 0;
    while (p.fits(3, 900))
        p.insert(p.slotCount(), strfmt("k%02u", i++), big);
    ASSERT_GT(p.slotCount(), 2u);
    EXPECT_FALSE(p.updateValue(0, std::string(3000, 'z')));
    EXPECT_EQ(p.value(0), big); // untouched on failure
}

TEST(Page, CompactionReclaimsFragmentedSpace)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    std::string v(400, 'v');
    for (unsigned i = 0; i < 8; ++i)
        p.insert(i, strfmt("key%u", i), v);
    // Remove every other record: space is fragmented.
    p.remove(6);
    p.remove(4);
    p.remove(2);
    p.remove(0);
    ASSERT_TRUE(p.fits(8, 1500));
    p.insert(0, "aaa-fresh", std::string(1500, 'w'));
    EXPECT_EQ(p.key(0), "aaa-fresh");
    EXPECT_EQ(p.value(0).size(), 1500u);
    // Survivors intact after compaction.
    EXPECT_EQ(p.key(1), "key1");
    EXPECT_EQ(p.value(1), v);
}

TEST(Page, RandomizedAgainstReferenceMap)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    std::map<std::string, std::string> ref;
    Rng rng(99);

    for (int step = 0; step < 2000; ++step) {
        std::string key = strfmt("k%03lld", (long long)rng.uniform(0, 200));
        int action = static_cast<int>(rng.uniform(0, 2));
        auto [idx, found] = p.lowerBound(key);
        if (action == 0) { // insert/update
            std::string val(static_cast<std::size_t>(
                                rng.uniform(1, 40)),
                            'x');
            if (found) {
                if (p.updateValue(idx, val))
                    ref[key] = val;
            } else if (p.fits(static_cast<unsigned>(key.size()),
                              static_cast<unsigned>(val.size()))) {
                p.insert(idx, key, val);
                ref[key] = val;
            }
        } else if (found) { // remove
            p.remove(idx);
            ref.erase(key);
        }
    }

    ASSERT_EQ(p.slotCount(), ref.size());
    unsigned i = 0;
    for (const auto &[k, v] : ref) {
        EXPECT_EQ(p.key(i), k);
        EXPECT_EQ(p.value(i), v);
        ++i;
    }
}

TEST(PageDeathTest, InsertWithoutRoomPanics)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    std::string big(1900, 'x');
    p.insert(0, "a", big);
    p.insert(1, "b", big);
    EXPECT_DEATH(p.insert(2, "c", big), "without room");
}

TEST(PageDeathTest, RemoveOutOfRangePanics)
{
    Frame f;
    Page::init(f.bytes, 1, 0);
    Page p(f.bytes);
    EXPECT_DEATH(p.remove(0), "remove slot");
}

} // namespace
} // namespace db
} // namespace tlsim
