#include <gtest/gtest.h>

#include "base/rng.h"
#include "db/keys.h"

namespace tlsim {
namespace db {
namespace {

TEST(KeyBuilder, IntegerFieldsAreBigEndian)
{
    Bytes k = KeyBuilder().u32(0x01020304).bytes();
    ASSERT_EQ(k.size(), 4u);
    EXPECT_EQ(static_cast<unsigned char>(k[0]), 0x01);
    EXPECT_EQ(static_cast<unsigned char>(k[3]), 0x04);
}

TEST(KeyBuilder, U32OrderMatchesNumericOrder)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        auto a = static_cast<std::uint32_t>(rng.uniform(0, 1 << 30));
        auto b = static_cast<std::uint32_t>(rng.uniform(0, 1 << 30));
        Bytes ka = KeyBuilder().u32(a).bytes();
        Bytes kb = KeyBuilder().u32(b).bytes();
        EXPECT_EQ(a < b, ka < kb);
        EXPECT_EQ(a == b, ka == kb);
    }
}

TEST(KeyBuilder, U64OrderMatchesNumericOrder)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t a = rng.next() >> 1;
        std::uint64_t b = rng.next() >> 1;
        EXPECT_EQ(a < b, KeyBuilder().u64(a).bytes() <
                             KeyBuilder().u64(b).bytes());
    }
}

TEST(KeyBuilder, DescendingFieldReversesOrder)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto a = static_cast<std::uint32_t>(rng.uniform(0, 1 << 30));
        auto b = static_cast<std::uint32_t>(rng.uniform(0, 1 << 30));
        Bytes ka = KeyBuilder().u32Desc(a).bytes();
        Bytes kb = KeyBuilder().u32Desc(b).bytes();
        EXPECT_EQ(a > b, ka < kb); // larger values sort first
    }
}

TEST(KeyBuilder, CompositeOrderIsLexicographicByField)
{
    // (d, o) keys: district dominates, then order id.
    Bytes a = KeyBuilder().u32(1).u32(999).bytes();
    Bytes b = KeyBuilder().u32(2).u32(1).bytes();
    Bytes c = KeyBuilder().u32(2).u32(2).bytes();
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}

TEST(KeyBuilder, StringFieldsArePaddedToFixedWidth)
{
    Bytes a = KeyBuilder().str("BAR", 16).bytes();
    Bytes b = KeyBuilder().str("BARBAR", 16).bytes();
    ASSERT_EQ(a.size(), 16u);
    ASSERT_EQ(b.size(), 16u);
    EXPECT_LT(a, b); // "BAR\0..." < "BARBAR\0..."
    // Truncation at the width.
    Bytes t = KeyBuilder().str("ABCDEFGHIJKLMNOPQRST", 4).bytes();
    EXPECT_EQ(t, "ABCD");
}

TEST(KeyBuilder, PrefixSeeksWork)
{
    // A (d, last, c) name-index key with c=0 is <= every real key of
    // the same (d, last) prefix — the seek pattern the workload uses.
    Bytes lo = KeyBuilder().u32(3).str("OUGHT", 16).u32(0).bytes();
    Bytes real = KeyBuilder().u32(3).str("OUGHT", 16).u32(17).bytes();
    Bytes other = KeyBuilder().u32(3).str("PRES", 16).u32(1).bytes();
    EXPECT_LE(lo, real);
    EXPECT_EQ(real.substr(0, 20), lo.substr(0, 20));
    EXPECT_NE(other.substr(0, 20), lo.substr(0, 20));
}

TEST(DbTypes, LatchIdNamespacesDoNotCollide)
{
    EXPECT_NE(pageLatch(1), namedLatch(kLatchLog));
    EXPECT_NE(namedLatch(kLatchBufPool), namedLatch(kLatchLog));
    // Page ids are 32-bit: the named space sits above all of them.
    EXPECT_LT(pageLatch(~std::uint32_t{0}), namedLatch(0));
}

} // namespace
} // namespace db
} // namespace tlsim
