#include <gtest/gtest.h>

#include "db/bufferpool.h"

namespace tlsim {
namespace db {
namespace {

TEST(BufferPool, AllocFormatsPages)
{
    DbConfig cfg;
    Tracer tr;
    BufferPool pool(cfg, tr);
    PageId a = pool.allocPage(0);
    PageId b = pool.allocPage(1);
    EXPECT_NE(a, kInvalidPage);
    EXPECT_NE(a, b);
    Page pa = pool.fetch(a);
    Page pb = pool.fetch(b);
    EXPECT_EQ(pa.hdr().id, a);
    EXPECT_TRUE(pa.leaf());
    EXPECT_EQ(pb.hdr().level, 1);
    EXPECT_EQ(pool.pagesAllocated(), 2u);
}

TEST(BufferPool, FrameAddressesAreStable)
{
    DbConfig cfg;
    Tracer tr;
    BufferPool pool(cfg, tr);
    PageId a = pool.allocPage(0);
    void *addr = pool.frameAddr(a);
    // Allocating thousands more pages (spanning chunks) must not move
    // existing frames — traces carry raw frame addresses.
    for (int i = 0; i < 3000; ++i)
        pool.allocPage(0);
    EXPECT_EQ(pool.frameAddr(a), addr);
}

TEST(BufferPool, FramesAreDistinctAndPageSized)
{
    DbConfig cfg;
    Tracer tr;
    BufferPool pool(cfg, tr);
    PageId a = pool.allocPage(0);
    PageId b = pool.allocPage(0);
    auto *pa = static_cast<std::uint8_t *>(pool.frameAddr(a));
    auto *pb = static_cast<std::uint8_t *>(pool.frameAddr(b));
    EXPECT_GE(std::abs(pb - pa),
              static_cast<std::ptrdiff_t>(kPageSize));
}

TEST(BufferPoolDeathTest, BadPageIdPanics)
{
    DbConfig cfg;
    Tracer tr;
    BufferPool pool(cfg, tr);
    EXPECT_DEATH(pool.frameAddr(kInvalidPage), "bad page id");
    EXPECT_DEATH(pool.frameAddr(55), "bad page id");
}

TEST(BufferPoolDeathTest, ExhaustionIsFatal)
{
    DbConfig cfg;
    cfg.maxPages = 4;
    Tracer tr;
    BufferPool pool(cfg, tr);
    for (int i = 0; i < 4; ++i)
        pool.allocPage(0);
    EXPECT_EXIT(pool.allocPage(0), ::testing::ExitedWithCode(1),
                "exhausted");
}

TEST(BufferPool, UntunedFetchTracesLruUpdates)
{
    DbConfig cfg;
    cfg.tuned = false;
    Tracer tr;
    BufferPool pool(cfg, tr);
    PageId a = pool.allocPage(0);

    tr.txnBegin();
    pool.fetch(a);
    tr.txnEnd();
    unsigned untuned_stores = 0;
    for (const auto &r : tr.workload()
                             .txns.at(0)
                             .sections.at(0)
                             .epochs.at(0)
                             .records)
        untuned_stores += r.op == TraceOp::Store;
    EXPECT_GE(untuned_stores, 1u); // the shared LRU head store

    DbConfig tuned_cfg;
    Tracer tr2;
    BufferPool pool2(tuned_cfg, tr2);
    PageId b = pool2.allocPage(0);
    tr2.txnBegin();
    pool2.fetch(b);
    tr2.txnEnd();
    unsigned tuned_stores = 0;
    for (const auto &r : tr2.workload()
                             .txns.at(0)
                             .sections.at(0)
                             .epochs.at(0)
                             .records)
        tuned_stores += r.op == TraceOp::Store;
    EXPECT_EQ(tuned_stores, 0u); // tuned build: no LRU store
}

} // namespace
} // namespace db
} // namespace tlsim
