#include <gtest/gtest.h>

#include "db/db.h"

namespace tlsim {
namespace db {
namespace {

struct DbFixture : public ::testing::Test
{
    DbFixture() : database(DbConfig{}, tracer)
    {
        table = database.createTable("t");
    }

    Tracer tracer;
    Database database;
    TableId table;
};

TEST_F(DbFixture, CommitMakesWritesDurable)
{
    Txn txn = database.begin();
    database.put(txn, table, "k1", "v1");
    database.insert(txn, table, "k2", "v2");
    database.commit(txn);
    EXPECT_FALSE(txn.active());

    Txn txn2 = database.begin();
    Bytes v;
    EXPECT_TRUE(database.get(txn2, table, "k1", &v));
    EXPECT_EQ(v, "v1");
    EXPECT_TRUE(database.get(txn2, table, "k2", &v));
    database.commit(txn2);
}

TEST_F(DbFixture, AbortUndoesInserts)
{
    Txn txn = database.begin();
    database.insert(txn, table, "k", "v");
    database.abort(txn);

    Txn txn2 = database.begin();
    Bytes v;
    EXPECT_FALSE(database.get(txn2, table, "k", &v));
    database.commit(txn2);
    EXPECT_EQ(database.table(table).size(), 0u);
}

TEST_F(DbFixture, AbortUndoesUpdates)
{
    Txn setup = database.begin();
    database.put(setup, table, "k", "original");
    database.commit(setup);

    Txn txn = database.begin();
    database.put(txn, table, "k", "modified");
    database.abort(txn);

    Txn check = database.begin();
    Bytes v;
    ASSERT_TRUE(database.get(check, table, "k", &v));
    EXPECT_EQ(v, "original");
    database.commit(check);
}

TEST_F(DbFixture, AbortUndoesDeletes)
{
    Txn setup = database.begin();
    database.put(setup, table, "k", "keep-me");
    database.commit(setup);

    Txn txn = database.begin();
    EXPECT_TRUE(database.erase(txn, table, "k"));
    database.abort(txn);

    Txn check = database.begin();
    Bytes v;
    ASSERT_TRUE(database.get(check, table, "k", &v));
    EXPECT_EQ(v, "keep-me");
    database.commit(check);
}

TEST_F(DbFixture, AbortUndoesMixedOperationsInReverse)
{
    Txn setup = database.begin();
    database.put(setup, table, "a", "a0");
    database.put(setup, table, "b", "b0");
    database.commit(setup);

    Txn txn = database.begin();
    database.put(txn, table, "a", "a1");
    database.erase(txn, table, "b");
    database.insert(txn, table, "c", "c1");
    database.put(txn, table, "a", "a2"); // second update of a
    database.abort(txn);

    Txn check = database.begin();
    Bytes v;
    ASSERT_TRUE(database.get(check, table, "a", &v));
    EXPECT_EQ(v, "a0");
    ASSERT_TRUE(database.get(check, table, "b", &v));
    EXPECT_EQ(v, "b0");
    EXPECT_FALSE(database.get(check, table, "c", &v));
    database.commit(check);
}

TEST_F(DbFixture, InsertRefusesDuplicates)
{
    Txn txn = database.begin();
    EXPECT_TRUE(database.insert(txn, table, "k", "v1"));
    EXPECT_FALSE(database.insert(txn, table, "k", "v2"));
    database.commit(txn);
    Txn check = database.begin();
    Bytes v;
    database.get(check, table, "k", &v);
    EXPECT_EQ(v, "v1");
    database.commit(check);
}

TEST_F(DbFixture, EraseMissingKeyReturnsFalse)
{
    Txn txn = database.begin();
    EXPECT_FALSE(database.erase(txn, table, "missing"));
    database.commit(txn);
}

TEST_F(DbFixture, LocksReleasedAtCommit)
{
    Txn txn = database.begin();
    database.put(txn, table, "k", "v");
    database.commit(txn);
    EXPECT_GT(database.lockManager().locksTaken(), 0u);
}

TEST_F(DbFixture, LogAdvancesUnderUntunedConfig)
{
    DbConfig cfg;
    cfg.tuned = false;
    Tracer tr;
    Database d2(cfg, tr);
    TableId t2 = d2.createTable("t2");
    tr.txnBegin(); // log records are only traced while capturing...
    Lsn before = d2.logManager().nextLsn();
    Txn txn = d2.begin();
    d2.put(txn, t2, "k", "v");
    d2.commit(txn);
    tr.txnEnd();
    EXPECT_GT(d2.logManager().nextLsn(), before);
}

TEST_F(DbFixture, EpochHooksRotateLogBuffers)
{
    // Smoke test: the tuned epoch hooks must be callable in any order
    // the transactions use.
    database.beginEpochWork();
    Txn txn = database.begin();
    database.put(txn, table, "k", "v");
    database.endEpochWork();
    database.commit(txn);
    Bytes v;
    Txn check = database.begin();
    EXPECT_TRUE(database.get(check, table, "k", &v));
    database.commit(check);
}

TEST_F(DbFixture, MultipleTables)
{
    TableId t2 = database.createTable("u");
    Txn txn = database.begin();
    database.put(txn, table, "k", "in-t");
    database.put(txn, t2, "k", "in-u");
    database.commit(txn);
    Bytes v;
    Txn check = database.begin();
    database.get(check, table, "k", &v);
    EXPECT_EQ(v, "in-t");
    database.get(check, t2, "k", &v);
    EXPECT_EQ(v, "in-u");
    database.commit(check);
}

TEST_F(DbFixture, DoubleCommitPanics)
{
    Txn txn = database.begin();
    database.commit(txn);
    EXPECT_DEATH(database.commit(txn), "inactive");
}

} // namespace
} // namespace db
} // namespace tlsim
