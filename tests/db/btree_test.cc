#include <gtest/gtest.h>

#include <map>
#include <string>

#include "base/rng.h"
#include "db/btree.h"

namespace tlsim {
namespace db {
namespace {

struct BTreeFixture : public ::testing::Test
{
    BTreeFixture()
        : tracer(), pool(cfg, tracer),
          tree(pool, tracer, cfg, "test")
    {
    }

    DbConfig cfg;
    Tracer tracer;
    BufferPool pool;
    BTree tree;
};

TEST_F(BTreeFixture, EmptyTreeFindsNothing)
{
    Bytes v;
    EXPECT_FALSE(tree.get("missing", &v));
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.height(), 1u);
}

TEST_F(BTreeFixture, PutGetRoundTrip)
{
    EXPECT_TRUE(tree.put("alpha", "1"));
    EXPECT_TRUE(tree.put("beta", "2"));
    Bytes v;
    ASSERT_TRUE(tree.get("alpha", &v));
    EXPECT_EQ(v, "1");
    ASSERT_TRUE(tree.get("beta", &v));
    EXPECT_EQ(v, "2");
    EXPECT_EQ(tree.size(), 2u);
}

TEST_F(BTreeFixture, PutNoUpdateRefusesDuplicates)
{
    EXPECT_TRUE(tree.put("k", "v1", false));
    EXPECT_FALSE(tree.put("k", "v2", false));
    Bytes v;
    tree.get("k", &v);
    EXPECT_EQ(v, "v1");
    EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BTreeFixture, UpdateReplacesValue)
{
    tree.put("k", "old");
    tree.put("k", "new-and-longer-value");
    Bytes v;
    ASSERT_TRUE(tree.get("k", &v));
    EXPECT_EQ(v, "new-and-longer-value");
    EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BTreeFixture, EraseRemoves)
{
    tree.put("a", "1");
    tree.put("b", "2");
    EXPECT_TRUE(tree.erase("a"));
    EXPECT_FALSE(tree.erase("a"));
    Bytes v;
    EXPECT_FALSE(tree.get("a", &v));
    EXPECT_TRUE(tree.get("b", &v));
    EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BTreeFixture, SplitsGrowTheTree)
{
    std::string val(100, 'v');
    for (int i = 0; i < 2000; ++i)
        tree.put(strfmt("key%06d", i), val, false);
    EXPECT_EQ(tree.size(), 2000u);
    EXPECT_GE(tree.height(), 2u);
    tree.checkInvariants();
    Bytes v;
    for (int i = 0; i < 2000; i += 37)
        ASSERT_TRUE(tree.get(strfmt("key%06d", i), &v)) << i;
}

TEST_F(BTreeFixture, ReverseInsertionOrder)
{
    for (int i = 2000; i-- > 0;)
        tree.put(strfmt("key%06d", i), "x", false);
    tree.checkInvariants();
    EXPECT_EQ(tree.size(), 2000u);
}

TEST_F(BTreeFixture, CursorScansInOrder)
{
    for (int i = 0; i < 500; ++i)
        tree.put(strfmt("k%04d", i), strfmt("v%d", i), false);
    auto cur = tree.cursor();
    ASSERT_TRUE(cur.seek("k0100"));
    int expected = 100;
    do {
        ASSERT_EQ(cur.key(), strfmt("k%04d", expected));
        ++expected;
    } while (cur.next() && expected < 200);
    EXPECT_EQ(expected, 200);
}

TEST_F(BTreeFixture, CursorSeekBetweenKeys)
{
    tree.put("b", "1");
    tree.put("d", "2");
    auto cur = tree.cursor();
    ASSERT_TRUE(cur.seek("c"));
    EXPECT_EQ(cur.key(), "d");
}

TEST_F(BTreeFixture, CursorPastEndInvalid)
{
    tree.put("a", "1");
    auto cur = tree.cursor();
    EXPECT_FALSE(cur.seek("z"));
    EXPECT_FALSE(cur.valid());
}

TEST_F(BTreeFixture, CursorCrossesLeafBoundaries)
{
    std::string val(200, 'v');
    for (int i = 0; i < 300; ++i)
        tree.put(strfmt("k%04d", i), val, false);
    ASSERT_GE(tree.height(), 2u);
    auto cur = tree.cursor();
    ASSERT_TRUE(cur.seek(""));
    int count = 1;
    while (cur.next())
        ++count;
    EXPECT_EQ(count, 300);
}

TEST_F(BTreeFixture, RandomizedAgainstReferenceMap)
{
    std::map<std::string, std::string> ref;
    Rng rng(4242);
    for (int step = 0; step < 20000; ++step) {
        std::string key =
            strfmt("key%04lld", (long long)rng.uniform(0, 3000));
        switch (rng.uniform(0, 3)) {
          case 0:
          case 1: { // put
            std::string val(static_cast<std::size_t>(
                                rng.uniform(1, 300)),
                            static_cast<char>('a' + rng.uniform(0, 25)));
            tree.put(key, val);
            ref[key] = val;
            break;
          }
          case 2: { // erase
            EXPECT_EQ(tree.erase(key), ref.erase(key) > 0);
            break;
          }
          case 3: { // get
            Bytes v;
            bool found = tree.get(key, &v);
            auto it = ref.find(key);
            ASSERT_EQ(found, it != ref.end());
            if (found)
                EXPECT_EQ(v, it->second);
            break;
          }
        }
    }
    EXPECT_EQ(tree.size(), ref.size());
    tree.checkInvariants();

    // Full scan equals the reference map.
    auto cur = tree.cursor();
    auto it = ref.begin();
    if (cur.seek("")) {
        do {
            ASSERT_NE(it, ref.end());
            EXPECT_EQ(cur.key(), it->first);
            EXPECT_EQ(cur.value(), it->second);
            ++it;
        } while (cur.next());
    }
    EXPECT_EQ(it, ref.end());
}

TEST_F(BTreeFixture, LargeValuesNearTheLimit)
{
    std::string big(1800, 'B');
    for (int i = 0; i < 40; ++i)
        tree.put(strfmt("big%03d", i), big, false);
    tree.checkInvariants();
    Bytes v;
    ASSERT_TRUE(tree.get("big020", &v));
    EXPECT_EQ(v.size(), 1800u);
}

TEST_F(BTreeFixture, UpdateGrowingValueAcrossSplit)
{
    // Fill one leaf with medium records, then grow one of them so the
    // update path has to split.
    std::string med(300, 'm');
    for (int i = 0; i < 12; ++i)
        tree.put(strfmt("g%02d", i), med, false);
    tree.put("g05", std::string(1700, 'X'));
    tree.checkInvariants();
    Bytes v;
    ASSERT_TRUE(tree.get("g05", &v));
    EXPECT_EQ(v.size(), 1700u);
    EXPECT_EQ(tree.size(), 12u);
}

TEST_F(BTreeFixture, TracedOperationsWhileCapturing)
{
    // The same operations emit trace records when capturing.
    tracer.txnBegin();
    tree.put("traced", "value");
    Bytes v;
    tree.get("traced", &v);
    tracer.txnEnd();
    const auto &recs = tracer.workload()
                           .txns.at(0)
                           .sections.at(0)
                           .epochs.at(0)
                           .records;
    EXPECT_GT(recs.size(), 10u);
    bool has_load = false, has_store = false;
    for (const auto &r : recs) {
        has_load |= r.op == TraceOp::Load;
        has_store |= r.op == TraceOp::Store;
    }
    EXPECT_TRUE(has_load);
    EXPECT_TRUE(has_store);
}

} // namespace
} // namespace db
} // namespace tlsim
