#include <gtest/gtest.h>

#include <map>

#include "base/rng.h"
#include "db/db.h"

namespace tlsim {
namespace db {
namespace {

struct RecoveryFixture : public ::testing::Test
{
    RecoveryFixture() : database(DbConfig{}, tracer)
    {
        table = database.createTable("t");
    }

    Tracer tracer;
    Database database;
    TableId table;
};

TEST_F(RecoveryFixture, CleanLogHasNoLosers)
{
    Txn txn = database.begin();
    database.put(txn, table, "k", "v");
    database.commit(txn);
    EXPECT_TRUE(database.logicalLog().loserTransactions().empty());
    EXPECT_EQ(database.recover(), 0u);
}

TEST_F(RecoveryFixture, CrashMidTransactionRollsBack)
{
    Txn setup = database.begin();
    database.put(setup, table, "stable", "original");
    database.commit(setup);

    // A transaction that "crashes" before committing: its Txn object
    // (and in-memory undo) are simply abandoned.
    {
        Txn doomed = database.begin();
        database.put(doomed, table, "stable", "dirty");
        database.insert(doomed, table, "ghost", "boo");
        database.erase(doomed, table, "stable");
    }

    ASSERT_EQ(database.logicalLog().loserTransactions().size(), 1u);
    EXPECT_EQ(database.recover(), 1u);

    Bytes v;
    Txn check = database.begin();
    ASSERT_TRUE(database.get(check, table, "stable", &v));
    EXPECT_EQ(v, "original");
    EXPECT_FALSE(database.get(check, table, "ghost", &v));
    database.commit(check);
}

TEST_F(RecoveryFixture, RecoveryIsIdempotent)
{
    Txn doomed = database.begin();
    database.insert(doomed, table, "a", "1");
    EXPECT_EQ(database.recover(), 1u);
    EXPECT_EQ(database.recover(), 0u); // abort marker written
    Bytes v;
    EXPECT_FALSE(database.table(table).get("a", &v));
}

TEST_F(RecoveryFixture, MultipleLosersUndoneNewestFirst)
{
    // Two abandoned transactions touching the same key in sequence.
    {
        Txn t1 = database.begin();
        database.put(t1, table, "k", "t1-value");
        // t1 crashes...
        Txn t2 = database.begin();
        database.put(t2, table, "k", "t2-value");
        // ...and so does t2.
    }
    EXPECT_EQ(database.recover(), 2u);
    Bytes v;
    EXPECT_FALSE(database.table(table).get("k", &v));
}

TEST_F(RecoveryFixture, CommittedWorkSurvivesRecovery)
{
    Txn good = database.begin();
    database.put(good, table, "keep", "me");
    database.commit(good);
    Txn bad = database.begin();
    database.put(bad, table, "keep", "overwritten");
    database.put(bad, table, "drop", "x");
    database.recover();
    Bytes v;
    ASSERT_TRUE(database.table(table).get("keep", &v));
    EXPECT_EQ(v, "me");
    EXPECT_FALSE(database.table(table).get("drop", &v));
}

TEST_F(RecoveryFixture, RedoReproducesCommittedState)
{
    // Random committed workload on db1...
    Rng rng(31337);
    for (int t = 0; t < 40; ++t) {
        Txn txn = database.begin();
        for (int op = 0; op < 10; ++op) {
            Bytes key = strfmt("key%03lld", (long long)rng.uniform(0, 150));
            switch (rng.uniform(0, 2)) {
              case 0:
                database.put(txn, table, key,
                             strfmt("v%d.%d", t, op));
                break;
              case 1:
                database.insert(txn, table, key,
                                strfmt("i%d.%d", t, op));
                break;
              case 2:
                database.erase(txn, table, key);
                break;
            }
        }
        // Every third transaction aborts.
        if (t % 3 == 0)
            database.abort(txn);
        else
            database.commit(txn);
    }

    // ...replayed from the logical log into a fresh database.
    Tracer tr2;
    Database db2(DbConfig{}, tr2);
    TableId t2 = db2.createTable("t");
    ASSERT_EQ(t2, table);
    database.logicalLog().redoCommitted(db2);

    // Full-scan equality.
    auto c1 = database.cursor(table);
    auto c2 = db2.cursor(t2);
    bool ok1 = c1.seek("");
    bool ok2 = c2.seek("");
    while (ok1 && ok2) {
        EXPECT_EQ(c1.key(), c2.key());
        EXPECT_EQ(c1.value(), c2.value());
        ok1 = c1.next();
        ok2 = c2.next();
    }
    EXPECT_EQ(ok1, ok2);
    EXPECT_EQ(database.table(table).size(), db2.table(t2).size());
}

TEST_F(RecoveryFixture, AbortedTransactionsLeaveNoRedoFootprint)
{
    Txn txn = database.begin();
    database.put(txn, table, "k", "aborted-value");
    database.abort(txn);

    Tracer tr2;
    Database db2(DbConfig{}, tr2);
    db2.createTable("t");
    database.logicalLog().redoCommitted(db2);
    Bytes v;
    EXPECT_FALSE(db2.table(table).get("k", &v));
}

TEST_F(RecoveryFixture, LogCanBeDisabledForLongRuns)
{
    database.logicalLog().setEnabled(false);
    Txn txn = database.begin();
    database.put(txn, table, "k", "v");
    database.commit(txn);
    EXPECT_TRUE(database.logicalLog().records().empty());
}

} // namespace
} // namespace db
} // namespace tlsim
