#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

/**
 * Builds synthetic workloads with precisely controlled addresses so
 * the tests can plant (or avoid) cross-epoch dependences.
 */
class TraceBuilder
{
  public:
    TraceBuilder()
        : mem_(16384, 0)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        tracer_ = std::make_unique<Tracer>(o);
        pc_ = SiteRegistry::instance().intern("test.machine.site");
    }

    void *addr(std::size_t word) { return &mem_.at(word); }

    /** One transaction with a single parallel loop of `bodies`. */
    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        tracer_->txnBegin();
        tracer_->compute(pc_, 100); // prologue
        tracer_->loopBegin();
        for (const auto &body : bodies) {
            tracer_->iterBegin();
            body(*tracer_);
        }
        tracer_->loopEnd();
        tracer_->compute(pc_, 100); // epilogue
        tracer_->txnEnd();
        return tracer_->takeWorkload();
    }

    Pc pc() const { return pc_; }

  private:
    std::vector<std::uint64_t> mem_;
    std::unique_ptr<Tracer> tracer_;
    Pc pc_;
};

MachineConfig
testConfig(unsigned subthreads = 8, std::uint64_t spacing = 1000)
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = subthreads;
    cfg.tls.subthreadSpacing = spacing;
    return cfg;
}

/** body: compute work touching a private array region. */
std::function<void(Tracer &)>
privateWork(TraceBuilder &b, std::size_t base, unsigned insts)
{
    return [&b, base, insts](Tracer &t) {
        Pc pc = b.pc();
        for (unsigned k = 0; k < insts / 100; ++k) {
            t.compute(pc, 80);
            t.load(pc, b.addr(base + (k % 64)), 8);
            t.store(pc, b.addr(base + 64 + (k % 64)), 8);
        }
    };
}

TEST(MachineSerial, ReplayProducesConsistentAccounting)
{
    TraceBuilder b;
    auto w = b.loopTxn({privateWork(b, 0, 5000),
                        privateWork(b, 256, 5000)});
    TlsMachine m(testConfig());
    RunResult r = m.run(w, ExecMode::Serial);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
    EXPECT_EQ(r.primaryViolations, 0u);
    EXPECT_EQ(r.txns, 1u);
}

TEST(MachineTls, IndependentEpochsRunInParallel)
{
    TraceBuilder b;
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int i = 0; i < 4; ++i)
        bodies.push_back(privateWork(b, 512 * i, 20000));
    auto w = b.loopTxn(bodies);

    TlsMachine m(testConfig());
    RunResult seq = m.run(w, ExecMode::Serial);
    RunResult tls = m.run(w, ExecMode::Tls);

    EXPECT_EQ(tls.primaryViolations, 0u);
    EXPECT_EQ(tls.epochs, 4u);
    EXPECT_GT(seq.makespan, tls.makespan * 2); // near-4x in practice
    EXPECT_EQ(tls.total.total(), tls.makespan * 4);
}

TEST(MachineTls, RawDependenceTriggersViolation)
{
    TraceBuilder b;
    // Epoch 0 stores word 8000 late; epoch 1 loads it early and then
    // keeps working - a classic read-too-early violation.
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 200);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine m(testConfig());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_GE(r.primaryViolations, 1u);
    EXPECT_GE(r.squashes, 1u);
    EXPECT_GT(r.total[Cat::Failed], 0u);
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineTls, NoSpeculationIgnoresDependences)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 8000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 20000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine m(testConfig());
    RunResult nospec = m.run(w, ExecMode::NoSpeculation);
    RunResult tls = m.run(w, ExecMode::Tls);
    EXPECT_EQ(nospec.primaryViolations, 0u);
    EXPECT_EQ(nospec.total[Cat::Failed], 0u);
    EXPECT_LE(nospec.makespan, tls.makespan);
}

TEST(MachineTls, SubthreadsReduceRewoundWork)
{
    TraceBuilder b;
    // The reader does 30k instructions before the dependent load; 7
    // extra contexts at 4k spacing keep a checkpoint within 4k of it,
    // while all-or-nothing rewinds everything.
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 40000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 30000);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 5000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine all_or_nothing(testConfig(1));
    TlsMachine with_subs(testConfig(8, 4000));
    RunResult r1 = all_or_nothing.run(w, ExecMode::Tls);
    RunResult r8 = with_subs.run(w, ExecMode::Tls);

    ASSERT_GE(r1.squashes, 1u);
    ASSERT_GE(r8.squashes, 1u);
    EXPECT_GT(r1.rewoundInsts, 25000u);
    EXPECT_LT(r8.rewoundInsts, r1.rewoundInsts / 4);
    EXPECT_LT(r8.makespan, r1.makespan);
    EXPECT_GT(r8.subthreadsStarted, 0u);
}

TEST(MachineTls, SubthreadCountCapsSpawns)
{
    TraceBuilder b;
    auto w = b.loopTxn({privateWork(b, 0, 50000)});
    TlsMachine m(testConfig(4, 1000));
    RunResult r = m.run(w, ExecMode::Tls);
    // 50k instructions at 1k spacing would want ~50 checkpoints, but
    // only k-1 = 3 contexts are available.
    EXPECT_LE(r.subthreadsStarted, 3u);
}

TEST(MachineTls, StartTableMakesSecondaryViolationsSelective)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 30000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 3000);
    };
    // Two younger bystander epochs that never touch word 8000.
    std::vector<std::function<void(Tracer &)>> bodies = {
        writer, reader, privateWork(b, 1024, 30000),
        privateWork(b, 2048, 30000)};
    auto w = b.loopTxn(bodies);

    MachineConfig with_table = testConfig(8, 1000);
    MachineConfig without_table = testConfig(8, 1000);
    without_table.tls.useStartTable = false;

    TlsMachine m1(with_table), m2(without_table);
    RunResult sel = m1.run(w, ExecMode::Tls);
    RunResult all = m2.run(w, ExecMode::Tls);

    EXPECT_GE(sel.secondaryViolations, 1u);
    EXPECT_GE(all.secondaryViolations, 1u);
    // Figure 4(b): with the table, bystanders rewind only to the
    // sub-thread running when the violated sub-thread started.
    EXPECT_LT(sel.rewoundInsts, all.rewoundInsts);
    EXPECT_LE(sel.makespan, all.makespan);
}

TEST(MachineTls, LatchesSerializeEscapedRegions)
{
    TraceBuilder b;
    auto critical = [&b](Tracer &t) {
        t.compute(b.pc(), 500);
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 99);
        t.compute(b.pc(), 4000);
        t.latchRelease(b.pc(), 99);
        t.escapeEnd(b.pc());
        t.compute(b.pc(), 500);
    };
    auto w = b.loopTxn({critical, critical, critical});

    TlsMachine m(testConfig());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_GE(r.latchWaits, 1u);
    EXPECT_GT(r.total[Cat::LatchStall], 0u);
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineTls, EscapedWorkIsNotReExecutedAfterRewind)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 20000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 55);
        t.compute(b.pc(), 1000);
        t.latchRelease(b.pc(), 55);
        t.escapeEnd(b.pc());
        t.load(b.pc(), b.addr(8000), 8); // violated
        t.compute(b.pc(), 10000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine m(testConfig(1)); // rewind to epoch start
    RunResult r = m.run(w, ExecMode::Tls);
    ASSERT_GE(r.squashes, 1u);
    EXPECT_GE(r.escapeSkips, 1u);
}

TEST(MachineTls, OverflowIsResolvedNotDeadlocked)
{
    TraceBuilder b;
    // A machine with a tiny L2 and victim cache: speculative state
    // overflows and the machine must still finish.
    MachineConfig cfg = testConfig(2, 2000);
    cfg.mem.l2Bytes = 4 * 4 * 32; // 4 sets x 4 ways
    cfg.mem.victimEntries = 4;

    std::vector<std::function<void(Tracer &)>> bodies;
    for (int e = 0; e < 4; ++e) {
        bodies.push_back([&b, e](Tracer &t) {
            // Store to many conflicting lines (stride = 4 sets x 4
            // words/line... word stride 16 = one line per 4 sets).
            for (int i = 0; i < 64; ++i) {
                t.store(b.pc(), b.addr(1024 * e + i * 16), 8);
                t.compute(b.pc(), 50);
            }
        });
    }
    auto w = b.loopTxn(bodies);

    TlsMachine m(cfg);
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_GT(r.overflowEvents, 0u);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineTls, DeterministicAcrossRuns)
{
    TraceBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 9000);
        t.store(b.pc(), b.addr(8000), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(8000), 8);
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, reader, privateWork(b, 1024, 9000)});

    TlsMachine m(testConfig());
    RunResult a = m.run(w, ExecMode::Tls);
    RunResult b2 = m.run(w, ExecMode::Tls);
    EXPECT_EQ(a.makespan, b2.makespan);
    EXPECT_EQ(a.primaryViolations, b2.primaryViolations);
    EXPECT_EQ(a.squashes, b2.squashes);
    EXPECT_EQ(a.rewoundInsts, b2.rewoundInsts);
}

TEST(MachineTls, ProfilerAttributesViolations)
{
    TraceBuilder b;
    Pc load_pc = SiteRegistry::instance().intern("test.machine.load");
    Pc store_pc = SiteRegistry::instance().intern("test.machine.store");
    auto writer = [&](Tracer &t) {
        t.compute(b.pc(), 9000);
        t.store(store_pc, b.addr(8000), 8);
    };
    auto reader = [&](Tracer &t) {
        t.load(load_pc, b.addr(8000), 8);
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, reader});

    TlsMachine m(testConfig());
    RunResult r = m.run(w, ExecMode::Tls);
    ASSERT_GE(r.squashes, 1u);
    auto rep = m.profiler().report();
    ASSERT_FALSE(rep.empty());
    EXPECT_EQ(rep[0].storePc, store_pc);
    EXPECT_EQ(rep[0].loadPc, load_pc);
    EXPECT_GT(rep[0].failedCycles, 0u);
}

TEST(MachineTls, MoreEpochsThanCpusCommitInOrder)
{
    TraceBuilder b;
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int i = 0; i < 10; ++i)
        bodies.push_back(privateWork(b, 512 * (i % 8), 4000));
    auto w = b.loopTxn(bodies);
    TlsMachine m(testConfig());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.epochs, 10u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineTls, WarmupTxnsExcludedFromStats)
{
    TraceBuilder b;
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    // Two identical transactions.
    for (int i = 0; i < 2; ++i) {
        t.txnBegin();
        t.loopBegin();
        t.iterBegin();
        t.compute(b.pc(), 5000);
        t.iterBegin();
        t.compute(b.pc(), 5000);
        t.loopEnd();
        t.txnEnd();
    }
    auto w = t.takeWorkload();
    TlsMachine m(testConfig());
    RunResult all = m.run(w, ExecMode::Tls, 0);
    RunResult measured = m.run(w, ExecMode::Tls, 1);
    EXPECT_EQ(all.txns, 2u);
    EXPECT_EQ(measured.txns, 1u); // only the measured region counts
    EXPECT_LT(measured.makespan, all.makespan);
    EXPECT_EQ(measured.epochs, 2u);
}

} // namespace
} // namespace tlsim
