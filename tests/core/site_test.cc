#include <gtest/gtest.h>

#include "core/site.h"

namespace tlsim {
namespace {

TEST(SiteRegistry, InternIsStable)
{
    auto &reg = SiteRegistry::instance();
    Pc a = reg.intern("test.site.alpha");
    Pc b = reg.intern("test.site.beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.intern("test.site.alpha"), a);
}

TEST(SiteRegistry, NameRoundTrip)
{
    auto &reg = SiteRegistry::instance();
    Pc a = reg.intern("test.site.roundtrip");
    EXPECT_EQ(reg.name(a), "test.site.roundtrip");
}

TEST(SiteRegistry, UnknownPcFormats)
{
    auto &reg = SiteRegistry::instance();
    EXPECT_EQ(reg.name(0x10), "<pc 0x10>");
}

TEST(SiteRegistry, PcsAreBlockAligned)
{
    auto &reg = SiteRegistry::instance();
    Pc a = reg.intern("test.site.align1");
    Pc b = reg.intern("test.site.align2");
    EXPECT_EQ(a % SiteRegistry::kBlockBytes, 0u);
    EXPECT_EQ(b % SiteRegistry::kBlockBytes, 0u);
    EXPECT_GE(a, SiteRegistry::kCodeBase);
}

TEST(Site, HelperInterns)
{
    Site s("test.site.helper");
    EXPECT_EQ(SiteRegistry::instance().name(s.pc), "test.site.helper");
    Site s2("test.site.helper");
    EXPECT_EQ(s.pc, s2.pc);
}

} // namespace
} // namespace tlsim
