/**
 * @file
 * Behavioural tests for the machine's ablation switches: lazy update
 * propagation (violations deferred to commit), L1 sub-thread
 * awareness, adaptive sub-thread spacing, and victim-cache toggling.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

class Builder
{
  public:
    Builder() : mem_(16384, 0)
    {
        pc_ = SiteRegistry::instance().intern("ablation.site");
    }

    void *addr(std::size_t w) { return &mem_.at(w); }
    Pc pc() const { return pc_; }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        Tracer::Options o;
        o.parallelMode = true;
        Tracer t(o);
        t.txnBegin();
        t.loopBegin();
        for (const auto &b : bodies) {
            t.iterBegin();
            b(t);
        }
        t.loopEnd();
        t.txnEnd();
        return t.takeWorkload();
    }

  private:
    std::vector<std::uint64_t> mem_;
    Pc pc_;
};

MachineConfig
cfgK(unsigned k, std::uint64_t spacing = 1000)
{
    MachineConfig c;
    c.tls.subthreadsPerThread = k;
    c.tls.subthreadSpacing = spacing;
    return c;
}

TEST(LazyUpdates, ViolationsDetectedLaterWasteMoreWork)
{
    Builder b;
    // Writer stores early in its epoch; the reader's exposed load
    // happens even earlier. Aggressive propagation violates the reader
    // at the store (cheap); lazy propagation only at the writer's
    // commit, after the reader wasted its whole epoch.
    // A leading epoch keeps the writer speculative (the oldest epoch
    // is non-speculative and always checks eagerly).
    auto pad = [&b](Tracer &t) { t.compute(b.pc(), 40000); };
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 2000);
        t.store(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 30000);
    };
    auto reader = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 30000);
    };
    auto w = b.loopTxn({pad, writer, reader});

    MachineConfig eager = cfgK(8);
    MachineConfig lazy = cfgK(8);
    lazy.tls.aggressiveUpdates = false;

    TlsMachine m1(eager), m2(lazy);
    RunResult re = m1.run(w, ExecMode::Tls);
    RunResult rl = m2.run(w, ExecMode::Tls);

    ASSERT_GE(re.primaryViolations, 1u);
    ASSERT_GE(rl.primaryViolations, 1u);
    EXPECT_GT(rl.total[Cat::Failed], re.total[Cat::Failed]);
    EXPECT_GE(rl.makespan, re.makespan);
    EXPECT_EQ(rl.total.total(), rl.makespan * 4);
}

TEST(LazyUpdates, DeferredChecksRewindWithTheirSubthread)
{
    Builder b;
    // The reader both stores (deferred check pending) and gets
    // violated itself; the deferred entries from rewound sub-threads
    // must be discarded, or phantom violations would fire at commit.
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 20000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto middle = [&b](Tracer &t) {
        t.compute(b.pc(), 3000);
        t.load(b.pc(), b.addr(64), 8); // violated by writer
        t.compute(b.pc(), 3000);
        t.store(b.pc(), b.addr(128), 8); // deferred check source
        t.compute(b.pc(), 9000);
    };
    auto tail = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(128), 8);
        t.compute(b.pc(), 15000);
    };
    auto w = b.loopTxn({writer, middle, tail});

    MachineConfig lazy = cfgK(8);
    lazy.tls.aggressiveUpdates = false;
    TlsMachine m(lazy);
    RunResult r1 = m.run(w, ExecMode::Tls);
    RunResult r2 = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r1.makespan, r2.makespan); // deterministic
    EXPECT_EQ(r1.epochs, 3u);
    EXPECT_EQ(r1.total.total(), r1.makespan * 4);
}

TEST(L1SubthreadAware, SkipsTheSquashFlush)
{
    Builder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 15000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8);
        // Lots of stores whose L1 lines a squash would flush.
        for (int i = 0; i < 200; ++i) {
            t.store(b.pc(), b.addr(1024 + i * 4), 8);
            t.compute(b.pc(), 60);
        }
    };
    auto w = b.loopTxn({writer, reader});

    MachineConfig unaware = cfgK(8);
    MachineConfig aware = cfgK(8);
    aware.tls.l1SubthreadAware = true;

    TlsMachine m1(unaware), m2(aware);
    RunResult ru = m1.run(w, ExecMode::Tls);
    RunResult ra = m2.run(w, ExecMode::Tls);
    ASSERT_GE(ru.squashes, 1u);
    ASSERT_GE(ra.squashes, 1u);
    // Aware mode keeps the L1 contents: replay misses less.
    EXPECT_LE(ra.l1Misses, ru.l1Misses);
    EXPECT_LE(ra.makespan, ru.makespan);
}

TEST(AdaptiveSpacing, ScalesCheckpointsToThreadSize)
{
    Builder b;
    auto small_epoch = [&b](Tracer &t) { t.compute(b.pc(), 4000); };
    auto big_epoch = [&b](Tracer &t) { t.compute(b.pc(), 160000); };
    auto w = b.loopTxn({big_epoch, small_epoch, small_epoch});

    MachineConfig fixed = cfgK(8, 5000);
    MachineConfig adaptive = cfgK(8, 5000);
    adaptive.tls.adaptiveSpacing = true;

    TlsMachine m1(fixed), m2(adaptive);
    RunResult rf = m1.run(w, ExecMode::Tls);
    RunResult ra = m2.run(w, ExecMode::Tls);
    // Fixed 5k: the big epoch burns all 7 extra contexts in its first
    // 35k instructions; small epochs spawn none (4000 < 5000).
    EXPECT_EQ(rf.subthreadsStarted, 7u);
    // Adaptive: the big epoch spreads 7 checkpoints over 160k, and the
    // small epochs get checkpoints too (spacing ~ size/8).
    EXPECT_GT(ra.subthreadsStarted, 7u);
}

TEST(VictimToggle, DisabledVictimStillTerminates)
{
    Builder b;
    std::vector<std::function<void(Tracer &)>> bodies;
    for (int e = 0; e < 4; ++e) {
        bodies.push_back([&b, e](Tracer &t) {
            for (int i = 0; i < 64; ++i) {
                t.store(b.pc(), b.addr(1024 * e + i * 16), 8);
                t.compute(b.pc(), 50);
            }
        });
    }
    auto w = b.loopTxn(bodies);

    MachineConfig cfg = cfgK(2, 2000);
    cfg.mem.l2Bytes = 4 * 4 * 32;
    cfg.tls.useVictimCache = false;
    TlsMachine m(cfg);
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_GT(r.overflowEvents, 0u);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(DeliveryLatency, HigherLatencyNeverSpeedsUp)
{
    Builder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 9000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto reader = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, reader});

    MachineConfig fast = cfgK(8);
    fast.tls.violationDeliveryLatency = 0;
    MachineConfig slow = cfgK(8);
    slow.tls.violationDeliveryLatency = 500;
    TlsMachine m1(fast), m2(slow);
    EXPECT_LE(m1.run(w, ExecMode::Tls).makespan,
              m2.run(w, ExecMode::Tls).makespan);
}

TEST(DependencePredictor, SynchronizesRepeatOffenderLoads)
{
    Builder b;
    // Three reader epochs all load through the same PC; the writer
    // violates the first. The predictor then synchronizes every later
    // instance of that PC, even the independent ones.
    Pc hot = SiteRegistry::instance().intern("ablation.hot_load");
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 12000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto readerShared = [&](Tracer &t) {
        t.load(hot, b.addr(64), 8);
        t.compute(b.pc(), 12000);
    };
    auto readerPrivate = [&, hot](Tracer &t) {
        t.load(hot, b.addr(2048), 8); // same PC, independent address
        t.compute(b.pc(), 12000);
    };
    auto w = b.loopTxn(
        {writer, readerShared, readerPrivate, readerPrivate});

    MachineConfig plain = cfgK(8);
    MachineConfig pred = cfgK(8);
    pred.tls.useDependencePredictor = true;

    TlsMachine m1(plain), m2(pred);
    RunResult r1 = m1.run(w, ExecMode::Tls);
    RunResult r2 = m2.run(w, ExecMode::Tls);

    EXPECT_EQ(r1.predictorStalls, 0u);
    // Once trained by the first violation, the predictor stalls later
    // instances of the PC — including the independent ones.
    EXPECT_GT(r2.predictorStalls, 0u);
    EXPECT_EQ(r2.epochs, 4u);
    EXPECT_EQ(r2.total.total(), r2.makespan * 4);
    // Determinism with the predictor on.
    RunResult r3 = m2.run(w, ExecMode::Tls);
    EXPECT_EQ(r2.makespan, r3.makespan);
}

TEST(DumpStats, ContainsTheExpectedGroups)
{
    Builder b;
    auto w = b.loopTxn({[&b](Tracer &t) { t.compute(b.pc(), 5000); }});
    TlsMachine m(cfgK(8));
    m.run(w, ExecMode::Tls);
    std::ostringstream os;
    m.dumpStats(os);
    std::string s = os.str();
    EXPECT_NE(s.find("cpu0.cycles"), std::string::npos);
    EXPECT_NE(s.find("cpu3.breakdown.busy"), std::string::npos);
    EXPECT_NE(s.find("l2.hits"), std::string::npos);
    EXPECT_NE(s.find("l2.victim_hits"), std::string::npos);
    EXPECT_NE(s.find("tls.violations_recorded"), std::string::npos);
}

} // namespace
} // namespace tlsim
