#include <gtest/gtest.h>

#include "core/profiler.h"
#include "core/site.h"

namespace tlsim {
namespace {

TEST(ExposedLoadTable, RecordAndLookup)
{
    ExposedLoadTable t(16);
    t.record(100, 0xAAA);
    EXPECT_EQ(t.lookup(100), 0xAAAu);
    EXPECT_EQ(t.lookup(101), 0u);
}

TEST(ExposedLoadTable, DirectMappedConflictEvicts)
{
    ExposedLoadTable t(16);
    t.record(4, 0x111);
    t.record(4 + 16, 0x222); // same index
    EXPECT_EQ(t.lookup(4), 0u);
    EXPECT_EQ(t.lookup(4 + 16), 0x222u);
}

TEST(ExposedLoadTable, ResetClears)
{
    ExposedLoadTable t(16);
    t.record(4, 0x111);
    t.reset();
    EXPECT_EQ(t.lookup(4), 0u);
}

TEST(DependenceProfiler, AccumulatesPerPair)
{
    DependenceProfiler p;
    p.recordViolation(0x10, 0x20, 1000);
    p.recordViolation(0x10, 0x20, 500);
    p.recordViolation(0x30, 0x20, 100);

    auto rep = p.report();
    ASSERT_EQ(rep.size(), 2u);
    EXPECT_EQ(rep[0].loadPc, 0x10u);
    EXPECT_EQ(rep[0].failedCycles, 1500u);
    EXPECT_EQ(rep[0].violations, 2u);
    EXPECT_EQ(rep[1].failedCycles, 100u);
    EXPECT_EQ(p.totalFailedCycles(), 1600u);
    EXPECT_EQ(p.totalViolations(), 3u);
}

TEST(DependenceProfiler, RankedByCost)
{
    DependenceProfiler p;
    p.recordViolation(1, 2, 10);
    p.recordViolation(3, 4, 1000);
    p.recordViolation(5, 6, 100);
    auto rep = p.report();
    ASSERT_EQ(rep.size(), 3u);
    EXPECT_GE(rep[0].failedCycles, rep[1].failedCycles);
    EXPECT_GE(rep[1].failedCycles, rep[2].failedCycles);
}

TEST(DependenceProfiler, OverflowReclaimsCheapestEntry)
{
    DependenceProfiler p(2);
    p.recordViolation(1, 1, 100);
    p.recordViolation(2, 2, 5); // cheapest
    p.recordViolation(3, 3, 50);
    auto rep = p.report();
    ASSERT_EQ(rep.size(), 2u);
    EXPECT_EQ(rep[0].loadPc, 1u);
    EXPECT_EQ(rep[1].loadPc, 3u);
}

TEST(DependenceProfiler, ReportTextResolvesSiteNames)
{
    Site load_site("test.profiler.load");
    Site store_site("test.profiler.store");
    DependenceProfiler p;
    p.recordViolation(load_site.pc, store_site.pc, 777);
    std::string text = p.reportText(5);
    EXPECT_NE(text.find("test.profiler.load"), std::string::npos);
    EXPECT_NE(text.find("test.profiler.store"), std::string::npos);
    EXPECT_NE(text.find("777"), std::string::npos);
}

TEST(DependenceProfiler, ResetClears)
{
    DependenceProfiler p;
    p.recordViolation(1, 2, 10);
    p.reset();
    EXPECT_TRUE(p.report().empty());
    EXPECT_EQ(p.totalViolations(), 0u);
}

} // namespace
} // namespace tlsim
