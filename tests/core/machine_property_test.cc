/**
 * @file
 * Property tests: randomized synthetic workloads (seeded, so failures
 * reproduce) swept across machine configurations. Every run must
 * terminate, keep the cycle-accounting invariant, commit every epoch,
 * and be deterministic.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/rng.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

/** Generates a random multi-transaction workload with planted shared
 *  accesses, escapes, latches, and pointer chases. */
WorkloadTrace
randomWorkload(std::uint64_t seed, std::vector<std::uint64_t> &mem)
{
    Rng rng(seed);
    Pc pc = SiteRegistry::instance().intern("fuzz.site");
    Tracer::Options o;
    o.parallelMode = true;
    o.spawnOverheadInsts = 50;
    Tracer t(o);

    unsigned txns = 1 + static_cast<unsigned>(rng.uniform(0, 2));
    for (unsigned tx = 0; tx < txns; ++tx) {
        t.txnBegin();
        t.compute(pc, 200 + rng.uniform(0, 400));

        unsigned loops = 1 + static_cast<unsigned>(rng.uniform(0, 1));
        for (unsigned l = 0; l < loops; ++l) {
            t.loopBegin();
            unsigned epochs =
                static_cast<unsigned>(rng.uniform(0, 9));
            for (unsigned e = 0; e < epochs; ++e) {
                t.iterBegin();
                unsigned ops =
                    10 + static_cast<unsigned>(rng.uniform(0, 60));
                bool in_escape = false;
                bool holding = false;
                std::uint64_t latch_id = 0;
                for (unsigned op = 0; op < ops; ++op) {
                    switch (rng.uniform(0, 9)) {
                      case 0:
                      case 1:
                        t.compute(pc, 20 + rng.uniform(0, 300));
                        break;
                      case 2: // private load
                        t.load(pc,
                               &mem[4096 + 512 * e +
                                    rng.uniform(0, 255)],
                               8, rng.chance(0.3));
                        break;
                      case 3: // shared load (dependence!)
                        t.load(pc, &mem[rng.uniform(0, 63)], 8);
                        break;
                      case 4: // private store
                        t.store(pc,
                                &mem[4096 + 512 * e + 256 +
                                     rng.uniform(0, 255)],
                                8);
                        break;
                      case 5: // shared store (dependence!)
                        t.store(pc, &mem[rng.uniform(0, 63)], 8);
                        break;
                      case 6:
                        t.branch(pc, rng.chance(0.5));
                        break;
                      case 7: // escaped latch region
                        if (!in_escape) {
                            in_escape = true;
                            t.escapeBegin(pc);
                            latch_id = 900 + rng.uniform(0, 3);
                            t.latchAcquire(pc, latch_id);
                            holding = true;
                            t.compute(pc, 50 + rng.uniform(0, 200));
                        }
                        break;
                      case 8:
                        if (in_escape) {
                            if (holding) {
                                t.latchRelease(pc, latch_id);
                                holding = false;
                            }
                            t.escapeEnd(pc);
                            in_escape = false;
                        }
                        break;
                    }
                }
                if (in_escape) {
                    if (holding)
                        t.latchRelease(pc, latch_id);
                    t.escapeEnd(pc);
                }
            }
            t.loopEnd();
            t.compute(pc, 100);
        }
        t.txnEnd();
    }
    return t.takeWorkload();
}

std::uint64_t
countEpochs(const WorkloadTrace &w)
{
    std::uint64_t n = 0;
    for (const auto &txn : w.txns)
        n += txn.epochCount();
    return n;
}

struct Params
{
    unsigned k;
    std::uint64_t spacing;
    ExecMode mode;
    bool startTable;
    bool aggressive;
    std::uint64_t seed;
};

class MachineProperty : public ::testing::TestWithParam<Params>
{
};

TEST_P(MachineProperty, InvariantsHoldOnRandomWorkloads)
{
    const Params p = GetParam();
    auto mem = std::make_unique<std::vector<std::uint64_t>>(8192);
    WorkloadTrace w = randomWorkload(p.seed, *mem);

    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = p.k;
    cfg.tls.subthreadSpacing = p.spacing;
    cfg.tls.useStartTable = p.startTable;
    cfg.tls.aggressiveUpdates = p.aggressive;

    TlsMachine m(cfg);
    RunResult r1 = m.run(w, p.mode);
    RunResult r2 = m.run(w, p.mode);

    // Terminates with every epoch committed.
    if (p.mode != ExecMode::Serial)
        EXPECT_EQ(r1.epochs, countEpochs(w));
    EXPECT_EQ(r1.txns, w.txns.size());

    // Cycle accounting: every CPU cycle lands in exactly one bucket.
    EXPECT_EQ(r1.total.total(), r1.makespan * cfg.tls.numCpus);

    // Non-speculative modes never fail speculation.
    if (p.mode != ExecMode::Tls) {
        EXPECT_EQ(r1.primaryViolations, 0u);
        EXPECT_EQ(r1.total[Cat::Failed], 0u);
    }

    // Determinism.
    EXPECT_EQ(r1.makespan, r2.makespan);
    EXPECT_EQ(r1.primaryViolations, r2.primaryViolations);
    EXPECT_EQ(r1.squashes, r2.squashes);
    EXPECT_EQ(r1.rewoundInsts, r2.rewoundInsts);
    EXPECT_EQ(r1.total[Cat::Failed], r2.total[Cat::Failed]);

    // Sub-thread spawning respects the context budget.
    if (r1.epochs > 0)
        EXPECT_LE(r1.subthreadsStarted, r1.epochs * (p.k - 1));
}

std::vector<Params>
makeParams()
{
    std::vector<Params> out;
    std::uint64_t seed = 1000;
    for (unsigned k : {1u, 2u, 8u}) {
        for (std::uint64_t spacing : {500ull, 5000ull}) {
            for (ExecMode mode :
                 {ExecMode::Serial, ExecMode::Tls,
                  ExecMode::NoSpeculation}) {
                out.push_back({k, spacing, mode, true, true, ++seed});
            }
        }
    }
    // Config corners under the Tls mode.
    out.push_back({8, 1000, ExecMode::Tls, false, true, 7771});
    out.push_back({8, 1000, ExecMode::Tls, true, false, 7772});
    out.push_back({4, 2000, ExecMode::Tls, false, false, 7773});
    // Extra seeds at the baseline configuration.
    for (std::uint64_t s : {42ull, 43ull, 44ull, 45ull, 46ull})
        out.push_back({8, 5000, ExecMode::Tls, true, true, s});
    return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MachineProperty,
                         ::testing::ValuesIn(makeParams()));

/** The same workload must produce strictly less (or equal) failed
 *  work with more sub-thread contexts, on average over seeds. */
TEST(MachinePropertyAggregate, SubthreadsNeverIncreaseFailedWorkMuch)
{
    auto mem = std::make_unique<std::vector<std::uint64_t>>(8192);
    std::uint64_t failed1 = 0, failed8 = 0;
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        WorkloadTrace w = randomWorkload(seed, *mem);
        MachineConfig c1;
        c1.tls.subthreadsPerThread = 1;
        c1.tls.subthreadSpacing = 1000;
        MachineConfig c8 = c1;
        c8.tls.subthreadsPerThread = 8;
        TlsMachine m1(c1), m8(c8);
        failed1 += m1.run(w, ExecMode::Tls).total[Cat::Failed];
        failed8 += m8.run(w, ExecMode::Tls).total[Cat::Failed];
    }
    EXPECT_LE(failed8, failed1 + failed1 / 10);
}

} // namespace
} // namespace tlsim
