/**
 * @file
 * Rewind x escaped-region interaction: an escaped region that finished
 * before a violation must be skipped -- not re-executed -- when the
 * rewind point lies before it, and must not be counted when the rewind
 * point lies after it. Both behaviors must be identical with the
 * conflict-oracle fast path on and off.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

class RewindBuilder
{
  public:
    RewindBuilder() : mem_(8192, 0)
    {
        pc_ = SiteRegistry::instance().intern("rewind.escape.site");
    }

    void *addr(std::size_t w) { return &mem_.at(w); }
    Pc pc() const { return pc_; }

    void
    critical(Tracer &t, std::uint64_t latch, unsigned insts)
    {
        t.escapeBegin(pc_);
        t.latchAcquire(pc_, latch);
        t.compute(pc_, insts);
        t.latchRelease(pc_, latch);
        t.escapeEnd(pc_);
    }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        Tracer::Options o;
        o.parallelMode = true;
        Tracer t(o);
        t.txnBegin();
        t.loopBegin();
        for (const auto &b : bodies) {
            t.iterBegin();
            b(t);
        }
        t.loopEnd();
        t.txnEnd();
        return t.takeWorkload();
    }

  private:
    std::vector<std::uint64_t> mem_;
    Pc pc_;
};

MachineConfig
cfg(unsigned k, bool oracle)
{
    MachineConfig c;
    c.tls.subthreadsPerThread = k;
    c.tls.subthreadSpacing = 1000;
    c.tls.useConflictOracle = oracle;
    return c;
}

/**
 * One dependence, one escaped region, all-or-nothing rewind: the
 * violated load sits before the region, so the rewind crosses it and
 * the single re-execution must skip it exactly once.
 */
TEST(MachineRewindEscape, RewindAcrossCompletedRegionSkipsItOnce)
{
    RewindBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto victim = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8); // violated by the late store
        t.compute(b.pc(), 500);
        b.critical(t, 17, 1000); // completed before the violation
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, victim});

    for (bool oracle : {true, false}) {
        TlsMachine m(cfg(1, oracle));
        RunResult r = m.run(w, ExecMode::Tls);
        EXPECT_EQ(r.squashes, 1u) << "oracle=" << oracle;
        EXPECT_EQ(r.escapeSkips, 1u) << "oracle=" << oracle;
        EXPECT_EQ(r.epochs, 2u) << "oracle=" << oracle;
    }
}

/**
 * Same dependence, but with sub-threads the rewind point is a
 * checkpoint after the escaped region: the region is never crossed, so
 * it must not be skipped (and must not be re-executed either).
 */
TEST(MachineRewindEscape, SubthreadRewindAfterRegionDoesNotSkip)
{
    RewindBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto victim = [&b](Tracer &t) {
        b.critical(t, 19, 1000); // done within the first sub-thread
        t.compute(b.pc(), 4000);
        t.load(b.pc(), b.addr(64), 8); // several checkpoints later
        t.compute(b.pc(), 2000);
    };
    auto w = b.loopTxn({writer, victim});

    for (bool oracle : {true, false}) {
        TlsMachine m(cfg(8, oracle));
        RunResult r = m.run(w, ExecMode::Tls);
        EXPECT_GE(r.squashes, 1u) << "oracle=" << oracle;
        EXPECT_EQ(r.escapeSkips, 0u) << "oracle=" << oracle;
    }
}

/** The squash/skip path is deterministic and oracle-independent. */
TEST(MachineRewindEscape, OracleDoesNotChangeRewindTiming)
{
    RewindBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto victim = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 500);
        b.critical(t, 23, 1000);
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, victim});

    TlsMachine on(cfg(1, true)), off(cfg(1, false));
    RunResult r_on = on.run(w, ExecMode::Tls);
    RunResult r_off = off.run(w, ExecMode::Tls);
    EXPECT_EQ(r_on.makespan, r_off.makespan);
    EXPECT_EQ(r_on.escapeSkips, r_off.escapeSkips);
    EXPECT_EQ(r_on.rewoundInsts, r_off.rewoundInsts);
    EXPECT_EQ(r_on.total.total(), r_off.total.total());
}

} // namespace
} // namespace tlsim
