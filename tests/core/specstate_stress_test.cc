/**
 * @file
 * Randomized stress test of the flat-table SpecState against a simple
 * unordered_map oracle implementing the same semantics. Exercises the
 * probe sequence across growth, tombstone deletion and the last-line
 * lookup cache — the paths a handful of directed tests cannot cover.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/rng.h"
#include "core/specstate.h"

namespace tlsim {
namespace {

/** Reference model: the pre-optimization node-based representation. */
class OracleSpecState
{
  public:
    explicit OracleSpecState(unsigned num_contexts)
        : numContexts_(num_contexts)
    {
    }

    bool
    recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
               std::uint32_t word_mask)
    {
        auto it = lines_.find(line);
        std::uint32_t covered = 0;
        if (it != lines_.end()) {
            for (unsigned c = 0; c < numContexts_; ++c)
                if (thread_mask & (1ull << c))
                    covered |= it->second.sm[c];
        }
        if ((word_mask & ~covered) == 0)
            return false;
        lines_[line].sl |= 1ull << ctx;
        return true;
    }

    void
    recordStore(ContextId ctx, Addr line, std::uint32_t word_mask)
    {
        Entry &e = lines_[line];
        e.sm[ctx] |= word_mask;
        e.smOwners |= 1ull << ctx;
    }

    std::uint64_t
    slHolders(Addr line) const
    {
        auto it = lines_.find(line);
        return it == lines_.end() ? 0 : it->second.sl;
    }

    std::uint64_t
    stateHolders(Addr line) const
    {
        auto it = lines_.find(line);
        return it == lines_.end() ? 0
                                  : it->second.sl | it->second.smOwners;
    }

    bool
    threadModifiedLine(std::uint64_t thread_mask, Addr line) const
    {
        auto it = lines_.find(line);
        return it != lines_.end() &&
               (it->second.smOwners & thread_mask) != 0;
    }

    std::vector<Addr>
    clearContext(ContextId ctx, std::uint64_t thread_mask)
    {
        std::vector<Addr> dead;
        for (auto it = lines_.begin(); it != lines_.end();) {
            Entry &e = it->second;
            bool had_sm = (e.smOwners & (1ull << ctx)) != 0;
            e.sl &= ~(1ull << ctx);
            e.sm[ctx] = 0;
            e.smOwners &= ~(1ull << ctx);
            if (had_sm && (e.smOwners & thread_mask) == 0)
                dead.push_back(it->first);
            if (e.sl == 0 && e.smOwners == 0)
                it = lines_.erase(it);
            else
                ++it;
        }
        return dead;
    }

    void
    clearThread(std::uint64_t thread_mask)
    {
        for (auto it = lines_.begin(); it != lines_.end();) {
            Entry &e = it->second;
            e.sl &= ~thread_mask;
            for (unsigned c = 0; c < numContexts_; ++c)
                if (thread_mask & (1ull << c))
                    e.sm[c] = 0;
            e.smOwners &= ~thread_mask;
            if (e.sl == 0 && e.smOwners == 0)
                it = lines_.erase(it);
            else
                ++it;
        }
    }

    std::size_t liveLines() const { return lines_.size(); }

    void reset() { lines_.clear(); }

    std::vector<Addr>
    knownLines() const
    {
        std::vector<Addr> out;
        for (const auto &kv : lines_)
            out.push_back(kv.first);
        return out;
    }

  private:
    struct Entry
    {
        std::uint64_t sl = 0;
        std::uint64_t smOwners = 0;
        std::array<std::uint32_t, SpecState::kMaxContexts> sm{};
    };

    unsigned numContexts_;
    std::unordered_map<Addr, Entry> lines_;
};

class SpecStateStress : public ::testing::Test
{
  protected:
    static constexpr unsigned kCtxsPerThread = 4;
    static constexpr unsigned kThreads = 4;
    static constexpr unsigned kCtxs = kThreads * kCtxsPerThread;

    SpecStateStress() : real_(kCtxs), oracle_(kCtxs), rng_(12345) {}

    static std::uint64_t
    threadMask(unsigned thread)
    {
        std::uint64_t per = (1ull << kCtxsPerThread) - 1;
        return per << (thread * kCtxsPerThread);
    }

    /** Uniform in [0, n). */
    unsigned
    range(unsigned n)
    {
        return static_cast<unsigned>(rng_.uniform(0, n - 1));
    }

    Addr
    pickLine()
    {
        // Near-sequential line numbers with occasional far jumps, the
        // pattern the hash and probe sequence must digest.
        if (range(10) == 0)
            return range(1u << 20);
        return base_ + range(64);
    }

    void
    checkLine(Addr line)
    {
        EXPECT_EQ(real_.slHolders(line), oracle_.slHolders(line))
            << "line " << line;
        EXPECT_EQ(real_.stateHolders(line), oracle_.stateHolders(line))
            << "line " << line;
        EXPECT_EQ(real_.lineHasSpecState(line),
                  oracle_.stateHolders(line) != 0)
            << "line " << line;
        for (unsigned t = 0; t < kThreads; ++t)
            EXPECT_EQ(real_.threadModifiedLine(threadMask(t), line),
                      oracle_.threadModifiedLine(threadMask(t), line))
                << "line " << line << " thread " << t;
    }

    void
    checkAll()
    {
        EXPECT_EQ(real_.liveLines(), oracle_.liveLines());
        for (Addr line : oracle_.knownLines())
            checkLine(line);
    }

    SpecState real_;
    OracleSpecState oracle_;
    Rng rng_;
    Addr base_ = 1000;
};

TEST_F(SpecStateStress, RandomOperationsMatchOracle)
{
    for (int step = 0; step < 20000; ++step) {
        unsigned op = range(100);
        if (op < 40) { // load
            unsigned ctx = range(kCtxs);
            unsigned thread = ctx / kCtxsPerThread;
            Addr line = pickLine();
            std::uint32_t mask = 1u << range(8);
            bool a =
                real_.recordLoad(ctx, threadMask(thread), line, mask);
            bool b = oracle_.recordLoad(ctx, threadMask(thread), line,
                                        mask);
            ASSERT_EQ(a, b) << "step " << step << " line " << line;
        } else if (op < 80) { // store
            unsigned ctx = range(kCtxs);
            Addr line = pickLine();
            std::uint32_t mask = 1u << range(8);
            real_.recordStore(ctx, line, mask);
            oracle_.recordStore(ctx, line, mask);
        } else if (op < 90) { // clear one context
            unsigned ctx = range(kCtxs);
            unsigned thread = ctx / kCtxsPerThread;
            std::vector<Addr> a =
                real_.clearContext(ctx, threadMask(thread));
            std::vector<Addr> b =
                oracle_.clearContext(ctx, threadMask(thread));
            // Dead-version sets must match; order may not.
            std::unordered_set<Addr> sa(a.begin(), a.end());
            std::unordered_set<Addr> sb(b.begin(), b.end());
            ASSERT_EQ(a.size(), sa.size()) << "duplicates at " << step;
            ASSERT_EQ(sa, sb) << "step " << step;
        } else if (op < 97) { // commit a thread
            unsigned thread = range(kThreads);
            real_.clearThread(threadMask(thread),
                              thread * kCtxsPerThread, kCtxsPerThread);
            oracle_.clearThread(threadMask(thread));
        } else if (op < 99) { // drift the hot line window
            base_ = range(1u << 20);
        } else { // full reset
            real_.reset();
            oracle_.reset();
        }
        if (step % 500 == 0)
            checkAll();
    }
    checkAll();
}

TEST_F(SpecStateStress, GrowthKeepsAllEntries)
{
    // Insert far more distinct lines than kMinCapacity to force
    // several rehashes, then verify every line.
    std::size_t cap0 = real_.tableCapacity();
    for (Addr line = 0; line < 4096; ++line) {
        unsigned ctx = static_cast<unsigned>(line % kCtxs);
        real_.recordStore(ctx, line * 977 + 13, 0xF);
        oracle_.recordStore(ctx, line * 977 + 13, 0xF);
    }
    EXPECT_GT(real_.tableCapacity(), cap0);
    checkAll();
}

TEST_F(SpecStateStress, TombstoneChurnStaysBounded)
{
    // Alternating fill/clear cycles leave tombstones; the table must
    // keep finding entries and not grow without bound.
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (Addr line = 0; line < 300; ++line) {
            unsigned ctx = static_cast<unsigned>(line % kCtxs);
            real_.recordStore(ctx, line + cycle * 7, 1);
            oracle_.recordStore(ctx, line + cycle * 7, 1);
        }
        for (unsigned t = 0; t < kThreads; ++t) {
            real_.clearThread(threadMask(t), t * kCtxsPerThread,
                              kCtxsPerThread);
            oracle_.clearThread(threadMask(t));
        }
        EXPECT_EQ(real_.liveLines(), 0u);
    }
    // ~300 concurrent entries never justify more than a few doublings.
    EXPECT_LE(real_.tableCapacity(), 4096u);
    checkAll();
}

TEST_F(SpecStateStress, ResetKeepsCapacityDropsContents)
{
    for (Addr line = 0; line < 2000; ++line)
        real_.recordStore(0, line, 1);
    std::size_t cap = real_.tableCapacity();
    real_.reset();
    EXPECT_EQ(real_.liveLines(), 0u);
    EXPECT_EQ(real_.tableCapacity(), cap);
    EXPECT_FALSE(real_.lineHasSpecState(42));
    // Still usable after reset.
    real_.recordStore(1, 42, 0x3);
    EXPECT_EQ(real_.stateHolders(42), 1ull << 1);
}

} // namespace
} // namespace tlsim
