#include <gtest/gtest.h>

#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

Tracer::Options
parallelOpts()
{
    Tracer::Options o;
    o.parallelMode = true;
    o.spawnOverheadInsts = 100;
    return o;
}

TEST(Tracer, DropsEventsOutsideTransactions)
{
    Tracer t;
    int x = 0;
    t.load(1, &x, 4);
    t.compute(1, 50);
    EXPECT_TRUE(t.workload().txns.empty());
}

TEST(Tracer, SequentialCaptureIsOneSection)
{
    Tracer t; // parallelMode off
    int x = 0;
    t.txnBegin();
    t.compute(1, 40);
    t.loopBegin(); // ignored without parallel mode
    t.iterBegin();
    t.load(1, &x, 4);
    t.loopEnd();
    t.txnEnd();

    const auto &txn = t.workload().txns.at(0);
    ASSERT_EQ(txn.sections.size(), 1u);
    EXPECT_FALSE(txn.sections[0].parallel);
    EXPECT_EQ(txn.sections[0].epochs.size(), 1u);
    EXPECT_EQ(txn.sections[0].epochs[0].records.size(), 2u);
    EXPECT_EQ(txn.coverage(), 0.0);
}

TEST(Tracer, ParallelLoopBecomesEpochs)
{
    Tracer t(parallelOpts());
    int x = 0;
    t.txnBegin();
    t.compute(1, 10); // prologue
    t.loopBegin();
    for (int i = 0; i < 3; ++i) {
        t.iterBegin();
        t.load(1, &x, 4);
        t.compute(1, 20);
    }
    t.loopEnd();
    t.compute(1, 5); // epilogue
    t.txnEnd();

    const auto &txn = t.workload().txns.at(0);
    ASSERT_EQ(txn.sections.size(), 3u);
    EXPECT_FALSE(txn.sections[0].parallel);
    EXPECT_TRUE(txn.sections[1].parallel);
    EXPECT_FALSE(txn.sections[2].parallel);
    EXPECT_EQ(txn.sections[1].epochs.size(), 3u);
    EXPECT_EQ(txn.epochCount(), 3u);
    EXPECT_EQ(txn.epochsPerLoop(), 3.0);
    EXPECT_GT(txn.coverage(), 0.5);
}

TEST(Tracer, EpochsChargeSpawnOverhead)
{
    Tracer t(parallelOpts());
    t.txnBegin();
    t.loopBegin();
    t.iterBegin();
    t.compute(1, 20);
    t.loopEnd();
    t.txnEnd();

    const auto &e = t.workload().txns.at(0).sections.at(0).epochs.at(0);
    ASSERT_EQ(e.records.size(), 2u);
    EXPECT_EQ(e.records[0].op, TraceOp::Compute);
    EXPECT_EQ(e.records[0].addr, 100u); // spawn overhead
    EXPECT_EQ(e.instCount, 120u);
}

TEST(Tracer, EmptyLoopLeavesNoParallelSection)
{
    Tracer t(parallelOpts());
    t.txnBegin();
    t.loopBegin();
    t.loopEnd();
    t.compute(1, 10);
    t.txnEnd();
    const auto &txn = t.workload().txns.at(0);
    ASSERT_EQ(txn.sections.size(), 1u);
    EXPECT_FALSE(txn.sections[0].parallel);
}

TEST(Tracer, WideAccessesSplitAtLineBoundaries)
{
    Tracer t;
    alignas(64) char buf[128];
    t.txnBegin();
    t.load(1, buf + 24, 40); // crosses one 32B boundary
    t.txnEnd();

    const auto &recs =
        t.workload().txns.at(0).sections.at(0).epochs.at(0).records;
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].size, 8u);
    EXPECT_EQ(recs[1].size, 32u);
    EXPECT_EQ(recs[1].addr, recs[0].addr + 8);
}

TEST(Tracer, DependentFlagOnlyOnFirstChunk)
{
    Tracer t;
    alignas(64) char buf[128];
    t.txnBegin();
    t.load(1, buf, 64, true);
    t.txnEnd();
    const auto &recs =
        t.workload().txns.at(0).sections.at(0).epochs.at(0).records;
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_TRUE(recs[0].aux & kAuxDependent);
    EXPECT_FALSE(recs[1].aux & kAuxDependent);
}

TEST(Tracer, EscapeSpansAndSpecCounts)
{
    Tracer t(parallelOpts());
    int x = 0;
    t.txnBegin();
    t.loopBegin();
    t.iterBegin();
    t.compute(1, 40);       // speculative
    t.escapeBegin(1);
    t.latchAcquire(1, 7);
    t.compute(1, 60);       // escaped
    t.latchRelease(1, 7);
    t.escapeEnd(1);
    t.load(1, &x, 4);       // speculative again
    t.loopEnd();
    t.txnEnd();

    const auto &e = t.workload().txns.at(0).sections.at(0).epochs.at(0);
    ASSERT_EQ(e.escapeSpans.size(), 1u);
    auto [b, en] = e.escapeSpans[0];
    EXPECT_EQ(e.records[b].op, TraceOp::EscapeBegin);
    EXPECT_EQ(e.records[en].op, TraceOp::EscapeEnd);
    // spec insts = spawn(100) + compute(40) + load(1)
    EXPECT_EQ(e.specInstCount, 141u);
    EXPECT_GT(e.instCount, e.specInstCount);
}

TEST(Tracer, NestedEscapesFlattenToOneSpan)
{
    Tracer t;
    t.txnBegin();
    t.escapeBegin(1);
    t.escapeBegin(2);
    t.compute(1, 10);
    t.escapeEnd(2);
    t.escapeEnd(1);
    t.txnEnd();
    const auto &e = t.workload().txns.at(0).sections.at(0).epochs.at(0);
    EXPECT_EQ(e.escapeSpans.size(), 1u);
}

TEST(Tracer, ComputeClassRecorded)
{
    Tracer t;
    t.txnBegin();
    t.compute(1, 5, ComputeClass::FpDiv);
    t.txnEnd();
    const auto &r =
        t.workload().txns.at(0).sections.at(0).epochs.at(0).records[0];
    EXPECT_EQ(static_cast<ComputeClass>(r.aux), ComputeClass::FpDiv);
}

TEST(Tracer, TakeWorkloadResets)
{
    Tracer t;
    t.txnBegin();
    t.compute(1, 1);
    t.txnEnd();
    WorkloadTrace w = t.takeWorkload();
    EXPECT_EQ(w.txns.size(), 1u);
    EXPECT_TRUE(t.workload().txns.empty());
}

TEST(Tracer, TakeWorkloadRecyclesLoopStructureState)
{
    // takeWorkload() is the Tracer's declared recycle point (see
    // tools/poolreset.txt): the capture that leaves must take its
    // loop-structure state with it, so the next workload's opening
    // section can never inherit a stale parallel context.
    Tracer t(parallelOpts());
    int x = 0;
    t.txnBegin();
    t.loopBegin();
    t.iterBegin();
    t.load(1, &x, 4);
    t.loopEnd();
    t.txnEnd();
    WorkloadTrace first = t.takeWorkload();
    ASSERT_EQ(first.txns.size(), 1u);

    t.txnBegin();
    t.compute(1, 10);
    t.txnEnd();
    WorkloadTrace second = t.takeWorkload();
    ASSERT_EQ(second.txns.size(), 1u);
    ASSERT_EQ(second.txns[0].sections.size(), 1u);
    EXPECT_FALSE(second.txns[0].sections[0].parallel)
        << "loop state leaked across takeWorkload()";
}

TEST(TracerDeathTest, LatchOutsideEscapePanics)
{
    Tracer t;
    t.txnBegin();
    EXPECT_DEATH(t.latchAcquire(1, 7), "escaped region");
}

TEST(TracerDeathTest, UnbalancedEscapePanics)
{
    Tracer t;
    t.txnBegin();
    t.escapeBegin(1);
    EXPECT_DEATH(t.txnEnd(), "escaped region");
}

TEST(TracerDeathTest, IterOutsideLoopPanics)
{
    Tracer t(parallelOpts());
    t.txnBegin();
    EXPECT_DEATH(t.iterBegin(), "outside a parallel loop");
}

TEST(TracerDeathTest, NestedParallelLoopsPanic)
{
    Tracer t(parallelOpts());
    t.txnBegin();
    t.loopBegin();
    EXPECT_DEATH(t.loopBegin(), "nested");
}

} // namespace
} // namespace tlsim
