#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <vector>

#include "base/addr.h"
#include "core/site.h"
#include "core/traceindex.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

constexpr unsigned kLineBytes = 32;

/** Words per cache line (mem_ holds 8-byte words). */
constexpr std::size_t kWordsPerLine = kLineBytes / 8;

class IndexBuilder
{
  public:
    IndexBuilder() : mem_(16384, 0)
    {
        pc_ = SiteRegistry::instance().intern("test.traceindex.site");
    }

    void *addr(std::size_t word) { return &mem_.at(word); }

    Addr lineOf(std::size_t word) const
    {
        return LineGeom(kLineBytes).lineNum(
            reinterpret_cast<Addr>(&mem_.at(word)));
    }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        Tracer::Options o;
        o.parallelMode = true;
        o.spawnOverheadInsts = 50;
        Tracer t(o);
        t.txnBegin();
        t.compute(pc_, 100);
        t.loopBegin();
        for (const auto &body : bodies) {
            t.iterBegin();
            body(t);
        }
        t.loopEnd();
        t.compute(pc_, 100);
        t.txnEnd();
        return t.takeWorkload();
    }

    Pc pc() const { return pc_; }

  private:
    std::vector<std::uint64_t> mem_;
    Pc pc_;
};

/** Distinct-line word indices (one line apart). */
std::size_t
word(std::size_t line_index)
{
    return line_index * kWordsPerLine;
}

TEST(TraceIndex, ClassifiesLinesBySharingPattern)
{
    IndexBuilder b;
    // Epoch 0: stores CONFLICT (word 100*4) and PRIVATE0, loads SHARED.
    // Epoch 1: loads CONFLICT (after an earlier epoch stored it),
    //          loads SHARED (no store anywhere), stores PRIVATE1.
    auto e0 = [&b](Tracer &t) {
        t.compute(b.pc(), 100);
        t.store(b.pc(), b.addr(word(100)), 8);
        t.store(b.pc(), b.addr(word(10)), 8);
        t.load(b.pc(), b.addr(word(50)), 8);
    };
    auto e1 = [&b](Tracer &t) {
        t.compute(b.pc(), 100);
        t.load(b.pc(), b.addr(word(100)), 8);
        t.load(b.pc(), b.addr(word(50)), 8);
        t.store(b.pc(), b.addr(word(20)), 8);
    };
    auto w = b.loopTxn({e0, e1});

    TraceIndex idx(w, kLineBytes);
    const TraceIndex::ClassTotals &t = idx.totals();
    EXPECT_EQ(t.conflict, 1u);     // CONFLICT line
    EXPECT_EQ(t.readShared, 1u);   // SHARED line
    EXPECT_EQ(t.epochPrivate, 2u); // PRIVATE0, PRIVATE1
    EXPECT_EQ(t.total(), 4u);
    EXPECT_EQ(idx.maxSectionLines(), 4u);
}

TEST(TraceIndex, StoreThenLaterEpochStoreIsConflict)
{
    IndexBuilder b;
    auto e0 = [&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(7)), 8);
    };
    auto e1 = [&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(7)), 8);
    };
    auto w = b.loopTxn({e0, e1});
    TraceIndex idx(w, kLineBytes);
    EXPECT_EQ(idx.totals().conflict, 1u);
    EXPECT_EQ(idx.totals().total(), 1u);
}

TEST(TraceIndex, CoveredBitTracksOwnEarlierStores)
{
    IndexBuilder b;
    auto e0 = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(word(5)), 8);  // exposed: no store yet
        t.store(b.pc(), b.addr(word(5)), 8); // covers the word
        t.load(b.pc(), b.addr(word(5)), 8);  // covered
        t.load(b.pc(), b.addr(word(5) + 1), 8); // other word: exposed
    };
    auto w = b.loopTxn({e0, e0});

    TraceIndex idx(w, kLineBytes);
    const EpochTrace &e =
        w.txns.at(0).sections.at(1).epochs.at(0);
    const EpochView *v = idx.viewOf(&e);
    ASSERT_NE(v, nullptr);

    std::vector<bool> covered;
    for (std::size_t i = 0; i < v->size(); ++i) {
        if (EpochView::op(v->head[i]) == TraceOp::Load)
            covered.push_back(
                (v->head[i] & EpochView::kCoveredBit) != 0);
    }
    ASSERT_EQ(covered.size(), 3u);
    EXPECT_FALSE(covered[0]);
    EXPECT_TRUE(covered[1]);
    EXPECT_FALSE(covered[2]);
}

TEST(TraceIndex, PackedViewRoundTripsEveryRecord)
{
    IndexBuilder b;
    auto body = [&b](Tracer &t) {
        t.compute(b.pc(), 500);
        t.load(b.pc(), b.addr(word(3)), 8, /*dependent=*/true);
        t.store(b.pc(), b.addr(word(3) + 2), 4);
        t.branch(b.pc(), true);
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 17);
        t.compute(b.pc(), 50);
        t.latchRelease(b.pc(), 17);
        t.escapeEnd(b.pc());
        t.branch(b.pc(), false);
    };
    auto w = b.loopTxn({body, body});

    TraceIndex idx(w, kLineBytes);
    for (const auto &txn : w.txns) {
        for (const auto &sec : txn.sections) {
            for (const auto &e : sec.epochs) {
                const EpochView *v = idx.viewOf(&e);
                ASSERT_NE(v, nullptr);
                ASSERT_EQ(v->size(), e.records.size());
                for (std::size_t i = 0; i < e.records.size(); ++i) {
                    const TraceRecord &r = e.records[i];
                    std::uint32_t h = v->head[i];
                    EXPECT_EQ(EpochView::op(h), r.op);
                    EXPECT_EQ(EpochView::sizeBytes(h), r.size);
                    EXPECT_EQ(EpochView::aux(h), r.aux);
                    EXPECT_EQ(v->pc[i], r.pc);
                    if (r.op == TraceOp::Load ||
                        r.op == TraceOp::Store)
                        EXPECT_EQ(v->memAddr(i), r.addr);
                    else
                        EXPECT_EQ(v->value(i), r.addr);
                }
            }
        }
    }
}

TEST(TraceIndex, FootprintListsNonEscapedMemoryLines)
{
    IndexBuilder b;
    auto e0 = [&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(9)), 8);
        t.load(b.pc(), b.addr(word(4)), 8);
        t.escapeBegin(b.pc());
        t.store(b.pc(), b.addr(word(200)), 8); // escaped: excluded
        t.escapeEnd(b.pc());
        t.load(b.pc(), b.addr(word(4) + 1), 8); // same line as word(4)
    };
    auto w = b.loopTxn({e0, e0});

    TraceIndex idx(w, kLineBytes);
    const EpochTrace &e = w.txns.at(0).sections.at(1).epochs.at(0);
    const EpochView *v = idx.viewOf(&e);
    std::vector<Addr> expect = {b.lineOf(word(4)), b.lineOf(word(9))};
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(v->footprint, expect);
}

TEST(TraceIndex, BuildCounterCountsOnlyFullAnalyses)
{
    IndexBuilder b;
    auto w = b.loopTxn({[&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(2)), 8);
    }});

    std::uint64_t before = TraceIndex::builds();
    TraceIndex idx(w, kLineBytes);
    EXPECT_EQ(TraceIndex::builds(), before + 1);

    std::stringstream ss;
    idx.save(ss);
    auto loaded = TraceIndex::load(ss, w, kLineBytes);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(TraceIndex::builds(), before + 1); // load is not a build
}

TEST(TraceIndex, SaveLoadRoundTripsAnalysis)
{
    IndexBuilder b;
    auto e0 = [&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(100)), 8);
        t.store(b.pc(), b.addr(word(100)), 8);
        t.load(b.pc(), b.addr(word(100)), 8); // covered after stores
    };
    auto e1 = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(word(100)), 8); // conflict line
    };
    auto w = b.loopTxn({e0, e1});

    TraceIndex idx(w, kLineBytes);
    std::stringstream ss;
    idx.save(ss);
    auto loaded = TraceIndex::load(ss, w, kLineBytes);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->matches(&w, kLineBytes));
    EXPECT_EQ(loaded->totals().conflict, idx.totals().conflict);
    EXPECT_EQ(loaded->totals().readShared, idx.totals().readShared);
    EXPECT_EQ(loaded->totals().epochPrivate,
              idx.totals().epochPrivate);
    EXPECT_EQ(loaded->maxSectionLines(), idx.maxSectionLines());

    for (const auto &txn : w.txns) {
        for (const auto &sec : txn.sections) {
            for (const auto &e : sec.epochs) {
                const EpochView *a = idx.viewOf(&e);
                const EpochView *l = loaded->viewOf(&e);
                EXPECT_EQ(a->head, l->head);
                EXPECT_EQ(a->pc, l->pc);
                EXPECT_EQ(a->addr32, l->addr32);
                EXPECT_EQ(a->wide, l->wide);
                EXPECT_EQ(a->addrBase, l->addrBase);
                EXPECT_EQ(a->footprint, l->footprint);
            }
        }
    }
}

TEST(TraceIndex, LoadRejectsMismatchedLineSizeAndShape)
{
    IndexBuilder b;
    auto w = b.loopTxn({[&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(2)), 8);
    }});
    TraceIndex idx(w, kLineBytes);
    std::stringstream ss;
    idx.save(ss);
    EXPECT_EQ(TraceIndex::load(ss, w, 64), nullptr);

    auto other = b.loopTxn({[&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(2)), 8);
        t.store(b.pc(), b.addr(word(3)), 8);
    }});
    std::stringstream ss2;
    idx.save(ss2);
    EXPECT_EQ(TraceIndex::load(ss2, other, kLineBytes), nullptr);

    std::stringstream junk("not an index");
    EXPECT_EQ(TraceIndex::load(junk, w, kLineBytes), nullptr);
}

TEST(TraceIndex, ViewOfForeignEpochDies)
{
    IndexBuilder b;
    auto w = b.loopTxn({[&b](Tracer &t) {
        t.store(b.pc(), b.addr(word(2)), 8);
    }});
    auto other = b.loopTxn({[&b](Tracer &t) {
        t.load(b.pc(), b.addr(word(2)), 8);
    }});
    TraceIndex idx(w, kLineBytes);
    const EpochTrace &foreign =
        other.txns.at(0).sections.at(1).epochs.at(0);
    EXPECT_DEATH(idx.viewOf(&foreign), "");
}

} // namespace
} // namespace tlsim
