/**
 * @file
 * Latch/escape-region corner cases in the TLS machine: multi-waiter
 * hand-off, squashes of waiters and holders, latches held across
 * separate escape regions, multi-latch ordering, and the
 * latch-discipline runtime check.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

class LatchBuilder
{
  public:
    LatchBuilder() : mem_(8192, 0)
    {
        pc_ = SiteRegistry::instance().intern("latch.test.site");
    }

    void *addr(std::size_t w) { return &mem_.at(w); }
    Pc pc() const { return pc_; }

    void
    critical(Tracer &t, std::uint64_t latch, unsigned insts)
    {
        t.escapeBegin(pc_);
        t.latchAcquire(pc_, latch);
        t.compute(pc_, insts);
        t.latchRelease(pc_, latch);
        t.escapeEnd(pc_);
    }

    WorkloadTrace
    loopTxn(const std::vector<std::function<void(Tracer &)>> &bodies)
    {
        Tracer::Options o;
        o.parallelMode = true;
        Tracer t(o);
        t.txnBegin();
        t.loopBegin();
        for (const auto &b : bodies) {
            t.iterBegin();
            b(t);
        }
        t.loopEnd();
        t.txnEnd();
        return t.takeWorkload();
    }

  private:
    std::vector<std::uint64_t> mem_;
    Pc pc_;
};

MachineConfig
cfg(unsigned k = 8)
{
    MachineConfig c;
    c.tls.subthreadsPerThread = k;
    c.tls.subthreadSpacing = 1000;
    return c;
}

TEST(MachineLatch, FourWayContentionSerializesTheCriticalSection)
{
    LatchBuilder b;
    auto body = [&b](Tracer &t) {
        t.compute(b.pc(), 200);
        b.critical(t, 7, 8000);
        t.compute(b.pc(), 200);
    };
    auto w = b.loopTxn({body, body, body, body});

    TlsMachine m(cfg());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_GE(r.latchWaits, 3u);
    // The 8k-instruction critical sections serialize: makespan is at
    // least 4 x 2000 cycles of critical work.
    EXPECT_GE(r.makespan, 4u * 8000 / 4);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineLatch, WaiterCanBeSquashedWhileQueued)
{
    LatchBuilder b;
    // Epoch 0 holds the latch for a long time and then stores to the
    // word epochs 1..3 read *before* queueing on the latch: the squash
    // must pull waiters out of the queue cleanly.
    auto holder = [&b](Tracer &t) {
        b.critical(t, 9, 40000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto waiter = [&b](Tracer &t) {
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 500);
        b.critical(t, 9, 2000);
        t.compute(b.pc(), 500);
    };
    auto w = b.loopTxn({holder, waiter, waiter, waiter});

    TlsMachine m(cfg());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_GE(r.squashes, 1u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);

    // Determinism through the squash-while-queued path.
    RunResult r2 = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.makespan, r2.makespan);
}

TEST(MachineLatch, HolderSquashReleasesTheLatch)
{
    LatchBuilder b;
    // Epoch 1 acquires the latch, then (still holding it, inside its
    // critical section via a speculative load between two escape
    // regions) reads a word epoch 0 writes late: the violation handler
    // must release the latch so epochs 2/3 are not wedged.
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 30000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto holder = [&b](Tracer &t) {
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 11);
        t.compute(b.pc(), 300);
        t.escapeEnd(b.pc());
        // Speculative work while holding the latch.
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 40000);
        t.escapeBegin(b.pc());
        t.latchRelease(b.pc(), 11);
        t.escapeEnd(b.pc());
    };
    auto contender = [&b](Tracer &t) {
        t.compute(b.pc(), 100);
        b.critical(t, 11, 1000);
    };
    auto w = b.loopTxn({writer, holder, contender, contender});

    TlsMachine m(cfg());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_GE(r.squashes, 1u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineLatch, AcquireAndReleaseInSeparateRegionsSurviveRewind)
{
    LatchBuilder b;
    auto writer = [&b](Tracer &t) {
        t.compute(b.pc(), 25000);
        t.store(b.pc(), b.addr(64), 8);
    };
    auto spanner = [&b](Tracer &t) {
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 13);
        t.escapeEnd(b.pc());
        t.compute(b.pc(), 3000);
        t.escapeBegin(b.pc());
        t.latchRelease(b.pc(), 13);
        t.escapeEnd(b.pc());
        // The violated load sits after the release: the rewind crosses
        // both completed regions, which must not be re-executed.
        t.load(b.pc(), b.addr(64), 8);
        t.compute(b.pc(), 9000);
    };
    auto w = b.loopTxn({writer, spanner});

    TlsMachine m(cfg(1)); // all-or-nothing: rewind to epoch start
    RunResult r = m.run(w, ExecMode::Tls);
    ASSERT_GE(r.squashes, 1u);
    EXPECT_GE(r.escapeSkips, 2u); // both regions skipped on replay
    EXPECT_EQ(r.epochs, 2u);
}

TEST(MachineLatch, TwoLatchOrderingDoesNotDeadlock)
{
    LatchBuilder b;
    auto body = [&b](Tracer &t) {
        t.escapeBegin(b.pc());
        t.latchAcquire(b.pc(), 21);
        t.latchAcquire(b.pc(), 22); // consistent global order
        t.compute(b.pc(), 3000);
        t.latchRelease(b.pc(), 22);
        t.latchRelease(b.pc(), 21);
        t.escapeEnd(b.pc());
        t.compute(b.pc(), 500);
    };
    auto w = b.loopTxn({body, body, body, body});
    TlsMachine m(cfg());
    RunResult r = m.run(w, ExecMode::Tls);
    EXPECT_EQ(r.epochs, 4u);
    EXPECT_EQ(r.total.total(), r.makespan * 4);
}

TEST(MachineLatchDeathTest, EpochEndingWithHeldLatchPanics)
{
    LatchBuilder b;
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.loopBegin();
    t.iterBegin();
    t.escapeBegin(b.pc());
    t.latchAcquire(b.pc(), 31);
    t.escapeEnd(b.pc()); // capture allows it; the machine must not
    t.compute(b.pc(), 100);
    t.loopEnd();
    t.txnEnd();
    auto w = t.takeWorkload();
    TlsMachine m(cfg());
    EXPECT_DEATH(m.run(w, ExecMode::Tls), "latch");
}

TEST(MachineLatch, SerialModeLatchesAreUncontended)
{
    LatchBuilder b;
    auto body = [&b](Tracer &t) {
        b.critical(t, 41, 2000);
    };
    auto w = b.loopTxn({body, body, body});
    TlsMachine m(cfg());
    RunResult r = m.run(w, ExecMode::Serial);
    EXPECT_EQ(r.latchWaits, 0u);
    EXPECT_EQ(r.total[Cat::LatchStall], 0u);
}

} // namespace
} // namespace tlsim
