#include <gtest/gtest.h>

#include "core/specstate.h"

namespace tlsim {
namespace {

// 2 threads x 4 sub-thread contexts: thread 0 = ctx 0..3, thread 1 =
// ctx 4..7.
constexpr unsigned kK = 4;

std::uint64_t
threadMask(unsigned cpu, unsigned up_to_sub)
{
    return ((std::uint64_t{2} << up_to_sub) - 1) << (cpu * kK);
}

TEST(SpecState, ExposedLoadSetsSl)
{
    SpecState s(8);
    EXPECT_TRUE(s.recordLoad(0, threadMask(0, 0), 100, 0x1));
    EXPECT_EQ(s.slHolders(100), 0x1u);
    EXPECT_TRUE(s.lineHasSpecState(100));
}

TEST(SpecState, LoadCoveredByOwnStoreIsNotExposed)
{
    SpecState s(8);
    s.recordStore(0, 100, 0x3);
    EXPECT_FALSE(s.recordLoad(0, threadMask(0, 0), 100, 0x1));
    EXPECT_EQ(s.slHolders(100), 0u);
}

TEST(SpecState, LoadCoveredByEarlierSubthreadStore)
{
    SpecState s(8);
    s.recordStore(0, 100, 0xF); // sub-thread 0 stores words 0-3
    // Sub-thread 2 loads word 1: covered by the same thread.
    EXPECT_FALSE(s.recordLoad(2, threadMask(0, 2), 100, 0x2));
}

TEST(SpecState, PartiallyCoveredLoadIsExposed)
{
    SpecState s(8);
    s.recordStore(0, 100, 0x1);
    EXPECT_TRUE(s.recordLoad(0, threadMask(0, 0), 100, 0x3));
    EXPECT_EQ(s.slHolders(100), 0x1u);
}

TEST(SpecState, OtherThreadsStoreDoesNotCover)
{
    SpecState s(8);
    s.recordStore(4, 100, 0xFF); // thread 1 stores
    // Thread 0's load is still exposed (it must not read thread 1's
    // speculative data through its own-store test).
    EXPECT_TRUE(s.recordLoad(0, threadMask(0, 0), 100, 0x1));
}

TEST(SpecState, StateHoldersCombinesSlAndSm)
{
    SpecState s(8);
    s.recordLoad(1, threadMask(0, 1), 100, 0x1);
    s.recordStore(5, 100, 0x2);
    EXPECT_EQ(s.stateHolders(100), (1ull << 1) | (1ull << 5));
    EXPECT_EQ(s.slHolders(100), 1ull << 1);
}

TEST(SpecState, ClearContextReportsDeadVersions)
{
    SpecState s(8);
    s.recordStore(1, 100, 0x1); // thread 0, sub 1
    s.recordStore(2, 100, 0x2); // thread 0, sub 2

    // Clearing sub 2 first: sub 1 still modifies the line -> alive.
    auto dead2 = s.clearContext(2, threadMask(0, 1));
    EXPECT_TRUE(dead2.empty());
    // Clearing sub 1 with no surviving contexts -> version dead.
    auto dead1 = s.clearContext(1, 0);
    ASSERT_EQ(dead1.size(), 1u);
    EXPECT_EQ(dead1[0], 100u);
    EXPECT_FALSE(s.lineHasSpecState(100));
    EXPECT_EQ(s.liveLines(), 0u);
}

TEST(SpecState, ClearContextDropsSlOnly)
{
    SpecState s(8);
    s.recordLoad(0, threadMask(0, 0), 100, 0x1);
    auto dead = s.clearContext(0, 0);
    EXPECT_TRUE(dead.empty()); // loads never create versions
    EXPECT_EQ(s.slHolders(100), 0u);
}

TEST(SpecState, ClearThreadWipesAllContexts)
{
    SpecState s(8);
    for (unsigned sub = 0; sub < kK; ++sub) {
        s.recordLoad(sub, threadMask(0, sub), 200 + sub, 0x1);
        s.recordStore(sub, 300 + sub, 0x1);
    }
    s.clearThread(threadMask(0, kK - 1), 0, kK);
    for (unsigned sub = 0; sub < kK; ++sub) {
        EXPECT_FALSE(s.lineHasSpecState(200 + sub));
        EXPECT_FALSE(s.lineHasSpecState(300 + sub));
    }
    EXPECT_EQ(s.liveLines(), 0u);
}

TEST(SpecState, ThreadModifiedLine)
{
    SpecState s(8);
    s.recordStore(1, 100, 0x1);
    EXPECT_TRUE(s.threadModifiedLine(threadMask(0, 3), 100));
    EXPECT_FALSE(s.threadModifiedLine(threadMask(1, 3), 100));
}

TEST(SpecState, ContextReuseAfterClearIsClean)
{
    SpecState s(8);
    s.recordStore(0, 100, 0x1);
    s.clearContext(0, 0);
    // Reused context sees no stale bits.
    EXPECT_TRUE(s.recordLoad(0, threadMask(0, 0), 100, 0x1));
}

TEST(SpecStateDeathTest, TooManyContextsPanics)
{
    EXPECT_DEATH(SpecState s(65), "at most");
}

TEST(SpecState, ResetClearsAll)
{
    SpecState s(8);
    s.recordStore(0, 100, 0x1);
    s.reset();
    EXPECT_FALSE(s.lineHasSpecState(100));
    EXPECT_TRUE(s.recordLoad(0, threadMask(0, 0), 100, 0x1));
}

} // namespace
} // namespace tlsim
