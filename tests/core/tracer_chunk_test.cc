#include <gtest/gtest.h>

#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"

namespace tlsim {
namespace {

TEST(TracerChunking, LongComputeSplitsIntoBoundedRecords)
{
    Tracer t;
    t.txnBegin();
    t.compute(1, 7000);
    t.txnEnd();
    const auto &recs =
        t.workload().txns.at(0).sections.at(0).epochs.at(0).records;
    ASSERT_EQ(recs.size(), 4u); // 2000+2000+2000+1000
    InstCount total = 0;
    for (const auto &r : recs) {
        EXPECT_EQ(r.op, TraceOp::Compute);
        EXPECT_LE(r.addr, Tracer::kMaxComputeChunk);
        total += r.addr;
    }
    EXPECT_EQ(total, 7000u);
}

TEST(TracerChunking, ExactMultipleProducesNoEmptyTail)
{
    Tracer t;
    t.txnBegin();
    t.compute(1, 4000);
    t.txnEnd();
    const auto &recs =
        t.workload().txns.at(0).sections.at(0).epochs.at(0).records;
    EXPECT_EQ(recs.size(), 2u);
}

TEST(TracerChunking, ChunksPreserveComputeClass)
{
    Tracer t;
    t.txnBegin();
    t.compute(1, 5000, ComputeClass::Fp);
    t.txnEnd();
    for (const auto &r : t.workload()
                             .txns.at(0)
                             .sections.at(0)
                             .epochs.at(0)
                             .records)
        EXPECT_EQ(static_cast<ComputeClass>(r.aux), ComputeClass::Fp);
}

TEST(TracerChunking, SubthreadsCanCheckpointInsideLongComputation)
{
    // A single 40k-instruction computation must not prevent the
    // machine from spawning sub-threads along the way.
    std::vector<std::uint64_t> mem(64);
    Pc pc = SiteRegistry::instance().intern("chunk.test");
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.loopBegin();
    t.iterBegin();
    t.compute(pc, 40000);
    t.loopEnd();
    t.txnEnd();

    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = 8;
    cfg.tls.subthreadSpacing = 5000;
    TlsMachine m(cfg);
    RunResult r = m.run(t.takeWorkload(), ExecMode::Tls);
    EXPECT_EQ(r.subthreadsStarted, 7u); // the context budget
}

TEST(Machine, MaximumContextConfigurationWorks)
{
    // 8 CPUs x 8 sub-threads = 64 contexts: the SpecState limit.
    std::vector<std::uint64_t> mem(8192);
    Pc pc = SiteRegistry::instance().intern("maxctx.test");
    Tracer::Options o;
    o.parallelMode = true;
    Tracer t(o);
    t.txnBegin();
    t.loopBegin();
    for (int e = 0; e < 16; ++e) {
        t.iterBegin();
        t.compute(pc, 8000);
        t.load(pc, &mem[e % 4], 8);   // some sharing
        t.store(pc, &mem[64 + e], 8); // context 63 exercises bit 63
        t.compute(pc, 4000);
    }
    t.loopEnd();
    t.txnEnd();

    MachineConfig cfg;
    cfg.tls.numCpus = 8;
    cfg.tls.subthreadsPerThread = 8;
    cfg.tls.subthreadSpacing = 1000;
    TlsMachine m(cfg);
    RunResult r = m.run(t.takeWorkload(), ExecMode::Tls);
    EXPECT_EQ(r.epochs, 16u);
    EXPECT_EQ(r.total.total(), r.makespan * 8);
}

TEST(MachineDeathTest, TooManyContextsIsFatal)
{
    MachineConfig cfg;
    cfg.tls.numCpus = 8;
    cfg.tls.subthreadsPerThread = 9; // 72 > 64
    // SpecState's constructor panics before the machine's own fatal()
    // check runs; either way the process dies with a context message.
    EXPECT_DEATH(TlsMachine m(cfg), "contexts|at most");
}

} // namespace
} // namespace tlsim
