/**
 * @file
 * Capture tracer: the instrumentation channel between the natively
 * executing database / workload code and the trace-driven simulator.
 *
 * The workload calls txnBegin()/txnEnd() around each transaction and
 * loopBegin()/iterBegin()/loopEnd() around the loop it wants
 * parallelized; everything else (load/store/compute/branch/latch) is
 * called from the database as it runs. When `parallelMode` is false the
 * loop markers are ignored and the capture is a plain sequential trace
 * (the paper's SEQUENTIAL binary); when true, iterations become epochs
 * and each epoch is charged the TLS spawn overhead (the paper's
 * TLS-SEQ / parallel binaries).
 */

#ifndef CORE_TRACER_H
#define CORE_TRACER_H

#include <cstddef>
#include <cstdint>

#include "base/addr.h"
#include "base/types.h"
#include "core/trace.h"

namespace tlsim {

/** Records the execution of instrumented code into a WorkloadTrace. */
class Tracer
{
  public:
    struct Options
    {
        bool parallelMode = false;    ///< honor loop markers
        unsigned spawnOverheadInsts = 100; ///< software cost per epoch
        unsigned lineBytes = 32;      ///< for splitting wide accesses
    };

    Tracer() : Tracer(Options{}) {}
    explicit Tracer(Options opts);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // --- Transaction / loop structure (workload code) ---------------
    void txnBegin();
    void txnEnd();
    void loopBegin();
    void iterBegin();
    void loopEnd();

    /** All transactions captured so far. */
    WorkloadTrace &workload() { return workload_; }
    const WorkloadTrace &workload() const { return workload_; }
    /** Move the capture out and reset. */
    WorkloadTrace takeWorkload();

    // --- Events (database code) --------------------------------------
    void
    load(Pc pc, const void *p, std::size_t size, bool dependent = false)
    {
        if (!capturing_)
            return;
        memAccess(TraceOp::Load, pc, reinterpret_cast<Addr>(p), size,
                  dependent);
    }

    void
    store(Pc pc, const void *p, std::size_t size)
    {
        if (!capturing_)
            return;
        memAccess(TraceOp::Store, pc, reinterpret_cast<Addr>(p), size,
                  false);
    }

    /**
     * Compute records are split into chunks of at most
     * kMaxComputeChunk instructions so the replay machine can place
     * sub-thread checkpoints (and interleave CPUs) inside long
     * computations.
     */
    static constexpr std::uint64_t kMaxComputeChunk = 2000;

    /** Initial record capacity of a freshly opened epoch. */
    static constexpr std::size_t kRecordsReserve = 256;

    void
    compute(Pc pc, std::uint64_t n, ComputeClass cls = ComputeClass::Int)
    {
        if (!capturing_ || n == 0)
            return;
        while (n > 0) {
            std::uint64_t chunk = std::min(n, kMaxComputeChunk);
            append({TraceOp::Compute, 0,
                    static_cast<std::uint16_t>(cls), pc, chunk});
            n -= chunk;
        }
    }

    void
    branch(Pc pc, bool taken)
    {
        if (!capturing_)
            return;
        append({TraceOp::Branch, 0,
                static_cast<std::uint16_t>(taken ? kAuxTaken : 0), pc, 0});
    }

    void latchAcquire(Pc pc, std::uint64_t latch_id);
    void latchRelease(Pc pc, std::uint64_t latch_id);
    void escapeBegin(Pc pc);
    void escapeEnd(Pc pc);

    bool capturing() const { return capturing_; }
    bool parallelMode() const { return opts_.parallelMode; }

  private:
    void memAccess(TraceOp op, Pc pc, Addr a, std::size_t size,
                   bool dependent);
    void append(const TraceRecord &rec);
    void openSection(bool parallel);
    void openEpoch(bool add_spawn_overhead);
    void closeEpoch();

    /** The epoch currently being appended to. */
    EpochTrace &cur();

    Options opts_;
    LineGeom geom_;
    WorkloadTrace workload_;

    /**
     * Record-buffer arena: the capacity salvaged from sections that
     * txnEnd() drops (every transaction opens a trailing sequential
     * section that usually stays empty) seeds the next epoch's record
     * vector, so steady-state capture recycles one buffer per epoch
     * instead of growing a fresh one. Tallies flush to the
     * "replay.*" global counter group in takeWorkload().
     */
    std::vector<TraceRecord> spareRecords_;
    std::uint64_t captureEpochs_ = 0;
    std::uint64_t captureBufReuses_ = 0;

    bool capturing_ = false;  ///< inside txnBegin/txnEnd
    bool inLoop_ = false;     ///< inside a marked parallel loop
    bool pendingLoop_ = false;///< loopBegin seen, first iterBegin not yet
    unsigned escapeDepth_ = 0;
    std::uint32_t escapeBeginIdx_ = 0;
};

/**
 * RAII helper for escaped regions:
 *     { EscapedRegion esc(tracer, site.pc); ... }
 */
class EscapedRegion
{
  public:
    EscapedRegion(Tracer &tracer, Pc pc) : tracer_(tracer), pc_(pc)
    {
        tracer_.escapeBegin(pc_);
    }

    ~EscapedRegion() { tracer_.escapeEnd(pc_); }

    EscapedRegion(const EscapedRegion &) = delete;
    EscapedRegion &operator=(const EscapedRegion &) = delete;

  private:
    Tracer &tracer_;
    Pc pc_;
};

} // namespace tlsim

#endif // CORE_TRACER_H
