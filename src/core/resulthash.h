/**
 * @file
 * Canonical digests of the simulator's result-carrying structures for
 * the --det-probe determinism probe (base/dethash.h). Field order is
 * fixed here, independently of struct layout, so the digest protocol
 * survives refactors that reorder members; every field that the
 * benches print or serialize is covered, including the order-carrying
 * vectors (violatedLines, commitOrder) whose sequence IS the result.
 */

#ifndef CORE_RESULTHASH_H
#define CORE_RESULTHASH_H

#include "base/dethash.h"
#include "core/machine.h"
#include "core/trace.h"

namespace tlsim {
namespace det {

/** Digest of one run's complete RunResult. */
inline std::uint64_t
hashRunResult(const RunResult &r)
{
    Hash h;
    h.u64(r.makespan);
    for (std::uint64_t c : r.total.cycles)
        h.u64(c);
    h.u64(r.txns);
    h.u64(r.epochs);
    h.u64(r.totalInsts);
    h.u64(r.primaryViolations);
    h.u64(r.secondaryViolations);
    h.u64(r.squashes);
    h.u64(r.rewoundInsts);
    h.u64(r.subthreadsStarted);
    h.u64(r.overflowEvents);
    h.u64(r.latchWaits);
    h.u64(r.escapeSkips);
    h.u64(r.predictorStalls);
    h.u64(r.recordsReplayed);
    h.u64(r.l1Hits);
    h.u64(r.l1Misses);
    h.u64(r.l2Hits);
    h.u64(r.l2Misses);
    h.u64(r.victimHits);
    h.u64(r.branches);
    h.u64(r.mispredicts);
    h.u64(r.auditChecks);
    h.u64(r.violatedLines.size());
    for (Addr a : r.violatedLines)
        h.u64(a);
    h.u64(r.commitOrder.size());
    for (std::uint64_t seq : r.commitOrder)
        h.u64(seq);
    return h.value();
}

/**
 * Digest of a captured workload: every record byte-for-byte plus the
 * section/epoch structure. Two processes sharing a --trace-cache
 * replay the same capture and therefore agree on this digest; a fresh
 * capture embeds process-specific heap addresses, so capture-stage
 * digests are only comparable across runs sharing a cache (exactly
 * the golden/det ctest setup).
 */
inline std::uint64_t
hashWorkloadTrace(const WorkloadTrace &w)
{
    Hash h;
    h.u64(w.txns.size());
    for (const TransactionTrace &txn : w.txns) {
        h.u64(txn.sections.size());
        for (const TraceSection &sec : txn.sections) {
            h.u64(sec.parallel ? 1 : 0);
            h.u64(sec.epochs.size());
            for (const EpochTrace &e : sec.epochs) {
                h.u64(e.records.size());
                for (const TraceRecord &r : e.records) {
                    h.u64(static_cast<std::uint64_t>(r.op));
                    h.u64(r.size);
                    h.u64(r.aux);
                    h.u64(r.pc);
                    h.u64(r.addr);
                }
                h.u64(e.instCount);
                h.u64(e.specInstCount);
                h.u64(e.escapeSpans.size());
                for (const auto &[b, en] : e.escapeSpans) {
                    h.u64(b);
                    h.u64(en);
                }
            }
        }
    }
    return h.value();
}

} // namespace det
} // namespace tlsim

#endif // CORE_RESULTHASH_H
