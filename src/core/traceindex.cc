#include "core/traceindex.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "base/addr.h"
#include "base/detorder.h"
#include "base/log.h"
#include "base/narrow.h"

namespace tlsim {

namespace {

std::atomic<std::uint64_t> g_builds{0};

constexpr std::uint32_t kIndexMagic = 0x58494c54; // "TLIX"
constexpr std::uint32_t kIndexVersion = 1;
constexpr std::uint32_t kNoEpochIdx =
    std::numeric_limits<std::uint32_t>::max();

bool
isMemOp(TraceOp op)
{
    return op == TraceOp::Load || op == TraceOp::Store;
}

/** Epochs of a workload in deterministic traversal order. */
std::vector<const EpochTrace *>
epochsInOrder(const WorkloadTrace &w)
{
    std::vector<const EpochTrace *> out;
    for (const TransactionTrace &txn : w.txns)
        for (const TraceSection &sec : txn.sections)
            for (const EpochTrace &e : sec.epochs)
                out.push_back(&e);
    return out;
}

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
get(std::istream &is, T *v)
{
    is.read(reinterpret_cast<char *>(v), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

std::uint64_t
TraceIndex::builds()
{
    return g_builds.load(std::memory_order_relaxed);
}

TraceIndex::TraceIndex(const WorkloadTrace &workload,
                       unsigned line_bytes, PrivateTag)
    : source_(&workload), lineBytes_(line_bytes)
{
    if (!isPowerOf2(line_bytes))
        panic("TraceIndex: line size %u not a power of two",
              line_bytes);
}

TraceIndex::TraceIndex(const WorkloadTrace &workload,
                       unsigned line_bytes)
    : TraceIndex(workload, line_bytes, PrivateTag{})
{
    EpochFlags flags;
    analyse(flags);
    pack(flags);
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

/**
 * The analysis pass. For each parallel section:
 *
 *  1. classify lines. A line is a conflict candidate iff some epoch i
 *     stores it (escaped stores included: they also drive the replay
 *     engine's violation scan) and some epoch j > i loads or stores
 *     it. Otherwise it is read-shared if several epochs touch it,
 *     epoch-private if only one does.
 *
 *  2. mark covered loads. Within one epoch, a non-escaped load is
 *     covered iff its word mask is a subset of the union of the word
 *     masks of the epoch's earlier non-escaped stores to the same
 *     line. This static union equals the dynamic own-thread SM union
 *     the SpecState merge computes at that record, under any rewind /
 *     escape-skip / oldest-transition history (see traceindex.h).
 */
void
TraceIndex::analyse(EpochFlags &flags)
{
    const LineGeom geom(lineBytes_);

    struct LineInfo
    {
        std::uint32_t minStore = kNoEpochIdx; ///< first storing epoch
        std::uint32_t firstEpoch = 0;         ///< first accessing epoch
        std::uint32_t lastEpoch = 0;          ///< last accessing epoch
        bool multi = false;                   ///< >1 accessing epoch
    };

    std::unordered_map<Addr, LineInfo> lines;
    std::unordered_map<Addr, std::uint32_t> own;

    for (const TransactionTrace &txn : source_->txns) {
        for (const TraceSection &sec : txn.sections) {
            if (!sec.parallel) {
                for (const EpochTrace &e : sec.epochs)
                    flags.emplace_back(e.records.size(), 0);
                continue;
            }

            // Pass 1: per-line access summary across the epochs.
            lines.clear();
            for (std::uint32_t ei = 0; ei < sec.epochs.size(); ++ei) {
                for (const TraceRecord &r : sec.epochs[ei].records) {
                    if (!isMemOp(r.op))
                        continue;
                    Addr line = geom.lineNum(r.addr);
                    auto [it, fresh] = lines.try_emplace(line);
                    LineInfo &li = it->second;
                    if (fresh)
                        li.firstEpoch = ei;
                    else if (li.firstEpoch != ei)
                        li.multi = true;
                    li.lastEpoch = ei;
                    if (r.op == TraceOp::Store)
                        li.minStore = std::min(li.minStore, ei);
                }
            }

            for (const auto &[line, li] : det::OrderedView(lines)) {
                if (li.minStore != kNoEpochIdx &&
                    li.lastEpoch > li.minStore)
                    ++totals_.conflict;
                else if (li.multi)
                    ++totals_.readShared;
                else
                    ++totals_.epochPrivate;
            }
            maxSectionLines_ =
                std::max(maxSectionLines_, lines.size());

            // Pass 2: per-record flags.
            for (const EpochTrace &e : sec.epochs) {
                flags.emplace_back(e.records.size(), 0);
                std::vector<std::uint8_t> &f = flags.back();
                own.clear();
                bool esc = false;
                for (std::size_t i = 0; i < e.records.size(); ++i) {
                    const TraceRecord &r = e.records[i];
                    if (r.op == TraceOp::EscapeBegin) {
                        esc = true;
                        continue;
                    }
                    if (r.op == TraceOp::EscapeEnd) {
                        esc = false;
                        continue;
                    }
                    if (!isMemOp(r.op))
                        continue;
                    Addr line = geom.lineNum(r.addr);
                    const LineInfo &li = lines.at(line);
                    if (li.minStore != kNoEpochIdx &&
                        li.lastEpoch > li.minStore)
                        f[i] |= 1; // conflict candidate
                    if (esc)
                        continue;
                    std::uint32_t wm = geom.wordMask(r.addr, r.size);
                    if (r.op == TraceOp::Store) {
                        own[line] |= wm;
                    } else {
                        auto it = own.find(line);
                        if (it != own.end() &&
                            (wm & ~it->second) == 0)
                            f[i] |= 2; // covered load
                    }
                }
            }
        }
    }
}

void
TraceIndex::pack(const EpochFlags &flags)
{
    std::vector<const EpochTrace *> epochs = epochsInOrder(*source_);
    if (flags.size() != epochs.size())
        panic("TraceIndex: flag set covers %zu epochs, workload has "
              "%zu",
              flags.size(), epochs.size());

    const LineGeom geom(lineBytes_);
    views_.resize(epochs.size());
    viewIdx_.reserve(epochs.size());

    for (std::size_t ei = 0; ei < epochs.size(); ++ei) {
        const EpochTrace &e = *epochs[ei];
        const std::vector<std::uint8_t> &f = flags[ei];
        EpochView &v = views_[ei];
        const std::size_t n = e.records.size();

        std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
        for (const TraceRecord &r : e.records)
            if (isMemOp(r.op))
                base = std::min(base, r.addr);
        v.addrBase =
            base == std::numeric_limits<std::uint64_t>::max() ? 0
                                                              : base;

        v.head.resize(n);
        v.pc.resize(n);
        v.addr32.resize(n);
        std::vector<Addr> fp;
        bool esc = false;
        std::uint64_t spec = 0; // machine's specInsts before record i

        for (std::size_t i = 0; i < n; ++i) {
            const TraceRecord &r = e.records[i];
            if (!esc && r.op == TraceOp::Load && (f[i] & 1) &&
                !(f[i] & 2) && spec > 0 &&
                (v.riskOffsets.empty() ||
                 v.riskOffsets.back() !=
                     checkedNarrow<std::uint32_t>(spec)))
                v.riskOffsets.push_back(
                    checkedNarrow<std::uint32_t>(spec));
            if (r.size > EpochView::kSizeMask)
                panic("TraceIndex: record size %u exceeds the packed "
                      "head's 7-bit field",
                      r.size);
            // Widening packs: brace-init is narrowing-proof by
            // language rule, so a future field growth fails to
            // compile instead of silently truncating.
            std::uint32_t head =
                (static_cast<unsigned>(r.op) & EpochView::kOpMask) |
                (std::uint32_t{r.size} << EpochView::kSizeShift) |
                (std::uint32_t{r.aux} << EpochView::kAuxShift);
            if (f[i] & 1)
                head |= EpochView::kConflictBit;
            if (f[i] & 2)
                head |= EpochView::kCoveredBit;

            std::uint64_t raw =
                isMemOp(r.op) ? r.addr - v.addrBase : r.addr;
            if (raw > std::numeric_limits<std::uint32_t>::max()) {
                head |= EpochView::kWideBit;
                v.addr32[i] =
                    checkedNarrow<std::uint32_t>(v.wide.size());
                v.wide.push_back(r.addr);
            } else {
                v.addr32[i] = checkedNarrow<std::uint32_t>(raw);
            }
            v.head[i] = head;
            v.pc[i] = r.pc;

            if (r.op == TraceOp::EscapeBegin) {
                esc = true;
            } else if (r.op == TraceOp::EscapeEnd) {
                esc = false; // brackets charge no speculative insts
            } else if (!esc) {
                if (isMemOp(r.op))
                    fp.push_back(geom.lineNum(r.addr));
                spec += recordInsts(r);
            }
        }

        std::sort(fp.begin(), fp.end());
        fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
        v.footprint = std::move(fp);
        viewIdx_.emplace(&e, checkedNarrow<std::uint32_t>(ei));
    }
}

const EpochView *
TraceIndex::viewOf(const EpochTrace *epoch) const
{
    auto it = viewIdx_.find(epoch);
    if (it == viewIdx_.end())
        panic("TraceIndex: epoch %p is not part of the indexed "
              "workload",
              static_cast<const void *>(epoch));
    return &views_[it->second];
}

// ---------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------

void
TraceIndex::save(std::ostream &os) const
{
    put<std::uint32_t>(os, kIndexMagic);
    put<std::uint32_t>(os, kIndexVersion);
    put<std::uint32_t>(os, lineBytes_);
    put<std::uint64_t>(os, totals_.epochPrivate);
    put<std::uint64_t>(os, totals_.readShared);
    put<std::uint64_t>(os, totals_.conflict);
    put<std::uint64_t>(os, maxSectionLines_);
    put<std::uint64_t>(os, views_.size());
    std::vector<std::uint8_t> buf;
    for (const EpochView &v : views_) {
        put<std::uint64_t>(os, v.size());
        buf.resize(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            buf[i] = checkedNarrow<std::uint8_t>((v.head[i] >> 11) & 3);
        os.write(reinterpret_cast<const char *>(buf.data()),
                 static_cast<std::streamsize>(buf.size()));
    }
}

std::unique_ptr<TraceIndex>
TraceIndex::load(std::istream &is, const WorkloadTrace &workload,
                 unsigned line_bytes)
{
    std::uint32_t magic = 0, version = 0, lb = 0;
    if (!get(is, &magic) || !get(is, &version) || !get(is, &lb) ||
        magic != kIndexMagic || version != kIndexVersion ||
        lb != line_bytes)
        return nullptr;

    std::unique_ptr<TraceIndex> idx(
        new TraceIndex(workload, line_bytes, PrivateTag{}));
    std::uint64_t epoch_count = 0;
    if (!get(is, &idx->totals_.epochPrivate) ||
        !get(is, &idx->totals_.readShared) ||
        !get(is, &idx->totals_.conflict))
        return nullptr;
    std::uint64_t msl = 0;
    if (!get(is, &msl) || !get(is, &epoch_count))
        return nullptr;
    idx->maxSectionLines_ = static_cast<std::size_t>(msl);

    std::vector<const EpochTrace *> epochs = epochsInOrder(workload);
    if (epoch_count != epochs.size()) {
        inform("trace index: epoch count %llu does not match the "
               "workload's %zu, rebuilding",
               static_cast<unsigned long long>(epoch_count),
               epochs.size());
        return nullptr;
    }

    EpochFlags flags(epochs.size());
    for (std::size_t ei = 0; ei < epochs.size(); ++ei) {
        std::uint64_t n = 0;
        if (!get(is, &n) || n != epochs[ei]->records.size()) {
            inform("trace index: record shape mismatch at epoch %zu, "
                   "rebuilding",
                   ei);
            return nullptr;
        }
        flags[ei].resize(n);
        is.read(reinterpret_cast<char *>(flags[ei].data()),
                static_cast<std::streamsize>(n));
        if (!is)
            return nullptr;
        for (std::uint8_t b : flags[ei])
            if (b & ~std::uint8_t{3})
                return nullptr;
    }

    idx->pack(flags);
    return idx;
}

void
TraceIndex::saveFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot write trace index file %s", path.c_str());
    save(os);
    if (!os)
        fatal("error writing trace index file %s", path.c_str());
}

std::unique_ptr<TraceIndex>
TraceIndex::loadFile(const std::string &path,
                     const WorkloadTrace &workload,
                     unsigned line_bytes)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return nullptr;
    return load(is, workload, line_bytes);
}

} // namespace tlsim
