/**
 * @file
 * Trace representation for the trace-driven TLS simulation.
 *
 * The TPC-C transactions execute natively against minidb; every access
 * to database memory is recorded as a TraceRecord carrying the *real*
 * heap address touched, so the cross-epoch data dependences in the
 * trace are the database's real dependences. Pure computation is
 * aggregated into Compute records with per-site instruction costs, and
 * control flow at marked sites becomes Branch records that feed the
 * GShare predictor during replay.
 *
 * A transaction's trace is a sequence of sections; each section is
 * either non-speculative straight-line work or a parallelized loop
 * whose iterations are the epochs (speculative threads).
 */

#ifndef CORE_TRACE_H
#define CORE_TRACE_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** Kind of a trace record. */
enum class TraceOp : std::uint8_t {
    Load,          ///< data load: addr/size; aux bit0 = depends on prev load
    Store,         ///< data store: addr/size
    Compute,       ///< addr = instruction count; aux = ComputeClass
    Branch,        ///< aux bit0 = taken
    LatchAcquire,  ///< addr = latch id (always inside an escaped region)
    LatchRelease,  ///< addr = latch id
    EscapeBegin,   ///< start of escaped (non-speculative) execution
    EscapeEnd,     ///< end of escaped execution
};

/** Functional-unit class of a Compute record (Table 1 latencies). */
enum class ComputeClass : std::uint16_t {
    Int = 0,
    IntMul,
    IntDiv,
    Fp,
    FpDiv,
    FpSqrt,
};

/** aux bit set on a Load that consumes the previous load's result
 *  (pointer chasing); serializes the two in the CPU model. */
inline constexpr std::uint16_t kAuxDependent = 1;
/** aux bit set on a taken Branch. */
inline constexpr std::uint16_t kAuxTaken = 1;
/**
 * For memory records, aux bits 1.. carry the dynamic-instruction cost
 * of the access. The tracer computes it from the access's *total* size
 * and charges it to the first line-split chunk (continuation chunks
 * cost zero), so instruction counts never depend on how a heap address
 * happens to align against cache-line boundaries.
 */
inline constexpr unsigned kAuxInstShift = 1;

/** One event of a trace. 16 bytes. */
struct TraceRecord
{
    TraceOp op;
    std::uint8_t size;  ///< bytes for memory ops (records never span lines)
    std::uint16_t aux;
    Pc pc;
    std::uint64_t addr; ///< address / instruction count / latch id
};

static_assert(sizeof(TraceRecord) == 16, "TraceRecord should stay compact");

/** Dynamic-instruction cost of one record. */
inline InstCount
recordInsts(const TraceRecord &r)
{
    switch (r.op) {
      case TraceOp::Load:
      case TraceOp::Store:
        return r.aux >> kAuxInstShift;
      case TraceOp::Compute:
        return r.addr;
      case TraceOp::Branch:
        return 1;
      case TraceOp::LatchAcquire:
      case TraceOp::LatchRelease:
        return 4; // a few instructions of latch manipulation
      case TraceOp::EscapeBegin:
      case TraceOp::EscapeEnd:
        return 2;
    }
    return 0;
}

/** One epoch (speculative thread): a flat record list plus summaries. */
struct EpochTrace
{
    std::vector<TraceRecord> records;
    InstCount instCount = 0;     ///< total dynamic instructions
    InstCount specInstCount = 0; ///< dynamic instructions outside escapes

    /**
     * Spans of escaped regions as [beginIdx, endIdx] record-index pairs
     * (indices of the EscapeBegin/EscapeEnd records). Filled by the
     * capture tracer; used to skip already-performed escaped work on
     * replay after a rewind.
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> escapeSpans;
};

/** A stretch of a transaction: sequential code or a parallelized loop. */
struct TraceSection
{
    bool parallel = false;
    /** If !parallel, epochs has exactly one entry (the plain trace). */
    std::vector<EpochTrace> epochs;
};

/** The complete trace of one transaction. */
struct TransactionTrace
{
    std::vector<TraceSection> sections;

    InstCount totalInsts() const;
    InstCount parallelInsts() const; ///< insts inside parallel sections
    /** Fraction of dynamic instructions inside parallelized loops. */
    double coverage() const;
    std::uint64_t epochCount() const;
    /** Mean epochs per parallel loop instance (Table 2 threads/txn). */
    double epochsPerLoop() const;
    /** Mean dynamic instructions per epoch (Table 2 thread size). */
    double meanEpochInsts() const;
    /** Mean speculative instructions per epoch. */
    double meanEpochSpecInsts() const;
};

/** A whole captured run: a list of transactions executed back to back. */
struct WorkloadTrace
{
    std::vector<TransactionTrace> txns;
};

} // namespace tlsim

#endif // CORE_TRACE_H
