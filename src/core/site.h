/**
 * @file
 * Synthetic program counters for static code sites.
 *
 * The database is instrumented at source level; every static
 * trace-emission site gets a stable synthetic PC (a 64-byte "code
 * block") plus a symbolic name. The dependence profiler resolves PCs
 * back to names so tuning output reads like
 * "btree.insert.leaf_header <- log.lsn_alloc".
 */

#ifndef CORE_SITE_H
#define CORE_SITE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "base/sync.h"
#include "base/threadannot.h"
#include "base/types.h"

namespace tlsim {

/** Global registry mapping site names to synthetic PCs and back. */
class SiteRegistry
{
  public:
    static SiteRegistry &instance();

    /** Get (or create) the PC for a site name. */
    Pc intern(const std::string &name) TLSIM_EXCLUDES(mtx_);

    /** Resolve a PC to its site name ("<pc 0x...>" if unknown). */
    std::string name(Pc pc) const TLSIM_EXCLUDES(mtx_);

    /** Number of registered sites. */
    std::size_t
    size() const TLSIM_EXCLUDES(mtx_)
    {
        MutexLock lk(mtx_);
        return names_.size();
    }

    /** All site names in PC order (trace-file serialization).
     *  Snapshot by value: interning from another thread must not
     *  invalidate the caller's view. */
    std::vector<std::string>
    allNames() const TLSIM_EXCLUDES(mtx_)
    {
        MutexLock lk(mtx_);
        return names_;
    }

    /** PC of the site at registration index `idx`. */
    static constexpr Pc
    pcOfIndex(std::size_t idx)
    {
        return kCodeBase + static_cast<Pc>(idx) * kBlockBytes;
    }

    /** Base address of the synthetic code segment. */
    static constexpr Pc kCodeBase = 0x0040'0000;
    /** Bytes of synthetic code per site (one I-cache line's worth+). */
    static constexpr Pc kBlockBytes = 64;

  private:
    SiteRegistry() = default;

    mutable Mutex mtx_;
    std::unordered_map<std::string, Pc> byName_ TLSIM_GUARDED_BY(mtx_);
    std::vector<std::string> names_ TLSIM_GUARDED_BY(mtx_);
};

/**
 * A static code site. Declare once (function-local static or
 * namespace-scope) and pass `site.pc` to the tracer.
 */
struct Site
{
    explicit Site(const std::string &name)
        : pc(SiteRegistry::instance().intern(name))
    {
    }

    Pc pc;
};

} // namespace tlsim

#endif // CORE_SITE_H
