/**
 * @file
 * Seam between the TLS machine and an external schedule driver (the
 * model checker's bisimulation replayer, directed protocol tests).
 *
 * The machine's parallel-section loop normally picks the runnable CPU
 * with the smallest local clock. An attached ScheduleOracle overrides
 * that choice: once per scheduler iteration the machine hands it the
 * runnable slots and steps whichever one it returns. Everything else —
 * record execution, sub-thread spawns, violation delivery, commit
 * order — is unchanged, so an oracle turns the machine into a
 * deterministic executor of an externally chosen interleaving while
 * exercising exactly the production protocol paths.
 *
 * Granularity: one pick corresponds to one scheduler iteration, which
 * is either a single stepCpu() (one trace record, one sub-thread
 * spawn, one pending rewind, or the epoch-body completion) or, for an
 * epoch that already finished and holds the homefree token, its
 * commit. This matches the protocol model's transition granularity
 * one-to-one (src/verify/modelcheck), which is what makes bit-exact
 * model-to-machine schedule replay possible.
 */

#ifndef CORE_SCHEDULEHOOKS_H
#define CORE_SCHEDULEHOOKS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** One runnable CPU slot offered to the oracle. */
struct ScheduleChoice
{
    CpuId cpu = 0;
    std::uint64_t seq = 0;   ///< epoch sequence number in the slot
    /** The slot's epoch finished its body and holds the homefree
     *  token: stepping it commits the epoch. */
    bool commitReady = false;
};

/** External scheduler for the machine's parallel sections. */
class ScheduleOracle
{
  public:
    virtual ~ScheduleOracle() = default;

    /**
     * Choose which runnable slot steps next. `choices` is non-empty
     * and ordered by CPU id. Return an index into `choices`, or
     * kDefaultPick to fall back to the machine's min-clock policy for
     * this iteration. Out-of-range picks are a fatal error.
     */
    virtual std::size_t pick(const std::vector<ScheduleChoice> &choices) = 0;

    static constexpr std::size_t kDefaultPick = ~std::size_t{0};
};

} // namespace tlsim

#endif // CORE_SCHEDULEHOOKS_H
