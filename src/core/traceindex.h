/**
 * @file
 * Trace pre-analysis for the replay engine.
 *
 * A captured trace is replayed thousands of times across the sweep
 * points of one experiment, yet the replay inner loop used to pay the
 * full speculative-versioning cost (per-word SM merges on every load,
 * a cross-context violation scan on every store) even though the trace
 * is fully known ahead of time. TraceIndex runs one analysis pass per
 * capture and answers two questions the hot path can then trust:
 *
 *  - line classification: every cache line touched by a parallel
 *    section is *epoch-private* (one epoch only), *read-shared*
 *    (several epochs, but no earlier epoch ever stores a line a later
 *    epoch accesses), or a *conflict candidate* (an earlier epoch
 *    stores it and a later epoch loads or stores it). Only conflict
 *    candidates can ever produce a violation, so stores to the other
 *    two classes skip the violation scan entirely;
 *
 *  - covered loads: a speculative load is *exposed* iff its word mask
 *    is not fully covered by the union of the same epoch's earlier
 *    non-escaped stores. That union is a static property of the record
 *    index — rewinds re-execute exactly the records past the restart
 *    checkpoint, escaped stores never record SM, and the oldest-epoch
 *    transition is absorbing — so the exposure decision the SpecState
 *    merge computes dynamically is precomputed here, bit-exact.
 *
 * The analysis also converts each epoch to a packed structure-of-arrays
 * EpochView (head/pc/addr32 streams with a per-epoch address base and a
 * wide-address escape table) so the replay loop streams 12 bytes per
 * record instead of a 16-byte TraceRecord, with the oracle bits decoded
 * from the same head word as the opcode.
 *
 * The index is a pure acceleration structure: with the oracle enabled
 * or disabled (TlsConfig::useConflictOracle), every RunResult field is
 * identical. Enforced by tests/sim/goldenequiv_test.cc.
 */

#ifndef CORE_TRACEINDEX_H
#define CORE_TRACEINDEX_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/narrow.h"
#include "base/types.h"
#include "core/trace.h"

namespace tlsim {

/**
 * Packed structure-of-arrays view of one EpochTrace.
 *
 * head word layout (32 bits):
 *   [0:2]   op          TraceOp
 *   [3]     wide        addr32 is an index into `wide`
 *   [4:10]  size        access size in bytes (memory ops)
 *   [11]    conflict    line is a conflict candidate (memory ops)
 *   [12]    covered     load fully covered by own earlier stores
 *   [13:15] reserved
 *   [16:31] aux         the record's aux field
 *
 * addr32 holds, unless `wide` is set: addr - addrBase for Load/Store,
 * the raw addr field (compute count / latch id) otherwise.
 */
struct EpochView
{
    static constexpr std::uint32_t kOpMask = 0x7;
    static constexpr std::uint32_t kWideBit = 1u << 3;
    static constexpr unsigned kSizeShift = 4;
    static constexpr std::uint32_t kSizeMask = 0x7F;
    static constexpr std::uint32_t kConflictBit = 1u << 11;
    static constexpr std::uint32_t kCoveredBit = 1u << 12;
    static constexpr unsigned kAuxShift = 16;

    std::vector<std::uint32_t> head;
    std::vector<Pc> pc;
    std::vector<std::uint32_t> addr32;
    std::vector<std::uint64_t> wide; ///< out-of-range address table
    std::uint64_t addrBase = 0;      ///< subtracted from memory addrs

    /** Speculatively-accessible lines this epoch touches, sorted. */
    std::vector<Addr> footprint;

    /**
     * Risk offsets: the speculative-instruction counts at which this
     * epoch issues an exposed load of a conflict-candidate line —
     * i.e. the machine's specInsts value right before the record, the
     * coordinate a sub-thread spawn threshold is compared against.
     * Ascending, deduplicated, 0 excluded (the epoch start is already
     * a checkpoint). Input to predicted-risk sub-thread placement
     * (core/critpath/placement.h).
     */
    std::vector<std::uint32_t> riskOffsets;

    std::size_t size() const { return head.size(); }

    static TraceOp op(std::uint32_t h)
    {
        return static_cast<TraceOp>(h & kOpMask);
    }
    static unsigned sizeBytes(std::uint32_t h)
    {
        return (h >> kSizeShift) & kSizeMask;
    }
    static std::uint16_t aux(std::uint32_t h)
    {
        // Always in range (16 payload bits above kAuxShift); the
        // check folds away, and T3 keeps the cast honest.
        return checkedNarrow<std::uint16_t>(h >> kAuxShift);
    }

    /** Full address of memory record `i` (op Load/Store). */
    Addr memAddr(std::size_t i) const
    {
        std::uint32_t h = head[i];
        return h & kWideBit ? wide[addr32[i]] : addrBase + addr32[i];
    }

    /** Raw addr field of non-memory record `i` (count / latch id). */
    std::uint64_t value(std::size_t i) const
    {
        return head[i] & kWideBit ? wide[addr32[i]] : addr32[i];
    }
};

/**
 * The per-capture analysis product: one EpochView per epoch, line
 * classification totals, and the sizing hints the machine uses to
 * pre-reserve speculative-state storage.
 *
 * A TraceIndex is immutable after construction and references the
 * WorkloadTrace it was built from by address; build it only once the
 * workload has reached its final location (see matches()). Read-only
 * sharing across concurrent simulation points is safe.
 */
class TraceIndex
{
  public:
    struct ClassTotals
    {
        std::uint64_t epochPrivate = 0;
        std::uint64_t readShared = 0;
        std::uint64_t conflict = 0;

        std::uint64_t
        total() const
        {
            return epochPrivate + readShared + conflict;
        }
    };

    /** Run the full analysis (counted by builds()). */
    TraceIndex(const WorkloadTrace &workload, unsigned line_bytes);

    TraceIndex(const TraceIndex &) = delete;
    TraceIndex &operator=(const TraceIndex &) = delete;

    /** True if this index was built from exactly this workload object
     *  at this line size (pointer identity, not content equality). */
    bool matches(const WorkloadTrace *workload,
                 unsigned line_bytes) const
    {
        return source_ == workload && lineBytes_ == line_bytes;
    }

    unsigned lineBytes() const { return lineBytes_; }

    /** View of one epoch of the source workload (panics if foreign). */
    const EpochView *viewOf(const EpochTrace *epoch) const;

    /** Line classification summed over all parallel sections. */
    const ClassTotals &totals() const { return totals_; }

    /** Most distinct speculative lines touched by one parallel
     *  section (SpecState sizing hint). */
    std::size_t maxSectionLines() const { return maxSectionLines_; }

    /** Number of full analysis passes ever run in this process.
     *  bench_figure6_sweep asserts this stays flat across sweep
     *  points: one capture must mean one analysis. */
    static std::uint64_t builds();

    // ----- persistence (alongside the trace in the trace cache) ------

    /** Serialize the analysis results (oracle bits + totals). */
    void save(std::ostream &os) const;

    /**
     * Rebuild an index from a saved analysis and its source workload.
     * Returns nullptr (with a log message) if the file is malformed or
     * does not match the workload's shape / line size; the caller then
     * falls back to a fresh build. Does not count toward builds().
     */
    static std::unique_ptr<TraceIndex>
    load(std::istream &is, const WorkloadTrace &workload,
         unsigned line_bytes);

    static std::unique_ptr<TraceIndex>
    loadFile(const std::string &path, const WorkloadTrace &workload,
             unsigned line_bytes);
    void saveFile(const std::string &path) const;

  private:
    struct PrivateTag
    {
    };

    /** Shared layout setup; flags are filled by analyse() or load(). */
    TraceIndex(const WorkloadTrace &workload, unsigned line_bytes,
               PrivateTag);

    /** One byte per record: bit0 conflict line, bit1 covered load.
     *  Outer index: epochs in workload traversal order. */
    using EpochFlags = std::vector<std::vector<std::uint8_t>>;

    void analyse(EpochFlags &flags);
    void pack(const EpochFlags &flags);

    const WorkloadTrace *source_;
    unsigned lineBytes_;
    ClassTotals totals_;
    std::size_t maxSectionLines_ = 0;

    std::vector<EpochView> views_;
    // tlsdet:allow(D1): viewOf point lookups only, never iterated
    std::unordered_map<const EpochTrace *, std::uint32_t> viewIdx_;
};

} // namespace tlsim

#endif // CORE_TRACEINDEX_H
