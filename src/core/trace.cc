#include "core/trace.h"

namespace tlsim {

InstCount
TransactionTrace::totalInsts() const
{
    InstCount n = 0;
    for (const auto &sec : sections)
        for (const auto &e : sec.epochs)
            n += e.instCount;
    return n;
}

InstCount
TransactionTrace::parallelInsts() const
{
    InstCount n = 0;
    for (const auto &sec : sections) {
        if (!sec.parallel)
            continue;
        for (const auto &e : sec.epochs)
            n += e.instCount;
    }
    return n;
}

double
TransactionTrace::coverage() const
{
    InstCount total = totalInsts();
    return total ? static_cast<double>(parallelInsts()) / total : 0.0;
}

std::uint64_t
TransactionTrace::epochCount() const
{
    std::uint64_t n = 0;
    for (const auto &sec : sections)
        if (sec.parallel)
            n += sec.epochs.size();
    return n;
}

double
TransactionTrace::epochsPerLoop() const
{
    std::uint64_t loops = 0;
    std::uint64_t epochs = 0;
    for (const auto &sec : sections) {
        if (!sec.parallel)
            continue;
        ++loops;
        epochs += sec.epochs.size();
    }
    return loops ? static_cast<double>(epochs) / loops : 0.0;
}

double
TransactionTrace::meanEpochInsts() const
{
    std::uint64_t epochs = 0;
    InstCount insts = 0;
    for (const auto &sec : sections) {
        if (!sec.parallel)
            continue;
        epochs += sec.epochs.size();
        for (const auto &e : sec.epochs)
            insts += e.instCount;
    }
    return epochs ? static_cast<double>(insts) / epochs : 0.0;
}

double
TransactionTrace::meanEpochSpecInsts() const
{
    std::uint64_t epochs = 0;
    InstCount insts = 0;
    for (const auto &sec : sections) {
        if (!sec.parallel)
            continue;
        epochs += sec.epochs.size();
        for (const auto &e : sec.epochs)
            insts += e.specInstCount;
    }
    return epochs ? static_cast<double>(insts) / epochs : 0.0;
}

} // namespace tlsim
