#include "core/machine.h"

#include <algorithm>
#include <ostream>

#include "base/hotpath.h"
#include "base/log.h"
#include "base/stats.h"
#include "core/critpath/placement.h"

namespace tlsim {

namespace {

/** nextSpawn sentinel: no further sub-thread spawns this epoch. */
constexpr std::uint64_t kNoSpawn = ~std::uint64_t{0};

} // namespace

const char *
execModeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Serial: return "serial";
      case ExecMode::Tls: return "tls";
      case ExecMode::NoSpeculation: return "no_speculation";
    }
    return "?";
}

TlsMachine::TlsMachine(const MachineConfig &cfg)
    : cfg_(cfg), k_(cfg.tls.subthreadsPerThread),
      numCpus_(cfg.tls.numCpus), oracleOn_(cfg.tls.useConflictOracle),
      mem_(cfg), spec_(numCpus_ * k_),
      exposed_(numCpus_), runs_(numCpus_), queues_(numCpus_)
{
    cfg_.validate();
    if (numCpus_ * k_ > SpecState::kMaxContexts)
        fatal("numCpus * subthreadsPerThread = %u exceeds the %u "
              "supported contexts",
              numCpus_ * k_, SpecState::kMaxContexts);
    cores_.reserve(numCpus_);
    for (unsigned i = 0; i < numCpus_; ++i)
        cores_.emplace_back(cfg_.cpu, i);
    mem_.setHooks(this);
    cpuSeqs_.assign(numCpus_, kNoEpoch);
    mem_.setEpochSeqArray(cpuSeqs_.data());
}

std::uint64_t
TlsMachine::epochSeq(CpuId cpu) const
{
    if (!tlsActive_ || !runs_[cpu])
        return kNoEpoch;
    return runs_[cpu]->seq;
}

bool
TlsMachine::lineHasSpecState(Addr line_num) const
{
    return spec_.lineHasSpecState(line_num);
}

void
TlsMachine::setAuditSink(AuditSink *sink)
{
    audit_ = sink;
    auditFull_ = audit_ && cfg_.tls.auditLevel == AuditLevel::Full;
}

void
TlsMachine::setScheduleOracle(ScheduleOracle *oracle)
{
    schedOracle_ = oracle;
}

void
TlsMachine::refreshAuditView()
{
    auditView_.spec = &spec_;
    auditView_.mem = &mem_;
    auditView_.numCpus = numCpus_;
    auditView_.k = k_;
    auditView_.cpus.assign(numCpus_, AuditCpuState{});
    for (unsigned cpu = 0; cpu < numCpus_; ++cpu) {
        const EpochRun *r = runs_[cpu].get();
        if (!r || r->st == RunState::Committed)
            continue;
        AuditCpuState &s = auditView_.cpus[cpu];
        s.active = true;
        s.seq = r->seq;
        s.curSub = r->curSub;
        s.pendingSquash = r->pendingSquash;
        s.startTable = &r->startTable;
    }
}

// ---------------------------------------------------------------------
// Top-level run loop
// ---------------------------------------------------------------------

RunResult
TlsMachine::run(const WorkloadTrace &workload, ExecMode mode,
                unsigned warmup_txns, const TraceIndex *index)
{
    // Resolve the trace pre-analysis: use the caller's if it covers
    // exactly this workload at our line size, else (re)build our own.
    // The owned index is cached, so repeated runs of one workload on
    // one machine analyse it once.
    if (!index || !index->matches(&workload, cfg_.mem.lineBytes)) {
        if (!ownedIndex_ ||
            !ownedIndex_->matches(&workload, cfg_.mem.lineBytes))
            ownedIndex_ = std::make_unique<TraceIndex>(
                workload, cfg_.mem.lineBytes);
        index = ownedIndex_.get();
    }
    index_ = index;

    // Full machine reset.
    mem_.reset();
    spec_.reset();
    spec_.reserveLines(index_->maxSectionLines());
    profiler_.reset();
    latches_.clear();
    for (auto &c : cores_)
        c.reset();
    for (auto &t : exposed_)
        t.reset();
    for (auto &q : queues_)
        q.clear();
    for (auto &r : runs_)
        r.reset();
    std::fill(cpuSeqs_.begin(), cpuSeqs_.end(), kNoEpoch);
    nextSeq_ = 0;
    nextCommitSeq_ = 0;
    lastCommitTime_ = 0;
    predictedLoads_.clear();
    stats_ = RunResult{};
    resetAccounting();
    if (audit_) {
        refreshAuditView();
        audit_->onRunStart(auditView_);
    }
    Cycle measure_start = 0;

    auto barrier = [this]() {
        Cycle bar = 0;
        for (auto &c : cores_)
            bar = std::max(bar, c.now());
        for (auto &c : cores_)
            c.advanceTo(bar, Cat::Idle);
        return bar;
    };

    for (std::size_t t = 0; t < workload.txns.size(); ++t) {
        if (t == warmup_txns) {
            // Synchronize before the measured region so every core's
            // breakdown covers exactly [measure_start, end].
            measure_start = barrier();
            resetAccounting();
        }
        const TransactionTrace &txn = workload.txns[t];
        for (const TraceSection &sec : txn.sections) {
            // Section barrier: all cores meet at the section start.
            barrier();

            if (mode == ExecMode::Serial || !sec.parallel) {
                for (const EpochTrace &e : sec.epochs)
                    runSerialEpoch(e);
            } else {
                runParallelSection(sec, mode);
            }
        }
        ++stats_.txns;
    }

    // Final barrier: idle everyone up to the makespan.
    Cycle end = barrier();

    RunResult out = stats_;
    out.makespan = end - measure_start;
    collect(out);

    // Replay-path allocation accounting, one mutex crossing per run:
    // pool hits vs fresh EpochRun allocations measure how well the
    // run arena absorbs the per-epoch churn.
    auto &gc = stats::GlobalCounters::instance();
    gc.add("replay.runs");
    gc.add("replay.epochs", out.epochs);
    gc.add("replay.records", out.recordsReplayed);
    gc.add("replay.runPoolHits", poolHits_);
    gc.add("replay.runPoolAllocs", poolAllocs_);
    poolHits_ = 0;
    poolAllocs_ = 0;
    return out;
}

void
TlsMachine::resetAccounting()
{
    stats_ = RunResult{};
    // One-time sizing: violation lines are appended on the replay
    // hot path; reserving here keeps the common case allocation-free.
    stats_.violatedLines.reserve(64);
    for (auto &c : cores_)
        c.breakdown() = Breakdown{};
    baseL1Hits_ = 0;
    baseL1Misses_ = 0;
    for (unsigned i = 0; i < numCpus_; ++i) {
        baseL1Hits_ += mem_.dcache(i).hits() + mem_.icache(i).hits();
        baseL1Misses_ += mem_.dcache(i).misses() + mem_.icache(i).misses();
    }
    baseL2Hits_ = mem_.l2().hits();
    baseL2Misses_ = mem_.l2().misses();
    baseVictimHits_ = mem_.victim().hits();
    baseBranches_ = 0;
    baseMispredicts_ = 0;
    for (auto &c : cores_) {
        baseBranches_ += c.gshare().branches();
        baseMispredicts_ += c.gshare().mispredicts();
    }
}

void
TlsMachine::collect(RunResult &out)
{
    for (auto &c : cores_)
        out.total += c.breakdown();

    std::uint64_t l1h = 0, l1m = 0, br = 0, mis = 0;
    for (unsigned i = 0; i < numCpus_; ++i) {
        l1h += mem_.dcache(i).hits() + mem_.icache(i).hits();
        l1m += mem_.dcache(i).misses() + mem_.icache(i).misses();
        br += cores_[i].gshare().branches();
        mis += cores_[i].gshare().mispredicts();
    }
    out.l1Hits = l1h - baseL1Hits_;
    out.l1Misses = l1m - baseL1Misses_;
    out.l2Hits = mem_.l2().hits() - baseL2Hits_;
    out.l2Misses = mem_.l2().misses() - baseL2Misses_;
    out.victimHits = mem_.victim().hits() - baseVictimHits_;
    out.branches = br - baseBranches_;
    out.mispredicts = mis - baseMispredicts_;
    if (audit_)
        out.auditChecks = audit_->checks();
}

void
TlsMachine::dumpStats(std::ostream &os) const
{
    using stats::Scalar;
    using stats::StatGroup;
    using stats::Vector;

    for (unsigned i = 0; i < numCpus_; ++i) {
        StatGroup g(strfmt("cpu%u", i));
        Scalar cycles(&g, "cycles", "local clock");
        cycles = static_cast<double>(cores_[i].now());
        Vector cats(&g, "breakdown", "cycle attribution",
                    {"busy", "cache_miss", "latch_stall", "sync",
                     "idle", "failed"});
        for (unsigned c = 0; c < kNumCats; ++c)
            cats[c] = static_cast<double>(
                cores_[i].breakdown().cycles[c]);
        Scalar dhits(&g, "dcache_hits", "L1D hits");
        Scalar dmiss(&g, "dcache_misses", "L1D misses");
        Scalar ihits(&g, "icache_hits", "L1I hits");
        Scalar imiss(&g, "icache_misses", "L1I misses");
        auto &m = const_cast<MemSystem &>(mem_);
        dhits = static_cast<double>(m.dcache(i).hits());
        dmiss = static_cast<double>(m.dcache(i).misses());
        ihits = static_cast<double>(m.icache(i).hits());
        imiss = static_cast<double>(m.icache(i).misses());
        Scalar br(&g, "branches", "conditional branches");
        Scalar mis(&g, "mispredicts", "GShare mispredictions");
        br = static_cast<double>(cores_[i].gshare().branches());
        mis = static_cast<double>(cores_[i].gshare().mispredicts());
        g.dump(os);
    }

    StatGroup l2g("l2");
    Scalar l2h(&l2g, "hits", "L2 hits");
    Scalar l2m(&l2g, "misses", "L2 misses");
    Scalar spill(&l2g, "spec_evictions",
                 "speculative lines spilled to the victim cache");
    Scalar ovf(&l2g, "overflows", "victim-cache overflow events");
    auto &m = const_cast<MemSystem &>(mem_);
    l2h = static_cast<double>(m.l2().hits());
    l2m = static_cast<double>(m.l2().misses());
    spill = static_cast<double>(m.l2().specEvictions());
    ovf = static_cast<double>(m.l2().overflows());
    Scalar vh(&l2g, "victim_hits", "victim-cache hits");
    vh = static_cast<double>(m.victim().hits());
    l2g.dump(os);

    StatGroup tg("tls");
    Scalar live(&tg, "live_spec_lines",
                "lines with speculative metadata right now");
    live = static_cast<double>(spec_.liveLines());
    Scalar viol(&tg, "violations_recorded",
                "violations seen by the profiler");
    viol = static_cast<double>(profiler_.totalViolations());
    tg.dump(os);
}

// ---------------------------------------------------------------------
// Section execution
// ---------------------------------------------------------------------

std::unique_ptr<TlsMachine::EpochRun>
TlsMachine::acquireRun()
{
    if (!runPool_.empty()) {
        auto run = std::move(runPool_.back());
        runPool_.pop_back();
        run->recycle();
#if TLSIM_POISON
        run->assertRecycled(); // recycle() beat every release canary?
        run->poisonTok.markAcquired("EpochRun");
#endif
        ++poolHits_;
        return run;
    }
    ++poolAllocs_;
    auto run = std::make_unique<EpochRun>();
#if TLSIM_POISON
    run->poisonTok.markAcquired("EpochRun");
#endif
    // One-time sizing: recycle() keeps capacity, so reserving here
    // makes the steady-state run loop allocation-free.
    run->cps.reserve(cfg_.tls.subthreadsPerThread + 1);
    run->heldLatches.reserve(16);
    run->deferredChecks.reserve(64);
    return run;
}

void
TlsMachine::releaseRun(CpuId cpu)
{
    if (runs_[cpu]) {
#if TLSIM_POISON
        runs_[cpu]->poisonTok.markReleased("EpochRun");
        runs_[cpu]->poisonScalars();
#endif
        runPool_.push_back(std::move(runs_[cpu]));
    }
    cpuSeqs_[cpu] = kNoEpoch;
}

void
TlsMachine::runSerialEpoch(const EpochTrace &e)
{
    tlsActive_ = false;
    specTracking_ = false;
    auto run = acquireRun();
    run->trace = &e;
    run->view = index_->viewOf(&e);
    run->cpu = 0;
    run->cps.push_back({0, cores_[0].checkpoint(), 0, 0});
    runs_[0] = std::move(run);
    cpuSeqs_[0] = kNoEpoch; // serial epochs are non-speculative
    // A serial epoch has the machine to itself: no bound, no
    // scheduling events (nothing to squash, no latch contention), so
    // each batch runs until the epoch leaves Running.
    while (runs_[0]->st != RunState::Done)
        stepCpuBatch(0, kCycleMax, 0);
    cores_[0].drainLoads();
    stats_.totalInsts += e.instCount;
    releaseRun(0);
}

void
TlsMachine::startNextEpoch(CpuId cpu)
{
    releaseRun(cpu); // recycle the committed occupant, if any
    auto [seq, trace] = queues_[cpu].front();
    queues_[cpu].pop_front();
    auto run = acquireRun();
    run->trace = trace;
    run->view = index_->viewOf(trace);
    run->seq = seq;
    run->cpu = cpu;
    run->spacing = cfg_.tls.subthreadSpacing;
    if (cfg_.tls.adaptiveSpacing && k_ > 1) {
        // Divide the thread evenly over its k contexts (Section 5.1).
        run->spacing = std::max<std::uint64_t>(
            200, trace->specInstCount / k_ + 1);
    }
    run->nextSpawn = run->spacing;
    if (cfg_.tls.riskPlacement && k_ > 1) {
        // Predicted-risk placement: spawn right before the exposed
        // conflict loads the trace pre-analysis flagged, instead of on
        // the fixed grid. Same selection the critical-path analyzer
        // prices (core/critpath/placement.h).
        critpath::selectRiskSpawnPoints(run->view->riskOffsets,
                                        trace->specInstCount, k_,
                                        run->spacing,
                                        run->spawnPoints);
        run->spawnIdx = 0;
        run->nextSpawn = run->spawnPoints.empty()
                             ? kNoSpawn
                             : run->spawnPoints.front();
    }
    run->startTable.assign(static_cast<std::size_t>(numCpus_) * k_,
                           {kNoEpoch, 0});
    mem_.epochBoundary(cpu);
    run->cps.push_back({0, cores_[cpu].checkpoint(), 0, 0});
    runs_[cpu] = std::move(run);
    cpuSeqs_[cpu] = tlsActive_ ? runs_[cpu]->seq : kNoEpoch;
    if (audit_ && specTracking_) {
        refreshAuditView();
        audit_->onEpochStart(auditView_, cpu, runs_[cpu]->seq);
    }
}

void
TlsMachine::runParallelSection(const TraceSection &sec, ExecMode mode)
{
    tlsActive_ = true;
    specTracking_ = (mode == ExecMode::Tls);

    std::uint64_t first_seq = nextSeq_;
    for (std::size_t i = 0; i < sec.epochs.size(); ++i)
        queues_[i % numCpus_].push_back({nextSeq_++, &sec.epochs[i]});
    nextCommitSeq_ = first_seq;

    for (unsigned cpu = 0; cpu < numCpus_; ++cpu)
        if (!queues_[cpu].empty())
            startNextEpoch(cpu);

    std::vector<ScheduleChoice> choices;
    std::uint64_t remaining = sec.epochs.size();
    while (remaining > 0) {
        // Pick the runnable CPU with the smallest local clock so shared
        // state is touched in (approximately) global time order. An
        // attached schedule oracle overrides the choice (it sees the
        // same runnable set), turning the machine into a deterministic
        // executor of an externally chosen interleaving.
        int pick = -1;
        Cycle best = kCycleMax;
        // Runner-up clock among the non-picked runnables, and the
        // lowest CPU index achieving it: the batching loop below may
        // keep stepping `pick` while it would still win the rescan.
        Cycle bound = kCycleMax;
        int bound_idx = static_cast<int>(numCpus_);
        if (schedOracle_)
            choices.clear();
        for (unsigned cpu = 0; cpu < numCpus_; ++cpu) {
            EpochRun *r = runs_[cpu].get();
            if (!r)
                continue;
            bool commit_ready =
                r->st == RunState::Done &&
                (!specTracking_ || r->seq == nextCommitSeq_);
            bool runnable = r->st == RunState::Running || commit_ready;
            if (!runnable)
                continue;
            if (schedOracle_)
                choices.push_back({cpu, r->seq, commit_ready});
            Cycle c = cores_[cpu].now();
            if (c < best) {
                bound = best; // the demoted best is the new runner-up
                bound_idx = pick;
                best = c;
                pick = static_cast<int>(cpu);
            } else if (c < bound) {
                bound = c;
                bound_idx = static_cast<int>(cpu);
            }
        }
        if (pick < 0)
            panic("TLS machine deadlock: no runnable CPU "
                  "(remaining epochs %llu)",
                  static_cast<unsigned long long>(remaining));
        if (schedOracle_) {
            std::size_t o = schedOracle_->pick(choices);
            if (o != ScheduleOracle::kDefaultPick) {
                if (o >= choices.size())
                    panic("schedule oracle picked %zu of %zu runnable "
                          "slots",
                          o, choices.size());
                pick = static_cast<int>(choices[o].cpu);
            }
        }

        EpochRun &r = *runs_[pick];
        if (r.st == RunState::Done) {
            commitEpoch(r);
            --remaining;
        } else if (schedOracle_) {
            // An oracle must observe every individual choice point.
            stepCpu(static_cast<CpuId>(pick));
        } else {
            // Batched stepping: `pick` is the lowest-indexed CPU with
            // the minimum clock, so the scan above would keep choosing
            // it until either its clock passes the best other runnable
            // clock (`bound`; ties rebreak by index) or a step mutates
            // another CPU's clock/state (schedEvent_). Other CPUs'
            // clocks, states, and commit readiness are frozen while
            // schedEvent_ stays false: squash scheduling and latch
            // hand-off set it, and nextCommitSeq_ only moves in
            // commitEpoch above. Replays the exact same step sequence
            // as the unbatched loop, just without rescanning.
            stepCpuBatch(static_cast<CpuId>(pick), bound, bound_idx);
        }
    }

    tlsActive_ = false;
    specTracking_ = false;
    for (unsigned cpu = 0; cpu < numCpus_; ++cpu)
        releaseRun(cpu);
}

void
TlsMachine::commitEpoch(EpochRun &run)
{
    CpuId cpu = run.cpu;
    Core &core = cores_[cpu];
    if (specTracking_) {
        // Homefree token: wait for the previous epoch's commit.
        core.advanceTo(lastCommitTime_, Cat::Sync);
        // Lazy update propagation: younger readers of this epoch's
        // stores learn about them only now.
        if (!cfg_.tls.aggressiveUpdates) {
            for (const auto &[line, pc] : run.deferredChecks)
                checkViolations(run, line, pc);
            run.deferredChecks.clear();
        }
        spec_.clearThread(threadMask(cpu, k_ - 1), ctxId(cpu, 0), k_);
        mem_.commitThreadVersions(cpu);
    }
    mem_.epochBoundary(cpu);
    lastCommitTime_ = core.now();
    if (specTracking_)
        ++nextCommitSeq_;
    run.st = RunState::Committed;
    ++stats_.epochs;
    stats_.totalInsts += run.trace->instCount;
    if (specTracking_) {
        stats_.commitOrder.push_back(run.seq);
        if (audit_) {
            refreshAuditView();
            audit_->onCommit(auditView_, cpu, run.seq);
        }
    }

    if (!queues_[cpu].empty())
        startNextEpoch(cpu);
    else
        releaseRun(cpu);
}

// ---------------------------------------------------------------------
// Record execution
// ---------------------------------------------------------------------

namespace {

/** Index of the escape region whose EscapeBegin is at `idx`. */
unsigned
regionOfBegin(const EpochTrace &e, std::uint32_t idx)
{
    auto it = std::lower_bound(
        e.escapeSpans.begin(), e.escapeSpans.end(), idx,
        [](const auto &span, std::uint32_t v) { return span.first < v; });
    if (it == e.escapeSpans.end() || it->first != idx)
        panic("EscapeBegin at record %u has no span", idx);
    return static_cast<unsigned>(it - e.escapeSpans.begin());
}

/** Index of the escape region whose EscapeEnd is at `idx`. */
unsigned
regionOfEnd(const EpochTrace &e, std::uint32_t idx)
{
    auto it = std::lower_bound(
        e.escapeSpans.begin(), e.escapeSpans.end(), idx,
        [](const auto &span, std::uint32_t v) { return span.second < v; });
    if (it == e.escapeSpans.end() || it->second != idx)
        panic("EscapeEnd at record %u has no span", idx);
    return static_cast<unsigned>(it - e.escapeSpans.begin());
}

} // namespace

void
TlsMachine::chargeRecord(EpochRun &run, InstCount insts)
{
    if (tlsActive_ && !run.inEscape)
        run.specInsts += insts;
    ++run.cursor;
    ++stats_.recordsReplayed;
}

void
TlsMachine::stepCpu(CpuId cpu)
{
    EpochRun &run = *runs_[cpu];
    Core &core = cores_[cpu];
#if TLSIM_POISON
    run.poisonTok.assertLive("EpochRun");
#endif

    if (run.pendingSquash) {
        applySquash(run);
        return;
    }

    const EpochView &v = *run.view;
    if (run.cursor >= v.size()) {
        finishEpochBody(run);
        return;
    }

    if (tlsActive_ && specTracking_ && !run.inEscape &&
        run.curSub + 1 < k_ && run.specInsts >= run.nextSpawn) {
        maybeSpawnSubthread(run);
        return;
    }

    const std::uint32_t head = v.head[run.cursor];
    const TraceOp op = EpochView::op(head);
    const Pc pc = v.pc[run.cursor];

    // Instruction fetch for the record's code site.
    Cycle fr = mem_.ifetch(cpu, pc, core.now());
    core.advanceTo(fr, Cat::CacheMiss);

    bool spec = tlsActive_ && !run.inEscape;

    switch (op) {
      case TraceOp::Load:
      case TraceOp::Store: {
        DecodedRec d{op,
                     EpochView::aux(head),
                     EpochView::sizeBytes(head),
                     pc,
                     v.memAddr(run.cursor),
                     (head & EpochView::kConflictBit) != 0,
                     (head & EpochView::kCoveredBit) != 0};
        if (op == TraceOp::Load)
            execLoad(run, d, spec);
        else
            execStore(run, d, spec);
        break;
      }
      case TraceOp::Compute: {
        std::uint64_t insts = v.value(run.cursor);
        core.doCompute(insts,
                       static_cast<ComputeClass>(EpochView::aux(head)));
        chargeRecord(run, insts);
        break;
      }
      case TraceOp::Branch:
        core.doBranch(pc, EpochView::aux(head) & kAuxTaken);
        chargeRecord(run, 1);
        break;
      case TraceOp::LatchAcquire:
        execLatchAcquire(run, pc, v.value(run.cursor));
        break;
      case TraceOp::LatchRelease:
        execLatchRelease(run, pc, v.value(run.cursor));
        break;
      case TraceOp::EscapeBegin: {
        unsigned region = regionOfBegin(*run.trace, run.cursor);
        if (region < run.escapedDone) {
            // Already performed before a rewind: escaped work is never
            // re-executed.
            ++stats_.escapeSkips;
            run.cursor = run.trace->escapeSpans[region].second + 1;
        } else {
            run.inEscape = true;
            core.doCompute(2, ComputeClass::Int);
            ++run.cursor;
        }
        ++stats_.recordsReplayed;
        break;
      }
      case TraceOp::EscapeEnd: {
        unsigned region = regionOfEnd(*run.trace, run.cursor);
        run.inEscape = false;
        run.escapedDone = std::max(run.escapedDone, region + 1);
        core.doCompute(2, ComputeClass::Int);
        ++run.cursor;
        ++stats_.recordsReplayed;
        break;
      }
    }
}

TLSIM_HOT [[gnu::flatten]] void
TlsMachine::stepCpuBatch(CpuId cpu, Cycle bound, int bound_idx)
{
    // `run` is stable across the batch: nothing inside stepCpu
    // reassigns runs_[cpu] (commitEpoch/startNextEpoch run only from
    // the outer scheduler loop), so hoisting the deref out of the
    // loop is safe. [[gnu::flatten]] additionally inlines the whole
    // per-record path (stepCpu -> exec*) into this one loop body.
    const Core &core = cores_[cpu];
    EpochRun *run = runs_[cpu].get();
    schedEvent_ = false;
    do {
        stepCpu(cpu);
    } while (!schedEvent_ && run->st == RunState::Running &&
             !run->pendingSquash &&
             (core.now() < bound ||
              (core.now() == bound && static_cast<int>(cpu) < bound_idx)));
}

void
TlsMachine::finishEpochBody(EpochRun &run)
{
    if (run.latchesHeld != 0)
        panic("epoch %llu finished still holding %u latches "
              "(database latch discipline bug)",
              static_cast<unsigned long long>(run.seq), run.latchesHeld);
    cores_[run.cpu].drainLoads();
    run.st = RunState::Done;
}

bool
TlsMachine::isOldest(const EpochRun &run) const
{
    return run.seq == nextCommitSeq_;
}

void
TlsMachine::execLoad(EpochRun &run, const DecodedRec &d, bool spec)
{
    Core &core = cores_[run.cpu];
    // The oldest running epoch is non-speculative (Section 2.1: the
    // design supports "mixing speculative and non-speculative work"):
    // its accesses need no SL/SM tracking and no version buffering.
    bool strack = spec && specTracking_ && !isOldest(run);

    // Dependence predictor (Section 1.2 ablation): a load whose PC has
    // violated before synchronizes — stall until this thread is the
    // oldest and the value is guaranteed final. PC granularity makes
    // this grossly conservative, which is the paper's point.
    if (strack && cfg_.tls.useDependencePredictor &&
        run.latchesHeld == 0 && predictedLoads_.count(d.pc)) {
        // (Bypassed while holding a latch: an older epoch might be
        // waiting on it, and synchronizing here would deadlock.)
        ++stats_.predictorStalls;
        core.advanceTo(core.now() + 50, Cat::Sync);
        return; // record retried; progresses once oldest
    }

    Cycle issue = core.prepareLoad(d.aux & kAuxDependent);
    MemAccess res = mem_.load(run.cpu, d.addr, issue, strack);
    if (res.overflow) {
        handleOverflow(run);
        return; // record retried after the overflow resolves
    }
    core.finishLoad(res.readyAt);
    if (strack) {
        Addr line = mem_.geom().lineNum(d.addr);
        if (oracleOn_) {
            // The pre-analysis already decided exposure: a covered
            // load changes no speculative state at all, an exposed
            // one sets its SL bit without the per-word SM merge.
            if (!d.covered) {
                spec_.recordLoadExposed(ctxId(run.cpu, run.curSub),
                                        line);
                exposed_[run.cpu].record(line, d.pc);
            }
        } else {
            std::uint32_t wm = mem_.geom().wordMask(d.addr, d.size);
            bool exposed =
                spec_.recordLoad(ctxId(run.cpu, run.curSub),
                                 threadMask(run.cpu, run.curSub),
                                 line, wm);
            if (exposed)
                exposed_[run.cpu].record(line, d.pc);
        }
        if (auditFull_) {
            refreshAuditView();
            audit_->onAccess(auditView_, run.cpu, line);
        }
    }
    chargeRecord(run, d.aux >> kAuxInstShift);
}

void
TlsMachine::execStore(EpochRun &run, const DecodedRec &d, bool spec)
{
    Core &core = cores_[run.cpu];
    bool strack = spec && specTracking_ && !isOldest(run);
    MemAccess res = mem_.store(run.cpu, d.addr, core.now(), strack);
    if (res.overflow) {
        handleOverflow(run);
        return;
    }
    Addr line = mem_.geom().lineNum(d.addr);
    if (strack) {
        std::uint32_t wm = mem_.geom().wordMask(d.addr, d.size);
        spec_.recordStore(ctxId(run.cpu, run.curSub), line, wm);
        if (auditFull_) {
            refreshAuditView();
            audit_->onAccess(auditView_, run.cpu, line);
        }
    }
    if (tlsActive_ && specTracking_ &&
        (!oracleOn_ || d.conflict)) {
        // Escaped stores are non-speculative but still produce values
        // that younger speculative readers must not have consumed.
        // With the oracle on, stores to non-conflict-candidate lines
        // skip this scan: the pre-analysis proved no younger epoch
        // ever reads the line, so no SL holder can exist.
        if (cfg_.tls.aggressiveUpdates || !strack)
            checkViolations(run, line, d.pc);
        else
            run.deferredChecks.emplace_back(line, d.pc);
    }
    core.doStore(res.readyAt);
    chargeRecord(run, d.aux >> kAuxInstShift);
}

void
TlsMachine::execLatchAcquire(EpochRun &run, Pc pc,
                             std::uint64_t latch_id)
{
    (void)pc;
    Core &core = cores_[run.cpu];
    LatchState &latch = latches_.acquire(latch_id);
    if (latch.held && latch.owner == run.cpu) {
        // Granted while waking from the wait queue (or re-held across a
        // rewind replay).
        ++run.latchesHeld;
        run.heldLatches.push_back(latch_id);
        core.doCompute(4, ComputeClass::Int);
        chargeRecord(run, 4);
        return;
    }
    if (!latch.held) {
        latch.held = true;
        latch.owner = run.cpu;
        ++run.latchesHeld;
        run.heldLatches.push_back(latch_id);
        core.doCompute(4, ComputeClass::Int);
        chargeRecord(run, 4);
        return;
    }
    // Blocked: leave the cursor on the acquire; the releaser wakes us.
    latch.waiters.push_back(run.cpu);
    run.st = RunState::LatchWait;
    run.waitLatch = latch_id;
    ++stats_.latchWaits;
}

void
TlsMachine::releaseLatch(std::uint64_t latch_id, Cycle at)
{
    LatchState *lp = latches_.find(latch_id);
    if (!lp)
        return;
    LatchState &latch = *lp;
    if (!latch.waiters.empty()) {
        CpuId w = latch.waiters.front();
        latch.waiters.erase(latch.waiters.begin());
        latch.owner = w; // direct hand-off
        EpochRun *rw = runs_[w].get();
        if (!rw || rw->st != RunState::LatchWait)
            panic("latch hand-off to cpu %u which is not waiting", w);
        cores_[w].advanceTo(at + 1, Cat::LatchStall);
        rw->st = RunState::Running;
        rw->waitLatch = 0;
        schedEvent_ = true; // another CPU's clock and state changed
    } else {
        latch.held = false;
    }
}

void
TlsMachine::execLatchRelease(EpochRun &run, Pc pc,
                             std::uint64_t latch_id)
{
    (void)pc;
    Core &core = cores_[run.cpu];
    core.doCompute(4, ComputeClass::Int);

    auto held_it = std::find(run.heldLatches.begin(),
                             run.heldLatches.end(), latch_id);
    if (held_it == run.heldLatches.end()) {
        // Replay residue: the violation handler already released this
        // latch during a rewind. Charge the cost and move on.
        chargeRecord(run, 4);
        return;
    }
    run.heldLatches.erase(held_it);
    --run.latchesHeld;
    releaseLatch(latch_id, core.now());
    chargeRecord(run, 4);
}

// ---------------------------------------------------------------------
// Sub-threads and violations
// ---------------------------------------------------------------------

void
TlsMachine::maybeSpawnSubthread(EpochRun &run)
{
    Core &core = cores_[run.cpu];
    ++run.curSub;
    run.cps.push_back(
        {run.cursor, core.checkpoint(), run.specInsts,
         static_cast<std::uint32_t>(run.deferredChecks.size())});
    if (!run.spawnPoints.empty()) {
        ++run.spawnIdx;
        run.nextSpawn = run.spawnIdx < run.spawnPoints.size()
                            ? run.spawnPoints[run.spawnIdx]
                            : kNoSpawn;
    } else {
        run.nextSpawn += run.spacing;
    }
    ++stats_.subthreadsStarted;

    // subthreadStart message: logically-later threads record which of
    // their sub-threads is current (the sub-thread start table).
    ContextId ctx = ctxId(run.cpu, run.curSub);
    for (unsigned d = 0; d < numCpus_; ++d) {
        EpochRun *r = runs_[d].get();
        if (!r || r == &run || r->seq <= run.seq)
            continue;
        r->startTable[ctx] = {run.seq, r->curSub};
    }
    if (audit_) {
        refreshAuditView();
        audit_->onSpawn(auditView_, run.cpu, run.curSub);
    }
}

void
TlsMachine::checkViolations(EpochRun &storer, Addr line, Pc store_pc)
{
    std::uint64_t holders = spec_.slHolders(line);
    holders &= ~threadMask(storer.cpu, k_ - 1); // never self-violate
    if (!holders)
        return;

    // Which younger threads performed exposed loads of this line, and
    // at which sub-thread? (member scratch: no per-call allocation)
    std::vector<unsigned> &own_sub = ownSubScratch_;
    own_sub.assign(numCpus_, k_);
    EpochRun *primary = nullptr;
    while (holders) {
        unsigned ctx = static_cast<unsigned>(__builtin_ctzll(holders));
        holders &= holders - 1;
        CpuId cpu_h = ctx / k_;
        unsigned sub_h = ctx % k_;
        EpochRun *r = runs_[cpu_h].get();
        if (!r || r->seq <= storer.seq)
            continue; // older threads legitimately read the old value
        own_sub[cpu_h] = std::min(own_sub[cpu_h], sub_h);
        if (!primary || r->seq < primary->seq)
            primary = r;
    }
    if (!primary)
        return;

    Cycle now = cores_[storer.cpu].now();
    unsigned primary_sub = own_sub[primary->cpu];
    ++stats_.primaryViolations;
    stats_.violatedLines.push_back(line);
    scheduleSquash(*primary, primary_sub, now, store_pc, line, false);

    // Secondary violations, originated by the primary's restarted
    // sub-thread; with the start table only dependent sub-threads
    // restart (Figure 4(b)), otherwise whole threads restart (4(a)).
    ContextId origin_ctx = ctxId(primary->cpu, primary_sub);
    for (unsigned d = 0; d < numCpus_; ++d) {
        EpochRun *r = runs_[d].get();
        if (!r || r == primary || r->seq <= primary->seq)
            continue;
        unsigned sub = 0;
        if (cfg_.tls.useStartTable) {
            const auto &e = r->startTable[origin_ctx];
            if (e.first == primary->seq)
                sub = e.second;
        }
        if (own_sub[d] < sub)
            sub = own_sub[d]; // it also read the line directly
        ++stats_.secondaryViolations;
        scheduleSquash(*r, sub, now, store_pc, line, true);
    }
}

void
TlsMachine::scheduleSquash(EpochRun &victim, unsigned sub, Cycle at,
                           Pc store_pc, Addr line, bool secondary)
{
    schedEvent_ = true; // victim's run state / runnability may change
    if (sub > victim.curSub)
        sub = victim.curSub;
    if (victim.pendingSquash) {
        if (sub < victim.squashSub) {
            victim.squashSub = sub;
            victim.squashStorePc = store_pc;
            victim.squashLine = line;
            victim.squashSecondary = secondary;
        }
        victim.squashAt = std::min(victim.squashAt, at);
    } else {
        victim.pendingSquash = true;
        victim.squashSub = sub;
        victim.squashAt = at;
        victim.squashStorePc = store_pc;
        victim.squashLine = line;
        victim.squashSecondary = secondary;
    }

    if (victim.st == RunState::LatchWait) {
        // Pull it out of the wait queue: it has not been granted the
        // latch, so blocking-state removal is safe.
        if (LatchState *l = latches_.find(victim.waitLatch)) {
            auto &w = l->waiters;
            w.erase(std::remove(w.begin(), w.end(), victim.cpu), w.end());
        }
        victim.waitLatch = 0;
        victim.st = RunState::Running;
    } else if (victim.st == RunState::Done) {
        // Pulled back from the homefree wait.
        victim.st = RunState::Running;
    }
}

void
TlsMachine::applySquash(EpochRun &run)
{
    Core &core = cores_[run.cpu];
    unsigned sub = std::min(run.squashSub, run.curSub);
    Checkpoint &cp = run.cps[sub];

    // Section 3.1 profiling: failed cycles attributed to the
    // (load PC, store PC) pair. Overflow-induced squashes carry no
    // store PC and are not dependence violations.
    if (run.squashStorePc != 0) {
        Cycle failed =
            core.now() > cp.core.now ? core.now() - cp.core.now : 0;
        Pc load_pc = exposed_[run.cpu].lookup(run.squashLine);
        profiler_.recordViolation(load_pc, run.squashStorePc, failed);
        if (cfg_.tls.useDependencePredictor && load_pc != 0)
            predictedLoads_.insert(load_pc);
    }

    // Violation handler: release every latch held (the escaped
    // recovery code of the VLDB'05 design); replay will re-acquire.
    for (std::uint64_t latch_id : run.heldLatches)
        releaseLatch(latch_id, core.now());
    run.heldLatches.clear();
    run.latchesHeld = 0;

    // Discard speculative state of sub-threads sub..curSub (youngest
    // first so dead-version detection sees the surviving contexts).
    for (unsigned s = run.curSub + 1; s-- > sub;) {
        std::uint64_t surviving =
            s == 0 ? 0 : threadMask(run.cpu, s - 1);
        deadLineScratch_.clear();
        spec_.clearContext(ctxId(run.cpu, s), surviving,
                           &deadLineScratch_);
        for (Addr l : deadLineScratch_)
            mem_.dropThreadVersion(run.cpu, l);
    }
    if (!cfg_.tls.l1SubthreadAware)
        mem_.squashL1(run.cpu);

    ++stats_.squashes;
    stats_.rewoundInsts += core.instSeq() - cp.core.instSeq;

    Cycle restart =
        std::max(core.now(),
                 run.squashAt + cfg_.tls.violationDeliveryLatency);
    core.rewindTo(cp.core, restart);

    run.cursor = cp.recIdx;
    run.curSub = sub;
    run.specInsts = cp.specInsts;
    if (!run.spawnPoints.empty()) {
        // Re-arm at the first threshold past the restored checkpoint.
        run.spawnIdx = static_cast<std::size_t>(
            std::upper_bound(run.spawnPoints.begin(),
                             run.spawnPoints.end(), cp.specInsts) -
            run.spawnPoints.begin());
        run.nextSpawn = run.spawnIdx < run.spawnPoints.size()
                            ? run.spawnPoints[run.spawnIdx]
                            : kNoSpawn;
    } else {
        run.nextSpawn = cp.specInsts + run.spacing;
    }
    if (run.deferredChecks.size() > cp.deferredCount)
        run.deferredChecks.resize(cp.deferredCount);
    run.inEscape = false; // checkpoints never sit inside escapes
    run.cps.resize(sub + 1);
    run.cps[sub].core = core.checkpoint();
    run.pendingSquash = false;
    run.st = RunState::Running;
    if (audit_ && specTracking_) {
        refreshAuditView();
        audit_->onSquash(auditView_, run.cpu, sub);
    }
}

void
TlsMachine::handleOverflow(EpochRun &run)
{
    ++stats_.overflowEvents;
    Core &core = cores_[run.cpu];
    Cycle now = core.now();

    // Find the youngest speculative thread holding state in the full
    // set; squashing it frees buffering space.
    EpochRun *victim = nullptr;
    for (const auto &[line, ver] : mem_.lastOverflowSet()) {
        std::uint64_t holders = 0;
        if (ver != kCommittedVersion) {
            holders = threadMask(ver, k_ - 1);
        } else {
            holders = spec_.stateHolders(line);
        }
        while (holders) {
            unsigned ctx = static_cast<unsigned>(__builtin_ctzll(holders));
            holders &= holders - 1;
            EpochRun *r = runs_[ctx / k_].get();
            if (!r)
                continue;
            if (!victim || r->seq > victim->seq)
                victim = r;
        }
    }

    if (victim && victim != &run) {
        scheduleSquash(*victim, 0, now, 0, 0, false);
    } else {
        // Our own speculative state fills the set (or nothing
        // identifiable does): squash ourselves back to the start.
        // Replay makes progress once this epoch becomes the oldest,
        // because the oldest epoch runs non-speculatively and needs no
        // buffering. The squash also releases any held latches, so
        // older epochs can always drain.
        scheduleSquash(run, 0, now, 0, 0, false);
    }
    // Back off and retry the access.
    core.advanceTo(now + 25, Cat::Sync);
}

} // namespace tlsim
