/**
 * @file
 * Hardware dependence profiling (Section 3.1): an exposed-load table
 * per CPU (a direct-mapped table of load PCs indexed by cache tag) and
 * an L2-side table of (load PC, store PC) pairs accumulating the
 * failed-speculation cycles each violated dependence caused. Software
 * reads the table ranked by cost to drive iterative tuning.
 */

#ifndef CORE_PROFILER_H
#define CORE_PROFILER_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** Direct-mapped table of the PC of the last exposed speculative load
 *  per cache line (one per CPU). */
class ExposedLoadTable
{
  public:
    explicit ExposedLoadTable(unsigned entries = 4096)
        : table_(entries)
    {
    }

    void
    record(Addr line, Pc pc)
    {
        Entry &e = table_[line & (table_.size() - 1)];
        e.line = line;
        e.pc = pc;
    }

    /** PC of the last exposed load of this line, or 0 on tag mismatch. */
    Pc
    lookup(Addr line) const
    {
        const Entry &e = table_[line & (table_.size() - 1)];
        return e.line == line ? e.pc : 0;
    }

    void
    reset()
    {
        for (Entry &e : table_)
            e = Entry{};
    }

  private:
    struct Entry
    {
        Addr line = ~Addr{0};
        Pc pc = 0;
    };

    std::vector<Entry> table_;
};

/** L2-side violation cost table: (load PC, store PC) -> failed cycles. */
class DependenceProfiler
{
  public:
    struct PairCost
    {
        Pc loadPc = 0;
        Pc storePc = 0;
        std::uint64_t failedCycles = 0;
        std::uint64_t violations = 0;
    };

    explicit DependenceProfiler(unsigned max_entries = 1024)
        : maxEntries_(max_entries)
    {
        pairs_.reserve(maxEntries_);
    }

    /** Record one violation and the speculation cycles it wasted. */
    void recordViolation(Pc load_pc, Pc store_pc,
                         std::uint64_t failed_cycles);

    /** All pairs, most-costly first (the software interface). */
    std::vector<PairCost> report() const;

    /** Pretty-print the top `n` pairs with site names resolved. */
    std::string reportText(unsigned n = 10) const;

    std::uint64_t totalFailedCycles() const { return totalFailed_; }
    std::uint64_t totalViolations() const { return totalViolations_; }

    void reset();

  private:
    unsigned maxEntries_;
    /** Flat bounded table (<= maxEntries_, reserved up front): the
     *  lookup is a linear scan, but violations are squash-rate rare
     *  and the hardware analogue is a small CAM, not a tree. */
    std::vector<PairCost> pairs_;
    std::uint64_t totalFailed_ = 0;
    std::uint64_t totalViolations_ = 0;
};

} // namespace tlsim

#endif // CORE_PROFILER_H
