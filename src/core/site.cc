#include "core/site.h"

#include "base/log.h"

namespace tlsim {

SiteRegistry &
SiteRegistry::instance()
{
    static SiteRegistry registry;
    return registry;
}

Pc
SiteRegistry::intern(const std::string &name)
{
    MutexLock lk(mtx_);
    auto it = byName_.find(name);
    if (it != byName_.end())
        return it->second;
    Pc pc = kCodeBase + static_cast<Pc>(names_.size()) * kBlockBytes;
    byName_.emplace(name, pc);
    names_.push_back(name);
    return pc;
}

std::string
SiteRegistry::name(Pc pc) const
{
    MutexLock lk(mtx_);
    if (pc >= kCodeBase) {
        std::size_t idx = (pc - kCodeBase) / kBlockBytes;
        if (idx < names_.size())
            return names_[idx];
    }
    return strfmt("<pc 0x%x>", pc);
}

} // namespace tlsim
