/**
 * @file
 * Speculative metadata kept by the L2: for every cache line touched
 * speculatively, a speculatively-loaded (SL) bit per thread context
 * (line granularity) and a speculatively-modified (SM) word mask per
 * thread context (word granularity) — the "2 bits of storage per cache
 * line per sub-thread tracked" of Section 2.1.
 *
 * Context numbering: ctx = cpu * subthreadsPerThread + subIndex, so a
 * speculative thread's contexts are contiguous and a thread mask is a
 * contiguous bit run.
 *
 * Storage: an open-addressed flat hash table (linear probing,
 * power-of-two capacity, tombstone deletion) instead of a node-based
 * unordered_map — this sits on the replay loop's hot path (every
 * speculative load/store probes it, every store scans for violation
 * holders). A one-entry last-line cache short-circuits the common
 * pattern of several consecutive probes of the same line (load+store
 * to one line, store followed by its violation check).
 */

#ifndef CORE_SPECSTATE_H
#define CORE_SPECSTATE_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** Per-line, per-context speculative load/store metadata. */
class SpecState
{
  public:
    static constexpr unsigned kMaxContexts = 64;

    explicit SpecState(unsigned num_contexts);

    /**
     * Record a speculative load by `ctx` of `word_mask` within `line`.
     * `thread_mask` covers the live contexts of the loading thread
     * (subs 0..current). Returns true if the load was *exposed*, i.e.
     * not fully covered by the thread's own earlier stores; only
     * exposed loads set the SL bit (and can be violated).
     */
    bool recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
                    std::uint32_t word_mask);

    /**
     * Fast path used when the trace pre-analysis already proved the
     * load exposed: sets the SL bit without the per-word SM merge.
     * Equivalent to recordLoad() returning true on the same line.
     */
    void recordLoadExposed(ContextId ctx, Addr line);

    /** Record a speculative store by `ctx` to `word_mask` of `line`. */
    void recordStore(ContextId ctx, Addr line, std::uint32_t word_mask);

    /**
     * Pre-size the table for `lines` concurrent entries (a rehash is
     * purely a host-side cost, so doing it up front is unobservable
     * in simulated time). Call on an empty table.
     */
    void reserveLines(std::size_t lines);

    /** Bitmask of contexts holding an SL bit on this line. */
    std::uint64_t slHolders(Addr line) const;

    /** Bitmask of contexts holding any (SL or SM) state on this line. */
    std::uint64_t stateHolders(Addr line) const;

    /** True if any context has SL or SM state on this line. */
    bool lineHasSpecState(Addr line) const;

    /** True if any context in `thread_mask` has SM bits on the line. */
    bool threadModifiedLine(std::uint64_t thread_mask, Addr line) const;

    /**
     * Clear one context's state. Appends to `*dead` the lines on
     * which the context had SM bits and, after clearing, no context
     * in `thread_mask` modifies any more — the thread's L2 line
     * version is dead and must be dropped. The out-parameter form
     * lets the squash path reuse one scratch vector across rewinds
     * instead of allocating a fresh list per cleared sub-thread.
     */
    void clearContext(ContextId ctx, std::uint64_t thread_mask,
                      std::vector<Addr> *dead);

    /** Convenience wrapper returning the dead-version lines. */
    std::vector<Addr>
    clearContext(ContextId ctx, std::uint64_t thread_mask)
    {
        std::vector<Addr> dead;
        clearContext(ctx, thread_mask, &dead);
        return dead;
    }

    /** Fast path for commit: clear every context in the mask. */
    void clearThread(std::uint64_t thread_mask, ContextId first_ctx,
                     unsigned num_ctxs);

    /** SM word mask `ctx` holds on `line` (0 if none). */
    std::uint32_t smMask(Addr line, ContextId ctx) const;

    /**
     * Visit every line with live metadata (auditor/tests):
     * `fn(line, sl_mask, sm_owner_mask)`. Iteration order is the
     * table's internal order — callers must not depend on it.
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (ctrl_[i] == kFull)
                fn(slots_[i].line, slots_[i].spec.sl,
                   slots_[i].spec.smOwners);
    }

    /** Number of lines with live metadata (tests/debug). */
    std::size_t liveLines() const { return size_; }

    /** Table capacity in slots (tests: rehash behaviour). */
    std::size_t tableCapacity() const { return slots_.size(); }

    void reset();

  private:
    struct LineSpec
    {
        std::uint64_t sl = 0;       ///< SL bit per context
        std::uint64_t smOwners = 0; ///< contexts with nonzero SM mask

        bool empty() const { return sl == 0 && smOwners == 0; }
    };

    enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

    struct Slot
    {
        Addr line = 0;
        LineSpec spec;
    };

    static constexpr std::size_t kMinCapacity = 256;
    static constexpr std::size_t kNotFound = ~std::size_t{0};

    static std::size_t
    hashLine(Addr line)
    {
        // splitmix64 finalizer: line numbers are near-sequential.
        std::uint64_t x = line + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    /** Single-context bit. A shift by >= 64 is undefined behaviour,
     *  so an out-of-range context dies loudly instead of silently
     *  corrupting a neighbour's mask. */
    std::uint64_t bitOf(ContextId ctx) const;

    /** Slot index of `line`, or kNotFound. Updates the lookup cache. */
    std::size_t find(Addr line) const;
    /** Slot of `line`, inserting an empty LineSpec if absent. */
    std::size_t findOrInsert(Addr line);
    /** Remove the entry at `idx` (must be kFull). */
    void eraseAt(std::size_t idx);
    void grow();

    /** Per-slot SM word masks, one row of smStride_ words per slot,
     *  kept out of Slot so the hot probe path walks 24-byte slots
     *  instead of dragging each slot's (rarely read) mask row through
     *  the host cache. Invariant: a slot that is not kFull has an
     *  all-zero row (clears zero what they set, virgin rows are
     *  zero-allocated). */
    std::uint32_t *smRow(std::size_t idx) { return &sm_[idx * smStride_]; }
    const std::uint32_t *
    smRow(std::size_t idx) const
    {
        return &sm_[idx * smStride_];
    }

    unsigned numContexts_;
    unsigned smStride_; ///< numContexts_ rounded up for row alignment
    std::vector<std::uint32_t> sm_; ///< capacity * smStride_ words
    std::vector<Slot> slots_;
    std::vector<std::uint8_t> ctrl_;
    std::size_t size_ = 0;      ///< kFull slots
    std::size_t occupied_ = 0;  ///< kFull + kTombstone slots
    std::size_t mask_ = 0;      ///< capacity - 1

    /** Last successful probe (one-entry lookup cache). */
    mutable Addr lastLine_;
    mutable std::size_t lastIdx_ = kNotFound;

    /** Lines each context has metadata on (for O(touched) clears). */
    std::vector<std::vector<Addr>> ctxLines_;
};

} // namespace tlsim

#endif // CORE_SPECSTATE_H
