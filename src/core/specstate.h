/**
 * @file
 * Speculative metadata kept by the L2: for every cache line touched
 * speculatively, a speculatively-loaded (SL) bit per thread context
 * (line granularity) and a speculatively-modified (SM) word mask per
 * thread context (word granularity) — the "2 bits of storage per cache
 * line per sub-thread tracked" of Section 2.1.
 *
 * Context numbering: ctx = cpu * subthreadsPerThread + subIndex, so a
 * speculative thread's contexts are contiguous and a thread mask is a
 * contiguous bit run.
 */

#ifndef CORE_SPECSTATE_H
#define CORE_SPECSTATE_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** Per-line, per-context speculative load/store metadata. */
class SpecState
{
  public:
    static constexpr unsigned kMaxContexts = 64;

    explicit SpecState(unsigned num_contexts);

    /**
     * Record a speculative load by `ctx` of `word_mask` within `line`.
     * `thread_mask` covers the live contexts of the loading thread
     * (subs 0..current). Returns true if the load was *exposed*, i.e.
     * not fully covered by the thread's own earlier stores; only
     * exposed loads set the SL bit (and can be violated).
     */
    bool recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
                    std::uint32_t word_mask);

    /** Record a speculative store by `ctx` to `word_mask` of `line`. */
    void recordStore(ContextId ctx, Addr line, std::uint32_t word_mask);

    /** Bitmask of contexts holding an SL bit on this line. */
    std::uint64_t slHolders(Addr line) const;

    /** Bitmask of contexts holding any (SL or SM) state on this line. */
    std::uint64_t stateHolders(Addr line) const;

    /** True if any context has SL or SM state on this line. */
    bool lineHasSpecState(Addr line) const;

    /** True if any context in `thread_mask` has SM bits on the line. */
    bool threadModifiedLine(std::uint64_t thread_mask, Addr line) const;

    /**
     * Clear one context's state. Returns the lines on which the
     * context had SM bits and, after clearing, no context in
     * `thread_mask` modifies any more — the thread's L2 line version
     * is dead and must be dropped.
     */
    std::vector<Addr> clearContext(ContextId ctx,
                                   std::uint64_t thread_mask);

    /** Fast path for commit: clear every context in the mask. */
    void clearThread(std::uint64_t thread_mask, ContextId first_ctx,
                     unsigned num_ctxs);

    /** Number of lines with live metadata (tests/debug). */
    std::size_t liveLines() const { return lines_.size(); }

    void reset();

  private:
    struct LineSpec
    {
        std::uint64_t sl = 0;       ///< SL bit per context
        std::uint64_t smOwners = 0; ///< contexts with nonzero SM mask
        std::array<std::uint32_t, kMaxContexts> sm{};

        bool empty() const { return sl == 0 && smOwners == 0; }
    };

    unsigned numContexts_;
    std::unordered_map<Addr, LineSpec> lines_;
    /** Lines each context has metadata on (for O(touched) clears). */
    std::vector<std::vector<Addr>> ctxLines_;
};

} // namespace tlsim

#endif // CORE_SPECSTATE_H
