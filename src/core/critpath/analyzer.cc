#include "core/critpath/analyzer.h"

#include <algorithm>

#include "base/hotpath.h"
#include "base/log.h"
#include "base/narrow.h"
#include "core/critpath/placement.h"

namespace tlsim {
namespace critpath {

namespace {

/**
 * Safety valve on the per-epoch rewind fixed point. Each store fires
 * at most once (the consumed set below), so the loop terminates on its
 * own; the cap only bounds pathological inputs. The machine's own
 * violation counts on the TPC-C workloads are far below this.
 */
constexpr unsigned kMaxRewindsPerEpoch = 256;

std::uint64_t
consumedKey(std::uint32_t epoch, std::uint32_t rec)
{
    return (std::uint64_t{epoch} << 32) | rec;
}

} // namespace

const char *
placementName(Placement p)
{
    switch (p) {
      case Placement::Fixed: return "fixed";
      case Placement::Risk: return "risk";
    }
    return "?";
}

Analyzer::Analyzer(const DepGraph &graph) : graph_(graph) {}

TLSIM_HOT Cycle
Analyzer::timeOf(const EpochState &st, const EpochNode &node,
                 std::uint32_t rec)
{
    // Rewinds are rare, so the timeline has very few segments; scan
    // from the back (the newest segment covers the re-executed tail).
    for (std::size_t s = st.segs.size(); s-- > 0;) {
        const EpochState::Seg &seg = st.segs[s];
        if (seg.fromRec > rec)
            continue;
        // Already-executed records replay with escape spans skipped;
        // records past the squash point pay full first-execution cost.
        const std::uint32_t rp = std::max(seg.replayUpTo, seg.fromRec);
        Cycle t = seg.base + node.prefixReplay[std::min(rec, rp)] -
                  node.prefixReplay[seg.fromRec];
        if (rec > rp)
            t += node.prefixCycles[rec] - node.prefixCycles[rp];
        return t;
    }
    panic("critpath: record %u precedes every timeline segment", rec);
}

TLSIM_HOT std::uint32_t
Analyzer::recAt(const EpochState &st, const EpochNode &node, Cycle t)
{
    std::uint32_t lo = 0;
    std::uint32_t hi =
        checkedNarrow<std::uint32_t>(node.view->size());
    if (timeOf(st, node, lo) > t)
        return 0;
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo + 1) / 2;
        if (timeOf(st, node, mid) <= t)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

void
Analyzer::placeCheckpoints(const EpochNode &node,
                           const AnalyzerConfig &cfg, EpochState &st)
{
    st.cpRecs.clear();
    st.cpRecs.push_back(0); // the epoch start is always a checkpoint

    const unsigned k = cfg.subthreads;
    if (k < 2)
        return;

    // Mirror TlsMachine::startNextEpoch: the adaptive policy divides
    // the epoch body evenly over the contexts, floored at 200.
    const std::uint64_t spacing =
        cfg.adaptiveSpacing
            ? std::max<std::uint64_t>(200,
                                      node.specInstCount / k + 1)
            : cfg.spacing;

    spawnScratch_.clear();
    if (cfg.placement == Placement::Risk) {
        selectRiskSpawnPoints(node.view->riskOffsets,
                              node.specInstCount, k, spacing,
                              spawnScratch_);
    } else {
        for (unsigned j = 1; j < k; ++j) {
            std::uint64_t s = spacing * j;
            if (s >= node.specInstCount)
                break; // specInsts never reaches this threshold
            spawnScratch_.push_back(s);
        }
    }

    // Thresholds are in speculative-instruction space; the machine
    // spawns right before the first record at or past each one.
    const std::vector<std::uint32_t> &ps = node.prefixSpec;
    for (std::uint64_t s : spawnScratch_) {
        auto it = std::lower_bound(ps.begin(), ps.end(), s);
        if (it == ps.end())
            continue;
        std::uint32_t rec =
            checkedNarrow<std::uint32_t>(it - ps.begin());
        if (rec > st.cpRecs.back())
            st.cpRecs.push_back(rec);
    }
}

void
Analyzer::runParallelSection(const SectionNode &sec,
                             const AnalyzerConfig &cfg, Prediction &p)
{
    const std::vector<EpochNode> &epochs = graph_.epochs();
    const unsigned num_cpus = graph_.config().tls.numCpus;
    const Cycle delivery =
        graph_.config().tls.violationDeliveryLatency;

    if (states_.size() < sec.epochCount)
        states_.resize(sec.epochCount);
    laneFree_.assign(num_cpus, 0);
    consumed_.clear();
    waves_.clear();

    Cycle last_commit = 0;
    std::uint32_t total_first_touch = 0;

    for (std::uint32_t i = 0; i < sec.epochCount; ++i) {
        const EpochNode &node = epochs[sec.firstEpoch + i];
        EpochState &st = states_[i];
        const unsigned lane = i % num_cpus;

        st.start = laneFree_[lane];
        st.segs.clear();
        st.segs.push_back({0, st.start, 0});
        st.end = st.start + node.baseCycles;
        st.rawAdded = 0;
        st.reached = 0;
        st.rewound = false;
        // Once every older epoch has committed this epoch is the
        // oldest and runs non-speculatively (the machine's isOldest
        // path): loads at or past this time set no SL bit and can
        // never be violated. The machine's lanes also carry a
        // persistent stagger (startup contention jitter frozen by the
        // lane recurrence start[i+n] = commit[i]) that this
        // contention-free timeline lacks — co-started lanes phase-lock
        // and their commits tie, which would leave near-end loads
        // speculative forever. Compensate with a second, widened
        // threshold for loads still on their ORIGINAL timeline: one
        // throughput-limited inter-commit gap (trailing average over
        // the last num_cpus commits) earlier, since in the machine's
        // staggered steady state a load that close to its epoch's end
        // runs after the predecessor's commit. Re-executed loads
        // (after a rewind) get only the literal rule: a squash restart
        // genuinely re-compresses the pipeline, and suppressing those
        // would hide the self-sustaining violation storms the machine
        // exhibits at checkpoint-starved corners. The gap estimate is
        // zero through the section-start transient, so startup
        // pipeline-compression violations still fire.
        const Cycle oldest_at = i == 0 ? 0 : last_commit;
        Cycle oldest_steady = oldest_at;
        if (i > num_cpus) {
            const Cycle gap = (states_[i - 1].commit -
                               states_[i - 1 - num_cpus].commit) /
                              num_cpus;
            oldest_steady -= std::min(oldest_steady, gap);
        }
        total_first_touch += node.firstTouchLines;
        placeCheckpoints(node, cfg, st);

        // Secondary squash waves from older epochs' primary
        // violations: the machine squashes every younger in-flight
        // epoch at the instant the primary fires (checkViolations'
        // secondary loop), so this epoch takes a rewind at each wave
        // that fired after it started. waves_ holds only events from
        // epochs already finalized (< i); events this epoch generates
        // go to waves_ for the epochs after it.
        waveScratch_.clear();
        for (const auto &[wt, wsrc] : waves_)
            if (wt > st.start)
                waveScratch_.push_back(wt);
        std::sort(waveScratch_.begin(), waveScratch_.end());
        std::size_t wave_idx = 0;

        // Violation fixed point: repeatedly apply the earliest pending
        // event — a store of an older epoch that lands on one of this
        // epoch's exposed loads after the load executed (primary), or
        // an older epoch's squash wave (secondary) — rewind to the
        // covering checkpoint, and re-price the tail from the restart
        // time. A consumed store never fires again — the machine
        // checks violations exactly once, when the store executes —
        // and any load a rewind re-executes moves past the store's
        // time, so the loop converges.
        // An escaped store executes exactly once — the machine's
        // escapedDone skip jumps every replay over it — so once its
        // epoch has reached past it, its violation check stays pinned
        // to the original timeline no matter how that epoch rewinds.
        // This is what quenches the fine-spacing chains: the hot
        // B-tree page stores are escaped (page writes under latch),
        // and after the first link the victim's re-executed loads land
        // past the frozen store time instead of chasing a
        // replay-shifted one.
        const auto store_time = [](const EpochState &ost,
                                   const EpochNode &older,
                                   const EpochNode::MemEvent &s) {
            if (s.escaped && s.rec < ost.reached)
                return ost.start + Cycle{older.prefixCycles[s.rec]};
            return timeOf(ost, older, s.rec);
        };

        for (unsigned iter = 0; iter < kMaxRewindsPerEpoch; ++iter) {
            Cycle best_ts = 0;
            std::uint32_t best_store = 0;
            std::uint32_t best_src = 0;
            bool found = false;

            for (std::uint32_t j = 0; j < i; ++j) {
                const EpochNode &older = epochs[sec.firstEpoch + j];
                if (older.stores.empty())
                    continue;
                const EpochState &ost = states_[j];
                for (const EpochNode::MemEvent &ld :
                     node.exposedLoads) {
                    // A squash flushes the victim L1 wholesale
                    // (l1SubthreadAware off clears every SL bit), and
                    // only records at or past the rewound-to
                    // checkpoint re-execute and re-set theirs: a load
                    // below the latest restart point is dead — it can
                    // never be violated again. This is what quenches
                    // fine-spacing chains (the checkpoint sits above
                    // the hot B-tree loads) while rec-0-only
                    // configurations re-expose everything and storm.
                    const bool rewound = st.rewound;
                    if (rewound && ld.rec < st.segs.back().fromRec)
                        continue; // SL bit flushed, never re-executed
                    const Cycle tl = timeOf(st, node, ld.rec);
                    if (tl >= (rewound ? oldest_at : oldest_steady))
                        continue; // ran non-speculative: no SL bit
                    auto [lo, hi] = older.storesOnLine(ld.line);
                    // Frozen escaped-store times interleave with
                    // replay-shifted ones, so times are not monotone
                    // in record index: scan the (short) line run.
                    for (const EpochNode::MemEvent *s = lo; s != hi;
                         ++s) {
                        const Cycle ts = store_time(ost, older, *s);
                        if (ts <= tl)
                            continue;
                        if (consumed_.end() !=
                            std::find(consumed_.begin(),
                                      consumed_.end(),
                                      consumedKey(j, s->rec)))
                            continue;
                        if (!found || ts < best_ts) {
                            found = true;
                            best_ts = ts;
                            best_store = s->rec;
                            best_src = j;
                        }
                    }
                }
            }
            const Cycle wave_t = wave_idx < waveScratch_.size()
                                     ? waveScratch_[wave_idx]
                                     : kCycleMax;
            if (!found && wave_t == kCycleMax)
                break;

            if (wave_t < (found ? best_ts : kCycleMax)) {
                // Secondary squash: rewind to the newest checkpoint
                // this epoch had reached when the wave fired, replay
                // the tail after squash delivery. Not counted as a
                // (primary) violation, and no further wave — the
                // machine's secondaries do not themselves squash.
                ++wave_idx;
                std::uint32_t cp_rec = 0;
                for (std::size_t c = st.cpRecs.size(); c-- > 0;) {
                    if (timeOf(st, node, st.cpRecs[c]) <= wave_t) {
                        cp_rec = st.cpRecs[c];
                        break;
                    }
                }
                const Cycle old_cp_time = timeOf(st, node, cp_rec);
                const Cycle base =
                    std::max(wave_t + delivery, old_cp_time);
                st.reached =
                    std::max(st.reached, recAt(st, node, wave_t));
                st.rewound = true;
                while (!st.segs.empty() &&
                       st.segs.back().fromRec >= cp_rec)
                    st.segs.pop_back();
                st.segs.push_back({cp_rec, base, st.reached});
                const Cycle new_end = timeOf(
                    st, node,
                    checkedNarrow<std::uint32_t>(node.view->size()));
                if (new_end > st.end) {
                    st.rawAdded += new_end - st.end;
                    st.end = new_end;
                }
                continue;
            }

            // The machine rewinds to the sub-thread holding the
            // *earliest* still-exposed load of that line; loads before
            // the consumed store's time with matching line share the
            // rewind. Find the earliest such load.
            const EpochNode &older = epochs[sec.firstEpoch + best_src];
            const Addr line = [&] {
                for (const EpochNode::MemEvent &s : older.stores)
                    if (s.rec == best_store)
                        return s.line;
                return Addr{0};
            }();
            std::uint32_t victim_rec = 0;
            bool have_victim = false;
            for (const EpochNode::MemEvent &ld : node.exposedLoads) {
                if (ld.line != line)
                    continue;
                if (st.rewound && ld.rec < st.segs.back().fromRec)
                    continue; // SL bit flushed, never re-executed
                const Cycle tl = timeOf(st, node, ld.rec);
                if (tl < best_ts &&
                    tl < (st.rewound ? oldest_at : oldest_steady)) {
                    victim_rec = ld.rec;
                    have_victim = true;
                    break; // exposedLoads is in record order
                }
            }
            consumed_.push_back(consumedKey(best_src, best_store));
            if (!have_victim)
                continue; // raced past: the load re-executed later

            // Latest checkpoint at or before the victim load.
            auto cp_it = std::upper_bound(st.cpRecs.begin(),
                                          st.cpRecs.end(), victim_rec);
            const std::uint32_t cp_rec = *(cp_it - 1);

            // Restart: squash delivery after the violating store; the
            // machine also never restarts before the rewound-to
            // checkpoint was first reached.
            const Cycle old_cp_time = timeOf(st, node, cp_rec);
            const Cycle base = std::max(best_ts + delivery, old_cp_time);

            st.reached = std::max(st.reached, recAt(st, node, best_ts));
            st.rewound = true;
            while (!st.segs.empty() &&
                   st.segs.back().fromRec >= cp_rec)
                st.segs.pop_back();
            st.segs.push_back({cp_rec, base, st.reached});

            const Cycle new_end = timeOf(
                st, node,
                checkedNarrow<std::uint32_t>(node.view->size()));
            if (new_end > st.end) {
                st.rawAdded += new_end - st.end;
                st.end = new_end;
            }
            ++p.violations;
            // The primary's squash also hits every younger in-flight
            // epoch (secondary); they consume this wave when their
            // turn comes.
            waves_.push_back({best_ts, i});
        }

        // In-order commit: wait for the predecessor's homefree token.
        st.commit = std::max(st.end, last_commit);
        st.commitWait = st.commit - st.end;
        last_commit = st.commit;
        laneFree_[lane] = st.commit;
    }

    Cycle span = last_commit;

    // Occupancy bound: every first-touch line crosses the crossbar and
    // holds an L2 bank for one transfer; the banks bound throughput.
    const Cycle occ_bound = Cycle{total_first_touch} *
                            graph_.lineTransferCycles() /
                            graph_.config().mem.l2Banks;
    Cycle occ_extra = 0;
    if (occ_bound > span) {
        occ_extra = occ_bound - span;
        span = occ_bound;
    }

    p.makespan += span;

    // Attribution: walk the committing chain backward from the last
    // epoch, stitching lane chains through commit waits, so the four
    // classes sum exactly to the section span.
    auto &cls = p.edgeCycles;
    cls[static_cast<unsigned>(EdgeClass::Occupancy)] += occ_extra;
    if (sec.epochCount > 0) {
        std::uint32_t cur = sec.epochCount - 1;
        for (;;) {
            const EpochState &st = states_[cur];
            const EpochNode &node = epochs[sec.firstEpoch + cur];
            cls[static_cast<unsigned>(EdgeClass::Commit)] +=
                st.commitWait;
            const Cycle body = st.end - st.start;
            const Cycle raw = std::min(st.rawAdded, body);
            const Cycle rest = body - raw;
            const Cycle prog =
                node.baseCycles
                    ? rest * node.busyCycles / node.baseCycles
                    : 0;
            cls[static_cast<unsigned>(EdgeClass::Raw)] += raw;
            cls[static_cast<unsigned>(EdgeClass::Program)] += prog;
            cls[static_cast<unsigned>(EdgeClass::Occupancy)] +=
                rest - prog;
            if (st.start == 0)
                break;
            // start == laneFree[lane] == commit of the previous epoch
            // on this lane.
            cur -= num_cpus;
        }
    }
}

Prediction
Analyzer::predict(const AnalyzerConfig &cfg)
{
    Prediction p;
    const std::vector<EpochNode> &epochs = graph_.epochs();

    for (const SectionNode &sec : graph_.sections()) {
        if (sec.txn < cfg.warmupTxns)
            continue; // outside the measured region
        if (!sec.parallel) {
            // Serial section on one CPU: pure program-order chain.
            for (std::uint32_t i = 0; i < sec.epochCount; ++i) {
                const EpochNode &node = epochs[sec.firstEpoch + i];
                p.makespan += node.baseCycles;
                p.edgeCycles[static_cast<unsigned>(
                    EdgeClass::Program)] += node.busyCycles;
                p.edgeCycles[static_cast<unsigned>(
                    EdgeClass::Occupancy)] +=
                    node.baseCycles - node.busyCycles;
            }
            continue;
        }
        runParallelSection(sec, cfg, p);
    }
    return p;
}

} // namespace critpath
} // namespace tlsim
