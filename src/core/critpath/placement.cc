#include "core/critpath/placement.h"

namespace tlsim {
namespace critpath {

void
selectRiskSpawnPoints(const std::vector<std::uint32_t> &risk_offsets,
                      std::uint64_t spec_inst_count,
                      unsigned subthreads, std::uint64_t spacing,
                      std::vector<std::uint64_t> &out)
{
    out.clear();
    if (subthreads < 2)
        return;
    const unsigned slots = subthreads - 1;

    // Thin the (ascending, pre-deduped) candidates to the minimum gap,
    // keeping the earliest offset of each cluster.
    std::uint64_t last = 0; // checkpoint 0 always exists
    for (std::uint32_t off : risk_offsets) {
        if (off >= spec_inst_count)
            break; // a spawn past the epoch body never triggers
        if (off == 0 || off - last < kMinRiskGap)
            continue;
        out.push_back(off);
        last = off;
    }

    if (out.empty()) {
        // No predicted dependences: fixed grid.
        for (unsigned j = 1; j <= slots; ++j) {
            std::uint64_t s = spacing * j;
            if (s >= spec_inst_count)
                break;
            out.push_back(s);
        }
        return;
    }

    if (out.size() <= slots)
        return;

    // More risk points than contexts: keep an evenly-strided subset so
    // coverage spans the epoch instead of clustering at its start.
    std::vector<std::uint64_t> picked;
    picked.reserve(slots);
    const std::size_t n = out.size();
    for (unsigned j = 0; j < slots; ++j) {
        std::size_t idx = (static_cast<std::size_t>(j) * n) / slots;
        if (!picked.empty() && out[idx] <= picked.back())
            continue;
        picked.push_back(out[idx]);
    }
    out = std::move(picked);
}

} // namespace critpath
} // namespace tlsim
