/**
 * @file
 * Dependence-graph builder for the critical-path prediction oracle.
 *
 * A Figure-6 style sweep replays the same captured workload once per
 * (sub-thread count, spacing) grid point, yet almost everything the
 * timing simulator computes is identical across those points: the
 * per-record base cost of every epoch, the cross-epoch RAW dependences,
 * and the L2/crossbar traffic are properties of the *trace*, not of
 * the sub-thread configuration. DepGraph extracts that invariant part
 * once per workload:
 *
 *  - nodes are trace records. Per epoch, one analytic replay pass over
 *    the packed EpochView streams (the same flat SoA layout the replay
 *    hot loop consumes) prices the program-order edges: records run
 *    through a real cpu/Core interval model — dispatch width, ROB and
 *    load-MLP overlap, unpipelined divide/sqrt, GShare-driven branch
 *    penalties — against a one-epoch line-reuse memory model (first
 *    touch of a line pays the L2 path, reuse pays the L1 hit). The
 *    result is a per-record prefix-cycle array, so the cost of any
 *    record span — a whole epoch, or the tail re-executed after a
 *    rewind — is one subtraction;
 *
 *  - cross-epoch RAW edges come from the TraceIndex oracle bits: the
 *    exposed conflict loads of each epoch (potential violation sinks)
 *    and every store to a conflict-candidate line (potential sources),
 *    the latter held in a flat (line, record) table sorted for
 *    equal_range lookup;
 *
 *  - L2/crossbar occupancy edges are summarized as the per-epoch
 *    first-touch line count (each first touch crosses the crossbar and
 *    occupies an L2 bank for one line transfer);
 *
 *  - rewind/restart edges are latent: the analyzer materializes them
 *    per configuration from the RAW events and the sub-thread
 *    checkpoint placement (core/critpath/analyzer.h).
 *
 * The graph depends on the workload, the line size, and the fixed
 * Table-1 machine parameters — NOT on the sub-thread count, spacing,
 * or placement policy. One build serves every point of a sweep.
 */

#ifndef CORE_CRITPATH_GRAPH_H
#define CORE_CRITPATH_GRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "base/config.h"
#include "base/types.h"
#include "core/trace.h"
#include "core/traceindex.h"

namespace tlsim {
namespace critpath {

/** Classes of graph edges a predicted cycle is attributed to. */
enum class EdgeClass : unsigned {
    Program = 0, ///< program-order dispatch/compute/branch edges
    Occupancy,   ///< L1-miss / L2 / crossbar occupancy edges
    Raw,         ///< cross-epoch RAW violation rewind/restart edges
    Commit,      ///< in-order homefree commit serialization edges
};

inline constexpr unsigned kNumEdgeClasses = 4;

const char *edgeClassName(EdgeClass c);

/** One epoch's invariant node/edge data. */
struct EpochNode
{
    const EpochTrace *trace = nullptr;
    const EpochView *view = nullptr;

    /**
     * prefixCycles[i] = analytic cost (cycles from epoch start) of
     * records [0, i); size() + 1 entries. The program-order critical
     * path through the epoch's records, with load overlap resolved.
     */
    std::vector<std::uint32_t> prefixCycles;

    /**
     * prefixSpec[i] = speculative (non-escaped) dynamic instructions
     * dispatched before record i; the coordinate system of sub-thread
     * spawn thresholds. size() + 1 entries.
     */
    std::vector<std::uint32_t> prefixSpec;

    /**
     * prefixReplay[i] = cost of records [0, i) when every escape span
     * (EscapeBegin through EscapeEnd) is free — the machine never
     * re-executes escaped work after a rewind (the escapedDone skip),
     * so a replayed span costs only its speculative records. Used by
     * the analyzer to price rewind segments over already-reached
     * records. size() + 1 entries.
     */
    std::vector<std::uint32_t> prefixReplay;

    Cycle baseCycles = 0; ///< == prefixCycles.back()
    Cycle busyCycles = 0; ///< dispatch/compute share of baseCycles
    std::uint64_t specInstCount = 0;
    std::uint32_t firstTouchLines = 0; ///< distinct lines (L2 traffic)

    /** A RAW endpoint: record index + the cache line it touches. */
    struct MemEvent
    {
        std::uint32_t rec = 0;
        Addr line = 0;
        /** Store inside an escape region. Escaped stores check
         *  violations on their one and only execution — the machine's
         *  escapedDone skip means a rewind never re-executes them — so
         *  the analyzer freezes their firing time at the original
         *  timeline. Always false for loads (exposedLoads excludes
         *  escaped records entirely). */
        bool escaped = false;
    };

    /** Exposed conflict loads (violation sinks), in record order. */
    std::vector<MemEvent> exposedLoads;

    /**
     * Stores to conflict-candidate lines (violation sources, escaped
     * stores included — they check violations too), sorted by
     * (line, rec) for equal_range lookup.
     */
    std::vector<MemEvent> stores;

    /** The sub-span of `stores` hitting `line` (rec ascending). */
    std::pair<const MemEvent *, const MemEvent *>
    storesOnLine(Addr line) const;
};

/** One section of the workload, referencing a run of epoch nodes. */
struct SectionNode
{
    bool parallel = false;
    std::uint32_t txn = 0;        ///< owning transaction index
    std::uint32_t firstEpoch = 0; ///< index into DepGraph::epochs()
    std::uint32_t epochCount = 0;
};

/**
 * The full dependence graph of one captured workload. Immutable after
 * construction; safe to share read-only across analyzer instances.
 */
class DepGraph
{
  public:
    /**
     * Build the graph: one analytic pricing pass per epoch (a single
     * Core instance replays all epochs in global order, so the GShare
     * predictor warms exactly as a serial replay would) plus the RAW
     * event extraction from the TraceIndex oracle bits. `index` must
     * cover `workload` at cfg.mem.lineBytes.
     */
    DepGraph(const WorkloadTrace &workload, const TraceIndex &index,
             const MachineConfig &cfg);

    DepGraph(const DepGraph &) = delete;
    DepGraph &operator=(const DepGraph &) = delete;

    const std::vector<EpochNode> &epochs() const { return epochs_; }
    const std::vector<SectionNode> &sections() const { return sections_; }
    const MachineConfig &config() const { return cfg_; }
    unsigned txnCount() const { return txnCount_; }

    /** Total RAW edges (exposed conflict loads) in the graph. */
    std::uint64_t rawEdges() const { return rawEdges_; }

    /** Cycles one line transfer occupies a crossbar port / L2 bank. */
    unsigned lineTransferCycles() const { return lineTransferCycles_; }

  private:
    void buildEpoch(const EpochTrace &e, EpochNode &node,
                    class BasePricer &pricer);

    MachineConfig cfg_;
    unsigned txnCount_ = 0;
    unsigned lineTransferCycles_ = 0;
    std::vector<EpochNode> epochs_;
    std::vector<SectionNode> sections_;
    std::uint64_t rawEdges_ = 0;
};

} // namespace critpath
} // namespace tlsim

#endif // CORE_CRITPATH_GRAPH_H
