/**
 * @file
 * Predicted-risk sub-thread start-point placement (Section 5.1 of the
 * paper suggests placing sub-thread start points at likely dependence
 * points instead of a fixed spacing; the critical-path oracle makes
 * that prediction available offline).
 *
 * The candidates are an epoch's *risk offsets*: the speculative
 * instruction counts at which the trace pre-analysis found an exposed
 * load of a conflict-candidate line (EpochView::riskOffsets). A
 * checkpoint taken exactly at such an offset means a violation of that
 * load rewinds zero speculative work.
 *
 * The same selection runs in two places and must agree: the TLS
 * machine (TlsConfig::riskPlacement) places real checkpoints with it,
 * and the critical-path analyzer prices the resulting rewind edges.
 */

#ifndef CORE_CRITPATH_PLACEMENT_H
#define CORE_CRITPATH_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace tlsim {
namespace critpath {

/**
 * Minimum speculative instructions between two selected start points:
 * checkpoints closer than this protect almost no extra work but still
 * consume one of the k contexts. The same floor the machine applies
 * to adaptive spacing.
 */
inline constexpr std::uint64_t kMinRiskGap = 200;

/**
 * Select up to `subthreads - 1` sub-thread spawn thresholds (ascending
 * speculative-instruction counts, exclusive of 0) for one epoch.
 *
 * Policy: risk offsets are thinned to a minimum gap of kMinRiskGap
 * (keeping the earliest of each cluster — the earliest exposed load of
 * a cluster is the one a violation rewinds to), then, if more remain
 * than contexts, an evenly-strided subset is kept so the checkpoints
 * still cover the whole epoch. With no risk candidates at all the
 * epoch falls back to the fixed grid `spacing, 2*spacing, ...` — no
 * predicted dependences means spacing exists only to bound overflow
 * rewinds, which fixed placement already does.
 *
 * `out` is overwritten (capacity reused across epochs).
 */
void selectRiskSpawnPoints(const std::vector<std::uint32_t> &risk_offsets,
                           std::uint64_t spec_inst_count,
                           unsigned subthreads, std::uint64_t spacing,
                           std::vector<std::uint64_t> &out);

} // namespace critpath
} // namespace tlsim

#endif // CORE_CRITPATH_PLACEMENT_H
