#include "core/critpath/graph.h"

#include <algorithm>

#include "base/addr.h"
#include "base/lineset.h"
#include "base/log.h"
#include "base/narrow.h"
#include "cpu/core.h"

namespace tlsim {
namespace critpath {

const char *
edgeClassName(EdgeClass c)
{
    switch (c) {
      case EdgeClass::Program: return "program";
      case EdgeClass::Occupancy: return "occupancy";
      case EdgeClass::Raw: return "raw";
      case EdgeClass::Commit: return "commit";
    }
    return "?";
}

std::pair<const EpochNode::MemEvent *, const EpochNode::MemEvent *>
EpochNode::storesOnLine(Addr line) const
{
    auto cmp = [](const MemEvent &e, Addr l) { return e.line < l; };
    const MemEvent *lo = std::lower_bound(
        stores.data(), stores.data() + stores.size(), line, cmp);
    const MemEvent *hi = lo;
    while (hi != stores.data() + stores.size() && hi->line == line)
        ++hi;
    return {lo, hi};
}

/**
 * Prices one epoch's program-order chain on a real cpu/Core interval
 * model against a one-epoch line-reuse memory model: the first access
 * to a line inside the epoch pays the L2 path (hit latency + line
 * transfer), later accesses pay the L1 hit. The Core instance is
 * shared across all epochs so the GShare predictor warms in global
 * record order, exactly as a serial replay would.
 */
class BasePricer
{
  public:
    BasePricer(const CpuConfig &cpu, const MemConfig &mem,
               unsigned line_transfer)
        : core_(cpu, 0), geom_(mem.lineBytes),
          l1Hit_(mem.l1HitLatency),
          missCost_(mem.l2HitLatency + line_transfer)
    {
    }

    Core &core() { return core_; }
    const LineGeom &geom() const { return geom_; }

    void
    beginEpoch()
    {
        seen_.clear();
        firstTouches_ = 0;
    }

    std::uint32_t firstTouches() const { return firstTouches_; }

    void
    load(Addr addr, bool dependent)
    {
        Cycle issue = core_.prepareLoad(dependent);
        core_.finishLoad(issue + access(geom_.lineNum(addr)));
    }

    void
    store(Addr addr)
    {
        access(geom_.lineNum(addr));
        core_.doStore(core_.now());
    }

  private:
    /** Touch a line; returns its data latency. */
    Cycle
    access(Addr line)
    {
        if (!seen_.insert(line))
            return l1Hit_;
        ++firstTouches_;
        return missCost_;
    }

    Core core_;
    LineGeom geom_;
    Cycle l1Hit_;
    Cycle missCost_;
    LineSet seen_;
    std::uint32_t firstTouches_ = 0;
};

DepGraph::DepGraph(const WorkloadTrace &workload,
                   const TraceIndex &index, const MachineConfig &cfg)
    : cfg_(cfg)
{
    if (!index.matches(&workload, cfg.mem.lineBytes))
        panic("DepGraph: trace index does not cover this workload at "
              "line size %u",
              cfg.mem.lineBytes);

    lineTransferCycles_ =
        std::max(1u, cfg.mem.lineBytes / cfg.mem.crossbarBytesPerCycle);
    txnCount_ = checkedNarrow<std::uint32_t>(workload.txns.size());

    std::size_t total_epochs = 0;
    for (const TransactionTrace &txn : workload.txns)
        for (const TraceSection &sec : txn.sections)
            total_epochs += sec.epochs.size();
    epochs_.resize(total_epochs);

    BasePricer pricer(cfg.cpu, cfg.mem, lineTransferCycles_);

    std::uint32_t ei = 0;
    std::uint32_t ti = 0;
    for (const TransactionTrace &txn : workload.txns) {
        for (const TraceSection &sec : txn.sections) {
            SectionNode sn;
            sn.parallel = sec.parallel;
            sn.txn = ti;
            sn.firstEpoch = ei;
            sn.epochCount =
                checkedNarrow<std::uint32_t>(sec.epochs.size());
            sections_.push_back(sn);
            for (const EpochTrace &e : sec.epochs) {
                EpochNode &node = epochs_[ei];
                node.trace = &e;
                node.view = index.viewOf(&e);
                buildEpoch(e, node, pricer);
                rawEdges_ += node.exposedLoads.size();
                ++ei;
            }
        }
        ++ti;
    }
}

void
DepGraph::buildEpoch(const EpochTrace &e, EpochNode &node,
                     BasePricer &pricer)
{
    const EpochView &v = *node.view;
    const std::size_t n = v.size();
    Core &core = pricer.core();
    const LineGeom &geom = pricer.geom();

    node.specInstCount = e.specInstCount;
    node.prefixCycles.resize(n + 1);
    node.prefixSpec.resize(n + 1);

    pricer.beginEpoch();
    const Cycle start = core.now();
    const Breakdown snap = core.breakdown();

    bool esc = false;
    std::uint64_t spec = 0;
    for (std::size_t i = 0; i < n; ++i) {
        node.prefixCycles[i] =
            checkedNarrow<std::uint32_t>(core.now() - start);
        node.prefixSpec[i] = checkedNarrow<std::uint32_t>(spec);

        const std::uint32_t head = v.head[i];
        const TraceOp op = EpochView::op(head);
        std::uint64_t insts = 0;
        switch (op) {
          case TraceOp::Load: {
            pricer.load(v.memAddr(i),
                        EpochView::aux(head) & kAuxDependent);
            insts = EpochView::aux(head) >> kAuxInstShift;
            if (!esc) {
                const bool conflict =
                    (head & EpochView::kConflictBit) != 0;
                const bool covered =
                    (head & EpochView::kCoveredBit) != 0;
                if (conflict && !covered)
                    node.exposedLoads.push_back(
                        {checkedNarrow<std::uint32_t>(i),
                         geom.lineNum(v.memAddr(i))});
            }
            break;
          }
          case TraceOp::Store: {
            pricer.store(v.memAddr(i));
            insts = EpochView::aux(head) >> kAuxInstShift;
            if (head & EpochView::kConflictBit)
                node.stores.push_back(
                    {checkedNarrow<std::uint32_t>(i),
                     geom.lineNum(v.memAddr(i)), esc});
            break;
          }
          case TraceOp::Compute:
            insts = v.value(i);
            core.doCompute(insts, static_cast<ComputeClass>(
                                      EpochView::aux(head)));
            break;
          case TraceOp::Branch:
            core.doBranch(v.pc[i], EpochView::aux(head) & kAuxTaken);
            insts = 1;
            break;
          case TraceOp::LatchAcquire:
          case TraceOp::LatchRelease:
            core.doCompute(4, ComputeClass::Int);
            insts = 4;
            break;
          case TraceOp::EscapeBegin:
            esc = true;
            core.doCompute(2, ComputeClass::Int);
            insts = 0; // the machine charges escape brackets no spec work
            break;
          case TraceOp::EscapeEnd:
            esc = false;
            core.doCompute(2, ComputeClass::Int);
            insts = 0;
            break;
        }
        if (!esc && op != TraceOp::EscapeEnd)
            spec += insts;
    }
    core.drainLoads();

    node.prefixCycles[n] = checkedNarrow<std::uint32_t>(core.now() - start);
    node.prefixSpec[n] = checkedNarrow<std::uint32_t>(spec);

    // Replay pricing: escape spans (brackets included) cost nothing
    // the second time around — the machine's escapedDone skip jumps
    // the cursor over them.
    node.prefixReplay.resize(n + 1);
    esc = false;
    std::uint32_t replay = 0;
    for (std::size_t i = 0; i < n; ++i) {
        node.prefixReplay[i] = replay;
        const TraceOp op = EpochView::op(v.head[i]);
        if (op == TraceOp::EscapeBegin)
            esc = true;
        if (!esc)
            replay += node.prefixCycles[i + 1] - node.prefixCycles[i];
        if (op == TraceOp::EscapeEnd)
            esc = false;
    }
    node.prefixReplay[n] = replay;
    node.baseCycles = core.now() - start;
    node.busyCycles = core.breakdown()[Cat::Busy] - snap[Cat::Busy];
    node.firstTouchLines = pricer.firstTouches();

    // Flat lookup table: stores sorted by (line, rec) so the analyzer
    // resolves "stores of epoch A on line L" with one binary search.
    std::sort(node.stores.begin(), node.stores.end(),
              [](const EpochNode::MemEvent &a,
                 const EpochNode::MemEvent &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.rec < b.rec;
              });
}

} // namespace critpath
} // namespace tlsim
