/**
 * @file
 * Longest-path analyzer over the critical-path dependence graph
 * (core/critpath/graph.h): predicts the makespan of a TLS replay for
 * one sub-thread configuration WITHOUT running the timing simulator,
 * and attributes the predicted cycles to edge classes.
 *
 * Per parallel section the analyzer walks the epochs in commit order,
 * assigning them round-robin to CPU lanes exactly as the machine's
 * per-CPU queues do. An epoch's body cost comes from the graph's
 * prefix-cycle arrays; the configuration-dependent part is
 * materialized on the fly:
 *
 *  - rewind/restart edges: an exposed load of epoch B at predicted
 *    time t_l is violated by the earliest store of an older epoch A to
 *    the same line at t_s > t_l. B rewinds to the sub-thread
 *    checkpoint containing the load (checkpoints placed from the
 *    configuration: fixed grid, adaptive, or predicted-risk points via
 *    core/critpath/placement.h) and re-executes from there starting at
 *    t_s + violationDeliveryLatency. Re-executed record times shift as
 *    a piecewise timeline (one segment per applied rewind), and a
 *    store fires at most once — mirroring the machine, where a store
 *    checks violations exactly when it executes;
 *
 *  - secondary squash waves: a primary violation on epoch B squashes
 *    every younger epoch already in flight at the same instant (the
 *    machine's Figure 4(b) selective restart). The joint restart
 *    re-synchronizes the pipeline — victims' re-executed loads land
 *    after the primary's re-executed stores — so one violation does
 *    not cascade a rewind into every later epoch of the section;
 *
 *  - commit edges: epochs commit in order; a finished body waits for
 *    its predecessor's commit (the homefree token);
 *
 *  - occupancy edges: a parallel section cannot finish faster than its
 *    total first-touch line traffic can cross the L2 banks.
 *
 * The per-edge-class attribution walks the committing chain backward
 * (lane chains stitched by commit waits), so Program + Occupancy +
 * Raw + Commit equals the predicted makespan exactly.
 *
 * The prediction is an abstraction, not a bisimulation: secondary
 * violations, latch serialization, L1 flushes on squash, and
 * contention transients are abstracted away. The `critpath` ctest gate
 * (tests/critpath) asserts the residual error stays inside the stated
 * band after single-point calibration; bench_figure6_sweep's
 * --prune=oracle spends the prediction to skip simulations.
 */

#ifndef CORE_CRITPATH_ANALYZER_H
#define CORE_CRITPATH_ANALYZER_H

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.h"
#include "core/critpath/graph.h"

namespace tlsim {
namespace critpath {

/** Sub-thread start-point placement policies the analyzer can price. */
enum class Placement {
    Fixed, ///< every `spacing` speculative instructions
    Risk,  ///< at predicted exposed-load risk records (placement.h)
};

const char *placementName(Placement p);

/** One point of the configuration space to predict. */
struct AnalyzerConfig
{
    unsigned subthreads = 8;
    std::uint64_t spacing = 5000;
    bool adaptiveSpacing = false;
    Placement placement = Placement::Fixed;
    /** Transactions excluded from the measured region (must match the
     *  simulation being predicted). */
    unsigned warmupTxns = 0;
};

/** The analyzer's output for one configuration. */
struct Prediction
{
    Cycle makespan = 0;
    /** Predicted primary violations (rewind edges taken). */
    std::uint64_t violations = 0;
    /** Cycle attribution; sums exactly to makespan. */
    std::array<Cycle, kNumEdgeClasses> edgeCycles{};

    Cycle edge(EdgeClass c) const
    {
        return edgeCycles[static_cast<unsigned>(c)];
    }
};

/**
 * Evaluates configurations against one DepGraph. Holds reusable
 * scratch, so sweeping many grid points allocates only on the first
 * call. Not thread-safe; use one Analyzer per thread (the graph
 * itself is shared read-only).
 */
class Analyzer
{
  public:
    explicit Analyzer(const DepGraph &graph);

    /** Predict the makespan of a Tls-mode replay at `cfg`. */
    Prediction predict(const AnalyzerConfig &cfg);

  private:
    /** Per-epoch runtime state within the current parallel section. */
    struct EpochState
    {
        /** Piecewise execution timeline: records >= fromRec (up to
         *  the next segment) run at base plus the span cost from
         *  fromRec. One extra segment per applied rewind. Records up
         *  to replayUpTo were already executed before the rewind and
         *  re-price with the graph's escape-skipping replay prefix
         *  (the machine's escapedDone skip); later records pay full
         *  first-execution cost. replayUpTo == 0 on the original
         *  segment. */
        struct Seg
        {
            std::uint32_t fromRec = 0;
            Cycle base = 0;
            std::uint32_t replayUpTo = 0;
        };

        std::vector<Seg> segs;
        std::vector<std::uint32_t> cpRecs; ///< checkpoint record idxs
        Cycle start = 0;
        Cycle end = 0;    ///< body completion (after rewinds)
        /** Furthest record index this epoch had executed past before
         *  any squash so far (monotone across rewinds). */
        std::uint32_t reached = 0;
        /** Whether any rewind (primary or secondary) has been applied;
         *  segs.size() cannot tell, since a rewind to record 0
         *  replaces the original segment instead of appending. */
        bool rewound = false;
        Cycle commit = 0;
        Cycle rawAdded = 0;    ///< cycles added by rewind edges
        Cycle commitWait = 0;
    };

    void runParallelSection(const SectionNode &sec,
                            const AnalyzerConfig &cfg, Prediction &p);

    /** Absolute predicted time record `rec` of `node` completes. */
    static Cycle timeOf(const EpochState &st, const EpochNode &node,
                        std::uint32_t rec);

    /** Largest record index whose predicted time is <= t (the record
     *  the epoch had reached at t); timeOf is monotone in rec. */
    static std::uint32_t recAt(const EpochState &st,
                               const EpochNode &node, Cycle t);

    /** Fill st.cpRecs from the configuration's placement policy. */
    void placeCheckpoints(const EpochNode &node,
                          const AnalyzerConfig &cfg, EpochState &st);

    const DepGraph &graph_;
    std::vector<EpochState> states_;     ///< scratch, per section
    std::vector<Cycle> laneFree_;        ///< scratch, per CPU lane
    std::vector<std::uint64_t> spawnScratch_;
    std::vector<std::uint64_t> consumed_; ///< fired (epoch,store) keys
    /** Primary-violation squash waves of the current section:
     *  (store time, primary epoch index). Younger epochs in flight at
     *  that time take a secondary rewind. */
    std::vector<std::pair<Cycle, std::uint32_t>> waves_;
    std::vector<Cycle> waveScratch_; ///< sorted wave times, per epoch
};

} // namespace critpath
} // namespace tlsim

#endif // CORE_CRITPATH_ANALYZER_H
