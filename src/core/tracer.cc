#include "core/tracer.h"

#include "base/log.h"
#include "base/stats.h"
#include "core/site.h"

namespace tlsim {

Tracer::Tracer(Options opts) : opts_(opts), geom_(opts.lineBytes) {}

EpochTrace &
Tracer::cur()
{
    return workload_.txns.back().sections.back().epochs.back();
}

void
Tracer::append(const TraceRecord &rec)
{
    cur().records.push_back(rec);
}

void
Tracer::memAccess(TraceOp op, Pc pc, Addr a, std::size_t size,
                  bool dependent)
{
    // Split accesses at line boundaries so the replay engine never sees
    // a record spanning two lines. The first chunk carries the whole
    // access's instruction cost (a run of 8-byte moves) and, for
    // loads, the dependent flag; the rest are continuation accesses.
    std::uint16_t insts =
        static_cast<std::uint16_t>(size ? (size + 7) / 8 : 1);
    bool first = true;
    while (size > 0) {
        Addr line_end = geom_.lineAddr(a) + geom_.lineBytes();
        std::size_t chunk = std::min<std::size_t>(size, line_end - a);
        std::uint16_t aux = first
                                ? static_cast<std::uint16_t>(
                                      insts << kAuxInstShift)
                                : 0;
        if (op == TraceOp::Load && dependent && first)
            aux |= kAuxDependent;
        append({op, static_cast<std::uint8_t>(chunk), aux, pc, a});
        a += chunk;
        size -= chunk;
        first = false;
    }
}

void
Tracer::txnBegin()
{
    if (capturing_)
        panic("txnBegin inside an open transaction");
    workload_.txns.emplace_back();
    capturing_ = true;
    inLoop_ = false;
    pendingLoop_ = false;
    escapeDepth_ = 0;
    openSection(false);
}

void
Tracer::openSection(bool parallel)
{
    auto &txn = workload_.txns.back();
    if (!txn.sections.empty())
        closeEpoch();
    txn.sections.emplace_back();
    txn.sections.back().parallel = parallel;
    openEpoch(parallel);
}

void
Tracer::openEpoch(bool add_spawn_overhead)
{
    auto &sec = workload_.txns.back().sections.back();
    sec.epochs.emplace_back();
    // Epochs run hundreds of records; seed from the arena when it has
    // a salvaged buffer, else pre-size to skip the early doubling
    // reallocations on the capture hot path.
    ++captureEpochs_;
    if (spareRecords_.capacity() >= kRecordsReserve) {
        spareRecords_.clear();
        sec.epochs.back().records = std::move(spareRecords_);
        spareRecords_ = std::vector<TraceRecord>{};
        ++captureBufReuses_;
    } else {
        sec.epochs.back().records.reserve(kRecordsReserve);
    }
    if (add_spawn_overhead && opts_.parallelMode &&
        opts_.spawnOverheadInsts > 0) {
        static const Site spawn_site("tls.spawn_epoch");
        append({TraceOp::Compute, 0,
                static_cast<std::uint16_t>(ComputeClass::Int),
                spawn_site.pc, opts_.spawnOverheadInsts});
    }
}

void
Tracer::closeEpoch()
{
    EpochTrace &e = cur();
    e.instCount = 0;
    e.specInstCount = 0;
    e.escapeSpans.clear();
    unsigned depth = 0;
    std::uint32_t begin_idx = 0;
    for (std::uint32_t i = 0; i < e.records.size(); ++i) {
        const TraceRecord &r = e.records[i];
        InstCount n = recordInsts(r);
        e.instCount += n;
        if (r.op == TraceOp::EscapeBegin) {
            if (depth++ == 0)
                begin_idx = i;
        } else if (r.op == TraceOp::EscapeEnd) {
            if (depth == 0)
                panic("unbalanced EscapeEnd in epoch trace");
            if (--depth == 0)
                e.escapeSpans.emplace_back(begin_idx, i);
        } else if (depth == 0) {
            e.specInstCount += n;
        }
    }
    if (depth != 0)
        panic("escaped region left open at end of epoch");
}

void
Tracer::txnEnd()
{
    if (!capturing_)
        panic("txnEnd without txnBegin");
    if (inLoop_ || pendingLoop_)
        panic("txnEnd inside a parallel loop");
    if (escapeDepth_ != 0)
        panic("txnEnd inside an escaped region");
    closeEpoch();
    // Drop empty trailing/intermediate sequential sections, salvaging
    // the largest record buffer for the arena.
    auto &txn = workload_.txns.back();
    std::erase_if(txn.sections, [this](TraceSection &s) {
        bool drop = !s.parallel && s.epochs.size() == 1 &&
                    s.epochs[0].records.empty();
        if (drop && s.epochs[0].records.capacity() >
                        spareRecords_.capacity())
            spareRecords_ = std::move(s.epochs[0].records);
        return drop;
    });
    capturing_ = false;
}

void
Tracer::loopBegin()
{
    if (!capturing_ || !opts_.parallelMode)
        return;
    if (inLoop_ || pendingLoop_)
        panic("nested parallel loops are not supported");
    if (escapeDepth_ != 0)
        panic("loopBegin inside an escaped region");
    pendingLoop_ = true;
}

void
Tracer::iterBegin()
{
    if (!capturing_ || !opts_.parallelMode)
        return;
    if (pendingLoop_) {
        pendingLoop_ = false;
        inLoop_ = true;
        openSection(true);
        return;
    }
    if (!inLoop_)
        panic("iterBegin outside a parallel loop");
    if (escapeDepth_ != 0)
        panic("iterBegin inside an escaped region");
    closeEpoch();
    openEpoch(true);
}

void
Tracer::loopEnd()
{
    if (!capturing_ || !opts_.parallelMode)
        return;
    if (pendingLoop_) {
        // Loop body never ran; nothing was opened.
        pendingLoop_ = false;
        return;
    }
    if (!inLoop_)
        panic("loopEnd without loopBegin");
    if (escapeDepth_ != 0)
        panic("loopEnd inside an escaped region");
    inLoop_ = false;
    openSection(false);
}

void
Tracer::latchAcquire(Pc pc, std::uint64_t latch_id)
{
    if (!capturing_)
        return;
    if (escapeDepth_ == 0)
        panic("latchAcquire outside an escaped region (site %s)",
              SiteRegistry::instance().name(pc).c_str());
    append({TraceOp::LatchAcquire, 0, 0, pc, latch_id});
}

void
Tracer::latchRelease(Pc pc, std::uint64_t latch_id)
{
    if (!capturing_)
        return;
    if (escapeDepth_ == 0)
        panic("latchRelease outside an escaped region (site %s)",
              SiteRegistry::instance().name(pc).c_str());
    append({TraceOp::LatchRelease, 0, 0, pc, latch_id});
}

void
Tracer::escapeBegin(Pc pc)
{
    if (!capturing_)
        return;
    if (escapeDepth_++ == 0)
        append({TraceOp::EscapeBegin, 0, 0, pc, 0});
}

void
Tracer::escapeEnd(Pc pc)
{
    if (!capturing_)
        return;
    if (escapeDepth_ == 0)
        panic("escapeEnd without escapeBegin");
    if (--escapeDepth_ == 0)
        append({TraceOp::EscapeEnd, 0, 0, pc, 0});
}

WorkloadTrace
Tracer::takeWorkload()
{
    if (capturing_)
        panic("takeWorkload inside an open transaction");
    WorkloadTrace out = std::move(workload_);
    workload_ = WorkloadTrace{};
    // Loop-structure state is per-transaction, but an aborted capture
    // (txnEnd never reached) would leak it into the next workload's
    // first transaction: a stale inLoop_ turns its opening section
    // parallel. Recycle it with the capture.
    inLoop_ = false;
    pendingLoop_ = false;
    escapeDepth_ = 0;
    auto &gc = stats::GlobalCounters::instance();
    gc.add("replay.captureEpochs", captureEpochs_);
    gc.add("replay.captureBufReuses", captureBufReuses_);
    captureEpochs_ = 0;
    captureBufReuses_ = 0;
    return out;
}

} // namespace tlsim
