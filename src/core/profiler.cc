#include "core/profiler.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "base/detorder.h"
#include "core/site.h"

namespace tlsim {

void
DependenceProfiler::recordViolation(Pc load_pc, Pc store_pc,
                                    std::uint64_t failed_cycles)
{
    totalFailed_ += failed_cycles;
    ++totalViolations_;

    PairCost *hit = nullptr;
    for (PairCost &p : pairs_) {
        if (p.loadPc == load_pc && p.storePc == store_pc) {
            hit = &p;
            break;
        }
    }
    if (!hit) {
        if (pairs_.size() >= maxEntries_) {
            // Reclaim the entry with the least total cycles (paper:
            // "when the list overflows, we want to reclaim the entry
            // with the least total cycles").
            PairCost *least = &pairs_.front();
            for (PairCost &p : pairs_) {
                if (p.failedCycles < least->failedCycles)
                    least = &p;
            }
            *least = PairCost{load_pc, store_pc, 0, 0};
            hit = least;
        } else {
            pairs_.push_back(PairCost{load_pc, store_pc, 0, 0});
            hit = &pairs_.back();
        }
    }
    hit->failedCycles += failed_cycles;
    ++hit->violations;
}

std::vector<DependenceProfiler::PairCost>
DependenceProfiler::report() const
{
    std::vector<PairCost> out(pairs_.begin(), pairs_.end());
    // Costliest first; equal-cost pairs break by site so the table is
    // identical run to run (a raw descending comparator leaves ties
    // in unspecified order).
    det::canonicalSort(out, [](const PairCost &p) {
        return std::make_tuple(~p.failedCycles, p.loadPc, p.storePc);
    });
    return out;
}

std::string
DependenceProfiler::reportText(unsigned n) const
{
    const auto &reg = SiteRegistry::instance();
    std::ostringstream os;
    os << "rank  failed-cycles  violations  load-site <- store-site\n";
    unsigned rank = 0;
    for (const PairCost &p : report()) {
        if (rank++ >= n)
            break;
        // Load PC 0 means the exposed-load table had lost the entry
        // (direct-mapped conflict) by the time the violation arrived.
        std::string load = p.loadPc
                               ? reg.name(p.loadPc)
                               : std::string("<exposed-load-table miss>");
        os << rank << "  " << p.failedCycles << "  " << p.violations
           << "  " << load << " <- " << reg.name(p.storePc) << "\n";
    }
    return os.str();
}

void
DependenceProfiler::reset()
{
    pairs_.clear();
    totalFailed_ = 0;
    totalViolations_ = 0;
}

} // namespace tlsim
