#include "core/profiler.h"

#include <algorithm>
#include <sstream>

#include "core/site.h"

namespace tlsim {

void
DependenceProfiler::recordViolation(Pc load_pc, Pc store_pc,
                                    std::uint64_t failed_cycles)
{
    totalFailed_ += failed_cycles;
    ++totalViolations_;

    auto key = std::make_pair(load_pc, store_pc);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
        if (pairs_.size() >= maxEntries_) {
            // Reclaim the entry with the least total cycles (paper:
            // "when the list overflows, we want to reclaim the entry
            // with the least total cycles").
            auto least = pairs_.begin();
            for (auto i = pairs_.begin(); i != pairs_.end(); ++i) {
                if (i->second.failedCycles < least->second.failedCycles)
                    least = i;
            }
            pairs_.erase(least);
        }
        it = pairs_.emplace(key, PairCost{load_pc, store_pc, 0, 0}).first;
    }
    it->second.failedCycles += failed_cycles;
    ++it->second.violations;
}

std::vector<DependenceProfiler::PairCost>
DependenceProfiler::report() const
{
    std::vector<PairCost> out;
    out.reserve(pairs_.size());
    for (const auto &[key, cost] : pairs_)
        out.push_back(cost);
    std::sort(out.begin(), out.end(),
              [](const PairCost &a, const PairCost &b) {
                  return a.failedCycles > b.failedCycles;
              });
    return out;
}

std::string
DependenceProfiler::reportText(unsigned n) const
{
    const auto &reg = SiteRegistry::instance();
    std::ostringstream os;
    os << "rank  failed-cycles  violations  load-site <- store-site\n";
    unsigned rank = 0;
    for (const PairCost &p : report()) {
        if (rank++ >= n)
            break;
        // Load PC 0 means the exposed-load table had lost the entry
        // (direct-mapped conflict) by the time the violation arrived.
        std::string load = p.loadPc
                               ? reg.name(p.loadPc)
                               : std::string("<exposed-load-table miss>");
        os << rank << "  " << p.failedCycles << "  " << p.violations
           << "  " << load << " <- " << reg.name(p.storePc) << "\n";
    }
    return os.str();
}

void
DependenceProfiler::reset()
{
    pairs_.clear();
    totalFailed_ = 0;
    totalViolations_ = 0;
}

} // namespace tlsim
