/**
 * @file
 * The TLS machine: replays a captured workload trace on the simulated
 * CMP, implementing the paper's execution model —
 *
 *  - epochs (speculative threads) assigned round-robin to CPU slots,
 *    committing in program order via the homefree token;
 *  - sub-threads: a lightweight checkpoint every `subthreadSpacing`
 *    speculative instructions, up to `subthreadsPerThread` contexts; a
 *    violation rewinds only to the sub-thread containing the exposed
 *    load (Section 2.2);
 *  - violation detection at the L2 from SL/SM metadata, with primary
 *    violations and selective secondary violations through the
 *    sub-thread start table (Figure 4(b));
 *  - escaped speculation: latch acquire/release and other
 *    isolation-unsafe work runs non-speculatively, serializes between
 *    epochs, and is never re-executed after a rewind;
 *  - speculative-state overflow handling when a line cannot be
 *    buffered even in the victim cache;
 *  - the dependence profiler of Section 3.1.
 *
 * Execution modes map to the paper's Figure 5 bars: Serial replays
 * everything on CPU 0 (SEQUENTIAL / TLS-SEQ depending on the trace);
 * Tls is full TLS; NoSpeculation ignores dependences (upper bound).
 */

#ifndef CORE_MACHINE_H
#define CORE_MACHINE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/config.h"
#include "base/lineset.h"
#include "base/poison.h"
#include "base/types.h"
#include "core/audithooks.h"
#include "core/profiler.h"
#include "core/schedulehooks.h"
#include "core/specstate.h"
#include "core/trace.h"
#include "core/traceindex.h"
#include "cpu/breakdown.h"
#include "cpu/core.h"
#include "mem/memsys.h"
#include "mem/tlshooks.h"

namespace tlsim {

/** How to execute the trace (Figure 5 bars). */
enum class ExecMode {
    Serial,        ///< all records on CPU 0, no speculation
    Tls,           ///< full TLS with sub-threads per the config
    NoSpeculation, ///< parallel, dependences ignored (upper bound)
};

const char *execModeName(ExecMode m);

/** Everything a run produces. */
struct RunResult
{
    Cycle makespan = 0;       ///< wall cycles of the measured region
    Breakdown total;          ///< summed over all CPUs
    std::uint64_t txns = 0;
    std::uint64_t epochs = 0;
    InstCount totalInsts = 0; ///< dynamic instructions (committed work)

    std::uint64_t primaryViolations = 0;
    std::uint64_t secondaryViolations = 0;
    std::uint64_t squashes = 0;       ///< rewinds actually applied
    InstCount rewoundInsts = 0;
    std::uint64_t subthreadsStarted = 0;
    std::uint64_t overflowEvents = 0;
    std::uint64_t latchWaits = 0;
    std::uint64_t escapeSkips = 0; ///< escaped regions not re-executed
    std::uint64_t predictorStalls = 0; ///< predictor-synchronized loads
    /** Trace records dispatched in the measured region (including
     *  rewind replays); the bench replay-throughput denominator. */
    std::uint64_t recordsReplayed = 0;

    std::uint64_t l1Hits = 0, l1Misses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0, victimHits = 0;
    std::uint64_t branches = 0, mispredicts = 0;

    /** Invariant checks performed by an attached auditor (0 if none). */
    std::uint64_t auditChecks = 0;
    /** Lines of primary violations, in detection order (measured
     *  region only; the offline checker diffs these against its
     *  independently computed conflict set). */
    std::vector<Addr> violatedLines;
    /** Epoch sequence numbers in homefree-commit order (speculative
     *  sections of the measured region only). */
    std::vector<std::uint64_t> commitOrder;

    double speedupVs(const RunResult &base) const
    {
        return makespan ? static_cast<double>(base.makespan) / makespan
                        : 0.0;
    }
};

/** The simulated CMP executing captured traces. */
class TlsMachine : public TlsHooks
{
  public:
    explicit TlsMachine(const MachineConfig &cfg);

    /**
     * Execute a workload. The first `warmup_txns` transactions run
     * with full machine state but are excluded from the measured
     * statistics (they warm caches and the predictor).
     *
     * `index` is the workload's trace pre-analysis; pass the one the
     * trace cache built so it is shared across simulation points. If
     * absent (or built from a different workload object), the machine
     * builds and keeps its own. Whether the analysis' *oracle bits*
     * are consulted is governed by TlsConfig::useConflictOracle; the
     * packed replay layout is used either way.
     */
    RunResult run(const WorkloadTrace &workload, ExecMode mode,
                  unsigned warmup_txns = 0,
                  const TraceIndex *index = nullptr);

    /** The Section 3.1 profiler (valid after a Tls-mode run). */
    const DependenceProfiler &profiler() const { return profiler_; }

    /**
     * Attach (or detach, with nullptr) a protocol invariant auditor.
     * The sink is borrowed, not owned, and must outlive any run(). The
     * per-access hook fires only when TlsConfig::auditLevel is Full.
     */
    void setAuditSink(AuditSink *sink);

    /**
     * Attach (or detach, with nullptr) an external scheduler for
     * parallel sections (core/schedulehooks.h). Borrowed, not owned;
     * must outlive any run(). With no oracle (or on kDefaultPick) the
     * machine keeps its min-clock policy.
     */
    void setScheduleOracle(ScheduleOracle *oracle);

    /** Dump machine-level statistics (per-CPU caches, predictor,
     *  breakdown) in the gem5-style "name value # desc" format. */
    void dumpStats(std::ostream &os) const;

    const MachineConfig &config() const { return cfg_; }

    // TlsHooks
    std::uint64_t epochSeq(CpuId cpu) const override;
    bool lineHasSpecState(Addr line_num) const override;

  private:
    // ----- runtime structures ----------------------------------------

    struct Checkpoint
    {
        std::uint32_t recIdx = 0;
        CoreCheckpoint core;
        std::uint64_t specInsts = 0;
        std::uint32_t deferredCount = 0; ///< deferredChecks high-water
    };

    enum class RunState { Running, LatchWait, Done, Committed };

    struct EpochRun
    {
        const EpochTrace *trace = nullptr;
        const EpochView *view = nullptr; ///< packed replay streams
        std::uint64_t seq = 0; ///< global program order
        CpuId cpu = 0;
        std::uint32_t cursor = 0;
        RunState st = RunState::Running;

        unsigned curSub = 0;
        std::vector<Checkpoint> cps;
        std::uint64_t specInsts = 0;
        std::uint64_t nextSpawn = 0;
        std::uint64_t spacing = 0; ///< per-epoch sub-thread spacing

        /**
         * Predicted-risk placement (TlsConfig::riskPlacement): the
         * epoch's explicit spawn thresholds, ascending; spawnIdx is
         * the next one to fire (== nextSpawn while any remain). Empty
         * under fixed placement, where nextSpawn advances by spacing.
         */
        std::vector<std::uint64_t> spawnPoints;
        std::size_t spawnIdx = 0;

        bool inEscape = false;
        unsigned escapedDone = 0; ///< completed escape regions (high water)
        unsigned latchesHeld = 0;

        bool pendingSquash = false;
        unsigned squashSub = 0;
        Cycle squashAt = 0;
        Pc squashStorePc = 0;
        Addr squashLine = 0;
        bool squashSecondary = false;
        std::uint64_t waitLatch = 0; ///< latch id blocked on (LatchWait)
        std::vector<std::uint64_t> heldLatches;

        /** startTable[ctx] = (origin epoch seq, my sub at that time) */
        std::vector<std::pair<std::uint64_t, unsigned>> startTable;

        /** Deferred violation checks (non-aggressive update mode). */
        std::vector<std::pair<Addr, Pc>> deferredChecks;

        /** Reset for reuse, keeping the vectors' capacity (the run
         *  pool makes epoch start allocation-free in steady state). */
        void
        recycle()
        {
            trace = nullptr;
            view = nullptr;
            seq = 0;
            cpu = 0;
            cursor = 0;
            st = RunState::Running;
            curSub = 0;
            cps.clear();
            specInsts = 0;
            nextSpawn = 0;
            spacing = 0;
            spawnPoints.clear();
            spawnIdx = 0;
            inEscape = false;
            escapedDone = 0;
            latchesHeld = 0;
            pendingSquash = false;
            squashSub = 0;
            squashAt = 0;
            squashStorePc = 0;
            squashLine = 0;
            squashSecondary = false;
            waitLatch = 0;
            heldLatches.clear();
            startTable.clear();
            deferredChecks.clear();
        }

#if TLSIM_POISON
        poison::Token poisonTok; ///< pool lifecycle canary

        /**
         * Release-time scribble: every scalar recycle() must restore
         * gets a canary, so a field the reset path misses still holds
         * it at the next acquire and assertRecycled() names the bug.
         * Vectors are left alone — recycle() clears them and their
         * retained capacity is the pool's whole point.
         */
        void
        poisonScalars()
        {
            seq = poison::kU64;
            cpu = poison::kU32;
            cursor = poison::kU32;
            curSub = poison::kU32;
            specInsts = poison::kU64;
            nextSpawn = poison::kU64;
            spacing = poison::kU64;
            spawnIdx = poison::kU32;
            escapedDone = poison::kU32;
            latchesHeld = poison::kU32;
            squashSub = poison::kU32;
            squashAt = poison::kU64;
            squashStorePc = poison::kU32;
            squashLine = poison::kU64;
            waitLatch = poison::kU64;
        }

        /** Acquire-time cross-check: recycle() restored every field
         *  to its checkout baseline (no canary survived, no vector
         *  kept elements). The runtime twin of tlslife's P2 pass. */
        void
        assertRecycled() const
        {
            bool clean = !trace && !view && seq == 0 && cpu == 0 &&
                         cursor == 0 && st == RunState::Running &&
                         curSub == 0 && cps.empty() &&
                         specInsts == 0 && nextSpawn == 0 &&
                         spacing == 0 && spawnPoints.empty() &&
                         spawnIdx == 0 && !inEscape &&
                         escapedDone == 0 && latchesHeld == 0 &&
                         !pendingSquash && squashSub == 0 &&
                         squashAt == 0 && squashStorePc == 0 &&
                         squashLine == 0 && !squashSecondary &&
                         waitLatch == 0 && heldLatches.empty() &&
                         startTable.empty() && deferredChecks.empty();
            if (!clean)
                panic("poison: EpochRun acquired with stale state "
                      "(recycle() missed a field)");
        }
#endif
    };

    struct LatchState
    {
        std::uint64_t id = 0;
        std::uint64_t gen = 0; ///< generation that wrote this slot
        bool held = false;
        CpuId owner = 0;
        std::vector<CpuId> waiters; ///< FIFO; stays tiny (< numCpus)
    };

    /**
     * Open-addressed flat table of latch states keyed by latch id
     * (linear probing, power-of-two capacity). Latch acquire/release
     * is a hot per-record path in TPC-C traces, and a node-based map
     * costs an allocation per latch per run. There is no within-run
     * deletion, so probe chains never break; clear() is O(1) via a
     * generation stamp, and per-slot waiter vectors keep their
     * capacity across generations.
     */
    class LatchTable
    {
      public:
        LatchTable() : slots_(kMinCap) {}

        /** Find the latch's state, inserting a fresh one if absent. */
        LatchState &
        acquire(std::uint64_t id)
        {
            if ((live_ + 1) * 4 > slots_.size() * 3)
                grow();
            std::size_t mask = slots_.size() - 1;
            std::size_t idx = hashId(id) & mask;
            for (;;) {
                LatchState &s = slots_[idx];
                if (s.gen != gen_) { // dead slot terminates the probe
                    s.id = id;
                    s.gen = gen_;
                    s.held = false;
                    s.owner = 0;
                    s.waiters.clear();
                    if (s.waiters.capacity() == 0)
                        s.waiters.reserve(8); // FIFO stays < numCpus
                    ++live_;
                    return s;
                }
                if (s.id == id)
                    return s;
                idx = (idx + 1) & mask;
            }
        }

        /** Find the latch's state, or nullptr. */
        LatchState *
        find(std::uint64_t id)
        {
            std::size_t mask = slots_.size() - 1;
            std::size_t idx = hashId(id) & mask;
            for (;;) {
                LatchState &s = slots_[idx];
                if (s.gen != gen_)
                    return nullptr;
                if (s.id == id)
                    return &s;
                idx = (idx + 1) & mask;
            }
        }

        void
        clear()
        {
            ++gen_;
            live_ = 0;
        }

      private:
        static constexpr std::size_t kMinCap = 256;

        static std::size_t
        hashId(std::uint64_t id)
        {
            std::uint64_t x = id + 0x9e3779b97f4a7c15ull;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            return static_cast<std::size_t>(x ^ (x >> 31));
        }

        void
        grow()
        {
            std::vector<LatchState> old(slots_.size() * 2);
            old.swap(slots_);
            std::size_t mask = slots_.size() - 1;
            for (LatchState &s : old) {
                if (s.gen != gen_)
                    continue;
                std::size_t idx = hashId(s.id) & mask;
                while (slots_[idx].gen == gen_)
                    idx = (idx + 1) & mask;
                slots_[idx] = std::move(s);
            }
        }

        std::vector<LatchState> slots_;
        std::uint64_t gen_ = 1; ///< 0 marks never-written slots
        std::size_t live_ = 0;  ///< slots written this generation
    };

    /** One trace record decoded from the packed view streams. */
    struct DecodedRec
    {
        TraceOp op;
        std::uint16_t aux;
        unsigned size;
        Pc pc;
        Addr addr;     ///< full memory address (Load/Store only)
        bool conflict; ///< line is a conflict candidate
        bool covered;  ///< load covered by own earlier stores
    };

    // ----- helpers -----------------------------------------------------

    ContextId ctxId(CpuId cpu, unsigned sub) const
    {
        return cpu * k_ + sub;
    }

    std::uint64_t threadMask(CpuId cpu, unsigned up_to_sub) const
    {
        return ((std::uint64_t{2} << up_to_sub) - 1) << (cpu * k_);
    }

    EpochRun *runOn(CpuId cpu) { return runs_[cpu].get(); }

    /** Take a recycled EpochRun from the pool (or allocate one). */
    std::unique_ptr<EpochRun> acquireRun();
    /** Return the run occupying `cpu`'s slot to the pool. */
    void releaseRun(CpuId cpu);

    void runParallelSection(const TraceSection &sec, ExecMode mode);
    void runSerialEpoch(const EpochTrace &e);
    void startNextEpoch(CpuId cpu);

    /** Process one record (or pending state) on `cpu`. */
    void stepCpu(CpuId cpu);

    /**
     * Step `cpu` repeatedly until a step mutates another CPU's
     * clock/state (schedEvent_), the run leaves Running (or takes a
     * pending squash), or the local clock passes `bound` (ties
     * re-break by CPU index against `bound_idx`). Replays exactly the
     * step sequence the unbatched scheduler loop would have chosen;
     * the body is flattened so the per-record work inlines into one
     * loop instead of a cross-function call per trace record.
     */
    void stepCpuBatch(CpuId cpu, Cycle bound, int bound_idx);

    void execLoad(EpochRun &run, const DecodedRec &d, bool spec);
    void execStore(EpochRun &run, const DecodedRec &d, bool spec);
    void execLatchAcquire(EpochRun &run, Pc pc, std::uint64_t latch_id);
    void execLatchRelease(EpochRun &run, Pc pc, std::uint64_t latch_id);
    void releaseLatch(std::uint64_t latch_id, Cycle at);

    bool isOldest(const EpochRun &run) const;
    void maybeSpawnSubthread(EpochRun &run);
    void checkViolations(EpochRun &storer, Addr line, Pc store_pc);
    void scheduleSquash(EpochRun &victim, unsigned sub, Cycle at,
                        Pc store_pc, Addr line, bool secondary);
    void applySquash(EpochRun &run);
    void handleOverflow(EpochRun &run);
    void commitEpoch(EpochRun &run);
    void finishEpochBody(EpochRun &run);

    /** Charge instruction-side costs common to every record. */
    void chargeRecord(EpochRun &run, InstCount insts);

    void resetAccounting();
    void collect(RunResult &out);

    /** Rebuild auditView_ from live machine state (audit_ attached). */
    void refreshAuditView();

    // ----- state --------------------------------------------------------

    MachineConfig cfg_;
    unsigned k_;       ///< sub-thread contexts per thread
    unsigned numCpus_;
    bool oracleOn_;    ///< consult the pre-analysis oracle bits
    bool tlsActive_ = false;    ///< current section runs parallel epochs
    bool specTracking_ = false; ///< SL/SM tracking + violations enabled

    /** The active workload's pre-analysis (caller's or ownedIndex_). */
    const TraceIndex *index_ = nullptr;
    std::unique_ptr<TraceIndex> ownedIndex_;

    MemSystem mem_;
    std::vector<Core> cores_;
    SpecState spec_;
    std::vector<ExposedLoadTable> exposed_;
    DependenceProfiler profiler_;

    std::vector<std::unique_ptr<EpochRun>> runs_; ///< per CPU slot
    std::vector<std::unique_ptr<EpochRun>> runPool_; ///< recycled runs
    std::vector<std::deque<std::pair<std::uint64_t, const EpochTrace *>>>
        queues_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextCommitSeq_ = 0;
    Cycle lastCommitTime_ = 0;

    /**
     * Cross-CPU scheduling event flag for the batched scheduler: set
     * whenever a step mutates another CPU's clock or run state (squash
     * scheduling, latch hand-off). While it stays false, stepping the
     * picked CPU cannot change which CPU the min-clock scan would pick
     * next, so the scan can be skipped.
     */
    bool schedEvent_ = false;

    LatchTable latches_;

    /** Scratch for checkViolations (avoids per-call allocation). */
    std::vector<unsigned> ownSubScratch_;

    /** Scratch for squash dead-version lines (reused across rewinds). */
    std::vector<Addr> deadLineScratch_;

    /** EpochRun arena tallies, flushed to the "replay.*" global
     *  counter group once per run() (no per-epoch mutex traffic). */
    std::uint64_t poolHits_ = 0;
    std::uint64_t poolAllocs_ = 0;

    /**
     * Mirror of epochSeq(cpu) for every CPU, shared with MemSystem via
     * setEpochSeqArray so propagateStore needs no virtual calls. Kept
     * in sync wherever runs_[cpu] or tlsActive_ changes.
     */
    std::vector<std::uint64_t> cpuSeqs_;

    /** Load PCs that have caused violations (dependence predictor). */
    LineSet predictedLoads_;

    AuditSink *audit_ = nullptr; ///< borrowed invariant auditor
    bool auditFull_ = false;     ///< per-access hook armed (Full level)
    AuditView auditView_;
    ScheduleOracle *schedOracle_ = nullptr; ///< borrowed scheduler

    // measured-region statistics (counter values at measure start)
    RunResult stats_;
    std::uint64_t baseL1Hits_ = 0, baseL1Misses_ = 0;
    std::uint64_t baseL2Hits_ = 0, baseL2Misses_ = 0;
    std::uint64_t baseVictimHits_ = 0;
    std::uint64_t baseBranches_ = 0, baseMispredicts_ = 0;
};

} // namespace tlsim

#endif // CORE_MACHINE_H
