/**
 * @file
 * Seam between the TLS machine and the protocol invariant auditor
 * (src/verify/auditor). The machine owns all speculative state; the
 * auditor only reads it. To keep tlsim_core free of a dependency on
 * tlsim_verify, the machine talks to an abstract AuditSink and hands
 * it a read-only AuditView snapshot on every call; the concrete
 * Auditor lives one library layer up and implements the sink.
 *
 * Hook points (all gated on an attached sink; the per-access hook is
 * additionally gated on AuditLevel::Full so the replay hot path pays
 * nothing at lower levels):
 *
 *   onRunStart     once per TlsMachine::run(), after the full reset
 *   onEpochStart   a speculative epoch occupied a CPU slot
 *   onSpawn        a sub-thread checkpoint was created (start-table
 *                  messages to younger threads already delivered)
 *   onAccess       a tracked speculative load/store completed
 *   onCommit       an epoch passed the homefree token and cleared its
 *                  speculative state
 *   onSquash       a rewind to sub-thread `sub` finished
 */

#ifndef CORE_AUDITHOOKS_H
#define CORE_AUDITHOOKS_H

#include <cstdint>
#include <utility>
#include <vector>

#include "base/types.h"

namespace tlsim {

class SpecState;
class MemSystem;

/** What the auditor may know about one CPU slot's current epoch. */
struct AuditCpuState
{
    bool active = false;  ///< a live (uncommitted) epoch occupies the slot
    std::uint64_t seq = 0;
    unsigned curSub = 0;
    bool pendingSquash = false;
    /** The run's sub-thread start table (Figure 4(b)); null if the
     *  slot is empty or the run predates TLS tracking. */
    const std::vector<std::pair<std::uint64_t, unsigned>> *startTable =
        nullptr;
};

/** Read-only snapshot of the machine state an audit check may touch. */
struct AuditView
{
    const SpecState *spec = nullptr;
    const MemSystem *mem = nullptr;
    unsigned numCpus = 0;
    unsigned k = 0; ///< sub-thread contexts per thread
    std::vector<AuditCpuState> cpus;

    /** Context id of (cpu, sub) — matches the machine's numbering. */
    ContextId ctxId(CpuId cpu, unsigned sub) const
    {
        return cpu * k + sub;
    }

    /** Context mask of a thread's sub-threads 0..up_to_sub. */
    std::uint64_t threadMask(CpuId cpu, unsigned up_to_sub) const
    {
        return ((std::uint64_t{2} << up_to_sub) - 1) << (cpu * k);
    }
};

/** The machine-side interface of the invariant auditor. */
class AuditSink
{
  public:
    virtual ~AuditSink() = default;

    virtual void onRunStart(const AuditView &view) = 0;
    virtual void onEpochStart(const AuditView &view, CpuId cpu,
                              std::uint64_t seq) = 0;
    virtual void onSpawn(const AuditView &view, CpuId cpu,
                         unsigned new_sub) = 0;
    virtual void onAccess(const AuditView &view, CpuId cpu,
                          Addr line) = 0;
    virtual void onCommit(const AuditView &view, CpuId cpu,
                          std::uint64_t seq) = 0;
    virtual void onSquash(const AuditView &view, CpuId cpu,
                          unsigned sub) = 0;

    /** Total invariant checks performed (reported in RunResult). */
    virtual std::uint64_t checks() const = 0;
};

} // namespace tlsim

#endif // CORE_AUDITHOOKS_H
