#include "core/specstate.h"

#include "base/log.h"

namespace tlsim {

SpecState::SpecState(unsigned num_contexts)
    : numContexts_(num_contexts), ctxLines_(num_contexts)
{
    if (num_contexts > kMaxContexts)
        panic("SpecState supports at most %u contexts (asked for %u)",
              kMaxContexts, num_contexts);
}

bool
SpecState::recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
                      std::uint32_t word_mask)
{
    auto it = lines_.find(line);
    if (it != lines_.end()) {
        // Words already produced by this thread's own stores are not
        // exposed (the load reads the thread's own data).
        std::uint32_t own = 0;
        std::uint64_t owners = it->second.smOwners & thread_mask;
        while (owners) {
            unsigned c = static_cast<unsigned>(__builtin_ctzll(owners));
            owners &= owners - 1;
            own |= it->second.sm[c];
        }
        if ((word_mask & ~own) == 0)
            return false; // fully covered: not exposed
    }

    LineSpec &ls = lines_[line];
    std::uint64_t bit = std::uint64_t{1} << ctx;
    if (!(ls.sl & bit) && ls.sm[ctx] == 0)
        ctxLines_[ctx].push_back(line);
    ls.sl |= bit;
    return true;
}

void
SpecState::recordStore(ContextId ctx, Addr line, std::uint32_t word_mask)
{
    LineSpec &ls = lines_[line];
    std::uint64_t bit = std::uint64_t{1} << ctx;
    if (!(ls.sl & bit) && ls.sm[ctx] == 0)
        ctxLines_[ctx].push_back(line);
    ls.sm[ctx] |= word_mask;
    ls.smOwners |= bit;
}

std::uint64_t
SpecState::slHolders(Addr line) const
{
    auto it = lines_.find(line);
    return it == lines_.end() ? 0 : it->second.sl;
}

std::uint64_t
SpecState::stateHolders(Addr line) const
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return 0;
    return it->second.sl | it->second.smOwners;
}

bool
SpecState::lineHasSpecState(Addr line) const
{
    auto it = lines_.find(line);
    return it != lines_.end() && !it->second.empty();
}

bool
SpecState::threadModifiedLine(std::uint64_t thread_mask, Addr line) const
{
    auto it = lines_.find(line);
    return it != lines_.end() && (it->second.smOwners & thread_mask) != 0;
}

std::vector<Addr>
SpecState::clearContext(ContextId ctx, std::uint64_t thread_mask)
{
    std::vector<Addr> dead_versions;
    std::uint64_t bit = std::uint64_t{1} << ctx;
    for (Addr line : ctxLines_[ctx]) {
        auto it = lines_.find(line);
        if (it == lines_.end())
            continue;
        LineSpec &ls = it->second;
        bool had_sm = (ls.smOwners & bit) != 0;
        ls.sl &= ~bit;
        ls.sm[ctx] = 0;
        ls.smOwners &= ~bit;
        if (had_sm && (ls.smOwners & thread_mask) == 0)
            dead_versions.push_back(line);
        if (ls.empty())
            lines_.erase(it);
    }
    ctxLines_[ctx].clear();
    return dead_versions;
}

void
SpecState::clearThread(std::uint64_t thread_mask, ContextId first_ctx,
                       unsigned num_ctxs)
{
    for (unsigned i = 0; i < num_ctxs; ++i) {
        ContextId ctx = first_ctx + i;
        std::uint64_t bit = std::uint64_t{1} << ctx;
        for (Addr line : ctxLines_[ctx]) {
            auto it = lines_.find(line);
            if (it == lines_.end())
                continue;
            LineSpec &ls = it->second;
            ls.sl &= ~bit;
            ls.sm[ctx] = 0;
            ls.smOwners &= ~bit;
            if (ls.empty())
                lines_.erase(it);
        }
        ctxLines_[ctx].clear();
    }
    (void)thread_mask;
}

void
SpecState::reset()
{
    lines_.clear();
    for (auto &v : ctxLines_)
        v.clear();
}

} // namespace tlsim
