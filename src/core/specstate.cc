#include "core/specstate.h"

#include <algorithm>

#include "base/log.h"
#include "base/simd.h"

namespace tlsim {

SpecState::SpecState(unsigned num_contexts)
    : numContexts_(num_contexts),
      smStride_((num_contexts + 7u) & ~7u),
      sm_(kMinCapacity * ((num_contexts + 7u) & ~7u), 0),
      slots_(kMinCapacity), ctrl_(kMinCapacity, kEmpty),
      mask_(kMinCapacity - 1), lastLine_(0), ctxLines_(num_contexts)
{
    if (num_contexts > kMaxContexts)
        panic("SpecState supports at most %u contexts (asked for %u)",
              kMaxContexts, num_contexts);
    // One-time sizing: the per-context line lists grow on the replay
    // hot path and are cleared with capacity kept (clearContext), so
    // reserving here makes steady state allocation-free.
    for (unsigned c = 0; c < num_contexts; ++c)
        ctxLines_[c].reserve(kMinCapacity);
}

std::uint64_t
SpecState::bitOf(ContextId ctx) const
{
    if (ctx >= numContexts_)
        panic("SpecState: context %u out of range (%u contexts)", ctx,
              numContexts_);
    return std::uint64_t{1} << ctx;
}

std::size_t
SpecState::find(Addr line) const
{
    if (lastIdx_ != kNotFound && lastLine_ == line)
        return lastIdx_;
    std::size_t idx = hashLine(line) & mask_;
    while (ctrl_[idx] != kEmpty) {
        if (ctrl_[idx] == kFull && slots_[idx].line == line) {
            lastLine_ = line;
            lastIdx_ = idx;
            return idx;
        }
        idx = (idx + 1) & mask_;
    }
    return kNotFound;
}

std::size_t
SpecState::findOrInsert(Addr line)
{
    if (lastIdx_ != kNotFound && lastLine_ == line)
        return lastIdx_;
    if ((occupied_ + 1) * 4 > slots_.size() * 3)
        grow();
    std::size_t idx = hashLine(line) & mask_;
    std::size_t insert_at = kNotFound;
    while (ctrl_[idx] != kEmpty) {
        if (ctrl_[idx] == kFull && slots_[idx].line == line) {
            lastLine_ = line;
            lastIdx_ = idx;
            return idx;
        }
        if (ctrl_[idx] == kTombstone && insert_at == kNotFound)
            insert_at = idx;
        idx = (idx + 1) & mask_;
    }
    if (insert_at == kNotFound) {
        insert_at = idx;
        ++occupied_; // claiming a virgin slot (tombstones are counted)
    }
    ctrl_[insert_at] = kFull;
    slots_[insert_at].line = line;
    // No spec clear needed: dead slots always hold a zero LineSpec.
    // Tombstones are only created when the spec is empty (smOwners == 0
    // implies every sm[] word is zero), virgin slots are zero-allocated,
    // and reset() re-zeroes whatever was live.
    ++size_;
    lastLine_ = line;
    lastIdx_ = insert_at;
    return insert_at;
}

void
SpecState::eraseAt(std::size_t idx)
{
    ctrl_[idx] = kTombstone;
    --size_;
    if (lastIdx_ == idx)
        lastIdx_ = kNotFound;
}

void
SpecState::grow()
{
    // Double only if genuinely full; a tombstone-heavy table just gets
    // rehashed in place to flush the graves.
    std::size_t new_cap =
        size_ * 4 > slots_.size() ? slots_.size() * 2 : slots_.size();
    std::vector<Slot> old_slots(new_cap);
    std::vector<std::uint8_t> old_ctrl(new_cap, kEmpty);
    std::vector<std::uint32_t> old_sm(new_cap * smStride_, 0);
    old_slots.swap(slots_);
    old_ctrl.swap(ctrl_);
    old_sm.swap(sm_);
    mask_ = new_cap - 1;
    occupied_ = size_;
    lastIdx_ = kNotFound;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
        if (old_ctrl[i] != kFull)
            continue;
        std::size_t idx = hashLine(old_slots[i].line) & mask_;
        while (ctrl_[idx] != kEmpty)
            idx = (idx + 1) & mask_;
        ctrl_[idx] = kFull;
        slots_[idx] = old_slots[i];
        if (old_slots[i].spec.smOwners != 0)
            std::copy_n(&old_sm[i * smStride_], smStride_, smRow(idx));
    }
}

bool
SpecState::recordLoad(ContextId ctx, std::uint64_t thread_mask, Addr line,
                      std::uint32_t word_mask)
{
    std::size_t idx = find(line);
    if (idx != kNotFound) {
        // Words already produced by this thread's own stores are not
        // exposed (the load reads the thread's own data). The merge is
        // the covered-load union over the thread's live sub-thread
        // contexts (vectorized when several contribute).
        const LineSpec &ls = slots_[idx].spec;
        std::uint32_t own =
            simd::maskedUnion64(smRow(idx), ls.smOwners & thread_mask);
        if ((word_mask & ~own) == 0)
            return false; // fully covered: not exposed
    } else {
        idx = findOrInsert(line);
    }

    LineSpec &ls = slots_[idx].spec;
    std::uint64_t bit = bitOf(ctx);
    // sm[ctx] != 0 exactly when the smOwners bit is set (recordStore
    // maintains both together, the clears drop both), so the ctxLines_
    // bookkeeping never has to touch the mask row.
    if (!((ls.sl | ls.smOwners) & bit))
        ctxLines_[ctx].push_back(line);
    ls.sl |= bit;
    return true;
}

void
SpecState::recordLoadExposed(ContextId ctx, Addr line)
{
    std::size_t idx = findOrInsert(line);
    LineSpec &ls = slots_[idx].spec;
    std::uint64_t bit = bitOf(ctx);
    if (!((ls.sl | ls.smOwners) & bit))
        ctxLines_[ctx].push_back(line);
    ls.sl |= bit;
}

void
SpecState::reserveLines(std::size_t lines)
{
    // Target load factor <= 3/4, like findOrInsert's growth trigger.
    std::size_t cap = kMinCapacity;
    while (cap * 3 < (lines + 1) * 4)
        cap *= 2;
    if (cap <= slots_.size())
        return;
    if (size_ != 0)
        panic("SpecState::reserveLines on a non-empty table");
    slots_.assign(cap, Slot{});
    ctrl_.assign(cap, kEmpty);
    sm_.assign(cap * smStride_, 0);
    occupied_ = 0;
    mask_ = cap - 1;
    lastIdx_ = kNotFound;
}

void
SpecState::recordStore(ContextId ctx, Addr line, std::uint32_t word_mask)
{
    std::size_t idx = findOrInsert(line);
    LineSpec &ls = slots_[idx].spec;
    std::uint64_t bit = bitOf(ctx);
    if (!((ls.sl | ls.smOwners) & bit))
        ctxLines_[ctx].push_back(line);
    smRow(idx)[ctx] |= word_mask;
    ls.smOwners |= bit;
}

std::uint64_t
SpecState::slHolders(Addr line) const
{
    std::size_t idx = find(line);
    return idx == kNotFound ? 0 : slots_[idx].spec.sl;
}

std::uint64_t
SpecState::stateHolders(Addr line) const
{
    std::size_t idx = find(line);
    if (idx == kNotFound)
        return 0;
    return slots_[idx].spec.sl | slots_[idx].spec.smOwners;
}

bool
SpecState::lineHasSpecState(Addr line) const
{
    std::size_t idx = find(line);
    return idx != kNotFound && !slots_[idx].spec.empty();
}

std::uint32_t
SpecState::smMask(Addr line, ContextId ctx) const
{
    if (ctx >= numContexts_)
        panic("SpecState::smMask: context %u out of range (%u)", ctx,
              numContexts_);
    std::size_t idx = find(line);
    return idx == kNotFound ? 0 : smRow(idx)[ctx];
}

bool
SpecState::threadModifiedLine(std::uint64_t thread_mask, Addr line) const
{
    std::size_t idx = find(line);
    return idx != kNotFound &&
           (slots_[idx].spec.smOwners & thread_mask) != 0;
}

void
SpecState::clearContext(ContextId ctx, std::uint64_t thread_mask,
                        std::vector<Addr> *dead)
{
    std::uint64_t bit = bitOf(ctx);
    for (Addr line : ctxLines_[ctx]) {
        std::size_t idx = find(line);
        if (idx == kNotFound)
            continue;
        LineSpec &ls = slots_[idx].spec;
        bool had_sm = (ls.smOwners & bit) != 0;
        ls.sl &= ~bit;
        if (had_sm)
            smRow(idx)[ctx] = 0;
        ls.smOwners &= ~bit;
        if (had_sm && (ls.smOwners & thread_mask) == 0)
            // tlsa:allow(A3): reused caller scratch, capacity kept
            dead->push_back(line);
        if (ls.empty())
            eraseAt(idx);
    }
    ctxLines_[ctx].clear();
}

void
SpecState::clearThread(std::uint64_t thread_mask, ContextId first_ctx,
                       unsigned num_ctxs)
{
    for (unsigned i = 0; i < num_ctxs; ++i) {
        ContextId ctx = first_ctx + i;
        std::uint64_t bit = bitOf(ctx);
        for (Addr line : ctxLines_[ctx]) {
            std::size_t idx = find(line);
            if (idx == kNotFound)
                continue;
            LineSpec &ls = slots_[idx].spec;
            ls.sl &= ~bit;
            if (ls.smOwners & bit)
                smRow(idx)[ctx] = 0;
            ls.smOwners &= ~bit;
            if (ls.empty())
                eraseAt(idx);
        }
        ctxLines_[ctx].clear();
    }
    (void)thread_mask;
}

void
SpecState::reset()
{
    // Keep the table's capacity: SpecState is reset once per run and
    // re-populated to a similar size, so the buffer is an arena.
    // Zero the live specs (and their mask rows) first to uphold
    // findOrInsert's invariant that dead slots hold a zero LineSpec.
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (ctrl_[i] == kFull) {
            if (slots_[i].spec.smOwners != 0)
                std::fill_n(smRow(i), smStride_, 0u);
            slots_[i].spec = LineSpec{};
        }
    std::fill(ctrl_.begin(), ctrl_.end(),
              static_cast<std::uint8_t>(kEmpty));
    size_ = 0;
    occupied_ = 0;
    lastIdx_ = kNotFound;
    for (auto &v : ctxLines_)
        v.clear();
}

} // namespace tlsim
