/**
 * @file
 * Runtime protocol invariant auditor (DESIGN.md Section 4.3).
 *
 * The auditor attaches to a TlsMachine through the AuditSink seam and
 * re-derives, from first principles, the invariants the TLS protocol
 * is supposed to maintain over the SpecState metadata, the versioned
 * L2, and the speculative victim cache:
 *
 *  I1  every context holding SL/SM state belongs to a live epoch, in a
 *      sub-thread context the epoch has actually started;
 *  I2  at most one speculative version of a line per thread, and a
 *      thread's L2-or-victim version exists iff the thread has SM bits
 *      on the line (a speculative version without a modifier, or SM
 *      bits without buffering, is a protocol bug);
 *  I3  the same (line, version) is never buffered in both the L2 and
 *      the victim cache;
 *  I4  sub-thread spawns per epoch are monotone: sub-thread indices
 *      increase by exactly one between rewinds, and the spawn's
 *      start-table message reaches every younger live epoch;
 *  I5  a rewind to sub-thread s leaves no SL/SM state in contexts
 *      >= s of the rewound thread (and a full rewind leaves no
 *      speculative line versions at all);
 *  I6  epochs pass the homefree token in program order: committed
 *      sequence numbers are strictly increasing, and a committed
 *      thread leaves no speculative state or line versions behind.
 *
 * AuditLevel::Commit evaluates the global invariants (I1-I3 as a full
 * sweep, I4-I6) at epoch boundaries only; AuditLevel::Full adds a
 * line-local I1-I3 check after every tracked speculative access.
 *
 * Any failure throws AuditViolation naming the invariant, the line and
 * the (cpu, sub-thread) involved.
 */

#ifndef VERIFY_AUDITOR_H
#define VERIFY_AUDITOR_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/config.h"
#include "core/audithooks.h"
#include "core/machine.h"

namespace tlsim {
namespace verify {

/** A protocol invariant did not hold. */
class AuditViolation : public std::runtime_error
{
  public:
    AuditViolation(std::string invariant, std::string detail, Addr line,
                   CpuId cpu, unsigned sub);

    const std::string &invariant() const { return invariant_; }
    Addr line() const { return line_; }
    CpuId cpu() const { return cpu_; }
    unsigned sub() const { return sub_; }

  private:
    std::string invariant_;
    Addr line_;
    CpuId cpu_;
    unsigned sub_;
};

/** The concrete invariant auditor (see file comment for the list). */
class Auditor : public AuditSink
{
  public:
    explicit Auditor(AuditLevel level);

    void onRunStart(const AuditView &view) override;
    void onEpochStart(const AuditView &view, CpuId cpu,
                      std::uint64_t seq) override;
    void onSpawn(const AuditView &view, CpuId cpu,
                 unsigned new_sub) override;
    void onAccess(const AuditView &view, CpuId cpu, Addr line) override;
    void onCommit(const AuditView &view, CpuId cpu,
                  std::uint64_t seq) override;
    void onSquash(const AuditView &view, CpuId cpu,
                  unsigned sub) override;

    std::uint64_t checks() const override { return checks_; }

  private:
    /** I1-I3 for one line (line-local; used by the Full level). */
    void checkLine(const AuditView &view, Addr line, CpuId acting_cpu);
    /** I1-I3 over all speculative state and both caches. */
    void globalSweep(const AuditView &view, CpuId acting_cpu);
    /** No SL/SM state in `ctx_mask`; `what` names the invariant. */
    void checkContextsClean(const AuditView &view,
                            std::uint64_t ctx_mask, const char *what,
                            CpuId cpu, unsigned sub);

    [[noreturn]] void fail(const char *invariant,
                           const std::string &detail, Addr line,
                           CpuId cpu, unsigned sub) const;

    AuditLevel level_;
    std::uint64_t checks_ = 0;
    /** Shadow of each CPU slot's last spawned sub-thread index (I4). */
    std::vector<unsigned> lastSub_;
    bool haveCommit_ = false;
    std::uint64_t lastCommitSeq_ = 0; ///< valid when haveCommit_
};

/**
 * Run `m` on `workload`, attaching an Auditor for the duration when
 * the machine's TlsConfig::auditLevel is not Off. The one entry point
 * every audited caller (tlsim, the benches, the audit tests) uses.
 */
RunResult runWithAudit(TlsMachine &m, const WorkloadTrace &workload,
                       ExecMode mode, unsigned warmup_txns = 0,
                       const TraceIndex *index = nullptr);

} // namespace verify
} // namespace tlsim

#endif // VERIFY_AUDITOR_H
