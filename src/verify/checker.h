/**
 * @file
 * Offline trace checker (the analysis half of tlscheck).
 *
 * Replays a captured workload trace with a plain happens-before
 * algorithm — no caches, no timing, no oracle, none of the simulator's
 * data structures — and independently computes, per parallel section:
 *
 *  - the per-record conflict / covered-load classification (the bits
 *    the TraceIndex oracle bakes into the packed replay stream);
 *  - the RAW-violation candidate set: lines an earlier epoch stores
 *    and a later epoch reads with an *exposed* load (one not covered
 *    by the reader's own earlier stores);
 *  - the line classification totals (epoch-private / read-shared /
 *    conflict).
 *
 * diffAgainstIndex() then demands bit-exact agreement with a
 * TraceIndex: a conflicting line the index classifies as private or
 * read-shared would make the simulator silently skip its violation
 * scan, so any disagreement is a hard error. diffAgainstRun() checks a
 * simulator RunResult for serializability evidence: the committed
 * epoch order must be strictly increasing, and every violation the
 * machine raised must be on a line the checker proved a RAW candidate
 * (the converse is timing-dependent — a potential dependence the
 * scheduling never exposes is not an error).
 */

#ifndef VERIFY_CHECKER_H
#define VERIFY_CHECKER_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/machine.h"
#include "core/trace.h"
#include "core/traceindex.h"

namespace tlsim {
namespace verify {

/** Everything one checkTrace() pass derives from a workload. */
struct CheckResult
{
    /** Per epoch (workload traversal order), one byte per record:
     *  bit 0 = conflict-candidate line, bit 1 = covered load. */
    std::vector<std::vector<std::uint8_t>> epochFlags;

    /** Lines where a later epoch's exposed load reads an earlier
     *  epoch's store (union over all parallel sections). */
    std::unordered_set<Addr> rawLines;

    /** All conflict-candidate lines (superset of rawLines). */
    std::unordered_set<Addr> conflictLines;

    /** Line classification, one count per (section, line) pair —
     *  matches TraceIndex::ClassTotals semantics. */
    std::uint64_t epochPrivate = 0;
    std::uint64_t readShared = 0;
    std::uint64_t conflict = 0;

    std::uint64_t exposedLoads = 0; ///< non-escaped, non-covered loads
    std::uint64_t parallelEpochs = 0;
};

/** Analyse `workload` at `line_bytes` line granularity. */
CheckResult checkTrace(const WorkloadTrace &workload,
                       unsigned line_bytes);

/**
 * Compare the checker's classification against a built (or loaded)
 * TraceIndex for the same workload. Returns human-readable mismatch
 * descriptions; empty means bit-exact agreement.
 */
std::vector<std::string> diffAgainstIndex(const CheckResult &chk,
                                          const TraceIndex &index,
                                          const WorkloadTrace &workload);

/**
 * Validate a simulator run against the checker's ground truth:
 * committed epoch order strictly increasing (serializability of the
 * commit schedule), primary-violation bookkeeping consistent, and
 * every violated line a checker-proven RAW candidate.
 */
std::vector<std::string> diffAgainstRun(const CheckResult &chk,
                                        const RunResult &run);

} // namespace verify
} // namespace tlsim

#endif // VERIFY_CHECKER_H
