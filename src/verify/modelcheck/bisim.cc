/**
 * @file
 * Schedule replay through the real TlsMachine.
 */

#include "verify/modelcheck/bisim.h"

#include <sstream>

#include "base/log.h"
#include "base/rng.h"
#include "core/machine.h"
#include "core/site.h"
#include "core/tracer.h"
#include "verify/auditor.h"
#include "verify/modelcheck/explorer.h"
#include "verify/modelcheck/programs.h"

namespace tlsim {
namespace verify {
namespace mc {

namespace {

/** Model-line stride in the lowered trace, in 8-byte words. Distinct
 *  model lines land on distinct machine lines for any lineBytes up to
 *  64, and 4-byte accesses at the stride never straddle a line. */
constexpr std::size_t kLineStrideWords = 8;

/** AuditSink decorator: forwards to the real Auditor and records the
 *  protocol event sequence for comparison with the model's. */
class EventRecorder : public AuditSink
{
  public:
    explicit EventRecorder(AuditSink *inner) : inner_(inner) {}

    void
    onRunStart(const AuditView &view) override
    {
        inner_->onRunStart(view);
    }
    void
    onEpochStart(const AuditView &view, CpuId cpu,
                 std::uint64_t seq) override
    {
        events_.push_back({Event::Kind::EpochStart, cpu, seq});
        inner_->onEpochStart(view, cpu, seq);
    }
    void
    onSpawn(const AuditView &view, CpuId cpu, unsigned new_sub) override
    {
        events_.push_back({Event::Kind::Spawn, cpu, new_sub});
        inner_->onSpawn(view, cpu, new_sub);
    }
    void
    onAccess(const AuditView &view, CpuId cpu, Addr line) override
    {
        inner_->onAccess(view, cpu, line);
    }
    void
    onCommit(const AuditView &view, CpuId cpu,
             std::uint64_t seq) override
    {
        events_.push_back({Event::Kind::Commit, cpu, seq});
        inner_->onCommit(view, cpu, seq);
    }
    void
    onSquash(const AuditView &view, CpuId cpu, unsigned sub) override
    {
        events_.push_back({Event::Kind::Squash, cpu, sub});
        inner_->onSquash(view, cpu, sub);
    }
    std::uint64_t checks() const override { return inner_->checks(); }

    const std::vector<Event> &events() const { return events_; }

  private:
    AuditSink *inner_;
    std::vector<Event> events_;
};

/** Feeds the machine the model's schedule, verifying at every
 *  scheduler iteration that the runnable sets coincide. */
class ReplayOracle : public ScheduleOracle
{
  public:
    ReplayOracle(std::vector<unsigned> picks,
                 std::vector<std::vector<ScheduleChoice>> runnable)
        : picks_(std::move(picks)), runnable_(std::move(runnable))
    {
    }

    std::size_t
    pick(const std::vector<ScheduleChoice> &choices) override
    {
        if (!error_.empty())
            return kDefaultPick; // already diverged; let the run drain
        if (next_ >= picks_.size()) {
            error_ = "machine scheduler ran past the end of the model "
                     "schedule";
            return kDefaultPick;
        }
        const auto &want = runnable_[next_];
        if (!sameRunnable(want, choices)) {
            std::ostringstream os;
            os << "runnable-set divergence at step " << next_
               << ": model {" << fmt(want) << "} machine {"
               << fmt(choices) << "}";
            error_ = os.str();
            return kDefaultPick;
        }
        unsigned cpu = picks_[next_];
        ++next_;
        for (std::size_t i = 0; i < choices.size(); ++i)
            if (choices[i].cpu == cpu)
                return i;
        // Unreachable given sameRunnable, but fail loudly if not.
        error_ = "scheduled epoch not among runnable slots";
        return kDefaultPick;
    }

    const std::string &error() const { return error_; }
    std::size_t used() const { return next_; }

  private:
    static bool
    sameRunnable(const std::vector<ScheduleChoice> &a,
                 const std::vector<ScheduleChoice> &b)
    {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].cpu != b[i].cpu || a[i].seq != b[i].seq ||
                a[i].commitReady != b[i].commitReady)
                return false;
        return true;
    }

    static std::string
    fmt(const std::vector<ScheduleChoice> &v)
    {
        std::ostringstream os;
        for (const auto &c : v)
            os << ' ' << c.cpu << (c.commitReady ? "!" : "");
        return os.str();
    }

    std::vector<unsigned> picks_;
    std::vector<std::vector<ScheduleChoice>> runnable_;
    std::size_t next_ = 0;
    std::string error_;
};

template <typename T>
bool
diff(std::ostringstream &os, const char *what, const T &model,
     const T &machine)
{
    if (model == machine)
        return false;
    os << what << ": model " << model << ", machine " << machine << "; ";
    return true;
}

} // namespace

BisimOutcome
replaySchedule(const ModelConfig &cfg,
               const std::vector<Program> &programs,
               const std::vector<unsigned> &schedule)
{
    if (cfg.mutation != Mutation::None)
        panic("bisim requires an unmutated model");
    if (cfg.versionBound != 0)
        panic("bisim cannot replay the abstract version bound");

    BisimOutcome out;
    out.modelSteps = schedule.size();

    // ---- model pass: final state + expected runnable set per step --
    ModelState st(cfg, programs);
    std::vector<std::vector<ScheduleChoice>> runnable;
    runnable.reserve(schedule.size());
    std::uint64_t exec_steps = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        std::vector<ScheduleChoice> r;
        for (unsigned d : st.enabledEpochs())
            r.push_back({d, d, st.nextAction(d) == StepKind::Commit});
        runnable.push_back(std::move(r));
        unsigned e = schedule[i];
        if (e >= cfg.epochs || !st.enabled(e))
            panic("bisim schedule step %zu: epoch %u not enabled", i, e);
        StepRecord rec = st.step(e);
        // Every Exec is one machine trace record (violating stores
        // still complete; only overflow retries, impossible here).
        if (rec.kind == StepKind::Exec)
            ++exec_steps;
    }
    if (!st.terminal()) {
        out.detail = "schedule is not maximal";
        return out;
    }

    // ---- lower the programs to a captured trace --------------------
    std::vector<std::uint64_t> buf(cfg.lines * kLineStrideWords, 0);
    Tracer::Options topts;
    topts.parallelMode = true;
    topts.spawnOverheadInsts = 0; // records map 1:1 to model ops
    Tracer tracer(topts);
    Pc pc = SiteRegistry::instance().intern("verify.modelcheck.bisim");
    tracer.txnBegin();
    tracer.loopBegin();
    for (const Program &p : programs) {
        tracer.iterBegin();
        for (const Op &op : p) {
            switch (op.kind) {
              case OpKind::Tick:
                tracer.compute(pc, cfg.tickInsts);
                break;
              case OpKind::Load:
                tracer.load(pc, &buf[op.line * kLineStrideWords], 4);
                break;
              case OpKind::Store:
                tracer.store(pc, &buf[op.line * kLineStrideWords], 4);
                break;
            }
        }
    }
    tracer.loopEnd();
    tracer.txnEnd();
    WorkloadTrace workload = tracer.takeWorkload();

    // ---- machine pass ----------------------------------------------
    MachineConfig mcfg;
    mcfg.tls.numCpus = cfg.epochs; // epoch i -> cpu i, 1:1
    mcfg.tls.subthreadsPerThread = cfg.k;
    mcfg.tls.subthreadSpacing = cfg.spacing;
    mcfg.tls.adaptiveSpacing = false;
    mcfg.tls.useStartTable = cfg.useStartTable;
    mcfg.tls.useConflictOracle = false; // dynamic coverage semantics
    mcfg.tls.useDependencePredictor = false;
    mcfg.tls.auditLevel = AuditLevel::Full;

    TlsMachine machine(mcfg);
    Auditor auditor(AuditLevel::Full);
    EventRecorder recorder(&auditor);
    machine.setAuditSink(&recorder);
    ReplayOracle oracle(schedule, std::move(runnable));
    machine.setScheduleOracle(&oracle);

    RunResult res;
    try {
        res = machine.run(workload, ExecMode::Tls);
    } catch (const AuditViolation &v) {
        out.detail = std::string("machine auditor: ") + v.what();
        return out;
    }
    out.auditChecks = res.auditChecks;

    if (!oracle.error().empty()) {
        out.detail = oracle.error();
        return out;
    }
    if (oracle.used() != schedule.size()) {
        std::ostringstream os;
        os << "machine finished after " << oracle.used() << " of "
           << schedule.size() << " model steps";
        out.detail = os.str();
        return out;
    }

    // ---- compare ----------------------------------------------------
    std::ostringstream os;
    bool bad = false;
    bad |= diff(os, "primaryViolations", st.primaryViolations(),
                res.primaryViolations);
    bad |= diff(os, "secondaryViolations", st.secondaryViolations(),
                res.secondaryViolations);
    bad |= diff(os, "squashes", st.squashes(), res.squashes);
    bad |= diff(os, "subthreadsStarted", st.subthreadsStarted(),
                res.subthreadsStarted);
    bad |= diff(os, "overflowEvents", st.overflowEvents(),
                res.overflowEvents);
    bad |= diff(os, "epochs", std::uint64_t{cfg.epochs}, res.epochs);
    bad |= diff(os, "recordsReplayed", exec_steps, res.recordsReplayed);
    bad |= diff(os, "latchWaits", std::uint64_t{0}, res.latchWaits);

    bool commit_same = st.commitCount() == res.commitOrder.size();
    for (unsigned i = 0; commit_same && i < st.commitCount(); ++i)
        commit_same = st.commitAt(i) == res.commitOrder[i];
    if (!commit_same) {
        os << "commitOrder differs; ";
        bad = true;
    }

    // The machine reports violated lines in its own line numbering.
    const unsigned line_bytes = mcfg.mem.lineBytes;
    auto base = reinterpret_cast<std::uintptr_t>(buf.data());
    std::vector<Addr> want_lines;
    for (std::size_t i = 0; i < st.violatedLineCount(); ++i)
        want_lines.push_back(
            (base + st.violatedLineAt(i) * kLineStrideWords * 8) /
            line_bytes);
    if (want_lines != res.violatedLines) {
        os << "violatedLines differ; ";
        bad = true;
    }

    if (recorder.events().size() != st.eventCount()) {
        os << "event count: model " << st.eventCount() << ", machine "
           << recorder.events().size() << "; ";
        bad = true;
    } else {
        for (std::size_t i = 0; i < st.eventCount(); ++i) {
            if (!(st.event(i) == recorder.events()[i])) {
                os << "event " << i << ": model "
                   << eventToString(st.event(i)) << ", machine "
                   << eventToString(recorder.events()[i]) << "; ";
                bad = true;
                break;
            }
        }
    }

    if (bad) {
        out.detail = os.str();
        return out;
    }
    out.ok = true;
    return out;
}

BisimSweep
sampleBisim(const ModelConfig &cfg, unsigned samples,
            std::uint64_t seed, unsigned program_len)
{
    BisimSweep sweep;
    Rng rng(seed);
    for (unsigned i = 0; i < samples; ++i) {
        auto programs = samplePrograms(cfg, program_len, rng);
        auto schedule = randomSchedule(cfg, programs, rng);
        BisimOutcome out = replaySchedule(cfg, programs, schedule);
        ++sweep.samples;
        sweep.modelSteps += out.modelSteps;
        sweep.auditChecks += out.auditChecks;
        if (!out.ok) {
            ++sweep.failures;
            if (sweep.firstFailure.empty()) {
                std::ostringstream os;
                os << "sample " << i << ": " << out.detail;
                sweep.firstFailure = os.str();
            }
        }
    }
    return sweep;
}

} // namespace mc
} // namespace verify
} // namespace tlsim
