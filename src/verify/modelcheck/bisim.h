/**
 * @file
 * Model <-> machine cross-validation (DESIGN.md Section 4.4).
 *
 * A model schedule is replayed bit-for-bit on the real TlsMachine:
 * the abstract programs are lowered to a captured trace (one 4-byte
 * access per Load/Store at a distinct line, one compute record per
 * Tick, zero spawn overhead so records map 1:1 to model ops), the
 * machine is configured with one CPU slot per epoch, and a
 * ScheduleOracle feeds it the model's epoch choices — verifying at
 * every scheduler iteration that the machine's runnable set equals
 * the model's enabled set, commit-readiness included.
 *
 * After the run, the two executions must agree exactly on:
 *  - the protocol event sequence (epoch starts, spawns, squashes,
 *    commits, with their cpu/sub/seq arguments),
 *  - primary/secondary violation, squash, and sub-thread counters,
 *  - commit order and the per-violation line sequence,
 *  - replayed record count (model Exec steps == machine records).
 * The machine additionally runs under the full protocol Auditor, so
 * every sampled schedule is also an I1-I6 machine check.
 */

#ifndef VERIFY_MODELCHECK_BISIM_H
#define VERIFY_MODELCHECK_BISIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "verify/modelcheck/model.h"

namespace tlsim {
namespace verify {
namespace mc {

/** One schedule replayed through the machine. */
struct BisimOutcome
{
    bool ok = false;
    std::string detail;            ///< first divergence, if !ok
    std::uint64_t modelSteps = 0;  ///< schedule length
    std::uint64_t auditChecks = 0; ///< machine-side invariant checks
};

/**
 * Replay one maximal model schedule through the real machine.
 * `cfg.mutation` must be None and `cfg.versionBound` 0 (mutations and
 * the abstract buffer bound are model-only).
 */
BisimOutcome replaySchedule(const ModelConfig &cfg,
                            const std::vector<Program> &programs,
                            const std::vector<unsigned> &schedule);

/** Aggregate of a random sampling sweep. */
struct BisimSweep
{
    unsigned samples = 0;
    unsigned failures = 0;
    std::string firstFailure;
    std::uint64_t modelSteps = 0;
    std::uint64_t auditChecks = 0;

    bool ok() const { return failures == 0; }
};

/**
 * Sample `samples` random (programs, schedule) pairs at the `cfg`
 * bounds (programs of `program_len` ops each) and replay every one
 * through the machine. Deterministic in `seed`.
 */
BisimSweep sampleBisim(const ModelConfig &cfg, unsigned samples,
                       std::uint64_t seed, unsigned program_len);

} // namespace mc
} // namespace verify
} // namespace tlsim

#endif // VERIFY_MODELCHECK_BISIM_H
