/**
 * @file
 * Abstract protocol model of the sub-thread TLS machine
 * (DESIGN.md Section 4.4).
 *
 * The model executes N abstract epochs (straight-line programs of
 * Load(line) / Store(line) / Tick ops) over M cache lines with k
 * sub-thread contexts per epoch, mirroring TlsMachine's protocol
 * semantics *exactly* at the step granularity of the machine's
 * scheduler loop:
 *
 *   Exec    one program op (one trace record in the machine)
 *   Spawn   a sub-thread checkpoint (specInsts crossed nextSpawn)
 *   Finish  the epoch body completed (RunState::Done)
 *   Rewind  a pending squash was applied
 *   Commit  the epoch passed the homefree token
 *
 * Each epoch has exactly one enabled local action per state, so the
 * only nondeterminism is the interleaving — a schedule is a sequence
 * of epoch ids, and the same sequence can be replayed on the real
 * machine through the ScheduleOracle seam (core/schedulehooks.h) for
 * bit-exact cross-validation (modelcheck/bisim).
 *
 * On top of the machine's semantics the model adds what the machine
 * does not have: abstract *values*. Every store produces a value
 * hash-chained from the epoch's current-execution load observations,
 * and every load records the value it observed (nearest version from
 * an older-or-own thread, else committed memory). At quiescence the
 * checker compares each committed epoch's surviving observations — and
 * final memory — against a serial execution of the same programs;
 * any protocol bug that lets a stale read survive (missed secondary
 * violation, wrong start-table restart sub, premature context recycle)
 * shows up as a serializability failure even if every structural
 * invariant still holds.
 *
 * Checked per step (invariant families of verify/auditor.h):
 *   I1  SL/SM state only in live epochs' started sub-thread contexts
 *   I2  per-thread speculative line version exists iff SM bits do
 *   I4  spawn monotonicity + start-table delivery to younger epochs
 *   I5  a rewind to sub s leaves contexts >= s clean
 *   I6  commits in program order; committed threads leave nothing
 * (I3, L2-xor-victim buffering, is a machine-level placement property
 * with no model analogue; bisimulation replays run the real machine at
 * AuditLevel::Full, which checks it on every sampled schedule.)
 *
 * The protocol mutations of the regression corpus are injected here
 * (Mutation): each corrupts one transition-relation detail and must be
 * caught by bounded exhaustive exploration (modelcheck/explorer).
 *
 * ModelState is a flat fixed-capacity value type: the explorer clones
 * one state per transition on its DFS stack, so a copy must be a
 * straight memberwise copy with no allocation. The kMax* caps below
 * bound the inline storage; the constructor rejects configs beyond
 * them.
 */

#ifndef VERIFY_MODELCHECK_MODEL_H
#define VERIFY_MODELCHECK_MODEL_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.h"

namespace tlsim {
namespace verify {
namespace mc {

// Inline-storage caps (explicit bounds of the bounded checker).
constexpr unsigned kMaxEpochs = 6;
constexpr unsigned kMaxK = 6;
constexpr unsigned kMaxLines = 4;
constexpr unsigned kMaxLen = 8; ///< program ops per epoch
constexpr unsigned kMaxCtx = kMaxEpochs * kMaxK;
constexpr unsigned kMaxEvents = 256;
constexpr unsigned kMaxViolLines = 128;

/** One abstract program op. */
enum class OpKind : std::uint8_t {
    Load,  ///< 4-byte load at the line's base address
    Store, ///< 4-byte store at the line's base address
    Tick,  ///< pure computation of ModelConfig::tickInsts instructions
};

struct Op
{
    OpKind kind = OpKind::Tick;
    std::uint8_t line = 0; ///< ignored for Tick

    bool
    operator==(const Op &o) const
    {
        return kind == o.kind && (kind == OpKind::Tick || line == o.line);
    }
};

using Program = std::vector<Op>;

/** Seeded protocol bugs (regression corpus; see ISSUE satellite). */
enum class Mutation : std::uint8_t {
    None,
    /** Spawn records a too-late sub-thread in younger epochs' start
     *  tables, so a secondary violation restarts too little work. */
    WrongStartTable,
    /** checkViolations never delivers secondary violations at all. */
    MissedSecondary,
    /** A rewind to sub s also recycles (clears) the still-live
     *  context s-1, losing exposed-load tracking the protocol still
     *  needs. */
    PrematureRecycle,
};

const char *mutationName(Mutation m);

/** Empty start-table entry sentinel (the machine's kNoEpoch). */
constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

/** Model bounds and protocol switches (mirrors TlsConfig). */
struct ModelConfig
{
    unsigned epochs = 3; ///< N; one CPU slot per epoch
    unsigned k = 2;      ///< sub-thread contexts per epoch
    unsigned lines = 2;  ///< M distinct cache lines
    std::uint64_t spacing = 100;   ///< TlsConfig::subthreadSpacing
    std::uint64_t tickInsts = 100; ///< instructions per Tick op
    /** Instructions charged per 4-byte Load/Store (the capture
     *  tracer's ceil(size/8) = 1). */
    std::uint64_t memInsts = 1;
    bool useStartTable = true; ///< Figure 4(b) selective restart
    /**
     * Model-only speculative-buffer bound: a tracked store that would
     * create a version beyond this many live versions overflows and
     * squashes the youngest state-holding epoch (the machine's
     * handleOverflow policy). 0 = unbounded (required for bisim; the
     * machine's bound is L2-set-geometry dependent).
     */
    unsigned versionBound = 0;
    Mutation mutation = Mutation::None;

    unsigned contexts() const { return epochs * k; }
};

/** Step kinds at the machine scheduler's granularity. */
enum class StepKind : std::uint8_t { Exec, Spawn, Finish, Rewind, Commit };

const char *stepKindName(StepKind k);

/**
 * What one executed step touched — the input to the explorer's
 * independence relation (modelcheck/explorer.cc).
 */
struct StepRecord
{
    unsigned epoch = 0;
    StepKind kind = StepKind::Exec;
    OpKind op = OpKind::Tick; ///< valid when kind == Exec
    std::uint8_t line = 0;    ///< valid for Load/Store Exec steps
    /** The step scheduled at least one squash (violating store or
     *  overflowing store) — dependent with everything. */
    bool violating = false;
};

/** Observable protocol event (mirrors the AuditSink hook sequence). */
struct Event
{
    enum class Kind : std::uint8_t { EpochStart, Spawn, Squash, Commit };

    Kind kind = Kind::EpochStart;
    CpuId cpu = 0;
    /** seq for EpochStart/Commit; sub-thread index for Spawn/Squash. */
    std::uint64_t arg = 0;

    bool
    operator==(const Event &o) const
    {
        return kind == o.kind && cpu == o.cpu && arg == o.arg;
    }
};

std::string eventToString(const Event &e);

/** A model check failed on some schedule. */
struct ModelViolation
{
    std::string family; ///< "I1.holders-live", "serializability", ...
    std::string detail;
    std::vector<unsigned> schedule; ///< epoch ids reproducing it

    std::string toString() const;
};

/** Which checker families run (tests turn some off to prove the
 *  semantic checks catch mutations on their own). */
struct CheckOptions
{
    bool invariants = true;      ///< I1/I2/I4/I5/I6 after every step
    bool serializability = true; ///< value check at quiescence
    bool liveness = true;        ///< no stuck states at quiescence
};

/**
 * The explicit protocol state. Copyable (the explorer snapshots it on
 * its DFS stack) and deliberately flat: per-line context masks like
 * SpecState, per-epoch cursors/checkpoints like EpochRun, all in
 * fixed-capacity inline arrays so a copy never allocates.
 */
class ModelState
{
  public:
    /**
     * `record_events` gates the protocol event log: bisimulation
     * replays need it, exhaustive exploration does not (and clones
     * states once per transition, so the log would be pure copy
     * weight there).
     */
    ModelState(const ModelConfig &cfg,
               const std::vector<Program> &programs,
               bool record_events = true);
    /** Prefix copy: only the live parts of the inline arrays. */
    ModelState(const ModelState &o);
    ModelState &operator=(const ModelState &) = delete;

    // ----- transition system -----------------------------------------

    /** The epoch's unique enabled action, if any. */
    bool enabled(unsigned e) const;
    StepKind nextAction(unsigned e) const;
    /** Epoch ids with an enabled action, ascending. */
    std::vector<unsigned> enabledEpochs() const;

    /**
     * Execute epoch `e`'s enabled action. Returns its footprint.
     * Checks are separate — the explorer calls checkInvariants()
     * after each step and checkQuiescent() at terminal states.
     */
    StepRecord step(unsigned e);

    /**
     * The exact footprint step(e) would return, without executing —
     * including whether a Store would deliver a violation or overflow
     * in the current state. The explorer's sleep-set filtering needs
     * this to be precise, not conservative.
     */
    StepRecord probe(unsigned e) const;

    /** No epoch has an enabled action. */
    bool
    terminal() const
    {
        for (unsigned e = 0; e < shared_->cfg.epochs; ++e)
            if (enabled(e))
                return false;
        return true;
    }
    bool allCommitted() const;

    // ----- checks ------------------------------------------------------

    /** I1/I2/I4/I5/I6 over the current state; nullopt-style: returns
     *  false and fills `out` on the first violated invariant. */
    bool checkInvariants(ModelViolation &out) const;

    /** Terminal-state checks: liveness + serializability (against the
     *  serial reference cached at construction). */
    bool checkQuiescent(const CheckOptions &check,
                        ModelViolation &out) const;

    // ----- observability ----------------------------------------------

    std::size_t eventCount() const { return nEvents_; }
    Event
    event(std::size_t i) const
    {
        const PackedEvent &p = events_[i];
        return {static_cast<Event::Kind>(p.kind), p.cpu, p.arg};
    }
    std::uint64_t primaryViolations() const { return primary_; }
    std::uint64_t secondaryViolations() const { return secondary_; }
    std::uint64_t squashes() const { return squashes_; }
    std::uint64_t subthreadsStarted() const { return spawns_; }
    std::uint64_t overflowEvents() const { return overflows_; }
    unsigned commitCount() const { return nCommits_; }
    unsigned commitAt(unsigned i) const { return commitOrder_[i]; }
    std::size_t violatedLineCount() const { return nViolLines_; }
    unsigned
    violatedLineAt(std::size_t i) const
    {
        return violatedLines_[i];
    }
    const ModelConfig &config() const { return shared_->cfg; }
    unsigned curSub(unsigned e) const { return epochs_[e].curSub; }

  private:
    enum class RunState : std::uint8_t { Running, Done, Committed };

    // The aggregates below carry no default member initializers so
    // that default-initializing the containing arrays costs nothing;
    // the constructors write every field that is ever read.
    struct Checkpoint
    {
        std::uint32_t opIdx;
        std::uint64_t specInsts;
        std::uint32_t obsCount;
        std::uint64_t obsHash;
    };

    /** startTable[ctx] = (origin epoch, own sub at delivery);
     *  origin == kNoOrigin = empty (mirrors EpochRun::startTable). */
    struct StartEntry
    {
        std::uint8_t origin;
        std::uint8_t sub;
    };
    static constexpr std::uint8_t kNoOrigin = 0xff;

    struct Epoch
    {
        RunState st = RunState::Running;
        std::uint32_t cursor = 0;
        unsigned curSub = 0;
        std::uint64_t specInsts = 0;
        std::uint64_t nextSpawn = 0;
        bool pendingSquash = false;
        unsigned squashSub = 0;
        std::array<Checkpoint, kMaxK> cps;
        unsigned nCps = 0;
        std::array<StartEntry, kMaxCtx> startTable;
        /** Values observed by loads of the current execution. */
        std::array<std::uint64_t, kMaxLen> observations;
        unsigned nObs = 0;
        std::uint64_t obsHash = 0; ///< running fold of observations
    };

    struct LineState
    {
        std::uint64_t sl = 0; ///< SL bit per context
        std::uint64_t sm = 0; ///< SM (whole-line; all ops are 1-word)
        std::uint64_t committedValue = 0;
        /** Per-thread speculative version (valid iff the matching
         *  versionLive bit). */
        std::array<std::uint64_t, kMaxEpochs> version;
        std::uint8_t versionLive = 0; ///< bit per epoch
    };

    struct PackedEvent
    {
        std::uint8_t kind;
        std::uint8_t cpu;
        std::uint16_t arg;
    };

    ContextId ctxId(unsigned e, unsigned sub) const
    {
        return e * shared_->cfg.k + sub;
    }

    std::uint64_t threadMask(unsigned e, unsigned up_to_sub) const
    {
        return ((std::uint64_t{2} << up_to_sub) - 1)
               << (e * shared_->cfg.k);
    }

    bool isOldest(unsigned e) const { return e == nextCommitSeq_; }
    bool spawnEnabled(const Epoch &ep) const;

    bool versionLive(unsigned line, unsigned e) const
    {
        return (lines_[line].versionLive >> e & 1) != 0;
    }

    void pushEvent(Event::Kind kind, unsigned cpu, unsigned arg);

    std::uint64_t loadValue(unsigned e, unsigned line) const;
    void execLoad(unsigned e, unsigned line);
    /** Returns false if the store overflowed (op must retry). */
    bool execStore(unsigned e, unsigned line, StepRecord &rec);
    void checkViolations(unsigned storer, unsigned line,
                         StepRecord &rec);
    void scheduleSquash(unsigned victim, unsigned sub);
    void doSpawn(unsigned e);
    void doRewind(unsigned e);
    void doCommit(unsigned e);
    void clearContext(unsigned e, unsigned sub,
                      std::uint64_t surviving_mask);
    std::uint64_t liveVersions() const;
    /** Record a spec violation detected by a transient post-step
     *  check (reported by the next checkInvariants()). */
    void stash(const char *family, std::string detail);

    /** Immutable per-tuple data, shared by every clone of the state:
     *  bounds, programs, and the serial reference the terminal
     *  serializability check compares against. */
    struct Shared
    {
        ModelConfig cfg;
        std::array<std::array<Op, kMaxLen>, kMaxEpochs> programs{};
        std::array<std::uint8_t, kMaxEpochs> programLen{};
        std::array<std::array<std::uint64_t, kMaxLen>, kMaxEpochs>
            serialObs{};
        std::array<std::uint8_t, kMaxEpochs> nSerialObs{};
        std::array<std::uint64_t, kMaxLines> serialMem{};
    };

    std::shared_ptr<const Shared> shared_;
    // The mutable state below is deliberately NOT value-initialized:
    // the copy constructor fills only live prefixes (bounded by the
    // counts), and every read is count-bounded too.
    std::array<Epoch, kMaxEpochs> epochs_;
    std::array<LineState, kMaxLines> lines_;
    std::uint64_t nextCommitSeq_ = 0;

    std::uint64_t primary_ = 0;
    std::uint64_t secondary_ = 0;
    std::uint64_t squashes_ = 0;
    std::uint64_t spawns_ = 0;
    std::uint64_t overflows_ = 0;
    std::array<std::uint8_t, kMaxEpochs> commitOrder_;
    unsigned nCommits_ = 0;
    std::array<std::uint8_t, kMaxViolLines> violatedLines_;
    unsigned nViolLines_ = 0;
    bool recordEvents_ = true;
    std::array<PackedEvent, kMaxEvents> events_;
    unsigned nEvents_ = 0;
    /** Committed epochs' final observation vectors (serializability). */
    std::array<std::array<std::uint64_t, kMaxLen>, kMaxEpochs>
        finalObs_;
    std::array<std::uint8_t, kMaxEpochs> nFinalObs_;
    /** Shadow of each epoch's last spawned sub (I4, like the
     *  auditor's lastSub_). */
    std::array<std::uint8_t, kMaxEpochs> lastSub_;
    /** First violation found by a transient post-step check. */
    std::string stashedFamily_;
    std::string stashedDetail_;
};

/**
 * Reference semantics: run the programs serially, one epoch after
 * another against a single memory. Returns per-epoch observation
 * vectors and leaves the final line values in `final_values`.
 */
std::vector<std::vector<std::uint64_t>>
serialReference(const ModelConfig &cfg,
                const std::vector<Program> &programs,
                std::vector<std::uint64_t> &final_values);

/** Deterministic value hashing shared by model and reference. */
std::uint64_t mixValue(std::uint64_t x);
std::uint64_t initialLineValue(unsigned line);
std::uint64_t storeValue(unsigned epoch, std::uint32_t op_idx,
                         std::uint64_t obs_hash);
std::uint64_t foldObservation(std::uint64_t obs_hash,
                              std::uint64_t value);

} // namespace mc
} // namespace verify
} // namespace tlsim

#endif // VERIFY_MODELCHECK_MODEL_H
