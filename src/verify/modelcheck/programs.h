/**
 * @file
 * Abstract-program families for the model checker: bounded exhaustive
 * enumeration (every N-tuple of programs over the Tick/Load/Store
 * alphabet, canonicalized up to line renaming) and seeded random
 * sampling for the bisimulation driver.
 */

#ifndef VERIFY_MODELCHECK_PROGRAMS_H
#define VERIFY_MODELCHECK_PROGRAMS_H

#include <vector>

#include "verify/modelcheck/model.h"

namespace tlsim {

class Rng;

namespace verify {
namespace mc {

/** The op alphabet over `lines` lines: Tick, Load(l), Store(l). */
std::vector<Op> opAlphabet(unsigned lines);

/** Every program of exactly `len` ops over the alphabet. */
std::vector<Program> allPrograms(unsigned len, unsigned lines);

/**
 * Every N-tuple (one program per epoch) of length-`len` programs,
 * filtered to canonical representatives: tuples equal to another
 * under a permutation of line names (first-use order, epoch 0 first)
 * are dropped. With `interacting_only`, tuples where no line is
 * stored by one epoch and touched by a different one are dropped too
 * — they exercise no cross-epoch protocol.
 */
std::vector<std::vector<Program>>
programFamilies(unsigned epochs, unsigned len, unsigned lines,
                bool interacting_only);

/**
 * One random interacting tuple for `cfg` (length `len` each), for
 * schedule sampling. Rejection-samples toward cross-epoch conflicts;
 * falls back to the last draw if none shows up.
 */
std::vector<Program> samplePrograms(const ModelConfig &cfg,
                                    unsigned len, Rng &rng);

/** True if some line is stored by one epoch and touched by another. */
bool programsInteract(const std::vector<Program> &programs);

} // namespace mc
} // namespace verify
} // namespace tlsim

#endif // VERIFY_MODELCHECK_PROGRAMS_H
