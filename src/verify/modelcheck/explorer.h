/**
 * @file
 * Bounded exhaustive schedule exploration with dynamic partial-order
 * reduction (DESIGN.md Section 4.4).
 *
 * The explorer enumerates interleavings of a ModelState by stateful
 * DFS (states are small and copied onto the stack, so no replay is
 * needed). Two modes:
 *
 *  - naive: every enabled epoch is branched at every node — the full
 *    interleaving tree. Ground truth for the soundness tests and the
 *    denominator of the reported reduction factor.
 *  - dpor: sleep sets plus persistent-set style backtracking in the
 *    Flanagan/Godefroid shape. When a step is executed, every earlier
 *    step of the path it is dependent with gains a backtrack point at
 *    its pre-state; a child node sleeps every sibling branch whose
 *    pending action is independent of the executed step, plus (on
 *    later branches) the already-explored siblings.
 *
 * The dependence relation (dependentSteps) is conservative — anything
 * not provably commuting is dependent — which keeps the reduction
 * sound; the modelcheck tests cross-check by asserting the naive and
 * DPOR explorations reach the same set of terminal outcomes.
 *
 * Every step is followed by ModelState::checkInvariants and every
 * terminal state by checkQuiescent (liveness + serializability);
 * exploration stops at the first violation and reports the schedule
 * that reproduces it.
 */

#ifndef VERIFY_MODELCHECK_EXPLORER_H
#define VERIFY_MODELCHECK_EXPLORER_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "verify/modelcheck/model.h"

namespace tlsim {

class Rng;

namespace verify {
namespace mc {

struct ExploreConfig
{
    bool dpor = true;
    CheckOptions check;
    /**
     * Path depth bound. 0 = unbounded, which is only sound when the
     * transition system is acyclic — with versionBound != 0, overflow
     * squash/retry loops can cycle, so a bound is required there.
     */
    std::uint64_t maxSteps = 0;
    /** Stop after this many completed schedules (0 = no limit). */
    std::uint64_t maxSchedules = 0;
    /** Record a signature per terminal state (soundness tests). */
    bool collectOutcomes = false;
};

struct ExploreStats
{
    std::uint64_t transitions = 0;        ///< step() executions
    std::uint64_t schedulesCompleted = 0; ///< maximal paths reached
    std::uint64_t sleepBlocked = 0;       ///< paths pruned by sleep sets
    std::uint64_t truncated = 0;          ///< paths cut by maxSteps
    std::uint64_t maxDepth = 0;
};

struct ExploreResult
{
    ExploreStats stats;
    std::vector<ModelViolation> violations;
    /** Canonical terminal-state signatures (collectOutcomes). */
    std::set<std::string> outcomes;
    /** Hit maxSchedules before finishing. */
    bool budgetExhausted = false;

    bool ok() const { return violations.empty(); }
};

/** Explore every interleaving of `programs` under `cfg` bounds. */
ExploreResult explore(const ModelConfig &cfg,
                      const std::vector<Program> &programs,
                      const ExploreConfig &xcfg);

/**
 * Conservative step-dependence relation for different-epoch steps.
 * True unless the two steps provably commute (see explorer.cc for the
 * case analysis). `a` and `b` must be footprints from the same state
 * region; same-epoch steps are always dependent.
 */
bool dependentSteps(const StepRecord &a, const StepRecord &b,
                    const ModelConfig &cfg);

/**
 * Execute one explicit schedule (panics if an entry is disabled).
 * Returns the resulting state; `out_steps`, when non-null, receives
 * each step's footprint.
 */
ModelState runSchedule(const ModelConfig &cfg,
                       const std::vector<Program> &programs,
                       const std::vector<unsigned> &schedule,
                       std::vector<StepRecord> *out_steps = nullptr);

/**
 * A uniformly random maximal schedule (random walk over enabled
 * epochs until terminal) — the bisimulation sampler's source.
 */
std::vector<unsigned> randomSchedule(const ModelConfig &cfg,
                                     const std::vector<Program> &programs,
                                     Rng &rng);

/** Canonical terminal-state signature (what `outcomes` stores). */
std::string outcomeSignature(const ModelState &st);

} // namespace mc
} // namespace verify
} // namespace tlsim

#endif // VERIFY_MODELCHECK_EXPLORER_H
