/**
 * @file
 * Protocol model transition relation. Every function here mirrors a
 * TlsMachine member (core/machine.cc) line-for-line at the protocol
 * level — the comments name the counterpart. Divergence between the
 * two is caught by modelcheck/bisim, which replays model schedules
 * through the real machine via the ScheduleOracle seam.
 */

#include "verify/modelcheck/model.h"

#include <algorithm>
#include <sstream>

#include "base/log.h"

namespace tlsim {
namespace verify {
namespace mc {

// ---------------------------------------------------------------------
// Value hashing
// ---------------------------------------------------------------------

std::uint64_t
mixValue(std::uint64_t x)
{
    // splitmix64 finalizer — the same mix SpecState uses for line
    // hashing; collisions between distinct chains are negligible.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
initialLineValue(unsigned line)
{
    return mixValue(0x1234abcdull + line);
}

std::uint64_t
storeValue(unsigned epoch, std::uint32_t op_idx, std::uint64_t obs_hash)
{
    // Chained from everything the storing execution observed: a
    // re-execution that saw even one different load value produces a
    // different store value, so stale forwarded data is detectable.
    return mixValue(obs_hash ^
                    mixValue((std::uint64_t{epoch} << 32) | op_idx));
}

std::uint64_t
foldObservation(std::uint64_t obs_hash, std::uint64_t value)
{
    return mixValue(obs_hash ^ (value * 0x2545f4914f6cdd1dull));
}

namespace {

std::uint64_t
epochObsSeed(unsigned epoch)
{
    return mixValue(0x0b5e55ed00000000ull ^ epoch);
}

} // namespace

// ---------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::None: return "none";
      case Mutation::WrongStartTable: return "wrong-start-table";
      case Mutation::MissedSecondary: return "missed-secondary";
      case Mutation::PrematureRecycle: return "premature-recycle";
    }
    return "?";
}

const char *
stepKindName(StepKind k)
{
    switch (k) {
      case StepKind::Exec: return "exec";
      case StepKind::Spawn: return "spawn";
      case StepKind::Finish: return "finish";
      case StepKind::Rewind: return "rewind";
      case StepKind::Commit: return "commit";
    }
    return "?";
}

std::string
eventToString(const Event &e)
{
    std::ostringstream os;
    switch (e.kind) {
      case Event::Kind::EpochStart: os << "start"; break;
      case Event::Kind::Spawn: os << "spawn"; break;
      case Event::Kind::Squash: os << "squash"; break;
      case Event::Kind::Commit: os << "commit"; break;
    }
    os << "(cpu=" << e.cpu << ", " << e.arg << ")";
    return os.str();
}

std::string
ModelViolation::toString() const
{
    std::ostringstream os;
    os << family << ": " << detail << " [schedule:";
    for (unsigned e : schedule)
        os << ' ' << e;
    os << ']';
    return os.str();
}

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

ModelState::ModelState(const ModelConfig &cfg,
                       const std::vector<Program> &programs,
                       bool record_events)
    : recordEvents_(record_events)
{
    if (cfg.epochs == 0 || cfg.k == 0 || cfg.lines == 0)
        panic("model bounds must be nonzero");
    if (cfg.epochs > kMaxEpochs || cfg.k > kMaxK ||
        cfg.lines > kMaxLines)
        panic("model bounds exceed inline caps (epochs<=%u k<=%u "
              "lines<=%u)",
              kMaxEpochs, kMaxK, kMaxLines);
    if (cfg.contexts() > 64)
        panic("model needs %u contexts, max 64", cfg.contexts());
    if (programs.size() != cfg.epochs)
        panic("%zu programs for %u epochs", programs.size(), cfg.epochs);

    auto sh = std::make_shared<Shared>();
    sh->cfg = cfg;
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        const Program &p = programs[e];
        if (p.size() > kMaxLen)
            panic("program of %zu ops, max %u", p.size(), kMaxLen);
        sh->programLen[e] = static_cast<std::uint8_t>(p.size());
        for (std::size_t i = 0; i < p.size(); ++i) {
            if (p[i].kind != OpKind::Tick && p[i].line >= cfg.lines)
                panic("op touches line %u of %u", p[i].line, cfg.lines);
            sh->programs[e][i] = p[i];
        }
    }
    // The serial reference depends only on (cfg, programs): compute it
    // once here, where construction is per-tuple, instead of at every
    // terminal state of the exploration.
    std::vector<std::uint64_t> serial_mem;
    auto serial_obs = serialReference(cfg, programs, serial_mem);
    for (unsigned l = 0; l < cfg.lines; ++l)
        sh->serialMem[l] = serial_mem[l];
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        sh->nSerialObs[e] =
            static_cast<std::uint8_t>(serial_obs[e].size());
        for (std::size_t i = 0; i < serial_obs[e].size(); ++i)
            sh->serialObs[e][i] = serial_obs[e][i];
    }
    shared_ = std::move(sh);

    commitOrder_.fill(0);
    nFinalObs_.fill(0);
    lastSub_.fill(0);
    for (unsigned l = 0; l < cfg.lines; ++l)
        lines_[l].committedValue = initialLineValue(l);
    // startNextEpoch: all epochs begin at the section start (the bisim
    // machine runs numCpus == epochs, one slot each), with the implicit
    // sub-0 checkpoint and an empty start table.
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        Epoch &ep = epochs_[e];
        ep.nextSpawn = cfg.spacing;
        ep.cps[ep.nCps++] = {0, 0, 0, epochObsSeed(e)};
        for (unsigned c = 0; c < cfg.contexts(); ++c)
            ep.startTable[c] = {kNoOrigin, 0};
        ep.obsHash = epochObsSeed(e);
        pushEvent(Event::Kind::EpochStart, e, e);
    }
}

ModelState::ModelState(const ModelState &o)
    : shared_(o.shared_), nextCommitSeq_(o.nextCommitSeq_),
      primary_(o.primary_), secondary_(o.secondary_),
      squashes_(o.squashes_), spawns_(o.spawns_),
      overflows_(o.overflows_), commitOrder_(o.commitOrder_),
      nCommits_(o.nCommits_), nViolLines_(o.nViolLines_),
      recordEvents_(o.recordEvents_), nEvents_(o.nEvents_),
      nFinalObs_(o.nFinalObs_), lastSub_(o.lastSub_),
      stashedFamily_(o.stashedFamily_), stashedDetail_(o.stashedDetail_)
{
    const ModelConfig &cfg = shared_->cfg;
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        const Epoch &s = o.epochs_[e];
        Epoch &d = epochs_[e];
        d.st = s.st;
        d.cursor = s.cursor;
        d.curSub = s.curSub;
        d.specInsts = s.specInsts;
        d.nextSpawn = s.nextSpawn;
        d.pendingSquash = s.pendingSquash;
        d.squashSub = s.squashSub;
        d.nCps = s.nCps;
        for (unsigned i = 0; i < s.nCps; ++i)
            d.cps[i] = s.cps[i];
        for (unsigned c = 0; c < cfg.contexts(); ++c)
            d.startTable[c] = s.startTable[c];
        d.nObs = s.nObs;
        for (unsigned i = 0; i < s.nObs; ++i)
            d.observations[i] = s.observations[i];
        d.obsHash = s.obsHash;
        for (unsigned i = 0; i < nFinalObs_[e]; ++i)
            finalObs_[e][i] = o.finalObs_[e][i];
    }
    for (unsigned l = 0; l < cfg.lines; ++l) {
        const LineState &s = o.lines_[l];
        LineState &d = lines_[l];
        d.sl = s.sl;
        d.sm = s.sm;
        d.committedValue = s.committedValue;
        d.versionLive = s.versionLive;
        for (unsigned e = 0; e < cfg.epochs; ++e)
            d.version[e] = s.version[e];
    }
    for (unsigned i = 0; i < nViolLines_; ++i)
        violatedLines_[i] = o.violatedLines_[i];
    for (unsigned i = 0; i < nEvents_; ++i)
        events_[i] = o.events_[i];
}

void
ModelState::pushEvent(Event::Kind kind, unsigned cpu, unsigned arg)
{
    if (!recordEvents_)
        return;
    if (nEvents_ >= kMaxEvents)
        panic("model event log overflow (cap %u)", kMaxEvents);
    events_[nEvents_++] = {static_cast<std::uint8_t>(kind),
                           static_cast<std::uint8_t>(cpu),
                           static_cast<std::uint16_t>(arg)};
}

// ---------------------------------------------------------------------
// Transition system
// ---------------------------------------------------------------------

bool
ModelState::spawnEnabled(const Epoch &ep) const
{
    // stepCpu: curSub + 1 < k && specInsts >= nextSpawn. (Not gated on
    // oldest-ness — the machine checkpoints the oldest epoch too.)
    return ep.curSub + 1 < shared_->cfg.k &&
           ep.specInsts >= ep.nextSpawn;
}

bool
ModelState::enabled(unsigned e) const
{
    const Epoch &ep = epochs_[e];
    if (ep.st == RunState::Committed)
        return false;
    if (ep.st == RunState::Done)
        return isOldest(e); // commit_ready: homefree token held
    return true;            // Running always has a unique action
}

StepKind
ModelState::nextAction(unsigned e) const
{
    const Epoch &ep = epochs_[e];
    if (ep.st == RunState::Done)
        return StepKind::Commit;
    // stepCpu's dispatch order, exactly:
    if (ep.pendingSquash)
        return StepKind::Rewind;
    if (ep.cursor >= shared_->programLen[e])
        return StepKind::Finish;
    if (spawnEnabled(ep))
        return StepKind::Spawn;
    return StepKind::Exec;
}

std::vector<unsigned>
ModelState::enabledEpochs() const
{
    std::vector<unsigned> out;
    for (unsigned e = 0; e < shared_->cfg.epochs; ++e)
        if (enabled(e))
            out.push_back(e);
    return out;
}

bool
ModelState::allCommitted() const
{
    for (unsigned e = 0; e < shared_->cfg.epochs; ++e)
        if (epochs_[e].st != RunState::Committed)
            return false;
    return true;
}

StepRecord
ModelState::step(unsigned e)
{
    if (!enabled(e))
        panic("step of disabled epoch %u", e);
    Epoch &ep = epochs_[e];
    StepRecord rec;
    rec.epoch = e;
    rec.kind = nextAction(e);
    switch (rec.kind) {
      case StepKind::Rewind:
        doRewind(e);
        break;
      case StepKind::Finish:
        ep.st = RunState::Done; // finishEpochBody
        break;
      case StepKind::Commit:
        doCommit(e);
        break;
      case StepKind::Spawn:
        doSpawn(e);
        break;
      case StepKind::Exec: {
        const Op &op = shared_->programs[e][ep.cursor];
        rec.op = op.kind;
        rec.line = op.line;
        switch (op.kind) {
          case OpKind::Tick:
            ep.specInsts += shared_->cfg.tickInsts;
            ++ep.cursor;
            break;
          case OpKind::Load:
            execLoad(e, op.line);
            break;
          case OpKind::Store:
            execStore(e, op.line, rec);
            break;
        }
        break;
      }
    }
    return rec;
}

StepRecord
ModelState::probe(unsigned e) const
{
    const ModelConfig &cfg = shared_->cfg;
    StepRecord rec;
    rec.epoch = e;
    rec.kind = nextAction(e);
    if (rec.kind != StepKind::Exec)
        return rec;
    const Epoch &ep = epochs_[e];
    const Op &op = shared_->programs[e][ep.cursor];
    rec.op = op.kind;
    rec.line = op.line;
    if (op.kind == OpKind::Store) {
        const LineState &L = lines_[op.line];
        if (!isOldest(e)) {
            if (cfg.versionBound != 0 && !versionLive(op.line, e) &&
                liveVersions() >= cfg.versionBound) {
                rec.violating = true; // would overflow and squash
                return rec;
            }
        }
        // Would checkViolations find a younger exposed reader?
        std::uint64_t holders = L.sl & ~threadMask(e, cfg.k - 1);
        while (holders) {
            unsigned ctx =
                static_cast<unsigned>(__builtin_ctzll(holders));
            holders &= holders - 1;
            if (ctx / cfg.k > e) {
                rec.violating = true;
                break;
            }
        }
    }
    return rec;
}

// ---------------------------------------------------------------------
// Accesses
// ---------------------------------------------------------------------

std::uint64_t
ModelState::loadValue(unsigned e, unsigned line) const
{
    // Versioned read: the youngest speculative version no younger than
    // the reader (own stores included), else committed memory. Older
    // committed epochs already merged into committedValue.
    const LineState &L = lines_[line];
    for (unsigned d = e + 1; d-- > 0;)
        if (L.versionLive >> d & 1)
            return L.version[d];
    return L.committedValue;
}

void
ModelState::execLoad(unsigned e, unsigned line)
{
    Epoch &ep = epochs_[e];
    LineState &L = lines_[line];

    std::uint64_t v = loadValue(e, line);
    ep.observations[ep.nObs++] = v;
    ep.obsHash = foldObservation(ep.obsHash, v);

    // execLoad: strack = spec && specTracking && !isOldest; the oldest
    // epoch reads non-speculatively (no SL, cannot be violated).
    if (!isOldest(e)) {
        // SpecState::recordLoad — only loads not covered by the
        // thread's own earlier stores are exposed and set SL.
        bool exposed = (L.sm & threadMask(e, ep.curSub)) == 0;
        if (exposed)
            L.sl |= std::uint64_t{1} << ctxId(e, ep.curSub);
    }
    ep.specInsts += shared_->cfg.memInsts;
    ++ep.cursor;
}

bool
ModelState::execStore(unsigned e, unsigned line, StepRecord &rec)
{
    const ModelConfig &cfg = shared_->cfg;
    Epoch &ep = epochs_[e];
    LineState &L = lines_[line];
    bool strack = !isOldest(e);

    if (strack && cfg.versionBound != 0 && !versionLive(line, e) &&
        liveVersions() >= cfg.versionBound) {
        // handleOverflow: the speculative buffer is full. Squash the
        // youngest thread holding speculative state to free space (or
        // ourselves, back to sub 0, if nothing younger holds any); the
        // access retries, so the cursor does not advance.
        ++overflows_;
        unsigned victim = e;
        bool found = false;
        for (unsigned d = cfg.epochs; d-- > 0;) {
            if (epochs_[d].st == RunState::Committed)
                continue;
            bool holds = false;
            for (unsigned l = 0; l < cfg.lines; ++l) {
                const LineState &ls = lines_[l];
                std::uint64_t mask = threadMask(d, cfg.k - 1);
                if (((ls.sl | ls.sm) & mask) != 0 ||
                    (ls.versionLive >> d & 1) != 0) {
                    holds = true;
                    break;
                }
            }
            if (holds) {
                victim = d;
                found = true;
                break;
            }
        }
        if (!found)
            victim = e;
        scheduleSquash(victim, 0);
        rec.violating = true;
        return false;
    }

    std::uint64_t val = storeValue(e, ep.cursor, ep.obsHash);
    if (strack) {
        // mem_.store(strack) buffers a per-thread version;
        // SpecState::recordStore sets the SM bit.
        L.version[e] = val;
        L.versionLive |= std::uint8_t(1u << e);
        L.sm |= std::uint64_t{1} << ctxId(e, ep.curSub);
    } else if (L.versionLive >> e & 1) {
        // The oldest epoch writes non-speculatively, but if the thread
        // still buffers its own version of the line (stores made
        // before it became oldest), the write updates that version —
        // the thread's image of the line — and reaches memory when
        // the versions commit.
        L.version[e] = val;
    } else {
        // The oldest epoch writes committed memory directly…
        L.committedValue = val;
    }
    // …but every store, tracked or not, scans for younger exposed
    // readers (execStore always calls checkViolations under
    // aggressive updates).
    checkViolations(e, line, rec);
    ep.specInsts += cfg.memInsts;
    ++ep.cursor;
    return true;
}

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

void
ModelState::checkViolations(unsigned storer, unsigned line,
                            StepRecord &rec)
{
    const ModelConfig &cfg = shared_->cfg;
    const LineState &L = lines_[line];
    std::uint64_t holders = L.sl;
    holders &= ~threadMask(storer, cfg.k - 1); // never self-violate
    if (!holders)
        return;

    std::array<unsigned, kMaxEpochs> own_sub;
    own_sub.fill(cfg.k);
    unsigned primary = cfg.epochs;
    while (holders) {
        unsigned ctx = static_cast<unsigned>(__builtin_ctzll(holders));
        holders &= holders - 1;
        unsigned d = ctx / cfg.k;
        unsigned sub = ctx % cfg.k;
        if (d <= storer) // older threads legitimately read the old value
            continue;
        own_sub[d] = std::min(own_sub[d], sub);
        if (primary == cfg.epochs || d < primary)
            primary = d;
    }
    if (primary == cfg.epochs)
        return;

    unsigned primary_sub = own_sub[primary];
    ++primary_;
    if (nViolLines_ >= kMaxViolLines)
        panic("model violated-line log overflow (cap %u)",
              kMaxViolLines);
    violatedLines_[nViolLines_++] = static_cast<std::uint8_t>(line);
    rec.violating = true;
    scheduleSquash(primary, primary_sub);

    // Secondary violations from the primary's restarted sub-thread:
    // with the start table only dependent sub-threads restart
    // (Figure 4(b)), otherwise whole threads (4(a)).
    ContextId origin_ctx = ctxId(primary, primary_sub);
    if (cfg.mutation != Mutation::MissedSecondary) {
        for (unsigned d = primary + 1; d < cfg.epochs; ++d) {
            if (epochs_[d].st == RunState::Committed)
                continue;
            unsigned sub = 0;
            if (cfg.useStartTable) {
                const StartEntry &entry =
                    epochs_[d].startTable[origin_ctx];
                if (entry.origin == primary)
                    sub = entry.sub;
            }
            if (own_sub[d] < sub)
                sub = own_sub[d]; // it also read the line directly
            ++secondary_;
            scheduleSquash(d, sub);
        }
    }

    // Spec check (independent of the transition code above): a primary
    // violation must leave every live younger epoch with a pending
    // squash — the protocol's violation-propagation rule (I4 family).
    for (unsigned d = primary + 1; d < cfg.epochs; ++d) {
        if (epochs_[d].st == RunState::Committed)
            continue;
        if (!epochs_[d].pendingSquash) {
            std::ostringstream os;
            os << "store by epoch " << storer << " to line " << line
               << " violated epoch " << primary << " but epoch " << d
               << " received no secondary violation";
            stash("I4.secondary-missing", os.str());
        }
    }
}

void
ModelState::scheduleSquash(unsigned victim, unsigned sub)
{
    Epoch &ep = epochs_[victim];
    if (sub > ep.curSub)
        sub = ep.curSub;
    if (ep.pendingSquash)
        ep.squashSub = std::min(ep.squashSub, sub);
    else {
        ep.pendingSquash = true;
        ep.squashSub = sub;
    }
    if (ep.st == RunState::Done)
        ep.st = RunState::Running; // pulled back from the homefree wait
}

void
ModelState::doRewind(unsigned e)
{
    const ModelConfig &cfg = shared_->cfg;
    Epoch &ep = epochs_[e];
    unsigned sub = std::min(ep.squashSub, ep.curSub);

    // applySquash: discard sub-threads sub..curSub youngest-first so
    // dead-version detection sees the surviving contexts.
    for (unsigned s = ep.curSub + 1; s-- > sub;)
        clearContext(e, s, s == 0 ? 0 : threadMask(e, s - 1));
    if (cfg.mutation == Mutation::PrematureRecycle && sub >= 1) {
        // Seeded bug: the still-live context sub-1 is recycled too,
        // losing exposed-load tracking for work that is NOT re-run.
        clearContext(e, sub - 1,
                     sub - 1 == 0 ? 0 : threadMask(e, sub - 2));
    }

    ++squashes_;
    const Checkpoint &cp = ep.cps[sub];
    ep.cursor = cp.opIdx;
    ep.curSub = sub;
    ep.specInsts = cp.specInsts;
    ep.nextSpawn = cp.specInsts + cfg.spacing;
    ep.nObs = cp.obsCount;
    ep.obsHash = cp.obsHash;
    ep.nCps = sub + 1;
    ep.pendingSquash = false;
    ep.st = RunState::Running;
    lastSub_[e] = static_cast<std::uint8_t>(sub);
    pushEvent(Event::Kind::Squash, e, sub);

    // I5: a rewind to sub leaves contexts >= sub clean.
    std::uint64_t doomed =
        threadMask(e, cfg.k - 1) &
        ~(sub == 0 ? 0 : threadMask(e, sub - 1));
    for (unsigned l = 0; l < cfg.lines; ++l) {
        if (((lines_[l].sl | lines_[l].sm) & doomed) != 0) {
            std::ostringstream os;
            os << "epoch " << e << " rewound to sub " << sub
               << " but line " << l << " still has state in a cleared "
               << "context";
            stash("I5.dirty-rewind", os.str());
        }
    }
}

void
ModelState::clearContext(unsigned e, unsigned sub,
                         std::uint64_t surviving_mask)
{
    std::uint64_t bit = std::uint64_t{1} << ctxId(e, sub);
    for (unsigned l = 0; l < shared_->cfg.lines; ++l) {
        LineState &L = lines_[l];
        bool had_sm = (L.sm & bit) != 0;
        L.sl &= ~bit;
        L.sm &= ~bit;
        // SpecState::clearContext dead-line rule: no surviving context
        // of the thread modifies the line any more, so its L2 version
        // is dead and dropped (mem_.dropThreadVersion).
        if (had_sm && (L.sm & surviving_mask) == 0)
            L.versionLive &= std::uint8_t(~(1u << e));
    }
}

// ---------------------------------------------------------------------
// Spawn and commit
// ---------------------------------------------------------------------

void
ModelState::doSpawn(unsigned e)
{
    const ModelConfig &cfg = shared_->cfg;
    Epoch &ep = epochs_[e];
    ++ep.curSub;
    ep.cps[ep.nCps++] = {ep.cursor, ep.specInsts, ep.nObs, ep.obsHash};
    ep.nextSpawn += cfg.spacing;
    ++spawns_;

    // I4: sub-threads start in order, one past the last live one.
    if (ep.curSub != lastSub_[e] + 1u) {
        std::ostringstream os;
        os << "epoch " << e << " spawned sub " << ep.curSub
           << " after sub " << unsigned{lastSub_[e]};
        stash("I4.spawn-monotone", os.str());
    }
    lastSub_[e] = static_cast<std::uint8_t>(ep.curSub);

    // maybeSpawnSubthread: subthreadStart message — logically-later
    // threads record which of their sub-threads is current.
    ContextId ctx = ctxId(e, ep.curSub);
    for (unsigned d = e + 1; d < cfg.epochs; ++d) {
        if (epochs_[d].st == RunState::Committed)
            continue;
        unsigned deliver = epochs_[d].curSub;
        if (cfg.mutation == Mutation::WrongStartTable) {
            // Seeded bug: record one sub too late, so a secondary
            // violation later restarts too little of the thread.
            deliver = std::min(epochs_[d].curSub + 1, cfg.k - 1);
        }
        epochs_[d].startTable[ctx] = {static_cast<std::uint8_t>(e),
                                      static_cast<std::uint8_t>(deliver)};
    }
    pushEvent(Event::Kind::Spawn, e, ep.curSub);

    // Spec check: the table entry every live younger thread holds for
    // the new sub-thread must name its own current sub (I4 family).
    for (unsigned d = e + 1; d < cfg.epochs; ++d) {
        if (epochs_[d].st == RunState::Committed)
            continue;
        const StartEntry &entry = epochs_[d].startTable[ctx];
        if (entry.origin != e || entry.sub != epochs_[d].curSub) {
            std::ostringstream os;
            os << "epoch " << e << " spawned sub " << ep.curSub
               << " but epoch " << d << " recorded start-table entry ("
               << unsigned{entry.origin} << ", " << unsigned{entry.sub}
               << "), expected (" << e << ", " << epochs_[d].curSub
               << ")";
            stash("I4.start-table", os.str());
        }
    }
}

void
ModelState::doCommit(unsigned e)
{
    const ModelConfig &cfg = shared_->cfg;
    Epoch &ep = epochs_[e];

    // I6: commits happen in program order.
    if (e != nCommits_ || !isOldest(e)) {
        std::ostringstream os;
        os << "epoch " << e << " committed out of order (" << nCommits_
           << " commits so far)";
        stash("I6.commit-order", os.str());
    }

    // commitEpoch: clearThread, then commitThreadVersions.
    std::uint64_t mask = threadMask(e, cfg.k - 1);
    for (unsigned l = 0; l < cfg.lines; ++l) {
        LineState &L = lines_[l];
        L.sl &= ~mask;
        L.sm &= ~mask;
        if (L.versionLive >> e & 1) {
            L.committedValue = L.version[e];
            L.versionLive &= std::uint8_t(~(1u << e));
        }
    }
    ++nextCommitSeq_;
    ep.st = RunState::Committed;
    commitOrder_[nCommits_++] = static_cast<std::uint8_t>(e);
    nFinalObs_[e] = static_cast<std::uint8_t>(ep.nObs);
    for (unsigned i = 0; i < ep.nObs; ++i)
        finalObs_[e][i] = ep.observations[i];
    pushEvent(Event::Kind::Commit, e, e);
}

std::uint64_t
ModelState::liveVersions() const
{
    std::uint64_t n = 0;
    for (unsigned l = 0; l < shared_->cfg.lines; ++l)
        n += static_cast<std::uint64_t>(
            __builtin_popcount(lines_[l].versionLive));
    return n;
}

void
ModelState::stash(const char *family, std::string detail)
{
    if (stashedFamily_.empty()) {
        stashedFamily_ = family;
        stashedDetail_ = std::move(detail);
    }
}

// ---------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------

bool
ModelState::checkInvariants(ModelViolation &out) const
{
    if (!stashedFamily_.empty()) {
        out.family = stashedFamily_;
        out.detail = stashedDetail_;
        return false;
    }

    const ModelConfig &cfg = shared_->cfg;
    for (unsigned l = 0; l < cfg.lines; ++l) {
        const LineState &L = lines_[l];
        // I1: SL/SM state only in live epochs' started contexts.
        std::uint64_t state = L.sl | L.sm;
        while (state) {
            unsigned ctx = static_cast<unsigned>(__builtin_ctzll(state));
            state &= state - 1;
            unsigned e = ctx / cfg.k;
            unsigned sub = ctx % cfg.k;
            if (epochs_[e].st == RunState::Committed) {
                std::ostringstream os;
                os << "line " << l << " holds state for committed epoch "
                   << e << " sub " << sub;
                out = {"I1.holder-committed", os.str(), {}};
                return false;
            }
            if (sub > epochs_[e].curSub) {
                std::ostringstream os;
                os << "line " << l << " holds state for epoch " << e
                   << " sub " << sub << " beyond curSub "
                   << epochs_[e].curSub;
                out = {"I1.holder-unstarted", os.str(), {}};
                return false;
            }
        }
        // I2: a thread's speculative line version exists iff the
        // thread has SM bits on the line.
        for (unsigned e = 0; e < cfg.epochs; ++e) {
            bool has_sm = (L.sm & threadMask(e, cfg.k - 1)) != 0;
            bool live = (L.versionLive >> e & 1) != 0;
            if (has_sm != live) {
                std::ostringstream os;
                os << "line " << l << " epoch " << e << ": version "
                   << (live ? "live" : "dead") << " but SM "
                   << (has_sm ? "set" : "clear");
                out = {"I2.version-sm", os.str(), {}};
                return false;
            }
        }
    }

    // I4 (state form): every sub-thread an uncommitted epoch has live
    // is recorded in every live younger epoch's start table.
    for (unsigned o = 0; o < cfg.epochs; ++o) {
        if (epochs_[o].st == RunState::Committed)
            continue;
        for (unsigned s = 1; s <= epochs_[o].curSub; ++s) {
            ContextId ctx = ctxId(o, s);
            for (unsigned r = o + 1; r < cfg.epochs; ++r) {
                if (epochs_[r].st == RunState::Committed)
                    continue;
                if (epochs_[r].startTable[ctx].origin != o) {
                    std::ostringstream os;
                    os << "epoch " << r << " has no start-table entry "
                       << "for live sub " << s << " of epoch " << o;
                    out = {"I4.start-table-undelivered", os.str(), {}};
                    return false;
                }
            }
        }
    }

    // Internal sanity: Done means the body finished cleanly.
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        const Epoch &ep = epochs_[e];
        if (ep.st == RunState::Done &&
            (ep.cursor < shared_->programLen[e] || ep.pendingSquash)) {
            out = {"model.internal", "Done epoch with unfinished body",
                   {}};
            return false;
        }
    }
    return true;
}

bool
ModelState::checkQuiescent(const CheckOptions &check,
                           ModelViolation &out) const
{
    const ModelConfig &cfg = shared_->cfg;
    if (check.liveness && !allCommitted()) {
        std::ostringstream os;
        os << "terminal state with uncommitted epochs:";
        for (unsigned e = 0; e < cfg.epochs; ++e)
            if (epochs_[e].st != RunState::Committed)
                os << ' ' << e;
        out = {"liveness.stuck", os.str(), {}};
        return false;
    }
    if (!allCommitted())
        return true; // nothing further to compare

    // I6 residue: a fully committed run leaves no speculative state.
    for (unsigned l = 0; l < cfg.lines; ++l) {
        const LineState &L = lines_[l];
        if (L.sl != 0 || L.sm != 0 || L.versionLive != 0) {
            std::ostringstream os;
            os << "line " << l << " holds residual speculative state "
               << "after all commits";
            out = {"I6.residual-state", os.str(), {}};
            return false;
        }
    }

    if (!check.serializability)
        return true;

    // The committed execution must equal the serial one (cached at
    // construction): every surviving observation, and final memory,
    // bit-for-bit.
    for (unsigned e = 0; e < cfg.epochs; ++e) {
        bool same = nFinalObs_[e] == shared_->nSerialObs[e];
        std::size_t i = 0;
        if (same)
            for (; i < nFinalObs_[e]; ++i)
                if (finalObs_[e][i] != shared_->serialObs[e][i]) {
                    same = false;
                    break;
                }
        if (!same) {
            std::ostringstream os;
            os << "epoch " << e << " committed "
               << unsigned{nFinalObs_[e]}
               << " observations differing from the serial execution "
               << "(first divergence at index " << i << ")";
            out = {"serializability.observations", os.str(), {}};
            return false;
        }
    }
    for (unsigned l = 0; l < cfg.lines; ++l) {
        if (lines_[l].committedValue != shared_->serialMem[l]) {
            std::ostringstream os;
            os << "final value of line " << l
               << " differs from the serial execution";
            out = {"serializability.memory", os.str(), {}};
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Serial reference
// ---------------------------------------------------------------------

std::vector<std::vector<std::uint64_t>>
serialReference(const ModelConfig &cfg,
                const std::vector<Program> &programs,
                std::vector<std::uint64_t> &final_values)
{
    final_values.resize(cfg.lines);
    for (unsigned l = 0; l < cfg.lines; ++l)
        final_values[l] = initialLineValue(l);

    std::vector<std::vector<std::uint64_t>> obs(programs.size());
    for (unsigned e = 0; e < programs.size(); ++e) {
        std::uint64_t h = epochObsSeed(e);
        for (std::uint32_t i = 0; i < programs[e].size(); ++i) {
            const Op &op = programs[e][i];
            if (op.kind == OpKind::Load) {
                std::uint64_t v = final_values[op.line];
                obs[e].push_back(v);
                h = foldObservation(h, v);
            } else if (op.kind == OpKind::Store) {
                final_values[op.line] = storeValue(e, i, h);
            }
        }
    }
    return obs;
}

} // namespace mc
} // namespace verify
} // namespace tlsim
