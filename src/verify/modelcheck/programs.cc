/**
 * @file
 * Program-family enumeration for the bounded sweeps.
 */

#include "verify/modelcheck/programs.h"

#include <array>

#include "base/rng.h"

namespace tlsim {
namespace verify {
namespace mc {

std::vector<Op>
opAlphabet(unsigned lines)
{
    std::vector<Op> ops;
    ops.push_back({OpKind::Tick, 0});
    for (unsigned l = 0; l < lines; ++l) {
        ops.push_back({OpKind::Load, static_cast<std::uint8_t>(l)});
        ops.push_back({OpKind::Store, static_cast<std::uint8_t>(l)});
    }
    return ops;
}

std::vector<Program>
allPrograms(unsigned len, unsigned lines)
{
    auto alphabet = opAlphabet(lines);
    std::vector<Program> out{{}};
    for (unsigned i = 0; i < len; ++i) {
        std::vector<Program> next;
        next.reserve(out.size() * alphabet.size());
        for (const Program &p : out)
            for (const Op &op : alphabet) {
                next.push_back(p);
                next.back().push_back(op);
            }
        out = std::move(next);
    }
    return out;
}

bool
programsInteract(const std::vector<Program> &programs)
{
    // line -> (stored-by mask, touched-by mask) over epochs.
    std::array<std::uint64_t, 256> stored{}, touched{};
    for (std::size_t e = 0; e < programs.size(); ++e)
        for (const Op &op : programs[e]) {
            if (op.kind == OpKind::Tick)
                continue;
            touched[op.line] |= std::uint64_t{1} << e;
            if (op.kind == OpKind::Store)
                stored[op.line] |= std::uint64_t{1} << e;
        }
    for (unsigned l = 0; l < 256; ++l)
        if (stored[l] != 0 && (touched[l] & ~stored[l]) != 0)
            return true;
    // Also interacting: two different epochs both store the line.
    for (unsigned l = 0; l < 256; ++l)
        if ((stored[l] & (stored[l] - 1)) != 0)
            return true;
    return false;
}

namespace {

/** True if the tuple's line names appear in first-use order. */
bool
isCanonical(const std::vector<Program> &programs, unsigned lines)
{
    unsigned next_name = 0;
    for (const Program &p : programs)
        for (const Op &op : p) {
            if (op.kind == OpKind::Tick)
                continue;
            if (op.line > next_name)
                return false; // skipped a smaller unused name
            if (op.line == next_name)
                ++next_name;
        }
    (void)lines;
    return true;
}

} // namespace

std::vector<std::vector<Program>>
programFamilies(unsigned epochs, unsigned len, unsigned lines,
                bool interacting_only)
{
    auto singles = allPrograms(len, lines);
    std::vector<std::vector<Program>> out;
    // Odometer over epochs-many indices into `singles`.
    std::vector<std::size_t> idx(epochs, 0);
    for (;;) {
        std::vector<Program> tuple;
        tuple.reserve(epochs);
        for (std::size_t i : idx)
            tuple.push_back(singles[i]);
        if (isCanonical(tuple, lines) &&
            (!interacting_only || programsInteract(tuple)))
            out.push_back(std::move(tuple));
        std::size_t pos = 0;
        while (pos < epochs && ++idx[pos] == singles.size()) {
            idx[pos] = 0;
            ++pos;
        }
        if (pos == epochs)
            break;
    }
    return out;
}

std::vector<Program>
samplePrograms(const ModelConfig &cfg, unsigned len, Rng &rng)
{
    auto alphabet = opAlphabet(cfg.lines);
    std::vector<Program> tuple;
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        tuple.assign(cfg.epochs, {});
        for (Program &p : tuple)
            for (unsigned i = 0; i < len; ++i)
                p.push_back(alphabet[static_cast<std::size_t>(rng.uniform(
                    0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
        if (programsInteract(tuple))
            break;
    }
    return tuple;
}

} // namespace mc
} // namespace verify
} // namespace tlsim
