/**
 * @file
 * DFS interleaving exploration with sleep sets + DPOR backtracking.
 */

#include "verify/modelcheck/explorer.h"

#include <algorithm>
#include <sstream>

#include "base/log.h"
#include "base/rng.h"

namespace tlsim {
namespace verify {
namespace mc {

// ---------------------------------------------------------------------
// Dependence relation
// ---------------------------------------------------------------------

bool
dependentSteps(const StepRecord &a, const StepRecord &b,
               const ModelConfig &cfg)
{
    if (a.epoch == b.epoch)
        return true; // program order

    // A violating step (store delivering a violation, or an
    // overflowing store) mutates other epochs' squash state and can
    // change what action they are about to take — dependent with
    // everything, Ticks included.
    if (a.violating || b.violating)
        return true;

    auto is_tick = [](const StepRecord &r) {
        return r.kind == StepKind::Exec && r.op == OpKind::Tick;
    };
    // A Tick touches only its own epoch's instruction counter, and
    // nothing a non-violating step of another epoch does can change
    // its behaviour.
    if (is_tick(a) || is_tick(b))
        return false;

    // Rewinds drop versions and SL/SM state that other epochs' loads
    // and stores observe; commits merge versions into committed
    // memory and move the homefree token (changing the next epoch's
    // tracked-ness). Conservatively dependent with every non-Tick.
    auto is_global = [](const StepRecord &r) {
        return r.kind == StepKind::Rewind || r.kind == StepKind::Commit;
    };
    if (is_global(a) || is_global(b))
        return true;

    // Spawns write younger epochs' start tables keyed by the
    // spawner's new sub AND the receiver's current sub, so two spawns
    // (or a spawn racing a finish) do not commute in general. A spawn
    // or finish against a non-violating load/store does: neither
    // reads the other's footprint.
    auto is_control = [](const StepRecord &r) {
        return r.kind == StepKind::Spawn || r.kind == StepKind::Finish;
    };
    if (is_control(a) || is_control(b))
        return is_control(a) && is_control(b);

    // Both are non-violating Load/Store Execs.
    if (a.op == OpKind::Load && b.op == OpKind::Load)
        return false; // SL bits are per-context; values unaffected
    if (a.line != b.line) {
        // Distinct lines: versions, SM, SL and values are disjoint.
        // Exception: with a version budget, any two stores race for
        // buffer slots (liveVersions coupling).
        if (a.op == OpKind::Store && b.op == OpKind::Store)
            return cfg.versionBound != 0;
        return false;
    }
    return true; // same-line load/store or store/store
}

// ---------------------------------------------------------------------
// Outcome signatures
// ---------------------------------------------------------------------

std::string
outcomeSignature(const ModelState &st)
{
    std::ostringstream os;
    os << "commit:";
    for (unsigned i = 0; i < st.commitCount(); ++i)
        os << ' ' << st.commitAt(i);
    os << " pv=" << st.primaryViolations()
       << " sv=" << st.secondaryViolations() << " sq=" << st.squashes()
       << " sp=" << st.subthreadsStarted() << " ov="
       << st.overflowEvents();
    os << " lines:";
    for (std::size_t i = 0; i < st.violatedLineCount(); ++i)
        os << ' ' << st.violatedLineAt(i);
    return os.str();
}

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

namespace {

class Explorer
{
  public:
    Explorer(const ModelConfig &cfg, const ExploreConfig &xcfg)
        : cfg_(cfg), xcfg_(xcfg)
    {
    }

    ExploreResult
    run(const std::vector<Program> &programs)
    {
        // Event recording is bisim-only; exploration clones states on
        // every transition and must not drag the log along.
        ModelState root(cfg_, programs, /*record_events=*/false);
        // The initial state must already satisfy the invariants.
        ModelViolation v;
        if (xcfg_.check.invariants && !root.checkInvariants(v)) {
            v.schedule = {};
            result_.violations.push_back(v);
            return std::move(result_);
        }
        dfs(root, 0, 0);
        return std::move(result_);
    }

  private:
    struct Frame
    {
        std::array<unsigned char, kMaxEpochs> enabled{};
        std::array<StepRecord, kMaxEpochs> probes{}; ///< parallel
        unsigned nEnabled = 0;
        std::uint64_t sleep = 0;
        std::uint64_t backtrack = 0;
        std::uint64_t explored = 0;
        StepRecord rec; ///< step of the branch currently explored
    };

    bool
    stopped() const
    {
        return !result_.violations.empty() || result_.budgetExhausted;
    }

    void
    dfs(const ModelState &state, std::uint64_t sleep, std::uint64_t depth)
    {
        result_.stats.maxDepth = std::max(result_.stats.maxDepth, depth);

        Frame frame;
        for (unsigned e = 0; e < cfg_.epochs; ++e)
            if (state.enabled(e))
                frame.enabled[frame.nEnabled++] =
                    static_cast<unsigned char>(e);
        frame.sleep = sleep;
        if (frame.nEnabled == 0) {
            ++result_.stats.schedulesCompleted;
            ModelViolation v;
            if (!state.checkQuiescent(xcfg_.check, v)) {
                v.schedule = schedule_;
                result_.violations.push_back(v);
                return;
            }
            if (xcfg_.collectOutcomes)
                result_.outcomes.insert(outcomeSignature(state));
            if (xcfg_.maxSchedules != 0 &&
                result_.stats.schedulesCompleted >= xcfg_.maxSchedules)
                result_.budgetExhausted = true;
            return;
        }
        if (xcfg_.maxSteps != 0 && depth >= xcfg_.maxSteps) {
            ++result_.stats.truncated;
            return;
        }

        for (unsigned i = 0; i < frame.nEnabled; ++i)
            frame.probes[i] = state.probe(frame.enabled[i]);

        if (xcfg_.dpor) {
            // Seed the persistent set with the first non-sleeping
            // enabled epoch; backward scans from descendants add more.
            unsigned first = cfg_.epochs;
            for (unsigned i = 0; i < frame.nEnabled; ++i)
                if (!(frame.sleep >> frame.enabled[i] & 1)) {
                    first = frame.enabled[i];
                    break;
                }
            if (first == cfg_.epochs) {
                // Everything enabled is asleep: any continuation from
                // here is a reordering of one explored elsewhere.
                ++result_.stats.sleepBlocked;
                return;
            }
            frame.backtrack = std::uint64_t{1} << first;
        } else {
            for (unsigned i = 0; i < frame.nEnabled; ++i)
                frame.backtrack |= std::uint64_t{1} << frame.enabled[i];
        }

        path_.push_back(&frame);
        while (!stopped()) {
            std::uint64_t todo =
                frame.backtrack & ~frame.explored & ~frame.sleep;
            if (todo == 0)
                break;
            unsigned p =
                static_cast<unsigned>(__builtin_ctzll(todo));

            ModelState child = state;
            StepRecord rec = child.step(p);
            frame.rec = rec;
            ++result_.stats.transitions;

            if (xcfg_.dpor) {
                // DPOR update: every earlier step this one is
                // dependent with gets a backtrack point at its
                // pre-state — the alternative "run p first" schedule.
                for (std::size_t i = 0; i + 1 < path_.size(); ++i) {
                    Frame &f = *path_[i];
                    if (f.rec.epoch == rec.epoch ||
                        !dependentSteps(f.rec, rec, cfg_))
                        continue;
                    bool enabled_there = false;
                    for (unsigned j = 0; j < f.nEnabled; ++j)
                        if (f.enabled[j] == rec.epoch) {
                            enabled_there = true;
                            break;
                        }
                    if (enabled_there)
                        f.backtrack |= std::uint64_t{1} << rec.epoch;
                    else
                        for (unsigned j = 0; j < f.nEnabled; ++j)
                            f.backtrack |= std::uint64_t{1}
                                           << f.enabled[j];
                }
            }

            ModelViolation v;
            if (xcfg_.check.invariants && !child.checkInvariants(v)) {
                schedule_.push_back(p);
                v.schedule = schedule_;
                schedule_.pop_back();
                result_.violations.push_back(v);
                break;
            }

            std::uint64_t child_sleep = 0;
            if (xcfg_.dpor) {
                // A sleeping sibling stays asleep only if its pending
                // action is independent of what just ran.
                for (unsigned i = 0; i < frame.nEnabled; ++i) {
                    unsigned q = frame.enabled[i];
                    if (q == p || !(frame.sleep >> q & 1))
                        continue;
                    if (!dependentSteps(frame.probes[i], rec, cfg_))
                        child_sleep |= std::uint64_t{1} << q;
                }
            }

            schedule_.push_back(p);
            dfs(child, child_sleep, depth + 1);
            schedule_.pop_back();

            frame.explored |= std::uint64_t{1} << p;
            if (xcfg_.dpor) {
                // Later branches must not re-derive interleavings
                // that start with an explored sibling.
                frame.sleep |= std::uint64_t{1} << p;
            }
        }
        path_.pop_back();
    }

    const ModelConfig &cfg_;
    const ExploreConfig &xcfg_;
    ExploreResult result_;
    std::vector<Frame *> path_;
    std::vector<unsigned> schedule_;
};

} // namespace

ExploreResult
explore(const ModelConfig &cfg, const std::vector<Program> &programs,
        const ExploreConfig &xcfg)
{
    if (cfg.versionBound != 0 && xcfg.maxSteps == 0)
        panic("explore: versionBound needs a maxSteps bound "
              "(overflow squash/retry loops can cycle)");
    Explorer ex(cfg, xcfg);
    return ex.run(programs);
}

// ---------------------------------------------------------------------
// Schedule utilities
// ---------------------------------------------------------------------

ModelState
runSchedule(const ModelConfig &cfg,
            const std::vector<Program> &programs,
            const std::vector<unsigned> &schedule,
            std::vector<StepRecord> *out_steps)
{
    ModelState st(cfg, programs);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        unsigned e = schedule[i];
        if (e >= cfg.epochs || !st.enabled(e))
            panic("schedule step %zu: epoch %u not enabled", i, e);
        StepRecord rec = st.step(e);
        if (out_steps)
            out_steps->push_back(rec);
    }
    return st;
}

std::vector<unsigned>
randomSchedule(const ModelConfig &cfg,
               const std::vector<Program> &programs, Rng &rng)
{
    ModelState st(cfg, programs);
    std::vector<unsigned> schedule;
    for (;;) {
        auto enabled = st.enabledEpochs();
        if (enabled.empty())
            break;
        unsigned pick = enabled[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(enabled.size()) - 1))];
        st.step(pick);
        schedule.push_back(pick);
        if (cfg.versionBound != 0 && schedule.size() > 100000)
            panic("randomSchedule: no terminal state after 100000 steps");
    }
    return schedule;
}

} // namespace mc
} // namespace verify
} // namespace tlsim
