#include "verify/auditor.h"

#include "base/log.h"
#include "core/specstate.h"
#include "mem/memsys.h"

namespace tlsim {
namespace verify {

AuditViolation::AuditViolation(std::string invariant, std::string detail,
                               Addr line, CpuId cpu, unsigned sub)
    : std::runtime_error(strfmt(
          "audit violation [%s] line %llu cpu %u sub %u: %s",
          invariant.c_str(), static_cast<unsigned long long>(line), cpu,
          sub, detail.c_str())),
      invariant_(std::move(invariant)), line_(line), cpu_(cpu), sub_(sub)
{
}

Auditor::Auditor(AuditLevel level) : level_(level)
{
    if (level_ == AuditLevel::Off)
        panic("Auditor constructed at level off; do not attach one");
}

void
Auditor::fail(const char *invariant, const std::string &detail,
              Addr line, CpuId cpu, unsigned sub) const
{
    throw AuditViolation(invariant, detail, line, cpu, sub);
}

namespace {

/** Union of the live context masks (sub-threads 0..curSub) of every
 *  active epoch — the only contexts allowed to hold SL/SM state. */
std::uint64_t
allowedContexts(const AuditView &view)
{
    std::uint64_t allowed = 0;
    for (unsigned cpu = 0; cpu < view.numCpus; ++cpu)
        if (view.cpus[cpu].active)
            allowed |= view.threadMask(cpu, view.cpus[cpu].curSub);
    return allowed;
}

} // namespace

void
Auditor::checkLine(const AuditView &view, Addr line, CpuId acting_cpu)
{
    const SpecState &spec = *view.spec;
    const MemSystem &mem = *view.mem;

    // I1: no SL/SM state outside a live epoch's started sub-threads.
    std::uint64_t holders = spec.stateHolders(line);
    std::uint64_t stray = holders & ~allowedContexts(view);
    ++checks_;
    if (stray) {
        unsigned ctx = static_cast<unsigned>(__builtin_ctzll(stray));
        fail("I1.holders-live",
             strfmt("context %u holds state but is not live", ctx),
             line, ctx / view.k, ctx % view.k);
    }

    for (unsigned cpu = 0; cpu < view.numCpus; ++cpu) {
        auto ver = static_cast<std::uint8_t>(cpu);
        bool in_l2 = mem.l2().hasEntry(line, ver);
        bool in_victim = mem.victim().present(line, ver);

        // I3: one buffer location per speculative version.
        ++checks_;
        if (in_l2 && in_victim)
            fail("I3.single-buffer",
                 "speculative version in both L2 and victim cache",
                 line, cpu, 0);

        // I2: version buffered iff the thread modified the line.
        std::uint64_t full = view.threadMask(cpu, view.k - 1);
        bool modified =
            view.cpus[cpu].active && spec.threadModifiedLine(full, line);
        ++checks_;
        if (modified != (in_l2 || in_victim))
            fail("I2.version-iff-sm",
                 modified ? "SM bits set but no buffered line version"
                          : "buffered speculative version without SM "
                            "bits (or a dead epoch's version)",
                 line, cpu, view.cpus[cpu].curSub);
    }
    (void)acting_cpu;
}

void
Auditor::globalSweep(const AuditView &view, CpuId acting_cpu)
{
    const SpecState &spec = *view.spec;
    const MemSystem &mem = *view.mem;
    std::uint64_t allowed = allowedContexts(view);

    // I1 over every line with live metadata, plus the SM -> buffered
    // direction of I2 (the buffer sweeps below give the converse).
    spec.forEachLine([&](Addr line, std::uint64_t sl,
                         std::uint64_t sm_owners) {
        std::uint64_t holders = sl | sm_owners;
        ++checks_;
        if (std::uint64_t stray = holders & ~allowed) {
            unsigned ctx = static_cast<unsigned>(__builtin_ctzll(stray));
            fail("I1.holders-live",
                 strfmt("context %u holds state but is not live", ctx),
                 line, ctx / view.k, ctx % view.k);
        }
        for (unsigned cpu = 0; cpu < view.numCpus; ++cpu) {
            std::uint64_t full = view.threadMask(cpu, view.k - 1);
            if (!(sm_owners & full))
                continue;
            auto ver = static_cast<std::uint8_t>(cpu);
            bool in_l2 = mem.l2().hasEntry(line, ver);
            bool in_victim = mem.victim().present(line, ver);
            ++checks_;
            if (in_l2 == in_victim)
                fail(in_l2 ? "I3.single-buffer" : "I2.version-iff-sm",
                     in_l2 ? "speculative version in both L2 and "
                             "victim cache"
                           : "SM bits set but no buffered line version",
                     line, cpu, view.cpus[cpu].curSub);
        }
    });

    // The converse of I2: every buffered speculative version belongs
    // to a live epoch that modified the line.
    auto check_buffered = [&](const char *where) {
        return [&, where](Addr line, std::uint8_t ver) {
            if (ver == kCommittedVersion)
                return;
            ++checks_;
            if (ver >= view.numCpus || !view.cpus[ver].active)
                fail("I2.version-iff-sm",
                     strfmt("%s holds a version of dead thread %u",
                            where, ver),
                     line, ver, 0);
            std::uint64_t full = view.threadMask(ver, view.k - 1);
            ++checks_;
            if (!spec.threadModifiedLine(full, line))
                fail("I2.version-iff-sm",
                     strfmt("%s version without SM bits", where), line,
                     ver, 0);
            ++checks_;
            if (mem.l2().hasEntry(line, ver) &&
                mem.victim().present(line, ver))
                fail("I3.single-buffer",
                     "speculative version in both L2 and victim cache",
                     line, ver, 0);
        };
    };
    mem.l2().forEachEntry(check_buffered("L2"));
    mem.victim().forEachEntry(check_buffered("victim cache"));

    // Version-line bookkeeping of slots with no live epoch.
    for (unsigned cpu = 0; cpu < view.numCpus; ++cpu) {
        if (view.cpus[cpu].active)
            continue;
        ++checks_;
        if (!mem.threadVersionLines(cpu).empty())
            fail("I6.commit-clean",
                 strfmt("idle cpu slot still owns %zu line versions",
                        mem.threadVersionLines(cpu).size()),
                 0, cpu, 0);
    }
    (void)acting_cpu;
}

void
Auditor::checkContextsClean(const AuditView &view,
                            std::uint64_t ctx_mask, const char *what,
                            CpuId cpu, unsigned sub)
{
    ++checks_;
    view.spec->forEachLine([&](Addr line, std::uint64_t sl,
                               std::uint64_t sm_owners) {
        std::uint64_t held = (sl | sm_owners) & ctx_mask;
        if (held) {
            unsigned ctx = static_cast<unsigned>(__builtin_ctzll(held));
            fail(what,
                 strfmt("context %u still holds SL/SM state", ctx),
                 line, cpu, sub);
        }
    });
}

void
Auditor::onRunStart(const AuditView &view)
{
    lastSub_.assign(view.numCpus, 0);
    haveCommit_ = false;
    lastCommitSeq_ = 0;
    globalSweep(view, 0);
}

void
Auditor::onEpochStart(const AuditView &view, CpuId cpu,
                      std::uint64_t seq)
{
    lastSub_[cpu] = 0;
    const AuditCpuState &s = view.cpus[cpu];
    ++checks_;
    if (!s.active || s.seq != seq || s.curSub != 0)
        fail("I4.spawn-monotone",
             "fresh epoch not active at sub-thread 0", 0, cpu, 0);
    ++checks_;
    if (!s.startTable ||
        s.startTable->size() !=
            static_cast<std::size_t>(view.numCpus) * view.k)
        fail("I4.start-table",
             "fresh epoch's start table is missing or mis-sized", 0,
             cpu, 0);
    checkContextsClean(view, view.threadMask(cpu, view.k - 1),
                       "I6.commit-clean", cpu, 0);
    ++checks_;
    if (!view.mem->threadVersionLines(cpu).empty())
        fail("I6.commit-clean",
             "fresh epoch inherits speculative line versions", 0, cpu,
             0);
}

void
Auditor::onSpawn(const AuditView &view, CpuId cpu, unsigned new_sub)
{
    const AuditCpuState &s = view.cpus[cpu];

    // I4: sub-thread indices advance by exactly one per spawn.
    ++checks_;
    if (new_sub != lastSub_[cpu] + 1 || new_sub >= view.k ||
        s.curSub != new_sub)
        fail("I4.spawn-monotone",
             strfmt("spawned sub %u after sub %u (k=%u)", new_sub,
                    lastSub_[cpu], view.k),
             0, cpu, new_sub);
    lastSub_[cpu] = new_sub;

    // I4: the subthreadStart message reached every younger live epoch.
    ContextId ctx = view.ctxId(cpu, new_sub);
    for (unsigned d = 0; d < view.numCpus; ++d) {
        const AuditCpuState &r = view.cpus[d];
        if (d == cpu || !r.active || r.seq <= s.seq)
            continue;
        ++checks_;
        const auto &entry = (*r.startTable)[ctx];
        if (entry.first != s.seq || entry.second != r.curSub)
            fail("I4.start-table",
                 strfmt("cpu %u's start table missed spawn of epoch "
                        "%llu sub %u",
                        d, static_cast<unsigned long long>(s.seq),
                        new_sub),
                 0, cpu, new_sub);
    }

    // The newly started context must be clean: its checkpoint is
    // fresh, so any residual SL/SM state would be another epoch's.
    if (level_ == AuditLevel::Full)
        checkContextsClean(view, std::uint64_t{1} << ctx,
                           "I5.rewind-clean", cpu, new_sub);
}

void
Auditor::onAccess(const AuditView &view, CpuId cpu, Addr line)
{
    checkLine(view, line, cpu);
}

void
Auditor::onCommit(const AuditView &view, CpuId cpu, std::uint64_t seq)
{
    // I6: homefree token in program order.
    ++checks_;
    if (haveCommit_ && seq <= lastCommitSeq_)
        fail("I6.commit-order",
             strfmt("epoch %llu committed after %llu",
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(lastCommitSeq_)),
             0, cpu, 0);
    haveCommit_ = true;
    lastCommitSeq_ = seq;
    lastSub_[cpu] = 0;

    // I6: the committed thread left nothing speculative behind.
    ++checks_;
    if (view.cpus[cpu].active && view.cpus[cpu].seq == seq)
        fail("I6.commit-order", "committed epoch still active", 0, cpu,
             0);
    checkContextsClean(view, view.threadMask(cpu, view.k - 1),
                       "I6.commit-clean", cpu, 0);

    globalSweep(view, cpu);
}

void
Auditor::onSquash(const AuditView &view, CpuId cpu, unsigned sub)
{
    lastSub_[cpu] = sub;

    // I5: contexts >= sub of the rewound thread are clean.
    std::uint64_t full = view.threadMask(cpu, view.k - 1);
    std::uint64_t surviving =
        sub == 0 ? 0 : view.threadMask(cpu, sub - 1);
    checkContextsClean(view, full & ~surviving, "I5.rewind-clean", cpu,
                       sub);
    if (sub == 0) {
        // A full rewind drops every speculative line version too.
        ++checks_;
        if (!view.mem->threadVersionLines(cpu).empty())
            fail("I5.rewind-clean",
                 strfmt("full rewind left %zu line versions",
                        view.mem->threadVersionLines(cpu).size()),
                 0, cpu, 0);
    }
    ++checks_;
    if (view.cpus[cpu].curSub != sub)
        fail("I5.rewind-clean",
             strfmt("rewind target sub %u but current sub is %u", sub,
                    view.cpus[cpu].curSub),
             0, cpu, sub);

    globalSweep(view, cpu);
}

RunResult
runWithAudit(TlsMachine &m, const WorkloadTrace &workload, ExecMode mode,
             unsigned warmup_txns, const TraceIndex *index)
{
    AuditLevel level = m.config().tls.auditLevel;
    if (level == AuditLevel::Off)
        return m.run(workload, mode, warmup_txns, index);

    Auditor auditor(level);
    struct Detach
    {
        TlsMachine &m;
        ~Detach() { m.setAuditSink(nullptr); }
    } detach{m};
    m.setAuditSink(&auditor);
    return m.run(workload, mode, warmup_txns, index);
}

} // namespace verify
} // namespace tlsim
