#include "verify/checker.h"

#include <algorithm>
#include <unordered_map>

#include "base/addr.h"
#include "base/log.h"

namespace tlsim {
namespace verify {

namespace {

bool
isMemOp(TraceOp op)
{
    return op == TraceOp::Load || op == TraceOp::Store;
}

constexpr std::uint32_t kNone = ~std::uint32_t{0};

/** One line access in a section's happens-before event list. */
struct Event
{
    std::uint32_t epoch;
    bool store;
    bool exposedLoad; ///< non-escaped load not covered by own stores
};

void
capped(std::vector<std::string> &errors, std::string msg)
{
    constexpr std::size_t kMaxReported = 25;
    if (errors.size() < kMaxReported)
        errors.push_back(std::move(msg));
    else if (errors.size() == kMaxReported)
        errors.push_back("... further mismatches suppressed");
}

} // namespace

CheckResult
checkTrace(const WorkloadTrace &workload, unsigned line_bytes)
{
    const LineGeom geom(line_bytes);
    CheckResult out;

    for (const TransactionTrace &txn : workload.txns) {
        for (const TraceSection &sec : txn.sections) {
            if (!sec.parallel) {
                // Serial sections execute in program order on one CPU:
                // no speculation, nothing to classify.
                for (const EpochTrace &e : sec.epochs)
                    out.epochFlags.emplace_back(e.records.size(), 0);
                continue;
            }
            out.parallelEpochs += sec.epochs.size();

            // Pass 1: one ordered event list per line (epochs are
            // totally ordered by sequence number, so "happens before"
            // between epochs is just epoch-index comparison), plus the
            // intra-epoch own-store coverage for the covered bit.
            std::unordered_map<Addr, std::vector<Event>> events;
            std::unordered_map<Addr, std::uint32_t> own;
            std::size_t flag_base = out.epochFlags.size();

            for (std::uint32_t ei = 0; ei < sec.epochs.size(); ++ei) {
                const EpochTrace &e = sec.epochs[ei];
                out.epochFlags.emplace_back(e.records.size(), 0);
                std::vector<std::uint8_t> &f = out.epochFlags.back();
                own.clear();
                bool esc = false;
                for (std::size_t i = 0; i < e.records.size(); ++i) {
                    const TraceRecord &r = e.records[i];
                    if (r.op == TraceOp::EscapeBegin) {
                        esc = true;
                        continue;
                    }
                    if (r.op == TraceOp::EscapeEnd) {
                        esc = false;
                        continue;
                    }
                    if (!isMemOp(r.op))
                        continue;
                    Addr line = geom.lineNum(r.addr);
                    if (r.op == TraceOp::Store) {
                        // Escaped stores still produce values younger
                        // readers must not have consumed, so they
                        // participate in conflict detection; they just
                        // never contribute speculative (SM) coverage.
                        events[line].push_back({ei, true, false});
                        if (!esc)
                            own[line] |= geom.wordMask(r.addr, r.size);
                    } else {
                        bool covered = false;
                        if (!esc) {
                            auto it = own.find(line);
                            std::uint32_t wm =
                                geom.wordMask(r.addr, r.size);
                            covered = it != own.end() &&
                                      (wm & ~it->second) == 0;
                            if (covered)
                                f[i] |= 2;
                            else
                                ++out.exposedLoads;
                        }
                        events[line].push_back(
                            {ei, false, !esc && !covered});
                    }
                }
            }

            // Pass 2: per-line verdicts from the event lists.
            std::unordered_set<Addr> section_conflicts;
            for (const auto &[line, evs] : events) {
                std::uint32_t min_store = kNone;
                std::uint32_t last_access = 0;
                bool multi = false;
                bool raw = false;
                for (const Event &ev : evs) {
                    if (ev.epoch != evs.front().epoch)
                        multi = true;
                    last_access = std::max(last_access, ev.epoch);
                    if (ev.store)
                        min_store = std::min(min_store, ev.epoch);
                    else if (ev.exposedLoad && min_store != kNone &&
                             ev.epoch > min_store)
                        raw = true;
                }
                bool conflict =
                    min_store != kNone && last_access > min_store;
                if (conflict) {
                    ++out.conflict;
                    section_conflicts.insert(line);
                    out.conflictLines.insert(line);
                } else if (multi) {
                    ++out.readShared;
                } else {
                    ++out.epochPrivate;
                }
                if (raw)
                    out.rawLines.insert(line);
            }

            // Pass 3: stamp the conflict bit on every memory record
            // (escaped ones included) touching a conflicting line.
            for (std::uint32_t ei = 0; ei < sec.epochs.size(); ++ei) {
                const EpochTrace &e = sec.epochs[ei];
                std::vector<std::uint8_t> &f =
                    out.epochFlags[flag_base + ei];
                for (std::size_t i = 0; i < e.records.size(); ++i) {
                    const TraceRecord &r = e.records[i];
                    if (isMemOp(r.op) &&
                        section_conflicts.count(geom.lineNum(r.addr)))
                        f[i] |= 1;
                }
            }
        }
    }
    return out;
}

std::vector<std::string>
diffAgainstIndex(const CheckResult &chk, const TraceIndex &index,
                 const WorkloadTrace &workload)
{
    std::vector<std::string> errors;

    auto totals = index.totals();
    if (totals.conflict != chk.conflict ||
        totals.readShared != chk.readShared ||
        totals.epochPrivate != chk.epochPrivate)
        capped(errors,
               strfmt("class totals differ: index "
                      "%llu/%llu/%llu private/shared/conflict, "
                      "checker %llu/%llu/%llu",
                      static_cast<unsigned long long>(
                          totals.epochPrivate),
                      static_cast<unsigned long long>(totals.readShared),
                      static_cast<unsigned long long>(totals.conflict),
                      static_cast<unsigned long long>(chk.epochPrivate),
                      static_cast<unsigned long long>(chk.readShared),
                      static_cast<unsigned long long>(chk.conflict)));

    std::size_t ei = 0;
    for (const TransactionTrace &txn : workload.txns) {
        for (const TraceSection &sec : txn.sections) {
            for (const EpochTrace &e : sec.epochs) {
                if (ei >= chk.epochFlags.size()) {
                    capped(errors, "checker covers fewer epochs than "
                                   "the workload");
                    return errors;
                }
                const EpochView *v = index.viewOf(&e);
                const std::vector<std::uint8_t> &f = chk.epochFlags[ei];
                if (v->size() != f.size()) {
                    capped(errors,
                           strfmt("epoch %zu: view has %zu records, "
                                  "checker %zu",
                                  ei, v->size(), f.size()));
                    ++ei;
                    continue;
                }
                for (std::size_t i = 0; i < f.size(); ++i) {
                    // Head bits 11 (conflict) and 12 (covered) are the
                    // oracle the replay hot path trusts.
                    auto idx_bits = static_cast<std::uint8_t>(
                        (v->head[i] >> 11) & 3);
                    if (idx_bits != f[i])
                        capped(errors,
                               strfmt("epoch %zu record %zu: index "
                                      "bits %u, checker bits %u",
                                      ei, i, idx_bits, f[i]));
                }
                ++ei;
            }
        }
    }
    if (ei != chk.epochFlags.size())
        capped(errors, "checker covers more epochs than the workload");
    return errors;
}

std::vector<std::string>
diffAgainstRun(const CheckResult &chk, const RunResult &run)
{
    std::vector<std::string> errors;

    // Serializability of the commit schedule: the homefree token must
    // have visited epochs in strictly increasing program order.
    for (std::size_t i = 1; i < run.commitOrder.size(); ++i)
        if (run.commitOrder[i] <= run.commitOrder[i - 1])
            capped(errors,
                   strfmt("commit order not serializable: epoch %llu "
                          "committed after %llu",
                          static_cast<unsigned long long>(
                              run.commitOrder[i]),
                          static_cast<unsigned long long>(
                              run.commitOrder[i - 1])));

    if (run.primaryViolations != run.violatedLines.size())
        capped(errors,
               strfmt("violation bookkeeping inconsistent: %llu "
                      "primary violations, %zu violated lines",
                      static_cast<unsigned long long>(
                          run.primaryViolations),
                      run.violatedLines.size()));

    // Every violation the machine raised must be on a line the checker
    // proved a RAW candidate. (The converse is timing-dependent: a
    // potential dependence the schedule never exposes is fine.)
    for (Addr line : run.violatedLines)
        if (!chk.rawLines.count(line))
            capped(errors,
                   strfmt("violation on line %llu which the checker "
                          "proved dependence-free",
                          static_cast<unsigned long long>(line)));

    return errors;
}

} // namespace verify
} // namespace tlsim
