/**
 * @file
 * Binary serialization of captured workload traces.
 *
 * Captures are deterministic but capture time (data load + native
 * transaction execution) dominates short experiments; saving a trace
 * lets the machine sweeps re-run without the database. The format is
 * versioned and self-describing enough to reject foreign files.
 *
 * Note: traces carry raw heap addresses from the capturing process.
 * They replay bit-identically (the simulator treats addresses as
 * opaque), but a reloaded trace is only comparable against runs of
 * the same file, not against a fresh capture.
 */

#ifndef SIM_TRACEIO_H
#define SIM_TRACEIO_H

#include <iosfwd>
#include <string>

#include "core/trace.h"

namespace tlsim {
namespace sim {

/** Magic + version of the trace container format. */
inline constexpr std::uint32_t kTraceMagic = 0x544c5331; // "TLS1"
inline constexpr std::uint32_t kTraceVersion = 3;
// v3: embeds the site-name table; PCs are remapped through the
// loading process's SiteRegistry so profiler output stays symbolic
// across processes.

/** Serialize a workload to a stream / file. */
void saveTrace(std::ostream &os, const WorkloadTrace &w);
void saveTraceFile(const std::string &path, const WorkloadTrace &w);

/**
 * Deserialize. Panics on corrupt structure; returns false only for
 * wrong magic/version (foreign file).
 */
bool loadTrace(std::istream &is, WorkloadTrace *out);
bool loadTraceFile(const std::string &path, WorkloadTrace *out);

} // namespace sim
} // namespace tlsim

#endif // SIM_TRACEIO_H
