/**
 * @file
 * Binary serialization of captured workload traces.
 *
 * Captures are deterministic but capture time (data load + native
 * transaction execution) dominates short experiments; saving a trace
 * lets the machine sweeps re-run without the database. The format is
 * versioned and self-describing enough to reject foreign files.
 *
 * Note: traces carry raw heap addresses from the capturing process.
 * They replay bit-identically (the simulator treats addresses as
 * opaque), but a reloaded trace is only comparable against runs of
 * the same file, not against a fresh capture.
 */

#ifndef SIM_TRACEIO_H
#define SIM_TRACEIO_H

#include <iosfwd>
#include <string>

#include "core/trace.h"

namespace tlsim {
namespace sim {

/** Magic + version of the trace container format. */
inline constexpr std::uint32_t kTraceMagic = 0x544c5331; // "TLS1"
inline constexpr std::uint32_t kTraceVersion = 4;
// v3: embeds the site-name table; PCs are remapped through the
// loading process's SiteRegistry so profiler output stays symbolic
// across processes.
// v4: epochs store columnar streams (op/size/aux/pc arrays plus
// zigzag-varint delta-coded addresses) instead of packed TraceRecord
// structs — near-sequential heap addresses delta-code to a byte or
// two. The version bump invalidates v3 trace caches; they re-capture.

/** Serialize a workload to a stream / file. */
void saveTrace(std::ostream &os, const WorkloadTrace &w);
void saveTraceFile(const std::string &path, const WorkloadTrace &w);

/**
 * Deserialize. Returns false for wrong magic/version (foreign file)
 * and for structurally malformed content — bad opcodes, oversized
 * accesses, or escape spans that are unordered, overlapping, out of
 * bounds, or not anchored on EscapeBegin/EscapeEnd records — after
 * describing the defect via inform(). Panics only on truncation.
 */
bool loadTrace(std::istream &is, WorkloadTrace *out);
bool loadTraceFile(const std::string &path, WorkloadTrace *out);

} // namespace sim
} // namespace tlsim

#endif // SIM_TRACEIO_H
