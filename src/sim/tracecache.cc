#include "sim/tracecache.h"

#include <filesystem>
#include <map>
#include <memory>

#include "base/log.h"
#include "base/stats.h"
#include "base/sync.h"
#include "base/threadannot.h"
#include "core/traceindex.h"
#include "sim/traceio.h"

namespace tlsim {
namespace sim {

namespace {

/**
 * Per-stem capture serialization. Two simulation points wanting the
 * same (benchmark, config) capture used to race the load-or-capture
 * sequence: both would miss, both would run the expensive capture, and
 * both would write the same .trace/.idx files concurrently — a torn
 * file for any later reader. Callers now hold the stem's mutex across
 * the whole sequence, so the first caller captures and everyone else
 * loads the finished bytes ("single-flight"). Distinct stems stay
 * fully parallel; the registry lock only covers the map probe.
 */
class StemLocks
{
  public:
    static StemLocks &instance()
    {
        static StemLocks locks;
        return locks;
    }

    /** The (process-lifetime) mutex serializing work on `stem`. */
    Mutex &forStem(const std::string &stem) TLSIM_EXCLUDES(mtx_)
    {
        MutexLock lk(mtx_);
        auto &slot = locks_[stem];
        if (!slot)
            slot = std::make_unique<Mutex>();
        return *slot;
    }

  private:
    Mutex mtx_;
    std::map<std::string, std::unique_ptr<Mutex>> locks_
        TLSIM_GUARDED_BY(mtx_);
};

/** FNV-1a, accumulated field by field. */
struct KeyHash
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 1099511628211ull;
        }
    }

    void
    mix(const char *s)
    {
        for (; *s; ++s) {
            h ^= static_cast<unsigned char>(*s);
            h *= 1099511628211ull;
        }
    }
};

std::string
fileStem(tpcc::TxnType type, const ExperimentConfig &cfg)
{
    std::string name = tpcc::txnTypeName(type);
    for (char &c : name)
        if (c == ' ')
            c = '_';
    return name + "-" + traceCacheKey(type, cfg);
}

} // namespace

std::string
traceCacheKey(tpcc::TxnType type, const ExperimentConfig &cfg)
{
    KeyHash k;
    k.mix(kTraceVersion);
    k.mix(tpcc::txnTypeName(type));
    k.mix(cfg.scale.items);
    k.mix(cfg.scale.districts);
    k.mix(cfg.scale.customersPerDistrict);
    k.mix(cfg.scale.ordersPerDistrict);
    k.mix(cfg.scale.firstNewOrder);
    k.mix(cfg.txns);
    k.mix(cfg.inputSeed);
    k.mix(cfg.loadSeed);
    k.mix(cfg.machine.tls.spawnOverheadInsts);
    return strfmt("%016llx", static_cast<unsigned long long>(k.h));
}

namespace {

/**
 * Attach pre-analysis indexes to freshly loaded/captured traces,
 * reusing the `.idx` files cached alongside the trace pair when they
 * match. Must run after `traces` holds its final workloads (the index
 * references its source workload by address).
 */
void
attachIndexes(BenchmarkTraces &traces, unsigned line_bytes,
              const std::string &stem)
{
    namespace fs = std::filesystem;
    std::string orig_path = stem + ".orig.idx";
    std::string tls_path = stem + ".tls.idx";

    if (fs::exists(orig_path))
        traces.originalIndex = TraceIndex::loadFile(
            orig_path, traces.original, line_bytes);
    if (fs::exists(tls_path))
        traces.tlsIndex =
            TraceIndex::loadFile(tls_path, traces.tls, line_bytes);
    if (traces.originalIndex && traces.tlsIndex)
        return;

    bool save_orig = !traces.originalIndex;
    bool save_tls = !traces.tlsIndex;
    traces.buildIndexes(line_bytes);
    if (save_orig)
        traces.originalIndex->saveFile(orig_path);
    if (save_tls)
        traces.tlsIndex->saveFile(tls_path);
}

} // namespace

SharedTraces
captureTracesShared(tpcc::TxnType type, const ExperimentConfig &cfg,
                    const std::string &cache_dir)
{
    unsigned line_bytes = cfg.machine.mem.lineBytes;
    if (cache_dir.empty()) {
        stats::GlobalCounters::instance().add("tracecache.bypass");
        auto traces = std::make_shared<BenchmarkTraces>(
            captureTraces(type, cfg));
        traces->buildIndexes(line_bytes);
        return traces;
    }

    namespace fs = std::filesystem;
    std::string stem =
        (fs::path(cache_dir) / fileStem(type, cfg)).string();
    std::string orig_path = stem + ".orig.trace";
    std::string tls_path = stem + ".tls.trace";

    // Single-flight: concurrent callers of the same stem serialize
    // here; the first one through captures (or loads) and the rest
    // load the files it finished writing.
    MutexLock stem_lock(StemLocks::instance().forStem(stem));

    if (fs::exists(orig_path) && fs::exists(tls_path)) {
        auto traces = std::make_shared<BenchmarkTraces>();
        WorkloadTrace orig, tls;
        if (loadTraceFile(orig_path, &orig) &&
            loadTraceFile(tls_path, &tls)) {
            traces->original = std::move(orig);
            traces->tls = std::move(tls);
            attachIndexes(*traces, line_bytes, stem);
            stats::GlobalCounters::instance().add("tracecache.hit");
            return traces;
        }
        inform("trace cache: %s has a foreign format, re-capturing",
               stem.c_str());
    }

    std::error_code ec;
    fs::create_directories(cache_dir, ec);
    if (ec)
        fatal("trace cache: cannot create directory %s: %s",
              cache_dir.c_str(), ec.message().c_str());

    stats::GlobalCounters::instance().add("tracecache.capture");
    auto traces =
        std::make_shared<BenchmarkTraces>(captureTraces(type, cfg));
    saveTraceFile(orig_path, traces->original);
    saveTraceFile(tls_path, traces->tls);
    traces->buildIndexes(line_bytes);
    traces->originalIndex->saveFile(stem + ".orig.idx");
    traces->tlsIndex->saveFile(stem + ".tls.idx");
    return traces;
}

} // namespace sim
} // namespace tlsim
