/**
 * @file
 * SimExecutor: a work-stealing thread pool that fans independent,
 * deterministic simulation points (benchmark x bar x TlsConfig) across
 * host hardware threads.
 *
 * Every task writes its result into a caller-indexed slot, so the
 * output of a parallel run is bit-identical to the serial loop it
 * replaces regardless of how the scheduler interleaves tasks: the TLS
 * machine is self-contained and the captured traces are shared
 * read-only. With jobs == 1 no threads are created at all and tasks
 * run inline on the caller, which keeps the serial reference path
 * trivially deterministic and overhead-free.
 *
 * Scheduling: each worker owns a deque seeded round-robin at submit
 * time; it pops from the back of its own deque (LIFO, cache-warm) and
 * steals from the front of the busiest other deque (FIFO, oldest
 * first) when empty. The submitting thread participates as a worker,
 * so `jobs` is the total number of threads doing simulation work.
 */

#ifndef SIM_EXECUTOR_H
#define SIM_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tlsim {
namespace sim {

class SimExecutor
{
  public:
    /** jobs == 0 selects the host's hardware concurrency. */
    explicit SimExecutor(unsigned jobs = 0);
    ~SimExecutor();

    SimExecutor(const SimExecutor &) = delete;
    SimExecutor &operator=(const SimExecutor &) = delete;

    /** Total threads working on a batch (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) .. fn(n-1) to completion, in parallel across the pool.
     * Blocks until every task finished. The first exception thrown by
     * any task is rethrown on the caller once the batch has drained.
     * Not reentrant: tasks must not themselves call parallelFor on the
     * same executor.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Convenience: results vector filled by index. */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<R> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Picked-up value of --jobs=0 on this host. */
    static unsigned hardwareJobs();

  private:
    struct Queue
    {
        std::mutex mtx;
        std::deque<std::size_t> tasks;
    };

    void workerLoop(unsigned self);
    /** Pop own work or steal; false when the batch has no task left. */
    bool nextTask(unsigned self, std::size_t *out);
    void runTasks(unsigned self);

    unsigned jobs_;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<Queue>> queues_;

    std::mutex mtx_;
    std::condition_variable wake_;  ///< workers: a batch is ready
    std::condition_variable done_;  ///< caller: batch fully drained
    const std::function<void(std::size_t)> *batchFn_ = nullptr;
    std::size_t pending_ = 0; ///< tasks not yet finished in this batch
    unsigned active_ = 0;     ///< workers currently inside runTasks()
    std::uint64_t batchId_ = 0;
    std::exception_ptr firstError_;
    bool shutdown_ = false;
};

} // namespace sim
} // namespace tlsim

#endif // SIM_EXECUTOR_H
