/**
 * @file
 * SimExecutor: a work-stealing thread pool that fans independent,
 * deterministic simulation points (benchmark x bar x TlsConfig) across
 * host hardware threads.
 *
 * Every task writes its result into a caller-indexed slot, so the
 * output of a parallel run is bit-identical to the serial loop it
 * replaces regardless of how the scheduler interleaves tasks: the TLS
 * machine is self-contained and the captured traces are shared
 * read-only. With jobs == 1 no threads are created at all and tasks
 * run inline on the caller, which keeps the serial reference path
 * trivially deterministic and overhead-free.
 *
 * Scheduling: each worker owns a deque seeded round-robin at submit
 * time; it pops from the back of its own deque (LIFO, cache-warm) and
 * steals from the front of the busiest other deque (FIFO, oldest
 * first) when empty. The submitting thread participates as a worker,
 * so `jobs` is the total number of threads doing simulation work.
 *
 * Lock discipline (checked at compile time under TLSIM_THREAD_SAFETY):
 * every per-worker deque is a self-locking TaskQueue capability — all
 * push/pop/steal paths acquire the queue's own mutex inside the
 * method, so a steal can never touch a victim's deque unlocked — and
 * every batch-lifecycle field is GUARDED_BY the single batch mutex.
 */

#ifndef SIM_EXECUTOR_H
#define SIM_EXECUTOR_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "base/threadannot.h"

namespace tlsim {
namespace sim {

class SimExecutor
{
  public:
    /** jobs == 0 selects the host's hardware concurrency. */
    explicit SimExecutor(unsigned jobs = 0);
    ~SimExecutor();

    SimExecutor(const SimExecutor &) = delete;
    SimExecutor &operator=(const SimExecutor &) = delete;

    /** Total threads working on a batch (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) .. fn(n-1) to completion, in parallel across the pool.
     * Blocks until every task finished. The first exception thrown by
     * any task is rethrown on the caller once the batch has drained.
     * Not reentrant and single-submitter: a task calling parallelFor
     * on its own executor, or a second thread submitting while a batch
     * is open, panics (the claim check is atomic with the claim, so a
     * racing submitter can never corrupt an in-flight batch).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Convenience: results vector filled by index. */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<R> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Two-stage pipeline over n items: produce(i) runs strictly in
     * index order on a dedicated producer thread, consume(i) runs
     * strictly in index order on the caller, and produce may run at
     * most `window` items ahead of consume (the bounded prefetch
     * queue). Made for decode-ahead-of-replay: trace capture/decode
     * stages must execute in index order anyway (site-name interning
     * is order-dependent), so only their overlap with the replay
     * stage changes — both stages see the exact sequence the serial
     *     for i: produce(i); consume(i);
     * loop would run, and the output is byte-identical to it. With
     * jobs == 1 (or n <= 1) that serial loop is exactly what runs —
     * no threads, no locks. The first exception from either stage
     * drains the pipeline and is rethrown on the caller. Not
     * reentrant with parallelFor or itself (same batch claim).
     */
    void pipeline(std::size_t n,
                  const std::function<void(std::size_t)> &produce,
                  const std::function<void(std::size_t)> &consume,
                  std::size_t window = 2);

    /** Picked-up value of --jobs=0 on this host. */
    static unsigned hardwareJobs();

  private:
    /**
     * One worker's task deque as a capability: the deque is only
     * reachable through methods that take the internal mutex, so the
     * owner's LIFO pop and a thief's FIFO steal are provably locked.
     */
    class TaskQueue
    {
      public:
        /** Append a task (submit-time round-robin seeding). */
        void
        push(std::size_t idx) TLSIM_EXCLUDES(mtx_)
        {
            MutexLock lk(mtx_);
            tasks_.push_back(idx);
        }

        /** Owner path: newest task (cache-warm). */
        bool
        popBack(std::size_t *out) TLSIM_EXCLUDES(mtx_)
        {
            MutexLock lk(mtx_);
            if (tasks_.empty())
                return false;
            *out = tasks_.back();
            tasks_.pop_back();
            return true;
        }

        /** Thief path: oldest task (largest remaining chain). */
        bool
        popFront(std::size_t *out) TLSIM_EXCLUDES(mtx_)
        {
            MutexLock lk(mtx_);
            if (tasks_.empty())
                return false;
            *out = tasks_.front();
            tasks_.pop_front();
            return true;
        }

        /** Size snapshot for victim selection; stale by the time the
         *  thief acts, so popFront() re-checks under the lock. */
        std::size_t
        size() const TLSIM_EXCLUDES(mtx_)
        {
            MutexLock lk(mtx_);
            return tasks_.size();
        }

      private:
        mutable Mutex mtx_;
        std::deque<std::size_t> tasks_ TLSIM_GUARDED_BY(mtx_);
    };

    void workerLoop(unsigned self);
    /** Pop own work or steal; false when the batch has no task left. */
    bool nextTask(unsigned self, std::size_t *out);
    void runTasks(unsigned self);

    unsigned jobs_;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<TaskQueue>> queues_;

    Mutex mtx_;
    CondVar wake_; ///< workers: a batch is ready
    CondVar done_; ///< caller: batch fully drained

    /** Claimed by parallelFor before anything else, under mtx_, so a
     *  second submitter panics instead of racing the open batch. */
    bool batchOpen_ TLSIM_GUARDED_BY(mtx_) = false;
    const std::function<void(std::size_t)> *batchFn_
        TLSIM_GUARDED_BY(mtx_) = nullptr;
    /** Tasks not yet finished in this batch. */
    std::size_t pending_ TLSIM_GUARDED_BY(mtx_) = 0;
    /** Workers currently inside runTasks(). */
    unsigned active_ TLSIM_GUARDED_BY(mtx_) = 0;
    std::uint64_t batchId_ TLSIM_GUARDED_BY(mtx_) = 0;
    std::exception_ptr firstError_ TLSIM_GUARDED_BY(mtx_);
    bool shutdown_ TLSIM_GUARDED_BY(mtx_) = false;

    /** Pipeline hand-off (pipeline() only): producer/consumer cursors
     *  and the first error, guarded by their own mutex so the batch
     *  lock never crosses a stage boundary. */
    Mutex pipeMtx_;
    CondVar pipeCv_;
    std::size_t pipeProduced_ TLSIM_GUARDED_BY(pipeMtx_) = 0;
    std::size_t pipeConsumed_ TLSIM_GUARDED_BY(pipeMtx_) = 0;
    std::exception_ptr pipeError_ TLSIM_GUARDED_BY(pipeMtx_);
};

} // namespace sim
} // namespace tlsim

#endif // SIM_EXECUTOR_H
