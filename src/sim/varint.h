/**
 * @file
 * Zigzag-varint codec for the v4 columnar trace format.
 *
 * The address column of an epoch is delta-coded and varint-packed
 * (sim/traceio.cc); replaying a cached trace decodes hundreds of
 * millions of these, so the decoder matters. Two decoders live here:
 *
 *  - decodeOne: the byte-at-a-time reference decoder, shared by the
 *    non-seekable-stream fallback and the differential tests.
 *  - decodeBlock: the batch decoder. For each value it loads eight
 *    bytes at once and extracts the continuation mask branchlessly
 *    (ctz on the inverted MSB lattice gives the varint length; a SWAR
 *    shift cascade compacts the 7-bit payload groups). Varints longer
 *    than eight bytes — addresses with 57+ significant delta bits,
 *    essentially absent from real traces — fall back to decodeOne,
 *    which also supplies the malformed-input rejection for them.
 *
 * Both decoders reject the same malformed inputs: a 10th byte whose
 * payload spills past bit 63 (Overflow) and a continuation chain that
 * never terminates within 10 bytes (TooLong). Truncation surfaces as
 * NeedMore so the stream layer can refill or diagnose.
 */

#ifndef SIM_VARINT_H
#define SIM_VARINT_H

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "base/hotpath.h"

namespace tlsim {
namespace sim {
namespace varint {

/** Longest legal encoding of a 64-bit value: ceil(64 / 7) bytes. */
inline constexpr std::size_t kMaxBytes = 10;

/** Batch granularity of decodeBlock callers (one SoA scratch block). */
inline constexpr std::size_t kBlock = 64;

inline std::uint64_t
zigzag(std::int64_t v)
{
    // All arithmetic in uint64: the left shift of a negative value
    // and the arithmetic right shift it used to pair with are exactly
    // the kind of silent-overflow idiom UBSan flags.
    std::uint64_t u = static_cast<std::uint64_t>(v);
    return (u << 1) ^ (v < 0 ? ~std::uint64_t{0} : std::uint64_t{0});
}

inline std::int64_t
unzigzag(std::uint64_t z)
{
    // (z & 1) selects an all-ones or all-zeros XOR mask; computed as
    // an explicit unsigned subtraction (wrap intended), not a signed
    // negate of an unsigned expression.
    std::uint64_t mask = std::uint64_t{0} - (z & 1);
    return static_cast<std::int64_t>((z >> 1) ^ mask);
}

/** Encode `v` into `buf` (at least kMaxBytes); returns bytes written. */
inline std::size_t
encode(std::uint8_t *buf, std::uint64_t v)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        buf[n++] = static_cast<std::uint8_t>(v | 0x80);
        v >>= 7;
    }
    buf[n++] = static_cast<std::uint8_t>(v);
    return n;
}

enum class Status {
    Ok,       ///< requested values decoded
    NeedMore, ///< buffer ended inside a varint (refill or truncated)
    Overflow, ///< 10th byte carries payload past bit 63
    TooLong,  ///< no terminator within kMaxBytes
};

/**
 * Reference decoder: one value from [p, p+avail). On Ok, `*out` holds
 * the value and `*used` the bytes consumed; `*used` is untouched
 * otherwise.
 */
inline Status
decodeOne(const std::uint8_t *p, std::size_t avail, std::uint64_t *out,
          std::size_t *used)
{
    std::uint64_t v = 0;
    std::size_t i = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (i >= avail)
            return Status::NeedMore;
        std::uint8_t b = p[i++];
        std::uint64_t bits = std::uint64_t{b} & 0x7f;
        if (shift == 63 && (bits >> 1) != 0)
            return Status::Overflow;
        v |= bits << shift;
        if (!(b & 0x80)) {
            *out = v;
            *used = i;
            return Status::Ok;
        }
    }
    return Status::TooLong;
}

/**
 * Batch decoder: up to `count` values from [p, p+avail) into `out`.
 * Always reports progress through `*decoded` (values written) and
 * `*consumed` (bytes used for them), even on a non-Ok status, so the
 * caller can scatter partial results, refill the buffer at the
 * consumed offset, and continue. Never reads past p + avail.
 */
TLSIM_HOT inline Status
decodeBlock(const std::uint8_t *p, std::size_t avail, std::size_t count,
            std::uint64_t *out, std::size_t *decoded,
            std::size_t *consumed)
{
    constexpr std::uint64_t kCont = 0x8080808080808080ull;
    constexpr std::uint64_t kPayload = 0x7f7f7f7f7f7f7f7full;
    std::size_t pos = 0, k = 0;
    while (k < count) {
        std::uint64_t word;
        std::uint64_t stop;
        if (avail - pos >= 8 &&
            (std::memcpy(&word, p + pos, 8),
             (stop = ~word & kCont) != 0)) {
            // Terminator inside the 8-byte window: its position gives
            // the length, everything below it is payload. No overflow
            // check needed — 8 bytes carry at most 56 payload bits.
            std::uint64_t low = stop & (std::uint64_t{0} - stop);
            unsigned nbytes =
                (static_cast<unsigned>(__builtin_ctzll(stop)) >> 3) + 1;
            std::uint64_t data = word & (low - 1) & kPayload;
            std::uint64_t v = data & 0x7f;
            v |= (data >> 1) & (std::uint64_t{0x7f} << 7);
            v |= (data >> 2) & (std::uint64_t{0x7f} << 14);
            v |= (data >> 3) & (std::uint64_t{0x7f} << 21);
            v |= (data >> 4) & (std::uint64_t{0x7f} << 28);
            v |= (data >> 5) & (std::uint64_t{0x7f} << 35);
            v |= (data >> 6) & (std::uint64_t{0x7f} << 42);
            v |= (data >> 7) & (std::uint64_t{0x7f} << 49);
            out[k++] = v;
            pos += nbytes;
            continue;
        }
        // Buffer tail or a 9/10-byte varint: the reference decoder
        // finishes the value and owns the malformed-input rejection.
        std::uint64_t v = 0;
        std::size_t used = 0;
        Status st = decodeOne(p + pos, avail - pos, &v, &used);
        if (st != Status::Ok) {
            *decoded = k;
            *consumed = pos;
            return st;
        }
        out[k++] = v;
        pos += used;
    }
    *decoded = k;
    *consumed = pos;
    return Status::Ok;
}

} // namespace varint
} // namespace sim
} // namespace tlsim

#endif // SIM_VARINT_H
