/**
 * @file
 * On-disk cache of captured benchmark traces, keyed by everything that
 * influences a capture (benchmark, TPC-C scale, transaction count,
 * seeds, spawn overhead, trace format version).
 *
 * Capture (data load + native transaction execution) dominates short
 * experiments, and every bench binary used to re-capture identical
 * TPC-C traces. With a cache directory, each (benchmark, config) pair
 * is captured exactly once and every later run — in this process or
 * another — replays the same bytes, which also makes bench *output*
 * byte-identical across processes (a fresh capture records raw heap
 * addresses, which change between processes; a reloaded trace does
 * not).
 *
 * Thread safety: captureTracesShared() may be called from concurrent
 * executor tasks. Calls for the same cache stem are serialized
 * single-flight (one capture, everyone else loads the finished
 * files); distinct stems proceed in parallel. Cache traffic is
 * counted in stats::GlobalCounters under "tracecache.*".
 */

#ifndef SIM_TRACECACHE_H
#define SIM_TRACECACHE_H

#include <memory>
#include <string>

#include "sim/experiment.h"

namespace tlsim {
namespace sim {

/** Captured traces shared read-only across simulation points. */
using SharedTraces = std::shared_ptr<const BenchmarkTraces>;

/**
 * Cache key for one benchmark capture under `cfg` — a stable hex
 * digest of every capture-relevant parameter. Replay-only knobs
 * (machine config, warmup) do not contribute.
 */
std::string traceCacheKey(tpcc::TxnType type,
                          const ExperimentConfig &cfg);

/**
 * Capture both traces of a benchmark, through the cache.
 *
 * With an empty `cache_dir` this is captureTraces() behind a
 * shared_ptr. Otherwise the pair of trace files under
 * `cache_dir/<BENCH>-<key>.{orig,tls}.trace` is loaded if present and
 * valid, else captured and written. The directory is created on
 * demand.
 */
SharedTraces captureTracesShared(tpcc::TxnType type,
                                 const ExperimentConfig &cfg,
                                 const std::string &cache_dir = "");

} // namespace sim
} // namespace tlsim

#endif // SIM_TRACECACHE_H
