#include "sim/report.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "base/log.h"

namespace tlsim {
namespace sim {

namespace {

/** The breakdown categories in Figure 5 legend order. */
const Cat kLegend[] = {Cat::Idle, Cat::Failed, Cat::LatchStall,
                       Cat::Sync, Cat::CacheMiss, Cat::Busy};

} // namespace

void
printFigure5Row(std::ostream &os, const Figure5Row &row)
{
    const RunResult &seq = row.result(Bar::Sequential);
    double denom = static_cast<double>(seq.total.total());
    if (denom <= 0)
        denom = 1;

    os << "=== Figure 5: " << tpcc::txnTypeName(row.type) << " ===\n";
    os << strfmt("%-15s %8s", "bar", "time");
    for (Cat c : kLegend)
        os << strfmt(" %11s", catName(c));
    os << strfmt(" %8s", "speedup");
    os << "\n";

    for (const auto &[bar, run] : row.bars) {
        // Normalized bar height: total CPU-cycles relative to the
        // sequential execution (all bars ran on the same CPU count, so
        // this equals makespan / seq makespan).
        double height = static_cast<double>(run.total.total()) / denom;
        os << strfmt("%-15s %8.3f", barName(bar), height);
        for (Cat c : kLegend) {
            double frac = static_cast<double>(run.total[c]) / denom;
            os << strfmt(" %11.3f", frac);
        }
        os << strfmt(" %8.2f",
                     run.makespan
                         ? static_cast<double>(seq.makespan) /
                               static_cast<double>(run.makespan)
                         : 0.0);
        os << "\n";
    }

    const RunResult &base = row.result(Bar::Baseline);
    os << strfmt("violations: primary %llu secondary %llu, "
                 "squashes %llu, rewound insts %llu, "
                 "sub-threads %llu, latch waits %llu\n\n",
                 static_cast<unsigned long long>(base.primaryViolations),
                 static_cast<unsigned long long>(
                     base.secondaryViolations),
                 static_cast<unsigned long long>(base.squashes),
                 static_cast<unsigned long long>(base.rewoundInsts),
                 static_cast<unsigned long long>(base.subthreadsStarted),
                 static_cast<unsigned long long>(base.latchWaits));
}

void
printSpeedupSummary(std::ostream &os,
                    const std::vector<Figure5Row> &rows)
{
    os << "=== Speedup summary (BASELINE vs SEQUENTIAL) ===\n";
    os << strfmt("%-16s %9s %9s %9s\n", "benchmark", "no-subth",
                 "baseline", "no-spec");
    for (const auto &row : rows) {
        os << strfmt("%-16s %9.2f %9.2f %9.2f\n",
                     tpcc::txnTypeName(row.type),
                     row.speedup(Bar::NoSubthread),
                     row.speedup(Bar::Baseline),
                     row.speedup(Bar::NoSpeculation));
    }
    os << "\n";
}

void
printFigure6(std::ostream &os, const std::string &name,
             const std::vector<SweepPoint> &points, Cycle seq_makespan)
{
    os << "=== Figure 6: " << name
       << " (normalized execution time vs SEQUENTIAL; lower is "
          "better) ===\n";

    std::vector<std::uint64_t> spacings;
    std::vector<unsigned> counts;
    for (const auto &p : points) {
        if (std::find(spacings.begin(), spacings.end(), p.spacing) ==
            spacings.end())
            spacings.push_back(p.spacing);
        if (std::find(counts.begin(), counts.end(), p.subthreads) ==
            counts.end())
            counts.push_back(p.subthreads);
    }

    os << strfmt("%-14s", "spacing");
    for (unsigned k : counts)
        os << strfmt(" %12s",
                     strfmt("%u sub-thr", k).c_str());
    os << "\n";
    for (std::uint64_t s : spacings) {
        os << strfmt("%-14llu", static_cast<unsigned long long>(s));
        for (unsigned k : counts) {
            const SweepPoint *found = nullptr;
            for (const auto &p : points)
                if (p.spacing == s && p.subthreads == k)
                    found = &p;
            if (!found) {
                os << strfmt(" %12s", "-");
                continue;
            }
            double norm = seq_makespan
                              ? static_cast<double>(found->run.makespan) /
                                    static_cast<double>(seq_makespan)
                              : 0;
            os << strfmt(" %12.3f", norm);
        }
        os << "\n";
    }
    os << "\n";
}

void
printTable2(std::ostream &os, const std::vector<Table2Row> &rows)
{
    os << "=== Table 2: Benchmark statistics ===\n";
    os << strfmt("%-16s %10s %9s %12s %12s %10s\n", "benchmark",
                 "exec(Mcyc)", "coverage", "thread-size",
                 "spec-insts", "thr/txn");
    for (const auto &r : rows) {
        os << strfmt("%-16s %10.1f %8.0f%% %12.0f %12.0f %10.1f\n",
                     tpcc::txnTypeName(r.type), r.execMcycles,
                     r.coverage * 100.0, r.threadSizeInsts,
                     r.specInstsPerThread, r.threadsPerTxn);
    }
    os << "\n";
}

} // namespace sim
} // namespace tlsim
