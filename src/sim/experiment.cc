#include "sim/experiment.h"

#include "base/log.h"
#include "sim/executor.h"
#include "verify/auditor.h"

namespace tlsim {
namespace sim {

const char *
barName(Bar b)
{
    switch (b) {
      case Bar::Sequential: return "SEQUENTIAL";
      case Bar::TlsSeq: return "TLS-SEQ";
      case Bar::NoSubthread: return "NO SUB-THREAD";
      case Bar::Baseline: return "BASELINE";
      case Bar::NoSpeculation: return "NO SPECULATION";
    }
    return "?";
}

const std::vector<Bar> &
allBars()
{
    static const std::vector<Bar> v = {
        Bar::Sequential, Bar::TlsSeq, Bar::NoSubthread, Bar::Baseline,
        Bar::NoSpeculation,
    };
    return v;
}

ExperimentConfig
ExperimentConfig::testPreset()
{
    ExperimentConfig cfg;
    cfg.scale = tpcc::TpccConfig::tiny();
    cfg.txns = 6;
    cfg.warmupTxns = 1;
    return cfg;
}

void
BenchmarkTraces::buildIndexes(unsigned line_bytes)
{
    if (!originalIndex || !originalIndex->matches(&original, line_bytes))
        originalIndex =
            std::make_shared<const TraceIndex>(original, line_bytes);
    if (!tlsIndex || !tlsIndex->matches(&tls, line_bytes))
        tlsIndex = std::make_shared<const TraceIndex>(tls, line_bytes);
}

BenchmarkTraces
captureTraces(tpcc::TxnType type, const ExperimentConfig &cfg)
{
    BenchmarkTraces out;

    tpcc::CaptureOptions orig;
    orig.txns = cfg.txns;
    orig.tlsBuild = false;
    orig.parallelMode = false;
    orig.inputSeed = cfg.inputSeed;
    orig.loadSeed = cfg.loadSeed;
    orig.scale = cfg.scale;
    out.original = tpcc::captureBenchmark(type, orig);

    tpcc::CaptureOptions tls = orig;
    tls.tlsBuild = true;
    tls.parallelMode = true;
    tls.spawnOverheadInsts = cfg.machine.tls.spawnOverheadInsts;
    out.tls = tpcc::captureBenchmark(type, tls);

    return out;
}

RunResult
runBar(Bar bar, const BenchmarkTraces &traces,
       const ExperimentConfig &cfg)
{
    MachineConfig mc = cfg.machine;
    const TraceIndex *orig_idx = traces.originalIndex.get();
    const TraceIndex *tls_idx = traces.tlsIndex.get();
    switch (bar) {
      case Bar::Sequential: {
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.original, ExecMode::Serial, cfg.warmupTxns,
                     orig_idx);
      }
      case Bar::TlsSeq: {
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.tls, ExecMode::Serial, cfg.warmupTxns,
                     tls_idx);
      }
      case Bar::NoSubthread: {
        mc.tls.subthreadsPerThread = 1;
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.tls, ExecMode::Tls, cfg.warmupTxns,
                     tls_idx);
      }
      case Bar::Baseline: {
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.tls, ExecMode::Tls, cfg.warmupTxns,
                     tls_idx);
      }
      case Bar::NoSpeculation: {
        TlsMachine m(mc);
        return verify::runWithAudit(m, traces.tls, ExecMode::NoSpeculation,
                     cfg.warmupTxns, tls_idx);
      }
    }
    panic("unknown bar");
}

const RunResult &
Figure5Row::result(Bar b) const
{
    for (const auto &[bar, run] : bars)
        if (bar == b)
            return run;
    panic("Figure5Row: bar %s missing", barName(b));
}

double
Figure5Row::speedup(Bar b) const
{
    return result(b).speedupVs(result(Bar::Sequential));
}

Figure5Row
runFigure5(tpcc::TxnType type, const ExperimentConfig &cfg)
{
    BenchmarkTraces traces = captureTraces(type, cfg);
    traces.buildIndexes(cfg.machine.mem.lineBytes);
    Figure5Row row;
    row.type = type;
    for (Bar b : allBars())
        row.bars.emplace_back(b, runBar(b, traces, cfg));
    return row;
}

Figure5Row
runFigure5(tpcc::TxnType type, const ExperimentConfig &cfg,
           const BenchmarkTraces &traces, SimExecutor &ex)
{
    const std::vector<Bar> &bars = allBars();
    std::vector<RunResult> results(bars.size());
    ex.parallelFor(bars.size(), [&](std::size_t i) {
        results[i] = runBar(bars[i], traces, cfg);
    });
    Figure5Row row;
    row.type = type;
    for (std::size_t i = 0; i < bars.size(); ++i)
        row.bars.emplace_back(bars[i], std::move(results[i]));
    return row;
}

std::vector<SweepPoint>
runFigure6(tpcc::TxnType type, const ExperimentConfig &cfg,
           const std::vector<unsigned> &counts,
           const std::vector<std::uint64_t> &spacings,
           const BenchmarkTraces &traces, SimExecutor &ex)
{
    (void)type;
    std::vector<SweepPoint> out(counts.size() * spacings.size());
    ex.parallelFor(out.size(), [&](std::size_t i) {
        unsigned k = counts[i / spacings.size()];
        std::uint64_t s = spacings[i % spacings.size()];
        MachineConfig mc = cfg.machine;
        mc.tls.subthreadsPerThread = k;
        mc.tls.subthreadSpacing = s;
        TlsMachine m(mc);
        out[i] = {k, s,
                  verify::runWithAudit(m, traces.tls, ExecMode::Tls,
                                       cfg.warmupTxns,
                                       traces.tlsIndex.get())};
    });
    return out;
}

std::vector<SweepPoint>
runFigure6(tpcc::TxnType type, const ExperimentConfig &cfg,
           const std::vector<unsigned> &counts,
           const std::vector<std::uint64_t> &spacings)
{
    BenchmarkTraces traces = captureTraces(type, cfg);
    traces.buildIndexes(cfg.machine.mem.lineBytes);
    std::vector<SweepPoint> out;
    for (unsigned k : counts) {
        for (std::uint64_t s : spacings) {
            MachineConfig mc = cfg.machine;
            mc.tls.subthreadsPerThread = k;
            mc.tls.subthreadSpacing = s;
            TlsMachine m(mc);
            out.push_back(
                {k, s,
                 verify::runWithAudit(m, traces.tls, ExecMode::Tls,
                                      cfg.warmupTxns,
                                      traces.tlsIndex.get())});
        }
    }
    return out;
}

Table2Row
table2Row(tpcc::TxnType type, const ExperimentConfig &cfg)
{
    BenchmarkTraces traces = captureTraces(type, cfg);
    traces.buildIndexes(cfg.machine.mem.lineBytes);
    return table2Row(type, cfg, traces);
}

Table2Row
table2Row(tpcc::TxnType type, const ExperimentConfig &cfg,
          const BenchmarkTraces &traces)
{
    Table2Row row{};
    row.type = type;

    TlsMachine m(cfg.machine);
    RunResult seq =
        verify::runWithAudit(m, traces.original, ExecMode::Serial,
                             cfg.warmupTxns,
                             traces.originalIndex.get());
    row.execMcycles = static_cast<double>(seq.makespan) / 1e6;

    // Workload statistics over the measured transactions of the TLS
    // trace (the decomposition the parallel bars execute).
    double cov_num = 0, cov_den = 0;
    std::uint64_t epochs = 0, loops = 0;
    double insts = 0, spec_insts = 0;
    for (std::size_t i = cfg.warmupTxns; i < traces.tls.txns.size();
         ++i) {
        const TransactionTrace &t = traces.tls.txns[i];
        cov_num += static_cast<double>(t.parallelInsts());
        cov_den += static_cast<double>(t.totalInsts());
        epochs += t.epochCount();
        for (const auto &sec : t.sections) {
            if (!sec.parallel)
                continue;
            ++loops;
            for (const auto &e : sec.epochs) {
                insts += static_cast<double>(e.instCount);
                spec_insts += static_cast<double>(e.specInstCount);
            }
        }
    }
    row.coverage = cov_den > 0 ? cov_num / cov_den : 0;
    row.threadSizeInsts = epochs ? insts / epochs : 0;
    row.specInstsPerThread = epochs ? spec_insts / epochs : 0;
    // threads per transaction = epochs per parallel-loop instance
    row.threadsPerTxn =
        loops ? static_cast<double>(epochs) / static_cast<double>(loops)
              : 0;
    row.epochs = epochs;
    return row;
}

} // namespace sim
} // namespace tlsim
