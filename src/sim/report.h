/**
 * @file
 * Text rendering of the evaluation artifacts in the shape of the
 * paper's tables and figures: normalized stacked-bar breakdowns
 * (Figure 5), sweep series (Figure 6), and the Table 2 statistics.
 */

#ifndef SIM_REPORT_H
#define SIM_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace tlsim {
namespace sim {

/** Figure 5: one benchmark's bars, normalized to SEQUENTIAL = 1.0. */
void printFigure5Row(std::ostream &os, const Figure5Row &row);

/** Figure 5 summary line: the speedups the paper quotes in the text. */
void printSpeedupSummary(std::ostream &os,
                         const std::vector<Figure5Row> &rows);

/** Figure 6: normalized execution time per (count, spacing) pair.
 *  `seq_makespan` comes from the benchmark's SEQUENTIAL bar. */
void printFigure6(std::ostream &os, const std::string &name,
                  const std::vector<SweepPoint> &points,
                  Cycle seq_makespan);

/** Table 2 (all rows). */
void printTable2(std::ostream &os,
                 const std::vector<Table2Row> &rows);

} // namespace sim
} // namespace tlsim

#endif // SIM_REPORT_H
