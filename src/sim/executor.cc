#include "sim/executor.h"

#include <algorithm>

#include "base/log.h"

namespace tlsim {
namespace sim {

unsigned
SimExecutor::hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SimExecutor::SimExecutor(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
    if (jobs_ == 1)
        return; // inline mode: no threads, no queues
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<Queue>());
    // Worker 0 is the submitting thread; spawn the other jobs_ - 1.
    threads_.reserve(jobs_ - 1);
    for (unsigned i = 1; i < jobs_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

SimExecutor::~SimExecutor()
{
    if (jobs_ == 1)
        return;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
SimExecutor::nextTask(unsigned self, std::size_t *out)
{
    {
        Queue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (!q.tasks.empty()) {
            *out = q.tasks.back(); // own work LIFO: cache-warm
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal oldest work from the fullest other queue.
    while (true) {
        unsigned victim = jobs_;
        std::size_t most = 0;
        for (unsigned v = 0; v < jobs_; ++v) {
            if (v == self)
                continue;
            Queue &q = *queues_[v];
            std::lock_guard<std::mutex> lk(q.mtx);
            if (q.tasks.size() > most) {
                most = q.tasks.size();
                victim = v;
            }
        }
        if (victim == jobs_)
            return false;
        Queue &q = *queues_[victim];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (q.tasks.empty())
            continue; // raced with the owner; rescan
        *out = q.tasks.front();
        q.tasks.pop_front();
        return true;
    }
}

void
SimExecutor::runTasks(unsigned self)
{
    const std::function<void(std::size_t)> *fn;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        fn = batchFn_;
    }
    if (!fn)
        return;
    std::size_t idx;
    while (nextTask(self, &idx)) {
        try {
            (*fn)(idx);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mtx_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lk(mtx_);
        if (--pending_ == 0)
            done_.notify_all();
    }
}

void
SimExecutor::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mtx_);
            wake_.wait(lk, [&] {
                return shutdown_ || batchId_ != seen;
            });
            if (shutdown_)
                return;
            seen = batchId_;
            ++active_;
        }
        runTasks(self);
        {
            std::lock_guard<std::mutex> lk(mtx_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
SimExecutor::parallelFor(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        // A worker still draining the previous batch holds a pointer to
        // that batch's function object; never seed new tasks it could
        // pick up until every worker has left runTasks().
        std::unique_lock<std::mutex> lk(mtx_);
        if (batchFn_)
            panic("SimExecutor::parallelFor is not reentrant");
        done_.wait(lk, [&] { return active_ == 0; });
    }

    // Seed round-robin so early indices spread across workers.
    for (std::size_t i = 0; i < n; ++i) {
        Queue &q = *queues_[i % jobs_];
        std::lock_guard<std::mutex> lk(q.mtx);
        q.tasks.push_back(i);
    }
    {
        std::lock_guard<std::mutex> lk(mtx_);
        batchFn_ = &fn;
        pending_ = n;
        firstError_ = nullptr;
        ++batchId_;
    }
    wake_.notify_all();

    runTasks(0); // the caller works too

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mtx_);
        done_.wait(lk, [&] { return pending_ == 0; });
        batchFn_ = nullptr;
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace sim
} // namespace tlsim
