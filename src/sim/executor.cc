#include "sim/executor.h"

#include "base/log.h"
#include "base/stats.h"

namespace tlsim {
namespace sim {

unsigned
SimExecutor::hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SimExecutor::SimExecutor(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
    if (jobs_ == 1)
        return; // inline mode: no threads, no queues
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<TaskQueue>());
    // Worker 0 is the submitting thread; spawn the other jobs_ - 1.
    threads_.reserve(jobs_ - 1);
    for (unsigned i = 1; i < jobs_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

SimExecutor::~SimExecutor()
{
    if (jobs_ == 1)
        return;
    {
        MutexLock lk(mtx_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
SimExecutor::nextTask(unsigned self, std::size_t *out)
{
    if (queues_[self]->popBack(out)) // own work LIFO: cache-warm
        return true;
    // Steal oldest work from the fullest other queue. The size scan is
    // advisory; popFront() re-checks emptiness under the queue's own
    // lock, so losing a race with the owner just rescans.
    while (true) {
        unsigned victim = jobs_;
        std::size_t most = 0;
        for (unsigned v = 0; v < jobs_; ++v) {
            if (v == self)
                continue;
            std::size_t sz = queues_[v]->size();
            if (sz > most) {
                most = sz;
                victim = v;
            }
        }
        if (victim == jobs_)
            return false;
        if (queues_[victim]->popFront(out)) {
            stats::GlobalCounters::instance().add("executor.steals");
            return true;
        }
        // Raced with the owner; rescan.
    }
}

void
SimExecutor::runTasks(unsigned self)
{
    const std::function<void(std::size_t)> *fn;
    {
        MutexLock lk(mtx_);
        fn = batchFn_;
    }
    if (!fn)
        return;
    std::size_t idx;
    while (nextTask(self, &idx)) {
        try {
            (*fn)(idx);
        } catch (...) {
            MutexLock lk(mtx_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        MutexLock lk(mtx_);
        if (--pending_ == 0)
            done_.notify_all();
    }
}

void
SimExecutor::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            UniqueLock lk(mtx_);
            while (!shutdown_ && batchId_ == seen)
                wake_.wait(lk);
            if (shutdown_)
                return;
            seen = batchId_;
            ++active_;
        }
        runTasks(self);
        {
            MutexLock lk(mtx_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
SimExecutor::parallelFor(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        // Claim the batch slot atomically with the reentrancy check:
        // the old `if (batchFn_)` guard only tripped once the racing
        // submitter had already published its function, so two threads
        // could both pass it and interleave their seeding. batchOpen_
        // is set under the same critical section that inspects it.
        UniqueLock lk(mtx_);
        if (batchOpen_)
            panic("SimExecutor::parallelFor is not reentrant");
        batchOpen_ = true;
        // A worker still draining the previous batch holds a pointer
        // to that batch's function object; never seed new tasks it
        // could pick up until every worker has left runTasks().
        while (active_ != 0)
            done_.wait(lk);
    }

    // Seed round-robin so early indices spread across workers.
    for (std::size_t i = 0; i < n; ++i)
        queues_[i % jobs_]->push(i);
    {
        MutexLock lk(mtx_);
        batchFn_ = &fn;
        pending_ = n;
        firstError_ = nullptr;
        ++batchId_;
    }
    wake_.notify_all();
    stats::GlobalCounters::instance().add("executor.batches");
    stats::GlobalCounters::instance().add("executor.tasks", n);

    runTasks(0); // the caller works too

    std::exception_ptr err;
    {
        UniqueLock lk(mtx_);
        while (pending_ != 0)
            done_.wait(lk);
        batchFn_ = nullptr;
        err = firstError_;
        firstError_ = nullptr;
        batchOpen_ = false;
    }
    if (err)
        std::rethrow_exception(err);
}

void
SimExecutor::pipeline(std::size_t n,
                      const std::function<void(std::size_t)> &produce,
                      const std::function<void(std::size_t)> &consume,
                      std::size_t window)
{
    if (window == 0)
        window = 1;
    if (jobs_ == 1 || n <= 1) {
        // The reference serial loop; the threaded path below runs the
        // same two sequences, only overlapped in wall time.
        for (std::size_t i = 0; i < n; ++i) {
            produce(i);
            consume(i);
        }
        return;
    }

    {
        MutexLock lk(mtx_);
        if (batchOpen_)
            panic("SimExecutor::pipeline inside an open batch");
        batchOpen_ = true;
    }
    {
        MutexLock lk(pipeMtx_);
        pipeProduced_ = 0;
        pipeConsumed_ = 0;
        pipeError_ = nullptr;
    }

    // Producer: the decode stage, strictly in index order, at most
    // `window` items ahead of the consumer.
    std::thread producer([&] {
        for (std::size_t i = 0; i < n; ++i) {
            {
                UniqueLock lk(pipeMtx_);
                while (pipeConsumed_ + window <= i && !pipeError_)
                    pipeCv_.wait(lk);
                if (pipeError_)
                    return;
            }
            try {
                produce(i);
            } catch (...) {
                UniqueLock lk(pipeMtx_);
                if (!pipeError_)
                    pipeError_ = std::current_exception();
                pipeCv_.notify_all();
                return;
            }
            UniqueLock lk(pipeMtx_);
            pipeProduced_ = i + 1;
            pipeCv_.notify_all();
        }
    });

    // Consumer: the replay stage, in index order on the caller.
    for (std::size_t i = 0; i < n; ++i) {
        bool stop = false;
        {
            UniqueLock lk(pipeMtx_);
            while (pipeProduced_ <= i && !pipeError_)
                pipeCv_.wait(lk);
            stop = pipeError_ != nullptr;
        }
        if (stop)
            break;
        try {
            consume(i);
        } catch (...) {
            UniqueLock lk(pipeMtx_);
            if (!pipeError_)
                pipeError_ = std::current_exception();
            pipeCv_.notify_all();
            break;
        }
        UniqueLock lk(pipeMtx_);
        pipeConsumed_ = i + 1;
        pipeCv_.notify_all();
    }
    producer.join();

    std::exception_ptr err;
    {
        MutexLock lk(pipeMtx_);
        err = pipeError_;
        pipeError_ = nullptr;
    }
    {
        MutexLock lk(mtx_);
        batchOpen_ = false;
    }
    stats::GlobalCounters::instance().add("executor.pipelines");
    stats::GlobalCounters::instance().add("executor.pipelineTasks", n);
    if (err)
        std::rethrow_exception(err);
}

} // namespace sim
} // namespace tlsim
