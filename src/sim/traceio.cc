#include "sim/traceio.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "base/log.h"
#include "base/narrow.h"
#include "core/site.h"
#include "sim/varint.h"

namespace tlsim {
namespace sim {

namespace {

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        panic("trace file truncated");
    return v;
}

/** Bulk read (one stream call per column block); panics like get<>. */
void
getBytes(std::istream &is, void *dst, std::size_t bytes)
{
    is.read(static_cast<char *>(dst),
            static_cast<std::streamsize>(bytes));
    if (bytes != 0 && !is)
        panic("trace file truncated");
}

// ----- v4 columnar epoch encoding ------------------------------------
//
// Per epoch the record fields are stored as separate streams (all ops,
// then all sizes, ...) with the 64-bit addr column zigzag-varint coded
// as deltas from the previous record's addr. Heap addresses in a
// transaction are near-sequential, so most deltas fit in 1-2 bytes;
// the column shrinks from 8 bytes to ~1.3 per record.
//
// The decode side works in blocks of varint::kBlock records: each
// fixed-width column is pulled with one stream read per block and
// scattered from a small SoA scratch buffer, and the varint address
// column goes through varint::decodeBlock over a read-ahead buffer
// (the branchless batch decoder). The stream is repositioned after
// the column so read-ahead never leaks into the next field.

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        put<std::uint8_t>(os, truncateNarrow<std::uint8_t>(v | 0x80));
        v >>= 7;
    }
    put<std::uint8_t>(os, checkedNarrow<std::uint8_t>(v));
}

/** Report a malformed varint (shared by both decode paths). */
bool
rejectVarint(varint::Status st)
{
    if (st == varint::Status::TooLong)
        inform("trace file rejected: varint longer than 10 bytes");
    else
        inform("trace file rejected: varint payload exceeds 64 bits");
    return false;
}

/**
 * Decode one varint into `*out`; false (after inform) if the encoding
 * is malformed. The last (10th) byte may only contribute the single
 * remaining bit 63 — a naive decoder would shift the full 7-bit
 * payload and silently discard the six bits past the top of the word.
 */
bool
getVarint(std::istream &is, std::uint64_t *out)
{
    std::array<std::uint8_t, varint::kMaxBytes> buf;
    std::size_t have = 0;
    for (;;) {
        std::size_t used = 0;
        varint::Status st =
            varint::decodeOne(buf.data(), have, out, &used);
        if (st == varint::Status::Ok)
            return true;
        if (st != varint::Status::NeedMore)
            return rejectVarint(st);
        buf[have++] = get<std::uint8_t>(is);
    }
}

/**
 * Decode the epoch's address column: `n` zigzag varint deltas,
 * accumulated into `recs[i].addr`. Batch-decodes in blocks of
 * varint::kBlock over a read-ahead buffer when the stream is seekable
 * (unused read-ahead is seeked back); falls back to the one-record
 * stream decoder otherwise. False (after inform) on malformed input;
 * panics on truncation like every other trace read.
 */
bool
getAddrColumn(std::istream &is, std::size_t n, TraceRecord *recs)
{
    Addr prev = 0;
    if (n == 0)
        return true;
    if (is.tellg() == std::istream::pos_type(-1)) {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t z = 0;
            if (!getVarint(is, &z))
                return false;
            prev += static_cast<std::uint64_t>(varint::unzigzag(z));
            recs[i].addr = prev;
        }
        return true;
    }

    std::vector<std::uint8_t> buf(std::size_t{64} << 10);
    std::size_t len = 0, pos = 0;
    std::array<std::uint64_t, varint::kBlock> z;
    std::size_t done = 0;
    while (done < n) {
        std::size_t want =
            std::min<std::size_t>(varint::kBlock, n - done);
        std::size_t decoded = 0, used = 0;
        varint::Status st = varint::decodeBlock(
            buf.data() + pos, len - pos, want, z.data(), &decoded,
            &used);
        pos += used;
        for (std::size_t i = 0; i < decoded; ++i) {
            prev += static_cast<std::uint64_t>(varint::unzigzag(z[i]));
            recs[done + i].addr = prev;
        }
        done += decoded;
        if (st == varint::Status::Ok)
            continue;
        if (st != varint::Status::NeedMore)
            return rejectVarint(st);
        // Refill: keep the partial varint's bytes at the front.
        std::memmove(buf.data(), buf.data() + pos, len - pos);
        len -= pos;
        pos = 0;
        is.read(reinterpret_cast<char *>(buf.data()) + len,
                static_cast<std::streamsize>(buf.size() - len));
        std::size_t got = static_cast<std::size_t>(is.gcount());
        if (got == 0)
            panic("trace file truncated");
        len += got;
    }
    // Return the unconsumed read-ahead so the stream sits exactly at
    // the end of the column (clear a possible eofbit first; seekg on
    // a failed stream would be a no-op).
    is.clear();
    is.seekg(-static_cast<std::streamoff>(len - pos), std::ios::cur);
    if (!is)
        panic("trace file: cannot rewind read-ahead");
    return true;
}

void
putEpoch(std::ostream &os, const EpochTrace &e)
{
    const std::size_t n = e.records.size();
    put<std::uint64_t>(os, n);
    for (const TraceRecord &r : e.records)
        put<std::uint8_t>(os, checkedNarrow<std::uint8_t>(
                                  static_cast<unsigned>(r.op)));
    for (const TraceRecord &r : e.records)
        put<std::uint8_t>(os, r.size);
    for (const TraceRecord &r : e.records)
        put<std::uint16_t>(os, r.aux);
    for (const TraceRecord &r : e.records)
        put<std::uint32_t>(os, r.pc);
    Addr prev = 0;
    for (const TraceRecord &r : e.records) {
        // The delta wraps modulo 2^64 by design: the decoder's
        // matching unsigned addition reconstructs the exact address.
        std::uint64_t delta = r.addr - prev;
        putVarint(os, varint::zigzag(static_cast<std::int64_t>(delta)));
        prev = r.addr;
    }
    put<std::uint64_t>(os, e.instCount);
    put<std::uint64_t>(os, e.specInstCount);
    put<std::uint64_t>(os, e.escapeSpans.size());
    for (auto [b, en] : e.escapeSpans) {
        put<std::uint32_t>(os, b);
        put<std::uint32_t>(os, en);
    }
}

/** Read one epoch; false (after inform) if structurally malformed. */
bool
getEpoch(std::istream &is, EpochTrace *out)
{
    EpochTrace e;
    auto n = get<std::uint64_t>(is);
    if (n > (std::uint64_t{1} << 32)) {
        inform("trace file rejected: %llu records in one epoch",
               static_cast<unsigned long long>(n));
        return false;
    }
    e.records.resize(n);
    TraceRecord *recs = e.records.data();
    constexpr std::size_t B = varint::kBlock;
    const std::uint8_t max_op = checkedNarrow<std::uint8_t>(
        static_cast<unsigned>(TraceOp::EscapeEnd));
    std::array<std::uint8_t, B> col8;
    for (std::size_t base = 0; base < n; base += B) {
        std::size_t blk = std::min<std::size_t>(B, n - base);
        getBytes(is, col8.data(), blk);
        for (std::size_t i = 0; i < blk; ++i) {
            if (col8[i] > max_op) {
                inform("trace file rejected: bad opcode %u", col8[i]);
                return false;
            }
            recs[base + i].op = static_cast<TraceOp>(col8[i]);
        }
    }
    for (std::size_t base = 0; base < n; base += B) {
        std::size_t blk = std::min<std::size_t>(B, n - base);
        getBytes(is, col8.data(), blk);
        for (std::size_t i = 0; i < blk; ++i) {
            TraceRecord &r = recs[base + i];
            r.size = col8[i];
            if ((r.op == TraceOp::Load || r.op == TraceOp::Store) &&
                (r.size == 0 || r.size > 128)) {
                inform("trace file rejected: access size %u", r.size);
                return false;
            }
        }
    }
    std::array<std::uint16_t, B> col16;
    for (std::size_t base = 0; base < n; base += B) {
        std::size_t blk = std::min<std::size_t>(B, n - base);
        getBytes(is, col16.data(), blk * 2);
        for (std::size_t i = 0; i < blk; ++i)
            recs[base + i].aux = col16[i];
    }
    std::array<std::uint32_t, B> col32;
    for (std::size_t base = 0; base < n; base += B) {
        std::size_t blk = std::min<std::size_t>(B, n - base);
        getBytes(is, col32.data(), blk * 4);
        for (std::size_t i = 0; i < blk; ++i)
            recs[base + i].pc = col32[i];
    }
    if (!getAddrColumn(is, n, recs))
        return false;
    e.instCount = get<std::uint64_t>(is);
    e.specInstCount = get<std::uint64_t>(is);
    auto spans = get<std::uint64_t>(is);
    if (spans > n) {
        inform("trace file rejected: %llu escape spans for %llu records",
               static_cast<unsigned long long>(spans),
               static_cast<unsigned long long>(n));
        return false;
    }
    std::uint64_t prev_end = 0;
    for (std::uint64_t i = 0; i < spans; ++i) {
        auto b = get<std::uint32_t>(is);
        auto en = get<std::uint32_t>(is);
        if (b > en || en >= n || (i > 0 && b <= prev_end)) {
            inform("trace file rejected: escape span [%u,%u] unordered "
                   "or out of bounds (%llu records)",
                   b, en, static_cast<unsigned long long>(n));
            return false;
        }
        if (e.records[b].op != TraceOp::EscapeBegin ||
            e.records[en].op != TraceOp::EscapeEnd) {
            inform("trace file rejected: escape span [%u,%u] not "
                   "anchored on EscapeBegin/EscapeEnd",
                   b, en);
            return false;
        }
        prev_end = en;
        e.escapeSpans.emplace_back(b, en);
    }
    *out = std::move(e);
    return true;
}

} // namespace

void
saveTrace(std::ostream &os, const WorkloadTrace &w)
{
    put<std::uint32_t>(os, kTraceMagic);
    put<std::uint32_t>(os, kTraceVersion);

    // Site-name table: the writer's full registry, in PC order.
    const auto &names = SiteRegistry::instance().allNames();
    put<std::uint64_t>(os, names.size());
    for (const std::string &n : names) {
        put<std::uint32_t>(os, checkedNarrow<std::uint32_t>(n.size()));
        os.write(n.data(), static_cast<std::streamsize>(n.size()));
    }

    put<std::uint64_t>(os, w.txns.size());
    for (const TransactionTrace &txn : w.txns) {
        put<std::uint64_t>(os, txn.sections.size());
        for (const TraceSection &sec : txn.sections) {
            put<std::uint8_t>(os, sec.parallel ? 1 : 0);
            put<std::uint64_t>(os, sec.epochs.size());
            for (const EpochTrace &e : sec.epochs)
                putEpoch(os, e);
        }
    }
}

bool
loadTrace(std::istream &is, WorkloadTrace *out)
{
    std::uint32_t magic = 0, version = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is || magic != kTraceMagic || version != kTraceVersion)
        return false;

    // Rebuild the writer's site table and map its PCs into this
    // process's registry (indices may differ).
    auto &reg = SiteRegistry::instance();
    std::unordered_map<Pc, Pc> remap;
    auto site_count = get<std::uint64_t>(is);
    if (site_count > 1'000'000) {
        inform("trace file rejected: %llu sites",
               static_cast<unsigned long long>(site_count));
        return false;
    }
    for (std::uint64_t i = 0; i < site_count; ++i) {
        auto len = get<std::uint32_t>(is);
        if (len > 4096) {
            inform("trace file rejected: site name of %u bytes", len);
            return false;
        }
        std::string name(len, '\0');
        is.read(name.data(), len);
        if (!is)
            panic("trace file truncated in site table");
        Pc writer_pc = SiteRegistry::pcOfIndex(i);
        Pc local_pc = reg.intern(name);
        if (writer_pc != local_pc)
            remap.emplace(writer_pc, local_pc);
    }

    WorkloadTrace w;
    auto txns = get<std::uint64_t>(is);
    for (std::uint64_t t = 0; t < txns; ++t) {
        TransactionTrace txn;
        auto secs = get<std::uint64_t>(is);
        for (std::uint64_t s = 0; s < secs; ++s) {
            TraceSection sec;
            sec.parallel = get<std::uint8_t>(is) != 0;
            auto epochs = get<std::uint64_t>(is);
            for (std::uint64_t e = 0; e < epochs; ++e) {
                EpochTrace et;
                if (!getEpoch(is, &et))
                    return false;
                if (!remap.empty()) {
                    for (TraceRecord &r : et.records) {
                        auto it = remap.find(r.pc);
                        if (it != remap.end())
                            r.pc = it->second;
                    }
                }
                sec.epochs.push_back(std::move(et));
            }
            txn.sections.push_back(std::move(sec));
        }
        w.txns.push_back(std::move(txn));
    }
    *out = std::move(w);
    return true;
}

void
saveTraceFile(const std::string &path, const WorkloadTrace &w)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot write trace file %s", path.c_str());
    saveTrace(os, w);
    if (!os)
        fatal("error writing trace file %s", path.c_str());
}

bool
loadTraceFile(const std::string &path, WorkloadTrace *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot read trace file %s", path.c_str());
    return loadTrace(is, out);
}

} // namespace sim
} // namespace tlsim
