#include "sim/traceio.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "base/log.h"
#include "core/site.h"

namespace tlsim {
namespace sim {

namespace {

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        panic("trace file truncated");
    return v;
}

void
putEpoch(std::ostream &os, const EpochTrace &e)
{
    put<std::uint64_t>(os, e.records.size());
    os.write(reinterpret_cast<const char *>(e.records.data()),
             static_cast<std::streamsize>(e.records.size() *
                                          sizeof(TraceRecord)));
    put<std::uint64_t>(os, e.instCount);
    put<std::uint64_t>(os, e.specInstCount);
    put<std::uint64_t>(os, e.escapeSpans.size());
    for (auto [b, en] : e.escapeSpans) {
        put<std::uint32_t>(os, b);
        put<std::uint32_t>(os, en);
    }
}

EpochTrace
getEpoch(std::istream &is)
{
    EpochTrace e;
    auto n = get<std::uint64_t>(is);
    if (n > (std::uint64_t{1} << 32))
        panic("trace file corrupt: %llu records in one epoch",
              static_cast<unsigned long long>(n));
    e.records.resize(n);
    is.read(reinterpret_cast<char *>(e.records.data()),
            static_cast<std::streamsize>(n * sizeof(TraceRecord)));
    if (!is)
        panic("trace file truncated in record block");
    e.instCount = get<std::uint64_t>(is);
    e.specInstCount = get<std::uint64_t>(is);
    auto spans = get<std::uint64_t>(is);
    for (std::uint64_t i = 0; i < spans; ++i) {
        auto b = get<std::uint32_t>(is);
        auto en = get<std::uint32_t>(is);
        e.escapeSpans.emplace_back(b, en);
    }
    return e;
}

} // namespace

void
saveTrace(std::ostream &os, const WorkloadTrace &w)
{
    put<std::uint32_t>(os, kTraceMagic);
    put<std::uint32_t>(os, kTraceVersion);

    // Site-name table: the writer's full registry, in PC order.
    const auto &names = SiteRegistry::instance().allNames();
    put<std::uint64_t>(os, names.size());
    for (const std::string &n : names) {
        put<std::uint32_t>(os, static_cast<std::uint32_t>(n.size()));
        os.write(n.data(), static_cast<std::streamsize>(n.size()));
    }

    put<std::uint64_t>(os, w.txns.size());
    for (const TransactionTrace &txn : w.txns) {
        put<std::uint64_t>(os, txn.sections.size());
        for (const TraceSection &sec : txn.sections) {
            put<std::uint8_t>(os, sec.parallel ? 1 : 0);
            put<std::uint64_t>(os, sec.epochs.size());
            for (const EpochTrace &e : sec.epochs)
                putEpoch(os, e);
        }
    }
}

bool
loadTrace(std::istream &is, WorkloadTrace *out)
{
    std::uint32_t magic = 0, version = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is || magic != kTraceMagic || version != kTraceVersion)
        return false;

    // Rebuild the writer's site table and map its PCs into this
    // process's registry (indices may differ).
    auto &reg = SiteRegistry::instance();
    std::unordered_map<Pc, Pc> remap;
    auto site_count = get<std::uint64_t>(is);
    if (site_count > 1'000'000)
        panic("trace file corrupt: %llu sites",
              static_cast<unsigned long long>(site_count));
    for (std::uint64_t i = 0; i < site_count; ++i) {
        auto len = get<std::uint32_t>(is);
        if (len > 4096)
            panic("trace file corrupt: site name of %u bytes", len);
        std::string name(len, '\0');
        is.read(name.data(), len);
        if (!is)
            panic("trace file truncated in site table");
        Pc writer_pc = SiteRegistry::pcOfIndex(i);
        Pc local_pc = reg.intern(name);
        if (writer_pc != local_pc)
            remap.emplace(writer_pc, local_pc);
    }

    WorkloadTrace w;
    auto txns = get<std::uint64_t>(is);
    for (std::uint64_t t = 0; t < txns; ++t) {
        TransactionTrace txn;
        auto secs = get<std::uint64_t>(is);
        for (std::uint64_t s = 0; s < secs; ++s) {
            TraceSection sec;
            sec.parallel = get<std::uint8_t>(is) != 0;
            auto epochs = get<std::uint64_t>(is);
            for (std::uint64_t e = 0; e < epochs; ++e) {
                EpochTrace et = getEpoch(is);
                if (!remap.empty()) {
                    for (TraceRecord &r : et.records) {
                        auto it = remap.find(r.pc);
                        if (it != remap.end())
                            r.pc = it->second;
                    }
                }
                sec.epochs.push_back(std::move(et));
            }
            txn.sections.push_back(std::move(sec));
        }
        w.txns.push_back(std::move(txn));
    }
    *out = std::move(w);
    return true;
}

void
saveTraceFile(const std::string &path, const WorkloadTrace &w)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot write trace file %s", path.c_str());
    saveTrace(os, w);
    if (!os)
        fatal("error writing trace file %s", path.c_str());
}

bool
loadTraceFile(const std::string &path, WorkloadTrace *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot read trace file %s", path.c_str());
    return loadTrace(is, out);
}

} // namespace sim
} // namespace tlsim
