/**
 * @file
 * Experiment harness: glues the TPC-C capture driver to the TLS
 * machine and reproduces the paper's evaluation artifacts —
 *
 *  - Figure 5: the five bars (SEQUENTIAL, TLS-SEQ, NO SUB-THREAD,
 *    BASELINE, NO SPECULATION) per benchmark, with normalized cycle
 *    breakdowns;
 *  - Figure 6: the sub-thread count x spacing sweep;
 *  - Table 2: benchmark statistics from the captured traces and the
 *    sequential run.
 */

#ifndef SIM_EXPERIMENT_H
#define SIM_EXPERIMENT_H

#include <memory>
#include <string>
#include <vector>

#include "base/config.h"
#include "core/machine.h"
#include "core/trace.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace sim {

class SimExecutor;

/** The Figure 5 configurations. */
enum class Bar {
    Sequential,
    TlsSeq,
    NoSubthread,
    Baseline,
    NoSpeculation,
};

const char *barName(Bar b);
const std::vector<Bar> &allBars();

/** The two captures a benchmark needs. */
struct BenchmarkTraces
{
    WorkloadTrace original; ///< untuned DB, no markers (SEQUENTIAL)
    WorkloadTrace tls;      ///< tuned DB + markers (all other bars)

    /**
     * Trace pre-analyses, shared read-only by every simulation point
     * that replays the corresponding workload (the analysis depends
     * only on the trace and the line size, not on any TLS knob).
     * Null until buildIndexes() — runBar() and the machine tolerate
     * that by building a private index, but then the work repeats per
     * run instead of once per capture.
     */
    std::shared_ptr<const TraceIndex> originalIndex;
    std::shared_ptr<const TraceIndex> tlsIndex;

    /** Analyse both workloads (no-op if already built for this
     *  object; must be re-run if the traces are moved/reassigned). */
    void buildIndexes(unsigned line_bytes);
};

/** Experiment-wide knobs. */
struct ExperimentConfig
{
    tpcc::TpccConfig scale;
    unsigned txns = 12;       ///< captured transactions per benchmark
    unsigned warmupTxns = 2;  ///< excluded from measured statistics
    std::uint64_t inputSeed = 42;
    std::uint64_t loadSeed = 7;
    MachineConfig machine;    ///< baseline machine (Table 1)

    /** A scaled-down preset for tests. */
    static ExperimentConfig testPreset();
};

/** Capture both traces for a benchmark. */
BenchmarkTraces captureTraces(tpcc::TxnType type,
                              const ExperimentConfig &cfg);

/** Run one Figure 5 bar over previously captured traces. */
RunResult runBar(Bar bar, const BenchmarkTraces &traces,
                 const ExperimentConfig &cfg);

/** One benchmark's Figure 5 column set. */
struct Figure5Row
{
    tpcc::TxnType type;
    std::vector<std::pair<Bar, RunResult>> bars;

    const RunResult &result(Bar b) const;
    /** makespan(SEQUENTIAL) / makespan(b). */
    double speedup(Bar b) const;
};

Figure5Row runFigure5(tpcc::TxnType type, const ExperimentConfig &cfg);

/**
 * Parallel variant over previously captured traces: the five bars fan
 * out across `ex`. Bit-identical to the serial runFigure5 (each bar is
 * an independent, self-contained machine run).
 */
Figure5Row runFigure5(tpcc::TxnType type, const ExperimentConfig &cfg,
                      const BenchmarkTraces &traces, SimExecutor &ex);

/** Figure 6: one (sub-thread count, spacing) measurement. */
struct SweepPoint
{
    unsigned subthreads;
    std::uint64_t spacing;
    RunResult run;
};

std::vector<SweepPoint>
runFigure6(tpcc::TxnType type, const ExperimentConfig &cfg,
           const std::vector<unsigned> &counts,
           const std::vector<std::uint64_t> &spacings);

/**
 * Parallel variant over previously captured traces: all
 * (count, spacing) points fan out across `ex`. Results are placed by
 * index, so the output vector is bit-identical to the serial sweep no
 * matter how the points are scheduled.
 */
std::vector<SweepPoint>
runFigure6(tpcc::TxnType type, const ExperimentConfig &cfg,
           const std::vector<unsigned> &counts,
           const std::vector<std::uint64_t> &spacings,
           const BenchmarkTraces &traces, SimExecutor &ex);

/** Table 2: per-benchmark workload statistics. */
struct Table2Row
{
    tpcc::TxnType type;
    double execMcycles;      ///< sequential execution time (measured)
    double coverage;         ///< fraction of insts in parallel loops
    double threadSizeInsts;  ///< mean dynamic insts per epoch
    double specInstsPerThread;
    double threadsPerTxn;    ///< mean epochs per parallel loop
    std::uint64_t epochs;
};

Table2Row table2Row(tpcc::TxnType type, const ExperimentConfig &cfg);

/** Table 2 over previously captured traces (no re-capture). */
Table2Row table2Row(tpcc::TxnType type, const ExperimentConfig &cfg,
                    const BenchmarkTraces &traces);

} // namespace sim
} // namespace tlsim

#endif // SIM_EXPERIMENT_H
