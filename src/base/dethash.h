/**
 * @file
 * Canonical result hashing for the determinism probe (--det-probe).
 *
 * The repo's load-bearing guarantee is byte-identical output under
 * --jobs=N, pipelining, and SIMD dispatch. The probe turns that from
 * "observed on a few golden benches" into a per-stage digest: each
 * bench hashes its canonical result stream after every stage
 * (capture, replay, aggregate, serialize) and emits the digests in
 * the `determinism` bench-JSON block, which the `det` ctest label
 * compares across --jobs=1/N, --force-scalar and pipelined runs.
 *
 * Encodings are fixed, not host-dependent: integers hash as 8
 * little-endian bytes, doubles as their IEEE-754 bit pattern with
 * -0.0 canonicalized to +0.0 and every NaN to one quiet NaN, so a
 * digest never depends on struct padding, endianness of in-memory
 * iteration, or printf formatting.
 */

#ifndef BASE_DETHASH_H
#define BASE_DETHASH_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tlsim {
namespace det {

/** FNV-1a 64-bit over canonically encoded values. */
class Hash
{
  public:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= kPrime;
        }
    }

    void
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(b, 8);
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    f64(double v)
    {
        if (v == 0.0)
            v = 0.0; // -0.0 == 0.0: canonicalize the sign away
        if (v != v)
            v = __builtin_nan(""); // one canonical quiet NaN
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v, "IEEE-754 double");
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size()); // length prefix: "ab","c" != "a","bc"
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

    /** 16 lowercase hex digits, the JSON/stdout spelling. */
    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i)
            out[i] = digits[(h_ >> (60 - 4 * i)) & 0xF];
        return out;
    }

  private:
    std::uint64_t h_ = kOffset;
};

/**
 * Order-insensitive digest combiner for shard merges: commutative and
 * associative over a multiset of element digests, so any merge order
 * (work-stealing completion order, shard arrival order) yields the
 * same value. Each element is finalized through a splitmix64-style
 * mixer before the modular add, so the combine is not vulnerable to
 * the trivial x ^ x = 0 cancellation a plain XOR fold would have.
 *
 * Declared in tools/detmergers.txt; tests/det/merge_perm_test.cc
 * holds its generated permutation property test.
 */
inline std::uint64_t
mixForUnordered(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

inline std::uint64_t
combineUnordered(std::uint64_t acc, std::uint64_t element)
{
    return acc + mixForUnordered(element); // modular add: assoc + comm
}

/**
 * Per-stage digest collector behind --det-probe.
 *
 * Stages are recorded in call order with their names, each digest
 * chained over the canonical (index-ordered) result stream the bench
 * just produced. jobsInvariant() additionally self-checks the
 * order-insensitivity claim of combineUnordered on the real per-item
 * digests of every stage recorded through stageItems(): the forward
 * and reverse folds must agree, or the flag (and with it the
 * `determinism` block check and the `det` ctest gate) goes false.
 */
class Probe
{
  public:
    explicit Probe(bool enabled = false) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** Record one stage's digest (chains if the stage repeats). */
    void
    stage(const std::string &name, std::uint64_t digest)
    {
        if (!enabled_)
            return;
        for (auto &[n, h] : stages_) {
            if (n == name) {
                Hash chain;
                chain.u64(h);
                chain.u64(digest);
                h = chain.value();
                return;
            }
        }
        stages_.emplace_back(name, digest);
    }

    /**
     * Record a stage from per-item digests in canonical index order:
     * the stage digest is the order-sensitive chain (so a permuted
     * result stream is caught), while the commutative fold is checked
     * forward vs. reverse to keep combineUnordered honest.
     */
    void
    stageItems(const std::string &name,
               const std::vector<std::uint64_t> &items)
    {
        if (!enabled_)
            return;
        Hash chain;
        chain.u64(items.size());
        for (std::uint64_t h : items)
            chain.u64(h);
        stage(name, chain.value());

        std::uint64_t fwd = 0, rev = 0;
        for (std::size_t i = 0; i < items.size(); ++i) {
            fwd = combineUnordered(fwd, items[i]);
            rev = combineUnordered(rev, items[items.size() - 1 - i]);
        }
        if (fwd != rev)
            invariantOk_ = false;
    }

    bool jobsInvariant() const { return invariantOk_; }

    const std::vector<std::pair<std::string, std::uint64_t>> &
    stages() const
    {
        return stages_;
    }

  private:
    bool enabled_;
    bool invariantOk_ = true;
    std::vector<std::pair<std::string, std::uint64_t>> stages_;
};

} // namespace det
} // namespace tlsim

#endif // BASE_DETHASH_H
