/**
 * @file
 * Bit-parallel / SIMD kernels for the replay hot loop, with runtime
 * CPU dispatch and portable scalar fallbacks.
 *
 * Build-time gate: the TLSIM_SIMD CMake option (default ON) defines
 * TLSIM_SIMD_X86=1 on x86-64. With the option off — or on any other
 * architecture, or when the CPU lacks AVX2 at runtime — every entry
 * point runs the scalar implementation. The two implementations are
 * bit-identical by contract; tests/base/simd_test.cc compares them
 * exhaustively and the golden-equivalence suite compares whole
 * simulations run both ways.
 *
 * Dispatch is one branch on a namespace-scope bool (no function
 * pointers, no per-call cpuid): detection happens once at static
 * initialization, and setForceScalar() lets tests and the sanitizer
 * `simd-off` leg pin the scalar path in an AVX2 build.
 */

#ifndef BASE_SIMD_H
#define BASE_SIMD_H

#include <cstdint>

#include "base/hotpath.h"

#if defined(__x86_64__) && defined(TLSIM_SIMD) && TLSIM_SIMD
#define TLSIM_SIMD_X86 1
#else
#define TLSIM_SIMD_X86 0
#endif

namespace tlsim {
namespace simd {

/** True when the AVX2 kernels are compiled in AND the CPU has AVX2
 *  AND no one forced the scalar path. Read per call site; mutated
 *  only by setForceScalar. */
extern bool gActive;

/** Was AVX2 detected at startup (regardless of forcing)? */
bool available();

/** Pin the scalar implementations (tests, `simd-off` sanitizer leg).
 *  Passing false restores the detected capability. */
void setForceScalar(bool force);

/** Human-readable name of the active implementation ("avx2"/"scalar");
 *  surfaced in the bench JSON replay block. */
const char *activeName();

// --- Kernels ---------------------------------------------------------
//
// Each kernel has a scalar reference implementation (inline below) and
// an AVX2 variant (simd.cc, [[gnu::target("avx2")]]); the unprefixed
// name dispatches. The scalar forms are the semantic spec.

/**
 * Bitmask of indices i in [0, n) with keys[i] == key. n <= 64; the
 * caller typically ANDs the result with a validity mask. This is the
 * victim-cache line scan and the flat-table group probe.
 */
inline std::uint64_t
matchMask64Scalar(const std::uint64_t *keys, unsigned n,
                  std::uint64_t key)
{
    std::uint64_t m = 0;
    for (unsigned i = 0; i < n; ++i)
        m |= static_cast<std::uint64_t>(keys[i] == key) << i;
    return m;
}

/**
 * OR of vals[c] over every set bit c of `owners`. For every set bit c,
 * the full 8-aligned group of lanes containing c must be readable:
 * vals needs ceil((highest set bit + 1) / 8) * 8 elements (the AVX2
 * form loads whole 8-lane groups, but only groups with owner bits).
 * This is the covered-load SM merge: the union of a thread's own
 * speculative store masks.
 */
inline std::uint32_t
maskedUnion64Scalar(const std::uint32_t *vals, std::uint64_t owners)
{
    std::uint32_t acc = 0;
    while (owners) {
        unsigned c = static_cast<unsigned>(__builtin_ctzll(owners));
        owners &= owners - 1;
        acc |= vals[c];
    }
    return acc;
}

#if TLSIM_SIMD_X86
std::uint64_t matchMask64Avx2(const std::uint64_t *keys, unsigned n,
                              std::uint64_t key);
std::uint32_t maskedUnion64Avx2(const std::uint32_t *vals,
                                std::uint64_t owners);
#endif

TLSIM_HOT inline std::uint64_t
matchMask64(const std::uint64_t *keys, unsigned n, std::uint64_t key)
{
#if TLSIM_SIMD_X86
    if (gActive)
        return matchMask64Avx2(keys, n, key);
#endif
    return matchMask64Scalar(keys, n, key);
}

TLSIM_HOT inline std::uint32_t
maskedUnion64(const std::uint32_t *vals, std::uint64_t owners)
{
#if TLSIM_SIMD_X86
    // The vector form pays off once several owners contribute; the
    // overwhelmingly common 0/1/2-owner merges are faster as two ORs.
    if (gActive && __builtin_popcountll(owners) > 3)
        return maskedUnion64Avx2(vals, owners);
#endif
    return maskedUnion64Scalar(vals, owners);
}

} // namespace simd
} // namespace tlsim

#endif // BASE_SIMD_H
