/**
 * @file
 * Annotated synchronization primitives.
 *
 * Thin wrappers over std::mutex / std::condition_variable carrying the
 * thread-safety capability attributes from base/threadannot.h. The
 * standard-library types cannot be annotated retroactively, so code
 * that wants `-Wthread-safety` coverage uses these instead; they
 * compile to the identical std calls (everything is inline and the
 * attributes vanish on GCC).
 *
 * Condition-variable waits are written as explicit predicate loops
 *
 *     UniqueLock lk(mtx_);
 *     while (!ready_)
 *         cv_.wait(lk);
 *
 * rather than the lambda-predicate overload: the analysis reasons
 * about guarded reads in straight-line code under a held capability,
 * while a lambda body gives it (and a reviewer) an ambiguous locking
 * context.
 */

#ifndef BASE_SYNC_H
#define BASE_SYNC_H

#include <condition_variable>
#include <mutex>

#include "base/threadannot.h"

namespace tlsim {

class CondVar;

/** An annotated std::mutex: the unit of GUARDED_BY/REQUIRES. */
class TLSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TLSIM_ACQUIRE() { m_.lock(); }
    void unlock() TLSIM_RELEASE() { m_.unlock(); }
    bool try_lock() TLSIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class UniqueLock;
    std::mutex m_;
};

/** RAII lock for the common locked-scope (std::lock_guard shape). */
class TLSIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) TLSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() TLSIM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * RAII lock usable with CondVar (std::unique_lock shape). Always held
 * for its full scope from the analysis' point of view — CondVar::wait
 * releases and reacquires internally, which is invisible to (and
 * sound for) the capability tracking: every observable program point
 * inside the scope holds the lock.
 */
class TLSIM_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) TLSIM_ACQUIRE(mu) : lk_(mu.m_) {}
    ~UniqueLock() TLSIM_RELEASE() = default;

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/** Condition variable paired with UniqueLock. */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Caller must hold `lk` and re-check its predicate in a loop. */
    void wait(UniqueLock &lk) { cv_.wait(lk.lk_); }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace tlsim

#endif // BASE_SYNC_H
