/**
 * @file
 * Range-checked integral narrowing.
 *
 * The trace decode paths (sim/traceio, core/traceindex) consume
 * untrusted bytes, and a silent `static_cast` to a smaller type is
 * exactly the bug class that turns a corrupt file into corrupt
 * simulation state. Every narrowing conversion there goes through one
 * of these helpers — enforced by tlslint check T3, which flags any raw
 * fixed-width narrowing static_cast in those files:
 *
 *   checkedNarrow<T>(v)   value must be representable in T; panics
 *                         otherwise (decode-side contract violations
 *                         are simulator bugs or rejected-file bugs,
 *                         never silently absorbed);
 *   truncateNarrow<T>(v)  keeps the low bits by design (varint
 *                         payload splitting); the name records the
 *                         intent a bare cast leaves ambiguous.
 */

#ifndef BASE_NARROW_H
#define BASE_NARROW_H

#include <type_traits>
#include <utility>

#include "base/log.h"

namespace tlsim {

/** Narrow `v` to To, panicking if the value does not fit. */
template <typename To, typename From>
constexpr To
checkedNarrow(From v)
{
    static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                  "checkedNarrow is for integral types");
    if (!std::in_range<To>(v))
        panic("checkedNarrow: value %lld does not fit the target type",
              static_cast<long long>(v));
    return static_cast<To>(v);
}

/** Narrow `v` to To keeping the low bits (wrap is intended). */
template <typename To, typename From>
constexpr To
truncateNarrow(From v)
{
    static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                  "truncateNarrow is for integral types");
    return static_cast<To>(v);
}

} // namespace tlsim

#endif // BASE_NARROW_H
