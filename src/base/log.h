/**
 * @file
 * Error and status reporting, following the gem5 discipline:
 *
 *  - panic():  an internal simulator bug — something that must never
 *              happen regardless of user input. Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments). Exits with 1.
 *  - warn():   something is suspicious but the run continues.
 *  - inform(): plain status output.
 */

#ifndef BASE_LOG_H
#define BASE_LOG_H

#include <cstdarg>
#include <string>

namespace tlsim {

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Silence/enable inform() output (benches want clean tables). */
void setInformEnabled(bool enabled);

} // namespace tlsim

#endif // BASE_LOG_H
