/**
 * @file
 * Deterministic-ordering helpers, the allowlisted spellings for the
 * tlsdet D1/D3 passes (tools/tlsdet.py):
 *
 *  - OrderedView: materialize a sorted-by-key iteration order over an
 *    unordered associative container. Iterating an unordered_map on a
 *    result path is a D1 violation — the traversal order depends on
 *    bucket count, libstdc++ version and insertion history; wrapping
 *    the loop in OrderedView() states (and pays for) a canonical
 *    order instead.
 *  - canonicalSort: std::sort with a *key projection* instead of a
 *    raw comparator. A hand-written comparator with unspecified ties
 *    (`a.cost > b.cost`) leaves equal-cost elements in
 *    implementation-defined order; a key projection is totally
 *    ordered by construction (extend the key tuple until it is).
 *  - orderedReduce: left-to-right floating-point reduction over
 *    indexable results. Float addition does not associate, so a
 *    completion-order reduction across executor tasks is a D3
 *    violation; reducing the index-ordered slots is the blessed form.
 */

#ifndef BASE_DETORDER_H
#define BASE_DETORDER_H

#include <algorithm>
#include <utility>
#include <vector>

namespace tlsim {
namespace det {

/**
 * Sorted snapshot of an associative container's (key, mapped) pairs.
 * Keys must have a total order (integers, strings — not pointers,
 * which D1 rejects at the declaration). The snapshot copies: use on
 * aggregation/report paths, not per-record hot loops (A3 would flag
 * the allocation there anyway).
 */
template <typename Map>
auto
OrderedView(const Map &m)
{
    using Pair = std::pair<typename Map::key_type,
                           typename Map::mapped_type>;
    std::vector<Pair> out;
    out.reserve(m.size());
    for (const auto &kv : m)
        out.emplace_back(kv.first, kv.second);
    std::sort(out.begin(), out.end(),
              [](const Pair &a, const Pair &b) {
                  return a.first < b.first;
              });
    return out;
}

/** Set flavour: sorted snapshot of an unordered_set's elements. */
template <typename Set>
auto
OrderedKeys(const Set &s)
{
    std::vector<typename Set::key_type> out(s.begin(), s.end());
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Sort by a key projection. `key(elem)` must return a totally
 * ordered value (tuple of scalars); stable, so elements with equal
 * keys — which canonicalSort callers should design away — keep their
 * input order instead of an implementation-defined one.
 */
template <typename Range, typename KeyFn>
void
canonicalSort(Range &range, KeyFn key)
{
    std::stable_sort(range.begin(), range.end(),
                     [&key](const auto &a, const auto &b) {
                         return key(a) < key(b);
                     });
}

/**
 * Left-to-right reduction over index-ordered per-task results. The
 * accumulator visits slots 0..n-1 in order regardless of which
 * executor worker filled which slot, so float accumulation across
 * parallel tasks is reproducible for any job count.
 */
template <typename T, typename Acc, typename Fn>
Acc
orderedReduce(const std::vector<T> &slots, Acc init, Fn step)
{
    Acc acc = std::move(init);
    for (const T &v : slots)
        acc = step(std::move(acc), v);
    return acc;
}

} // namespace det
} // namespace tlsim

#endif // BASE_DETORDER_H
