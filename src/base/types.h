/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef BASE_TYPES_H
#define BASE_TYPES_H

#include <cstdint>

namespace tlsim {

/** A simulated cycle count (global time base of the CMP). */
using Cycle = std::uint64_t;

/** A simulated memory address. Traces carry real host heap addresses. */
using Addr = std::uint64_t;

/** A (synthetic) program counter identifying a static code site. */
using Pc = std::uint32_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** Identifier of a CPU core within the CMP. */
using CpuId = std::uint32_t;

/** Identifier of an epoch (speculative thread) in program order. */
using EpochId = std::uint64_t;

/**
 * A global speculative thread-context identifier. Contexts are the L2's
 * unit of speculative-state tracking: one per (CPU slot, sub-thread).
 */
using ContextId = std::uint32_t;

/** Sentinel for "no context". */
inline constexpr ContextId kNoContext = ~ContextId{0};

/** Sentinel for "no cycle yet" / unbounded time. */
inline constexpr Cycle kCycleMax = ~Cycle{0};

} // namespace tlsim

#endif // BASE_TYPES_H
