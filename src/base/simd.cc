#include "base/simd.h"

#if TLSIM_SIMD_X86
#include <immintrin.h>
#endif

namespace tlsim {
namespace simd {

namespace {

bool
detect()
{
#if TLSIM_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const bool gDetected = detect();

} // namespace

bool gActive = detect();

bool
available()
{
    return gDetected;
}

void
setForceScalar(bool force)
{
    gActive = !force && gDetected;
}

const char *
activeName()
{
    return gActive ? "avx2" : "scalar";
}

#if TLSIM_SIMD_X86

[[gnu::target("avx2")]] std::uint64_t
matchMask64Avx2(const std::uint64_t *keys, unsigned n, std::uint64_t key)
{
    const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint64_t m = 0;
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        __m256i eq = _mm256_cmpeq_epi64(v, k);
        auto mm = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        m |= static_cast<std::uint64_t>(mm) << i;
    }
    for (; i < n; ++i)
        m |= static_cast<std::uint64_t>(keys[i] == key) << i;
    return m;
}

[[gnu::target("avx2")]] std::uint32_t
maskedUnion64Avx2(const std::uint32_t *vals, std::uint64_t owners)
{
    // Expand each 8-bit slice of `owners` into eight 32-bit lane
    // masks, AND with the value lanes, and OR-accumulate. Groups with
    // no owner bits are skipped entirely.
    const __m256i lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64,
                                                128);
    __m256i acc = _mm256_setzero_si256();
    for (unsigned g = 0; g < 8; ++g) {
        unsigned ob = (owners >> (g * 8)) & 0xffu;
        if (!ob)
            continue;
        __m256i ov = _mm256_set1_epi32(static_cast<int>(ob));
        __m256i lane =
            _mm256_cmpeq_epi32(_mm256_and_si256(ov, lane_bits),
                               lane_bits);
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vals + g * 8));
        acc = _mm256_or_si256(acc, _mm256_and_si256(v, lane));
    }
    __m128i lo = _mm256_castsi256_si128(acc);
    __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i o = _mm_or_si128(lo, hi);
    o = _mm_or_si128(o, _mm_srli_si128(o, 8));
    o = _mm_or_si128(o, _mm_srli_si128(o, 4));
    return static_cast<std::uint32_t>(_mm_cvtsi128_si32(o));
}

#endif // TLSIM_SIMD_X86

} // namespace simd
} // namespace tlsim
