/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every experiment in the paper uses a fixed seed "for repeatability";
 * we do the same. This is a SplitMix64-seeded xoshiro256** generator —
 * small, fast, and with none of the libc rand() portability hazards.
 */

#ifndef BASE_RNG_H
#define BASE_RNG_H

#include <cstdint>

#include "base/log.h"

namespace tlsim {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 to fill the state; avoids the all-zero state.
        std::uint64_t x = seed;
        for (auto &w : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Next raw 64 random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        if (lo > hi)
            panic("Rng::uniform: lo %lld > hi %lld",
                  static_cast<long long>(lo), static_cast<long long>(hi));
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        if (span == 0) // full 64-bit range
            return static_cast<std::int64_t>(next());
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniformDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tlsim

#endif // BASE_RNG_H
