/**
 * @file
 * A flat hash set of cache-line numbers with O(1) clear, for the
 * per-thread speculative-version line lists the memory system updates
 * on every speculative store. std::unordered_set allocates a node per
 * element, which puts a malloc/free pair on the replay hot loop (and a
 * pointer chase per probe); this set is two flat arrays that are
 * reused across epochs.
 *
 * Layout: an open-addressed probe table (linear probing, power-of-two
 * capacity, tombstone deletion) mapping each line to its index in a
 * dense insertion-order array, which gives O(live) iteration and
 * cheap swap-remove erasure. clear() bumps a generation stamp instead
 * of touching the table, so the commit/squash "drain and clear"
 * pattern costs only the elements actually drained.
 */

#ifndef BASE_LINESET_H
#define BASE_LINESET_H

#include <cstdint>
#include <vector>

#include "base/poison.h"
#include "base/types.h"

namespace tlsim {

/** Insertion-ordered flat set of line numbers. */
class LineSet
{
  public:
    LineSet() : slots_(kMinCapacity), mask_(kMinCapacity - 1)
    {
        list_.reserve(kMinCapacity); // arena: grows to peak, then flat
    }

    /** Add `line`; returns true if it was not already present. */
    bool
    insert(Addr line)
    {
        if ((occupied_ + 1) * 4 > slots_.size() * 3)
            grow();
        std::size_t idx = hashLine(line) & mask_;
        std::size_t insert_at = kNotFound;
        while (slots_[idx].gen == gen_) {
            const Slot &s = slots_[idx];
            if (s.idx != kTombstone) {
                if (s.line == line)
                    return false;
            } else if (insert_at == kNotFound) {
                insert_at = idx;
            }
            idx = (idx + 1) & mask_;
        }
        if (insert_at == kNotFound) {
            insert_at = idx;
            ++occupied_; // claiming a virgin slot
        }
        slots_[insert_at] =
            Slot{line, gen_, static_cast<std::uint32_t>(list_.size())};
        list_.push_back(line);
        return true;
    }

    /** Remove `line`; returns true if it was present. */
    bool
    erase(Addr line)
    {
        std::size_t idx = findSlot(line);
        if (idx == kNotFound)
            return false;
        std::uint32_t li = slots_[idx].idx;
        slots_[idx].idx = kTombstone;
        if (li + 1 != list_.size()) {
            Addr moved = list_.back();
            list_[li] = moved;
            slots_[findSlot(moved)].idx = li;
        }
        list_.pop_back();
        return true;
    }

    bool contains(Addr line) const { return findSlot(line) != kNotFound; }

    /** unordered_set-compatible membership count (0 or 1). */
    std::size_t count(Addr line) const { return contains(line) ? 1 : 0; }

    bool empty() const { return list_.empty(); }
    std::size_t size() const { return list_.size(); }

    /** Iterate in insertion order (erase may reorder the tail). */
    const Addr *begin() const { return list_.data(); }
    const Addr *end() const { return list_.data() + list_.size(); }

    /** Drop every element, keeping the capacity as an arena. */
    void
    clear()
    {
        list_.clear();
        occupied_ = 0;
        if (++gen_ == 0) {
            // Generation wrap: stale stamps could read as live.
            slots_.assign(slots_.size(), Slot{});
            gen_ = 1;
        }
#if TLSIM_POISON
        // Every slot is dead now; scribble the canary line so a probe
        // that bypasses the generation stamp can only ever match
        // poison, never a stale real line.
        for (Slot &s : slots_)
            s.line = static_cast<Addr>(poison::kLine);
#endif
    }

    /**
     * Test seam: empty the set and jump the generation stamp so the
     * uint32 wraparound path in clear() is reachable without 2^32
     * real clears. Slots are wiped, so no stale stamp can collide
     * with the chosen generation.
     */
    void
    debugSetGeneration(std::uint32_t g)
    {
        list_.clear();
        occupied_ = 0;
        slots_.assign(slots_.size(), Slot{});
        gen_ = g == 0 ? 1 : g;
    }

  private:
    struct Slot
    {
        Addr line = 0;
        std::uint32_t gen = 0; ///< live iff equal to the current gen_
        std::uint32_t idx = 0; ///< dense-array index, or kTombstone
    };

    static constexpr std::size_t kMinCapacity = 64;
    static constexpr std::size_t kNotFound = ~std::size_t{0};
    static constexpr std::uint32_t kTombstone = ~std::uint32_t{0};

    static std::size_t
    hashLine(Addr line)
    {
        // splitmix64 finalizer: line numbers are near-sequential.
        std::uint64_t x = line + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    std::size_t
    findSlot(Addr line) const
    {
        std::size_t idx = hashLine(line) & mask_;
        while (slots_[idx].gen == gen_) {
            const Slot &s = slots_[idx];
            if (s.idx != kTombstone && s.line == line)
                return idx;
            idx = (idx + 1) & mask_;
        }
        return kNotFound;
    }

    void
    grow()
    {
        // Double only if genuinely full; a tombstone-heavy table just
        // gets rehashed in place to flush the graves.
        std::size_t new_cap = list_.size() * 4 > slots_.size()
                                  ? slots_.size() * 2
                                  : slots_.size();
        slots_.assign(new_cap, Slot{});
        mask_ = new_cap - 1;
        gen_ = 1;
        occupied_ = list_.size();
        for (std::uint32_t li = 0; li < list_.size(); ++li) {
            std::size_t idx = hashLine(list_[li]) & mask_;
            while (slots_[idx].gen == gen_)
                idx = (idx + 1) & mask_;
            slots_[idx] = Slot{list_[li], gen_, li};
        }
    }

    std::vector<Slot> slots_;
    std::vector<Addr> list_; ///< live elements, dense
    std::size_t occupied_ = 0; ///< live + tombstone slots
    std::size_t mask_;
    std::uint32_t gen_ = 1; ///< 0 in a slot = never written
};

} // namespace tlsim

#endif // BASE_LINESET_H
