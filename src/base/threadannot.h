/**
 * @file
 * Clang thread-safety analysis annotations.
 *
 * The macros wrap Clang's capability attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
 * parallel subsystems can declare, in the type system, which mutex
 * guards which field and which capabilities a function requires. With
 * `-DTLSIM_THREAD_SAFETY=ON` (CMake option; Clang only) the build runs
 * `-Wthread-safety -Werror=thread-safety`, so a lock-discipline
 * mistake — touching a guarded field without its mutex, releasing a
 * lock twice, calling a REQUIRES function unlocked — fails the build
 * instead of waiting for a lucky schedule under TSan.
 *
 * On GCC (which has no thread-safety analysis) and on Clang without
 * the option, every macro expands to nothing: the annotations are
 * free, always-on documentation.
 *
 * Naming follows the capability-based spelling of the Clang docs,
 * prefixed TLSIM_ to stay out of other libraries' way.
 */

#ifndef BASE_THREADANNOT_H
#define BASE_THREADANNOT_H

#if defined(__clang__) && defined(TLSIM_THREAD_SAFETY)
#define TLSIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TLSIM_THREAD_ANNOTATION__(x)
#endif

/** Marks a type as a capability (e.g. a mutex wrapper). */
#define TLSIM_CAPABILITY(x) TLSIM_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define TLSIM_SCOPED_CAPABILITY TLSIM_THREAD_ANNOTATION__(scoped_lockable)

/** Field may only be read/written while holding `x`. */
#define TLSIM_GUARDED_BY(x) TLSIM_THREAD_ANNOTATION__(guarded_by(x))

/** Pointee may only be read/written while holding `x`. */
#define TLSIM_PT_GUARDED_BY(x) TLSIM_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function acquires the capability and does not release it. */
#define TLSIM_ACQUIRE(...) \
    TLSIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define TLSIM_RELEASE(...) \
    TLSIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function attempts the acquire; first arg is the success value. */
#define TLSIM_TRY_ACQUIRE(...) \
    TLSIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Caller must hold the capability when calling (and keeps it). */
#define TLSIM_REQUIRES(...) \
    TLSIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the callee locks internally;
 *  guards against self-deadlock on non-reentrant mutexes). */
#define TLSIM_EXCLUDES(...) \
    TLSIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Declares a lock-acquisition ordering between two capabilities. */
#define TLSIM_ACQUIRED_BEFORE(...) \
    TLSIM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define TLSIM_ACQUIRED_AFTER(...) \
    TLSIM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/** Runtime assertion that the capability is held (trusted by the
 *  analysis from this point on). */
#define TLSIM_ASSERT_CAPABILITY(x) \
    TLSIM_THREAD_ANNOTATION__(assert_capability(x))

/** Function returns a reference to the named capability. */
#define TLSIM_RETURN_CAPABILITY(x) \
    TLSIM_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch: the function's locking is beyond the analysis. Every
 *  use needs a comment saying why (and shows up in review). */
#define TLSIM_NO_THREAD_SAFETY_ANALYSIS \
    TLSIM_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // BASE_THREADANNOT_H
