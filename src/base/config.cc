#include "base/config.h"

#include "base/addr.h"
#include "base/log.h"

namespace tlsim {

const char *
auditLevelName(AuditLevel level)
{
    switch (level) {
      case AuditLevel::Off: return "off";
      case AuditLevel::Commit: return "commit";
      case AuditLevel::Full: return "full";
    }
    return "?";
}

AuditLevel
parseAuditLevel(const std::string &name)
{
    if (name == "off")
        return AuditLevel::Off;
    if (name == "commit")
        return AuditLevel::Commit;
    if (name == "full")
        return AuditLevel::Full;
    fatal("unknown audit level '%s' (off|commit|full)", name.c_str());
}

void
MachineConfig::validate() const
{
    if (!isPowerOf2(mem.lineBytes) || mem.lineBytes < 8 ||
        mem.lineBytes > 256) {
        fatal("line size %u is not a supported power of two",
              mem.lineBytes);
    }
    if (mem.lineBytes / 4 > 32)
        fatal("line size %u exceeds the 32-word SM-mask limit",
              mem.lineBytes);
    if (!isPowerOf2(mem.l1Banks) || !isPowerOf2(mem.l2Banks))
        fatal("cache bank counts must be powers of two");
    if (mem.l1Bytes % (mem.l1Assoc * mem.lineBytes) != 0)
        fatal("L1 size %u not divisible into %u-way sets", mem.l1Bytes,
              mem.l1Assoc);
    if (mem.l2Bytes % (mem.l2Assoc * mem.lineBytes) != 0)
        fatal("L2 size %u not divisible into %u-way sets", mem.l2Bytes,
              mem.l2Assoc);
    if (!isPowerOf2(mem.l1Bytes / (mem.l1Assoc * mem.lineBytes)))
        fatal("L1 set count must be a power of two");
    if (!isPowerOf2(mem.l2Bytes / (mem.l2Assoc * mem.lineBytes)))
        fatal("L2 set count must be a power of two");
    if (cpu.issueWidth == 0 || cpu.robSize == 0)
        fatal("issue width and ROB size must be nonzero");
    if (tls.numCpus == 0 || tls.numCpus > 64)
        fatal("unsupported CPU count %u", tls.numCpus);
    if (tls.subthreadsPerThread == 0)
        fatal("at least one sub-thread context per thread is required");
    if (tls.subthreadSpacing == 0)
        fatal("sub-thread spacing must be nonzero");
}

void
MachineConfig::print(std::ostream &os) const
{
    os << "Pipeline Parameters\n"
       << "  Issue Width              " << cpu.issueWidth << "\n"
       << "  Reorder Buffer Size      " << cpu.robSize << "\n"
       << "  Integer Multiply         " << cpu.intMulLatency << " cycles\n"
       << "  Integer Divide           " << cpu.intDivLatency << " cycles\n"
       << "  All Other Integer        " << cpu.intLatency << " cycle\n"
       << "  FP Divide                " << cpu.fpDivLatency << " cycles\n"
       << "  FP Square Root           " << cpu.fpSqrtLatency << " cycles\n"
       << "  All Other FP             " << cpu.fpLatency << " cycles\n"
       << "  Branch Prediction        GShare (" << cpu.gshareBytes / 1024
       << "KB, " << cpu.gshareHistoryBits << " history bits)\n"
       << "Memory Parameters\n"
       << "  Cache Line Size          " << mem.lineBytes << "B\n"
       << "  Instruction Cache        " << mem.l1Bytes / 1024 << "KB, "
       << mem.l1Assoc << "-way set-assoc\n"
       << "  Data Cache               " << mem.l1Bytes / 1024 << "KB, "
       << mem.l1Assoc << "-way set-assoc, " << mem.l1Banks << " banks\n"
       << "  Unified Secondary Cache  " << mem.l2Bytes / (1024 * 1024)
       << "MB, " << mem.l2Assoc << "-way set-assoc, " << mem.l2Banks
       << " banks\n"
       << "  Speculative Victim Cache " << mem.victimEntries << " entry\n"
       << "  Miss Handlers            " << mem.dataMshrs << " for data, "
       << mem.instMshrs << " for insts\n"
       << "  Crossbar Interconnect    " << mem.crossbarBytesPerCycle
       << "B per cycle per bank\n"
       << "  Min Miss Latency to L2   " << mem.l2HitLatency << " cycles\n"
       << "  Min Miss Latency to Mem  " << mem.memLatency << " cycles\n"
       << "  Main Memory Bandwidth    1 access per "
       << mem.memCyclesPerAccess << " cycles\n"
       << "TLS Parameters\n"
       << "  CPUs                     " << tls.numCpus << "\n"
       << "  Sub-threads per thread   " << tls.subthreadsPerThread << "\n"
       << "  Sub-thread spacing       " << tls.subthreadSpacing
       << " speculative insts\n"
       << "  Sub-thread start table   "
       << (tls.useStartTable ? "yes" : "no") << "\n";
}

MachineConfig
baselineConfig()
{
    return MachineConfig{};
}

MachineConfig
noSubthreadConfig()
{
    MachineConfig cfg;
    cfg.tls.subthreadsPerThread = 1;
    return cfg;
}

} // namespace tlsim
