/**
 * @file
 * Machine configuration: the paper's Table 1 parameters, plus the TLS
 * parameters explored in the evaluation (sub-thread count and spacing).
 *
 * All defaults reproduce the BASELINE configuration of the paper:
 * a 4-CPU CMP of 4-issue out-of-order cores with 32KB 4-way private
 * L1 caches (write-through), a shared 2MB 4-way 4-bank L2 with a
 * 64-entry speculative victim cache, and 8 sub-threads per speculative
 * thread spaced every 5,000 speculative dynamic instructions.
 */

#ifndef BASE_CONFIG_H
#define BASE_CONFIG_H

#include <cstdint>
#include <ostream>
#include <string>

namespace tlsim {

/**
 * How aggressively the protocol invariant auditor (src/verify) checks
 * the machine during replay. Off costs nothing; Commit sweeps the full
 * speculative state at epoch commit/squash boundaries; Full adds
 * line-local checks on every tracked L2 access.
 */
enum class AuditLevel {
    Off,
    Commit,
    Full,
};

const char *auditLevelName(AuditLevel level);

/** Parse an --audit= value; dies with fatal() on anything unknown. */
AuditLevel parseAuditLevel(const std::string &name);

/** Pipeline parameters (Table 1, upper half). */
struct CpuConfig
{
    unsigned issueWidth = 4;         ///< instructions retired per cycle
    unsigned robSize = 128;          ///< reorder-buffer entries
    unsigned intMulLatency = 12;     ///< integer multiply
    unsigned intDivLatency = 76;     ///< integer divide
    unsigned intLatency = 1;         ///< all other integer
    unsigned fpDivLatency = 15;      ///< FP divide
    unsigned fpSqrtLatency = 20;     ///< FP square root
    unsigned fpLatency = 2;          ///< all other FP
    unsigned branchPenalty = 10;     ///< mispredict redirect penalty
    unsigned gshareBytes = 16 * 1024;///< GShare table size (16KB)
    unsigned gshareHistoryBits = 8;  ///< GShare history length
    unsigned maxOutstandingLoads = 16; ///< load MLP window inside the ROB
};

/** Memory-hierarchy parameters (Table 1, lower half). */
struct MemConfig
{
    unsigned lineBytes = 32;

    unsigned l1Bytes = 32 * 1024;
    unsigned l1Assoc = 4;
    unsigned l1Banks = 2;           ///< data cache banks
    unsigned l1HitLatency = 1;

    unsigned l2Bytes = 2 * 1024 * 1024;
    unsigned l2Assoc = 4;
    unsigned l2Banks = 4;
    unsigned l2HitLatency = 10;     ///< min miss latency to secondary cache

    unsigned victimEntries = 64;    ///< speculative victim cache

    unsigned dataMshrs = 128;       ///< miss handlers for data
    unsigned instMshrs = 2;         ///< miss handlers for instructions

    unsigned crossbarBytesPerCycle = 8; ///< per bank
    unsigned memLatency = 75;       ///< min miss latency to local memory
    unsigned memCyclesPerAccess = 20; ///< main memory bandwidth limit
};

/** TLS / sub-thread parameters (Section 2.2 and Section 5.1). */
struct TlsConfig
{
    unsigned numCpus = 4;
    unsigned subthreadsPerThread = 8;      ///< contexts per speculative thread
    std::uint64_t subthreadSpacing = 5000; ///< speculative insts per sub-thread
    /**
     * Section 5.1's suggested policy: instead of a fixed spacing,
     * divide each thread's speculative instruction count evenly over
     * the available sub-thread contexts.
     */
    bool adaptiveSpacing = false;
    bool useStartTable = true;   ///< selective secondary violations (Fig 4b)
    /**
     * Predicted-risk sub-thread placement (--placement=risk): spawn
     * thresholds come from the trace pre-analysis' exposed-conflict-
     * load offsets (EpochView::riskOffsets) selected by
     * critpath::selectRiskSpawnPoints, instead of the fixed
     * spacing/2*spacing/... grid. A checkpoint sits right before each
     * predicted-risky load, so its violation rewinds almost no work.
     * (The offsets live in the trace index, which the replay engine
     * always builds; no oracle flag is required.)
     */
    bool riskPlacement = false;
    bool useVictimCache = true;
    /**
     * Write-through L1s propagate store values (and violation checks)
     * immediately. When false, stores batch and younger threads'
     * violations are detected only when the storing epoch commits —
     * the lazier scheme the paper's design improves on.
     */
    bool aggressiveUpdates = true;
    /**
     * Section 2.2 considered extending the L1 to track sub-threads so
     * a violation need not flush all speculatively-modified L1 lines;
     * the paper found it "not worthwhile". True models its best case
     * (no L1 flush on violation at all).
     */
    bool l1SubthreadAware = false;
    /**
     * Section 1.2: the Moshovos-style dependence predictor the
     * authors tried before sub-threads. Loads whose PC has caused a
     * violation synchronize (stall until the thread is the oldest).
     * The paper found it ineffective because "only one of several
     * dynamic instances of the same load PC caused the dependence" —
     * PC-indexed prediction over-synchronizes.
     */
    bool useDependencePredictor = false;
    unsigned violationDeliveryLatency = 10; ///< cycles to signal a squash
    unsigned spawnOverheadInsts = 100; ///< software epoch-management cost
    /**
     * Consult the trace pre-analysis (core/traceindex) during replay:
     * stores to lines no later epoch ever depends on skip the
     * cross-context violation scan, and loads use the precomputed
     * exposure bit instead of the per-word SM merge. A pure host-side
     * optimisation — RunResult is identical either way (enforced by
     * the golden-equivalence test); false forces the full path.
     */
    bool useConflictOracle = true;
    /**
     * Invariant-audit intensity. The machine only calls into an
     * attached verify::Auditor when this is not Off, so the default
     * keeps the replay hot path untouched.
     */
    AuditLevel auditLevel = AuditLevel::Off;
};

/** Complete machine description. */
struct MachineConfig
{
    CpuConfig cpu;
    MemConfig mem;
    TlsConfig tls;

    /** Die with fatal() if any parameter combination is unsupported. */
    void validate() const;

    /** Human-readable dump in the shape of the paper's Table 1. */
    void print(std::ostream &os) const;
};

/** The paper's BASELINE machine. */
MachineConfig baselineConfig();

/** BASELINE with sub-thread support disabled (NO-SUB-THREAD bars). */
MachineConfig noSubthreadConfig();

} // namespace tlsim

#endif // BASE_CONFIG_H
