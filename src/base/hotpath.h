/**
 * @file
 * The TLSIM_HOT function attribute: marks the replay hot loop and the
 * kernels it leans on (varint block decode, SIMD mask scans, the
 * critical-path analyzer's inner loops).
 *
 * Two consumers:
 *
 *  - the compiler: [[gnu::hot]] biases inlining/layout toward these
 *    functions on GCC/Clang (a no-op elsewhere);
 *
 *  - tlsa (tools/tlsa.py, pass A3): every function transitively
 *    reachable from a TLSIM_HOT root through resolved calls must be
 *    free of `new`/malloc, push_back on never-reserved receivers,
 *    and node-based-container mutations. tlsa keys on the literal
 *    spelling `TLSIM_HOT`, so do not alias or wrap this macro.
 *
 * Annotate the ROOT of a hot region (the batch loop, the kernel
 * entry); callees inherit the discipline through the call graph and
 * do not need their own annotation. A genuinely cold call out of a
 * hot function (error paths, one-time growth) is pruned with a
 * reasoned allow(A3) suppression comment on the call line.
 */

#ifndef BASE_HOTPATH_H
#define BASE_HOTPATH_H

#if defined(__GNUC__) || defined(__clang__)
#define TLSIM_HOT [[gnu::hot]]
#else
#define TLSIM_HOT
#endif

#endif // BASE_HOTPATH_H
