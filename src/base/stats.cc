#include "base/stats.h"

#include <cmath>

namespace tlsim {
namespace stats {

Stat::Stat(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->registerStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

double
Distribution::stdev() const
{
    if (n_ < 2)
        return 0;
    const double m = mean();
    const double var = (sumSq_ - n_ * m * m) / (n_ - 1);
    return var > 0 ? std::sqrt(var) : 0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".count " << n_ << " # " << desc() << "\n";
    os << prefix << name() << ".mean " << mean() << "\n";
    os << prefix << name() << ".min " << min() << "\n";
    os << prefix << name() << ".max " << max() << "\n";
    os << prefix << name() << ".stdev " << stdev() << "\n";
}

void
Distribution::reset()
{
    sum_ = 0;
    sumSq_ = 0;
    n_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Vector::Vector(StatGroup *group, std::string name, std::string desc,
               std::vector<std::string> bucket_names)
    : Stat(group, std::move(name), std::move(desc)),
      bucketNames_(std::move(bucket_names)),
      values_(bucketNames_.size(), 0)
{
}

double
Vector::total() const
{
    double t = 0;
    for (double v : values_)
        t += v;
    return t;
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        os << prefix << name() << "." << bucketNames_[i] << " "
           << values_[i] << " # " << desc() << "\n";
    }
}

void
Vector::reset()
{
    for (double &v : values_)
        v = 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = name_ + ".";
    for (const Stat *s : stats_)
        s->dump(os, prefix);
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
}

GlobalCounters &
GlobalCounters::instance()
{
    static GlobalCounters counters;
    return counters;
}

void
GlobalCounters::add(const std::string &name, std::uint64_t delta)
{
    MutexLock lk(mtx_);
    counters_[name] += delta;
}

std::uint64_t
GlobalCounters::value(const std::string &name) const
{
    MutexLock lk(mtx_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
GlobalCounters::snapshot() const
{
    MutexLock lk(mtx_);
    return {counters_.begin(), counters_.end()};
}

void
GlobalCounters::reset()
{
    MutexLock lk(mtx_);
    counters_.clear();
}

} // namespace stats
} // namespace tlsim
