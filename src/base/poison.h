/**
 * @file
 * Poison-on-recycle runtime cross-check for pooled objects.
 *
 * The static analyzer (tools/tlslife.py) proves recycle discipline on
 * the token stream; this header is the runtime half of the bargain:
 * canary patterns scribbled into dead storage, and a lifecycle token
 * that turns use-after-release and double-release into immediate
 * panics instead of silent stale-state corruption.
 *
 * The Token itself is always compiled so its contract is testable in
 * the default build; the pooled-object hooks (EpochRun's scalar
 * poisoning, dead-way canaries in LineSet/L2Cache) are compiled only
 * under -DTLSIM_POISON=ON, keeping the release-build hot paths
 * untouched. Violations report via panic() (base/log.h), so gtest
 * EXPECT_DEATH sees them in every build flavor.
 */

#ifndef BASE_POISON_H
#define BASE_POISON_H

#include <cstdint>

#include "base/log.h"

namespace tlsim {
namespace poison {

/** Canary scribbled into dead 64-bit scalars at release time; any
 *  field the recycle path misses keeps this value, and the acquire
 *  cross-check trips on it. */
constexpr std::uint64_t kU64 = 0xDEADBEEFDEADBEEFull;

/** Same, for 32-bit-and-narrower scalars. */
constexpr std::uint32_t kU32 = 0xDEADBEEFu;

/** Canary line address for dead cache ways / set slots: a lookup
 *  that bypasses the generation check can only ever match this,
 *  never a stale real line. */
constexpr std::uint64_t kLine = 0xFEEEFEEEFEEEFEEEull;

/**
 * Lifecycle canary embedded in a pooled object.
 *
 * States: Fresh (never pooled), Live (checked out), Released (on the
 * free list). The pool's acquire/release paths drive the transitions;
 * hot-path accessors call assertLive(). Every illegal transition is a
 * panic naming the object, so the failure points at the recycle bug,
 * not at the eventual downstream corruption.
 */
class Token
{
  public:
    /** Pool release: Live (or Fresh) -> Released. Double release of
     *  the same object is the classic free-list corruption bug. */
    void
    markReleased(const char *what)
    {
        if (state_ == State::Released)
            panic("poison: double release of %s", what);
        state_ = State::Released;
    }

    /** Pool acquire: Released (or Fresh) -> Live. Acquiring an object
     *  some CPU still holds means the free list handed it out twice. */
    void
    markAcquired(const char *what)
    {
        if (state_ == State::Live)
            panic("poison: acquire of live %s (double checkout)", what);
        state_ = State::Live;
    }

    /** Hot-path guard: touching a pooled object after release. */
    void
    assertLive(const char *what) const
    {
        if (state_ == State::Released)
            panic("poison: use of released %s", what);
    }

    bool released() const { return state_ == State::Released; }
    bool live() const { return state_ == State::Live; }

  private:
    enum class State : std::uint32_t { Fresh, Live, Released };

    State state_ = State::Fresh;
};

} // namespace poison
} // namespace tlsim

#endif // BASE_POISON_H
