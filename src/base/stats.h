/**
 * @file
 * A small statistics package in the spirit of gem5's Stats:
 * named scalar counters, distributions and vectors that register with a
 * StatGroup and can be dumped in one pass at the end of simulation.
 */

#ifndef BASE_STATS_H
#define BASE_STATS_H

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "base/sync.h"
#include "base/threadannot.h"

namespace tlsim {
namespace stats {

class StatGroup;

/** Base class for all statistics: a name, a description, and a dump. */
class Stat
{
  public:
    Stat(StatGroup *group, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print one or more "prefixname value # desc" lines. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix = "") const = 0;
    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple accumulating scalar (count or sum). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { value_ += 1; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Min/max/mean/stdev summary of a sampled quantity. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v, std::uint64_t count = 1)
    {
        sum_ += v * count;
        sumSq_ += v * v * count;
        n_ += count;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0; }
    double min() const { return n_ ? min_ : 0; }
    double max() const { return n_ ? max_ : 0; }
    double stdev() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    double sum_ = 0;
    double sumSq_ = 0;
    std::uint64_t n_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** A fixed-size vector of named scalar buckets. */
class Vector : public Stat
{
  public:
    Vector(StatGroup *group, std::string name, std::string desc,
           std::vector<std::string> bucket_names);

    double &operator[](std::size_t i) { return values_.at(i); }
    double at(std::size_t i) const { return values_.at(i); }
    std::size_t size() const { return values_.size(); }
    double total() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::vector<std::string> bucketNames_;
    std::vector<double> values_;
};

/**
 * A named collection of statistics. Groups nest by name prefix only —
 * members register themselves on construction.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void registerStat(Stat *s) { stats_.push_back(s); }
    const std::vector<Stat *> &statList() const { return stats_; }

    /** Dump every registered stat, prefixed with the group name. */
    void dump(std::ostream &os) const;
    /** Reset every registered stat. */
    void resetAll();

  private:
    std::string name_;
    std::vector<Stat *> stats_;
};

/**
 * Process-wide, thread-safe named counters for host-side plumbing
 * observability (executor batches/steals, trace-cache hits, ...).
 *
 * Unlike Stat/StatGroup — which are single-threaded by design, owned
 * by one simulated machine and dumped with its results — these are
 * shared across every worker thread and guarded accordingly; the
 * annotations make the discipline checkable under TLSIM_THREAD_SAFETY.
 * They never feed simulation output, so bit-identical replay is
 * unaffected by how the host schedules the increments.
 */
class GlobalCounters
{
  public:
    static GlobalCounters &instance();

    GlobalCounters(const GlobalCounters &) = delete;
    GlobalCounters &operator=(const GlobalCounters &) = delete;

    /** Add `delta` to the named counter (created at zero). */
    void add(const std::string &name, std::uint64_t delta = 1)
        TLSIM_EXCLUDES(mtx_);

    /** Current value (zero if never incremented). */
    std::uint64_t value(const std::string &name) const
        TLSIM_EXCLUDES(mtx_);

    /** All counters, sorted by name (a consistent point-in-time view). */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const
        TLSIM_EXCLUDES(mtx_);

    /** Drop every counter (tests isolate themselves with this). */
    void reset() TLSIM_EXCLUDES(mtx_);

  private:
    GlobalCounters() = default;

    mutable Mutex mtx_;
    std::map<std::string, std::uint64_t> counters_
        TLSIM_GUARDED_BY(mtx_);
};

} // namespace stats
} // namespace tlsim

#endif // BASE_STATS_H
