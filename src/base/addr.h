/**
 * @file
 * Cache-line address arithmetic helpers.
 */

#ifndef BASE_ADDR_H
#define BASE_ADDR_H

#include <cstdint>

#include "base/types.h"

namespace tlsim {

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for a power of two. */
constexpr unsigned
log2Exact(std::uint64_t x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Address arithmetic for a fixed line size (power of two). */
class LineGeom
{
  public:
    explicit constexpr LineGeom(unsigned line_bytes)
        : lineBytes_(line_bytes), shift_(log2Exact(line_bytes))
    {
    }

    constexpr unsigned lineBytes() const { return lineBytes_; }
    constexpr Addr lineAddr(Addr a) const { return a >> shift_ << shift_; }
    constexpr Addr lineNum(Addr a) const { return a >> shift_; }
    constexpr unsigned offset(Addr a) const
    {
        return static_cast<unsigned>(a & (lineBytes_ - 1));
    }

    /**
     * Bitmask of the 32-bit words of the line touched by an access of
     * `size` bytes at address `a` (clamped to this line).
     */
    constexpr std::uint32_t
    wordMask(Addr a, unsigned size) const
    {
        unsigned first = offset(a) / 4;
        unsigned last_byte = offset(a) + (size ? size - 1 : 0);
        if (last_byte >= lineBytes_)
            last_byte = lineBytes_ - 1;
        unsigned last = last_byte / 4;
        unsigned count = last - first + 1;
        // Contiguous run of `count` bits starting at `first`, computed
        // without the old per-word loop (this runs once per store on the
        // replay path). count can reach 32 for a full 128-byte line, so
        // the all-ones case avoids the undefined 1u << 32.
        std::uint32_t run = count >= 32 ? 0xFFFFFFFFu : (1u << count) - 1u;
        return run << first;
    }

    /** Number of lines an access [a, a+size) spans. */
    constexpr unsigned
    lineSpan(Addr a, unsigned size) const
    {
        if (size == 0)
            return 1;
        return static_cast<unsigned>(lineNum(a + size - 1) - lineNum(a)) + 1;
    }

  private:
    unsigned lineBytes_;
    unsigned shift_;
};

} // namespace tlsim

#endif // BASE_ADDR_H
