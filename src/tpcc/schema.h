/**
 * @file
 * TPC-C schema: the nine tables plus the two secondary indexes the
 * transactions need (customer-by-last-name, orders-by-customer). Rows
 * are fixed-layout PODs serialized byte-for-byte into B-tree values;
 * field widths follow the TPC-C specification (clause 1.3).
 *
 * The workload is configured with a single warehouse, as in the paper:
 * intra-transaction parallelism is the concurrency source, so the
 * usual multi-warehouse scaling is disabled.
 */

#ifndef TPCC_SCHEMA_H
#define TPCC_SCHEMA_H

#include <cstdint>
#include <cstring>

#include "db/dbtypes.h"

namespace tlsim {
namespace tpcc {

/** Scale parameters (TPC-C clause 4.3 for one warehouse). */
struct TpccConfig
{
    std::uint32_t items = 100000;
    std::uint32_t districts = 10;
    std::uint32_t customersPerDistrict = 3000;
    std::uint32_t ordersPerDistrict = 3000;
    /** Orders >= this id start undelivered (spec: 2101). */
    std::uint32_t firstNewOrder = 2101;

    /** A small preset for unit tests. */
    static TpccConfig
    tiny()
    {
        TpccConfig c;
        c.items = 500;
        c.districts = 3;
        c.customersPerDistrict = 60;
        c.ordersPerDistrict = 60;
        c.firstNewOrder = 31;
        return c;
    }
};

// --------------------------------------------------------------------
// Row layouts (packed PODs; serialized via memcpy)
// --------------------------------------------------------------------

struct WarehouseRow
{
    std::uint32_t w_id;
    char name[10];
    char street_1[20];
    char city[20];
    char state[2];
    char zip[9];
    double tax;
    double ytd;
};

struct DistrictRow
{
    std::uint32_t d_id;
    std::uint32_t w_id;
    char name[10];
    char street_1[20];
    char city[20];
    char state[2];
    char zip[9];
    double tax;
    double ytd;
    std::uint32_t next_o_id;
};

struct CustomerRow
{
    std::uint32_t c_id;
    std::uint32_t d_id;
    std::uint32_t w_id;
    char first[16];
    char middle[2];
    char last[16];
    char street_1[20];
    char city[20];
    char state[2];
    char zip[9];
    char phone[16];
    std::uint64_t since;
    char credit[2];
    double credit_lim;
    double discount;
    double balance;
    double ytd_payment;
    std::uint16_t payment_cnt;
    std::uint16_t delivery_cnt;
    char data[500];
};

struct HistoryRow
{
    std::uint32_t c_id;
    std::uint32_t c_d_id;
    std::uint32_t d_id;
    std::uint64_t date;
    double amount;
    char data[24];
};

struct NewOrderRow
{
    std::uint32_t o_id;
    std::uint32_t d_id;
};

struct OrderRow
{
    std::uint32_t o_id;
    std::uint32_t c_id;
    std::uint32_t d_id;
    std::uint64_t entry_d;
    std::uint32_t carrier_id; ///< 0 = undelivered
    std::uint32_t ol_cnt;
    std::uint32_t all_local;
};

struct OrderLineRow
{
    std::uint32_t o_id;
    std::uint32_t d_id;
    std::uint32_t ol_number;
    std::uint32_t i_id;
    std::uint32_t supply_w_id;
    std::uint64_t delivery_d; ///< 0 = undelivered
    std::uint32_t quantity;
    double amount;
    char dist_info[24];
};

/** Value of the customer-by-last-name index: enough to pick the
 *  middle customer ordered by first name without touching the row. */
struct CustomerNameEntry
{
    char first[16];
    std::uint32_t c_id;
};

struct ItemRow
{
    std::uint32_t i_id;
    std::uint32_t im_id;
    char name[24];
    double price;
    char data[50];
};

struct StockRow
{
    std::uint32_t i_id;
    std::int32_t quantity;
    char dist[10][24];
    std::uint32_t ytd;
    std::uint16_t order_cnt;
    std::uint16_t remote_cnt;
    char data[50];
};

/** Serialize a POD row. */
template <typename Row>
db::Bytes
toBytes(const Row &r)
{
    return db::Bytes(reinterpret_cast<const char *>(&r), sizeof(Row));
}

/** Deserialize a POD row (panics on size mismatch via caller checks). */
template <typename Row>
Row
fromBytes(db::BytesView b)
{
    Row r;
    std::memcpy(&r, b.data(),
                b.size() < sizeof(Row) ? b.size() : sizeof(Row));
    return r;
}

/** The tables (indexes into Database::table). */
struct Tables
{
    db::TableId warehouse;
    db::TableId district;
    db::TableId customer;
    db::TableId customerName; ///< (d, last, c) -> c_id
    db::TableId history;      ///< seq -> HistoryRow
    db::TableId newOrder;     ///< (d, o) -> NewOrderRow
    db::TableId order;        ///< (d, o) -> OrderRow
    db::TableId orderCust;    ///< (d, c, ~o) -> o_id
    db::TableId orderLine;    ///< (d, o, ol) -> OrderLineRow
    db::TableId item;
    db::TableId stock;
};

} // namespace tpcc
} // namespace tlsim

#endif // TPCC_SCHEMA_H
