/**
 * @file
 * The STOCK LEVEL transaction (clause 2.8): counts distinct items with
 * low stock among the district's 20 most recent orders. The per-order
 * loop is parallelized; the shared distinct-item scratch is a genuine
 * cross-epoch dependence the paper reports as hard to remove, so some
 * failed speculation remains even in the tuned build.
 */

#include "base/log.h"
#include "core/site.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;

void
TpccDb::txnStockLevel(const StockLevelInput &in)
{
    static const Site s_glue("tpcc.stocklevel.setup");
    static const Site s_ord("tpcc.stocklevel.order_glue");
    static const Site s_seen("tpcc.stocklevel.distinct_set");
    static const Site s_count("tpcc.stocklevel.count");

    db::Txn txn = db_.begin();
    tr_.compute(s_glue.pc, 700);

    Bytes buf;
    if (!db_.get(txn, t_.district, kDistrict(in.d_id), &buf))
        panic("STOCK LEVEL: district missing");
    auto d = fromBytes<DistrictRow>(buf);

    ++stockSeenStamp_;
    std::uint32_t lo_o =
        d.next_o_id > 20 ? d.next_o_id - 20 : 1;

    // First pass: read the 20 most recent ORDER rows to build the
    // join worklist (sequential; cheap relative to the join itself).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> lines;
    for (std::uint32_t o_id = lo_o; o_id < d.next_o_id; ++o_id) {
        tr_.compute(s_ord.pc, 300);
        if (!db_.get(txn, t_.order, kOrder(in.d_id, o_id), &buf))
            continue;
        auto o = fromBytes<OrderRow>(buf);
        for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol)
            lines.emplace_back(o_id, ol);
    }

    // The join over ORDER_LINE x STOCK is the parallelized loop: one
    // epoch per order line (the paper's smallest threads, ~7.5k
    // dynamic instructions each).
    tr_.loopBegin();
    for (auto [o_id, ol] : lines) {
        tr_.iterBegin();
        if (tlsBuild())
            db_.beginEpochWork();
        tr_.compute(s_ord.pc, 250);
        if (!db_.get(txn, t_.orderLine, kOrderLine(in.d_id, o_id, ol),
                     &buf))
            panic("STOCK LEVEL: order line (%u,%u) missing", o_id, ol);
        auto lr = fromBytes<OrderLineRow>(buf);
        if (!db_.get(txn, t_.stock, kStock(lr.i_id), &buf))
            panic("STOCK LEVEL: stock %u missing", lr.i_id);
        auto st = fromBytes<StockRow>(buf);
        if (st.quantity < static_cast<std::int32_t>(in.threshold)) {
            // Mark the item in the shared distinct-set scratch.
            auto *slot = &stockSeenStamps_[lr.i_id];
            tr_.load(s_seen.pc, slot, sizeof(*slot));
            *slot = stockSeenStamp_;
            tr_.store(s_seen.pc, slot, sizeof(*slot));
            tr_.compute(s_seen.pc, 60);
        }
        if (tlsBuild())
            db_.endEpochWork();
    }
    tr_.loopEnd();

    std::uint32_t count = 0;
    for (std::uint32_t i = 1; i <= cfg_.items; ++i)
        if (stockSeenStamps_[i] == stockSeenStamp_)
            ++count;
    // The COUNT(DISTINCT) aggregation over the collected set.
    tr_.compute(s_count.pc, 200 + 12 * count);
    lastStockLevel_ = count;

    db_.commit(txn);
}

} // namespace tpcc
} // namespace tlsim
