/**
 * @file
 * The DELIVERY transaction (clause 2.7), in both of the paper's
 * decompositions:
 *
 *  - DELIVERY: the inner per-order-line loop is parallelized (63%
 *    coverage, ~33k-instruction threads in the paper);
 *  - DELIVERY OUTER: the outer per-district loop is parallelized (99%
 *    coverage, ~490k-instruction threads), which is where sub-threads
 *    matter most — an early violation without sub-threads rewinds
 *    half a million instructions.
 */

#include "base/log.h"
#include "core/site.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;

void
TpccDb::txnDelivery(const DeliveryInput &in, bool outer_parallel)
{
    static const Site s_glue("tpcc.delivery.setup");
    static const Site s_find("tpcc.delivery.find_oldest");
    static const Site s_line("tpcc.delivery.update_line");
    static const Site s_cust("tpcc.delivery.credit_customer");

    db::Txn txn = db_.begin();
    tr_.compute(s_glue.pc, 900);

    if (outer_parallel)
        tr_.loopBegin();

    for (std::uint32_t d = 1; d <= cfg_.districts; ++d) {
        if (outer_parallel) {
            tr_.iterBegin();
            if (tlsBuild())
                db_.beginEpochWork();
        }

        // Oldest undelivered order of this district.
        auto cur = db_.cursor(t_.newOrder);
        Bytes lo = kNewOrder(d, 0);
        std::uint32_t o_id = 0;
        tr_.compute(s_find.pc, 400);
        if (cur.seek(lo)) {
            NewOrderRow nr = fromBytes<NewOrderRow>(cur.value());
            if (nr.d_id == d)
                o_id = nr.o_id;
        }
        if (o_id == 0) {
            // Clause 2.7.4.2: skip districts with no pending order.
            if (outer_parallel && tlsBuild())
                db_.endEpochWork();
            continue;
        }

        db_.erase(txn, t_.newOrder, kNewOrder(d, o_id));

        Bytes buf;
        if (!db_.get(txn, t_.order, kOrder(d, o_id), &buf))
            panic("DELIVERY: order %u missing", o_id);
        auto o = fromBytes<OrderRow>(buf);
        o.carrier_id = in.carrier_id;
        db_.put(txn, t_.order, kOrder(d, o_id), toBytes(o));

        double sum = 0.0;
        if (!outer_parallel)
            tr_.loopBegin();
        for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol) {
            if (!outer_parallel) {
                tr_.iterBegin();
                if (tlsBuild())
                    db_.beginEpochWork();
            }
            tr_.compute(s_line.pc, 500);
            if (!db_.get(txn, t_.orderLine, kOrderLine(d, o_id, ol),
                         &buf))
                panic("DELIVERY: order line %u missing", ol);
            auto lr = fromBytes<OrderLineRow>(buf);
            lr.delivery_d = o.entry_d + 1;
            sum += lr.amount;
            db_.put(txn, t_.orderLine, kOrderLine(d, o_id, ol),
                    toBytes(lr));
            if (!outer_parallel && tlsBuild())
                db_.endEpochWork();
        }
        if (!outer_parallel)
            tr_.loopEnd();

        if (!db_.get(txn, t_.customer, kCustomer(d, o.c_id), &buf))
            panic("DELIVERY: customer missing");
        auto c = fromBytes<CustomerRow>(buf);
        c.balance += sum;
        c.delivery_cnt += 1;
        db_.put(txn, t_.customer, kCustomer(d, o.c_id), toBytes(c));
        tr_.compute(s_cust.pc, 400);

        if (outer_parallel && tlsBuild())
            db_.endEpochWork();
    }

    if (outer_parallel)
        tr_.loopEnd();

    db_.commit(txn);
}

} // namespace tpcc
} // namespace tlsim
