/**
 * @file
 * TPC-C input generation (clause 2.1): uniform and non-uniform random
 * distributions (NURand), customer last names from the syllable table,
 * and the per-transaction input records. All inputs derive from a
 * deterministic Rng so that the SEQUENTIAL and TLS captures of a
 * benchmark see byte-identical transaction streams.
 */

#ifndef TPCC_INPUT_H
#define TPCC_INPUT_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tpcc/schema.h"

namespace tlsim {
namespace tpcc {

/** Fixed NURand C constants (clause 2.1.6; fixed for repeatability). */
inline constexpr std::uint32_t kCLast = 123;
inline constexpr std::uint32_t kCId = 77;
inline constexpr std::uint32_t kColIId = 1771;

/** Non-uniform random (clause 2.1.6). */
std::uint32_t nuRand(Rng &rng, std::uint32_t a, std::uint32_t c,
                     std::uint32_t x, std::uint32_t y);

/** Customer last name for a number in [0, 999] (clause 4.3.2.3). */
std::string lastName(unsigned num);

/** A last name drawn for run-time transactions (NURand 255). */
std::string randomLastName(Rng &rng, std::uint32_t customers_per_dist);

/** Customer id via NURand 1023. */
std::uint32_t randomCustomerId(Rng &rng, std::uint32_t customers);

/** Item id via NURand 8191. */
std::uint32_t randomItemId(Rng &rng, std::uint32_t items);

// --------------------------------------------------------------------
// Per-transaction inputs
// --------------------------------------------------------------------

struct NewOrderInput
{
    std::uint32_t d_id;
    std::uint32_t c_id;
    struct Line
    {
        std::uint32_t i_id;
        std::uint32_t quantity;
    };
    std::vector<Line> lines;
    bool rollback = false; ///< clause 2.4.1.4: 1% invalid item
};

struct PaymentInput
{
    std::uint32_t d_id;
    bool byName;
    std::uint32_t c_id;     ///< when !byName
    std::string c_last;     ///< when byName
    double amount;
};

struct OrderStatusInput
{
    std::uint32_t d_id;
    bool byName;
    std::uint32_t c_id;
    std::string c_last;
};

struct DeliveryInput
{
    std::uint32_t carrier_id;
};

struct StockLevelInput
{
    std::uint32_t d_id;
    std::uint32_t threshold;
};

/** Generates spec-conformant inputs for one warehouse. */
class InputGen
{
  public:
    InputGen(const TpccConfig &cfg, std::uint64_t seed)
        : cfg_(cfg), rng_(seed)
    {
    }

    /** `large_orders` selects the NEW ORDER 150 variant (50-150 items
     *  instead of 5-15, the paper's scaled workload). */
    NewOrderInput newOrder(bool large_orders);
    PaymentInput payment();
    OrderStatusInput orderStatus();
    DeliveryInput delivery();
    StockLevelInput stockLevel(std::uint32_t fixed_d_id);

    Rng &rng() { return rng_; }

  private:
    const TpccConfig &cfg_;
    Rng rng_;
};

} // namespace tpcc
} // namespace tlsim

#endif // TPCC_INPUT_H
