/**
 * @file
 * The TPC-C workload on minidb: data load (clause 4.3), the five
 * transactions plus the paper's two variants (NEW ORDER 150 with
 * 50-150-line orders, DELIVERY OUTER with the outer district loop
 * parallelized), and the capture driver that turns transaction
 * executions into WorkloadTraces for the TLS machine.
 *
 * Two "builds" exist, as in the paper: the original build (untuned
 * database, no TLS markers — the SEQUENTIAL binary) and the TLS build
 * (tuned database, loop markers, epoch hooks — the TLS-SEQ and
 * parallel binaries). `DbConfig::tuned` selects between them.
 */

#ifndef TPCC_TPCC_H
#define TPCC_TPCC_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/tracer.h"
#include "db/db.h"
#include "db/keys.h"
#include "tpcc/input.h"
#include "tpcc/schema.h"

namespace tlsim {
namespace tpcc {

/** The seven benchmarks of the paper's evaluation (Figure 5). */
enum class TxnType {
    NewOrder,
    NewOrder150,
    Delivery,
    DeliveryOuter,
    StockLevel,
    Payment,
    OrderStatus,
};

const char *txnTypeName(TxnType t);
const std::vector<TxnType> &allBenchmarks();

/** The TPC-C database and transaction implementations. */
class TpccDb
{
  public:
    TpccDb(const TpccConfig &cfg, db::DbConfig db_cfg, Tracer &tracer);

    /** Initial population per clause 4.3 (run before capturing). */
    void load(std::uint64_t seed = 7);

    /** Execute one transaction with inputs drawn from `gen`. */
    void runTransaction(TxnType type, InputGen &gen,
                        std::uint32_t stock_level_district = 1);

    db::Database &database() { return db_; }
    const Tables &tables() const { return t_; }
    const TpccConfig &config() const { return cfg_; }

    /** Result summaries for functional tests. */
    std::uint32_t districtNextOrderId(std::uint32_t d_id);
    std::uint64_t orderCount() const;
    std::uint64_t newOrderCount() const;
    double customerBalance(std::uint32_t d_id, std::uint32_t c_id);
    std::uint32_t lastStockLevelResult() const { return lastStockLevel_; }
    std::uint64_t rollbacks() const { return rollbacks_; }

    /** TPC-C consistency conditions 3.3.2.1/2 (tests). */
    void checkConsistency();

    // Key builders (also used by tests).
    static db::Bytes kWarehouse();
    static db::Bytes kDistrict(std::uint32_t d);
    static db::Bytes kCustomer(std::uint32_t d, std::uint32_t c);
    static db::Bytes kCustomerName(std::uint32_t d, db::BytesView last,
                                   std::uint32_t c);
    static db::Bytes kOrder(std::uint32_t d, std::uint32_t o);
    static db::Bytes kOrderCust(std::uint32_t d, std::uint32_t c,
                                std::uint32_t o);
    static db::Bytes kOrderLine(std::uint32_t d, std::uint32_t o,
                                std::uint32_t ol);
    static db::Bytes kNewOrder(std::uint32_t d, std::uint32_t o);
    static db::Bytes kItem(std::uint32_t i);
    static db::Bytes kStock(std::uint32_t i);
    static db::Bytes kHistory(std::uint64_t seq);

  private:
    void txnNewOrder(const NewOrderInput &in);
    void txnPayment(const PaymentInput &in);
    void txnOrderStatus(const OrderStatusInput &in);
    void txnDelivery(const DeliveryInput &in, bool outer_parallel);
    void txnStockLevel(const StockLevelInput &in);

    /**
     * Resolve a customer by last name (60% case); returns c_id. The
     * scan loop is the (small) parallel region of PAYMENT (index-only)
     * and of ORDER STATUS (`read_rows`: each match also reads the
     * customer row, making the epochs meatier).
     */
    std::uint32_t customerByName(db::Txn &txn, std::uint32_t d_id,
                                 db::BytesView last, bool parallel_scan,
                                 bool read_rows = false);

    bool tlsBuild() const { return db_.config().tuned; }

    TpccConfig cfg_;
    db::Database db_;
    Tracer &tr_;
    Tables t_{};

    std::uint64_t historySeq_ = 0;
    /** Shared distinct-item scratch of STOCK LEVEL (a real, hard
     *  cross-epoch dependence the paper reports as irreducible). */
    std::uint32_t stockSeenStamp_ = 0;
    std::vector<std::uint32_t> stockSeenStamps_;
    std::uint32_t lastStockLevel_ = 0;
    std::uint64_t rollbacks_ = 0;
};

// --------------------------------------------------------------------
// Capture driver
// --------------------------------------------------------------------

/** How to capture a benchmark. */
struct CaptureOptions
{
    unsigned txns = 12;        ///< transactions captured
    bool tlsBuild = true;      ///< tuned DB + markers (vs original)
    bool parallelMode = true;  ///< tracer honors the loop markers
    std::uint64_t inputSeed = 42;
    std::uint64_t loadSeed = 7;
    unsigned spawnOverheadInsts = 100;
    TpccConfig scale;
};

/** Run `opts.txns` transactions of `type` and capture their traces. */
WorkloadTrace captureBenchmark(TxnType type, const CaptureOptions &opts);

} // namespace tpcc
} // namespace tlsim

#endif // TPCC_TPCC_H
