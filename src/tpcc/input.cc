#include "tpcc/input.h"

namespace tlsim {
namespace tpcc {

std::uint32_t
nuRand(Rng &rng, std::uint32_t a, std::uint32_t c, std::uint32_t x,
       std::uint32_t y)
{
    std::uint32_t r1 =
        static_cast<std::uint32_t>(rng.uniform(0, a));
    std::uint32_t r2 =
        static_cast<std::uint32_t>(rng.uniform(x, y));
    return (((r1 | r2) + c) % (y - x + 1)) + x;
}

std::string
lastName(unsigned num)
{
    static const char *syl[] = {"BAR",  "OUGHT", "ABLE", "PRI",
                                "PRES", "ESE",   "ANTI", "CALLY",
                                "ATION", "EING"};
    std::string s;
    s += syl[(num / 100) % 10];
    s += syl[(num / 10) % 10];
    s += syl[num % 10];
    return s;
}

std::string
randomLastName(Rng &rng, std::uint32_t customers_per_dist)
{
    // Clause 4.3.2.3: names drawn from NURand(255, 0, 999); with fewer
    // than 1000 customers the range shrinks so lookups still hit.
    std::uint32_t hi =
        customers_per_dist >= 1000 ? 999 : customers_per_dist - 1;
    return lastName(nuRand(rng, 255, kCLast, 0, hi));
}

std::uint32_t
randomCustomerId(Rng &rng, std::uint32_t customers)
{
    return nuRand(rng, 1023, kCId, 1, customers);
}

std::uint32_t
randomItemId(Rng &rng, std::uint32_t items)
{
    return nuRand(rng, 8191, kColIId, 1, items);
}

NewOrderInput
InputGen::newOrder(bool large_orders)
{
    NewOrderInput in;
    in.d_id = static_cast<std::uint32_t>(
        rng_.uniform(1, cfg_.districts));
    in.c_id = randomCustomerId(rng_, cfg_.customersPerDistrict);
    unsigned n = large_orders
                     ? static_cast<unsigned>(rng_.uniform(50, 150))
                     : static_cast<unsigned>(rng_.uniform(5, 15));
    in.lines.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        NewOrderInput::Line l;
        l.i_id = randomItemId(rng_, cfg_.items);
        l.quantity =
            static_cast<std::uint32_t>(rng_.uniform(1, 10));
        in.lines.push_back(l);
    }
    in.rollback = rng_.uniform(1, 100) == 1;
    return in;
}

PaymentInput
InputGen::payment()
{
    PaymentInput in;
    in.d_id = static_cast<std::uint32_t>(
        rng_.uniform(1, cfg_.districts));
    in.byName = rng_.uniform(1, 100) <= 60;
    if (in.byName)
        in.c_last = randomLastName(rng_, cfg_.customersPerDistrict);
    else
        in.c_id = randomCustomerId(rng_, cfg_.customersPerDistrict);
    in.amount = static_cast<double>(rng_.uniform(100, 500000)) / 100.0;
    return in;
}

OrderStatusInput
InputGen::orderStatus()
{
    OrderStatusInput in;
    in.d_id = static_cast<std::uint32_t>(
        rng_.uniform(1, cfg_.districts));
    in.byName = rng_.uniform(1, 100) <= 60;
    if (in.byName)
        in.c_last = randomLastName(rng_, cfg_.customersPerDistrict);
    else
        in.c_id = randomCustomerId(rng_, cfg_.customersPerDistrict);
    return in;
}

DeliveryInput
InputGen::delivery()
{
    DeliveryInput in;
    in.carrier_id =
        static_cast<std::uint32_t>(rng_.uniform(1, 10));
    return in;
}

StockLevelInput
InputGen::stockLevel(std::uint32_t fixed_d_id)
{
    StockLevelInput in;
    in.d_id = fixed_d_id;
    in.threshold =
        static_cast<std::uint32_t>(rng_.uniform(10, 20));
    return in;
}

} // namespace tpcc
} // namespace tlsim
