/**
 * @file
 * The PAYMENT transaction (clause 2.5). Only the customer-by-last-name
 * scan is a loop, so speculative coverage is tiny (the paper reports
 * 3%) and PAYMENT shows no TLS benefit — it is kept as the negative
 * control of Figure 5.
 */

#include <algorithm>

#include "base/log.h"
#include "core/site.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;
using db::BytesView;

std::uint32_t
TpccDb::customerByName(db::Txn &txn, std::uint32_t d_id,
                       BytesView last, bool parallel_scan,
                       bool read_rows)
{
    static const Site s_scan("tpcc.cust_by_name.scan");
    static const Site s_pick("tpcc.cust_by_name.pick_middle");

    Bytes lo = kCustomerName(d_id, last, 0);
    Bytes prefix = lo.substr(0, 4 + 16);

    std::vector<std::pair<std::string, std::uint32_t>> matches;

    auto cur = db_.cursor(t_.customerName);
    bool ok = cur.seek(lo);
    if (parallel_scan)
        tr_.loopBegin();
    while (ok && cur.key().substr(0, prefix.size()) == prefix) {
        if (parallel_scan)
            tr_.iterBegin();
        auto entry = fromBytes<CustomerNameEntry>(cur.value());
        if (read_rows) {
            Bytes buf;
            if (!db_.get(txn, t_.customer,
                         kCustomer(d_id, entry.c_id), &buf))
                panic("customer (%u,%u) missing from name index",
                      d_id, entry.c_id);
        }
        matches.emplace_back(
            std::string(entry.first, sizeof(entry.first)),
            entry.c_id);
        tr_.compute(s_scan.pc, 350);
        ok = cur.next();
    }
    if (parallel_scan)
        tr_.loopEnd();

    if (matches.empty())
        panic("no customer with the generated last name (scale too "
              "small for the name distribution)");

    // Clause 2.5.2.2: order by first name, take the middle row.
    std::sort(matches.begin(), matches.end());
    tr_.compute(s_pick.pc,
                120 + 40 * static_cast<unsigned>(matches.size()));
    return matches[matches.size() / 2].second;
}

void
TpccDb::txnPayment(const PaymentInput &in)
{
    static const Site s_glue("tpcc.payment.setup");
    static const Site s_hist("tpcc.payment.history_seq");
    static const Site s_bc("tpcc.payment.bad_credit_data");

    db::Txn txn = db_.begin();
    tr_.compute(s_glue.pc, 800);

    Bytes buf;
    if (!db_.get(txn, t_.warehouse, kWarehouse(), &buf))
        panic("PAYMENT: warehouse missing");
    auto w = fromBytes<WarehouseRow>(buf);
    w.ytd += in.amount;
    db_.put(txn, t_.warehouse, kWarehouse(), toBytes(w));

    if (!db_.get(txn, t_.district, kDistrict(in.d_id), &buf))
        panic("PAYMENT: district missing");
    auto d = fromBytes<DistrictRow>(buf);
    d.ytd += in.amount;
    db_.put(txn, t_.district, kDistrict(in.d_id), toBytes(d));

    std::uint32_t c_id =
        in.byName ? customerByName(txn, in.d_id, in.c_last, true)
                  : in.c_id;

    if (!db_.get(txn, t_.customer, kCustomer(in.d_id, c_id), &buf))
        panic("PAYMENT: customer missing");
    auto c = fromBytes<CustomerRow>(buf);
    c.balance -= in.amount;
    c.ytd_payment += in.amount;
    c.payment_cnt += 1;
    if (c.credit[0] == 'B') {
        // Bad credit: prepend payment info to C_DATA (big row write).
        std::memmove(c.data + 40, c.data, sizeof(c.data) - 40);
        std::snprintf(c.data, 40, "%u %u %.2f|", c_id, in.d_id,
                      in.amount);
        tr_.compute(s_bc.pc, 900);
    }
    db_.put(txn, t_.customer, kCustomer(in.d_id, c_id), toBytes(c));

    // Shared history sequence: a real dependence, but in the
    // sequential tail of the transaction.
    tr_.load(s_hist.pc, &historySeq_, sizeof(historySeq_));
    ++historySeq_;
    tr_.store(s_hist.pc, &historySeq_, sizeof(historySeq_));

    HistoryRow h{};
    h.c_id = c_id;
    h.c_d_id = in.d_id;
    h.d_id = in.d_id;
    h.amount = in.amount;
    db_.insert(txn, t_.history, kHistory(historySeq_), toBytes(h));

    db_.commit(txn);
}

} // namespace tpcc
} // namespace tlsim
