/**
 * @file
 * The ORDER STATUS transaction (clause 2.6): read-only. The loop over
 * the last order's lines is parallelized; coverage is modest and the
 * per-epoch work small, so (as in the paper) TLS does not help.
 */

#include "base/log.h"
#include "core/site.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;

void
TpccDb::txnOrderStatus(const OrderStatusInput &in)
{
    static const Site s_glue("tpcc.orderstatus.setup");
    static const Site s_line("tpcc.orderstatus.read_line");

    db::Txn txn = db_.begin();
    tr_.compute(s_glue.pc, 700);

    // The by-name scan is the parallelized region: each matching
    // customer is examined (row read included) by its own small epoch,
    // giving the paper's ~2.7 threads per transaction at 38% coverage.
    std::uint32_t c_id =
        in.byName
            ? customerByName(txn, in.d_id, in.c_last, true, true)
            : in.c_id;

    Bytes buf;
    if (!db_.get(txn, t_.customer, kCustomer(in.d_id, c_id), &buf))
        panic("ORDER STATUS: customer missing");

    // Latest order via the descending (d, c, ~o) index.
    auto cur = db_.cursor(t_.orderCust);
    Bytes lo = kOrderCust(in.d_id, c_id, ~std::uint32_t{0});
    Bytes prefix = lo.substr(0, 8);
    std::uint32_t o_id = 0;
    if (cur.seek(lo) && cur.key().substr(0, 8) == prefix)
        std::memcpy(&o_id, cur.value().data(), 4);

    if (o_id == 0) {
        // Customer without orders (possible at tiny scales).
        db_.commit(txn);
        return;
    }

    if (!db_.get(txn, t_.order, kOrder(in.d_id, o_id), &buf))
        panic("ORDER STATUS: order %u missing", o_id);
    auto o = fromBytes<OrderRow>(buf);

    // The line read-out stays sequential: its iterations are too small
    // to be worth speculative threads (they lose to spawn overhead).
    double total = 0.0;
    for (std::uint32_t ol = 1; ol <= o.ol_cnt; ++ol) {
        tr_.compute(s_line.pc, 400);
        if (!db_.get(txn, t_.orderLine,
                     kOrderLine(in.d_id, o_id, ol), &buf))
            panic("ORDER STATUS: order line %u missing", ol);
        auto lr = fromBytes<OrderLineRow>(buf);
        total += lr.amount;
    }
    tr_.compute(s_glue.pc, 200 + (total > 0 ? 1 : 0));

    db_.commit(txn);
}

} // namespace tpcc
} // namespace tlsim
