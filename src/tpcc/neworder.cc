/**
 * @file
 * The NEW ORDER transaction (TPC-C clause 2.4) — the paper's flagship
 * benchmark. The per-order-line loop is the speculatively parallelized
 * region: each iteration reads ITEM, updates STOCK and appends an
 * ORDER_LINE. The appends hit the same B-tree leaf, which is the
 * canonical frequent-but-cheap dependence that sub-threads tolerate.
 */

#include "core/site.h"
#include "tpcc/tpcc.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;

void
TpccDb::txnNewOrder(const NewOrderInput &in)
{
    static const Site s_glue("tpcc.neworder.setup");
    static const Site s_line("tpcc.neworder.line_glue");
    static const Site s_total("tpcc.neworder.totals");

    db::Txn txn = db_.begin();
    tr_.compute(s_glue.pc, 900);

    Bytes buf;
    if (!db_.get(txn, t_.warehouse, kWarehouse(), &buf))
        panic("NEW ORDER: warehouse missing");
    auto w = fromBytes<WarehouseRow>(buf);

    if (!db_.get(txn, t_.district, kDistrict(in.d_id), &buf))
        panic("NEW ORDER: district %u missing", in.d_id);
    auto d = fromBytes<DistrictRow>(buf);
    std::uint32_t o_id = d.next_o_id;
    d.next_o_id += 1;
    db_.put(txn, t_.district, kDistrict(in.d_id), toBytes(d));

    if (!db_.get(txn, t_.customer, kCustomer(in.d_id, in.c_id), &buf))
        panic("NEW ORDER: customer (%u,%u) missing", in.d_id, in.c_id);
    auto c = fromBytes<CustomerRow>(buf);

    OrderRow orow{};
    orow.o_id = o_id;
    orow.c_id = in.c_id;
    orow.d_id = in.d_id;
    orow.entry_d = o_id;
    orow.carrier_id = 0;
    orow.ol_cnt = static_cast<std::uint32_t>(in.lines.size());
    orow.all_local = 1;
    db_.insert(txn, t_.order, kOrder(in.d_id, o_id), toBytes(orow));
    std::uint32_t oid = o_id;
    db_.insert(txn, t_.orderCust, kOrderCust(in.d_id, in.c_id, o_id),
               Bytes(reinterpret_cast<const char *>(&oid), 4));
    NewOrderRow nrow{o_id, in.d_id};
    db_.insert(txn, t_.newOrder, kNewOrder(in.d_id, o_id),
               toBytes(nrow));

    bool failed = false;
    double total = 0.0;

    tr_.loopBegin();
    for (std::size_t ol = 0; ol < in.lines.size(); ++ol) {
        tr_.iterBegin();
        if (tlsBuild())
            db_.beginEpochWork();
        tr_.compute(s_line.pc, 700);

        const auto &line = in.lines[ol];
        bool invalid = in.rollback && ol + 1 == in.lines.size();
        std::uint32_t i_id =
            invalid ? cfg_.items + 999983 : line.i_id;

        if (!db_.get(txn, t_.item, kItem(i_id), &buf)) {
            // Clause 2.4.1.4: unused item number => rollback.
            failed = true;
            if (tlsBuild())
                db_.endEpochWork();
            break;
        }
        auto item = fromBytes<ItemRow>(buf);

        if (!db_.get(txn, t_.stock, kStock(i_id), &buf))
            panic("NEW ORDER: stock %u missing", i_id);
        auto st = fromBytes<StockRow>(buf);
        if (st.quantity >= static_cast<std::int32_t>(line.quantity) + 10)
            st.quantity -= static_cast<std::int32_t>(line.quantity);
        else
            st.quantity +=
                91 - static_cast<std::int32_t>(line.quantity);
        st.ytd += line.quantity;
        st.order_cnt += 1;
        db_.put(txn, t_.stock, kStock(i_id), toBytes(st));

        double amount = line.quantity * item.price *
                        (1.0 + w.tax + d.tax) * (1.0 - c.discount);
        total += amount;

        OrderLineRow lr{};
        lr.o_id = o_id;
        lr.d_id = in.d_id;
        lr.ol_number = static_cast<std::uint32_t>(ol + 1);
        lr.i_id = i_id;
        lr.supply_w_id = 1;
        lr.delivery_d = 0;
        lr.quantity = line.quantity;
        lr.amount = amount;
        db_.insert(txn, t_.orderLine,
                   kOrderLine(in.d_id, o_id,
                              static_cast<std::uint32_t>(ol + 1)),
                   toBytes(lr));
        tr_.compute(s_line.pc, 400, ComputeClass::Fp);
        if (tlsBuild())
            db_.endEpochWork();
    }
    tr_.loopEnd();

    tr_.compute(s_total.pc, 300 + (total > 0 ? 1 : 0));
    if (failed) {
        ++rollbacks_;
        db_.abort(txn);
    } else {
        db_.commit(txn);
    }
}

} // namespace tpcc
} // namespace tlsim
