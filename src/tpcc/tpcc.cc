#include "tpcc/tpcc.h"

#include <algorithm>

#include "base/log.h"
#include "core/site.h"

namespace tlsim {
namespace tpcc {

using db::Bytes;
using db::BytesView;
using db::KeyBuilder;

const char *
txnTypeName(TxnType t)
{
    switch (t) {
      case TxnType::NewOrder: return "NEW ORDER";
      case TxnType::NewOrder150: return "NEW ORDER 150";
      case TxnType::Delivery: return "DELIVERY";
      case TxnType::DeliveryOuter: return "DELIVERY OUTER";
      case TxnType::StockLevel: return "STOCK LEVEL";
      case TxnType::Payment: return "PAYMENT";
      case TxnType::OrderStatus: return "ORDER STATUS";
    }
    return "?";
}

const std::vector<TxnType> &
allBenchmarks()
{
    static const std::vector<TxnType> v = {
        TxnType::NewOrder,  TxnType::NewOrder150,
        TxnType::Delivery,  TxnType::DeliveryOuter,
        TxnType::StockLevel, TxnType::Payment,
        TxnType::OrderStatus,
    };
    return v;
}

// --------------------------------------------------------------------
// Keys
// --------------------------------------------------------------------

Bytes
TpccDb::kWarehouse()
{
    return KeyBuilder().u32(1).bytes();
}

Bytes
TpccDb::kDistrict(std::uint32_t d)
{
    return KeyBuilder().u32(d).bytes();
}

Bytes
TpccDb::kCustomer(std::uint32_t d, std::uint32_t c)
{
    return KeyBuilder().u32(d).u32(c).bytes();
}

Bytes
TpccDb::kCustomerName(std::uint32_t d, BytesView last, std::uint32_t c)
{
    return KeyBuilder().u32(d).str(last, 16).u32(c).bytes();
}

Bytes
TpccDb::kOrder(std::uint32_t d, std::uint32_t o)
{
    return KeyBuilder().u32(d).u32(o).bytes();
}

Bytes
TpccDb::kOrderCust(std::uint32_t d, std::uint32_t c, std::uint32_t o)
{
    return KeyBuilder().u32(d).u32(c).u32Desc(o).bytes();
}

Bytes
TpccDb::kOrderLine(std::uint32_t d, std::uint32_t o, std::uint32_t ol)
{
    return KeyBuilder().u32(d).u32(o).u32(ol).bytes();
}

Bytes
TpccDb::kNewOrder(std::uint32_t d, std::uint32_t o)
{
    return KeyBuilder().u32(d).u32(o).bytes();
}

Bytes
TpccDb::kItem(std::uint32_t i)
{
    return KeyBuilder().u32(i).bytes();
}

Bytes
TpccDb::kStock(std::uint32_t i)
{
    return KeyBuilder().u32(i).bytes();
}

Bytes
TpccDb::kHistory(std::uint64_t seq)
{
    return KeyBuilder().u64(seq).bytes();
}

// --------------------------------------------------------------------
// Construction and initial load
// --------------------------------------------------------------------

TpccDb::TpccDb(const TpccConfig &cfg, db::DbConfig db_cfg,
               Tracer &tracer)
    : cfg_(cfg), db_(std::move(db_cfg), tracer), tr_(tracer)
{
    t_.warehouse = db_.createTable("WAREHOUSE");
    t_.district = db_.createTable("DISTRICT");
    t_.customer = db_.createTable("CUSTOMER");
    t_.customerName = db_.createTable("CUSTOMER_NAME");
    t_.history = db_.createTable("HISTORY");
    t_.newOrder = db_.createTable("NEW_ORDER");
    t_.order = db_.createTable("ORDER");
    t_.orderCust = db_.createTable("ORDER_CUST");
    t_.orderLine = db_.createTable("ORDER_LINE");
    t_.item = db_.createTable("ITEM");
    t_.stock = db_.createTable("STOCK");
    stockSeenStamps_.assign(cfg_.items + 1, 0);
}

namespace {

void
fillString(Rng &rng, char *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<char>('a' + rng.uniform(0, 25));
}

} // namespace

void
TpccDb::load(std::uint64_t seed)
{
    Rng rng(seed);

    // ITEM
    for (std::uint32_t i = 1; i <= cfg_.items; ++i) {
        ItemRow r{};
        r.i_id = i;
        r.im_id = static_cast<std::uint32_t>(rng.uniform(1, 10000));
        fillString(rng, r.name, sizeof(r.name));
        r.price = static_cast<double>(rng.uniform(100, 10000)) / 100.0;
        fillString(rng, r.data, sizeof(r.data));
        db_.table(t_.item).put(kItem(i), toBytes(r), false);
    }

    // WAREHOUSE (single warehouse, as in the paper)
    {
        WarehouseRow r{};
        r.w_id = 1;
        fillString(rng, r.name, sizeof(r.name));
        fillString(rng, r.street_1, sizeof(r.street_1));
        fillString(rng, r.city, sizeof(r.city));
        r.tax = static_cast<double>(rng.uniform(0, 2000)) / 10000.0;
        r.ytd = 300000.0;
        db_.table(t_.warehouse).put(kWarehouse(), toBytes(r), false);
    }

    // STOCK
    for (std::uint32_t i = 1; i <= cfg_.items; ++i) {
        StockRow r{};
        r.i_id = i;
        r.quantity =
            static_cast<std::int32_t>(rng.uniform(10, 100));
        for (auto &dst : r.dist)
            fillString(rng, dst, sizeof(dst));
        fillString(rng, r.data, sizeof(r.data));
        db_.table(t_.stock).put(kStock(i), toBytes(r), false);
    }

    // DISTRICT / CUSTOMER / ORDER history
    for (std::uint32_t d = 1; d <= cfg_.districts; ++d) {
        DistrictRow dr{};
        dr.d_id = d;
        dr.w_id = 1;
        fillString(rng, dr.name, sizeof(dr.name));
        fillString(rng, dr.city, sizeof(dr.city));
        dr.tax = static_cast<double>(rng.uniform(0, 2000)) / 10000.0;
        dr.ytd = 30000.0;
        dr.next_o_id = cfg_.ordersPerDistrict + 1;
        db_.table(t_.district).put(kDistrict(d), toBytes(dr), false);

        for (std::uint32_t c = 1; c <= cfg_.customersPerDistrict; ++c) {
            CustomerRow cr{};
            cr.c_id = c;
            cr.d_id = d;
            cr.w_id = 1;
            // Customers 1..1000 cover every syllable name; the rest
            // draw uniformly so a by-name lookup matches ~3 customers
            // (the NURand concentration lives in the *queries*).
            std::string last =
                c <= 1000
                    ? lastName(c - 1)
                    : lastName(static_cast<unsigned>(rng.uniform(
                          0, std::min(cfg_.customersPerDistrict,
                                      1000u) -
                                 1)));
            std::snprintf(cr.last, sizeof(cr.last), "%s", last.c_str());
            fillString(rng, cr.first, sizeof(cr.first));
            cr.middle[0] = 'O';
            cr.middle[1] = 'E';
            bool bad_credit = rng.uniform(1, 100) <= 10;
            cr.credit[0] = bad_credit ? 'B' : 'G';
            cr.credit[1] = 'C';
            cr.credit_lim = 50000.0;
            cr.discount =
                static_cast<double>(rng.uniform(0, 5000)) / 10000.0;
            cr.balance = -10.0;
            cr.ytd_payment = 10.0;
            cr.payment_cnt = 1;
            fillString(rng, cr.data, sizeof(cr.data));
            db_.table(t_.customer).put(kCustomer(d, c), toBytes(cr),
                                       false);
            CustomerNameEntry ne{};
            std::memcpy(ne.first, cr.first, sizeof(ne.first));
            ne.c_id = c;
            db_.table(t_.customerName)
                .put(kCustomerName(d, last, c), toBytes(ne), false);

            HistoryRow hr{};
            hr.c_id = c;
            hr.c_d_id = d;
            hr.d_id = d;
            hr.amount = 10.0;
            db_.table(t_.history).put(kHistory(++historySeq_),
                                      toBytes(hr), false);
        }

        // Orders over a random permutation of customers.
        std::vector<std::uint32_t> perm(cfg_.customersPerDistrict);
        for (std::uint32_t i = 0; i < perm.size(); ++i)
            perm[i] = i + 1;
        for (std::size_t i = perm.size(); i-- > 1;)
            std::swap(perm[i],
                      perm[static_cast<std::size_t>(
                          rng.uniform(0, static_cast<std::int64_t>(i)))]);

        for (std::uint32_t o = 1; o <= cfg_.ordersPerDistrict; ++o) {
            OrderRow orow{};
            orow.o_id = o;
            orow.c_id = perm[(o - 1) % perm.size()];
            orow.d_id = d;
            orow.entry_d = o;
            bool delivered = o < cfg_.firstNewOrder;
            orow.carrier_id =
                delivered
                    ? static_cast<std::uint32_t>(rng.uniform(1, 10))
                    : 0;
            orow.ol_cnt =
                static_cast<std::uint32_t>(rng.uniform(5, 15));
            orow.all_local = 1;
            db_.table(t_.order).put(kOrder(d, o), toBytes(orow), false);
            std::uint32_t oid = o;
            db_.table(t_.orderCust)
                .put(kOrderCust(d, orow.c_id, o),
                     Bytes(reinterpret_cast<const char *>(&oid), 4),
                     false);
            for (std::uint32_t ol = 1; ol <= orow.ol_cnt; ++ol) {
                OrderLineRow lr{};
                lr.o_id = o;
                lr.d_id = d;
                lr.ol_number = ol;
                lr.i_id = static_cast<std::uint32_t>(
                    rng.uniform(1, cfg_.items));
                lr.supply_w_id = 1;
                lr.delivery_d = delivered ? orow.entry_d : 0;
                lr.quantity = 5;
                lr.amount =
                    delivered ? 0.0
                              : static_cast<double>(
                                    rng.uniform(1, 999999)) /
                                    100.0;
                fillString(rng, lr.dist_info, sizeof(lr.dist_info));
                db_.table(t_.orderLine)
                    .put(kOrderLine(d, o, ol), toBytes(lr), false);
            }
            if (!delivered) {
                NewOrderRow nr{o, d};
                db_.table(t_.newOrder)
                    .put(kNewOrder(d, o), toBytes(nr), false);
            }
        }
    }
}

// --------------------------------------------------------------------
// Dispatch and summaries
// --------------------------------------------------------------------

void
TpccDb::runTransaction(TxnType type, InputGen &gen,
                       std::uint32_t stock_level_district)
{
    switch (type) {
      case TxnType::NewOrder:
        txnNewOrder(gen.newOrder(false));
        break;
      case TxnType::NewOrder150:
        txnNewOrder(gen.newOrder(true));
        break;
      case TxnType::Delivery:
        txnDelivery(gen.delivery(), false);
        break;
      case TxnType::DeliveryOuter:
        txnDelivery(gen.delivery(), true);
        break;
      case TxnType::StockLevel:
        txnStockLevel(gen.stockLevel(stock_level_district));
        break;
      case TxnType::Payment:
        txnPayment(gen.payment());
        break;
      case TxnType::OrderStatus:
        txnOrderStatus(gen.orderStatus());
        break;
    }
}

std::uint32_t
TpccDb::districtNextOrderId(std::uint32_t d_id)
{
    Bytes buf;
    if (!db_.table(t_.district).get(kDistrict(d_id), &buf))
        panic("district %u missing", d_id);
    return fromBytes<DistrictRow>(buf).next_o_id;
}

std::uint64_t
TpccDb::orderCount() const
{
    return const_cast<TpccDb *>(this)->db_.table(t_.order).size();
}

std::uint64_t
TpccDb::newOrderCount() const
{
    return const_cast<TpccDb *>(this)->db_.table(t_.newOrder).size();
}

double
TpccDb::customerBalance(std::uint32_t d_id, std::uint32_t c_id)
{
    Bytes buf;
    if (!db_.table(t_.customer).get(kCustomer(d_id, c_id), &buf))
        panic("customer (%u,%u) missing", d_id, c_id);
    return fromBytes<CustomerRow>(buf).balance;
}

void
TpccDb::checkConsistency()
{
    // TPC-C 3.3.2.1/2: for every district, d_next_o_id - 1 equals the
    // maximum O_ID in ORDER and (when present) in NEW_ORDER, and the
    // NEW_ORDER ids for a district are contiguous.
    for (std::uint32_t d = 1; d <= cfg_.districts; ++d) {
        std::uint32_t next = districtNextOrderId(d);

        std::uint32_t max_o = 0;
        auto cur = db_.cursor(t_.order);
        for (bool ok = cur.seek(kOrder(d, 0)); ok; ok = cur.next()) {
            OrderRow r = fromBytes<OrderRow>(cur.value());
            if (r.d_id != d)
                break;
            max_o = std::max(max_o, r.o_id);
        }
        if (max_o + 1 != next)
            panic("consistency: district %u next_o_id %u vs max order "
                  "%u",
                  d, next, max_o);

        std::uint32_t no_min = ~0u, no_max = 0, no_count = 0;
        auto ncur = db_.cursor(t_.newOrder);
        for (bool ok = ncur.seek(kNewOrder(d, 0)); ok;
             ok = ncur.next()) {
            NewOrderRow r = fromBytes<NewOrderRow>(ncur.value());
            if (r.d_id != d)
                break;
            no_min = std::min(no_min, r.o_id);
            no_max = std::max(no_max, r.o_id);
            ++no_count;
        }
        if (no_count > 0) {
            if (no_max != max_o)
                panic("consistency: district %u new-order max %u vs "
                      "order max %u",
                      d, no_max, max_o);
            if (no_max - no_min + 1 != no_count)
                panic("consistency: district %u new-order ids not "
                      "contiguous",
                      d);
        }
    }
}

// --------------------------------------------------------------------
// Capture driver
// --------------------------------------------------------------------

WorkloadTrace
captureBenchmark(TxnType type, const CaptureOptions &opts)
{
    Tracer::Options topts;
    topts.parallelMode = opts.parallelMode;
    topts.spawnOverheadInsts = opts.spawnOverheadInsts;
    Tracer tracer(topts);

    db::DbConfig dbc;
    dbc.tuned = opts.tlsBuild;
    TpccDb tdb(opts.scale, dbc, tracer);
    tdb.load(opts.loadSeed);

    InputGen gen(opts.scale, opts.inputSeed);
    for (unsigned i = 0; i < opts.txns; ++i) {
        std::uint32_t sld = (i % opts.scale.districts) + 1;
        tracer.txnBegin();
        tdb.runTransaction(type, gen, sld);
        tracer.txnEnd();
    }
    return tracer.takeWorkload();
}

} // namespace tpcc
} // namespace tlsim
