#include "db/db.h"

#include "base/log.h"
#include "core/site.h"
#include "db/costs.h"

namespace tlsim {
namespace db {

Database::Database(DbConfig cfg, Tracer &tracer)
    : cfg_(std::move(cfg)), tr_(tracer), pool_(cfg_, tracer),
      locks_(cfg_, tracer), log_(cfg_, tracer)
{
}

TableId
Database::createTable(std::string name)
{
    tables_.push_back(std::make_unique<BTree>(pool_, tr_, cfg_,
                                              std::move(name)));
    return static_cast<TableId>(tables_.size() - 1);
}

void
Database::apiCost(Pc pc, unsigned key_bytes, unsigned val_bytes)
{
    tr_.compute(pc, static_cast<unsigned>(
                        (cost::kApiCall +
                         key_bytes * cost::kKeyMarshalPerByte +
                         val_bytes * cost::kValMarshalPerByte) *
                        cfg_.costScale));
}

Txn
Database::begin()
{
    static const Site s_begin("txn.begin");
    Txn txn;
    txn.id_ = nextTxn_++;
    txn.active_ = true;
    tr_.compute(s_begin.pc, cost::kTxnBegin);
    log_.logRecord(24);
    logical_.append({LogicalRecord::Kind::Begin, txn.id_, 0, {}, {}, {}});
    return txn;
}

void
Database::commit(Txn &txn)
{
    static const Site s_commit("txn.commit");
    if (!txn.active_)
        panic("commit of inactive transaction %llu",
              static_cast<unsigned long long>(txn.id_));
    log_.txnCommit();
    logical_.append(
        {LogicalRecord::Kind::Commit, txn.id_, 0, {}, {}, {}});
    for (auto it = txn.locks_.rbegin(); it != txn.locks_.rend(); ++it)
        locks_.unlock(*it);
    tr_.compute(s_commit.pc, 200 + 30 * static_cast<unsigned>(
                                           txn.locks_.size()));
    txn.locks_.clear();
    txn.undo_.clear();
    txn.active_ = false;
}

void
Database::abort(Txn &txn)
{
    static const Site s_abort("txn.abort");
    if (!txn.active_)
        panic("abort of inactive transaction %llu",
              static_cast<unsigned long long>(txn.id_));
    // Roll back in reverse order through the B-trees.
    for (auto it = txn.undo_.rbegin(); it != txn.undo_.rend(); ++it) {
        BTree &t = *tables_.at(it->table);
        switch (it->kind) {
          case Txn::UndoKind::Insert:
            t.erase(it->key);
            break;
          case Txn::UndoKind::Update:
            t.put(it->key, it->oldVal, true);
            break;
          case Txn::UndoKind::Delete:
            t.put(it->key, it->oldVal, false);
            break;
        }
        log_.logRecord(48);
    }
    tr_.compute(s_abort.pc, cost::kTxnCommit);
    logical_.append(
        {LogicalRecord::Kind::Abort, txn.id_, 0, {}, {}, {}});
    for (auto it = txn.locks_.rbegin(); it != txn.locks_.rend(); ++it)
        locks_.unlock(*it);
    txn.locks_.clear();
    txn.undo_.clear();
    txn.active_ = false;
}

void
Database::traceTxnBookkeeping(Txn &txn, bool write_op)
{
    // In the original build every operation appends to the
    // transaction's shared lock list and (for writes) undo chain —
    // the per-operation read-modify-writes that make the untuned
    // database serialize under TLS. The tuned build batches this
    // state per epoch and links it into the transaction once, at
    // epoch end (LogManager::publishEpochRecords), so nothing is
    // traced here.
    if (cfg_.tuned)
        return;
    static const Site s_txn("txn.bookkeeping");
    tr_.load(s_txn.pc, &txn.locks_, 8);
    tr_.store(s_txn.pc, &txn.locks_, 8);
    if (write_op) {
        tr_.load(s_txn.pc, &txn.undo_, 8);
        tr_.store(s_txn.pc, &txn.undo_, 8);
    }
    tr_.compute(s_txn.pc, 40);
}

bool
Database::get(Txn &txn, TableId t, BytesView key, Bytes *val)
{
    static const Site s_get("db.get");
    apiCost(s_get.pc, static_cast<unsigned>(key.size()), 0);
    traceTxnBookkeeping(txn, false);
    ++epochOps_;
    txn.locks_.push_back(
        locks_.lock(t, key, LockMode::Shared));
    return tables_.at(t)->get(key, val);
}

void
Database::put(Txn &txn, TableId t, BytesView key, BytesView val)
{
    static const Site s_put("db.put");
    apiCost(s_put.pc, static_cast<unsigned>(key.size()),
            static_cast<unsigned>(val.size()));
    traceTxnBookkeeping(txn, true);
    ++epochOps_;
    txn.locks_.push_back(
        locks_.lock(t, key, LockMode::Exclusive));

    BTree &tree = *tables_.at(t);
    Bytes old;
    if (tree.get(key, &old)) {
        logical_.append({LogicalRecord::Kind::Update, txn.id_, t,
                         Bytes(key), old, Bytes(val)});
        txn.undo_.push_back(
            {Txn::UndoKind::Update, t, Bytes(key), std::move(old)});
    } else {
        logical_.append({LogicalRecord::Kind::Insert, txn.id_, t,
                         Bytes(key), {}, Bytes(val)});
        txn.undo_.push_back({Txn::UndoKind::Insert, t, Bytes(key), {}});
    }
    tree.put(key, val, true);
    log_.logRecord(static_cast<unsigned>(key.size() + val.size()) + 24);
}

bool
Database::insert(Txn &txn, TableId t, BytesView key, BytesView val)
{
    static const Site s_ins("db.insert");
    apiCost(s_ins.pc, static_cast<unsigned>(key.size()),
            static_cast<unsigned>(val.size()));
    traceTxnBookkeeping(txn, true);
    ++epochOps_;
    txn.locks_.push_back(
        locks_.lock(t, key, LockMode::Exclusive));

    BTree &tree = *tables_.at(t);
    if (!tree.put(key, val, false))
        return false;
    logical_.append({LogicalRecord::Kind::Insert, txn.id_, t,
                     Bytes(key), {}, Bytes(val)});
    txn.undo_.push_back({Txn::UndoKind::Insert, t, Bytes(key), {}});
    log_.logRecord(static_cast<unsigned>(key.size() + val.size()) + 24);
    return true;
}

bool
Database::erase(Txn &txn, TableId t, BytesView key)
{
    static const Site s_del("db.erase");
    apiCost(s_del.pc, static_cast<unsigned>(key.size()), 0);
    traceTxnBookkeeping(txn, true);
    ++epochOps_;
    txn.locks_.push_back(
        locks_.lock(t, key, LockMode::Exclusive));

    BTree &tree = *tables_.at(t);
    Bytes old;
    if (!tree.get(key, &old))
        return false;
    tree.erase(key);
    logical_.append({LogicalRecord::Kind::Delete, txn.id_, t,
                     Bytes(key), old, {}});
    txn.undo_.push_back(
        {Txn::UndoKind::Delete, t, Bytes(key), std::move(old)});
    log_.logRecord(static_cast<unsigned>(key.size()) + 24);
    return true;
}

} // namespace db
} // namespace tlsim
