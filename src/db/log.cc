#include "db/log.h"

#include "core/site.h"
#include "db/costs.h"

namespace tlsim {
namespace db {

LogManager::LogManager(const DbConfig &cfg, Tracer &tracer)
    : cfg_(cfg), tr_(tracer), buffer_(kGlobalBufBytes)
{
    epochBufs_.resize(kEpochBufs);
    for (auto &b : epochBufs_)
        b.resize(kEpochBufBytes);
}

void
LogManager::logRecord(unsigned bytes)
{
    if (!cfg_.traceLog)
        return;
    static const Site s_lsn("log.put.lsn_alloc");
    static const Site s_tail("log.put.tail");
    static const Site s_copy("log.put.copy");
    static const Site s_local("log.put.epoch_local");

    unsigned insts = cost::kLogRecordBase + bytes * cost::kLogPerByte;

    if (cfg_.tuned) {
        // Private per-epoch buffer: no shared state touched here.
        if (epochOff_ + bytes + 16 > kEpochBufBytes)
            epochOff_ = 0; // wrap within the private buffer
        auto *dst = epochBufs_[curBuf_].data() + epochOff_;
        tr_.store(s_local.pc, dst, std::min(bytes + 16u, 64u));
        epochOff_ += bytes + 16;
        ++epochRecords_;
        tr_.compute(s_local.pc, insts);
        if (epochRecords_ >= kPublishBatch)
            publishEpochRecords();
        return;
    }

    // Untuned log_put: allocate an LSN from the global counter and
    // bump the shared tail — every pair of concurrent epochs conflicts
    // here.
    tr_.load(s_lsn.pc, &nextLsn_, sizeof(nextLsn_));
    nextLsn_ += 1;
    tr_.store(s_lsn.pc, &nextLsn_, sizeof(nextLsn_));

    tr_.load(s_tail.pc, &tailOff_, sizeof(tailOff_));
    std::uint64_t off = tailOff_ % (kGlobalBufBytes - bytes - 16);
    tailOff_ += bytes + 16;
    tr_.store(s_tail.pc, &tailOff_, sizeof(tailOff_));

    tr_.store(s_copy.pc, buffer_.data() + off,
              std::min(bytes + 16u, 64u));
    tr_.compute(s_copy.pc, insts);
}

void
LogManager::beginEpochBuffer()
{
    if (!cfg_.tuned)
        return;
    curBuf_ = (curBuf_ + 1) % kEpochBufs;
    epochOff_ = 0;
    epochRecords_ = 0;
}

void
LogManager::linkEpochChain()
{
    if (!cfg_.tuned || !cfg_.traceLog)
        return;
    static const Site s_chain("log.publish.txn_chain");
    // Linking a batch into the transaction's undo/LSN chain reads the
    // previous batch's chain head: a true serial dependence between
    // concurrent epochs that tuning cannot remove. A violation here
    // rewinds to the sub-thread containing the previous link with
    // sub-thread support, but the entire (possibly half-million-
    // instruction) thread without — the paper's DELIVERY OUTER
    // behaviour.
    tr_.load(s_chain.pc, &chainHead_, sizeof(chainHead_));
    chainHead_ += 1;
    tr_.store(s_chain.pc, &chainHead_, sizeof(chainHead_));
    tr_.compute(s_chain.pc, 80);
}

void
LogManager::publishEpochRecords()
{
    if (!cfg_.tuned || !cfg_.traceLog || epochRecords_ == 0)
        return;
    static const Site s_pub("log.publish_epoch");

    linkEpochChain();

    // Escaped: grab the log latch once per epoch, assign the epoch's
    // LSN range, and link the private buffer into the global order.
    EscapedRegion esc(tr_, s_pub.pc);
    tr_.latchAcquire(s_pub.pc, namedLatch(kLatchLog));
    tr_.load(s_pub.pc, &nextLsn_, sizeof(nextLsn_));
    nextLsn_ += epochRecords_;
    tr_.store(s_pub.pc, &nextLsn_, sizeof(nextLsn_));
    tr_.load(s_pub.pc, &tailOff_, sizeof(tailOff_));
    tailOff_ += epochOff_;
    tr_.store(s_pub.pc, &tailOff_, sizeof(tailOff_));
    tr_.compute(s_pub.pc, 150 + epochRecords_ * 20);
    tr_.latchRelease(s_pub.pc, namedLatch(kLatchLog));
    epochRecords_ = 0;
    epochOff_ = 0;
}

void
LogManager::txnCommit()
{
    if (!cfg_.traceLog)
        return;
    static const Site s_commit("log.txn_commit");
    logRecord(32);
    tr_.compute(s_commit.pc, cost::kTxnCommit);
}

} // namespace db
} // namespace tlsim
