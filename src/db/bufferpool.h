/**
 * @file
 * The buffer pool: owns every page frame (the workload is memory
 * resident, as in the paper: a buffer pool large enough that reads
 * never go to disk). fetch() models BerkeleyDB's memp_fget — a hash
 * probe, frame pinning, and (untuned) global LRU maintenance whose
 * shared head pointer is one of the cross-epoch dependences the
 * paper's iterative tuning removes.
 */

#ifndef DB_BUFFERPOOL_H
#define DB_BUFFERPOOL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tracer.h"
#include "db/dbtypes.h"
#include "db/page.h"

namespace tlsim {
namespace db {

/** All page frames plus the traced metadata around them. */
class BufferPool
{
  public:
    BufferPool(const DbConfig &cfg, Tracer &tracer);

    /** Allocate and format a fresh page. */
    PageId allocPage(std::uint8_t level);

    /**
     * Pin a page and return a view of its frame. `dependent` marks the
     * probe as consuming a just-loaded pointer (B-tree descent).
     */
    Page fetch(PageId pid, bool dependent = false);

    /** Unpin (cost accounting only; frames never leave memory). */
    void unpin(PageId pid);

    /** Frame address without trace side effects (for assertions). */
    void *frameAddr(PageId pid) const;

    std::uint64_t pagesAllocated() const { return nextPage_ - 1; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint8_t[]> mem;
    };

    static constexpr unsigned kPagesPerChunk = 1024;

    const DbConfig &cfg_;
    Tracer &tr_;

    std::vector<Chunk> chunks_;
    PageId nextPage_ = 1; ///< page 0 is the invalid page

    /** Modelled memp hash buckets (traced shared metadata). */
    std::vector<std::uint32_t> buckets_;
    /** Modelled global LRU head (traced hot spot when !tuned). */
    std::uint64_t lruHead_ = 0;
};

} // namespace db
} // namespace tlsim

#endif // DB_BUFFERPOOL_H
