/**
 * @file
 * Synthetic instruction-cost constants for database code regions.
 *
 * The paper's workload runs on BerkeleyDB compiled for a MIPS R10000;
 * we execute minidb natively and charge each code region a calibrated
 * dynamic-instruction cost instead. The constants are set so the
 * captured TPC-C traces land in the paper's Table 2 ranges (tens of
 * thousands of dynamic instructions per speculative thread) — i.e.
 * they model the full BerkeleyDB call stack (cursor machinery,
 * marshalling, comparisons), not minidb's raw C++ cost.
 */

#ifndef DB_COSTS_H
#define DB_COSTS_H

namespace tlsim {
namespace db {
namespace cost {

// Buffer pool
inline constexpr unsigned kFetchPage = 180;    ///< hash+pin+bookkeeping
inline constexpr unsigned kUnpinPage = 60;

// B-tree
inline constexpr unsigned kCursorSetup = 1000; ///< db->cursor + c_init
inline constexpr unsigned kSearchStep = 60;    ///< one binary-search probe
inline constexpr unsigned kDescendLevel = 550; ///< per-level overhead
inline constexpr unsigned kLeafOp = 1400;      ///< slot insert/remove path
inline constexpr unsigned kSplit = 8000;       ///< page split + parent fix
inline constexpr unsigned kKeyMarshalPerByte = 6;
inline constexpr unsigned kValMarshalPerByte = 4;

// Locking / logging / txn (escaped work in the tuned build)
inline constexpr unsigned kLockOp = 1500;      ///< lock_get/lock_put path
inline constexpr unsigned kLogRecordBase = 1200; ///< log_put fixed cost
inline constexpr unsigned kLogPerByte = 3;
inline constexpr unsigned kTxnBegin = 1800;
inline constexpr unsigned kTxnCommit = 3500;

// Generic call overhead charged by the public Database entry points
// (BerkeleyDB's API + cursor layers).
inline constexpr unsigned kApiCall = 2500;

} // namespace cost
} // namespace db
} // namespace tlsim

#endif // DB_COSTS_H
