/**
 * @file
 * B+-tree over slotted pages. Internal nodes hold (separator key,
 * child page id) pairs with the convention that a child covers keys
 * >= its separator and < the next separator; the first separator of
 * every internal node is the empty key. Leaves are chained through
 * rightSib for range scans. Deletion is lazy (no merging), as in
 * BerkeleyDB.
 *
 * Every access to page memory is traced with its real frame address,
 * so the B-tree's genuine cross-epoch dependences — leaf headers and
 * slot arrays under concurrent inserts, page latch words in the
 * untuned build, the page allocator during splits — appear in the
 * captured traces exactly where the paper's evaluation finds them.
 */

#ifndef DB_BTREE_H
#define DB_BTREE_H

#include <cstdint>
#include <string>

#include "core/tracer.h"
#include "db/bufferpool.h"
#include "db/dbtypes.h"
#include "db/page.h"

namespace tlsim {
namespace db {

/** One B+-tree index. */
class BTree
{
  public:
    BTree(BufferPool &pool, Tracer &tracer, const DbConfig &cfg,
          std::string name);

    /** Point lookup; traces the full descent. */
    bool get(BytesView key, Bytes *val);

    /**
     * Insert or (if `allow_update` and the key exists) replace.
     * Returns false iff the key existed and updates are not allowed.
     */
    bool put(BytesView key, BytesView val, bool allow_update = true);

    /** Remove a key; false if absent. */
    bool erase(BytesView key);

    /** Forward scan positioned by seek(). */
    class Cursor
    {
      public:
        explicit Cursor(BTree &tree) : tree_(tree) {}

        /** Position at the first record with key >= `key`. */
        bool seek(BytesView key);
        bool valid() const { return valid_; }
        BytesView key() const { return key_; }
        BytesView value() const { return val_; }
        /** Advance; false at end of tree. */
        bool next();

      private:
        void loadCurrent();
        bool skipToNonEmpty();

        BTree &tree_;
        PageId page_ = kInvalidPage;
        unsigned idx_ = 0;
        bool valid_ = false;
        Bytes key_, val_;
    };

    Cursor cursor() { return Cursor(*this); }

    std::uint64_t size() const { return count_; }
    const std::string &name() const { return name_; }
    unsigned height() const;

    /** Walk the whole tree checking structural invariants (tests). */
    void checkInvariants() const;

  private:
    friend class Cursor;

    /** Traced descent from the root to the leaf covering `key`. */
    PageId descendTraced(BytesView key);

    /** Traced binary search inside a node. */
    std::pair<unsigned, bool> searchTraced(Page &p, BytesView key);

    /** Child slot covering `key` in internal node `p`. */
    unsigned routeSlot(Page &p, BytesView key);

    /** Page latch modelling around node access. */
    void latchNode(Page &p, bool write);
    void unlatchNode(Page &p);

    struct SplitResult
    {
        bool split = false;
        Bytes upKey;
        PageId upChild = kInvalidPage;
    };

    SplitResult insertRec(PageId pid, BytesView key, BytesView val,
                          bool allow_update, bool *updated,
                          bool *inserted);
    SplitResult splitAndInsert(Page &p, PageId pid, unsigned idx,
                               BytesView key, BytesView val);
    void traceCellWrite(Page &p, unsigned idx, Pc pc);

    BufferPool &pool_;
    Tracer &tr_;
    const DbConfig &cfg_;
    std::string name_;
    PageId root_;
    std::uint64_t count_ = 0;
};

} // namespace db
} // namespace tlsim

#endif // DB_BTREE_H
