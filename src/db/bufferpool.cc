#include "db/bufferpool.h"

#include "base/log.h"
#include "core/site.h"
#include "db/costs.h"

namespace tlsim {
namespace db {

BufferPool::BufferPool(const DbConfig &cfg, Tracer &tracer)
    : cfg_(cfg), tr_(tracer), buckets_(4096, 0)
{
}

void *
BufferPool::frameAddr(PageId pid) const
{
    if (pid == kInvalidPage || pid >= nextPage_)
        panic("buffer pool: bad page id %u", pid);
    unsigned idx = pid - 1;
    return chunks_[idx / kPagesPerChunk].mem.get() +
           static_cast<std::size_t>(idx % kPagesPerChunk) * kPageSize;
}

PageId
BufferPool::allocPage(std::uint8_t level)
{
    static const Site s_alloc("bufpool.alloc_page");
    if (nextPage_ - 1 >= cfg_.maxPages)
        fatal("buffer pool exhausted (%u pages)", cfg_.maxPages);

    unsigned idx = nextPage_ - 1;
    if (idx / kPagesPerChunk >= chunks_.size()) {
        chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(
            static_cast<std::size_t>(kPagesPerChunk) * kPageSize)});
    }

    // The page-allocator counter is shared; splits running in
    // different epochs serialize on it. Tuned mode escapes the
    // allocation (it is isolation-unsafe work anyway).
    if (cfg_.tuned) {
        EscapedRegion esc(tr_, s_alloc.pc);
        tr_.latchAcquire(s_alloc.pc, namedLatch(kLatchPageAlloc));
        tr_.load(s_alloc.pc, &nextPage_, sizeof(nextPage_));
        tr_.store(s_alloc.pc, &nextPage_, sizeof(nextPage_));
        tr_.compute(s_alloc.pc, 60);
        tr_.latchRelease(s_alloc.pc, namedLatch(kLatchPageAlloc));
    } else {
        tr_.load(s_alloc.pc, &nextPage_, sizeof(nextPage_));
        tr_.store(s_alloc.pc, &nextPage_, sizeof(nextPage_));
        tr_.compute(s_alloc.pc, 60);
    }

    PageId pid = nextPage_++;
    Page::init(frameAddr(pid), pid, level);
    return pid;
}

Page
BufferPool::fetch(PageId pid, bool dependent)
{
    static const Site s_hash("bufpool.fetch.hash_probe");
    static const Site s_lru("bufpool.fetch.lru_update");

    // Hash-bucket probe (shared, read-mostly).
    unsigned h = pid & (buckets_.size() - 1);
    tr_.load(s_hash.pc, &buckets_[h], sizeof(buckets_[h]), dependent);
    tr_.compute(s_hash.pc, cost::kFetchPage);

    if (!cfg_.tuned) {
        // BerkeleyDB-style global LRU maintenance: every fetch stores
        // to the shared list head — a dependence between every pair of
        // concurrent epochs. The tuned build removes it.
        tr_.load(s_lru.pc, &lruHead_, sizeof(lruHead_));
        lruHead_ = pid;
        tr_.store(s_lru.pc, &lruHead_, sizeof(lruHead_));
        tr_.compute(s_lru.pc, 25);
    }

    return Page(frameAddr(pid));
}

void
BufferPool::unpin(PageId pid)
{
    static const Site s_unpin("bufpool.unpin");
    (void)pid;
    tr_.compute(s_unpin.pc, cost::kUnpinPage);
}

} // namespace db
} // namespace tlsim
