#include "db/lockmgr.h"

#include "core/site.h"
#include "db/costs.h"

namespace tlsim {
namespace db {

LockManager::LockManager(const DbConfig &cfg, Tracer &tracer)
    : cfg_(cfg), tr_(tracer), table_(8192)
{
}

std::uint32_t
LockManager::bucketOf(TableId table, BytesView key) const
{
    // FNV-1a over (table, key).
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ULL;
    };
    for (unsigned i = 0; i < 4; ++i)
        mix(static_cast<std::uint8_t>(table >> (8 * i)));
    for (char c : key)
        mix(static_cast<std::uint8_t>(c));
    return static_cast<std::uint32_t>(h & (table_.size() - 1));
}

std::uint32_t
LockManager::lock(TableId table, BytesView key, LockMode mode)
{
    ++locksTaken_;
    if (!cfg_.traceLocks)
        return bucketOf(table, key);
    static const Site s_lock("lockmgr.lock_get");
    (void)mode;

    std::uint32_t h = bucketOf(table, key);
    Bucket &b = table_[h];
    if (cfg_.tuned) {
        EscapedRegion esc(tr_, s_lock.pc);
        tr_.latchAcquire(s_lock.pc, namedLatch(kLatchLockTable) + 16 +
                                        (h & 255));
        tr_.load(s_lock.pc, &b, sizeof(b));
        b.holders += 1;
        tr_.store(s_lock.pc, &b, sizeof(b));
        tr_.compute(s_lock.pc, cost::kLockOp);
        tr_.latchRelease(s_lock.pc, namedLatch(kLatchLockTable) + 16 +
                                        (h & 255));
    } else {
        tr_.load(s_lock.pc, &b, sizeof(b));
        b.holders += 1;
        tr_.store(s_lock.pc, &b, sizeof(b));
        tr_.compute(s_lock.pc, cost::kLockOp);
    }
    return h;
}

void
LockManager::unlock(std::uint32_t handle)
{
    if (!cfg_.traceLocks)
        return;
    static const Site s_unlock("lockmgr.lock_put");
    Bucket &b = table_[handle];
    if (cfg_.tuned) {
        EscapedRegion esc(tr_, s_unlock.pc);
        tr_.latchAcquire(s_unlock.pc, namedLatch(kLatchLockTable) + 16 +
                                          (handle & 255));
        tr_.load(s_unlock.pc, &b, sizeof(b));
        if (b.holders > 0)
            b.holders -= 1;
        tr_.store(s_unlock.pc, &b, sizeof(b));
        tr_.compute(s_unlock.pc, cost::kLockOp / 2);
        tr_.latchRelease(s_unlock.pc, namedLatch(kLatchLockTable) + 16 +
                                          (handle & 255));
    } else {
        tr_.load(s_unlock.pc, &b, sizeof(b));
        if (b.holders > 0)
            b.holders -= 1;
        tr_.store(s_unlock.pc, &b, sizeof(b));
        tr_.compute(s_unlock.pc, cost::kLockOp / 2);
    }
}

} // namespace db
} // namespace tlsim
