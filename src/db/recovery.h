/**
 * @file
 * Logical write-ahead logging and recovery (ARIES-lite).
 *
 * LogManager models the *timing* of BerkeleyDB's log_put; this module
 * carries the logical payload: every record operation appends a
 * LogicalRecord with before/after images, transactions append
 * begin/commit/abort markers, and two recovery paths consume them:
 *
 *  - undo: after a crash, roll back every transaction that has a
 *    Begin but no Commit/Abort marker (loser transactions), newest
 *    record first — the database returns to transaction consistency;
 *  - redo: replaying the committed transactions' after-images onto a
 *    database restored from the initial load reproduces the exact
 *    final state (used as a property check in the tests).
 */

#ifndef DB_RECOVERY_H
#define DB_RECOVERY_H

#include <cstdint>
#include <vector>

#include "db/dbtypes.h"

namespace tlsim {
namespace db {

class Database;

/** One logical WAL record. */
struct LogicalRecord
{
    enum class Kind : std::uint8_t {
        Begin,
        Insert, ///< key did not exist; newVal inserted
        Update, ///< key existed with oldVal; replaced by newVal
        Delete, ///< key existed with oldVal; removed
        Commit,
        Abort,
    };

    Kind kind;
    TxnId txn;
    TableId table = 0;
    Bytes key;
    Bytes oldVal;
    Bytes newVal;
};

/** The logical log plus its recovery procedures. */
class LogicalLog
{
  public:
    void
    append(LogicalRecord rec)
    {
        if (enabled_)
            records_.push_back(std::move(rec));
    }

    /** Disable payload retention (long benchmark runs). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    const std::vector<LogicalRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

    /** Transaction ids with a Begin but no Commit/Abort marker. */
    std::vector<TxnId> loserTransactions() const;

    /**
     * Crash recovery: undo every loser transaction's effects, newest
     * first, directly against the database's B-trees, and append
     * Abort markers. Returns the number of transactions rolled back.
     */
    unsigned recover(Database &db);

    /**
     * Redo: apply every *committed* transaction's after-images to
     * `db` in log order (used to verify the log captures the
     * workload's full write set).
     */
    void redoCommitted(Database &db) const;

  private:
    bool enabled_ = true;
    std::vector<LogicalRecord> records_;
};

} // namespace db
} // namespace tlsim

#endif // DB_RECOVERY_H
