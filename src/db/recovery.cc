#include "db/recovery.h"

#include <algorithm>
#include <unordered_set>

#include "base/log.h"
#include "db/db.h"

namespace tlsim {
namespace db {

std::vector<TxnId>
LogicalLog::loserTransactions() const
{
    std::unordered_set<TxnId> open;
    for (const LogicalRecord &r : records_) {
        switch (r.kind) {
          case LogicalRecord::Kind::Begin:
            open.insert(r.txn);
            break;
          case LogicalRecord::Kind::Commit:
          case LogicalRecord::Kind::Abort:
            open.erase(r.txn);
            break;
          default:
            break;
        }
    }
    std::vector<TxnId> losers(open.begin(), open.end());
    std::sort(losers.begin(), losers.end());
    return losers;
}

unsigned
LogicalLog::recover(Database &db)
{
    std::vector<TxnId> loser_list = loserTransactions();
    std::unordered_set<TxnId> losers(loser_list.begin(),
                                     loser_list.end());
    if (losers.empty())
        return 0;

    // Undo pass: newest record first, loser transactions only.
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        const LogicalRecord &r = *it;
        if (!losers.count(r.txn))
            continue;
        BTree &tree = db.table(r.table);
        switch (r.kind) {
          case LogicalRecord::Kind::Insert:
            if (!tree.erase(r.key))
                panic("recovery: undo of insert found no record");
            break;
          case LogicalRecord::Kind::Update:
            if (!tree.put(r.key, r.oldVal, true))
                panic("recovery: undo of update failed");
            break;
          case LogicalRecord::Kind::Delete:
            if (!tree.put(r.key, r.oldVal, false))
                panic("recovery: undo of delete found the key present");
            break;
          default:
            break;
        }
    }

    // Close out the losers with Abort markers (idempotent recovery).
    for (TxnId t : loser_list)
        records_.push_back(
            {LogicalRecord::Kind::Abort, t, 0, {}, {}, {}});
    return static_cast<unsigned>(loser_list.size());
}

void
LogicalLog::redoCommitted(Database &db) const
{
    std::unordered_set<TxnId> committed;
    for (const LogicalRecord &r : records_)
        if (r.kind == LogicalRecord::Kind::Commit)
            committed.insert(r.txn);

    for (const LogicalRecord &r : records_) {
        if (!committed.count(r.txn))
            continue;
        switch (r.kind) {
          case LogicalRecord::Kind::Insert:
          case LogicalRecord::Kind::Update:
            db.table(r.table).put(r.key, r.newVal, true);
            break;
          case LogicalRecord::Kind::Delete:
            db.table(r.table).erase(r.key);
            break;
          default:
            break;
        }
    }
}

} // namespace db
} // namespace tlsim
