/**
 * @file
 * Order-preserving key encoding: big-endian integer fields and padded
 * strings concatenate into byte strings whose memcmp order matches the
 * composite field order (the usual B-tree key trick).
 */

#ifndef DB_KEYS_H
#define DB_KEYS_H

#include <cstdint>
#include <string_view>

#include "db/dbtypes.h"

namespace tlsim {
namespace db {

/** Builds composite keys field by field. */
class KeyBuilder
{
  public:
    KeyBuilder &
    u8(std::uint8_t v)
    {
        bytes_.push_back(static_cast<char>(v));
        return *this;
    }

    KeyBuilder &
    u16(std::uint16_t v)
    {
        return u8(static_cast<std::uint8_t>(v >> 8))
            .u8(static_cast<std::uint8_t>(v));
    }

    KeyBuilder &
    u32(std::uint32_t v)
    {
        return u16(static_cast<std::uint16_t>(v >> 16))
            .u16(static_cast<std::uint16_t>(v));
    }

    KeyBuilder &
    u64(std::uint64_t v)
    {
        return u32(static_cast<std::uint32_t>(v >> 32))
            .u32(static_cast<std::uint32_t>(v));
    }

    /**
     * Descending-order u32: encodes ~v so larger values sort first
     * (used for "latest order per customer" lookups).
     */
    KeyBuilder &
    u32Desc(std::uint32_t v)
    {
        return u32(~v);
    }

    /** Fixed-width string field, NUL padded / truncated to `width`. */
    KeyBuilder &
    str(std::string_view s, std::size_t width)
    {
        for (std::size_t i = 0; i < width; ++i)
            bytes_.push_back(i < s.size() ? s[i] : '\0');
        return *this;
    }

    const Bytes &bytes() const { return bytes_; }
    operator BytesView() const { return bytes_; }

  private:
    Bytes bytes_;
};

} // namespace db
} // namespace tlsim

#endif // DB_KEYS_H
