/**
 * @file
 * The minidb public API: tables (each a B+-tree), transactions with
 * undo-based abort, row locking, and write-ahead logging — the
 * BerkeleyDB-shaped surface the TPC-C transactions are written
 * against. All operations are traced when the Tracer is capturing.
 */

#ifndef DB_DB_H
#define DB_DB_H

#include <memory>
#include <string>
#include <vector>

#include "core/tracer.h"
#include "db/btree.h"
#include "db/bufferpool.h"
#include "db/dbtypes.h"
#include "db/lockmgr.h"
#include "db/log.h"
#include "db/recovery.h"

namespace tlsim {
namespace db {

class Database;

/** A transaction handle: undo log plus held locks. */
class Txn
{
  public:
    TxnId id() const { return id_; }
    bool active() const { return active_; }

  private:
    friend class Database;

    enum class UndoKind { Insert, Update, Delete };

    struct Undo
    {
        UndoKind kind;
        TableId table;
        Bytes key;
        Bytes oldVal;
    };

    TxnId id_ = 0;
    bool active_ = false;
    std::vector<Undo> undo_;
    std::vector<std::uint32_t> locks_;
};

/** The database environment. */
class Database
{
  public:
    Database(DbConfig cfg, Tracer &tracer);

    /** Create a table; returns its id. */
    TableId createTable(std::string name);

    /** Direct index access (tests / data generation). */
    BTree &table(TableId t) { return *tables_.at(t); }
    std::size_t tableCount() const { return tables_.size(); }

    // --- Transactions -------------------------------------------------
    Txn begin();
    void commit(Txn &txn);
    void abort(Txn &txn);

    // --- Record operations (traced, locked, logged) --------------------
    /** Point read under a shared lock. */
    bool get(Txn &txn, TableId t, BytesView key, Bytes *val);

    /** Insert-or-update under an exclusive lock. */
    void put(Txn &txn, TableId t, BytesView key, BytesView val);

    /** Insert; false if the key already exists. */
    bool insert(Txn &txn, TableId t, BytesView key, BytesView val);

    /** Delete; false if absent. */
    bool erase(Txn &txn, TableId t, BytesView key);

    /** Range scan (read locks are modelled per touched record by the
     *  caller when required; scans here are latch-protected only). */
    BTree::Cursor cursor(TableId t) { return tables_.at(t)->cursor(); }

    // --- Epoch hooks (TLS-tuned builds) --------------------------------
    /** Call at the start of each speculative epoch's work. */
    void
    beginEpochWork()
    {
        log_.beginEpochBuffer();
        epochOps_ = 0;
    }

    /** Call at the end of each speculative epoch's work. */
    void
    endEpochWork()
    {
        if (log_.pendingEpochRecords() > 0)
            log_.publishEpochRecords();
        else if (epochOps_ > 0)
            log_.linkEpochChain(); // read-only epoch: lock batch only
        epochOps_ = 0;
    }

    const DbConfig &config() const { return cfg_; }
    Tracer &tracer() { return tr_; }
    BufferPool &pool() { return pool_; }
    LockManager &lockManager() { return locks_; }
    LogManager &logManager() { return log_; }
    LogicalLog &logicalLog() { return logical_; }

    /**
     * Crash recovery: roll back every transaction with a Begin but no
     * Commit/Abort marker using the logical WAL (the in-memory Txn
     * undo state is considered lost). Returns transactions undone.
     */
    unsigned recover() { return logical_.recover(*this); }

  private:
    void apiCost(Pc pc, unsigned key_bytes, unsigned val_bytes);
    void traceTxnBookkeeping(Txn &txn, bool write_op);

    DbConfig cfg_;
    Tracer &tr_;
    BufferPool pool_;
    LockManager locks_;
    LogManager log_;
    std::vector<std::unique_ptr<BTree>> tables_;
    LogicalLog logical_;
    TxnId nextTxn_ = 1;
    unsigned epochOps_ = 0; ///< operations since the last epoch hook
};

} // namespace db
} // namespace tlsim

#endif // DB_DB_H
