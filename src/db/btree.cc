#include "db/btree.h"

#include <algorithm>
#include <vector>

#include "base/log.h"
#include "core/site.h"
#include "db/costs.h"

namespace tlsim {
namespace db {

namespace {

Bytes
childBytes(PageId pid)
{
    return Bytes(reinterpret_cast<const char *>(&pid), sizeof(pid));
}

} // namespace

BTree::BTree(BufferPool &pool, Tracer &tracer, const DbConfig &cfg,
             std::string name)
    : pool_(pool), tr_(tracer), cfg_(cfg), name_(std::move(name))
{
    root_ = pool_.allocPage(0);
}

unsigned
BTree::height() const
{
    unsigned h = 1;
    PageId pid = root_;
    for (;;) {
        Page p(pool_.frameAddr(pid));
        if (p.leaf())
            return h;
        pid = p.childAt(0);
        ++h;
    }
}

// ---------------------------------------------------------------------
// Traced primitives
// ---------------------------------------------------------------------

void
BTree::latchNode(Page &p, bool write)
{
    static const Site s_latch("btree.page_latch.acquire");
    static const Site s_spin("btree.page_latch.spin_word");
    (void)write;
    if (cfg_.tuned) {
        EscapedRegion esc(tr_, s_latch.pc);
        tr_.latchAcquire(s_latch.pc, pageLatch(p.hdr().id));
    } else {
        // Naive spin latch: a speculative read-modify-write of the
        // latch word in the page header. Under TLS this makes every
        // pair of epochs touching the node dependent — the behaviour
        // the iterative tuning process eliminates first.
        tr_.load(s_spin.pc, p.headerAddr(), 4);
        tr_.store(s_spin.pc, p.headerAddr(), 4);
        tr_.compute(s_spin.pc, 15);
    }
}

void
BTree::unlatchNode(Page &p)
{
    static const Site s_unlatch("btree.page_latch.release");
    static const Site s_spin("btree.page_latch.spin_word");
    if (cfg_.tuned) {
        EscapedRegion esc(tr_, s_unlatch.pc);
        tr_.latchRelease(s_unlatch.pc, pageLatch(p.hdr().id));
    } else {
        tr_.store(s_spin.pc, p.headerAddr(), 4);
        tr_.compute(s_spin.pc, 8);
    }
}

std::pair<unsigned, bool>
BTree::searchTraced(Page &p, BytesView key)
{
    static const Site s_hdr("btree.search.node_header");
    static const Site s_cmp("btree.search.key_compare");

    tr_.load(s_hdr.pc, p.headerAddr(), sizeof(PageHeader));
    tr_.compute(s_hdr.pc, 40);

    unsigned lo = 0, hi = p.slotCount();
    while (lo < hi) {
        unsigned mid = (lo + hi) / 2;
        tr_.load(s_cmp.pc, p.slotAddr(mid), 4);
        tr_.load(s_cmp.pc, p.cellAddr(mid),
                 std::min<std::size_t>(key.size() + 4, 32));
        int c = p.key(mid).compare(key);
        tr_.compute(s_cmp.pc,
                    cost::kSearchStep +
                        static_cast<unsigned>(key.size()) *
                            cost::kKeyMarshalPerByte / 4);
        tr_.branch(s_cmp.pc, c < 0);
        if (c < 0)
            lo = mid + 1;
        else
            hi = mid;
    }
    bool found = lo < p.slotCount() && p.key(lo) == key;
    tr_.compute(s_cmp.pc, cost::kSearchStep);
    return {lo, found};
}

unsigned
BTree::routeSlot(Page &p, BytesView key)
{
    auto [idx, found] = searchTraced(p, key);
    if (found)
        return idx;
    if (idx == 0)
        panic("btree %s: key below the leftmost separator",
              name_.c_str());
    return idx - 1;
}

PageId
BTree::descendTraced(BytesView key)
{
    static const Site s_root("btree.descend.root_ptr");
    static const Site s_child("btree.descend.child_ptr");

    tr_.load(s_root.pc, &root_, sizeof(root_));
    tr_.compute(s_root.pc, cost::kDescendLevel);

    PageId pid = root_;
    bool dependent = false;
    for (;;) {
        Page p = pool_.fetch(pid, dependent);
        latchNode(p, false);
        if (p.leaf()) {
            unlatchNode(p);
            return pid;
        }
        unsigned slot = routeSlot(p, key);
        tr_.load(s_child.pc, p.cellAddr(slot), 16);
        tr_.compute(s_child.pc, cost::kDescendLevel);
        PageId child = p.childAt(slot);
        unlatchNode(p);
        pool_.unpin(pid);
        pid = child;
        dependent = true; // pointer chase from here on
    }
}

void
BTree::traceCellWrite(Page &p, unsigned idx, Pc pc)
{
    // Header (slot count / cell start) and the shifted slot-directory
    // region — the classic append-to-same-leaf dependence.
    tr_.store(pc, p.headerAddr(), 8);
    unsigned n = p.slotCount();
    unsigned shifted = (n > idx ? n - idx : 1) * 4;
    tr_.store(pc, p.slotAddr(idx), std::min(shifted, 64u));
    if (idx < n)
        tr_.store(pc, p.cellAddr(idx),
                  std::min<unsigned>(
                      static_cast<unsigned>(p.key(idx).size() +
                                            p.value(idx).size()) +
                          4,
                      96u));
}

// ---------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------

bool
BTree::get(BytesView key, Bytes *val)
{
    static const Site s_get("btree.get.leaf_read");
    PageId leaf = descendTraced(key);
    Page p = pool_.fetch(leaf, true);
    latchNode(p, false);
    auto [idx, found] = searchTraced(p, key);
    bool ok = false;
    if (found) {
        BytesView v = p.value(idx);
        tr_.load(s_get.pc, v.data(), v.size());
        tr_.compute(s_get.pc,
                    static_cast<unsigned>(v.size()) *
                        cost::kValMarshalPerByte);
        if (val)
            val->assign(v);
        ok = true;
    }
    unlatchNode(p);
    pool_.unpin(leaf);
    return ok;
}

bool
BTree::put(BytesView key, BytesView val, bool allow_update)
{
    if (Page::cellSize(static_cast<unsigned>(key.size()),
                       static_cast<unsigned>(val.size())) >
        kPageSize / 2 - 64) {
        fatal("btree %s: record too large (%zu + %zu bytes)",
              name_.c_str(), key.size(), val.size());
    }

    bool updated = false;
    bool inserted = false;
    SplitResult sr =
        insertRec(root_, key, val, allow_update, &updated, &inserted);
    if (sr.split) {
        static const Site s_newroot("btree.split.new_root");
        Page old_root(pool_.frameAddr(root_));
        PageId new_root =
            pool_.allocPage(old_root.hdr().level + 1);
        Page r = pool_.fetch(new_root);
        r.insert(0, BytesView{}, childBytes(root_));
        r.insert(1, sr.upKey, childBytes(sr.upChild));
        tr_.store(s_newroot.pc, r.headerAddr(), 32);
        root_ = new_root;
        tr_.store(s_newroot.pc, &root_, sizeof(root_));
        tr_.compute(s_newroot.pc, cost::kSplit / 4);
    }
    if (inserted)
        ++count_;
    return inserted || updated;
}

BTree::SplitResult
BTree::insertRec(PageId pid, BytesView key, BytesView val,
                 bool allow_update, bool *updated, bool *inserted)
{
    static const Site s_upd("btree.put.value_update");
    static const Site s_ins("btree.put.leaf_insert");
    static const Site s_child("btree.descend.child_ptr");
    static const Site s_pins("btree.put.parent_insert");

    Page p = pool_.fetch(pid, pid != root_);
    if (p.leaf()) {
        latchNode(p, true);
        auto [idx, found] = searchTraced(p, key);
        if (found) {
            if (!allow_update) {
                unlatchNode(p);
                pool_.unpin(pid);
                return {};
            }
            tr_.store(s_upd.pc, p.cellAddr(idx),
                      std::min<unsigned>(
                          static_cast<unsigned>(val.size()) + 4, 96u));
            tr_.compute(s_upd.pc,
                        cost::kLeafOp +
                            static_cast<unsigned>(val.size()) *
                                cost::kValMarshalPerByte);
            if (p.updateValue(idx, val)) {
                *updated = true;
                unlatchNode(p);
                pool_.unpin(pid);
                return {};
            }
            // No room for the bigger value: replace = remove + insert
            // (with a possible split below).
            p.remove(idx);
            --count_; // re-counted by the insert path
        }
        tr_.compute(s_ins.pc,
                    cost::kLeafOp +
                        static_cast<unsigned>(key.size() + val.size()) *
                            cost::kValMarshalPerByte);
        if (p.fits(static_cast<unsigned>(key.size()),
                   static_cast<unsigned>(val.size()))) {
            p.insert(idx, key, val);
            traceCellWrite(p, idx, s_ins.pc);
            *inserted = true;
            unlatchNode(p);
            pool_.unpin(pid);
            return {};
        }
        SplitResult sr = splitAndInsert(p, pid, idx, key, val);
        *inserted = true;
        unlatchNode(p);
        pool_.unpin(pid);
        return sr;
    }

    // Internal node: route and recurse.
    latchNode(p, false);
    unsigned slot = routeSlot(p, key);
    tr_.load(s_child.pc, p.cellAddr(slot), 16);
    tr_.compute(s_child.pc, cost::kDescendLevel);
    PageId child = p.childAt(slot);
    unlatchNode(p);

    SplitResult below =
        insertRec(child, key, val, allow_update, updated, inserted);
    if (!below.split) {
        pool_.unpin(pid);
        return {};
    }

    // Insert the new separator produced by the child split.
    latchNode(p, true);
    auto [cidx, cfound] = searchTraced(p, below.upKey);
    if (cfound)
        panic("btree %s: duplicate separator after split",
              name_.c_str());
    Bytes cb = childBytes(below.upChild);
    tr_.compute(s_pins.pc, cost::kLeafOp);
    SplitResult sr;
    if (p.fits(static_cast<unsigned>(below.upKey.size()),
               static_cast<unsigned>(cb.size()))) {
        p.insert(cidx, below.upKey, cb);
        traceCellWrite(p, cidx, s_pins.pc);
    } else {
        sr = splitAndInsert(p, pid, cidx, below.upKey, cb);
    }
    unlatchNode(p);
    pool_.unpin(pid);
    return sr;
}

BTree::SplitResult
BTree::splitAndInsert(Page &p, PageId pid, unsigned idx, BytesView key,
                      BytesView val)
{
    static const Site s_split("btree.split.distribute");
    (void)pid;

    // Choose the split point by *bytes*, over the combined sequence of
    // the page's cells with the new record virtually inserted at
    // `idx`: with mixed cell sizes a split by slot count can leave one
    // half unable to hold the new record.
    unsigned n = p.slotCount();
    std::vector<unsigned> sizes;
    sizes.reserve(n + 1);
    for (unsigned j = 0; j < n; ++j) {
        if (j == idx)
            sizes.push_back(
                Page::cellSize(static_cast<unsigned>(key.size()),
                               static_cast<unsigned>(val.size())));
        sizes.push_back(Page::cellSize(
            static_cast<unsigned>(p.key(j).size()),
            static_cast<unsigned>(p.value(j).size())));
    }
    if (idx == n)
        sizes.push_back(
            Page::cellSize(static_cast<unsigned>(key.size()),
                           static_cast<unsigned>(val.size())));

    const unsigned usable = kPageSize - sizeof(PageHeader);
    unsigned total = 0;
    for (unsigned s : sizes)
        total += s;

    unsigned best_k = 0;
    unsigned best_skew = ~0u;
    unsigned left = 0;
    for (unsigned k = 1; k < sizes.size(); ++k) {
        left += sizes[k - 1];
        unsigned right = total - left;
        if (left > usable || right > usable)
            continue;
        unsigned skew = left > right ? left - right : right - left;
        if (skew < best_skew) {
            best_skew = skew;
            best_k = k;
        }
    }
    if (best_k == 0)
        panic("btree %s: no feasible split point (record too large?)",
              name_.c_str());

    PageId new_pid = pool_.allocPage(p.hdr().level);
    Page np = pool_.fetch(new_pid);

    // Old cells with combined index >= best_k move to the new page.
    unsigned old_move_start = best_k <= idx ? best_k : best_k - 1;
    for (unsigned j = old_move_start; j < n; ++j)
        np.insert(j - old_move_start, p.key(j), p.value(j));
    for (unsigned j = n; j-- > old_move_start;)
        p.remove(j);
    np.hdr().rightSib = p.hdr().rightSib;
    p.hdr().rightSib = new_pid;

    tr_.store(s_split.pc, p.headerAddr(), 64);
    tr_.store(s_split.pc, np.headerAddr(), 64);
    tr_.compute(s_split.pc, cost::kSplit);

    Page &target = best_k <= idx ? np : p;
    unsigned tidx = best_k <= idx ? idx - old_move_start : idx;
    if (!target.fits(static_cast<unsigned>(key.size()),
                     static_cast<unsigned>(val.size())))
        panic("btree %s: record does not fit after split",
              name_.c_str());
    target.insert(tidx, key, val);
    traceCellWrite(target, tidx, s_split.pc);

    SplitResult sr;
    sr.split = true;
    sr.upKey = Bytes(np.key(0));
    sr.upChild = new_pid;
    return sr;
}

bool
BTree::erase(BytesView key)
{
    static const Site s_del("btree.erase.leaf_remove");
    PageId leaf = descendTraced(key);
    Page p = pool_.fetch(leaf, true);
    latchNode(p, true);
    auto [idx, found] = searchTraced(p, key);
    if (found) {
        p.remove(idx);
        traceCellWrite(p, idx < p.slotCount() ? idx : (idx ? idx - 1 : 0),
                       s_del.pc);
        tr_.compute(s_del.pc, cost::kLeafOp);
        --count_;
    }
    unlatchNode(p);
    pool_.unpin(leaf);
    return found;
}

// ---------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------

bool
BTree::Cursor::seek(BytesView key)
{
    static const Site s_seek("btree.cursor.seek");
    tree_.tr_.compute(s_seek.pc, cost::kCursorSetup);
    page_ = tree_.descendTraced(key);
    Page p = tree_.pool_.fetch(page_, true);
    auto [idx, found] = tree_.searchTraced(p, key);
    (void)found;
    idx_ = idx;
    valid_ = true;
    if (!skipToNonEmpty())
        return false;
    loadCurrent();
    return true;
}

bool
BTree::Cursor::skipToNonEmpty()
{
    static const Site s_sib("btree.cursor.next_leaf");
    for (;;) {
        Page p(tree_.pool_.frameAddr(page_));
        if (idx_ < p.slotCount())
            return true;
        tree_.tr_.load(s_sib.pc, p.headerAddr(), sizeof(PageHeader));
        PageId sib = p.hdr().rightSib;
        if (sib == kInvalidPage) {
            valid_ = false;
            return false;
        }
        tree_.pool_.fetch(sib, true);
        tree_.tr_.compute(s_sib.pc, cost::kFetchPage);
        page_ = sib;
        idx_ = 0;
    }
}

void
BTree::Cursor::loadCurrent()
{
    static const Site s_read("btree.cursor.read_record");
    Page p(tree_.pool_.frameAddr(page_));
    BytesView k = p.key(idx_);
    BytesView v = p.value(idx_);
    tree_.tr_.load(s_read.pc, p.slotAddr(idx_), 4);
    tree_.tr_.load(s_read.pc, k.data(), k.size());
    tree_.tr_.load(s_read.pc, v.data(), v.size());
    tree_.tr_.compute(s_read.pc,
                      cost::kSearchStep +
                          static_cast<unsigned>(k.size() + v.size()) *
                              cost::kValMarshalPerByte);
    key_.assign(k);
    val_.assign(v);
}

bool
BTree::Cursor::next()
{
    if (!valid_)
        return false;
    ++idx_;
    if (!skipToNonEmpty())
        return false;
    loadCurrent();
    return true;
}

// ---------------------------------------------------------------------
// Invariants (tests)
// ---------------------------------------------------------------------

namespace {

void
checkNode(const BufferPool &pool, PageId pid, const Bytes &lo,
          const Bytes *hi, unsigned level, std::uint64_t *count)
{
    Page p(const_cast<BufferPool &>(pool).frameAddr(pid));
    if (p.hdr().level != level)
        panic("btree invariant: page %u level %u, expected %u", pid,
              p.hdr().level, level);
    Bytes prev;
    bool have_prev = false;
    for (unsigned i = 0; i < p.slotCount(); ++i) {
        Bytes k(p.key(i));
        if (have_prev && !(prev < k))
            panic("btree invariant: page %u keys out of order at %u",
                  pid, i);
        if (i > 0 || level == 0) {
            // Separators may undercut their subtree, but every key
            // must respect the node's own bounds.
            if (k < lo)
                panic("btree invariant: page %u key below bound", pid);
        }
        if (hi && !(k < *hi))
            panic("btree invariant: page %u key above bound", pid);
        prev = std::move(k);
        have_prev = true;
        if (level == 0)
            ++*count;
    }
    if (level > 0) {
        for (unsigned i = 0; i < p.slotCount(); ++i) {
            Bytes child_lo = i == 0 ? lo : Bytes(p.key(i));
            Bytes next_sep;
            const Bytes *child_hi = hi;
            if (i + 1 < p.slotCount()) {
                next_sep = Bytes(p.key(i + 1));
                child_hi = &next_sep;
            }
            checkNode(pool, p.childAt(i), child_lo, child_hi, level - 1,
                      count);
        }
    }
}

} // namespace

void
BTree::checkInvariants() const
{
    Page root(const_cast<BufferPool &>(pool_).frameAddr(root_));
    std::uint64_t counted = 0;
    checkNode(pool_, root_, Bytes{}, nullptr, root.hdr().level,
              &counted);
    if (counted != count_)
        panic("btree %s invariant: %llu records counted, %llu expected",
              name_.c_str(), static_cast<unsigned long long>(counted),
              static_cast<unsigned long long>(count_));
}

} // namespace db
} // namespace tlsim
