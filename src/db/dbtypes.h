/**
 * @file
 * Common types for minidb, the storage manager standing in for
 * BerkeleyDB: it provides the same structural ingredients the paper's
 * evaluation leans on — slotted pages, a buffer pool, B+-trees, page
 * latches, row locks, and a write-ahead log — and is instrumented so
 * every access to shared database memory lands in the trace with its
 * real heap address.
 */

#ifndef DB_DBTYPES_H
#define DB_DBTYPES_H

#include <cstdint>
#include <string>
#include <string_view>

namespace tlsim {
namespace db {

using PageId = std::uint32_t;
using TableId = std::uint32_t;
using TxnId = std::uint64_t;
using Lsn = std::uint64_t;

inline constexpr PageId kInvalidPage = 0;
inline constexpr unsigned kPageSize = 4096;

/** Keys and values are raw byte strings ordered by memcmp. */
using Bytes = std::string;
using BytesView = std::string_view;

/**
 * Database configuration. `tuned` selects the TLS-optimized code paths
 * of the authors' VLDB'05 iterative tuning:
 *   - per-epoch log buffers with escaped LSN assignment (vs a shared
 *     log tail and a global LSN counter),
 *   - escaped lock-table operations (vs speculative lock updates),
 *   - no global LRU maintenance on the buffer-pool hot path.
 */
struct DbConfig
{
    bool tuned = true;
    bool traceLocks = true;    ///< model row-lock table accesses
    bool traceLog = true;      ///< model WAL appends
    unsigned maxPages = 96 * 1024; ///< buffer pool frames (384MB)
    /** Scales the synthetic instruction costs (calibration knob). */
    double costScale = 1.0;
};

/** Latch-identifier name space: pages plus named global latches. */
inline constexpr std::uint64_t kLatchPageBase = 0;
inline constexpr std::uint64_t kLatchNamedBase = std::uint64_t{1} << 32;

inline std::uint64_t
pageLatch(PageId pid)
{
    return kLatchPageBase + pid;
}

inline std::uint64_t
namedLatch(unsigned n)
{
    return kLatchNamedBase + n;
}

/** Named global latches. */
enum NamedLatch : unsigned {
    kLatchBufPool = 0,
    kLatchLog = 1,
    kLatchLockTable = 2,
    kLatchPageAlloc = 3,
};

} // namespace db
} // namespace tlsim

#endif // DB_DBTYPES_H
