/**
 * @file
 * Write-ahead log. The untuned build models BerkeleyDB's log_put: a
 * global LSN counter and shared log tail that every update touches —
 * the single hottest cross-epoch dependence the paper's tuning
 * removes. The tuned build gives each epoch a private log buffer and
 * assigns LSNs lazily inside an escaped region at epoch end (the
 * VLDB'05 optimization).
 */

#ifndef DB_LOG_H
#define DB_LOG_H

#include <cstdint>
#include <vector>

#include "core/tracer.h"
#include "db/dbtypes.h"

namespace tlsim {
namespace db {

/** The log manager (timing/trace model; bytes are not interpreted). */
class LogManager
{
  public:
    LogManager(const DbConfig &cfg, Tracer &tracer);

    /** Append one log record of `bytes` payload. */
    void logRecord(unsigned bytes);

    /**
     * Epoch boundary (tuned mode): switch to a fresh private buffer so
     * concurrent epochs never share log-buffer lines.
     */
    void beginEpochBuffer();

    /**
     * Publish the current epoch's private records to the global log
     * (tuned mode; escaped). Called at the end of each epoch, and
     * automatically whenever a batch of kPublishBatch records has
     * accumulated (the private buffer slots are finite, as in the
     * VLDB'05 design).
     */
    void publishEpochRecords();

    /**
     * Link this epoch's batch into the transaction's undo/LSN chain:
     * a speculative read-modify-write of the chain head — the serial
     * inter-epoch dependence that survives tuning. Also used alone by
     * read-only epochs publishing their lock batches.
     */
    void linkEpochChain();

    unsigned pendingEpochRecords() const { return epochRecords_; }

    /**
     * Records per publish batch in the tuned build. Publishing is a
     * serial inter-epoch dependence (the chain link), so the batch is
     * sized to make it a once-per-epoch event for every TPC-C epoch;
     * only pathologically large epochs publish mid-flight.
     */
    static constexpr unsigned kPublishBatch = 64;

    /** Transaction commit record plus group-commit bookkeeping. */
    void txnCommit();

    Lsn nextLsn() const { return nextLsn_; }

  private:
    static constexpr unsigned kGlobalBufBytes = 1 << 20;
    static constexpr unsigned kEpochBufBytes = 64 * 1024;
    static constexpr unsigned kEpochBufs = 16;

    const DbConfig &cfg_;
    Tracer &tr_;

    Lsn nextLsn_ = 1;
    std::uint64_t tailOff_ = 0;
    std::uint64_t chainHead_ = 0; ///< per-txn undo/LSN chain head
    std::vector<std::uint8_t> buffer_;

    std::vector<std::vector<std::uint8_t>> epochBufs_;
    unsigned curBuf_ = 0;
    std::uint64_t epochOff_ = 0;
    unsigned epochRecords_ = 0;
};

} // namespace db
} // namespace tlsim

#endif // DB_LOG_H
