/**
 * @file
 * Row lock manager. Transactions run one at a time (the paper measures
 * latency), so locks never conflict between transactions — but the
 * lock *table* is shared memory: in the untuned build every lock_get
 * speculatively updates a hash bucket, creating cross-epoch
 * dependences whenever two epochs hash nearby. The tuned build moves
 * lock-table maintenance into escaped regions guarded by per-bucket
 * latches (the VLDB'05 "lazy locks" treatment).
 */

#ifndef DB_LOCKMGR_H
#define DB_LOCKMGR_H

#include <cstdint>
#include <vector>

#include "core/tracer.h"
#include "db/dbtypes.h"

namespace tlsim {
namespace db {

/** Lock modes (tracked for API fidelity; no inter-txn conflicts). */
enum class LockMode { Shared, Exclusive };

/** The traced row-lock table. */
class LockManager
{
  public:
    LockManager(const DbConfig &cfg, Tracer &tracer);

    /** Acquire a row lock; returns a handle for release. */
    std::uint32_t lock(TableId table, BytesView key, LockMode mode);

    /** Release one lock handle (bucket index). */
    void unlock(std::uint32_t handle);

    std::uint64_t locksTaken() const { return locksTaken_; }

  private:
    struct Bucket
    {
        std::uint32_t holders = 0;
        std::uint32_t stamp = 0;
    };

    std::uint32_t bucketOf(TableId table, BytesView key) const;

    const DbConfig &cfg_;
    Tracer &tr_;
    std::vector<Bucket> table_;
    std::uint64_t locksTaken_ = 0;
};

} // namespace db
} // namespace tlsim

#endif // DB_LOCKMGR_H
