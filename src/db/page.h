/**
 * @file
 * Slotted pages: the on-"disk" representation of B-tree nodes. A page
 * is a 4KB frame with a header, a slot directory growing up, and cell
 * storage growing down. Cells hold (key, value) pairs; in internal
 * nodes the value is a 4-byte child page id.
 *
 * Page is a non-owning view over a frame owned by the BufferPool; the
 * B-tree layer traces its accesses against the frame's real addresses.
 */

#ifndef DB_PAGE_H
#define DB_PAGE_H

#include <cstdint>
#include <cstring>
#include <utility>

#include "db/dbtypes.h"

namespace tlsim {
namespace db {

/** Fixed header at the start of every page. */
struct PageHeader
{
    PageId id = kInvalidPage;
    std::uint16_t nSlots = 0;
    std::uint16_t cellStart = kPageSize; ///< lowest used cell byte
    std::uint16_t fragBytes = 0;         ///< reclaimable dead cell bytes
    std::uint8_t level = 0;              ///< 0 = leaf
    std::uint8_t flags = 0;
    PageId rightSib = kInvalidPage;
};

static_assert(sizeof(PageHeader) <= 20, "header should stay small");

/** A mutable view of one 4KB page frame. */
class Page
{
  public:
    explicit Page(void *frame)
        : base_(static_cast<std::uint8_t *>(frame))
    {
    }

    /** Format a frame as an empty page. */
    static void init(void *frame, PageId id, std::uint8_t level);

    PageHeader &hdr() { return *reinterpret_cast<PageHeader *>(base_); }
    const PageHeader &hdr() const
    {
        return *reinterpret_cast<const PageHeader *>(base_);
    }

    unsigned slotCount() const { return hdr().nSlots; }
    bool leaf() const { return hdr().level == 0; }

    BytesView key(unsigned idx) const;
    BytesView value(unsigned idx) const;

    /** Child page id stored in slot `idx` of an internal node. */
    PageId childAt(unsigned idx) const;

    /**
     * First slot whose key is >= `key` (may equal slotCount()).
     * `found` reports an exact match.
     */
    std::pair<unsigned, bool> lowerBound(BytesView key) const;

    /** Space a cell of this shape consumes (including its slot). */
    static unsigned cellSize(unsigned klen, unsigned vlen)
    {
        return 4 + klen + vlen + sizeof(std::uint16_t) * 2;
    }

    /** Contiguous + fragmented free bytes. */
    unsigned freeSpace() const;

    /** True if a (key, value) cell of this shape fits. */
    bool fits(unsigned klen, unsigned vlen) const
    {
        return freeSpace() >= cellSize(klen, vlen);
    }

    /** Insert a cell at slot `idx`, shifting later slots. Requires
     *  fits(); compacts if fragmented. */
    void insert(unsigned idx, BytesView key, BytesView val);

    /** Remove slot `idx` (cell space becomes fragmented). */
    void remove(unsigned idx);

    /** Replace the value of slot `idx` (any size). Requires room. */
    bool updateValue(unsigned idx, BytesView val);

    // Addresses for tracing.
    const void *headerAddr() const { return base_; }
    const void *slotAddr(unsigned idx) const { return slotPtr(idx); }
    const void *cellAddr(unsigned idx) const
    {
        return base_ + cellOff(idx);
    }

    std::uint8_t *raw() { return base_; }

  private:
    using Slot = std::uint16_t; ///< two u16s per slot: off, len

    std::uint16_t *slotPtr(unsigned idx)
    {
        return reinterpret_cast<std::uint16_t *>(
                   base_ + sizeof(PageHeader)) +
               idx * 2;
    }

    const std::uint16_t *slotPtr(unsigned idx) const
    {
        return const_cast<Page *>(this)->slotPtr(idx);
    }

    unsigned cellOff(unsigned idx) const { return slotPtr(idx)[0]; }
    unsigned cellLen(unsigned idx) const { return slotPtr(idx)[1]; }

    unsigned slotsEnd() const
    {
        return sizeof(PageHeader) + hdr().nSlots * 4;
    }

    void compact();

    std::uint8_t *base_;
};

} // namespace db
} // namespace tlsim

#endif // DB_PAGE_H
