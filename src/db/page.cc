#include "db/page.h"

#include <vector>

#include "base/log.h"

namespace tlsim {
namespace db {

void
Page::init(void *frame, PageId id, std::uint8_t level)
{
    std::memset(frame, 0, kPageSize);
    PageHeader h;
    h.id = id;
    h.level = level;
    h.cellStart = kPageSize;
    std::memcpy(frame, &h, sizeof(h));
}

BytesView
Page::key(unsigned idx) const
{
    const std::uint8_t *cell = base_ + cellOff(idx);
    std::uint16_t klen;
    std::memcpy(&klen, cell, 2);
    return BytesView(reinterpret_cast<const char *>(cell + 4), klen);
}

BytesView
Page::value(unsigned idx) const
{
    const std::uint8_t *cell = base_ + cellOff(idx);
    std::uint16_t klen, vlen;
    std::memcpy(&klen, cell, 2);
    std::memcpy(&vlen, cell + 2, 2);
    return BytesView(reinterpret_cast<const char *>(cell + 4 + klen),
                     vlen);
}

PageId
Page::childAt(unsigned idx) const
{
    BytesView v = value(idx);
    if (v.size() != sizeof(PageId))
        panic("internal cell %u has a %zu-byte child pointer", idx,
              v.size());
    PageId child;
    std::memcpy(&child, v.data(), sizeof(child));
    return child;
}

std::pair<unsigned, bool>
Page::lowerBound(BytesView k) const
{
    unsigned lo = 0, hi = slotCount();
    while (lo < hi) {
        unsigned mid = (lo + hi) / 2;
        int c = key(mid).compare(k);
        if (c < 0)
            lo = mid + 1;
        else
            hi = mid;
    }
    bool found = lo < slotCount() && key(lo) == k;
    return {lo, found};
}

unsigned
Page::freeSpace() const
{
    return hdr().cellStart - slotsEnd() + hdr().fragBytes;
}

void
Page::compact()
{
    // Rebuild cell storage densely at the page tail.
    unsigned n = slotCount();
    std::vector<std::vector<std::uint8_t>> cells(n);
    for (unsigned i = 0; i < n; ++i) {
        const std::uint8_t *cell = base_ + cellOff(i);
        cells[i].assign(cell, cell + cellLen(i));
    }
    unsigned pos = kPageSize;
    for (unsigned i = 0; i < n; ++i) {
        pos -= static_cast<unsigned>(cells[i].size());
        std::memcpy(base_ + pos, cells[i].data(), cells[i].size());
        slotPtr(i)[0] = static_cast<std::uint16_t>(pos);
    }
    hdr().cellStart = static_cast<std::uint16_t>(pos);
    hdr().fragBytes = 0;
}

void
Page::insert(unsigned idx, BytesView key, BytesView val)
{
    unsigned cell_bytes = 4 + static_cast<unsigned>(key.size()) +
                          static_cast<unsigned>(val.size());
    if (freeSpace() < cell_bytes + 4)
        panic("page %u: insert without room (free %u, need %u)",
              hdr().id, freeSpace(), cell_bytes + 4);
    if (idx > slotCount())
        panic("page %u: insert at slot %u of %u", hdr().id, idx,
              slotCount());

    // Contiguous space must fit the cell plus the new slot entry.
    if (hdr().cellStart < slotsEnd() + 4 + cell_bytes)
        compact();

    unsigned pos = hdr().cellStart - cell_bytes;
    std::uint16_t klen = static_cast<std::uint16_t>(key.size());
    std::uint16_t vlen = static_cast<std::uint16_t>(val.size());
    std::memcpy(base_ + pos, &klen, 2);
    std::memcpy(base_ + pos + 2, &vlen, 2);
    // Empty keys/values carry a null data(); memcpy requires non-null
    // pointers even for zero sizes.
    if (!key.empty())
        std::memcpy(base_ + pos + 4, key.data(), key.size());
    if (!val.empty())
        std::memcpy(base_ + pos + 4 + key.size(), val.data(),
                    val.size());

    // Shift the slot directory up by one entry.
    unsigned n = slotCount();
    std::memmove(slotPtr(idx + 1), slotPtr(idx), (n - idx) * 4);
    slotPtr(idx)[0] = static_cast<std::uint16_t>(pos);
    slotPtr(idx)[1] = static_cast<std::uint16_t>(cell_bytes);
    hdr().nSlots = static_cast<std::uint16_t>(n + 1);
    hdr().cellStart = static_cast<std::uint16_t>(pos);
}

void
Page::remove(unsigned idx)
{
    unsigned n = slotCount();
    if (idx >= n)
        panic("page %u: remove slot %u of %u", hdr().id, idx, n);
    unsigned dead = cellLen(idx);
    if (cellOff(idx) == hdr().cellStart)
        hdr().cellStart = static_cast<std::uint16_t>(hdr().cellStart +
                                                     dead);
    else
        hdr().fragBytes = static_cast<std::uint16_t>(hdr().fragBytes +
                                                     dead);
    std::memmove(slotPtr(idx), slotPtr(idx + 1), (n - idx - 1) * 4);
    hdr().nSlots = static_cast<std::uint16_t>(n - 1);
}

bool
Page::updateValue(unsigned idx, BytesView val)
{
    BytesView old = value(idx);
    if (old.size() == val.size()) {
        std::memcpy(base_ + cellOff(idx) + 4 + key(idx).size(),
                    val.data(), val.size());
        return true;
    }
    Bytes k(key(idx));
    unsigned need = cellSize(static_cast<unsigned>(k.size()),
                             static_cast<unsigned>(val.size()));
    // Removing slot idx frees its cell bytes plus one slot entry.
    if (freeSpace() + cellLen(idx) + 4 < need)
        return false; // caller must split; the record is untouched
    remove(idx);
    insert(idx, k, val);
    return true;
}

} // namespace db
} // namespace tlsim
