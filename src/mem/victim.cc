#include "mem/victim.h"

#include "base/log.h"

namespace tlsim {

unsigned
VictimCache::occupancy() const
{
    unsigned n = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

bool
VictimCache::accessLine(Addr line_num)
{
    bool found = false;
    for (Entry &e : entries_) {
        if (e.valid && e.lineNum == line_num) {
            e.lru = ++useClock_;
            found = true;
        }
    }
    if (found)
        ++hits_;
    return found;
}

bool
VictimCache::presentLine(Addr line_num) const
{
    for (const Entry &e : entries_)
        if (e.valid && e.lineNum == line_num)
            return true;
    return false;
}

bool
VictimCache::present(Addr line_num, std::uint8_t version) const
{
    for (const Entry &e : entries_)
        if (e.valid && e.lineNum == line_num && e.version == version)
            return true;
    return false;
}

void
VictimCache::insert(Addr line_num, std::uint8_t version)
{
    for (Entry &e : entries_) {
        if (!e.valid) {
            e = Entry{line_num, version, true, ++useClock_};
            ++inserts_;
            return;
        }
    }
    panic("VictimCache::insert with no free slot");
}

bool
VictimCache::remove(Addr line_num, std::uint8_t version)
{
    for (Entry &e : entries_) {
        if (e.valid && e.lineNum == line_num && e.version == version) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

std::vector<Addr>
VictimCache::takeAllOfVersion(std::uint8_t version)
{
    std::vector<Addr> lines;
    for (Entry &e : entries_) {
        if (e.valid && e.version == version) {
            lines.push_back(e.lineNum);
            e.valid = false;
        }
    }
    return lines;
}

bool
VictimCache::renameToCommitted(Addr line_num, std::uint8_t version)
{
    for (Entry &e : entries_) {
        if (e.valid && e.lineNum == line_num && e.version == version) {
            e.version = kCommittedVersion;
            return true;
        }
    }
    return false;
}

void
VictimCache::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
    useClock_ = 0;
    hits_ = 0;
    inserts_ = 0;
}

} // namespace tlsim
