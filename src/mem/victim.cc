#include "mem/victim.h"

#include <algorithm>

#include "base/log.h"

namespace tlsim {

VictimCache::VictimCache(unsigned entries)
    : capacity_(entries), scanLen_((entries + 3u) & ~3u),
      valid_((entries + kGroupSize - 1) / kGroupSize, 0),
      lines_(scanLen_, 0), versions_(entries, kCommittedVersion),
      lrus_(entries, 0)
{
}

bool
VictimCache::accessLine(Addr line_num)
{
    bool hit = false;
    // Every buffered version of the line is touched, in slot order —
    // each gets its own (monotone) LRU stamp, like the struct walk did.
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t m = matchGroup(g, line_num);
        while (m) {
            unsigned i = g * kGroupSize +
                         static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            lrus_[i] = ++useClock_;
            hit = true;
        }
    }
    if (hit)
        ++hits_;
    return hit;
}

bool
VictimCache::present(Addr line_num, std::uint8_t version) const
{
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t m = matchGroup(g, line_num);
        while (m) {
            unsigned i = g * kGroupSize +
                         static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            if (versions_[i] == version)
                return true;
        }
    }
    return false;
}

void
VictimCache::insert(Addr line_num, std::uint8_t version)
{
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t free = ~valid_[g] & groupCapMask(g);
        if (!free)
            continue;
        unsigned b = static_cast<unsigned>(__builtin_ctzll(free));
        unsigned i = g * kGroupSize + b;
        lines_[i] = line_num;
        versions_[i] = version;
        lrus_[i] = ++useClock_;
        valid_[g] |= std::uint64_t{1} << b;
        ++inserts_;
        return;
    }
    panic("VictimCache::insert with no free slot");
}

bool
VictimCache::remove(Addr line_num, std::uint8_t version)
{
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t m = matchGroup(g, line_num);
        while (m) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            unsigned i = g * kGroupSize + b;
            if (versions_[i] == version) {
                valid_[g] &= ~(std::uint64_t{1} << b);
                return true;
            }
        }
    }
    return false;
}

std::vector<Addr>
VictimCache::takeAllOfVersion(std::uint8_t version)
{
    std::vector<Addr> lines;
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t m = valid_[g];
        while (m) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            unsigned i = g * kGroupSize + b;
            if (versions_[i] == version) {
                lines.push_back(lines_[i]);
                valid_[g] &= ~(std::uint64_t{1} << b);
            }
        }
    }
    return lines;
}

bool
VictimCache::renameToCommitted(Addr line_num, std::uint8_t version)
{
    for (unsigned g = 0; g < groups(); ++g) {
        std::uint64_t m = matchGroup(g, line_num);
        while (m) {
            unsigned i = g * kGroupSize +
                         static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            if (versions_[i] == version) {
                versions_[i] = kCommittedVersion;
                return true;
            }
        }
    }
    return false;
}

void
VictimCache::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(lines_.begin(), lines_.end(), 0);
    std::fill(versions_.begin(), versions_.end(), kCommittedVersion);
    std::fill(lrus_.begin(), lrus_.end(), 0);
    useClock_ = 0;
    hits_ = 0;
    inserts_ = 0;
}

} // namespace tlsim
