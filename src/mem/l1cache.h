/**
 * @file
 * Private per-CPU first-level cache model (data or instruction).
 *
 * The L1 is write-through (stores propagate immediately to the shared
 * L2, which is what lets later epochs consume earlier epochs' values
 * aggressively) and is unaware of sub-threads: a dependence violation
 * simply invalidates every line the current epoch speculatively
 * modified. Tag/state only — the simulation is timing-directed, data
 * values never move.
 *
 * Performance notes (this sits on the per-record replay path):
 *  - lookups are defined inline so memsys.cc sees them;
 *  - line flags live in one state byte so flag clears are single ANDs;
 *  - every slot that gains a flag is appended to `flagged_`, making the
 *    per-epoch sweeps (epochBoundary / squashSpecWrites) O(flagged)
 *    instead of O(cache size). A slot may appear twice if its line is
 *    evicted and the replacement is flagged again; both sweeps are
 *    idempotent per slot, so duplicates are harmless. Flags left on an
 *    invalidated slot are unobservable — find() requires the valid bit
 *    and insert() rewrites the whole state byte — so the sweeps may
 *    clear them eagerly.
 */

#ifndef MEM_L1CACHE_H
#define MEM_L1CACHE_H

#include <cstdint>
#include <vector>

#include "base/addr.h"
#include "base/types.h"

namespace tlsim {

/** A private, set-associative, write-through L1 cache (tags only). */
class L1Cache
{
  public:
    L1Cache(unsigned bytes, unsigned assoc, unsigned line_bytes);

    /** Look up a line; updates LRU on hit. Line number, not address. */
    bool
    access(Addr line_num)
    {
        // One-slot lookup cache: consecutive accesses overwhelmingly
        // repeat the previous line (instruction fetch especially). The
        // cached slot is revalidated exactly like a probe, so eviction
        // or invalidation simply falls through to the full lookup.
        Line &cl = lines_[lastIdx_];
        if ((cl.state & kValid) && cl.lineNum == line_num) {
            cl.lru = ++useClock_;
            ++hits_;
            return true;
        }
        if (Line *l = find(line_num)) {
            lastIdx_ = static_cast<std::uint32_t>(l - lines_.data());
            l->lru = ++useClock_;
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /** Presence test without LRU side effects. */
    bool present(Addr line_num) const { return find(line_num) != nullptr; }

    /** Fill a line (evicting the set's LRU victim silently). */
    void
    insert(Addr line_num)
    {
        if (find(line_num))
            return;
        std::size_t set = (line_num & (numSets_ - 1)) * assoc_;
        Line *victim = &lines_[set];
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &l = lines_[set + w];
            if (!(l.state & kValid)) {
                victim = &l;
                break;
            }
            if (l.lru < victim->lru)
                victim = &l;
        }
        // Write-through L1: evicted lines are always clean; silent drop.
        *victim = Line{line_num, ++useClock_, kValid};
    }

    /** Drop a line if present. */
    void
    invalidate(Addr line_num)
    {
        if (Line *l = find(line_num))
            l->state &= static_cast<std::uint8_t>(~kValid);
    }

    /** Flag a present line as speculatively read by the current epoch. */
    void markSpecRead(Addr line_num) { mark(line_num, kSpecRead); }
    /** Flag a present line as speculatively written by the current epoch. */
    void markSpecWritten(Addr line_num) { mark(line_num, kSpecWritten); }
    /**
     * Flag a present line as stale for the *next* epoch: an older-epoch
     * CPU may keep using its copy, but the copy must be dropped when a
     * younger epoch starts on this CPU.
     */
    void markStale(Addr line_num) { mark(line_num, kStale); }

    /**
     * Dependence violation on this CPU: invalidate every line the
     * current epoch speculatively modified (the L1 is sub-thread
     * unaware, so partial rewinds pay this full cost). Returns the
     * number of lines invalidated.
     */
    unsigned squashSpecWrites();

    /**
     * Epoch boundary on this CPU: clear speculative flags and apply
     * deferred stale invalidations.
     */
    void epochBoundary();

    /** Drop every line (used between independent experiment runs). */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static constexpr std::uint8_t kValid = 1u << 0;
    static constexpr std::uint8_t kSpecRead = 1u << 1;
    static constexpr std::uint8_t kSpecWritten = 1u << 2;
    static constexpr std::uint8_t kStale = 1u << 3;
    static constexpr std::uint8_t kFlagBits = kSpecRead | kSpecWritten |
                                              kStale;

    struct Line
    {
        Addr lineNum = 0;
        std::uint64_t lru = 0;
        std::uint8_t state = 0;
    };

    Line *
    find(Addr line_num)
    {
        std::size_t set = (line_num & (numSets_ - 1)) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &l = lines_[set + w];
            if ((l.state & kValid) && l.lineNum == line_num)
                return &l;
        }
        return nullptr;
    }

    const Line *
    find(Addr line_num) const
    {
        return const_cast<L1Cache *>(this)->find(line_num);
    }

    void
    mark(Addr line_num, std::uint8_t flag)
    {
        // The marks follow an access() of the same line almost always,
        // so the one-slot lookup cache resolves them without a set scan.
        Line *l = &lines_[lastIdx_];
        if (!((l->state & kValid) && l->lineNum == line_num) &&
            !(l = find(line_num)))
            return;
        if (!(l->state & kFlagBits))
            flagged_.push_back(
                static_cast<std::uint32_t>(l - lines_.data()));
        l->state |= flag;
    }

    unsigned assoc_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ * assoc_, set-major
    std::vector<std::uint32_t> flagged_; ///< slots that may carry flags
    std::uint32_t lastIdx_ = 0; ///< slot of the last access() hit
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tlsim

#endif // MEM_L1CACHE_H
