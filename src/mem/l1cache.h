/**
 * @file
 * Private per-CPU first-level cache model (data or instruction).
 *
 * The L1 is write-through (stores propagate immediately to the shared
 * L2, which is what lets later epochs consume earlier epochs' values
 * aggressively) and is unaware of sub-threads: a dependence violation
 * simply invalidates every line the current epoch speculatively
 * modified. Tag/state only — the simulation is timing-directed, data
 * values never move.
 */

#ifndef MEM_L1CACHE_H
#define MEM_L1CACHE_H

#include <cstdint>
#include <vector>

#include "base/addr.h"
#include "base/types.h"

namespace tlsim {

/** A private, set-associative, write-through L1 cache (tags only). */
class L1Cache
{
  public:
    L1Cache(unsigned bytes, unsigned assoc, unsigned line_bytes);

    /** Look up a line; updates LRU on hit. Line number, not address. */
    bool access(Addr line_num);

    /** Presence test without LRU side effects. */
    bool present(Addr line_num) const;

    /** Fill a line (evicting the set's LRU victim silently). */
    void insert(Addr line_num);

    /** Drop a line if present. */
    void invalidate(Addr line_num);

    /** Flag a present line as speculatively read by the current epoch. */
    void markSpecRead(Addr line_num);
    /** Flag a present line as speculatively written by the current epoch. */
    void markSpecWritten(Addr line_num);
    /**
     * Flag a present line as stale for the *next* epoch: an older-epoch
     * CPU may keep using its copy, but the copy must be dropped when a
     * younger epoch starts on this CPU.
     */
    void markStale(Addr line_num);

    /**
     * Dependence violation on this CPU: invalidate every line the
     * current epoch speculatively modified (the L1 is sub-thread
     * unaware, so partial rewinds pay this full cost). Returns the
     * number of lines invalidated.
     */
    unsigned squashSpecWrites();

    /**
     * Epoch boundary on this CPU: clear speculative flags and apply
     * deferred stale invalidations.
     */
    void epochBoundary();

    /** Drop every line (used between independent experiment runs). */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        Addr lineNum = 0;
        bool valid = false;
        bool specRead = false;
        bool specWritten = false;
        bool stale = false;
        std::uint64_t lru = 0;
    };

    Line *find(Addr line_num);
    const Line *find(Addr line_num) const;

    unsigned assoc_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ * assoc_, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tlsim

#endif // MEM_L1CACHE_H
