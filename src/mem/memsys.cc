#include "mem/memsys.h"

#include <algorithm>

#include "base/log.h"

namespace tlsim {

MemSystem::MemSystem(const MachineConfig &cfg)
    : cfg_(cfg.mem), numCpus_(cfg.tls.numCpus), geom_(cfg.mem.lineBytes),
      victim_(cfg.tls.useVictimCache ? cfg.mem.victimEntries : 0),
      l2_(cfg.mem, victim_),
      lineTransferCycles_(
          std::max(1u, cfg.mem.lineBytes / cfg.mem.crossbarBytesPerCycle)),
      versionLines_(numCpus_)
{
    dcaches_.reserve(numCpus_);
    icaches_.reserve(numCpus_);
    for (unsigned i = 0; i < numCpus_; ++i) {
        dcaches_.emplace_back(cfg_.l1Bytes, cfg_.l1Assoc, cfg_.lineBytes);
        icaches_.emplace_back(cfg_.l1Bytes, cfg_.l1Assoc, cfg_.lineBytes);
    }
    l1BankFree_.assign(static_cast<std::size_t>(numCpus_) * cfg_.l1Banks, 0);
    xbarPortFree_.assign(numCpus_, 0);
    l2BankFree_.assign(cfg_.l2Banks, 0);
}

void
MemSystem::setHooks(const TlsHooks *hooks)
{
    hooks_ = hooks;
    l2_.setHooks(hooks);
}

Cycle
MemSystem::xbarGrant(CpuId cpu, unsigned bank, Cycle t)
{
    // One arbitration decision reserves both resources a transfer
    // needs: the requester's crossbar port and the target L2 bank.
    // Batching them keeps the two free-lists in a single cache-warm
    // update and guarantees they can never drift apart.
    Cycle start = std::max({t + 1, xbarPortFree_[cpu], l2BankFree_[bank]});
    Cycle busy_until = start + lineTransferCycles_;
    xbarPortFree_[cpu] = busy_until;
    l2BankFree_[bank] = busy_until;
    return start;
}

Cycle
MemSystem::l2Path(CpuId cpu, Addr line_num, Cycle t, MemAccess &res)
{
    unsigned bank = l2_.bankOf(line_num);
    Cycle start = xbarGrant(cpu, bank, t);

    if (l2_.accessLine(line_num)) {
        res.l2Hit = true;
        return start + cfg_.l2HitLatency;
    }
    if (victim_.accessLine(line_num)) {
        res.victimHit = true;
        return start + cfg_.l2HitLatency + 2;
    }

    // Main memory: bandwidth-limited to one access per
    // memCyclesPerAccess cycles.
    res.memFetch = true;
    Cycle mstart = std::max(start + cfg_.l2HitLatency, memFree_);
    memFree_ = mstart + cfg_.memCyclesPerAccess;
    Cycle ready = mstart + cfg_.memLatency;

    if (!l2_.insert(line_num, kCommittedVersion))
        res.overflow = true;
    return ready;
}

void
MemSystem::loadMiss(CpuId cpu, Addr line, Cycle s, bool speculative,
                    MemAccess &res)
{
    res.readyAt = l2Path(cpu, line, s, res);
    if (res.overflow && speculative) {
        // The line could not be allocated, so its SL bit has
        // nowhere to live: the access is not performed.
        return;
    }
    res.overflow = false;
    dcaches_[cpu].insert(line);
    if (speculative)
        dcaches_[cpu].markSpecRead(line);
}

MemAccess
MemSystem::store(CpuId cpu, Addr addr, Cycle now, bool speculative)
{
    MemAccess res;
    Addr line = geom_.lineNum(addr);

    std::size_t bank_idx =
        static_cast<std::size_t>(cpu) * cfg_.l1Banks +
        (static_cast<unsigned>(line) & (cfg_.l1Banks - 1));
    Cycle s = std::max(now, l1BankFree_[bank_idx]);
    l1BankFree_[bank_idx] = s + 1;

    // Write-through, no-write-allocate L1.
    bool l1_present = dcaches_[cpu].access(line);
    res.l1Hit = l1_present;

    // The write-through path to the L2 consumes crossbar/bank slots but
    // does not block the core (buffered store).
    std::uint8_t version =
        speculative ? static_cast<std::uint8_t>(cpu) : kCommittedVersion;

    if (!l2_.accessLine(line) && !victim_.accessLine(line)) {
        // Allocate-on-write-miss at the L2: fetch the line so the store
        // can merge into it. Charge memory occupancy; the core is not
        // blocked (store buffer).
        res.memFetch = true;
        Cycle mstart = std::max(s + cfg_.l2HitLatency, memFree_);
        memFree_ = mstart + cfg_.memCyclesPerAccess;
    } else {
        xbarGrant(cpu, l2_.bankOf(line), s);
        res.l2Hit = true;
    }

    if (!l2_.insert(line, version)) {
        res.overflow = true;
        return res; // store not performed; TLS engine must resolve
    }

    if (speculative) {
        versionLines_[cpu].insert(line);
        if (l1_present)
            dcaches_[cpu].markSpecWritten(line);
        else {
            // no-write-allocate: the L1 does not take the line
        }
    }

    propagateStore(cpu, line);
    res.readyAt = s + 1;
    return res;
}

void
MemSystem::propagateStore(CpuId cpu, Addr line_num)
{
    std::uint64_t my_seq = epochSeqs_   ? epochSeqs_[cpu]
                           : hooks_     ? hooks_->epochSeq(cpu)
                                        : kNoEpoch;
    // No presence pre-check: invalidate()/markStale() no-op on absent
    // lines, and the epoch-order comparison is an array read — cheaper
    // than a second set scan per peer L1.
    for (unsigned d = 0; d < numCpus_; ++d) {
        if (d == cpu)
            continue;
        std::uint64_t d_seq = epochSeqs_   ? epochSeqs_[d]
                              : hooks_     ? hooks_->epochSeq(d)
                                           : kNoEpoch;
        if (my_seq == kNoEpoch || d_seq == kNoEpoch || d_seq > my_seq) {
            // Plain coherence, or a younger epoch's copy: must see the
            // new value on its next access.
            dcaches_[d].invalidate(line_num);
        } else {
            // An older epoch may keep using its (older-version) copy,
            // but the copy is stale for whatever runs there next.
            dcaches_[d].markStale(line_num);
        }
    }
}

Cycle
MemSystem::ifetchMiss(CpuId cpu, Addr line, Cycle now)
{
    MemAccess res;
    Cycle ready = l2Path(cpu, line, now, res);
    icaches_[cpu].insert(line);
    return ready;
}

void
MemSystem::epochBoundary(CpuId cpu)
{
    dcaches_[cpu].epochBoundary();
}

unsigned
MemSystem::squashL1(CpuId cpu)
{
    return dcaches_[cpu].squashSpecWrites();
}

void
MemSystem::commitThreadVersions(CpuId cpu)
{
    std::uint8_t version = static_cast<std::uint8_t>(cpu);
    for (Addr line : versionLines_[cpu]) {
        if (l2_.renameToCommitted(line, version))
            continue;
        if (victim_.renameToCommitted(line, version))
            continue;
        panic("committed thread version of line %llx lost",
              static_cast<unsigned long long>(line));
    }
    versionLines_[cpu].clear();
}

void
MemSystem::dropThreadVersion(CpuId cpu, Addr line_num)
{
    std::uint8_t version = static_cast<std::uint8_t>(cpu);
    l2_.remove(line_num, version);
    victim_.remove(line_num, version);
    versionLines_[cpu].erase(line_num);
}

void
MemSystem::dropAllThreadVersions(CpuId cpu)
{
    std::uint8_t version = static_cast<std::uint8_t>(cpu);
    for (Addr line : versionLines_[cpu]) {
        l2_.remove(line, version);
        victim_.remove(line, version);
    }
    versionLines_[cpu].clear();
}

void
MemSystem::reset()
{
    for (auto &c : dcaches_)
        c.reset();
    for (auto &c : icaches_)
        c.reset();
    l2_.reset();
    victim_.reset();
    std::fill(l1BankFree_.begin(), l1BankFree_.end(), 0);
    std::fill(xbarPortFree_.begin(), xbarPortFree_.end(), 0);
    std::fill(l2BankFree_.begin(), l2BankFree_.end(), 0);
    memFree_ = 0;
    for (auto &s : versionLines_)
        s.clear();
}

} // namespace tlsim
