/**
 * @file
 * The narrow interface the memory system uses to ask TLS-level
 * questions without depending on the TLS engine: epoch ordering of
 * CPUs (for stale-copy invalidation and overflow victim choice) and
 * whether a line carries speculative metadata (for eviction policy).
 */

#ifndef MEM_TLSHOOKS_H
#define MEM_TLSHOOKS_H

#include <cstdint>

#include "base/types.h"

namespace tlsim {

/** Sentinel epoch sequence number for a CPU with no epoch. */
inline constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

/** TLS-level queries needed by the memory system. */
class TlsHooks
{
  public:
    virtual ~TlsHooks() = default;

    /**
     * Program-order sequence number of the epoch currently running on
     * `cpu`, or kNoEpoch if the CPU is idle / non-speculative mode.
     */
    virtual std::uint64_t epochSeq(CpuId cpu) const = 0;

    /**
     * True if any speculative context currently has speculatively-
     * loaded or speculatively-modified state on this line (line
     * number, not byte address). Lines with speculative state must be
     * spilled to the victim cache rather than silently evicted.
     */
    virtual bool lineHasSpecState(Addr line_num) const = 0;
};

/** Hooks for non-TLS execution modes: no epochs, no speculative state. */
class NullTlsHooks : public TlsHooks
{
  public:
    std::uint64_t epochSeq(CpuId) const override { return kNoEpoch; }
    bool lineHasSpecState(Addr) const override { return false; }
};

} // namespace tlsim

#endif // MEM_TLSHOOKS_H
