/**
 * @file
 * The chip's memory system: per-CPU L1 I/D caches, the crossbar, the
 * shared versioned L2 with its speculative victim cache, and the main
 * memory interface — with bank/port/bandwidth contention modelling
 * (Table 1 parameters).
 *
 * The memory system answers timing ("when is this access's data
 * ready?") and presence questions, performs write-through update
 * propagation with cross-L1 invalidation of younger epochs' copies,
 * and maintains the per-thread L2 line versions. Speculative
 * *metadata* (SL/SM bits, violations) belongs to the TLS engine.
 */

#ifndef MEM_MEMSYS_H
#define MEM_MEMSYS_H

#include <cstdint>
#include <utility>
#include <vector>

#include "base/addr.h"
#include "base/config.h"
#include "base/lineset.h"
#include "base/types.h"
#include "mem/l1cache.h"
#include "mem/l2cache.h"
#include "mem/tlshooks.h"
#include "mem/victim.h"

namespace tlsim {

/** Outcome of one data access. */
struct MemAccess
{
    Cycle readyAt = 0;     ///< cycle the data is available to the core
    bool l1Hit = false;
    bool l2Hit = false;
    bool victimHit = false;
    bool memFetch = false; ///< went to main memory
    /**
     * The access needed to allocate speculative space and not even the
     * victim cache had room. The TLS engine must stall or squash to
     * make progress; the access has NOT been performed.
     */
    bool overflow = false;
};

/** The full memory hierarchy of the simulated CMP. */
class MemSystem
{
  public:
    explicit MemSystem(const MachineConfig &cfg);

    /** Wire in the TLS engine once it exists. */
    void setHooks(const TlsHooks *hooks);

    /**
     * Optional fast path for the per-store epoch-order queries: a
     * borrowed array of numCpus entries the TLS engine keeps equal to
     * hooks->epochSeq(cpu). Avoids two virtual calls per store.
     */
    void setEpochSeqArray(const std::uint64_t *seqs) { epochSeqs_ = seqs; }

    /**
     * Data load by `cpu` of the line containing `addr`, issued at
     * `now`. `speculative` marks epoch work (vs escaped or non-TLS).
     * The L1-hit fast path is inline; misses take the out-of-line
     * L2-and-beyond path.
     */
    MemAccess
    load(CpuId cpu, Addr addr, Cycle now, bool speculative)
    {
        MemAccess res;
        Addr line = geom_.lineNum(addr);

        std::size_t bank_idx =
            static_cast<std::size_t>(cpu) * cfg_.l1Banks +
            (static_cast<unsigned>(line) & (cfg_.l1Banks - 1));
        Cycle s = std::max(now, l1BankFree_[bank_idx]);
        l1BankFree_[bank_idx] = s + 1;

        if (dcaches_[cpu].access(line)) {
            res.l1Hit = true;
            res.readyAt = s + cfg_.l1HitLatency;
            if (speculative)
                dcaches_[cpu].markSpecRead(line);
            return res;
        }
        loadMiss(cpu, line, s, speculative, res);
        return res;
    }

    /**
     * Data store (write-through). The store is buffered: `readyAt` is
     * when the core may proceed, while propagation effects (L2 update,
     * cross-L1 invalidation) are applied immediately.
     */
    MemAccess store(CpuId cpu, Addr addr, Cycle now, bool speculative);

    /** Instruction fetch; returns the cycle the fetch completes. */
    Cycle
    ifetch(CpuId cpu, Pc pc, Cycle now)
    {
        Addr line = geom_.lineNum(pc);
        if (icaches_[cpu].access(line))
            return now; // fetch pipelined with decode; no stall
        return ifetchMiss(cpu, line, now);
    }

    // --- TLS lifecycle hooks (called by the TLS engine) --------------

    /** Epoch committed or started on this CPU: clear L1 flags/stales. */
    void epochBoundary(CpuId cpu);

    /** Violation on this CPU: drop speculatively-modified L1 lines. */
    unsigned squashL1(CpuId cpu);

    /** Commit: rename this CPU's L2/victim line versions to committed. */
    void commitThreadVersions(CpuId cpu);

    /** Partial squash: this thread's version of one line is dead. */
    void dropThreadVersion(CpuId cpu, Addr line_num);

    /** Full squash: drop every line version owned by this thread. */
    void dropAllThreadVersions(CpuId cpu);

    /** Lines this thread holds speculative versions of. */
    const LineSet &
    threadVersionLines(CpuId cpu) const
    {
        return versionLines_[cpu];
    }

    /**
     * After an access returned overflow: the contents of the full L2
     * set, for the TLS engine's stall/squash decision. Valid until the
     * next overflow.
     */
    const std::vector<std::pair<Addr, std::uint8_t>> &
    lastOverflowSet() const
    {
        return l2_.overflowSet();
    }

    /** Drop all cache contents (between experiment runs). */
    void reset();

    const LineGeom &geom() const { return geom_; }
    L1Cache &dcache(CpuId cpu) { return dcaches_[cpu]; }
    L1Cache &icache(CpuId cpu) { return icaches_[cpu]; }
    L2Cache &l2() { return l2_; }
    VictimCache &victim() { return victim_; }
    const L2Cache &l2() const { return l2_; }
    const VictimCache &victim() const { return victim_; }
    unsigned numCpus() const { return numCpus_; }

  private:
    /** Batched crossbar-port + L2-bank arbitration: reserve both for
     *  one line transfer starting no earlier than `t + 1`; returns the
     *  granted start cycle. */
    Cycle xbarGrant(CpuId cpu, unsigned bank, Cycle t);

    /** Shared L2-and-beyond path; returns data-ready cycle. */
    Cycle l2Path(CpuId cpu, Addr line_num, Cycle t, MemAccess &res);

    /** Out-of-line L1-miss halves of load()/ifetch(). */
    void loadMiss(CpuId cpu, Addr line, Cycle s, bool speculative,
                  MemAccess &res);
    Cycle ifetchMiss(CpuId cpu, Addr line, Cycle now);

    /** Invalidate/mark-stale other CPUs' L1 copies after a store. */
    void propagateStore(CpuId cpu, Addr line_num);

    MemConfig cfg_;
    unsigned numCpus_;
    LineGeom geom_;
    const TlsHooks *hooks_ = nullptr;
    const std::uint64_t *epochSeqs_ = nullptr; ///< see setEpochSeqArray

    std::vector<L1Cache> dcaches_;
    std::vector<L1Cache> icaches_;
    VictimCache victim_;
    L2Cache l2_;

    unsigned lineTransferCycles_;

    // Contention state: next-free cycles.
    std::vector<Cycle> l1BankFree_;   ///< [cpu * l1Banks + bank]
    std::vector<Cycle> xbarPortFree_; ///< [cpu]
    std::vector<Cycle> l2BankFree_;   ///< [bank]
    Cycle memFree_ = 0;

    /** Lines each CPU slot's thread holds speculative versions of. */
    std::vector<LineSet> versionLines_;
};

} // namespace tlsim

#endif // MEM_MEMSYS_H
