/**
 * @file
 * The speculative victim cache: a small fully-associative buffer next
 * to the L2 that catches speculative cache lines evicted from the L2
 * sets due to conflict pressure (Section 2.1 of the paper; 64 entries
 * by default). Speculation only has to stall or fail when even the
 * victim cache cannot hold a speculative line.
 *
 * Layout: structure-of-arrays with a 64-bit validity mask per group of
 * 64 slots, so the fully-associative line scan — which runs on every
 * L1 miss and every store — is one simd::matchMask64 per group over
 * the key array instead of a branchy walk of structs. The default
 * 64-entry configuration is a single group; larger ablation sizes
 * (256 entries) chain groups in ascending slot order. All mutation
 * orders (first-free insert, first-match remove, ascending-index
 * sweeps, LRU tie-breaks) match the original entry-order semantics
 * bit for bit.
 */

#ifndef MEM_VICTIM_H
#define MEM_VICTIM_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/simd.h"
#include "base/types.h"

namespace tlsim {

/** Version tag meaning "committed (architectural) data". */
inline constexpr std::uint8_t kCommittedVersion = 0xFF;

/** A fully-associative LRU buffer of evicted speculative L2 lines. */
class VictimCache
{
  public:
    /** Slots per validity-mask group (one matchMask64 scan). */
    static constexpr unsigned kGroupSize = 64;

    explicit VictimCache(unsigned entries);

    unsigned capacity() const { return capacity_; }

    /** Number of live entries. */
    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (std::uint64_t v : valid_)
            n += static_cast<unsigned>(__builtin_popcountll(v));
        return n;
    }

    bool full() const { return occupancy() == capacity_; }

    /** True if any version of this line is buffered. Touches LRU. */
    bool accessLine(Addr line_num);

    /** Presence test without side effects. */
    bool
    presentLine(Addr line_num) const
    {
        for (unsigned g = 0; g < groups(); ++g)
            if (matchGroup(g, line_num))
                return true;
        return false;
    }

    bool present(Addr line_num, std::uint8_t version) const;

    /**
     * Insert an evicted line. Requires a free slot (callers make room
     * first; dropping a speculative line here is an overflow event that
     * the TLS engine must resolve).
     */
    void insert(Addr line_num, std::uint8_t version);

    /** Remove a specific (line, version) entry; false if absent. */
    bool remove(Addr line_num, std::uint8_t version);

    /**
     * Drop one committed entry (no speculative metadata) to make room,
     * preferring LRU. Returns false if every entry is speculative.
     * `has_spec_state(line)` reports lines that still carry SL/SM bits.
     */
    template <typename Pred>
    bool
    dropOneCommitted(Pred &&has_spec_state)
    {
        unsigned victim = capacity_;
        for (unsigned g = 0; g < groups(); ++g) {
            std::uint64_t m = valid_[g];
            while (m) {
                unsigned i = g * kGroupSize +
                             static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                if (versions_[i] != kCommittedVersion ||
                    has_spec_state(lines_[i]))
                    continue;
                if (victim == capacity_ || lrus_[i] < lrus_[victim])
                    victim = i;
            }
        }
        if (victim == capacity_)
            return false;
        clearSlot(victim);
        return true;
    }

    /** Collect (and remove) every entry owned by `version`. */
    std::vector<Addr> takeAllOfVersion(std::uint8_t version);

    /** Rename one entry's version to committed. False if absent. */
    bool renameToCommitted(Addr line_num, std::uint8_t version);

    /** Visit every valid (line, version) entry: `fn(line, version)`.
     *  Read-only sweep for the invariant auditor and tests. */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (unsigned g = 0; g < groups(); ++g) {
            std::uint64_t m = valid_[g];
            while (m) {
                unsigned i = g * kGroupSize +
                             static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                fn(lines_[i], versions_[i]);
            }
        }
    }

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }

  private:
    unsigned
    groups() const
    {
        return static_cast<unsigned>(valid_.size());
    }

    /** Bitmask of valid slots in group g whose line number matches. */
    std::uint64_t
    matchGroup(unsigned g, Addr line_num) const
    {
        std::uint64_t v = valid_[g];
        if (!v)
            return 0;
        unsigned base = g * kGroupSize;
        return simd::matchMask64(lines_.data() + base,
                                 std::min(scanLen_ - base, kGroupSize),
                                 line_num) &
               v;
    }

    /** Bits of group g that address slots below capacity_. */
    std::uint64_t
    groupCapMask(unsigned g) const
    {
        unsigned base = g * kGroupSize;
        if (capacity_ - base >= kGroupSize)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << (capacity_ - base)) - 1;
    }

    void
    clearSlot(unsigned i)
    {
        valid_[i / kGroupSize] &=
            ~(std::uint64_t{1} << (i % kGroupSize));
    }

    unsigned capacity_;
    unsigned scanLen_; ///< capacity_ rounded up for the vector scan
    /** valid_[g] bit b: slot g*64+b holds a live entry. */
    std::vector<std::uint64_t> valid_;
    /** scanLen_ keys; dead slots may keep stale keys (valid_ masks
     *  them out of every match), padding beyond capacity_ stays 0. */
    std::vector<Addr> lines_;
    std::vector<std::uint8_t> versions_;
    std::vector<std::uint64_t> lrus_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
};

} // namespace tlsim

#endif // MEM_VICTIM_H
