/**
 * @file
 * The speculative victim cache: a small fully-associative buffer next
 * to the L2 that catches speculative cache lines evicted from the L2
 * sets due to conflict pressure (Section 2.1 of the paper; 64 entries
 * by default). Speculation only has to stall or fail when even the
 * victim cache cannot hold a speculative line.
 */

#ifndef MEM_VICTIM_H
#define MEM_VICTIM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.h"

namespace tlsim {

/** Version tag meaning "committed (architectural) data". */
inline constexpr std::uint8_t kCommittedVersion = 0xFF;

/** A fully-associative LRU buffer of evicted speculative L2 lines. */
class VictimCache
{
  public:
    struct Entry
    {
        Addr lineNum = 0;
        std::uint8_t version = kCommittedVersion;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    explicit VictimCache(unsigned entries) : entries_(entries) {}

    unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }

    /** Number of live entries. */
    unsigned occupancy() const;
    bool full() const { return occupancy() == capacity(); }

    /** True if any version of this line is buffered. Touches LRU. */
    bool accessLine(Addr line_num);

    /** Presence test without side effects. */
    bool presentLine(Addr line_num) const;
    bool present(Addr line_num, std::uint8_t version) const;

    /**
     * Insert an evicted line. Requires a free slot (callers make room
     * first; dropping a speculative line here is an overflow event that
     * the TLS engine must resolve).
     */
    void insert(Addr line_num, std::uint8_t version);

    /** Remove a specific (line, version) entry; false if absent. */
    bool remove(Addr line_num, std::uint8_t version);

    /**
     * Drop one committed entry (no speculative metadata) to make room,
     * preferring LRU. Returns false if every entry is speculative.
     * `has_spec_state(line)` reports lines that still carry SL/SM bits.
     */
    template <typename Pred>
    bool
    dropOneCommitted(Pred &&has_spec_state)
    {
        Entry *victim = nullptr;
        for (Entry &e : entries_) {
            if (!e.valid || e.version != kCommittedVersion ||
                has_spec_state(e.lineNum)) {
                continue;
            }
            if (!victim || e.lru < victim->lru)
                victim = &e;
        }
        if (!victim)
            return false;
        victim->valid = false;
        return true;
    }

    /** Collect (and remove) every entry owned by `version`. */
    std::vector<Addr> takeAllOfVersion(std::uint8_t version);

    /** Rename one entry's version to committed. False if absent. */
    bool renameToCommitted(Addr line_num, std::uint8_t version);

    /** Visit every valid (line, version) entry: `fn(line, version)`.
     *  Read-only sweep for the invariant auditor and tests. */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const Entry &e : entries_)
            if (e.valid)
                fn(e.lineNum, e.version);
    }

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }

  private:
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
};

} // namespace tlsim

#endif // MEM_VICTIM_H
