/**
 * @file
 * Shared, banked, unified L2 cache with speculative line versioning.
 *
 * Multiple speculative threads may modify the same cache line; the L2
 * keeps one version of the line per modifying thread, using the ways
 * of the associative set (Section 2.1). A line version is tagged with
 * the CPU slot whose speculative thread created it, or with
 * kCommittedVersion for architectural data. Lines that carry
 * speculative metadata (SL/SM bits, known to the TLS engine via
 * TlsHooks) may never be silently dropped — they spill to the
 * speculative victim cache, and when even that is full the access
 * reports an overflow for the TLS engine to resolve.
 */

#ifndef MEM_L2CACHE_H
#define MEM_L2CACHE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "base/config.h"
#include "base/types.h"
#include "mem/tlshooks.h"
#include "mem/victim.h"

namespace tlsim {

/** The versioned L2 cache (tags only; timing lives in MemSystem). */
class L2Cache
{
  public:
    L2Cache(const MemConfig &cfg, VictimCache &victim);

    /** The TLS engine is constructed later; wire it in then. */
    void setHooks(const TlsHooks *hooks) { hooks_ = hooks; }

    /** True if any version of the line is present. Touches LRU. */
    bool accessLine(Addr line_num);

    /** Presence tests without LRU side effects. */
    bool presentLine(Addr line_num) const;
    bool hasEntry(Addr line_num, std::uint8_t version) const;

    /**
     * Allocate (or touch) the (line, version) entry. Returns false on
     * overflow, leaving the full set's contents in overflowSet() —
     * reported out-of-band because the hot path calls this once per
     * store and a by-value result would drag a vector through every
     * call for the sake of the rare overflow.
     */
    bool insert(Addr line_num, std::uint8_t version);

    /**
     * After insert() returned false: every (line, version) entry of
     * the full set, so the TLS engine can choose a speculative thread
     * to stall or squash to make progress. Overwritten by the next
     * overflow.
     */
    const std::vector<std::pair<Addr, std::uint8_t>> &
    overflowSet() const
    {
        return overflowSet_;
    }

    /** Drop a specific version entry (squash path). */
    void remove(Addr line_num, std::uint8_t version);

    /**
     * Commit path: rename (line, version) to committed, merging over
     * any existing committed entry. False if the entry is not here
     * (it may be in the victim cache).
     */
    bool renameToCommitted(Addr line_num, std::uint8_t version);

    /** Bank index of a line (for contention modelling). */
    unsigned bankOf(Addr line_num) const
    {
        return static_cast<unsigned>(line_num) & (numBanks_ - 1);
    }

    /** Visit every valid (line, version) entry: `fn(line, version)`.
     *  Read-only sweep for the invariant auditor and tests. */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const Entry &e : entries_)
            if (live(e))
                fn(e.lineNum, e.version);
    }

    /**
     * Drop every entry between independent experiment runs. O(1): the
     * generation stamp is bumped instead of clearing the (multi-MB)
     * entry array; entries from older generations read as invalid.
     */
    void reset();

    /**
     * Test seam: wipe the cache and jump the generation stamp so the
     * uint32 wraparound path in reset() is reachable without 2^32
     * real resets. Ways are wiped, so no stale stamp can collide with
     * the chosen generation (mirrors LineSet::debugSetGeneration).
     */
    void
    debugSetGeneration(std::uint32_t g)
    {
        entries_.assign(entries_.size(), Entry{});
        overflowSet_.clear();
        useClock_ = 0;
        gen_ = g == 0 ? 1 : g;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t specEvictions() const { return specEvictions_; }
    std::uint64_t overflows() const { return overflows_; }

  private:
    struct Entry
    {
        Addr lineNum = 0;
        std::uint64_t lru = 0;
        std::uint32_t gen = 0; ///< generation that wrote this entry
        std::uint8_t version = kCommittedVersion;
        bool valid = false;
    };

    /** An entry holds data iff it was written in the current generation. */
    bool live(const Entry &e) const { return e.valid && e.gen == gen_; }

    std::size_t setBase(Addr line_num) const
    {
        return (line_num & (numSets_ - 1)) * assoc_;
    }

    Entry *find(Addr line_num, std::uint8_t version);
    const Entry *find(Addr line_num, std::uint8_t version) const;

    const TlsHooks *hooks_ = nullptr;
    VictimCache &victim_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned numBanks_;
    std::vector<Entry> entries_;
    std::uint32_t gen_ = 1; ///< current generation (0 = never written)
    std::vector<std::pair<Addr, std::uint8_t>> overflowSet_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t specEvictions_ = 0;
    std::uint64_t overflows_ = 0;
};

} // namespace tlsim

#endif // MEM_L2CACHE_H
