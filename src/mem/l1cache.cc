#include "mem/l1cache.h"

#include "base/log.h"

namespace tlsim {

L1Cache::L1Cache(unsigned bytes, unsigned assoc, unsigned line_bytes)
    : assoc_(assoc), numSets_(bytes / (assoc * line_bytes))
{
    if (!isPowerOf2(numSets_))
        panic("L1 set count %u not a power of two", numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

L1Cache::Line *
L1Cache::find(Addr line_num)
{
    std::size_t set = (line_num & (numSets_ - 1)) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &l = lines_[set + w];
        if (l.valid && l.lineNum == line_num)
            return &l;
    }
    return nullptr;
}

const L1Cache::Line *
L1Cache::find(Addr line_num) const
{
    return const_cast<L1Cache *>(this)->find(line_num);
}

bool
L1Cache::access(Addr line_num)
{
    Line *l = find(line_num);
    if (l) {
        l->lru = ++useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
L1Cache::present(Addr line_num) const
{
    return find(line_num) != nullptr;
}

void
L1Cache::insert(Addr line_num)
{
    if (find(line_num))
        return;
    std::size_t set = (line_num & (numSets_ - 1)) * assoc_;
    Line *victim = &lines_[set];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &l = lines_[set + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lru < victim->lru)
            victim = &l;
    }
    // Write-through L1: evicted lines are always clean; silent drop.
    *victim = Line{line_num, true, false, false, false, ++useClock_};
}

void
L1Cache::invalidate(Addr line_num)
{
    if (Line *l = find(line_num))
        l->valid = false;
}

void
L1Cache::markSpecRead(Addr line_num)
{
    if (Line *l = find(line_num))
        l->specRead = true;
}

void
L1Cache::markSpecWritten(Addr line_num)
{
    if (Line *l = find(line_num))
        l->specWritten = true;
}

void
L1Cache::markStale(Addr line_num)
{
    if (Line *l = find(line_num))
        l->stale = true;
}

unsigned
L1Cache::squashSpecWrites()
{
    unsigned n = 0;
    for (Line &l : lines_) {
        if (l.valid && l.specWritten) {
            l.valid = false;
            ++n;
        }
    }
    return n;
}

void
L1Cache::epochBoundary()
{
    for (Line &l : lines_) {
        if (!l.valid)
            continue;
        l.specRead = false;
        l.specWritten = false;
        if (l.stale) {
            l.stale = false;
            l.valid = false;
        }
    }
}

void
L1Cache::reset()
{
    for (Line &l : lines_)
        l = Line{};
    useClock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace tlsim
