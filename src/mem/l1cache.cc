#include "mem/l1cache.h"

#include "base/log.h"

namespace tlsim {

L1Cache::L1Cache(unsigned bytes, unsigned assoc, unsigned line_bytes)
    : assoc_(assoc), numSets_(bytes / (assoc * line_bytes))
{
    if (!isPowerOf2(numSets_))
        panic("L1 set count %u not a power of two", numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    flagged_.reserve(64);
}

unsigned
L1Cache::squashSpecWrites()
{
    // Flags stay set until the epoch boundary, so the list is kept.
    unsigned n = 0;
    for (std::uint32_t idx : flagged_) {
        Line &l = lines_[idx];
        if ((l.state & kValid) && (l.state & kSpecWritten)) {
            l.state &= static_cast<std::uint8_t>(~kValid);
            ++n;
        }
    }
    return n;
}

void
L1Cache::epochBoundary()
{
    for (std::uint32_t idx : flagged_) {
        Line &l = lines_[idx];
        if (l.state & kStale)
            l.state = 0; // deferred invalidation takes the line out
        else
            l.state &= kValid;
    }
    flagged_.clear();
}

void
L1Cache::reset()
{
    for (Line &l : lines_)
        l = Line{};
    flagged_.clear();
    useClock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace tlsim
